// Command optworker is a remote sampling agent: it dials an optd
// coordinator (-connect), registers its capacity, and executes dispatched
// sampling tasks until interrupted. Agents hold no run state — every task's
// result is a pure function of the task — so workers can be added, killed
// and restarted at any point of any run without changing a single bit of the
// results; the coordinator re-dispatches whatever a dead worker still owed.
//
// Example fleet (see the README's "Distributed mode" quickstart):
//
//	optd -addr :8080 -fleet-addr :9090 &
//	optworker -connect localhost:9090 -name a -capacity 4 &
//	optworker -connect localhost:9090 -name b -capacity 4 &
//	curl -s localhost:8080/v1/jobs -d '{"objective":"rosenbrock","dim":3,"sigma0":100,"seed":7,"fleet":true,"max_iterations":200}'
//
// The -latency and -spin flags add a simulated per-task cost, standing in
// for the expensive simulation (an MD trajectory segment in the paper's
// TIP4P study) a real deployment would run here.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/dist"
)

func main() {
	var (
		connect  = flag.String("connect", "localhost:9090", "coordinator fleet address")
		name     = flag.String("name", hostname(), "worker label in fleet status")
		capacity = flag.Int("capacity", runtime.GOMAXPROCS(0), "concurrent task capacity")
		latency  = flag.Duration("latency", 0, "simulated wait per task (models an external simulation)")
		spin     = flag.Int("spin", 0, "simulated CPU burn per task (floating-point ops)")
		once     = flag.Bool("once", false, "exit on disconnect instead of reconnecting")
		proto    = flag.String("proto", "auto", "frame codec: auto (offer binary, accept fallback), binary (require binary), json (stay on the JSON fallback)")
	)
	flag.Parse()
	if *proto != "auto" && *proto != "binary" && *proto != "json" {
		fmt.Fprintf(os.Stderr, "optworker: invalid -proto %q (want auto, binary or json)\n", *proto)
		os.Exit(2)
	}
	fmt.Printf("optworker starting: connect=%s name=%s capacity=%d latency=%s spin=%d proto=%s\n",
		*connect, *name, *capacity, *latency, *spin, *proto)

	w := dist.NewWorker(dist.WorkerConfig{
		Addr:       *connect,
		Name:       *name,
		Capacity:   *capacity,
		Protocol:   *proto,
		SampleCost: cost(*latency, *spin),
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("received %s; shutting down\n", sig)
		cancel()
	}()

	var err error
	if *once {
		err = w.Run(ctx)
	} else {
		err = w.RunLoop(ctx)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// cost builds the simulated per-task expense from the -latency/-spin flags.
func cost(latency time.Duration, spin int) func([]float64, float64) {
	if latency <= 0 && spin <= 0 {
		return nil
	}
	return func([]float64, float64) {
		if latency > 0 {
			time.Sleep(latency)
		}
		x := 1.0
		for i := 0; i < spin; i++ {
			x = math.Sqrt(x + float64(i&7))
		}
		if x < 0 {
			panic("unreachable")
		}
	}
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return "worker"
	}
	return h
}
