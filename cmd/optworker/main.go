// Command optworker is a remote sampling agent: it dials an optd
// coordinator (-connect), registers its capacity, and executes dispatched
// sampling tasks until interrupted. Agents hold no run state — every task's
// result is a pure function of the task — so workers can be added, killed
// and restarted at any point of any run without changing a single bit of the
// results; the coordinator re-dispatches whatever a dead worker still owed.
//
// Example fleet (see the README's "Distributed mode" quickstart):
//
//	optd -addr :8080 -fleet-addr :9090 &
//	optworker -connect localhost:9090 -name a -capacity 4 &
//	optworker -connect localhost:9090 -name b -capacity 4 &
//	curl -s localhost:8080/v1/jobs -d '{"objective":"rosenbrock","dim":3,"sigma0":100,"seed":7,"fleet":true,"max_iterations":200}'
//
// The -latency and -spin flags add a simulated per-task cost, standing in
// for the expensive simulation (an MD trajectory segment in the paper's
// TIP4P study) a real deployment would run here.
//
// With -debug-addr the agent opens a debug listener serving GET /metrics
// (Prometheus text exposition of the agent's obs registry: frames and bytes
// per codec, sessions, tasks executed) and the net/http/pprof profiles.
// Structured NDJSON events (codec_negotiated, session_end, worker_fatal) go
// to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/obs"
)

// Exit codes: startup misconfiguration fails fast with a distinct code and a
// structured worker_fatal event, so a supervisor can tell "fix the flags"
// from "the session died".
const (
	exitSession   = 1 // a session error with -once, or a debug-listener failure
	exitBadProto  = 2 // invalid -proto value
	exitBadTarget = 3 // -connect address does not resolve
)

func main() {
	var (
		connect   = flag.String("connect", "localhost:9090", "coordinator fleet address, or a comma-separated failover list (tried in rotation)")
		name      = flag.String("name", hostname(), "worker label in fleet status")
		capacity  = flag.Int("capacity", runtime.GOMAXPROCS(0), "concurrent task capacity")
		latency   = flag.Duration("latency", 0, "simulated wait per task (models an external simulation)")
		spin      = flag.Int("spin", 0, "simulated CPU burn per task (floating-point ops)")
		once      = flag.Bool("once", false, "exit on disconnect instead of reconnecting")
		proto     = flag.String("proto", "auto", "frame codec: auto (offer binary, accept fallback), binary (require binary), json (stay on the JSON fallback)")
		debugAddr = flag.String("debug-addr", "", "debug listener address serving /metrics and /debug/pprof (empty = none)")
	)
	flag.Parse()

	// Structured NDJSON event log on stderr; stdout keeps the human startup
	// lines.
	events := obs.NewLogger(os.Stderr)

	if *proto != "auto" {
		if _, err := dist.ParseProto(*proto); err != nil {
			events.Event("worker_fatal", "err", err, "flag", "-proto")
			fmt.Fprintf(os.Stderr, "optworker: invalid -proto %q (want auto, binary or json)\n", *proto)
			os.Exit(exitBadProto)
		}
	}
	// Resolve every coordinator address up front: a typo'd -connect must
	// fail loudly at startup, not spin silently in the reconnect loop
	// forever.
	addrs := strings.Split(*connect, ",")
	for _, a := range addrs {
		if _, err := net.ResolveTCPAddr("tcp", a); err != nil {
			events.Event("worker_fatal", "err", err, "flag", "-connect")
			fmt.Fprintf(os.Stderr, "optworker: cannot resolve -connect %q: %v\n", a, err)
			os.Exit(exitBadTarget)
		}
	}
	fmt.Printf("optworker starting: connect=%s name=%s capacity=%d latency=%s spin=%d proto=%s\n",
		*connect, *name, *capacity, *latency, *spin, *proto)

	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			events.Event("worker_fatal", "err", err, "flag", "-debug-addr")
			fmt.Fprintf(os.Stderr, "optworker: debug listener: %v\n", err)
			os.Exit(exitSession)
		}
		fmt.Printf("optworker debug listening on %s (/metrics, /debug/pprof)\n", ln.Addr())
		go http.Serve(ln, obs.Default().DebugMux())
	}

	w := dist.NewWorker(dist.WorkerConfig{
		Addrs:      addrs,
		Name:       *name,
		Capacity:   *capacity,
		Protocol:   *proto,
		SampleCost: cost(*latency, *spin),
		Events:     events,
	})

	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-sigc
		fmt.Printf("received %s; shutting down\n", sig)
		cancel()
	}()

	var err error
	if *once {
		err = w.Run(ctx)
	} else {
		err = w.RunLoop(ctx)
	}
	if err != nil {
		events.Event("worker_fatal", "err", err)
		fmt.Fprintln(os.Stderr, err)
		os.Exit(exitSession)
	}
}

// cost builds the simulated per-task expense from the -latency/-spin flags.
func cost(latency time.Duration, spin int) func([]float64, float64) {
	if latency <= 0 && spin <= 0 {
		return nil
	}
	return func([]float64, float64) {
		if latency > 0 {
			time.Sleep(latency)
		}
		x := 1.0
		for i := 0; i < spin; i++ {
			x = math.Sqrt(x + float64(i&7))
		}
		if x < 0 {
			panic("unreachable")
		}
	}
}

func hostname() string {
	h, err := os.Hostname()
	if err != nil || h == "" {
		return "worker"
	}
	return h
}
