// Command stochsimplex runs one stochastic simplex optimization on a
// catalog test function and reports the paper's N/R/D performance measures.
//
// Example:
//
//	stochsimplex -func rosenbrock -dim 4 -alg pc -sigma 1000 -budget 1e5
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro"
	"repro/internal/testfunc"
)

func main() {
	var (
		funcName = flag.String("func", "rosenbrock", "objective: rosenbrock, powell, sphere, quartic, beale")
		algName  = flag.String("alg", "pc", "algorithm: det, mn, pc, pc+mn, anderson")
		dim      = flag.Int("dim", 3, "parameter-space dimension")
		sigma    = flag.Float64("sigma", 100, "eq-1.2 noise strength sigma0")
		seed     = flag.Int64("seed", 1, "random seed (noise and initial simplex)")
		budget   = flag.Float64("budget", 1e5, "virtual walltime budget (seconds)")
		tol      = flag.Float64("tol", 0, "spread termination tolerance (0 = run to budget)")
		k        = flag.Float64("k", 1, "PC confidence multiplier / MN wait factor")
		lo       = flag.Float64("lo", -5, "initial simplex coordinate lower bound")
		hi       = flag.Float64("hi", 5, "initial simplex coordinate upper bound")
		trace    = flag.Bool("trace", false, "print the per-iteration trace")
	)
	flag.Parse()

	fmt.Printf("stochsimplex: seed=%d\n", *seed)
	f, err := testfunc.ByName(*funcName)
	fatal(err)
	if f.Dim != 0 && f.Dim != *dim {
		fatal(fmt.Errorf("%s requires dimension %d", f.Name, f.Dim))
	}
	alg, err := repro.ParseAlgorithm(*algName)
	fatal(err)

	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim:      *dim,
		F:        f.F,
		Sigma0:   repro.ConstSigma(*sigma),
		Seed:     *seed,
		Parallel: true,
	})
	cfg := repro.DefaultConfig(alg)
	cfg.MaxWalltime = *budget
	cfg.Tol = *tol
	cfg.K = *k
	cfg.MNK = *k
	if *trace {
		cfg.Trace = func(e repro.TraceEvent) {
			fmt.Printf("iter %5d  t=%10.1f  g=%12.5g  f=%12.5g  move=%s\n",
				e.Iter, e.Time, e.Best, e.BestUnderlying, e.Move)
		}
	}

	initial := repro.UniformSimplex(*dim, *lo, *hi, rand.New(rand.NewSource(*seed)))

	res, err := repro.Optimize(space, initial, cfg)
	fatal(err)

	xmin := f.Minimizer(*dim)
	fmt.Printf("algorithm    %s on %s (d=%d, sigma0=%g)\n", alg, f.Name, *dim, *sigma)
	fmt.Printf("termination  %s after %d iterations, %.0f virtual s, %d evaluations\n",
		res.Termination, res.Iterations, res.Walltime, res.Evaluations)
	fmt.Printf("best x       %.6g\n", res.BestX)
	fmt.Printf("g(best)      %.6g +- %.3g (noisy estimate)\n", res.BestG, res.BestSigma)
	fmt.Printf("R            %.6g (noise-free error vs true minimum)\n", f.F(res.BestX)-f.FMin)
	fmt.Printf("D            %.6g (distance to true minimizer)\n", testfunc.Dist(res.BestX, xmin))
	fmt.Printf("moves        %d reflect, %d expand, %d contract, %d collapse\n",
		res.Moves.Reflections, res.Moves.Expansions, res.Moves.Contractions, res.Moves.Collapses)
	if res.WaitRounds+res.ResampleRounds > 0 {
		fmt.Printf("sampling     %d wait rounds, %d resample rounds, %d forced decisions\n",
			res.WaitRounds, res.ResampleRounds, res.ForcedDecisions)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
