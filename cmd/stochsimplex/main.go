// Command stochsimplex runs one optimization on a catalog test function and
// reports the paper's N/R/D performance measures. Any registered strategy
// can be selected: the five NM-family policies, the noise-aware particle
// swarm ("pso"), or the PSO→simplex hybrid ("hybrid").
//
// Example:
//
//	stochsimplex -func rosenbrock -dim 4 -alg pc -sigma 1000 -budget 1e5
//	stochsimplex -func rastrigin -dim 2 -alg hybrid -sigma 2 -budget 2e4
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/testfunc"
)

func main() {
	var (
		funcName  = flag.String("func", "rosenbrock", "objective: rosenbrock, powell, sphere, quartic, beale, rastrigin")
		algName   = flag.String("alg", "pc", "strategy: "+strings.Join(repro.Strategies(), ", "))
		dim       = flag.Int("dim", 3, "parameter-space dimension")
		sigma     = flag.Float64("sigma", 100, "eq-1.2 noise strength sigma0")
		seed      = flag.Int64("seed", 1, "random seed (noise, initial simplex, swarm)")
		budget    = flag.Float64("budget", 1e5, "virtual walltime budget (seconds)")
		tol       = flag.Float64("tol", 0, "spread termination tolerance (0 = run to budget)")
		k         = flag.Float64("k", 1, "k-sigma confidence (PC multiplier / MN wait factor / swarm best-update)")
		lo        = flag.Float64("lo", -5, "initial simplex / search box lower bound")
		hi        = flag.Float64("hi", 5, "initial simplex / search box upper bound")
		particles = flag.Int("particles", 0, "swarm size for pso/hybrid (0 = default 20)")
		swarm     = flag.Int("swarm-iters", 0, "swarm updates for pso/hybrid (0 = default 60)")
		trace     = flag.Bool("trace", false, "print the per-iteration trace")
	)
	flag.Parse()

	fmt.Printf("stochsimplex: seed=%d\n", *seed)
	f, err := testfunc.ByName(*funcName)
	fatal(err)
	if f.Dim != 0 && f.Dim != *dim {
		fatal(fmt.Errorf("%s requires dimension %d", f.Name, f.Dim))
	}

	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim:      *dim,
		F:        f.F,
		Sigma0:   repro.ConstSigma(*sigma),
		Seed:     *seed,
		Parallel: true,
	})

	opts := []repro.RunOption{
		repro.WithStrategy(*algName),
		repro.WithUniformSimplex(*seed, *lo, *hi),
		repro.WithBudget(*budget),
		repro.WithTolerance(*tol),
		repro.WithConfidence(*k),
		repro.WithSwarm(*particles, *swarm),
	}
	if *trace {
		opts = append(opts, repro.WithTrace(func(e repro.TraceEvent) {
			fmt.Printf("iter %5d  t=%10.1f  g=%12.5g  f=%12.5g  move=%s\n",
				e.Iter, e.Time, e.Best, e.BestUnderlying, e.Move)
		}))
	}

	res, err := repro.Run(context.Background(), space, opts...)
	fatal(err)

	xmin := f.Minimizer(*dim)
	fmt.Printf("strategy     %s on %s (d=%d, sigma0=%g)\n", *algName, f.Name, *dim, *sigma)
	fmt.Printf("termination  %s after %d iterations, %.0f virtual s, %d evaluations\n",
		res.Termination, res.Iterations, res.Walltime, res.Evaluations)
	fmt.Printf("best x       %.6g\n", res.BestX)
	fmt.Printf("g(best)      %.6g +- %.3g (noisy estimate)\n", res.BestG, res.BestSigma)
	fmt.Printf("R            %.6g (noise-free error vs true minimum)\n", f.F(res.BestX)-f.FMin)
	fmt.Printf("D            %.6g (distance to true minimizer)\n", testfunc.Dist(res.BestX, xmin))
	fmt.Printf("moves        %d reflect, %d expand, %d contract, %d collapse\n",
		res.Moves.Reflections, res.Moves.Expansions, res.Moves.Contractions, res.Moves.Collapses)
	if res.WaitRounds+res.ResampleRounds > 0 {
		fmt.Printf("sampling     %d wait rounds, %d resample rounds, %d forced decisions\n",
			res.WaitRounds, res.ResampleRounds, res.ForcedDecisions)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
