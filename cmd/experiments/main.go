// Command experiments regenerates every table and figure of the paper's
// evaluation chapter. List the available artifacts with -list, run one with
// -run Table3.1 (etc.), or run everything with -run all.
//
// -quick switches to a reduced protocol (fewer initial states, smaller
// sampling budgets) suitable for CI; the default is the paper-scale
// protocol (100 initial simplex states, five inputs, three noise levels).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		runName   = flag.String("run", "", "experiment to run (e.g. Table3.1, Fig3.5), or 'all'")
		quick     = flag.Bool("quick", false, "reduced protocol for smoke runs")
		seed      = flag.Int64("seed", 1, "base random seed")
		list      = flag.Bool("list", false, "list available experiments")
		benchJSON = flag.String("benchjson", "", "write a benchmark study as JSON to this path; the basename selects the study (BENCH_sched.json, BENCH_jobs.json)")
	)
	flag.Parse()
	fmt.Printf("experiments: seed=%d quick=%v\n", *seed, *quick)

	if *benchJSON != "" {
		writers := experiments.BenchJSONWriters()
		gen, ok := writers[filepath.Base(*benchJSON)]
		if !ok {
			names := make([]string, 0, len(writers))
			for n := range writers {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprintf(os.Stderr, "unknown benchmark artifact %q; the basename must be one of %v\n",
				filepath.Base(*benchJSON), names)
			os.Exit(1)
		}
		payload, err := gen(experiments.Options{Quick: *quick, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*benchJSON, append(payload, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchJSON)
		if *runName == "" && !*list {
			return
		}
	}

	if *list || *runName == "" {
		fmt.Println("Available experiments:")
		for _, d := range experiments.Registry() {
			fmt.Printf("  %-10s %s\n", d.Name, d.Paper)
		}
		if *runName == "" {
			fmt.Println("\nSelect one with -run <name> or -run all.")
		}
		return
	}

	opt := experiments.Options{Quick: *quick, Seed: *seed}
	var drivers []experiments.Driver
	if *runName == "all" {
		drivers = experiments.Registry()
	} else {
		d, err := experiments.ByName(*runName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		drivers = []experiments.Driver{d}
	}

	for _, d := range drivers {
		start := time.Now()
		out, err := d.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.Name, err)
			os.Exit(1)
		}
		fmt.Printf("==== %s (%s) [%.1fs] ====\n%s\n", d.Name, d.Paper, time.Since(start).Seconds(), out)
	}
}
