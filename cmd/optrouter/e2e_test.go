package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestOptrouterProcessE2E is the shard-kill exercise CI runs with real
// processes: build optd and optrouter, start two WAL-backed optd shards
// behind the router, push a load of jobs through the router, SIGKILL one
// shard mid-load, and assert the router declares it dead, fails its store
// over to the survivor, and that every recovered job completes with a
// result byte-identical to a fresh, uninterrupted run of the same spec.
func TestOptrouterProcessE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	bin := t.TempDir()
	for _, target := range []string{"optd", "optrouter"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, target), "./cmd/"+target)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", target, err, out)
		}
	}

	start := func(name string, args ...string) (*exec.Cmd, func(prefix string) string) {
		cmd := exec.Command(filepath.Join(bin, name), args...)
		out, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = cmd.Stdout
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
		lines := make(chan string, 256)
		go func() {
			sc := bufio.NewScanner(out)
			for sc.Scan() {
				lines <- sc.Text()
			}
			close(lines)
		}()
		waitLine := func(prefix string) string {
			deadline := time.After(30 * time.Second)
			for {
				select {
				case line, ok := <-lines:
					if !ok {
						t.Fatalf("%s exited before printing %q", name, prefix)
					}
					if strings.HasPrefix(line, prefix) {
						return strings.TrimSpace(strings.TrimPrefix(line, prefix))
					}
				case <-deadline:
					t.Fatalf("%s never printed %q", name, prefix)
				}
			}
		}
		return cmd, waitLine
	}

	// Two WAL-backed shards: the victim runs one job at a time so the load
	// queues up on it (durably), the survivor has headroom to absorb the
	// failover.
	dir0, dir1 := t.TempDir(), t.TempDir()
	victim, victimLine := start("optd",
		"-addr", "127.0.0.1:0", "-max-concurrent", "1", "-workers", "1",
		"-checkpoint-dir", dir0, "-store", "wal")
	addr0 := victimLine("optd listening on ")
	_, survivorLine := start("optd",
		"-addr", "127.0.0.1:0", "-max-concurrent", "2", "-workers", "1",
		"-checkpoint-dir", dir1, "-store", "wal")
	addr1 := survivorLine("optd listening on ")

	_, routerLine := start("optrouter",
		"-addr", "127.0.0.1:0", "-probe", "50ms", "-dead-after", "500ms",
		"-shard", addr0+","+dir0+",wal",
		"-shard", addr1+","+dir1+",wal")
	base := "http://" + routerLine("optrouter listening on ")

	// Load: enough medium-sized jobs that the victim's queue is non-empty
	// for seconds. Seeds index the specs so reference runs can be replayed.
	const n = 16
	spec := func(seed int) string {
		return fmt.Sprintf(`{"objective":"rosenbrock","dim":3,"algorithm":"pc","sigma0":50,"seed":%d,"tol":-1,"budget":1e12,"max_iterations":400,"tenant":"team%d"}`, seed, seed%2)
	}
	submit := func(body string) string {
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]string
		json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %v", resp.StatusCode, out)
		}
		return out["id"]
	}
	seedOf := map[string]int{}
	for i := 0; i < n; i++ {
		id := submit(spec(1000 + i))
		seedOf[id] = 1000 + i
	}

	// Kill the victim once it demonstrably holds load: SIGKILL, no
	// graceful shutdown, no final checkpoint flush.
	var victimJobs []map[string]any
	poll(t, 30*time.Second, func() bool {
		victimJobs = nil
		if err := getJSON("http://"+addr0+"/v1/jobs", &victimJobs); err != nil {
			return false
		}
		active := 0
		for _, j := range victimJobs {
			if s := j["state"]; s == "queued" || s == "running" {
				active++
			}
		}
		return active >= 2
	}, "victim shard holding load")
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	// The router must declare the victim dead and hand its range (and its
	// WAL) to the survivor.
	var health struct {
		Shards []struct {
			Dead    bool `json:"dead"`
			Adopter int  `json:"adopter"`
		} `json:"shards"`
	}
	poll(t, 30*time.Second, func() bool {
		if err := getJSON(base+"/healthz", &health); err != nil {
			return false
		}
		return len(health.Shards) == 2 && health.Shards[0].Dead
	}, "router declaring the victim dead")
	if health.Shards[0].Adopter != 1 {
		t.Fatalf("adopter = %d, want 1", health.Shards[0].Adopter)
	}

	// The survivor's roster must show adopted (resumed) jobs.
	var recovered []string
	poll(t, 30*time.Second, func() bool {
		var jobs []map[string]any
		if err := getJSON("http://"+addr1+"/v1/jobs", &jobs); err != nil {
			return false
		}
		recovered = recovered[:0]
		for _, j := range jobs {
			if j["resumed"] == true {
				recovered = append(recovered, j["id"].(string))
			}
		}
		return len(recovered) > 0
	}, "survivor adopting the victim's jobs")

	// Every recovered job drains through the router...
	for _, id := range recovered {
		poll(t, 120*time.Second, func() bool {
			var st map[string]any
			if err := getJSON(base+"/v1/jobs/"+id, &st); err != nil {
				return false
			}
			if s := st["state"]; s == "failed" || s == "canceled" {
				t.Fatalf("recovered job %s ended %v", id, s)
			}
			return st["state"] == "done"
		}, "recovered job "+id)
	}

	// ...with results byte-identical to fresh, uninterrupted runs of the
	// same specs, submitted through the same router.
	result := func(id string) string {
		var res struct {
			State  string          `json:"state"`
			Result json.RawMessage `json:"result"`
		}
		if err := getJSON(base+"/v1/jobs/"+id+"/result", &res); err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		if res.State != "done" || len(res.Result) == 0 {
			t.Fatalf("job %s result: state=%s body=%s", id, res.State, res.Result)
		}
		return string(res.Result)
	}
	for _, id := range recovered {
		seed, ok := seedOf[id]
		if !ok {
			t.Fatalf("recovered job %s was never submitted by this test", id)
		}
		ref := submit(spec(seed))
		poll(t, 120*time.Second, func() bool {
			var st map[string]any
			if err := getJSON(base+"/v1/jobs/"+ref, &st); err != nil {
				return false
			}
			return st["state"] == "done"
		}, "reference job "+ref)
		if got, want := result(id), result(ref); got != want {
			t.Errorf("recovered job %s (seed %d) is not byte-identical to its uninterrupted rerun\nrecovered: %s\nreference: %s",
				id, seed, got, want)
		}
	}

	// Tenant accounting still answers through the router after failover.
	var tl struct {
		Tenants []map[string]any `json:"tenants"`
	}
	if err := getJSON(base+"/v1/tenants", &tl); err != nil || len(tl.Tenants) == 0 {
		t.Fatalf("merged tenants after failover: %v %v", err, tl.Tenants)
	}
}

// poll retries cond until it holds or the deadline passes.
func poll(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// getJSON fetches one JSON document, returning an error on transport
// failure or a non-200 status (expected chaos while a shard is down).
func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
