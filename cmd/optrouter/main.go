// Command optrouter is the shard router for a multi-replica optd
// deployment: it spreads submitted jobs across N optd shards by a
// deterministic hash of the job ID, proxies the whole optd REST surface
// (status, results, NDJSON traces, cancellation, tenant accounting),
// health-checks the shards, and drives coordinator failover — when a shard
// dies, the next alive shard adopts its durable job store and the router
// re-targets the dead shard's hash range at the adopter. Recovered jobs
// resume bitwise-deterministically, so a client polling through the router
// cannot tell a failover happened except by latency.
//
// Each -shard flag names one replica as addr[,store-dir[,store-kind]]; the
// store dir must be readable by the surviving replicas (shared or
// replicated storage) for failover to work, and store-kind is "file"
// (default) or "wal":
//
//	optd -addr :8081 -checkpoint-dir /srv/optd/s0 -store wal &
//	optd -addr :8082 -checkpoint-dir /srv/optd/s1 -store wal &
//	optrouter -addr :8080 \
//	    -shard localhost:8081,/srv/optd/s0,wal \
//	    -shard localhost:8082,/srv/optd/s1,wal &
//	curl -s localhost:8080/healthz   # router role + shard table
//	curl -s localhost:8080/v1/jobs -d '{"objective":"rosenbrock","dim":3,"algorithm":"pc","sigma0":100,"seed":7,"max_iterations":200}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/shard"
)

func main() {
	var shards []shard.Shard
	flag.Func("shard", "optd replica as addr[,store-dir[,store-kind]] (repeatable)", func(v string) error {
		parts := strings.SplitN(v, ",", 3)
		s := shard.Shard{Addr: parts[0]}
		if len(parts) > 1 {
			s.Dir = parts[1]
		}
		if len(parts) > 2 {
			s.Store = parts[2]
		}
		if s.Addr == "" {
			return fmt.Errorf("empty shard address")
		}
		shards = append(shards, s)
		return nil
	})
	var (
		addr      = flag.String("addr", "localhost:8080", "listen address")
		probe     = flag.Duration("probe", 250*time.Millisecond, "shard health-check interval")
		deadAfter = flag.Duration("dead-after", 2*time.Second, "unreachable time before a shard is declared dead and failed over")
		idPrefix  = flag.String("id-prefix", "r", "router-assigned job ID prefix (distinct per router sharing shards)")
	)
	flag.Parse()
	if len(shards) == 0 {
		fmt.Fprintln(os.Stderr, "optrouter: at least one -shard is required")
		os.Exit(2)
	}
	fmt.Printf("optrouter starting: addr=%s shards=%d probe=%s dead-after=%s\n", *addr, len(shards), *probe, *deadAfter)

	events := obs.NewLogger(os.Stderr)
	r, err := shard.New(shard.Config{
		Shards:    shards,
		Probe:     *probe,
		DeadAfter: *deadAfter,
		IDPrefix:  *idPrefix,
		Events:    events,
	})
	if err != nil {
		fatal(err)
	}
	defer r.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Scripts and the e2e harness parse this line, like optd's.
	fmt.Printf("optrouter listening on %s\n", ln.Addr())
	srv := &http.Server{Handler: r.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("received %s; shutting down\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
