// Command mwopt is the Chapter-4 optimization program: it consumes an
// $OPTROOT directory tree (input file, systems/<name>/run.sh phases,
// properties/prop*.{sh,val,w}), sizes the processor request (one per run.sh
// found), and runs the stochastic simplex over the user's simulation
// scripts.
//
//	mwopt -alg det -iters 50 /path/to/optroot
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/mw"
	"repro/internal/optroot"
)

func main() {
	var (
		algName = flag.String("alg", "det", "algorithm: det, mn, pc, pc+mn, anderson")
		iters   = flag.Int("iters", 50, "maximum simplex iterations")
		tol     = flag.Float64("tol", 1e-6, "spread termination tolerance")
		samples = flag.Float64("resample", 1, "sampling batches per wait round")
		seed    = flag.Int64("seed", 1, "random seed, exported to user scripts as OPT_SEED")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: mwopt [flags] <OPTROOT>")
		os.Exit(2)
	}
	fmt.Printf("mwopt: seed=%d\n", *seed)

	root, err := optroot.Load(flag.Arg(0))
	fatal(err)
	root.Seed = *seed
	fmt.Printf("OPTROOT %s\n", root.Dir)
	fmt.Printf("parameters: %v (d=%d)\n", root.ParamNames, root.Dim())
	fmt.Printf("systems: %d, properties: %d\n", len(root.Systems), len(root.Properties))
	fmt.Printf("processor request: %d (one per run.sh)\n", root.Processors())

	// Show the section-4.2 machinefile allocation for the equivalent MW
	// deployment (Ns = number of systems).
	d := root.Dim()
	ns := len(root.Systems)
	need := mw.ExpectedProcesses(d, ns)
	machines := mw.GenerateMachinefile(need/8+1, 8)
	if alloc, allocErr := machines.Allocate(d, ns); allocErr == nil {
		fmt.Printf("MW deployment: %d processes (1 master, %d workers, %d servers, %d clients) over %d nodes\n",
			alloc.Total(), d+3, d+3, (d+3)*ns, len(alloc.NodeUsage()))
	}

	alg, err := repro.ParseAlgorithm(*algName)
	fatal(err)
	cfg := repro.DefaultConfig(alg)
	cfg.MaxIterations = *iters
	cfg.Tol = *tol
	cfg.Resample = *samples
	cfg.MaxWalltime = 0

	space := optroot.NewSpace(root)
	res, err := repro.Run(context.Background(), space,
		repro.WithConfig(cfg),
		repro.WithInitialSimplex(root.InitialSimplex),
		repro.WithTrace(func(e repro.TraceEvent) {
			fmt.Printf("iter %4d  g(best)=%.6g  move=%s\n", e.Iter, e.Best, e.Move)
		}))
	fatal(err)
	if serr := space.Err(); serr != nil {
		fmt.Fprintf(os.Stderr, "warning: some evaluations failed: %v\n", serr)
	}

	fmt.Printf("\nterminated (%s) after %d iterations, %d evaluations\n",
		res.Termination, res.Iterations, res.Evaluations)
	fmt.Printf("best cost: %.6g\n", res.BestG)
	fmt.Println("best parameters:")
	for i, name := range root.ParamNames {
		fmt.Printf("  %-12s %.6g\n", name, res.BestX[i])
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
