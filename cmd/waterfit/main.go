// Command waterfit runs the paper's application study: automated
// reparameterization of the TIP4P water model (section 3.5).
//
// By default the fast surrogate property engine drives a full optimization
// over the MW deployment and reports the final parameters and properties.
// With -validate-md, the optimized parameters are additionally evaluated
// with a genuine rigid-TIP4P molecular dynamics run (internal/md), which
// takes a few seconds. With -md-only, a single parameter set is
// evaluated by MD without any optimization.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/experiments"
	"repro/internal/water"
)

func main() {
	var (
		algName    = flag.String("alg", "pc", "algorithm: mn, pc, pc+mn")
		quick      = flag.Bool("quick", false, "reduced budget")
		seed       = flag.Int64("seed", 1, "random seed")
		validateMD = flag.Bool("validate-md", false, "re-evaluate the optimized parameters with real MD")
		mdOnly     = flag.Bool("md-only", false, "skip optimization; evaluate -eps/-sigma/-qh with MD")
		mdN        = flag.Int("md-n", 64, "MD molecules (perfect cube)")
		eps        = flag.Float64("eps", 0.1550, "epsilon for -md-only (kcal/mol)")
		sigmaP     = flag.Float64("sigma", 3.154, "sigma for -md-only (A)")
		qh         = flag.Float64("qh", 0.52, "qH for -md-only (e)")
	)
	flag.Parse()
	fmt.Printf("waterfit: seed=%d\n", *seed)

	if *mdOnly {
		theta := water.Params{Epsilon: *eps, Sigma: *sigmaP, QH: *qh}
		fmt.Printf("evaluating %s with rigid-TIP4P MD (N=%d)...\n", theta, *mdN)
		props, err := water.RealProperties(theta, water.MDConfig{N: *mdN, Seed: *seed})
		fatal(err)
		printProps("MD-measured", props)
		fmt.Printf("cost (eq 3.4): %.4f\n", water.Cost(props))
		return
	}

	alg, err := repro.ParseAlgorithm(*algName)
	fatal(err)
	opt := experiments.Options{Quick: *quick, Seed: *seed}
	fmt.Printf("optimizing TIP4P parameters with %s over the MW deployment (surrogate engine)...\n", alg)
	res, err := experiments.WaterStudy(opt, alg)
	fatal(err)

	fmt.Printf("\nconverged after %d simplex steps\n", res.Steps)
	fmt.Printf("final parameters: %s\n", res.Final)
	fmt.Printf("published TIP4P:  %s\n", water.TIP4PParams())
	fmt.Printf("noise-free cost:  %.4f (TIP4P: %.4f)\n",
		res.Cost, water.NoiseFreeCost(water.TIP4PParams().Vec()))
	printProps("surrogate", water.NoiseFreeProperties(res.Final))

	if *validateMD {
		fmt.Printf("\nvalidating with rigid-TIP4P MD (N=%d, short run)...\n", *mdN)
		props, err := water.RealProperties(res.Final, water.MDConfig{N: *mdN, Seed: *seed})
		fatal(err)
		printProps("MD-measured", props)
	}
}

func printProps(label string, props [water.NumProperties]float64) {
	fmt.Printf("%s properties (targets in parentheses):\n", label)
	for p := water.Property(0); p < water.NumProperties; p++ {
		unit := p.Units()
		if unit != "" {
			unit = " " + unit
		}
		fmt.Printf("  %-4s %12.5g%s  (%g)\n", p, props[p], unit, water.Targets[p])
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
