package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestOptdFleetProcessE2E is the distributed-mode end-to-end exercise CI
// runs with real processes: build optd and optworker, launch the server
// with a fleet listener and two worker agents, submit a fleet job, SIGKILL
// one agent mid-run, and assert the job completes with a result
// byte-identical to the in-process run of the same spec.
//
// The DIST_PROTO environment variable ("binary" by default, or "json")
// selects the frame codec both sides run under; CI runs the test once per
// codec, proving the determinism contract is codec-independent end to end.
func TestOptdFleetProcessE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	proto := os.Getenv("DIST_PROTO")
	if proto == "" {
		proto = "binary"
	}
	bin := buildFleetBinaries(t)

	// Launch optd with both listeners on ephemeral ports and parse the
	// actual addresses from its stdout.
	optd := exec.Command(filepath.Join(bin, "optd"),
		"-addr", "127.0.0.1:0", "-fleet-addr", "127.0.0.1:0", "-fleet-proto", proto, "-max-concurrent", "2")
	optdOut, err := optd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	optd.Stderr = optd.Stdout
	if err := optd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		optd.Process.Kill()
		optd.Wait()
	})
	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(optdOut)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	waitLine := func(prefix string) string {
		deadline := time.After(30 * time.Second)
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("optd exited before printing %q", prefix)
				}
				if strings.HasPrefix(line, prefix) {
					return strings.TrimSpace(strings.TrimPrefix(line, prefix))
				}
			case <-deadline:
				t.Fatalf("optd never printed %q", prefix)
			}
		}
	}
	fleetAddr := waitLine("fleet listening on ")
	fleetAddr, _, _ = strings.Cut(fleetAddr, " (")
	httpAddr := waitLine("optd listening on ")
	base := "http://" + httpAddr

	// Two worker agents; the per-task latency keeps the fleet job slow
	// enough to kill one agent genuinely mid-run.
	startAgent := func(name string) *exec.Cmd {
		agent := exec.Command(filepath.Join(bin, "optworker"),
			"-connect", fleetAddr, "-name", name, "-capacity", "2", "-latency", "2ms", "-proto", proto)
		if err := agent.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			agent.Process.Kill()
			agent.Wait()
		})
		return agent
	}
	victim := startAgent("victim")
	startAgent("survivor")

	// Wait for both agents to register.
	var health struct {
		Fleet struct {
			Protocol    string           `json:"protocol"`
			Workers     []map[string]any `json:"workers"`
			DeadWorkers uint64           `json:"dead_workers"`
		} `json:"fleet"`
	}
	poll(t, 30*time.Second, func() bool {
		health.Fleet.Workers = nil
		mustGetJSON(t, base+"/healthz", &health)
		return len(health.Fleet.Workers) == 2
	}, "both agents registered")
	if health.Fleet.Protocol != proto {
		t.Errorf("healthz fleet protocol = %q, want %q", health.Fleet.Protocol, proto)
	}
	for _, w := range health.Fleet.Workers {
		if w["protocol"] != proto {
			t.Errorf("worker %v negotiated %v, want %q", w["name"], w["protocol"], proto)
		}
	}

	spec := map[string]any{
		"objective": "rosenbrock", "dim": 3, "algorithm": "pc",
		"sigma0": 50.0, "seed": 13, "budget": 1e12, "tol": -1.0, "max_iterations": 150,
	}
	submit := func(fleet bool) string {
		s := map[string]any{}
		for k, v := range spec {
			s[k] = v
		}
		s["fleet"] = fleet
		payload, _ := json.Marshal(s)
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]string
		json.NewDecoder(resp.Body).Decode(&out)
		if resp.StatusCode != 202 {
			t.Fatalf("submit: %d %v", resp.StatusCode, out)
		}
		return out["id"]
	}

	fleetJob := submit(true)

	// Kill the victim once the job is demonstrably mid-run.
	var st struct {
		State      string `json:"state"`
		Iterations int    `json:"iterations"`
	}
	poll(t, 60*time.Second, func() bool {
		mustGetJSON(t, base+"/v1/jobs/"+fleetJob, &st)
		if st.State == "done" {
			t.Fatalf("fleet job finished before the kill could land; raise max_iterations")
		}
		return st.State == "running" && st.Iterations >= 15
	}, "fleet job mid-run")
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}

	// The job must still complete, on the survivor alone.
	poll(t, 120*time.Second, func() bool {
		mustGetJSON(t, base+"/v1/jobs/"+fleetJob, &st)
		if st.State == "failed" || st.State == "canceled" {
			t.Fatalf("fleet job ended %s after worker kill", st.State)
		}
		return st.State == "done"
	}, "fleet job completion after worker kill")

	// The reference: the same spec in-process on the same server.
	localJob := submit(false)
	poll(t, 60*time.Second, func() bool {
		mustGetJSON(t, base+"/v1/jobs/"+localJob, &st)
		return st.State == "done"
	}, "in-process job completion")

	result := func(id string) string {
		var res struct {
			State  string          `json:"state"`
			Result json.RawMessage `json:"result"`
		}
		mustGetJSON(t, base+"/v1/jobs/"+id+"/result", &res)
		if res.State != "done" || len(res.Result) == 0 {
			t.Fatalf("job %s result: state=%s body=%s", id, res.State, res.Result)
		}
		return string(res.Result)
	}
	fleetResult, localResult := result(fleetJob), result(localJob)
	if fleetResult != localResult {
		t.Errorf("fleet result (with mid-run worker kill) is not byte-identical to the in-process result\nfleet: %s\nlocal: %s",
			fleetResult, localResult)
	}

	mustGetJSON(t, base+"/healthz", &health)
	if health.Fleet.DeadWorkers != 1 || len(health.Fleet.Workers) != 1 {
		t.Errorf("healthz fleet after kill: %d dead, %d alive; want 1 and 1",
			health.Fleet.DeadWorkers, len(health.Fleet.Workers))
	}
}

// poll retries cond until it holds or the deadline passes.
func poll(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// mustGetJSON fetches and decodes one JSON document.
func mustGetJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
}
