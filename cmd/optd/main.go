// Command optd is the optimization job server: an HTTP/JSON front end over
// the internal/jobs manager. It multiplexes many concurrent optimization
// runs over one shared sampling worker fleet, streams per-iteration progress,
// and (with -checkpoint-dir) persists checkpoints so a killed server resumes
// its jobs bitwise-deterministically on restart.
//
// With -fleet-addr the server also opens a worker-registration listener:
// remote optworker agents dial it, and jobs submitted with "fleet": true run
// their sampling over that fleet — bitwise identical to in-process runs,
// surviving worker death via deterministic re-dispatch. /healthz reports the
// fleet's workers, capacity and queue depths.
//
// Example session:
//
//	optd -addr :8080 -fleet-addr :9090 -checkpoint-dir /var/lib/optd &
//	optworker -connect localhost:9090 -capacity 4 &
//	optworker -connect localhost:9090 -capacity 4 &
//	curl -s localhost:8080/healthz                 # build info, uptime, pool width, job counts
//	curl -s localhost:8080/strategies              # what this server can run
//	curl -s localhost:8080/v1/jobs -d '{"objective":"rosenbrock","dim":3,"algorithm":"pc","sigma0":100,"seed":7,"max_iterations":200}'
//	curl -s localhost:8080/v1/jobs -d '{"objective":"rastrigin","dim":2,"algorithm":"hybrid","sigma0":2,"seed":7,"particles":20,"swarm_iterations":40}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/trace   # NDJSON progress stream
//	curl -s localhost:8080/v1/jobs/j000001/result
//	curl -s -X DELETE localhost:8080/v1/jobs/j000001
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/dist"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/sim"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "listen address")
		fleetAddr  = flag.String("fleet-addr", "", "remote-worker registration address (empty = no remote fleet)")
		fleetProto = flag.String("fleet-proto", "binary", "frame codec ceiling for worker sessions: binary (negotiate the compact codec) or json (force the fallback)")
		maxConc    = flag.Int("max-concurrent", 4, "jobs running simultaneously")
		workers    = flag.Int("workers", 0, "shared sampling fleet size (0 = GOMAXPROCS)")
		schedPol   = flag.String("sched-policy", "fair", "fleet scheduling across tenants: fair (weighted fair-share) or fifo (single global queue)")
		ckptDir    = flag.String("checkpoint-dir", "", "durable checkpoint directory (empty = no durability)")
		storeKind  = flag.String("store", "file", "durable job store kind: file (one file per job) or wal (append-only log)")
		ckptEvery  = flag.Int("checkpoint-every", 20, "iterations between checkpoints")
		seed       = flag.Int64("seed", 1, "default random seed for specs that omit one")
		noRecover  = flag.Bool("no-recover", false, "skip resuming checkpointed jobs at startup")
		traceBufSz = flag.Int("trace-buffer", 256, "per-subscriber progress event buffer")

		tenantMaxQueued  = flag.Int("tenant-max-queued", 0, "per-tenant queued-job cap (0 = unlimited)")
		tenantMaxRunning = flag.Int("tenant-max-running", 0, "per-tenant running-job cap (0 = unlimited)")
		tenantRate       = flag.Float64("tenant-rate", 0, "per-tenant submissions/sec token-bucket rate (0 = unlimited)")
		tenantBurst      = flag.Int("tenant-burst", 0, "per-tenant token-bucket burst (0 = derive from rate)")
	)
	// -tenant-weight is repeatable: a bare integer sets the default
	// fair-share weight every tenant inherits; NAME=W pins one tenant's
	// weight. Weight w buys w fleet dispatch slots per weight-1 slot while
	// both tenants are backlogged.
	defaultWeight := 0
	tenantWeights := map[string]int{}
	flag.Func("tenant-weight", "fair-share weight, either W (default for all tenants) or NAME=W (repeatable)", func(v string) error {
		name, val, named := strings.Cut(v, "=")
		if !named {
			w, err := strconv.Atoi(v)
			if err != nil || w < 1 {
				return fmt.Errorf("want a positive integer, got %q", v)
			}
			defaultWeight = w
			return nil
		}
		w, err := strconv.Atoi(val)
		if err != nil || w < 1 || name == "" {
			return fmt.Errorf("want NAME=positive-integer, got %q", v)
		}
		tenantWeights[name] = w
		return nil
	})
	flag.Parse()
	fmt.Printf("optd starting: addr=%s fleet-addr=%q seed=%d max-concurrent=%d workers=%d checkpoint-dir=%q\n",
		*addr, *fleetAddr, *seed, *maxConc, *workers, *ckptDir)

	// Structured NDJSON event log on stderr: worker lifecycle, job state
	// transitions, checkpoint writes. stdout keeps the human startup lines
	// (scripts and the e2e harness parse those).
	events := obs.NewLogger(os.Stderr)

	var fleet *dist.Coordinator
	var fleetSampler sim.FleetSampler // typed nil must stay nil in the config
	if *fleetAddr != "" {
		if _, err := dist.ParseProto(*fleetProto); err != nil {
			fatal(err)
		}
		fleet = dist.NewCoordinator(dist.Config{Protocol: *fleetProto, Events: events})
		if err := fleet.Listen(*fleetAddr); err != nil {
			fatal(err)
		}
		defer fleet.Close()
		fleetSampler = fleet
		fmt.Printf("fleet listening on %s (optworker -connect, proto=%s)\n", fleet.Addr(), *fleetProto)
	}

	mgr, err := jobs.New(jobs.Config{
		MaxConcurrent:   *maxConc,
		Workers:         *workers,
		SchedPolicy:     *schedPol,
		CheckpointDir:   *ckptDir,
		StoreKind:       *storeKind,
		CheckpointEvery: *ckptEvery,
		TraceBuffer:     *traceBufSz,
		Fleet:           fleetSampler,
		Events:          events,
		DefaultQuota: jobs.Quota{
			MaxQueued:  *tenantMaxQueued,
			MaxRunning: *tenantMaxRunning,
			RatePerSec: *tenantRate,
			Burst:      *tenantBurst,
			Weight:     defaultWeight,
		},
		TenantQuotas: func() map[string]jobs.Quota {
			if len(tenantWeights) == 0 {
				return nil
			}
			quotas := make(map[string]jobs.Quota, len(tenantWeights))
			for name, w := range tenantWeights {
				q := jobs.Quota{
					MaxQueued:  *tenantMaxQueued,
					MaxRunning: *tenantMaxRunning,
					RatePerSec: *tenantRate,
					Burst:      *tenantBurst,
					Weight:     w,
				}
				quotas[name] = q
			}
			return quotas
		}(),
	})
	if err != nil {
		fatal(err)
	}
	defer mgr.Close()

	if *ckptDir != "" && !*noRecover {
		ids, recErr := mgr.Recover()
		if recErr != nil {
			fmt.Fprintf(os.Stderr, "warning: recover: %v\n", recErr)
		}
		if len(ids) > 0 {
			fmt.Printf("recovered %d checkpointed job(s): %v\n", len(ids), ids)
		}
	}

	// An explicit listener so the actual address (":0" included) can be
	// reported — scripts and the e2e harness parse this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("optd listening on %s\n", ln.Addr())
	srv := &http.Server{Handler: serve.New(serve.Config{Mgr: mgr, Fleet: fleet, DefaultSeed: *seed, Events: events})}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("received %s; shutting down (running jobs checkpoint and resume on restart)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
