// Command optd is the optimization job server: an HTTP/JSON front end over
// the internal/jobs manager. It multiplexes many concurrent optimization
// runs over one shared sampling worker fleet, streams per-iteration progress,
// and (with -checkpoint-dir) persists checkpoints so a killed server resumes
// its jobs bitwise-deterministically on restart.
//
// Example session:
//
//	optd -addr :8080 -checkpoint-dir /var/lib/optd &
//	curl -s localhost:8080/healthz                 # build info, uptime, pool width, job counts
//	curl -s localhost:8080/strategies              # what this server can run
//	curl -s localhost:8080/v1/jobs -d '{"objective":"rosenbrock","dim":3,"algorithm":"pc","sigma0":100,"seed":7,"max_iterations":200}'
//	curl -s localhost:8080/v1/jobs -d '{"objective":"rastrigin","dim":2,"algorithm":"hybrid","sigma0":2,"seed":7,"particles":20,"swarm_iterations":40}'
//	curl -s localhost:8080/v1/jobs/j000001
//	curl -s localhost:8080/v1/jobs/j000001/trace   # NDJSON progress stream
//	curl -s localhost:8080/v1/jobs/j000001/result
//	curl -s -X DELETE localhost:8080/v1/jobs/j000001
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/jobs"
)

func main() {
	var (
		addr       = flag.String("addr", "localhost:8080", "listen address")
		maxConc    = flag.Int("max-concurrent", 4, "jobs running simultaneously")
		workers    = flag.Int("workers", 0, "shared sampling fleet size (0 = GOMAXPROCS)")
		ckptDir    = flag.String("checkpoint-dir", "", "durable checkpoint directory (empty = no durability)")
		ckptEvery  = flag.Int("checkpoint-every", 20, "iterations between checkpoints")
		seed       = flag.Int64("seed", 1, "default random seed for specs that omit one")
		noRecover  = flag.Bool("no-recover", false, "skip resuming checkpointed jobs at startup")
		traceBufSz = flag.Int("trace-buffer", 256, "per-subscriber progress event buffer")
	)
	flag.Parse()
	fmt.Printf("optd starting: addr=%s seed=%d max-concurrent=%d workers=%d checkpoint-dir=%q\n",
		*addr, *seed, *maxConc, *workers, *ckptDir)

	mgr, err := jobs.New(jobs.Config{
		MaxConcurrent:   *maxConc,
		Workers:         *workers,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		TraceBuffer:     *traceBufSz,
	})
	if err != nil {
		fatal(err)
	}
	defer mgr.Close()

	if *ckptDir != "" && !*noRecover {
		ids, err := mgr.Recover()
		if err != nil {
			fmt.Fprintf(os.Stderr, "warning: recover: %v\n", err)
		}
		if len(ids) > 0 {
			fmt.Printf("recovered %d checkpointed job(s): %v\n", len(ids), ids)
		}
	}

	srv := &http.Server{Addr: *addr, Handler: newServer(mgr, *seed)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fatal(err)
	case sig := <-sigc:
		fmt.Printf("received %s; shutting down (running jobs checkpoint and resume on restart)\n", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
