package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"
)

// buildFleetBinaries compiles optd and optworker into a temp dir and returns
// it. Shared by every process-level e2e test in this package.
func buildFleetBinaries(t *testing.T) string {
	t.Helper()
	bin := t.TempDir()
	for _, target := range []string{"optd", "optworker"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(bin, target), "./cmd/"+target)
		cmd.Dir = "../.."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", target, err, out)
		}
	}
	return bin
}

// lineWaiter scans a process's merged output and returns the suffix of the
// first line carrying a given prefix.
func lineWaiter(t *testing.T, cmd *exec.Cmd, who string) func(prefix string) string {
	t.Helper()
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	lines := make(chan string, 256)
	go func() {
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	return func(prefix string) string {
		deadline := time.After(30 * time.Second)
		for {
			select {
			case line, ok := <-lines:
				if !ok {
					t.Fatalf("%s exited before printing %q", who, prefix)
				}
				if strings.HasPrefix(line, prefix) {
					return strings.TrimSpace(strings.TrimPrefix(line, prefix))
				}
			case <-deadline:
				t.Fatalf("%s never printed %q", who, prefix)
			}
		}
	}
}

// scrapeMetrics fetches a /metrics endpoint and parses the Prometheus text
// exposition into a map keyed by full series name (labels included).
func scrapeMetrics(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("%s: Content-Type = %q, want text/plain exposition", url, ct)
	}
	series := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("%s: malformed sample line %q", url, line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("%s: malformed value in %q: %v", url, line, err)
		}
		series[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return series
}

// sumSeries totals every series whose name starts with base (covering all
// label combinations of one metric).
func sumSeries(series map[string]float64, base string) float64 {
	var sum float64
	for name, v := range series {
		if name == base || strings.HasPrefix(name, base+"{") {
			sum += v
		}
	}
	return sum
}

// TestOptdMetricsE2E is the observability end-to-end exercise: real optd and
// optworker processes, one in-process job (driving the sched pool) and one
// fleet job (driving the dist wire), then a scrape of optd's /metrics and of
// the agent's -debug-addr listener asserting the cross-layer metric catalog
// is present and moving.
func TestOptdMetricsE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	bin := buildFleetBinaries(t)

	optd := exec.Command(filepath.Join(bin, "optd"),
		"-addr", "127.0.0.1:0", "-fleet-addr", "127.0.0.1:0", "-max-concurrent", "2")
	optdLine := lineWaiter(t, optd, "optd")
	fleetAddr := optdLine("fleet listening on ")
	fleetAddr, _, _ = strings.Cut(fleetAddr, " (")
	base := "http://" + optdLine("optd listening on ")

	agent := exec.Command(filepath.Join(bin, "optworker"),
		"-connect", fleetAddr, "-name", "obs", "-capacity", "2", "-debug-addr", "127.0.0.1:0")
	agentLine := lineWaiter(t, agent, "optworker")
	debugAddr := agentLine("optworker debug listening on ")
	debugAddr, _, _ = strings.Cut(debugAddr, " (")

	var health struct {
		Fleet struct {
			Workers []map[string]any `json:"workers"`
		} `json:"fleet"`
		Metrics map[string]any `json:"metrics"`
	}
	poll(t, 30*time.Second, func() bool {
		health.Fleet.Workers = nil
		mustGetJSON(t, base+"/healthz", &health)
		return len(health.Fleet.Workers) == 1
	}, "agent registered")
	if health.Metrics == nil {
		t.Error("healthz carries no metrics snapshot")
	}

	// One job over the in-process sched pool, one over the fleet, so the
	// scrape covers both sampling paths.
	for _, fleet := range []bool{false, true} {
		spec := fmt.Sprintf(`{"objective":"rosenbrock","dim":3,"algorithm":"pc",
			"sigma0":50,"seed":13,"budget":1e12,"tol":-1,"max_iterations":60,"fleet":%v}`, fleet)
		resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]string
		json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != 202 {
			t.Fatalf("submit fleet=%v: %d %v", fleet, resp.StatusCode, out)
		}
		id := out["id"]
		var st struct {
			State string `json:"state"`
		}
		poll(t, 60*time.Second, func() bool {
			mustGetJSON(t, base+"/v1/jobs/"+id, &st)
			if st.State == "failed" || st.State == "canceled" {
				t.Fatalf("job %s (fleet=%v) ended %s", id, fleet, st.State)
			}
			return st.State == "done"
		}, "job completion")
	}

	series := scrapeMetrics(t, base+"/metrics")
	for _, m := range []string{
		"sched_batches_total",
		"sched_tasks_total",
		"sim_draws_total",
		"core_iterations_total",
		"jobs_completed_total",
		"dist_frames_total",
		"dist_bytes_total",
		"dist_tasks_completed_total",
		"dist_dispatch_rtt_seconds_count",
	} {
		if v := sumSeries(series, m); v <= 0 {
			t.Errorf("optd /metrics: %s = %v, want > 0", m, v)
		}
	}
	// RTT sanity: the recorded round trips must be positive and under the
	// job's wall clock (a minute is generous for 2ms tasks on localhost).
	if sum := sumSeries(series, "dist_dispatch_rtt_seconds_sum"); sum <= 0 || sum/sumSeries(series, "dist_dispatch_rtt_seconds_count") > 60 {
		t.Errorf("optd /metrics: implausible RTT sum %v over %v observations",
			sum, sumSeries(series, "dist_dispatch_rtt_seconds_count"))
	}

	// The agent's own registry, on its debug listener.
	agentSeries := scrapeMetrics(t, "http://"+debugAddr+"/metrics")
	for _, m := range []string{
		"dist_worker_sessions_total",
		"dist_worker_tasks_total",
		"dist_frames_total",
	} {
		if v := sumSeries(agentSeries, m); v <= 0 {
			t.Errorf("optworker /metrics: %s = %v, want > 0", m, v)
		}
	}

	// pprof rides the same mux on both processes.
	for _, url := range []string{base + "/debug/pprof/cmdline", "http://" + debugAddr + "/debug/pprof/cmdline"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", url, resp.StatusCode)
		}
	}
}

// TestOptworkerFatalExitCodes asserts the agent's startup failure surface:
// distinct exit codes and a structured worker_fatal event on stderr, not a
// silent death.
func TestOptworkerFatalExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("process e2e skipped in -short mode")
	}
	bin := buildFleetBinaries(t)
	cases := []struct {
		name string
		args []string
		code int
	}{
		{"bad proto", []string{"-proto", "msgpack"}, 2},
		{"bad connect", []string{"-connect", "no-such-host.invalid:bogus"}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(filepath.Join(bin, "optworker"), tc.args...)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("optworker %v: err = %v, want exit error\n%s", tc.args, err, out)
			}
			if got := ee.ExitCode(); got != tc.code {
				t.Errorf("optworker %v: exit code %d, want %d\n%s", tc.args, got, tc.code, out)
			}
			if !strings.Contains(string(out), `"event":"worker_fatal"`) {
				t.Errorf("optworker %v: no worker_fatal event in output:\n%s", tc.args, out)
			}
		})
	}
}
