package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/testfunc"
)

func startTestServer(t *testing.T, cfg jobs.Config) *httptest.Server {
	t.Helper()
	if cfg.Objectives == nil {
		cfg.Objectives = map[string]func([]float64) float64{}
	}
	// A deliberately slow objective so cancellation can land mid-run.
	cfg.Objectives["slowrosen"] = func(x []float64) float64 {
		time.Sleep(500 * time.Microsecond)
		return testfunc.Rosenbrock(x)
	}
	mgr, err := jobs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(mgr, nil, 1))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return ts
}

func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

// TestOptdE2E is the end-to-end exercise CI runs: start the server, submit a
// small PC job and poll it to completion, fetch its result, stream a trace,
// and cancel a second long job mid-run.
func TestOptdE2E(t *testing.T) {
	ts := startTestServer(t, jobs.Config{MaxConcurrent: 4})

	// Health: readiness payload with pool width and per-state job counts.
	var health map[string]any
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK || health["ok"] != true {
		t.Fatalf("healthz: code %d body %v", code, health)
	}
	if w, ok := health["workers"].(float64); !ok || w < 1 {
		t.Fatalf("healthz workers = %v, want >= 1", health["workers"])
	}
	if _, ok := health["jobs"].(map[string]any); !ok {
		t.Fatalf("healthz missing job counts: %v", health)
	}

	// Submit a small PC job.
	code, body := postJSON(t, ts.URL+"/v1/jobs", jobs.Spec{
		Objective: "rosenbrock", Dim: 3, Algorithm: "pc",
		Sigma0: 50, Seed: 11, Tol: -1, Budget: 1e12, MaxIterations: 40,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id, _ := body["id"].(string)
	if id == "" {
		t.Fatalf("submit returned no id: %v", body)
	}

	// Result before completion should 409 ... unless the job already won the
	// race; either answer must be well-formed.
	var early map[string]any
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &early); code != http.StatusConflict && code != http.StatusOK {
		t.Fatalf("early result: unexpected code %d body %v", code, early)
	}

	// Poll status to completion.
	deadline := time.Now().Add(30 * time.Second)
	var st jobs.Status
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status: code %d", code)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job did not finish: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != jobs.StateDone {
		t.Fatalf("job finished %s, want done: %+v", st.State, st)
	}

	// Fetch the result.
	var res struct {
		State  jobs.State      `json:"state"`
		Result json.RawMessage `json:"result"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: code %d", code)
	}
	if res.State != jobs.StateDone || !strings.Contains(string(res.Result), "\"Iterations\":40") {
		t.Fatalf("unexpected result payload: state %s body %s", res.State, res.Result)
	}

	// Trace of a finished job: a short, valid NDJSON stream ending in a
	// terminal state event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	var last jobs.Event
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
	}
	if last.Type != "state" || !last.State.Terminal() {
		t.Fatalf("trace did not end in a terminal state event: %+v", last)
	}

	// Second job: long-running, canceled mid-run via DELETE.
	code, body = postJSON(t, ts.URL+"/v1/jobs", jobs.Spec{
		Objective: "slowrosen", Dim: 3, Algorithm: "pc",
		Sigma0: 50, Seed: 12, Tol: -1, Budget: 1e12,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit slow job: code %d body %v", code, body)
	}
	slowID, _ := body["id"].(string)
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+slowID, &st); code != http.StatusOK {
			t.Fatalf("status: code %d", code)
		}
		if st.State == jobs.StateRunning && st.Iterations > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slow job never got going: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+slowID, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: code %d", dresp.StatusCode)
	}
	for {
		getJSON(t, ts.URL+"/v1/jobs/"+slowID, &st)
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled job did not stop: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if st.State != jobs.StateCanceled {
		t.Fatalf("canceled job finished %s: %+v", st.State, st)
	}

	// List shows both jobs.
	var list []jobs.Status
	if code := getJSON(t, ts.URL+"/v1/jobs", &list); code != http.StatusOK || len(list) != 2 {
		t.Fatalf("list: code %d, %d jobs", code, len(list))
	}
}

// TestOptdTraceStreamsLive verifies the NDJSON stream delivers events while
// the job is still running, not only after it finishes.
func TestOptdTraceStreamsLive(t *testing.T) {
	ts := startTestServer(t, jobs.Config{MaxConcurrent: 1, TraceBuffer: 4096})
	code, body := postJSON(t, ts.URL+"/v1/jobs", jobs.Spec{
		Objective: "slowrosen", Dim: 3, Algorithm: "pc",
		Sigma0: 50, Seed: 5, Tol: -1, Budget: 1e12,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id, _ := body["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	traces := 0
	for sc.Scan() && traces < 3 {
		var e jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON: %v", err)
		}
		if e.Type == "trace" {
			traces++
		}
	}
	if traces < 3 {
		t.Fatalf("got %d live trace events, want >= 3", traces)
	}
	// Cancel to end the stream and free the slot quickly.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if cresp, err := http.DefaultClient.Do(req); err == nil {
		cresp.Body.Close()
	}
}

// TestOptdStrategies verifies the strategy listing: every NM-family policy
// plus the pso and hybrid strategies, with resumability flags.
func TestOptdStrategies(t *testing.T) {
	ts := startTestServer(t, jobs.Config{})
	var out struct {
		Strategies []struct {
			Name      string   `json:"name"`
			Aliases   []string `json:"aliases"`
			Resumable bool     `json:"resumable"`
			Algorithm string   `json:"algorithm"`
		} `json:"strategies"`
	}
	if code := getJSON(t, ts.URL+"/strategies", &out); code != http.StatusOK {
		t.Fatalf("strategies: code %d", code)
	}
	got := map[string]bool{} // name -> resumable
	for _, s := range out.Strategies {
		got[s.Name] = s.Resumable
	}
	for _, name := range []string{"det", "mn", "pc", "pc+mn", "anderson"} {
		if resumable, ok := got[name]; !ok || !resumable {
			t.Errorf("strategy %q: present=%v resumable=%v, want present and resumable", name, ok, resumable)
		}
	}
	for _, name := range []string{"pso", "hybrid"} {
		if resumable, ok := got[name]; !ok || resumable {
			t.Errorf("strategy %q: present=%v resumable=%v, want present and not resumable", name, ok, resumable)
		}
	}
}

// TestOptdMethodNotAllowed verifies wrong-method requests get 405 with an
// Allow header and a JSON error body.
func TestOptdMethodNotAllowed(t *testing.T) {
	ts := startTestServer(t, jobs.Config{})
	cases := []struct {
		method, path, wantAllow string
	}{
		{http.MethodPatch, "/v1/jobs", "GET, POST"},
		{http.MethodPost, "/healthz", "GET"},
		{http.MethodDelete, "/strategies", "GET"},
		{http.MethodPost, "/v1/jobs/j000001/result", "GET"},
		{http.MethodGet, "/v1/jobs/j000001/cancel", "POST"},
		{http.MethodPut, "/v1/jobs/j000001", "GET, DELETE"},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, ts.URL+c.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: code %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != c.wantAllow {
			t.Errorf("%s %s: Allow = %q, want %q", c.method, c.path, allow, c.wantAllow)
		}
		if err != nil || body["error"] == "" {
			t.Errorf("%s %s: want a JSON error body, got %v (err %v)", c.method, c.path, body, err)
		}
	}
}

// TestOptdPSOAndHybridE2E drives the new strategies through the full HTTP
// surface: submit, stream the trace, and fetch the result.
func TestOptdPSOAndHybridE2E(t *testing.T) {
	ts := startTestServer(t, jobs.Config{MaxConcurrent: 2})
	// The slow objective keeps the runs alive long enough for the trace
	// subscription to observe live progress.
	for _, spec := range []jobs.Spec{
		{Objective: "slowrosen", Dim: 2, Algorithm: "pso",
			Sigma0: 2, Seed: 7, Particles: 8, SwarmIterations: 10},
		{Objective: "slowrosen", Dim: 2, Algorithm: "hybrid",
			Sigma0: 2, Seed: 7, Particles: 8, SwarmIterations: 10,
			Tol: -1, MaxIterations: 30, Budget: 1e12},
	} {
		code, body := postJSON(t, ts.URL+"/v1/jobs", spec)
		if code != http.StatusAccepted {
			t.Fatalf("submit %s: code %d body %v", spec.Algorithm, code, body)
		}
		id, _ := body["id"].(string)

		// The trace stream must deliver per-iteration progress and end in a
		// terminal state event.
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(resp.Body)
		traces := 0
		var last jobs.Event
		for sc.Scan() {
			if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
				t.Fatalf("%s: bad NDJSON line %q: %v", spec.Algorithm, sc.Text(), err)
			}
			if last.Type == "trace" {
				traces++
			}
		}
		resp.Body.Close()
		if last.Type != "state" || last.State != jobs.StateDone {
			t.Fatalf("%s: stream ended with %+v, want done", spec.Algorithm, last)
		}
		if traces == 0 {
			t.Fatalf("%s: no trace events in stream", spec.Algorithm)
		}

		var res struct {
			State  jobs.State `json:"state"`
			Result struct {
				BestX      []float64 `json:"BestX"`
				Iterations int       `json:"Iterations"`
			} `json:"result"`
		}
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
			t.Fatalf("%s result: code %d", spec.Algorithm, code)
		}
		if res.State != jobs.StateDone || len(res.Result.BestX) != 2 || res.Result.Iterations == 0 {
			t.Fatalf("%s: unexpected result %+v", spec.Algorithm, res)
		}
	}
}

func TestOptdErrors(t *testing.T) {
	ts := startTestServer(t, jobs.Config{})
	// Unknown job.
	var out map[string]any
	if code := getJSON(t, ts.URL+"/v1/jobs/j999999", &out); code != http.StatusNotFound {
		t.Fatalf("unknown job: code %d", code)
	}
	// Invalid spec.
	if code, _ := postJSON(t, ts.URL+"/v1/jobs", jobs.Spec{Objective: "nope", Dim: 3}); code != http.StatusBadRequest {
		t.Fatalf("bad spec: code %d", code)
	}
	// Unknown field rejected.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"objective":"rosenbrock","dim":3,"bogus":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: code %d", resp.StatusCode)
	}
}
