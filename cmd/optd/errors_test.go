package main

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

// serveManager wraps an existing manager (e.g. one that just recovered
// checkpoints) in a test HTTP server.
func serveManager(t *testing.T, mgr *jobs.Manager) string {
	t.Helper()
	ts := httptest.NewServer(newServer(mgr, nil, 1))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return ts.URL
}

// This file exercises the optd failure surface the happy-path tests skip:
// syntactically malformed specs, unknown algorithms, cancels racing
// completion, clients that vanish mid trace stream, and recovery when the
// checkpoint directory holds truncated or corrupt files.

// waitTerminal polls a job until it reaches a terminal state.
func waitTerminal(t *testing.T, base, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var st jobs.Status
	for {
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code != http.StatusOK {
			t.Fatalf("status %s: code %d", id, code)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish: %+v", id, st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestOptdMalformedSpecJSON verifies a syntactically broken body is a 400
// with a JSON error, not a 500 or a hang.
func TestOptdMalformedSpecJSON(t *testing.T) {
	ts := startTestServer(t, jobs.Config{})
	for _, body := range []string{
		`{"objective":`,          // truncated mid-value
		`{"objective" "x"}`,      // missing colon
		`[1,2,3]`,                // wrong JSON shape
		"\x00\x01binary garbage", // not JSON at all
		``,                       // empty body
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out map[string]any
		decErr := json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: code %d, want 400", body, resp.StatusCode)
		}
		msg, _ := out["error"].(string)
		if decErr != nil || msg == "" {
			t.Errorf("body %q: want a JSON error payload, got %v (err %v)", body, out, decErr)
		}
	}
}

// TestOptdUnknownAlgorithm verifies an unregistered strategy name is rejected
// at submission with a message naming the registered strategies.
func TestOptdUnknownAlgorithm(t *testing.T) {
	ts := startTestServer(t, jobs.Config{})
	code, body := postJSON(t, ts.URL+"/v1/jobs", jobs.Spec{
		Objective: "rosenbrock", Dim: 3, Algorithm: "gradient-descent", Sigma0: 1,
	})
	if code != http.StatusBadRequest {
		t.Fatalf("unknown algorithm: code %d body %v", code, body)
	}
	msg, _ := body["error"].(string)
	if !strings.Contains(msg, "gradient-descent") || !strings.Contains(msg, "registered") {
		t.Errorf("error should name the bad algorithm and the registered ones, got %q", msg)
	}
}

// TestOptdCancelAfterDone verifies canceling a finished job is a harmless
// no-op: the cancel is accepted, the state stays done, and the result stays
// fetchable.
func TestOptdCancelAfterDone(t *testing.T) {
	ts := startTestServer(t, jobs.Config{})
	code, body := postJSON(t, ts.URL+"/v1/jobs", jobs.Spec{
		Objective: "rosenbrock", Dim: 2, Algorithm: "pc",
		Sigma0: 1, Seed: 3, Tol: -1, Budget: 1e12, MaxIterations: 5,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id, _ := body["id"].(string)
	if st := waitTerminal(t, ts.URL, id); st.State != jobs.StateDone {
		t.Fatalf("job finished %s, want done", st.State)
	}

	code, _ = postJSON(t, ts.URL+"/v1/jobs/"+id+"/cancel", struct{}{})
	if code != http.StatusAccepted {
		t.Fatalf("cancel after done: code %d, want 202", code)
	}
	var st jobs.Status
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &st); code != http.StatusOK || st.State != jobs.StateDone {
		t.Fatalf("state after late cancel: code %d state %s, want done", code, st.State)
	}
	var res map[string]any
	if code := getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK || res["result"] == nil {
		t.Fatalf("result after late cancel: code %d body %v", code, res)
	}
}

// TestOptdTraceDisconnectMidRun verifies a trace client vanishing mid-run
// neither kills nor stalls the job: the run finishes, and a fresh subscriber
// still gets a well-formed stream.
func TestOptdTraceDisconnectMidRun(t *testing.T) {
	ts := startTestServer(t, jobs.Config{MaxConcurrent: 1, TraceBuffer: 4096})
	code, body := postJSON(t, ts.URL+"/v1/jobs", jobs.Spec{
		Objective: "slowrosen", Dim: 3, Algorithm: "pc",
		Sigma0: 50, Seed: 9, Tol: -1, Budget: 1e12, MaxIterations: 400,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d body %v", code, body)
	}
	id, _ := body["id"].(string)

	// First subscriber: read a couple of live events, then slam the
	// connection shut mid-stream.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	seen := 0
	for sc.Scan() && seen < 2 {
		var e jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON: %v", err)
		}
		if e.Type == "trace" {
			seen++
		}
	}
	resp.Body.Close() // client disconnect, job still running
	if seen < 2 {
		t.Fatalf("never observed live trace events before disconnecting")
	}

	// The job must still run to completion...
	if st := waitTerminal(t, ts.URL, id); st.State != jobs.StateDone {
		t.Fatalf("job finished %s after subscriber disconnect, want done", st.State)
	}
	// ...and a late subscriber still gets a terminal-state stream.
	resp2, err := http.Get(ts.URL + "/v1/jobs/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	var last jobs.Event
	for sc2.Scan() {
		if err := json.Unmarshal(sc2.Bytes(), &last); err != nil {
			t.Fatalf("bad NDJSON after disconnect: %v", err)
		}
	}
	if last.Type != "state" || !last.State.Terminal() {
		t.Fatalf("late stream ended with %+v, want terminal state", last)
	}
}

// TestOptdRecoverCorruptCheckpoint kills a manager mid-run, then vandalizes
// the checkpoint directory with a truncated copy and a garbage file. The
// restarted manager must recover the intact job, report (not swallow) the
// corrupt files, and leave them on disk for the operator.
func TestOptdRecoverCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()

	// First life: run a checkpointing job and kill the manager mid-run.
	mgr1, err := jobs.New(jobs.Config{MaxConcurrent: 1, CheckpointDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mgr1.Submit(jobs.Spec{
		Objective: "rosenbrock", Dim: 3, Algorithm: "pc",
		Sigma0: 50, Seed: 21, Tol: -1, Budget: 1e12, MaxIterations: 100_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, id+".ckpt.json")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint file never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	mgr1.Close() // the "kill": running jobs keep their checkpoints

	// Vandalism: a truncated copy under another job ID and a garbage file.
	valid, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "j000777.ckpt.json")
	if err := os.WriteFile(truncated, valid[:len(valid)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "j000778.ckpt.json")
	if err := os.WriteFile(garbage, []byte("\x00not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Second life: recover. The intact job must come back, the corrupt
	// files must be reported and preserved.
	mgr2, err := jobs.New(jobs.Config{MaxConcurrent: 1, CheckpointDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	ids, rerr := mgr2.Recover()
	if rerr == nil {
		t.Error("Recover swallowed the corrupt checkpoint files")
	}
	if len(ids) != 1 || ids[0] != id {
		t.Fatalf("recovered %v, want [%s]", ids, id)
	}
	for _, f := range []string{truncated, garbage} {
		if _, err := os.Stat(f); err != nil {
			t.Errorf("corrupt checkpoint %s was deleted during recovery: %v", f, err)
		}
	}

	// The recovered job is live over HTTP and can be canceled cleanly.
	ts := serveManager(t, mgr2)
	var st jobs.Status
	if code := getJSON(t, ts+"/v1/jobs/"+id, &st); code != http.StatusOK || !st.Resumed {
		t.Fatalf("recovered job status: code %d %+v, want resumed", code, st)
	}
	if code, _ := postJSON(t, ts+"/v1/jobs/"+id+"/cancel", struct{}{}); code != http.StatusAccepted {
		t.Fatalf("cancel recovered job: code %d", code)
	}
	if st := waitTerminal(t, ts, id); st.State != jobs.StateCanceled {
		t.Fatalf("recovered job finished %s, want canceled", st.State)
	}
}
