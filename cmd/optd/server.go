package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/jobs"
	"repro/internal/obs"
)

// server adapts a jobs.Manager to HTTP/JSON. Endpoints:
//
//	GET    /healthz              readiness probe: build info, uptime, pool
//	                             width, job counts by state
//	GET    /strategies           the registered optimization strategies
//	POST   /v1/jobs              submit a job (body: jobs.Spec) -> {"id": ...}
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/result  final result (409 until terminal)
//	GET    /v1/jobs/{id}/trace   NDJSON stream of progress events
//	POST   /v1/jobs/{id}/cancel  request cancellation
//	DELETE /v1/jobs/{id}         request cancellation (alias)
//	GET    /metrics              Prometheus text exposition of the obs registry
//	GET    /debug/pprof/...      net/http/pprof profiles
//
// A known path with the wrong method returns 405 with an Allow header and a
// JSON error body, so load balancers and clients see a structured answer
// instead of the mux default.
type server struct {
	mgr *jobs.Manager
	// fleet is the remote-worker coordinator when -fleet-addr is set; its
	// status is served in /healthz. Nil without a fleet.
	fleet *dist.Coordinator
	// defaultSeed is applied to submitted specs that leave Seed zero, so
	// every job is reproducible from the server log plus its spec.
	defaultSeed int64
	// started anchors the /healthz uptime report.
	started time.Time
}

// newServer builds the HTTP handler.
func newServer(mgr *jobs.Manager, fleet *dist.Coordinator, defaultSeed int64) http.Handler {
	s := &server{mgr: mgr, fleet: fleet, defaultSeed: defaultSeed, started: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("GET /strategies", s.strategies)
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	obs.Default().RegisterDebug(mux)
	// Method-less fallbacks: less specific than the method patterns above,
	// they match only requests whose method is not served on that path.
	mux.HandleFunc("/healthz", methodNotAllowed("GET"))
	mux.HandleFunc("/strategies", methodNotAllowed("GET"))
	mux.HandleFunc("/v1/jobs", methodNotAllowed("GET", "POST"))
	mux.HandleFunc("/v1/jobs/{id}", methodNotAllowed("GET", "DELETE"))
	mux.HandleFunc("/v1/jobs/{id}/result", methodNotAllowed("GET"))
	mux.HandleFunc("/v1/jobs/{id}/trace", methodNotAllowed("GET"))
	mux.HandleFunc("/v1/jobs/{id}/cancel", methodNotAllowed("POST"))
	mux.HandleFunc("/metrics", methodNotAllowed("GET"))
	return mux
}

// methodNotAllowed builds the 405 handler for one path: the Allow header
// lists the methods the path does serve.
func methodNotAllowed(allow ...string) http.HandlerFunc {
	allowed := strings.Join(allow, ", ")
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Allow", allowed)
		writeJSON(w, http.StatusMethodNotAllowed, map[string]string{
			"error": fmt.Sprintf("method %s not allowed; allowed: %s", r.Method, allowed),
		})
	}
}

// writeJSON sends one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps manager errors to HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, jobs.ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// buildInfo extracts the Go toolchain version and VCS revision baked into
// the binary (empty when built without VCS stamping, e.g. in tests).
func buildInfo() (goVersion, revision string) {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "", ""
	}
	goVersion = bi.GoVersion
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return goVersion, revision
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	goVersion, revision := buildInfo()
	st := s.mgr.Stats()
	body := map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(s.started).Seconds(),
		"go_version":     goVersion,
		"revision":       revision,
		"workers":        st.Workers,
		"max_concurrent": st.MaxConcurrent,
		"jobs": map[string]int{
			"queued":   st.Queued,
			"running":  st.Running,
			"done":     st.Done,
			"failed":   st.Failed,
			"canceled": st.Canceled,
		},
	}
	if s.fleet != nil {
		body["fleet"] = s.fleet.Status()
	}
	body["metrics"] = obs.Default().Snapshot()
	writeJSON(w, http.StatusOK, body)
}

// strategies lists what this server can run: every strategy in the core
// registry, with aliases and resumability (resumable strategies support
// durable checkpoint/recover across server restarts).
func (s *server) strategies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"strategies": core.StrategyInfos()})
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad spec: %v", err)})
		return
	}
	if spec.Seed == 0 {
		spec.Seed = s.defaultSeed
	}
	id, err := s.mgr.Submit(spec)
	if err != nil {
		if errors.Is(err, jobs.ErrClosed) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.mgr.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	if !st.State.Terminal() {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("job %s is %s", id, st.State),
		})
		return
	}
	res, err := s.mgr.Result(id)
	if err != nil {
		if errors.Is(err, jobs.ErrNotFound) {
			// Evicted by retention churn between the two lookups.
			writeErr(w, err)
			return
		}
		// Terminal without a result (failed, or canceled before starting):
		// surface the run error with the status.
		writeJSON(w, http.StatusOK, map[string]any{"state": st.State, "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"state": st.State, "result": res})
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Cancel(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "canceling"})
}

// trace streams the job's progress as NDJSON: one jobs.Event per line,
// flushed per event, ending when the job reaches a terminal state or the
// client disconnects.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := s.mgr.Subscribe(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
