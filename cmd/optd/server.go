package main

import (
	"net/http"

	"repro/internal/dist"
	"repro/internal/jobs"
	"repro/internal/serve"
)

// newServer builds the optd HTTP handler. The implementation lives in
// internal/serve so the shard router and the serve bench harness can embed
// the exact production handler in-process; this shim keeps the historical
// cmd/optd constructor shape for main and the tests.
func newServer(mgr *jobs.Manager, fleet *dist.Coordinator, defaultSeed int64) http.Handler {
	return serve.New(serve.Config{Mgr: mgr, Fleet: fleet, DefaultSeed: defaultSeed})
}
