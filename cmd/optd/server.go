package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/jobs"
)

// server adapts a jobs.Manager to HTTP/JSON. Endpoints:
//
//	GET    /healthz              liveness probe
//	POST   /v1/jobs              submit a job (body: jobs.Spec) -> {"id": ...}
//	GET    /v1/jobs              list all jobs
//	GET    /v1/jobs/{id}         job status
//	GET    /v1/jobs/{id}/result  final result (409 until terminal)
//	GET    /v1/jobs/{id}/trace   NDJSON stream of progress events
//	POST   /v1/jobs/{id}/cancel  request cancellation
//	DELETE /v1/jobs/{id}         request cancellation (alias)
type server struct {
	mgr *jobs.Manager
	// defaultSeed is applied to submitted specs that leave Seed zero, so
	// every job is reproducible from the server log plus its spec.
	defaultSeed int64
}

// newServer builds the HTTP handler.
func newServer(mgr *jobs.Manager, defaultSeed int64) http.Handler {
	s := &server{mgr: mgr, defaultSeed: defaultSeed}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.health)
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.list)
	mux.HandleFunc("GET /v1/jobs/{id}", s.status)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.result)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.trace)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.cancel)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancel)
	return mux
}

// writeJSON sends one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeErr maps manager errors to HTTP statuses.
func writeErr(w http.ResponseWriter, err error) {
	code := http.StatusInternalServerError
	switch {
	case errors.Is(err, jobs.ErrNotFound):
		code = http.StatusNotFound
	case errors.Is(err, jobs.ErrClosed):
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) health(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var spec jobs.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad spec: %v", err)})
		return
	}
	if spec.Seed == 0 {
		spec.Seed = s.defaultSeed
	}
	id, err := s.mgr.Submit(spec)
	if err != nil {
		if errors.Is(err, jobs.ErrClosed) {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
}

func (s *server) list(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.List())
}

func (s *server) status(w http.ResponseWriter, r *http.Request) {
	st, err := s.mgr.Get(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *server) result(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.mgr.Get(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	if !st.State.Terminal() {
		writeJSON(w, http.StatusConflict, map[string]string{
			"error": fmt.Sprintf("job %s is %s", id, st.State),
		})
		return
	}
	res, err := s.mgr.Result(id)
	if err != nil {
		if errors.Is(err, jobs.ErrNotFound) {
			// Evicted by retention churn between the two lookups.
			writeErr(w, err)
			return
		}
		// Terminal without a result (failed, or canceled before starting):
		// surface the run error with the status.
		writeJSON(w, http.StatusOK, map[string]any{"state": st.State, "error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"state": st.State, "result": res})
}

func (s *server) cancel(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Cancel(r.PathValue("id")); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "canceling"})
}

// trace streams the job's progress as NDJSON: one jobs.Event per line,
// flushed per event, ending when the job reaches a terminal state or the
// client disconnects.
func (s *server) trace(w http.ResponseWriter, r *http.Request) {
	ch, cancel, err := s.mgr.Subscribe(r.PathValue("id"))
	if err != nil {
		writeErr(w, err)
		return
	}
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		select {
		case <-r.Context().Done():
			return
		case e, ok := <-ch:
			if !ok {
				return
			}
			if err := enc.Encode(e); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
}
