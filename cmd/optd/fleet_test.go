package main

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/jobs"
)

// startFleetServer brings up a server with a live fleet of n in-process
// agents, mirroring `optd -fleet-addr` + n optworkers without processes.
func startFleetServer(t *testing.T, n int, cfg jobs.Config) (*httptest.Server, *dist.Coordinator) {
	t.Helper()
	fleet := dist.NewCoordinator(dist.Config{})
	if err := fleet.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fleet.Close)
	ctx, cancel := context.WithCancel(context.Background())
	var stops []chan struct{}
	for i := 0; i < n; i++ {
		w := dist.NewWorker(dist.WorkerConfig{Addr: fleet.Addr().String(), Name: "t", Capacity: 2})
		done := make(chan struct{})
		stops = append(stops, done)
		go func() {
			defer close(done)
			w.RunLoop(ctx)
		}()
	}
	t.Cleanup(func() {
		cancel()
		for _, done := range stops {
			<-done
		}
	})
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := fleet.WaitWorkers(wctx, n); err != nil {
		t.Fatal(err)
	}

	cfg.Fleet = fleet
	mgr, err := jobs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(newServer(mgr, fleet, 1))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return ts, fleet
}

// TestOptdFleetHealthz checks /healthz reports the fleet section: worker
// roster, capacity, and task counters.
func TestOptdFleetHealthz(t *testing.T) {
	ts, _ := startFleetServer(t, 2, jobs.Config{MaxConcurrent: 1})
	var health struct {
		OK    bool `json:"ok"`
		Fleet *struct {
			Workers  []map[string]any `json:"workers"`
			Capacity int              `json:"capacity"`
		} `json:"fleet"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz status %d", code)
	}
	if !health.OK || health.Fleet == nil {
		t.Fatalf("healthz missing fleet section: %+v", health)
	}
	if len(health.Fleet.Workers) != 2 || health.Fleet.Capacity != 4 {
		t.Errorf("fleet section %+v, want 2 workers with capacity 4", health.Fleet)
	}
}

// TestOptdFleetJobMatchesInProcess submits the same spec with and without
// "fleet": true and demands identical result payloads — the HTTP face of
// the fleet determinism contract.
func TestOptdFleetJobMatchesInProcess(t *testing.T) {
	ts, fleet := startFleetServer(t, 2, jobs.Config{MaxConcurrent: 2})
	spec := map[string]any{
		"objective": "rosenbrock", "dim": 3, "algorithm": "pc",
		"sigma0": 50.0, "seed": 9, "budget": 1e12, "tol": -1.0, "max_iterations": 40,
	}
	run := func(useFleet bool) json.RawMessage {
		s := map[string]any{}
		for k, v := range spec {
			s[k] = v
		}
		if useFleet {
			s["fleet"] = true
		}
		code, out := postJSON(t, ts.URL+"/v1/jobs", s)
		if code != 202 {
			t.Fatalf("submit: %d %v", code, out)
		}
		id := out["id"].(string)
		deadline := time.Now().Add(30 * time.Second)
		for {
			var st struct {
				State string `json:"state"`
			}
			getJSON(t, ts.URL+"/v1/jobs/"+id, &st)
			if st.State == "done" {
				break
			}
			if st.State == "failed" || st.State == "canceled" {
				t.Fatalf("job %s ended %s", id, st.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s did not finish", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
		var res struct {
			State  string          `json:"state"`
			Result json.RawMessage `json:"result"`
		}
		getJSON(t, ts.URL+"/v1/jobs/"+id+"/result", &res)
		return res.Result
	}
	fleetRes := run(true)
	localRes := run(false)
	if !reflect.DeepEqual(fleetRes, localRes) {
		t.Errorf("fleet result diverged from in-process result\nfleet: %s\nlocal: %s", fleetRes, localRes)
	}
	if st := fleet.Status(); st.CompletedTasks == 0 {
		t.Error("fleet executed no tasks; the fleet job did not actually use it")
	}
}

// TestOptdFleetSpecRejectedWithoutFleet checks the submission-time error
// when the server has no fleet listener.
func TestOptdFleetSpecRejectedWithoutFleet(t *testing.T) {
	ts := startTestServer(t, jobs.Config{})
	code, out := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"objective": "rosenbrock", "dim": 3, "sigma0": 10.0, "seed": 1, "fleet": true,
	})
	if code != 400 {
		t.Fatalf("submit: status %d %v, want 400", code, out)
	}
}
