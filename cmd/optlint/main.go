// Command optlint runs the repo's custom static-analysis suite: determinism,
// noalloc, floatguard, lockguard, atomicguard, directive hygiene, and the
// shadow/unusedwrite/nilness passes stock `go vet` lacks.
//
// Standalone:
//
//	go run ./cmd/optlint ./...
//
// As a vet tool (unitchecker protocol, incremental via the build cache):
//
//	go build -o /tmp/optlint ./cmd/optlint
//	go vet -vettool=/tmp/optlint ./...
//
// See docs/LINT.md for the rule catalog and the //optlint: directives.
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
