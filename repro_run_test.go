package repro

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/testfunc"
)

// newRunSpace builds the standard space used by the Run tests: a noisy
// 2-D Rosenbrock with a fixed seed, so every run is reproducible.
func newRunSpace() *LocalSpace {
	return NewLocalSpace(LocalConfig{
		Dim:      2,
		F:        testfunc.Rosenbrock,
		Sigma0:   ConstSigma(10),
		Seed:     9,
		Parallel: true,
	})
}

// plainSpace hides the Snapshotter face of a LocalSpace: only the embedded
// Space interface methods are promoted, so checkpoint/resume must refuse it.
type plainSpace struct{ Space }

// nmAlgs lists the five NM-family policies the shims must cover.
var nmAlgs = []Algorithm{DET, MN, PC, PCMN, AndersonNM}

// runCfg returns a small deterministic budget for alg.
func runCfg(alg Algorithm) Config {
	cfg := DefaultConfig(alg)
	cfg.MaxWalltime = 400
	cfg.Tol = 0
	return cfg
}

var runInitial = UniformSimplex(2, -4, 4, rand.New(rand.NewSource(9)))

// TestRunOptionValidation is the table of invalid option combinations: every
// one must fail fast with a descriptive error, before any sampling.
func TestRunOptionValidation(t *testing.T) {
	snap := &Snapshot{}
	cases := []struct {
		name    string
		space   Space
		opts    []RunOption
		wantErr string
	}{
		{"nil space", nil, nil, "nil space"},
		{"unknown strategy", newRunSpace(), []RunOption{WithStrategy("warp-drive")}, "unknown strategy"},
		{"initial plus uniform", newRunSpace(), []RunOption{
			WithInitialSimplex(runInitial), WithUniformSimplex(1, -4, 4)}, "mutually exclusive"},
		{"resume plus initial", newRunSpace(), []RunOption{
			WithResume(snap), WithInitialSimplex(runInitial)}, "mutually exclusive"},
		{"no starting simplex", newRunSpace(), []RunOption{WithAlgorithm(PC)}, "starting simplex"},
		{"empty draw box", newRunSpace(), []RunOption{WithUniformSimplex(1, 5, 5)}, "empty"},
		{"nil option", newRunSpace(), []RunOption{nil}, "nil RunOption"},
		{"negative restarts", newRunSpace(), []RunOption{
			WithUniformSimplex(1, -4, 4), WithRestarts(-1)}, ">= 0"},
		{"restart scale shape", newRunSpace(), []RunOption{
			WithUniformSimplex(1, -4, 4), WithRestarts(1, 1, 2, 3)}, "restart scale"},
		{"negative swarm", newRunSpace(), []RunOption{
			WithStrategy("pso"), WithUniformSimplex(1, -4, 4), WithSwarm(-1, 10)}, ">= 0"},
		{"wrong vertex count", newRunSpace(), []RunOption{
			WithInitialSimplex([][]float64{{0, 0}, {1, 0}})}, "vertices"},
		{"wrong vertex dimension", newRunSpace(), []RunOption{
			WithInitialSimplex([][]float64{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}})}, "dimension"},
		{"nil initial simplex", newRunSpace(), []RunOption{
			WithInitialSimplex(nil)}, "vertices"},
		{"pso with initial simplex", newRunSpace(), []RunOption{
			WithStrategy("pso"), WithInitialSimplex(runInitial)}, "initial simplex is not supported"},
		{"pso without box", newRunSpace(), []RunOption{WithStrategy("pso")}, "search box"},
		{"pso with restarts", newRunSpace(), []RunOption{
			WithStrategy("pso"), WithUniformSimplex(1, -4, 4), WithRestarts(1)}, "restarts"},
		{"pso with checkpoint", newRunSpace(), []RunOption{
			WithStrategy("pso"), WithUniformSimplex(1, -4, 4),
			WithCheckpoint(func(*Snapshot) {}, 5)}, "does not support checkpointing"},
		{"pso with resume", newRunSpace(), []RunOption{
			WithStrategy("pso"), WithResume(snap)}, "does not support resume"},
		{"hybrid tiny swarm", newRunSpace(), []RunOption{
			WithStrategy("hybrid"), WithUniformSimplex(1, -4, 4), WithSwarm(1, 5)}, "particles"},
		{"checkpoint without snapshotter", plainSpace{newRunSpace()}, []RunOption{
			WithInitialSimplex(runInitial),
			WithCheckpoint(func(*Snapshot) {}, 5)}, "Snapshotter"},
		{"resume without snapshotter", plainSpace{newRunSpace()}, []RunOption{
			WithResume(snap)}, "Snapshotter"},
		{"resume nil snapshot", newRunSpace(), []RunOption{
			WithResume(nil)}, "nil snapshot"},
		{"invalid config", newRunSpace(), []RunOption{
			WithInitialSimplex(runInitial), WithConfidence(-1)}, "K must be positive"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Run(context.Background(), c.space, c.opts...)
			if err == nil {
				t.Fatalf("Run succeeded (%+v), want error containing %q", res, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %q, want it to contain %q", err, c.wantErr)
			}
		})
	}
}

// TestDeprecatedShimsBitwiseIdentical verifies each of the seven legacy
// entry points produces a bitwise-identical Result to its Run(...)
// equivalent, for all five NM-family strategies.
func TestDeprecatedShimsBitwiseIdentical(t *testing.T) {
	ctx := context.Background()
	for _, alg := range nmAlgs {
		cfg := runCfg(alg)
		rcfg := RestartConfig{Config: cfg, Restarts: 1, Scale: []float64{1, 1}}
		rcfg.MaxWalltime = 200

		// Snapshots for the resume shims: checkpoint a run and keep a middle
		// snapshot, serialized so each resume decodes a fresh copy.
		var snapBytes []byte
		{
			var snaps [][]byte
			cp := cfg
			cp.Checkpoint = func(s *Snapshot) {
				b, err := s.MarshalBinary()
				if err != nil {
					t.Fatal(err)
				}
				snaps = append(snaps, b)
			}
			cp.CheckpointEvery = 5
			if _, err := Run(ctx, newRunSpace(), WithConfig(cp), WithInitialSimplex(runInitial)); err != nil {
				t.Fatalf("%v: checkpoint run: %v", alg, err)
			}
			if len(snaps) < 2 {
				t.Fatalf("%v: only %d snapshots", alg, len(snaps))
			}
			snapBytes = snaps[len(snaps)/2]
		}
		decodeSnap := func() *Snapshot {
			var s Snapshot
			if err := s.UnmarshalBinary(snapBytes); err != nil {
				t.Fatal(err)
			}
			return &s
		}

		type pair struct {
			name string
			old  func() (*Result, error)
			new  func() (*Result, error)
		}
		pairs := []pair{
			{"Optimize",
				func() (*Result, error) { return Optimize(newRunSpace(), runInitial, cfg) },
				func() (*Result, error) {
					return Run(ctx, newRunSpace(), WithConfig(cfg), WithInitialSimplex(runInitial))
				}},
			{"OptimizeContext",
				func() (*Result, error) { return OptimizeContext(ctx, newRunSpace(), runInitial, cfg) },
				func() (*Result, error) {
					return Run(ctx, newRunSpace(), WithConfig(cfg), WithInitialSimplex(runInitial))
				}},
			{"OptimizeWithRestarts",
				func() (*Result, error) { return OptimizeWithRestarts(newRunSpace(), runInitial, rcfg) },
				func() (*Result, error) {
					return Run(ctx, newRunSpace(), WithConfig(rcfg.Config), WithInitialSimplex(runInitial),
						WithRestarts(rcfg.Restarts, rcfg.Scale...))
				}},
			{"OptimizeWithRestartsContext",
				func() (*Result, error) {
					return OptimizeWithRestartsContext(ctx, newRunSpace(), runInitial, rcfg)
				},
				func() (*Result, error) {
					return Run(ctx, newRunSpace(), WithConfig(rcfg.Config), WithInitialSimplex(runInitial),
						WithRestarts(rcfg.Restarts, rcfg.Scale...))
				}},
			{"Resume",
				func() (*Result, error) { return Resume(newRunSpace(), decodeSnap(), cfg) },
				func() (*Result, error) {
					return Run(ctx, newRunSpace(), WithConfig(cfg), WithResume(decodeSnap()))
				}},
			{"ResumeContext",
				func() (*Result, error) { return ResumeContext(ctx, newRunSpace(), decodeSnap(), cfg) },
				func() (*Result, error) {
					return Run(ctx, newRunSpace(), WithConfig(cfg), WithResume(decodeSnap()))
				}},
			{"ResumeWithRestartsContext",
				func() (*Result, error) {
					return ResumeWithRestartsContext(ctx, newRunSpace(), decodeSnap(), rcfg)
				},
				func() (*Result, error) {
					return Run(ctx, newRunSpace(), WithConfig(rcfg.Config), WithResume(decodeSnap()),
						WithRestarts(rcfg.Restarts, rcfg.Scale...))
				}},
		}
		for _, p := range pairs {
			oldRes, err := p.old()
			if err != nil {
				t.Fatalf("%v/%s: legacy: %v", alg, p.name, err)
			}
			newRes, err := p.new()
			if err != nil {
				t.Fatalf("%v/%s: Run: %v", alg, p.name, err)
			}
			if !reflect.DeepEqual(oldRes, newRes) {
				t.Errorf("%v/%s: shim not bitwise-identical to Run equivalent\n old: %+v\n new: %+v",
					alg, p.name, oldRes, newRes)
			}
		}
	}
}

// TestRunStrategyDeterminismAcrossWorkers: a run configured purely by
// strategy name + options is bitwise-identical whether the space samples
// serially or on a 4-worker pool (run under -race in CI).
func TestRunStrategyDeterminismAcrossWorkers(t *testing.T) {
	newSpace := func(workers int) *LocalSpace {
		return NewLocalSpace(LocalConfig{
			Dim:      2,
			F:        testfunc.Rastrigin,
			Sigma0:   ConstSigma(2),
			Seed:     13,
			Parallel: true,
			Workers:  workers,
		})
	}
	for _, strategy := range []string{"pc", "pc+mn", "pso", "hybrid"} {
		opts := []RunOption{
			WithStrategy(strategy),
			WithUniformSimplex(13, -5, 5),
			WithBudget(800),
			WithTolerance(0),
			WithSwarm(8, 10),
		}
		var results []*Result
		for _, workers := range []int{1, 4} {
			space := newSpace(workers)
			res, err := Run(context.Background(), space, opts...)
			space.Close()
			if err != nil {
				t.Fatalf("%s workers=%d: %v", strategy, workers, err)
			}
			results = append(results, res)
		}
		if !reflect.DeepEqual(results[0], results[1]) {
			t.Errorf("%s: results differ across worker counts\n w1: %+v\n w4: %+v",
				strategy, results[0], results[1])
		}
	}
}

// TestRunCheckpointResumeReproduces: a Run interrupted at any snapshot and
// resumed with WithResume reproduces the uninterrupted run bitwise.
func TestRunCheckpointResumeReproduces(t *testing.T) {
	cfg := runCfg(PC)
	cfg.MaxWalltime = 3000
	// A per-decision cap keeps the simplex stepping at a steady rate, so the
	// budget buys a healthy snapshot series instead of a few ultra-confident
	// decisions.
	cfg.DecisionBudget = 20
	var snaps [][]byte
	full, err := Run(context.Background(), newRunSpace(),
		WithConfig(cfg),
		WithUniformSimplex(9, -4, 4),
		WithCheckpoint(func(s *Snapshot) {
			b, err := s.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			snaps = append(snaps, b)
		}, 7),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 3 {
		t.Fatalf("only %d snapshots", len(snaps))
	}
	for _, idx := range []int{0, len(snaps) / 2, len(snaps) - 1} {
		var snap Snapshot
		if err := snap.UnmarshalBinary(snaps[idx]); err != nil {
			t.Fatal(err)
		}
		resumed, err := Run(context.Background(), newRunSpace(),
			WithConfig(cfg), WithResume(&snap))
		if err != nil {
			t.Fatalf("resume from snapshot %d: %v", idx, err)
		}
		if !reflect.DeepEqual(full, resumed) {
			t.Errorf("resume from snapshot %d (iteration %d) diverged\n full:    %+v\n resumed: %+v",
				idx, snap.Iterations, full, resumed)
		}
	}
}

// TestRunnerReuse: one validated Runner executes identically on identically
// built spaces.
func TestRunnerReuse(t *testing.T) {
	r, err := NewRunner(
		WithAlgorithm(PC),
		WithUniformSimplex(9, -4, 4),
		WithBudget(300),
		WithTolerance(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if name, err := r.Strategy(); err != nil || name != "pc" {
		t.Fatalf("Runner.Strategy() = %q, %v", name, err)
	}
	a, err := r.Run(context.Background(), newRunSpace())
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Run(context.Background(), newRunSpace())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("Runner reuse diverged:\n a: %+v\n b: %+v", a, b)
	}
}

// TestRunPSOAndHybridBasics: the new strategies run through the facade and
// find the Rastrigin global basin a cornered simplex cannot.
func TestRunPSOAndHybridBasics(t *testing.T) {
	for _, strategy := range []string{"pso", "hybrid"} {
		space := NewLocalSpace(LocalConfig{
			Dim: 2, F: testfunc.Rastrigin, Sigma0: ConstSigma(2), Seed: 7, Parallel: true,
		})
		res, err := Run(context.Background(), space,
			WithStrategy(strategy),
			WithUniformSimplex(7, -5.12, 5.12),
			WithSwarm(30, 40),
			WithRestarts(0, 0.2),
			WithBudget(4e4),
			WithTolerance(1e-5),
		)
		if err != nil {
			t.Fatalf("%s: %v", strategy, err)
		}
		if res.Iterations == 0 || len(res.BestX) != 2 {
			t.Fatalf("%s: degenerate result %+v", strategy, res)
		}
		if f := testfunc.Rastrigin(res.BestX); f > 3 {
			t.Errorf("%s: f(best) = %v at %v, want near a deep basin", strategy, f, res.BestX)
		}
	}
}
