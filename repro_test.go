package repro

import (
	"math/rand"
	"testing"

	"repro/internal/mw"
	"repro/internal/testfunc"
)

// The facade must be sufficient to run a complete optimization without
// touching internal packages directly (beyond test functions).
func TestFacadeLocalOptimization(t *testing.T) {
	space := NewLocalSpace(LocalConfig{
		Dim:      2,
		F:        testfunc.Sphere,
		Sigma0:   ConstSigma(0),
		Parallel: true,
	})
	cfg := DefaultConfig(DET)
	cfg.Tol = 1e-10
	res, err := Optimize(space, [][]float64{{3, 3}, {4, 3}, {3, 4}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "tolerance" {
		t.Fatalf("termination = %q", res.Termination)
	}
	if d := testfunc.Dist(res.BestX, []float64{0, 0}); d > 1e-3 {
		t.Fatalf("best %v too far from origin", res.BestX)
	}
}

func TestFacadeMWOptimization(t *testing.T) {
	space, err := NewMWSpace(MWSpaceConfig{
		Dim: 2,
		Ns:  1,
		NewSystem: func(rank, sys int) SystemEvaluator {
			return &mw.FuncSystem{F: testfunc.Sphere, Rng: rand.New(rand.NewSource(int64(rank)))}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer space.Shutdown()
	cfg := DefaultConfig(PC)
	cfg.Tol = 1e-8
	cfg.MaxIterations = 300
	res, err := Optimize(space, [][]float64{{3, 3}, {4, 3}, {3, 4}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := testfunc.Dist(res.BestX, []float64{0, 0}); d > 1e-2 {
		t.Fatalf("best %v too far from origin", res.BestX)
	}
}

func TestFacadeParseAndMasks(t *testing.T) {
	alg, err := ParseAlgorithm("pc+mn")
	if err != nil || alg != PCMN {
		t.Fatalf("ParseAlgorithm = %v, %v", alg, err)
	}
	if m := Conditions(1, 3, 6); !m.Has(3) || m.Has(2) {
		t.Fatal("Conditions mask wrong")
	}
	if !AllConditions.Has(7) {
		t.Fatal("AllConditions missing c7")
	}
}
