// Custom-objective: plugging your own stochastic simulation into the
// optimizer.
//
// The objective here is a Monte Carlo M/M/1 queueing simulation: given a
// service-rate budget split across two stations in series, minimize a
// combination of mean sojourn time and allocation cost. Every evaluation is
// a finite simulation, so the observed objective carries sampling noise that
// shrinks with simulation length — exactly the regime the paper's
// algorithms target. The evaluator implements repro.SystemEvaluator, so it
// runs on the MW deployment unchanged.
//
//	go run ./examples/custom-objective
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

// tandemQueueSim estimates the mean sojourn time of a two-station tandem
// queue (arrival rate 1.0, service rates mu1, mu2) by simulating customers.
// It is a genuine Monte Carlo estimator: more sampling time simulates more
// customers and tightens the estimate.
type tandemQueueSim struct {
	rng *rand.Rand

	mu1, mu2 float64
	penalty  float64

	n    int     // customers simulated
	sum  float64 // sum of per-customer objective draws
	sum2 float64
}

const customersPerUnitTime = 200

// Start implements repro.SystemEvaluator.
func (q *tandemQueueSim) Start(x []float64) {
	q.mu1, q.mu2 = x[0], x[1]
	// Infeasible rates (unstable queues) are penalized heavily but finitely
	// so the simplex can retreat from them.
	q.penalty = 0
	for _, mu := range []float64{q.mu1, q.mu2} {
		if mu <= 1.05 {
			q.penalty += 50 * (1.05 - mu + 0.1)
		}
	}
	q.n, q.sum, q.sum2 = 0, 0, 0
}

// Sample implements repro.SystemEvaluator: simulate more customers.
func (q *tandemQueueSim) Sample(dt float64) {
	customers := int(dt * customersPerUnitTime)
	if customers < 1 {
		customers = 1
	}
	mu1 := math.Max(q.mu1, 1.06)
	mu2 := math.Max(q.mu2, 1.06)
	var depart1, depart2, clock float64
	for i := 0; i < customers; i++ {
		clock += q.rng.ExpFloat64() / 1.0 // arrivals at rate 1
		s1 := q.rng.ExpFloat64() / mu1
		start1 := math.Max(clock, depart1)
		depart1 = start1 + s1
		s2 := q.rng.ExpFloat64() / mu2
		start2 := math.Max(depart1, depart2)
		depart2 = start2 + s2
		sojourn := depart2 - clock
		// Objective draw: sojourn time plus a cost for provisioned capacity.
		y := sojourn + 0.8*(q.mu1+q.mu2) + q.penalty
		q.n++
		q.sum += y
		q.sum2 += y * y
	}
}

// Report implements repro.SystemEvaluator.
func (q *tandemQueueSim) Report() (mean, variance, t float64) {
	if q.n == 0 {
		return 0, math.Inf(1), 0
	}
	mean = q.sum / float64(q.n)
	if q.n > 1 {
		sampleVar := (q.sum2 - q.sum*q.sum/float64(q.n)) / float64(q.n-1)
		variance = sampleVar / float64(q.n) // variance of the mean
	} else {
		variance = math.Inf(1)
	}
	return mean, variance, float64(q.n) / customersPerUnitTime
}

// Stop implements repro.SystemEvaluator.
func (q *tandemQueueSim) Stop() {}

func main() {
	space, err := repro.NewMWSpace(repro.MWSpaceConfig{
		Dim: 2, // (mu1, mu2)
		Ns:  1,
		NewSystem: func(rank, sys int) repro.SystemEvaluator {
			return &tandemQueueSim{rng: rand.New(rand.NewSource(int64(7 + rank)))}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer space.Shutdown()

	initial := [][]float64{{1.3, 3.5}, {3.0, 1.4}, {4.0, 4.0}}
	res, err := repro.Run(context.Background(), space,
		repro.WithAlgorithm(repro.PC),
		repro.WithInitialSimplex(initial),
		repro.WithBudget(4e3),
		repro.WithTolerance(0.01),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("terminated: %s after %d steps, %d queue simulations\n",
		res.Termination, res.Iterations, res.Evaluations)
	fmt.Printf("best service rates: mu1=%.3f, mu2=%.3f\n", res.BestX[0], res.BestX[1])
	fmt.Printf("objective estimate: %.4f +- %.4f\n", res.BestG, res.BestSigma)
	fmt.Println("(analytic optimum is symmetric: mu1 = mu2 ~ 2.1 for this cost)")
}
