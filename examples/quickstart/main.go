// Quickstart: optimize a noisy Rosenbrock function with the point-to-point
// comparison (PC) algorithm.
//
// The objective is observed through sampling noise whose variance decays as
// sigma0^2/t with accumulated sampling time t (the paper's eq 1.2). The PC
// algorithm only accepts a simplex move once the comparison between the two
// vertices involved is resolved at a k-sigma confidence separation,
// resampling them until it is.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/testfunc"
)

func main() {
	const (
		dim    = 4
		sigma0 = 10 // substantial observation noise
	)

	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim:      dim,
		F:        testfunc.Rosenbrock,
		Sigma0:   repro.ConstSigma(sigma0),
		Seed:     42,
		Parallel: true, // all simplex vertices sample concurrently
	})

	cfg := repro.DefaultConfig(repro.PC)
	cfg.MaxWalltime = 2e5 // virtual seconds of sampling budget
	cfg.Tol = 0           // run the budget out
	// Cap the sampling patience per decision so the budget buys many simplex
	// steps instead of a few extremely confident ones.
	cfg.DecisionBudget = cfg.MaxWalltime / 100

	// The initial simplex is the one input the paper leaves to the user.
	initial := [][]float64{
		{-3, -3, -3, -3},
		{4, -2, 1, -1},
		{-1, 3, -2, 2},
		{2, 2, 4, -3},
		{0, -4, 2, 3},
	}

	// One entry point for everything: functional options select the
	// strategy, the starting simplex and the budgets (WithConfig carries
	// the niche DecisionBudget setting above).
	res, err := repro.Run(context.Background(), space,
		repro.WithConfig(cfg),
		repro.WithInitialSimplex(initial),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("terminated: %s after %d simplex steps\n", res.Termination, res.Iterations)
	fmt.Printf("best point: %.4f\n", res.BestX)
	fmt.Printf("noisy estimate g(best) = %.4g +- %.2g\n", res.BestG, res.BestSigma)
	fmt.Printf("true value  f(best) = %.4g (minimum is 0 at (1,1,1,1))\n",
		testfunc.Rosenbrock(res.BestX))
	fmt.Printf("sampling effort: %d evaluations, %d resample rounds\n",
		res.Evaluations, res.ResampleRounds)
}
