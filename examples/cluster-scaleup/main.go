// Cluster-scaleup: the section 3.4 study — optimize the Rosenbrock function
// in growing dimension over the full MW deployment and watch the process
// counts and per-step cost scale (Table 3.3 / Fig 3.18).
//
//	go run ./examples/cluster-scaleup
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/mw"
	"repro/internal/testfunc"
)

func main() {
	fmt.Println("d     workers  servers  clients  total  formula(dNs+3Ns+2d+7)  steps  time/step")
	for _, d := range []int{10, 20, 50} {
		var counts mw.ProcessCounts
		space, err := repro.NewMWSpace(repro.MWSpaceConfig{
			Dim: d,
			Ns:  1,
			NewSystem: func(rank, sys int) repro.SystemEvaluator {
				return &mw.FuncSystem{
					F:      testfunc.Rosenbrock,
					Sigma0: func([]float64) float64 { return 1 },
					Rng:    rand.New(rand.NewSource(int64(rank))),
				}
			},
			Counts: &counts,
		})
		if err != nil {
			log.Fatal(err)
		}

		rng := rand.New(rand.NewSource(int64(d)))
		initial := make([][]float64, d+1)
		for i := range initial {
			initial[i] = make([]float64, d)
			for j := range initial[i] {
				initial[i][j] = rng.Float64()*6 - 3
			}
		}

		cfg := repro.DefaultConfig(repro.MN)
		cfg.MaxIterations = 40
		cfg.Tol = 0
		cfg.MaxWalltime = 0
		cfg.OverheadBase = 0.5
		cfg.OverheadPerDim = 0.05 // master bookkeeping + file I/O per step

		res, err := repro.Run(context.Background(), space,
			repro.WithConfig(cfg), repro.WithInitialSimplex(initial))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d %-8d %-8d %-8d %-6d %-21d %-6d %.2fs\n",
			d,
			counts.Workers.Load(), counts.Servers.Load(), counts.Clients.Load(),
			counts.Total(), mw.ExpectedProcesses(d, 1),
			res.Iterations, res.Walltime/float64(res.Iterations))
		space.Shutdown()
	}
}
