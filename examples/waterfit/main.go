// Waterfit: the paper's application study (section 3.5) — automatically
// reparameterize the TIP4P water model from deliberately poor starting
// parameters, over the full master-worker deployment.
//
// Each simplex vertex lives on its own MW worker; under each worker a vertex
// server coordinates the property "simulations" (here the fast surrogate
// engine whose six noisy properties — D, gHH, gOH, gOO, P, U — follow the
// eq 1.2 sampling-noise law). The cost is the weighted property-residual
// sum of eq 3.4.
//
//	go run ./examples/waterfit
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/water"
)

func main() {
	space, err := repro.NewMWSpace(repro.MWSpaceConfig{
		Dim: 3, // (epsilon, sigma, qH)
		Ns:  1,
		NewSystem: func(rank, sys int) repro.SystemEvaluator {
			return water.NewSurrogate(1.0, int64(1000+rank*17+sys))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer space.Shutdown()

	cfg := repro.DefaultConfig(repro.PCMN)
	cfg.MaxWalltime = 1e5
	cfg.Tol = 0.002

	initial := [][]float64{ // poor, unphysical starting guesses
		{0.200, 3.00, 0.54},
		{0.180, 3.40, 0.45},
		{0.155, 3.25, 0.52},
		{0.190, 2.80, 0.60},
	}

	// The cost valley around good water models is long and gently curved;
	// restarts around the incumbent (paper section 1.3.5.1) prevent the
	// simplex from collapsing before it reaches the basin floor. The scales
	// are the natural (eps, sigma, qH) parameter scales.
	res, err := repro.Run(context.Background(), space,
		repro.WithConfig(cfg),
		repro.WithInitialSimplex(initial),
		repro.WithRestarts(3, 0.01, 0.02, 0.005),
	)
	if err != nil {
		log.Fatal(err)
	}

	final := water.FromVec(res.BestX)
	fmt.Printf("converged (%s) after %d simplex steps\n", res.Termination, res.Iterations)
	fmt.Printf("optimized: %s\n", final)
	fmt.Printf("published: %s\n", water.TIP4PParams())
	fmt.Printf("cost: %.4f (TIP4P reference: %.4f)\n\n",
		water.NoiseFreeCost(res.BestX), water.NoiseFreeCost(water.TIP4PParams().Vec()))

	props := water.NoiseFreeProperties(final)
	fmt.Println("property        optimized      target")
	for p := water.Property(0); p < water.NumProperties; p++ {
		fmt.Printf("%-4s %6s %12.5g %12.5g\n", p, p.Units(), props[p], water.Targets[p])
	}
}
