// Global-hybrid: the paper's future-work proposal (section 5.2) — particle
// swarm optimization with noise-aware point-to-point comparisons for the
// global phase, handing its best basin to the stochastic simplex for the
// precise local refinement PSO lacks "in refined search stages".
//
// The objective is a noisy Rastrigin surface: a grid of local minima that
// traps any single-start simplex, observed through eq-1.2 sampling noise.
//
//	go run ./examples/global-hybrid
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/pso"
	"repro/internal/testfunc"
)

func main() {
	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim:      2,
		F:        testfunc.Rastrigin,
		Sigma0:   repro.ConstSigma(2),
		Seed:     7,
		Parallel: true,
	})

	// A plain simplex from a corner start for contrast.
	cfg := repro.DefaultConfig(repro.PC)
	cfg.MaxWalltime = 2e4
	cfg.Tol = 1e-4
	trapped, err := repro.Optimize(space, [][]float64{{4.2, 4.3}, {4.4, 4.2}, {4.3, 4.5}}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain PC simplex from (4,4):  f(best) = %7.4f at %.3f (trapped in a local minimum)\n",
		testfunc.Rastrigin(trapped.BestX), trapped.BestX)

	// The hybrid: noise-aware PSO sweep, then PC refinement.
	lo := []float64{-5.12, -5.12}
	hi := []float64{5.12, 5.12}
	pcfg := pso.DefaultConfig(lo, hi)
	pcfg.Particles = 30
	pcfg.Iterations = 40
	pcfg.Seed = 7

	lcfg := repro.DefaultConfig(repro.PC)
	lcfg.MaxWalltime = 2e4
	lcfg.Tol = 1e-5

	local, global, err := pso.OptimizeHybrid(space, pso.HybridConfig{
		PSO:        pcfg,
		Local:      lcfg,
		LocalScale: []float64{0.2, 0.2},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PSO global phase:             f(best) = %7.4f at %.3f (%d swarm updates)\n",
		testfunc.Rastrigin(global.BestX), global.BestX, global.Iterations)
	fmt.Printf("after PC simplex refinement:  f(best) = %7.4f at %.3f (%d simplex steps)\n",
		testfunc.Rastrigin(local.BestX), local.BestX, local.Iterations)
	fmt.Println("(global minimum is 0 at the origin; local minima sit on the integer grid)")
}
