// Global-hybrid: the paper's future-work proposal (section 5.2) — particle
// swarm optimization with noise-aware point-to-point comparisons for the
// global phase, handing its best basin to the stochastic simplex for the
// precise local refinement PSO lacks "in refined search stages".
//
// Both phases are registered strategies, so the whole pipeline is one
// repro.Run call with WithStrategy("hybrid") — the same name a job spec or
// the optd HTTP API would use ({"algorithm": "hybrid"}).
//
// The objective is a noisy Rastrigin surface: a grid of local minima that
// traps any single-start simplex, observed through eq-1.2 sampling noise.
//
//	go run ./examples/global-hybrid
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/internal/testfunc"
)

func main() {
	space := repro.NewLocalSpace(repro.LocalConfig{
		Dim:      2,
		F:        testfunc.Rastrigin,
		Sigma0:   repro.ConstSigma(2),
		Seed:     7,
		Parallel: true,
	})
	ctx := context.Background()

	// A plain simplex from a corner start for contrast.
	trapped, err := repro.Run(ctx, space,
		repro.WithAlgorithm(repro.PC),
		repro.WithInitialSimplex([][]float64{{4.2, 4.3}, {4.4, 4.2}, {4.3, 4.5}}),
		repro.WithBudget(2e4),
		repro.WithTolerance(1e-4),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("plain PC simplex from (4,4):  f(best) = %7.4f at %.3f (trapped in a local minimum)\n",
		testfunc.Rastrigin(trapped.BestX), trapped.BestX)

	// The hybrid strategy: a noise-aware PSO sweep of the box, then PC
	// refinement of the best basin with simplex edge lengths 0.2 (the
	// restart-scale option doubles as the refinement scale).
	best, err := repro.Run(ctx, space,
		repro.WithStrategy("hybrid"),
		repro.WithUniformSimplex(7, -5.12, 5.12), // swarm box + seed
		repro.WithSwarm(30, 40),                  // particles, swarm updates
		repro.WithRestarts(0, 0.2),               // local refinement scale
		repro.WithBudget(4e4),
		repro.WithTolerance(1e-5),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid (PSO then PC simplex): f(best) = %7.4f at %.3f (%d iterations: swarm + simplex)\n",
		testfunc.Rastrigin(best.BestX), best.BestX, best.Iterations)
	fmt.Println("(global minimum is 0 at the origin; local minima sit on the integer grid)")
}
