GO ?= go

.PHONY: all build test race lint vet fmt cover

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The repo's own static-analysis suite (docs/LINT.md). Exit 1 on findings.
lint:
	$(GO) run ./cmd/optlint ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w $$(git ls-files '*.go' | grep -v testdata)

cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1
