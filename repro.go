// Package repro is the public facade of this reproduction of "Automated,
// Parallel Optimization Algorithms for Stochastic Functions" (Chahal, 2011).
//
// The library optimizes objective functions observed through sampling noise
// whose variance decays as sigma0^2/t with accumulated sampling time t
// (eq 1.2 of the paper). Four Nelder-Mead-derived decision policies are
// provided — DET (deterministic), MN (max-noise, Algorithm 2), PC
// (point-to-point comparison, Algorithm 3) and PCMN (both, Algorithm 4) —
// plus the Anderson et al. criterion as a baseline, the noise-aware particle
// swarm of the paper's §5.2 future-work direction ("pso"), and a PSO→simplex
// hybrid ("hybrid") that uses the stochastic simplex as the local search
// subroutine of §1.3.5.1.
//
// Everything runs through one entry point, Run, driven by functional
// options:
//
//	space := repro.NewLocalSpace(repro.LocalConfig{
//		Dim:      4,
//		F:        myObjective,          // underlying deterministic value
//		Sigma0:   repro.ConstSigma(10), // eq 1.2 noise strength
//		Seed:     42,
//		Parallel: true,
//	})
//	res, err := repro.Run(ctx, space,
//		repro.WithAlgorithm(repro.PC),
//		repro.WithUniformSimplex(42, -5, 5), // or WithInitialSimplex(...)
//		repro.WithBudget(1e5),               // virtual seconds of sampling
//	)
//
// The same options cover restarted runs (WithRestarts), checkpointed runs
// (WithCheckpoint) and resumed runs (WithResume); NewRunner bundles a
// validated option set for reuse. Optimizers are Strategy implementations
// in a process-wide registry — select one with WithAlgorithm or, by name,
// WithStrategy ("pc", "pc+mn", "pso", "hybrid", ...; Strategies lists
// them), and plug in your own with RegisterStrategy. The pre-Run entry
// points (Optimize, OptimizeContext, OptimizeWithRestarts, Resume, ...)
// remain as deprecated shims over Run.
//
// For the paper's parallel deployment (master, d+3 vertex workers, servers
// and simulation clients over the MW framework), build a space with
// NewMWSpace; both backends satisfy the same Space interface, so the
// optimizer code is identical.
//
// Both backends sample batches concurrently through the internal/sched
// worker pool (LocalConfig.Workers bounds the in-process concurrency), and
// every point draws noise from a private deterministic stream, so results
// are bitwise identical for any worker count. A canceled context stops any
// run within one sampling round with Termination "canceled".
//
// Above single runs sits the job service: NewJobManager multiplexes many
// concurrent optimizations — first-class jobs with lifecycle states, live
// progress streams, cancellation, and durable checkpoint/recover (the
// paper's §1.3.5.1 restart strategy made durable; see Snapshot /
// WithResume) — over one shared worker fleet. Jobs select their strategy by
// registry name (jobs.Spec.Algorithm), so "pso" and "hybrid" jobs work
// end-to-end. cmd/optd serves the same manager over HTTP/JSON.
package repro

import (
	"context"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/jobs"
	"repro/internal/mw"
	"repro/internal/sim"
)

// Re-exported algorithm selectors.
const (
	// DET is the deterministic downhill simplex (Algorithm 1).
	DET = core.DET
	// MN is the max-noise algorithm (Algorithm 2).
	MN = core.MN
	// PC is the point-to-point comparison algorithm (Algorithm 3).
	PC = core.PC
	// PCMN combines PC and MN (Algorithm 4).
	PCMN = core.PCMN
	// AndersonNM applies the Anderson et al. noise criterion (eq 2.4).
	AndersonNM = core.AndersonNM
)

// Core optimizer types.
type (
	// Algorithm selects the simplex decision policy.
	Algorithm = core.Algorithm
	// Config controls an optimization run.
	Config = core.Config
	// Result summarizes a completed optimization.
	Result = core.Result
	// TraceEvent is emitted once per simplex iteration.
	TraceEvent = core.TraceEvent
	// ConditionMask selects which PC conditions use error bars.
	ConditionMask = core.ConditionMask
)

// Sampling-space types.
type (
	// Space is the sampling backend interface optimizers consume.
	Space = sim.Space
	// Point is one sampled location in parameter space.
	Point = sim.Point
	// Estimate is a point's current running mean, sigma and sampling time.
	Estimate = sim.Estimate
	// BatchSampler is the concurrent, context-aware face of a Space; both
	// built-in backends implement it.
	BatchSampler = sim.BatchSampler
	// LocalConfig configures the in-process backend (see Workers and
	// SampleCost for the concurrent-sampling knobs).
	LocalConfig = sim.LocalConfig
	// LocalSpace is the in-process backend's concrete type; it exposes
	// Close for spaces that own a private worker pool.
	LocalSpace = sim.LocalSpace
	// MWSpaceConfig configures the parallel master-worker backend.
	MWSpaceConfig = mw.SpaceConfig
	// SystemEvaluator is one simulation system under a vertex server.
	SystemEvaluator = mw.SystemEvaluator
)

// DefaultConfig returns the paper's default parameters for an algorithm.
func DefaultConfig(alg Algorithm) Config { return core.DefaultConfig(alg) }

// ParseAlgorithm converts a CLI name ("det", "mn", "pc", "pc+mn" — aliases
// "pcmn" and "pc-mn" — or "anderson", case-insensitive) into an Algorithm.
// Names resolve through the strategy registry, so ParseAlgorithm and job-
// spec validation can never disagree; strategies with no Algorithm value
// ("pso", "hybrid") are rejected here and must be run via WithStrategy.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Conditions builds an error-bar mask from PC condition numbers 1..7.
func Conditions(nums ...int) ConditionMask { return core.Conditions(nums...) }

// AllConditions enables error bars in every PC condition.
const AllConditions = core.AllConditions

// Optimize runs the configured stochastic simplex from the initial simplex
// (d+1 vertices of dimension d).
//
// Deprecated: use Run with WithConfig and WithInitialSimplex.
func Optimize(space Space, initial [][]float64, cfg Config) (*Result, error) {
	return Run(context.Background(), space, WithConfig(cfg), WithInitialSimplex(initial))
}

// OptimizeContext is Optimize with cancellation: sampling batches dispatch
// concurrently under ctx, and a canceled context terminates the run within
// one sampling round with Result.Termination == "canceled".
//
// Deprecated: use Run with WithConfig and WithInitialSimplex.
func OptimizeContext(ctx context.Context, space Space, initial [][]float64, cfg Config) (*Result, error) {
	return Run(ctx, space, WithConfig(cfg), WithInitialSimplex(initial))
}

// SampleBatch samples the points concurrently through the space's
// BatchSampler when it has one, else serially via SampleAll. Harnesses that
// drive spaces directly (outside Optimize) use it to get the same concurrent
// path the optimizer uses.
func SampleBatch(ctx context.Context, space Space, points []Point, dt float64) error {
	return sim.SampleBatch(ctx, space, points, dt)
}

// RestartConfig wraps a Config with the restart strategy of the paper's
// section 1.3.5.1 (rebuild a fresh simplex around the incumbent after each
// convergence), the antidote to premature simplex collapse in long noisy
// valleys.
type RestartConfig = core.RestartConfig

// OptimizeWithRestarts runs Optimize and then the configured number of
// restarts from fresh simplices around the best point, returning the best
// result with accumulated effort counters.
//
// Deprecated: use Run with WithConfig, WithInitialSimplex and WithRestarts.
func OptimizeWithRestarts(space Space, initial [][]float64, rcfg RestartConfig) (*Result, error) {
	return OptimizeWithRestartsContext(context.Background(), space, initial, rcfg)
}

// OptimizeWithRestartsContext is OptimizeWithRestarts with cancellation: a
// canceled context ends the current leg and skips the remaining restarts.
//
// Deprecated: use Run with WithConfig, WithInitialSimplex and WithRestarts.
func OptimizeWithRestartsContext(ctx context.Context, space Space, initial [][]float64, rcfg RestartConfig) (*Result, error) {
	return Run(ctx, space, WithConfig(rcfg.Config), WithInitialSimplex(initial),
		WithRestarts(rcfg.Restarts, rcfg.Scale...), WithRestartDecay(rcfg.ScaleDecay))
}

// UniformSimplex draws the d+1 starting vertices with coordinates uniform
// over [lo, hi) from rng — the shared initial-simplex draw, so one seed
// reproduces the same start across the CLI, job specs and library use.
func UniformSimplex(d int, lo, hi float64, rng *rand.Rand) [][]float64 {
	return core.UniformSimplex(d, lo, hi, rng)
}

// NewLocalSpace builds the in-process sampling backend. The concrete type
// exposes Close, which must be called for spaces configured with a private
// worker pool (LocalConfig.Workers >= 1); spaces on the shared pool
// (Workers == 0) need no Close.
func NewLocalSpace(cfg LocalConfig) *LocalSpace { return sim.NewLocalSpace(cfg) }

// ConstSigma adapts a constant eq-1.2 noise strength to LocalConfig.Sigma0.
func ConstSigma(s float64) func([]float64) float64 { return sim.ConstSigma(s) }

// NewMWSpace launches the paper's full parallel deployment: one master,
// Dim+3 vertex workers, one server and Ns simulation clients per worker.
// Call Shutdown on the returned space when done.
func NewMWSpace(cfg MWSpaceConfig) (*mw.Space, error) { return mw.NewSpace(cfg) }

// Checkpoint / resume: the paper's §1.3.5.1 restart strategy made durable.
// A Snapshot captures the complete optimizer state at an iteration boundary
// (simplex coordinates, per-vertex sampling estimates and RNG stream
// positions, contraction level, effort counters, virtual clock, restart-leg
// state); a run resumed from it on a freshly built space is bitwise
// identical to the uninterrupted run. Enable with Config.Checkpoint /
// Config.CheckpointEvery.
type (
	// Snapshot is the serializable state of a run at an iteration boundary.
	Snapshot = core.Snapshot
	// RestartState is the cross-leg state inside a restarted run's Snapshot.
	RestartState = core.RestartState
	// Snapshotter is the optional checkpointing face of a Space; LocalSpace
	// implements it.
	Snapshotter = sim.Snapshotter
)

// Resume continues a snapshotted run on a freshly built space (same
// construction parameters as the original) with the run's original Config.
//
// Deprecated: use Run with WithConfig and WithResume.
func Resume(space Space, snap *Snapshot, cfg Config) (*Result, error) {
	return ResumeContext(context.Background(), space, snap, cfg)
}

// ResumeContext is Resume with cancellation.
//
// Deprecated: use Run with WithConfig and WithResume.
func ResumeContext(ctx context.Context, space Space, snap *Snapshot, cfg Config) (*Result, error) {
	return Run(ctx, space, WithConfig(cfg), WithResume(snap))
}

// ResumeWithRestartsContext continues a snapshotted OptimizeWithRestarts
// run: the in-flight leg resumes mid-run, then the remaining restart legs
// execute.
//
// Deprecated: use Run with WithConfig, WithResume and WithRestarts.
func ResumeWithRestartsContext(ctx context.Context, space Space, snap *Snapshot, rcfg RestartConfig) (*Result, error) {
	return Run(ctx, space, WithConfig(rcfg.Config), WithResume(snap),
		WithRestarts(rcfg.Restarts, rcfg.Scale...), WithRestartDecay(rcfg.ScaleDecay))
}

// Distributed sampling fleet: the network realization of the paper's
// master/worker deployment. A FleetCoordinator accepts worker agents
// (cmd/optworker, or in-process FleetWorkers) over TCP with a
// length-prefixed JSON frame protocol, dispatches prioritized sampling tasks
// over their registered capacity, and deterministically re-dispatches the
// outstanding tasks of dead workers. It implements FleetSampler, so it plugs
// underneath any run via WithFleet (or LocalConfig.Fleet), any job via
// JobSpec.Fleet, and the optd server via -fleet-addr — with results bitwise
// identical to in-process runs at any fleet size and under worker death.
type (
	// FleetSampler is the remote sampling backend interface a LocalSpace
	// dispatches batches through (see WithFleet).
	FleetSampler = sim.FleetSampler
	// FleetCoordinator owns the fleet: registration, dispatch, heartbeats,
	// deterministic re-dispatch. Create with NewFleetCoordinator.
	FleetCoordinator = dist.Coordinator
	// FleetCoordinatorConfig configures the coordinator (heartbeat interval,
	// death timeout, frame-codec ceiling).
	FleetCoordinatorConfig = dist.Config
	// FleetStatus is the coordinator's aggregate state (the "fleet" section
	// of optd's /healthz).
	FleetStatus = dist.Status
	// FleetWorker is one sampling agent; cmd/optworker wraps it, and tests
	// or embedded deployments run it in-process with NewFleetWorker.
	FleetWorker = dist.Worker
	// FleetWorkerConfig configures an agent (coordinator address, capacity,
	// objective catalog, simulated sampling cost).
	FleetWorkerConfig = dist.WorkerConfig
)

// NewFleetCoordinator builds a fleet coordinator; call Listen on it to open
// the worker-registration listener, and Close to shut the fleet down.
func NewFleetCoordinator(cfg FleetCoordinatorConfig) *FleetCoordinator {
	return dist.NewCoordinator(cfg)
}

// NewFleetWorker builds a sampling agent; its Run (one connection) or
// RunLoop (auto-reconnect) executes tasks until the context ends.
func NewFleetWorker(cfg FleetWorkerConfig) *FleetWorker { return dist.NewWorker(cfg) }

// Job service: the in-process form of the cmd/optd server. A JobManager
// multiplexes many concurrent optimization runs — first-class jobs with
// lifecycle states, live progress subscriptions, cancellation, and durable
// checkpoint/recover — over one shared sampling worker fleet.
type (
	// JobManager runs many optimizations as jobs; create with NewJobManager.
	JobManager = jobs.Manager
	// JobManagerConfig configures the manager (run-pool width, fleet size,
	// durable store, tenant quotas, custom objectives).
	JobManagerConfig = jobs.Config
	// JobQuota bounds one tenant's use of the manager: max queued, max
	// running, and a token-bucket submission rate limit. The zero value
	// is unlimited. Set JobManagerConfig.DefaultQuota (or per-tenant
	// overrides in TenantQuotas) to enforce it.
	JobQuota = jobs.Quota
	// JobTenantStats is one tenant's aggregate accounting (queued,
	// running, submitted, rejected), as returned by JobManager.Tenants.
	JobTenantStats = jobs.TenantStats
	// JobSpec describes one job: named objective, dimension, algorithm,
	// noise strength, seed, budgets.
	JobSpec = jobs.Spec
	// JobStatus is the externally visible state of a job.
	JobStatus = jobs.Status
	// JobState is a job lifecycle state (queued, running, done, failed,
	// canceled).
	JobState = jobs.State
	// JobEvent is one element of a job's progress stream.
	JobEvent = jobs.Event
)

// Job lifecycle states.
const (
	JobQueued   = jobs.StateQueued
	JobRunning  = jobs.StateRunning
	JobDone     = jobs.StateDone
	JobFailed   = jobs.StateFailed
	JobCanceled = jobs.StateCanceled
)

// NewJobManager starts an optimization job manager. Close it when done;
// call Recover first in a restarted process to resume checkpointed jobs.
func NewJobManager(cfg JobManagerConfig) (*JobManager, error) { return jobs.New(cfg) }
