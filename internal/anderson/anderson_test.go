package anderson

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

func space(f func([]float64) float64, dim int, sigma float64, seed int64) *sim.LocalSpace {
	return sim.NewLocalSpace(sim.LocalConfig{
		Dim: dim, F: f, Sigma0: sim.ConstSigma(sigma), Seed: seed, Parallel: true,
	})
}

func structureAround(center []float64, spread float64, rng *rand.Rand, m int) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		p := make([]float64, len(center))
		for j := range p {
			p[j] = center[j] + spread*(rng.Float64()-0.5)
		}
		out[i] = p
	}
	return out
}

func TestTransformIdentities(t *testing.T) {
	coords := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	x := []float64{1, 2}

	refl := Reflect(coords, x)
	// REFLECT(S,x): x_i -> 2x - x_i. First point (==x) maps to itself.
	if refl[0][0] != 1 || refl[0][1] != 2 {
		t.Fatalf("reflect of x itself = %v, want (1,2)", refl[0])
	}
	if refl[1][0] != -1 || refl[1][1] != 0 {
		t.Fatalf("reflect of (3,4) = %v, want (-1,0)", refl[1])
	}

	exp := Expand(coords, x)
	// EXPAND(S,x): x_i -> 2x_i - x. (3,4) -> (5,6).
	if exp[1][0] != 5 || exp[1][1] != 6 {
		t.Fatalf("expand of (3,4) = %v, want (5,6)", exp[1])
	}

	con := Contract(coords, x)
	// CONTRACT(S,x): x_i -> (x+x_i)/2. (5,6) -> (3,4).
	if con[2][0] != 3 || con[2][1] != 4 {
		t.Fatalf("contract of (5,6) = %v, want (3,4)", con[2])
	}
}

// Property (paper section 2.2): expansion doubles the structure size,
// contraction halves it, reflection preserves it.
func TestTransformSizeProperty(t *testing.T) {
	size := func(coords [][]float64) float64 {
		maxD := 0.0
		for i := range coords {
			for j := i + 1; j < len(coords); j++ {
				s := 0.0
				for k := range coords[i] {
					d := coords[i][k] - coords[j][k]
					s += d * d
				}
				if d := math.Sqrt(s); d > maxD {
					maxD = d
				}
			}
		}
		return maxD
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		coords := structureAround([]float64{1, -2, 3}, 4, rng, 5)
		x := coords[0]
		d0 := size(coords)
		if d0 == 0 {
			return true
		}
		rel := func(a, b float64) float64 { return math.Abs(a-b) / b }
		return rel(size(Reflect(coords, x)), d0) < 1e-9 &&
			rel(size(Expand(coords, x)), 2*d0) < 1e-9 &&
			rel(size(Contract(coords, x)), d0/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNoiselessSphereConverges(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 1)
	rng := rand.New(rand.NewSource(2))
	cfg := DefaultConfig()
	cfg.Tol = 1e-5
	res, err := Optimize(sp, structureAround([]float64{3, 3}, 1, rng, 3), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "size" {
		t.Fatalf("termination = %q, want size", res.Termination)
	}
	if d := testfunc.Dist(res.BestX, []float64{0, 0}); d > 0.5 {
		t.Fatalf("best %v too far from origin (%v)", res.BestX, d)
	}
}

func TestNoisyRosenbrockProgress(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 3, 10, 5)
	rng := rand.New(rand.NewSource(3))
	start := structureAround([]float64{-1, 2, 1}, 2, rng, 4)
	startBest := math.Inf(1)
	for _, x := range start {
		if f := testfunc.Rosenbrock(x); f < startBest {
			startBest = f
		}
	}
	cfg := DefaultConfig()
	cfg.MaxWalltime = 2e4
	cfg.Tol = 1e-6
	res, err := Optimize(sp, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := testfunc.Rosenbrock(res.BestX); f >= startBest {
		t.Fatalf("no progress: f(best)=%v, started at %v", f, startBest)
	}
}

// The Table 3.2 observation: a small k1 is the strict noise criterion — each
// move demands enormous sampling, so under a fixed time budget the search
// manages far fewer iterations (small N) and stalls far from the minimum
// (large R) compared to a large k1.
func TestSmallK1StallsUnderBudget(t *testing.T) {
	run := func(k1 float64) *Result {
		sp := space(testfunc.Rosenbrock, 3, 100, 7)
		rng := rand.New(rand.NewSource(4))
		cfg := DefaultConfig()
		cfg.K1 = k1
		cfg.Tol = 1e-3
		cfg.MaxWalltime = 5e4
		res, err := Optimize(sp, structureAround([]float64{-2, 1, 0}, 3, rng, 4), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	small := run(1)
	large := run(1 << 20)
	if small.Iterations >= large.Iterations {
		t.Fatalf("small k1 iterations %d not fewer than large k1 %d under the same budget",
			small.Iterations, large.Iterations)
	}
	if small.Walltime < large.Walltime {
		t.Fatalf("small k1 walltime %v should exhaust the budget (large k1 used %v)",
			small.Walltime, large.Walltime)
	}
}

func TestConfigValidation(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 1)
	pts := [][]float64{{0, 0}, {1, 1}, {0, 1}}
	cfg := DefaultConfig()
	cfg.K1 = 0
	if _, err := Optimize(sp, pts, cfg); err == nil {
		t.Error("K1=0 accepted")
	}
	if _, err := Optimize(sp, [][]float64{{0, 0}}, DefaultConfig()); err == nil {
		t.Error("single-point structure accepted")
	}
	if _, err := Optimize(sp, [][]float64{{0}, {1}}, DefaultConfig()); err == nil {
		t.Error("wrong-dimension points accepted")
	}
}

func TestIterationCap(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 3, 100, 8)
	rng := rand.New(rand.NewSource(9))
	cfg := DefaultConfig()
	cfg.MaxIterations = 7
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	res, err := Optimize(sp, structureAround([]float64{0, 0, 0}, 2, rng, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "iterations" || res.Iterations != 7 {
		t.Fatalf("got %q after %d, want iterations after 7", res.Termination, res.Iterations)
	}
}

func TestTraceCallback(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 10)
	rng := rand.New(rand.NewSource(11))
	cfg := DefaultConfig()
	cfg.MaxIterations = 5
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	n := 0
	cfg.Trace = func(iter int, time, best float64) { n++ }
	if _, err := Optimize(sp, structureAround([]float64{2, 2}, 1, rng, 3), cfg); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("trace called %d times, want 5", n)
	}
}
