// Package anderson implements the direct-search optimization method of
// Anderson and Ferris ("A direct search algorithm for optimization with noisy
// function evaluations", SIAM J. Optim 11, 2000), which the paper uses as its
// external baseline (section 2.2).
//
// Unlike Nelder-Mead, the Anderson method operates on a *structure*: a set of
// m points transformed as a whole (eqs 2.5-2.8 of the paper):
//
//	D(S)           = max_{j,k} |x_j - x_k|            (structure size)
//	REFLECT(S, x)  = { 2x - x_i  | x_i in S }
//	EXPAND(S, x)   = { 2x_i - x  | x_i in S }
//	CONTRACT(S, x) = { (x + x_i)/2 | x_i in S }
//
// Before every move, each point must satisfy the noise criterion of eq 2.4:
// sigma_i^2(t_i) < k1 * 2^(-l(1+k2)) where l is the contraction level
// (contract: l+1, expand: l-1, reflect: unchanged).
//
// Note: the dissertation's Tables 3.1-3.2 evaluate only Anderson's
// convergence *criterion* inside the NM skeleton (core.AndersonNM); this
// package provides the genuine structure-based search as the extension
// baseline the paper cites.
package anderson

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sim"
)

// Config controls an Anderson direct-search run.
type Config struct {
	// K1, K2 parameterize the noise criterion of eq 2.4.
	K1, K2 float64
	// InitialSample is the sampling time for every fresh point.
	InitialSample float64
	// Resample is the base sampling increment per criterion round.
	Resample float64
	// ResampleGrowth multiplies the increment on consecutive rounds (>= 1).
	ResampleGrowth float64
	// Tol terminates when the structure size D(S) falls below it.
	Tol float64
	// MaxWalltime bounds the virtual wall clock (0 = unlimited).
	MaxWalltime float64
	// MaxIterations bounds the structure moves (0 = unlimited).
	MaxIterations int
	// MaxWaitRounds caps criterion rounds per move.
	MaxWaitRounds int
	// Trace, if non-nil, receives (iteration, time, best estimate) tuples.
	Trace func(iter int, time, best float64)
}

// DefaultConfig mirrors the paper's Anderson settings (k2 = 0).
func DefaultConfig() Config {
	return Config{
		K1:             1 << 20,
		K2:             0,
		InitialSample:  1,
		Resample:       1,
		ResampleGrowth: 2,
		Tol:            1e-4,
		MaxWalltime:    1e9,
		MaxIterations:  100000,
		MaxWaitRounds:  60,
	}
}

// Result summarizes a completed search.
type Result struct {
	// BestX is the best structure point at termination.
	BestX []float64
	// BestG is its noisy estimate.
	BestG float64
	// Iterations is the number of structure moves.
	Iterations int
	// Walltime is the elapsed virtual time.
	Walltime float64
	// Termination is "size", "walltime", or "iterations".
	Termination string
	// ContractionLevel is the final level l.
	ContractionLevel int
	// Reflections, Expansions, Contractions count the accepted moves.
	Reflections, Expansions, Contractions int
}

// Optimize runs the structure-based direct search starting from the given
// structure (at least d+1 points of dimension d recommended; any m >= 2
// points are accepted).
func Optimize(space sim.Space, initial [][]float64, cfg Config) (*Result, error) {
	if len(initial) < 2 {
		return nil, errors.New("anderson: need at least 2 structure points")
	}
	d := space.Dim()
	for i, x := range initial {
		if len(x) != d {
			return nil, fmt.Errorf("anderson: point %d has dimension %d, want %d", i, len(x), d)
		}
	}
	if cfg.K1 <= 0 || cfg.InitialSample <= 0 || cfg.Resample <= 0 || cfg.ResampleGrowth < 1 || cfg.MaxWaitRounds <= 0 {
		return nil, errors.New("anderson: invalid config")
	}

	s := &search{space: space, cfg: cfg, start: space.Clock().Now()}
	s.pts = make([]sim.Point, len(initial))
	for i, x := range initial {
		s.pts[i] = space.NewPoint(x)
	}
	space.SampleAll(s.pts, cfg.InitialSample)
	return s.run()
}

type search struct {
	space sim.Space
	cfg   Config
	start float64

	pts   []sim.Point
	level int
	res   Result
}

func (s *search) elapsed() float64 { return s.space.Clock().Now() - s.start }

func (s *search) overBudget() bool {
	return s.cfg.MaxWalltime > 0 && s.elapsed() >= s.cfg.MaxWalltime
}

// size computes D(S), the maximum pairwise distance (eq 2.5).
func (s *search) size() float64 {
	maxD := 0.0
	for i := 0; i < len(s.pts); i++ {
		for j := i + 1; j < len(s.pts); j++ {
			xi, xj := s.pts[i].X(), s.pts[j].X()
			sum := 0.0
			for k := range xi {
				dk := xi[k] - xj[k]
				sum += dk * dk
			}
			if d := math.Sqrt(sum); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

func (s *search) best() int {
	bi := 0
	for i := 1; i < len(s.pts); i++ {
		if s.pts[i].Estimate().Mean < s.pts[bi].Estimate().Mean {
			bi = i
		}
	}
	return bi
}

// waitCriterion samples until every point satisfies eq 2.4.
func (s *search) waitCriterion() {
	dt := s.cfg.Resample
	rounds := 0
	for {
		cutoff := s.cfg.K1 * math.Exp2(-float64(s.level)*(1+s.cfg.K2))
		ok := true
		for _, p := range s.pts {
			sg := p.Estimate().Sigma
			if sg*sg >= cutoff {
				ok = false
				break
			}
		}
		if ok || s.overBudget() || rounds >= s.cfg.MaxWaitRounds {
			return
		}
		s.space.SampleAll(s.pts, dt)
		dt *= s.cfg.ResampleGrowth
		rounds++
	}
}

// transform builds a fresh, sampled structure from the given coordinates.
func (s *search) transform(coords [][]float64) []sim.Point {
	pts := make([]sim.Point, len(coords))
	for i, x := range coords {
		pts[i] = s.space.NewPoint(x)
	}
	s.space.SampleAll(pts, s.cfg.InitialSample)
	return pts
}

func closeAll(pts []sim.Point) {
	for _, p := range pts {
		p.Close()
	}
}

func bestOf(pts []sim.Point) (int, float64) {
	bi, bv := 0, pts[0].Estimate().Mean
	for i := 1; i < len(pts); i++ {
		if v := pts[i].Estimate().Mean; v < bv {
			bi, bv = i, v
		}
	}
	return bi, bv
}

// Reflect applies eq 2.6 around x.
func Reflect(coords [][]float64, x []float64) [][]float64 {
	out := make([][]float64, len(coords))
	for i, xi := range coords {
		p := make([]float64, len(x))
		for k := range x {
			p[k] = 2*x[k] - xi[k]
		}
		out[i] = p
	}
	return out
}

// Expand applies eq 2.7 around x.
func Expand(coords [][]float64, x []float64) [][]float64 {
	out := make([][]float64, len(coords))
	for i, xi := range coords {
		p := make([]float64, len(x))
		for k := range x {
			p[k] = 2*xi[k] - x[k]
		}
		out[i] = p
	}
	return out
}

// Contract applies eq 2.8 around x.
func Contract(coords [][]float64, x []float64) [][]float64 {
	out := make([][]float64, len(coords))
	for i, xi := range coords {
		p := make([]float64, len(x))
		for k := range x {
			p[k] = 0.5 * (x[k] + xi[k])
		}
		out[i] = p
	}
	return out
}

func coordsOf(pts []sim.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = append([]float64(nil), p.X()...)
	}
	return out
}

func (s *search) run() (*Result, error) {
	for {
		switch {
		case s.size() <= s.cfg.Tol:
			s.res.Termination = "size"
		case s.overBudget():
			s.res.Termination = "walltime"
		case s.cfg.MaxIterations > 0 && s.res.Iterations >= s.cfg.MaxIterations:
			s.res.Termination = "iterations"
		}
		if s.res.Termination != "" {
			break
		}

		s.waitCriterion()

		bi := s.best()
		xbest := append([]float64(nil), s.pts[bi].X()...)
		gbest := s.pts[bi].Estimate().Mean
		cur := coordsOf(s.pts)

		// Try the reflected structure around the best point.
		refl := s.transform(Reflect(cur, xbest))
		_, gref := bestOf(refl)
		if gref < gbest {
			// Reflection improves; try expanding away from the best point.
			exp := s.transform(Expand(cur, xbest))
			if _, gexp := bestOf(exp); gexp < gref {
				closeAll(s.pts)
				closeAll(refl)
				s.pts = exp
				s.level--
				s.res.Expansions++
			} else {
				closeAll(s.pts)
				closeAll(exp)
				s.pts = refl
				s.res.Reflections++
			}
		} else {
			// Reflection failed; contract toward the best point. The best
			// point itself is a member of the contracted structure (x maps
			// to x), so progress is never discarded.
			closeAll(refl)
			con := s.transform(Contract(cur, xbest))
			closeAll(s.pts)
			s.pts = con
			s.level++
			s.res.Contractions++
		}
		s.res.Iterations++
		if s.cfg.Trace != nil {
			_, g := bestOf(s.pts)
			s.cfg.Trace(s.res.Iterations, s.elapsed(), g)
		}
	}

	bi := s.best()
	s.res.BestX = append([]float64(nil), s.pts[bi].X()...)
	s.res.BestG = s.pts[bi].Estimate().Mean
	s.res.Walltime = s.elapsed()
	s.res.ContractionLevel = s.level
	closeAll(s.pts)
	return &s.res, nil
}
