package noise

import (
	"math"
	"math/rand"
	"testing"
)

// This file is the allocation-budget regression layer over the per-draw hot
// path. A single sampling increment — one noise draw folded into one
// accumulator — runs millions of times per optimization, so any allocation
// here multiplies into GC pressure across the whole run. The budgets are
// exact zeros and fail the build when exceeded.

func TestPerDrawAllocFree(t *testing.T) {
	s := NewStream(1.0, 0.5, 42)
	a := NewAccumulator(1.0, 0.5)
	rng := rand.New(rand.NewSource(7))
	zs := make([]float64, 16)
	for i := range zs {
		zs[i] = rng.NormFloat64()
	}
	cases := []struct {
		name string
		fn   func()
	}{
		{"Stream.Sample", func() { s.Sample(0.01) }},
		{"Stream.ApplyDraw", func() { s.ApplyDraw(0.01, 0.3) }},
		{"Stream.ApplyDraws/16", func() { s.ApplyDraws(0.01, zs) }},
		{"Accumulator.Sample", func() { a.Sample(0.01, rng) }},
		{"Accumulator.ApplyDraw", func() { a.ApplyDraw(0.01, 0.3) }},
		{"Accumulator.ApplyDraws/16", func() { a.ApplyDraws(0.01, zs) }},
	}
	for _, c := range cases {
		if allocs := testing.AllocsPerRun(200, c.fn); allocs != 0 {
			t.Errorf("%s: %.1f allocs per call, want 0", c.name, allocs)
		}
	}
}

// TestApplyDrawsMatchesSequential pins the batched fold's bitwise contract:
// ApplyDraws(dt, zs) must leave a stream in exactly the state len(zs)
// sequential ApplyDraw calls would — same accumulator moments, same RNG
// position — including when batches interleave with local Sample calls.
func TestApplyDrawsMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	seq := NewStream(2.5, 1.25, 1234)
	bat := NewStream(2.5, 1.25, 1234)
	for round := 0; round < 50; round++ {
		dt := 0.001 * float64(1+rng.Intn(100))
		zs := make([]float64, rng.Intn(20))
		for i := range zs {
			zs[i] = rng.NormFloat64()
		}
		for _, z := range zs {
			seq.ApplyDraw(dt, z)
		}
		bat.ApplyDraws(dt, zs)
		if round%7 == 0 { // interleave local draws: RNG positions must agree
			seq.Sample(dt)
			bat.Sample(dt)
		}
		ss, bs := seq.State(), bat.State()
		if ss != bs {
			t.Fatalf("round %d: batched state diverged from sequential\nseq: %+v\nbat: %+v", round, ss, bs)
		}
		if b1, b2 := math.Float64bits(seq.Sigma()), math.Float64bits(bat.Sigma()); b1 != b2 {
			t.Fatalf("round %d: sigma bits %x != %x", round, b1, b2)
		}
	}
}
