package noise

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNoiselessAccumulator(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAccumulator(3.5, 0)
	for i := 0; i < 10; i++ {
		a.Sample(1, rng)
	}
	if got := a.Mean(); got != 3.5 {
		t.Fatalf("noiseless Mean() = %v, want 3.5", got)
	}
	if got := a.Sigma(); got != 0 {
		t.Fatalf("noiseless Sigma() = %v, want 0", got)
	}
}

func TestSigmaBeforeSampling(t *testing.T) {
	a := NewAccumulator(1, 2)
	if !math.IsInf(a.Sigma(), 1) {
		t.Fatalf("Sigma before sampling = %v, want +Inf", a.Sigma())
	}
	if a.Mean() != 1 {
		t.Fatalf("Mean before sampling = %v, want underlying 1", a.Mean())
	}
}

func TestSigmaDecaysAsSqrtT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAccumulator(0, 10)
	a.Sample(4, rng)
	if got, want := a.Sigma(), 10.0/2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sigma at t=4: got %v, want %v", got, want)
	}
	a.Sample(12, rng) // t = 16
	if got, want := a.Sigma(), 10.0/4.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sigma at t=16: got %v, want %v", got, want)
	}
}

func TestTimeAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAccumulator(0, 1)
	a.Sample(0.5, rng)
	a.Sample(1.5, rng)
	a.Sample(2.0, rng)
	if got := a.Time(); math.Abs(got-4.0) > 1e-12 {
		t.Fatalf("Time() = %v, want 4.0", got)
	}
	if got := a.Increments(); got != 3 {
		t.Fatalf("Increments() = %v, want 3", got)
	}
}

func TestSamplePanicsOnNonPositiveDt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(0) did not panic")
		}
	}()
	a := NewAccumulator(0, 1)
	a.Sample(0, rand.New(rand.NewSource(4)))
}

func TestNegativeSigma0Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewAccumulator(-1) did not panic")
		}
	}()
	NewAccumulator(0, -1)
}

// Statistical test: the estimate after total time t must have empirical
// variance close to sigma0^2/t, independent of how sampling is split into
// increments.
func TestVarianceLaw(t *testing.T) {
	const (
		sigma0 = 5.0
		trials = 4000
	)
	schedules := [][]float64{
		{8},                      // one shot
		{1, 1, 1, 1, 1, 1, 1, 1}, // uniform increments
		{0.5, 0.5, 3, 4},         // irregular increments
	}
	for si, sched := range schedules {
		rng := rand.New(rand.NewSource(int64(100 + si)))
		total := 0.0
		for _, dt := range sched {
			total += dt
		}
		var sum, sum2 float64
		for i := 0; i < trials; i++ {
			a := NewAccumulator(0, sigma0)
			for _, dt := range sched {
				a.Sample(dt, rng)
			}
			m := a.Mean()
			sum += m
			sum2 += m * m
		}
		mean := sum / trials
		variance := sum2/trials - mean*mean
		want := sigma0 * sigma0 / total
		if rel := math.Abs(variance-want) / want; rel > 0.15 {
			t.Errorf("schedule %d: empirical var %.4f, want %.4f (rel err %.2f)",
				si, variance, want, rel)
		}
		if math.Abs(mean) > 4*sigma0/math.Sqrt(total*trials) {
			t.Errorf("schedule %d: empirical mean %.4f too far from 0", si, mean)
		}
	}
}

// The running mean must be consistent: adding more samples keeps the estimate
// converging toward f (strong-law behaviour), so |mean - f| at large t should
// be much smaller than at small t on average.
func TestConvergenceTowardUnderlying(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const f = 42.0
	var earlyErr, lateErr float64
	const trials = 500
	for i := 0; i < trials; i++ {
		a := NewAccumulator(f, 100)
		a.Sample(1, rng)
		earlyErr += math.Abs(a.Mean() - f)
		for j := 0; j < 99; j++ {
			a.Sample(1, rng)
		}
		lateErr += math.Abs(a.Mean() - f)
	}
	if lateErr >= earlyErr/2 {
		t.Fatalf("late error %v not much smaller than early error %v", lateErr, earlyErr)
	}
}

func TestSigmaEstApproximatesTrueSigma(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := NewAccumulator(0, 7)
	for i := 0; i < 2000; i++ {
		a.Sample(0.25, rng)
	}
	est, want := a.SigmaEst(), a.Sigma()
	if rel := math.Abs(est-want) / want; rel > 0.10 {
		t.Fatalf("SigmaEst = %v, true = %v (rel err %.3f)", est, want, rel)
	}
}

func TestSigmaEstFallsBackBeforeStats(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := NewAccumulator(0, 3)
	a.Sample(1, rng)
	if got, want := a.SigmaEst(), a.Sigma(); got != want {
		t.Fatalf("SigmaEst with 1 increment = %v, want fallback %v", got, want)
	}
}

// Property: for any positive sigma0 and any positive sampling schedule the
// invariants hold: t equals the sum of increments, Sigma is sigma0/sqrt(t),
// and Underlying is preserved.
func TestAccumulatorInvariantsProperty(t *testing.T) {
	f := func(seed int64, rawSigma float64, rawDts []float64) bool {
		sigma0 := math.Abs(rawSigma)
		if math.IsNaN(sigma0) || math.IsInf(sigma0, 0) || sigma0 > 1e6 {
			return true // skip pathological generator output
		}
		rng := rand.New(rand.NewSource(seed))
		a := NewAccumulator(1.25, sigma0)
		total := 0.0
		for _, r := range rawDts {
			dt := math.Abs(r)
			if dt == 0 || math.IsNaN(dt) || math.IsInf(dt, 0) || dt > 1e6 {
				continue
			}
			a.Sample(dt, rng)
			total += dt
		}
		if total == 0 {
			return math.IsInf(a.Sigma(), 1)
		}
		if math.Abs(a.Time()-total) > 1e-9*total {
			return false
		}
		wantSigma := sigma0 / math.Sqrt(total)
		if math.Abs(a.Sigma()-wantSigma) > 1e-9*(1+wantSigma) {
			return false
		}
		return a.Underlying() == 1.25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []float64 {
		rng := rand.New(rand.NewSource(99))
		a := NewAccumulator(0, 2)
		out := make([]float64, 0, 10)
		for i := 0; i < 10; i++ {
			a.Sample(1, rng)
			out = append(out, a.Mean())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at step %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStreamMatchesAccumulator(t *testing.T) {
	// A Stream is an Accumulator plus a private RNG: the same seed must
	// reproduce exactly the draws of a hand-held rand.Rand.
	st := NewStream(3.5, 2, 42)
	rng := rand.New(rand.NewSource(42))
	acc := NewAccumulator(3.5, 2)
	for i := 0; i < 25; i++ {
		st.Sample(0.5)
		acc.Sample(0.5, rng)
		if st.Mean() != acc.Mean() || st.Sigma() != acc.Sigma() {
			t.Fatalf("step %d: stream (%v, %v) != accumulator (%v, %v)",
				i, st.Mean(), st.Sigma(), acc.Mean(), acc.Sigma())
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(0, 1, 1)
	b := NewStream(0, 1, 2)
	a.Sample(1)
	b.Sample(1)
	if a.Mean() == b.Mean() {
		t.Fatal("distinct seeds produced identical first draws")
	}
}

func TestStreamStateRestore(t *testing.T) {
	// A stream rebuilt from State must continue the exact draw sequence of
	// the original: Restore replays the recorded number of normal draws.
	orig := NewStream(1.5, 4, 99)
	for i := 0; i < 7; i++ {
		orig.Sample(0.3 * float64(i+1))
	}
	st := orig.State()

	resumed := NewStream(1.5, 4, 99)
	resumed.Restore(st)
	if resumed.Mean() != orig.Mean() || resumed.SigmaEst() != orig.SigmaEst() ||
		resumed.Time() != orig.Time() || resumed.Increments() != orig.Increments() {
		t.Fatalf("restored stream state differs: mean %v vs %v", resumed.Mean(), orig.Mean())
	}
	for i := 0; i < 10; i++ {
		orig.Sample(0.9)
		resumed.Sample(0.9)
		if resumed.Mean() != orig.Mean() || resumed.SigmaEst() != orig.SigmaEst() {
			t.Fatalf("post-restore draw %d diverged: %v vs %v", i, resumed.Mean(), orig.Mean())
		}
	}
}
