// Package noise implements the stochastic observation model of the paper
// (eqs 1.1-1.2): the observed objective value at a vertex k is
//
//	g(theta_k) = f(theta_k) + eps_k(t_k)
//
// where eps_k is Gaussian with mean zero and variance sigma_k^2(t_k) =
// (sigma0_k)^2 / t_k, and t_k is the accumulated sampling time at that
// vertex. Continued sampling shrinks the noise as 1/sqrt(t), exactly as a
// molecular-dynamics average over a longer trajectory would.
//
// An Accumulator models this consistently across incremental sampling: the
// noise contribution is a Brownian integral W(t) with Var W(t) = sigma0^2*t,
// and the running estimate is f + W(t)/t, so that (a) the estimate after
// total time t has variance sigma0^2/t regardless of how the sampling was
// split into increments, and (b) successive estimates are correlated the way
// a lengthening running average is, rather than being independent redraws.
package noise

import (
	"math"
	"math/rand"
	"sync"

	"repro/internal/stats"
)

// Accumulator tracks the sampling state of one point in parameter space.
// It owns the underlying deterministic value f (unknown to the optimizer)
// and the accumulated Brownian noise.
type Accumulator struct {
	f      float64 // underlying noise-free value
	sigma0 float64 // inherent noise strength (sigma0_k in eq 1.2)

	t float64 // accumulated sampling time
	w float64 // accumulated Brownian noise integral, Var = sigma0^2 * t

	// Statistics for estimating sigma0 from the observed increments, used
	// when the optimizer is not told the true noise strength (the paper:
	// "there is no expectation that this variance is known ahead of time").
	n int           // number of increments
	z stats.Welford // online moments of the normalized increments
}

// NewAccumulator returns an accumulator for a point whose noise-free value is
// f and whose inherent noise strength is sigma0 (may be zero for a noiseless
// objective).
func NewAccumulator(f, sigma0 float64) *Accumulator {
	if sigma0 < 0 {
		panic("noise: negative sigma0")
	}
	return &Accumulator{f: f, sigma0: sigma0}
}

// Sample accrues dt additional seconds of sampling, drawing the noise
// increment from rng. dt must be positive.
//
//optlint:noalloc
func (a *Accumulator) Sample(dt float64, rng *rand.Rand) {
	a.ApplyDraw(dt, rng.NormFloat64())
}

// ApplyDraw accrues dt additional seconds of sampling using an externally
// supplied standard-normal draw z instead of drawing one itself. It is the
// shared accumulation step behind Sample and the remote-fleet path, where the
// draw is computed by a worker process from the point's stream seed: applying
// the same z sequence yields the same state bit for bit, wherever the draws
// were produced. dt must be positive.
//
//optlint:noalloc
func (a *Accumulator) ApplyDraw(dt, z float64) {
	if dt <= 0 {
		panic("noise: Sample requires dt > 0")
	}
	a.w += a.sigma0 * math.Sqrt(dt) * z
	a.t += dt

	// Each increment's value, normalized, is an N(0, sigma0^2) draw:
	// (dW/dt)*sqrt(dt) = sigma0 * z. Track it to estimate sigma0.
	a.z.Add(a.sigma0 * z)
	a.n++
}

// ApplyDraws accrues len(zs) sampling increments of dt seconds each in one
// call — the batched face of ApplyDraw. The scale factor sigma0*sqrt(dt) is
// hoisted out of the loop and the Welford fold runs in one pass, but every
// operation associates exactly as len(zs) sequential ApplyDraw calls would,
// so the resulting state is bitwise identical. dt must be positive.
//
//optlint:noalloc
func (a *Accumulator) ApplyDraws(dt float64, zs []float64) {
	if len(zs) == 0 {
		return
	}
	if dt <= 0 {
		panic("noise: Sample requires dt > 0")
	}
	scale := a.sigma0 * math.Sqrt(dt)
	for _, z := range zs {
		a.w += scale * z
		a.t += dt
		a.z.Add(a.sigma0 * z)
	}
	a.n += len(zs)
}

// Mean returns the current running estimate of the objective value,
// f + W(t)/t. Before any sampling it returns the underlying value (a point
// that was never sampled carries no information; callers are expected to
// Sample before trusting Mean, and Sigma reports +Inf in that state).
func (a *Accumulator) Mean() float64 {
	if a.t == 0 {
		return a.f
	}
	return a.f + a.w/a.t
}

// Sigma returns the true standard deviation of the current estimate,
// sigma0/sqrt(t) (eq 1.2). It is +Inf before any sampling.
func (a *Accumulator) Sigma() float64 {
	if a.t == 0 {
		return math.Inf(1)
	}
	return a.sigma0 / math.Sqrt(a.t)
}

// SigmaEst returns an estimate of the standard deviation of the current
// running mean, computed only from observed increments (no knowledge of the
// true sigma0). With fewer than two increments it falls back to the true
// value, mirroring a practitioner's use of a prior guess until batch
// statistics exist.
func (a *Accumulator) SigmaEst() float64 {
	if a.z.N() < 2 || a.t == 0 {
		return a.Sigma()
	}
	return a.z.StdDev() / math.Sqrt(a.t)
}

// Time returns the accumulated sampling time t_k.
func (a *Accumulator) Time() float64 { return a.t }

// State is the serializable sampling state of an Accumulator. Together with
// the point's identity (coordinates and stream seed) it is everything needed
// to reconstruct the point bitwise in a fresh process: the numeric fields are
// restored verbatim, and the RNG is fast-forwarded by N draws (each Sample
// consumes exactly one normal variate), so the next increment after a restore
// observes exactly the noise it would have observed uninterrupted.
type State struct {
	// T is the accumulated sampling time.
	T float64 `json:"t"`
	// W is the accumulated Brownian noise integral.
	W float64 `json:"w"`
	// N is the number of sampling increments (== normal draws consumed).
	N int `json:"n"`
	// ZMean, ZM2 and ZCount are the Welford statistics behind SigmaEst.
	ZMean  float64 `json:"z_mean"`
	ZM2    float64 `json:"z_m2"`
	ZCount int     `json:"z_count"`
}

// State exports the accumulator's sampling state. It performs no RNG draws,
// so taking a snapshot never perturbs the run being snapshotted.
func (a *Accumulator) State() State {
	z := a.z.State()
	return State{T: a.t, W: a.w, N: a.n, ZMean: z.Mean, ZM2: z.M2, ZCount: z.N}
}

// restore overwrites the accumulator's sampling state. The identity fields
// (f, sigma0) are not part of State; they are reconstructed by the caller
// from the point's coordinates.
func (a *Accumulator) restore(st State) {
	a.t, a.w, a.n = st.T, st.W, st.N
	a.z.Restore(stats.WelfordState{N: st.ZCount, Mean: st.ZMean, M2: st.ZM2})
}

// Underlying returns the noise-free value f. It exists for harness-side
// accounting (computing the R performance measure of section 3.2); the
// optimization algorithms never call it.
func (a *Accumulator) Underlying() float64 { return a.f }

// Sigma0 returns the inherent noise strength sigma0_k.
func (a *Accumulator) Sigma0() float64 { return a.sigma0 }

// Increments returns the number of sampling increments taken so far.
func (a *Accumulator) Increments() int { return a.n }

// Stream is an Accumulator coupled to its own deterministic RNG. It is the
// unit of concurrency for batch sampling: because every point draws noise
// from a private stream, the values it observes depend only on its seed and
// its own sampling history, never on how many other points were sampled
// concurrently or in what order. Sample is safe to call from one goroutine at
// a time per stream (the batch scheduler's guarantee); the mutex additionally
// tolerates a point appearing twice in one batch.
type Stream struct {
	*Accumulator
	mu  sync.Mutex
	rng *rand.Rand // guarded by mu (the pointer is fixed; mu serializes draws)
}

// NewStream builds the sampling stream for a point with noise-free value f,
// inherent noise strength sigma0, and the given RNG seed (typically derived
// with sched.StreamSeed from the space seed and the point's creation index).
func NewStream(f, sigma0 float64, seed int64) *Stream {
	return &Stream{
		Accumulator: NewAccumulator(f, sigma0),
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// Sample accrues dt additional seconds of sampling, drawing the noise
// increment from the stream's private RNG.
//
//optlint:noalloc
func (s *Stream) Sample(dt float64) {
	s.mu.Lock()
	s.Accumulator.Sample(dt, s.rng)
	s.mu.Unlock()
}

// ApplyDraw folds in one sampling increment whose standard-normal draw z was
// computed externally (by a remote fleet worker replaying this stream's seed).
// The stream's own RNG is advanced by exactly one discarded draw, preserving
// the invariant that the RNG position always equals the increment count — so
// local and remote sampling can interleave on one point, and Restore (which
// replays Increments() draws) stays exact. When z really came from a replica
// of this stream, the discarded local draw is bit-identical to z; the remote
// worker merely paid the simulation cost of producing it.
//
//optlint:noalloc
func (s *Stream) ApplyDraw(dt, z float64) {
	s.mu.Lock()
	s.rng.NormFloat64()
	s.Accumulator.ApplyDraw(dt, z)
	s.mu.Unlock()
}

// ApplyDraws folds in len(zs) externally computed increments under a single
// lock acquisition: the RNG fast-forwards by len(zs) discarded draws (keeping
// the position == increment-count invariant) and the accumulator applies the
// batch through Accumulator.ApplyDraws. Bitwise identical to len(zs)
// sequential ApplyDraw calls.
//
//optlint:noalloc
func (s *Stream) ApplyDraws(dt float64, zs []float64) {
	if len(zs) == 0 {
		return
	}
	s.mu.Lock()
	for range zs {
		s.rng.NormFloat64()
	}
	s.Accumulator.ApplyDraws(dt, zs)
	s.mu.Unlock()
}

// Restore rebuilds the stream's sampling state from a snapshot taken by
// State. The stream must be freshly built by NewStream with the same seed the
// original had: Restore replays st.N normal draws to advance the RNG to the
// exact position the original stream was at, then overwrites the accumulator
// state, so the resumed stream is bitwise indistinguishable from one that was
// never interrupted.
func (s *Stream) Restore(st State) {
	s.mu.Lock()
	for i := 0; i < st.N; i++ {
		s.rng.NormFloat64()
	}
	s.Accumulator.restore(st)
	s.mu.Unlock()
}
