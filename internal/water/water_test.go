package water

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsVecRoundTrip(t *testing.T) {
	p := Params{Epsilon: 0.15, Sigma: 3.16, QH: 0.52}
	if got := FromVec(p.Vec()); got != p {
		t.Fatalf("round trip = %+v", got)
	}
}

func TestFromVecPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FromVec([]float64{1, 2})
}

func TestPropertyNames(t *testing.T) {
	want := []string{"D", "gHH", "gOH", "gOO", "P", "E"}
	for i := Property(0); i < NumProperties; i++ {
		if i.String() != want[i] {
			t.Errorf("property %d name %q, want %q", i, i.String(), want[i])
		}
	}
	if PropD.Units() != "cm^2/s" || PropP.Units() != "atm" || PropGOO.Units() != "" {
		t.Error("units wrong")
	}
}

func TestSurfacesReproduceTIP4PAnchors(t *testing.T) {
	props := NoiseFreeProperties(TIP4PParams())
	if math.Abs(props[PropU]-(-41.8)) > 0.05 {
		t.Errorf("U at TIP4P = %v, want ~-41.8", props[PropU])
	}
	if math.Abs(props[PropP]-373) > 10 {
		t.Errorf("P at TIP4P = %v, want ~373", props[PropP])
	}
	if math.Abs(props[PropD]-3.29e-5)/3.29e-5 > 0.05 {
		t.Errorf("D at TIP4P = %v, want ~3.29e-5", props[PropD])
	}
	// TIP4P residuals small but nonzero (the over-structuring).
	for _, p := range []Property{PropGOO, PropGOH, PropGHH} {
		if props[p] <= 0 || props[p] > 0.3 {
			t.Errorf("%v residual at TIP4P = %v, want small positive", p, props[p])
		}
	}
}

func TestRDFResidualVanishesAtAnchor(t *testing.T) {
	for _, p := range []Property{PropGOO, PropGOH, PropGHH} {
		if r := RDFResidual(p, rdfAnchor); r > 1e-12 {
			t.Errorf("%v residual at anchor = %v, want 0", p, r)
		}
	}
}

func TestCostBetterNearThetaStarThanTIP4P(t *testing.T) {
	cStar := NoiseFreeCost(thetaStar.Vec())
	cTIP4P := NoiseFreeCost(TIP4PParams().Vec())
	if cStar >= cTIP4P {
		t.Fatalf("cost(thetaStar)=%v not below cost(TIP4P)=%v", cStar, cTIP4P)
	}
}

func TestCostGrowsAwayFromOptimum(t *testing.T) {
	base := NoiseFreeCost(thetaStar.Vec())
	far := Params{Epsilon: 0.30, Sigma: 2.8, QH: 0.65}
	if NoiseFreeCost(far.Vec()) < 10*base+1 {
		t.Fatalf("cost at far params %v not much larger than %v", NoiseFreeCost(far.Vec()), base)
	}
}

// Property: the cost is non-negative everywhere and exactly eq 3.4.
func TestCostNonNegativeProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		clamp := func(v, lo, hi float64) float64 {
			if math.IsNaN(v) {
				return (lo + hi) / 2
			}
			return lo + math.Mod(math.Abs(v), hi-lo)
		}
		theta := Params{
			Epsilon: clamp(a, 0.05, 0.4),
			Sigma:   clamp(b, 2.5, 4.0),
			QH:      clamp(c, 0.3, 0.8),
		}
		return NoiseFreeCost(theta.Vec()) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCostHandComputed(t *testing.T) {
	// A property vector exactly on target gives zero cost.
	var onTarget [NumProperties]float64
	for i := Property(0); i < NumProperties; i++ {
		onTarget[i] = Targets[i]
	}
	if c := Cost(onTarget); c != 0 {
		t.Fatalf("cost on target = %v", c)
	}
	// One property off target by one scale unit contributes w^2.
	off := onTarget
	off[PropU] = Targets[PropU] + Scales[PropU]
	want := Weights[PropU] * Weights[PropU]
	if c := Cost(off); math.Abs(c-want) > 1e-12 {
		t.Fatalf("cost = %v, want %v", c, want)
	}
}

func TestSurrogateEvaluatorLifecycle(t *testing.T) {
	s := NewSurrogate(1.0, 42)
	s.Start(TIP4PParams().Vec())
	s.Sample(1)
	m1, v1, t1 := s.Report()
	if t1 != 1 {
		t.Fatalf("time = %v", t1)
	}
	if v1 <= 0 {
		t.Fatalf("variance = %v, want positive with noise", v1)
	}
	for i := 0; i < 200; i++ {
		s.Sample(1)
	}
	m2, v2, t2 := s.Report()
	if t2 != 201 {
		t.Fatalf("time = %v", t2)
	}
	if v2 >= v1 {
		t.Fatalf("variance did not shrink: %v -> %v", v1, v2)
	}
	// The converged estimate must approach the noise-free cost.
	exact := NoiseFreeCost(TIP4PParams().Vec())
	if math.Abs(m2-exact) > math.Abs(m1-exact)+0.5 {
		t.Fatalf("estimate diverged: %v -> %v (exact %v)", m1, m2, exact)
	}
	s.Stop()
}

func TestSurrogateNoiselessMatchesExact(t *testing.T) {
	s := NewSurrogate(0, 7)
	x := []float64{0.152, 3.16, 0.521}
	s.Start(x)
	s.Sample(1)
	m, v, _ := s.Report()
	if v != 0 {
		t.Fatalf("noiseless variance = %v", v)
	}
	if want := NoiseFreeCost(x); math.Abs(m-want) > 1e-12 {
		t.Fatalf("mean = %v, want %v", m, want)
	}
}

func TestPropertyEstimates(t *testing.T) {
	s := NewSurrogate(1.0, 3)
	s.Start(TIP4PParams().Vec())
	s.Sample(100)
	means, sigmas := s.PropertyEstimates()
	exact := NoiseFreeProperties(TIP4PParams())
	sig0 := PropertySigma0(1.0)
	for i := Property(0); i < NumProperties; i++ {
		if math.Abs(sigmas[i]-sig0[i]/10) > 1e-9 {
			t.Errorf("%v sigma = %v, want %v", i, sigmas[i], sig0[i]/10)
		}
		if math.Abs(means[i]-exact[i]) > 6*sigmas[i] {
			t.Errorf("%v estimate %v too far from %v", i, means[i], exact[i])
		}
	}
}

func TestCostSigma0Positive(t *testing.T) {
	s := CostSigma0(TIP4PParams().Vec(), 1.0)
	if s <= 0 {
		t.Fatalf("CostSigma0 = %v", s)
	}
	if s2 := CostSigma0(TIP4PParams().Vec(), 2.0); s2 <= s {
		t.Fatalf("CostSigma0 not increasing in noise factor: %v vs %v", s2, s)
	}
}

func TestModelRDFRespondsToParameters(t *testing.T) {
	// Larger sigma must shift the gOO first peak outward.
	peakPos := func(theta Params) float64 {
		best, bestG := 0.0, 0.0
		for r := 2.0; r < 3.6; r += 0.01 {
			if g := ModelRDF(PropGOO, theta, r); g > bestG {
				best, bestG = r, g
			}
		}
		return best
	}
	small := rdfAnchor
	small.Sigma -= 0.1
	large := rdfAnchor
	large.Sigma += 0.1
	if peakPos(large) <= peakPos(small) {
		t.Fatal("gOO peak did not shift outward with sigma")
	}
	// Stronger charge must increase structuring (higher first peak).
	weak := rdfAnchor
	weak.QH -= 0.03
	strong := rdfAnchor
	strong.QH += 0.03
	peakHeight := func(theta Params) float64 {
		best := 0.0
		for r := 2.0; r < 3.6; r += 0.01 {
			if g := ModelRDF(PropGOO, theta, r); g > best {
				best = g
			}
		}
		return best
	}
	if peakHeight(strong) <= peakHeight(weak) {
		t.Fatal("gOO structuring did not grow with charge")
	}
}

func TestRDFCurveSampling(t *testing.T) {
	rs, gs := RDFCurve(PropGOO, nil, 2, 8, 61)
	if len(rs) != 61 || len(gs) != 61 {
		t.Fatal("wrong sample count")
	}
	if rs[0] != 2 || rs[60] != 8 {
		t.Fatalf("range = [%v, %v]", rs[0], rs[60])
	}
	// Experimental gOO: pronounced first peak above 2, decays toward ~1.
	maxG := 0.0
	for _, g := range gs {
		if g > maxG {
			maxG = g
		}
	}
	if maxG < 2.0 || maxG > 3.5 {
		t.Fatalf("experimental gOO peak = %v", maxG)
	}
	if math.Abs(gs[60]-1) > 0.3 {
		t.Fatalf("gOO(8 A) = %v, want ~1", gs[60])
	}
}

func TestExperimentalRDFPanicsOnThermoProperty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ExperimentalRDF(PropU, 3.0)
}

// Full pipeline: the real MD engine must produce properties in the right
// regime for TIP4P water (strongly negative U, liquid-like diffusion,
// positive RDF residuals). Short run, so tolerances are loose.
func TestRealPropertiesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("MD evaluation is slow")
	}
	props, err := RealProperties(TIP4PParams(), MDConfig{
		N: 27, EquilSteps: 200, ProdSteps: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if props[PropU] > -15 || props[PropU] < -90 {
		t.Errorf("MD U = %v kJ/mol implausible", props[PropU])
	}
	if props[PropD] < 0 || props[PropD] > 1e-3 {
		t.Errorf("MD D = %v implausible", props[PropD])
	}
	for _, p := range []Property{PropGOO, PropGOH, PropGHH} {
		if props[p] < 0 || props[p] > 2 {
			t.Errorf("MD %v residual = %v implausible", p, props[p])
		}
	}
	if c := Cost(props); c <= 0 || math.IsNaN(c) {
		t.Errorf("MD cost = %v", c)
	}
}

// Determinism: identical seeds give identical surrogate sampling paths.
func TestSurrogateDeterminism(t *testing.T) {
	run := func() float64 {
		s := NewSurrogate(1.0, 11)
		s.Start([]float64{0.15, 3.15, 0.52})
		for i := 0; i < 10; i++ {
			s.Sample(0.5)
		}
		m, _, _ := s.Report()
		return m
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

// The rng fields must be independent across evaluators.
func TestSurrogateIndependentStreams(t *testing.T) {
	a := NewSurrogate(1.0, 1)
	b := NewSurrogate(1.0, 2)
	a.Start(TIP4PParams().Vec())
	b.Start(TIP4PParams().Vec())
	a.Sample(1)
	b.Sample(1)
	ma, _, _ := a.Report()
	mb, _, _ := b.Report()
	if ma == mb {
		t.Fatal("different seeds produced identical noise")
	}
}
