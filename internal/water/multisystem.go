package water

import (
	"fmt"
	"math/rand"

	"repro/internal/mw"
	"repro/internal/noise"
)

// The multi-system split of the application study: the paper's vertex
// servers coordinate Ns distinct simulations per parameter set ("separate
// simulations may be needed to evaluate the room-temperature energy, the
// isothermal compressibility, and the high-temperature properties"). Here
// the six cost-function properties are partitioned across three simulation
// systems:
//
//	system 0 — thermodynamics (U, P)
//	system 1 — structure (gOO, gOH, gHH)
//	system 2 — dynamics (D)
//
// Each client evaluates only its own properties and reports its partial
// eq-3.4 cost multiplied by NumSystems; the vertex server's mean-of-means
// aggregation then reconstructs the full cost exactly:
//
//	(1/Ns) * sum_c (Ns * partial_c) = sum_c partial_c = cost.
//
// Variances aggregate consistently: Var(mean) = (1/Ns^2) sum Var(Ns *
// partial_c) = sum Var(partial_c).

// NumSystems is the number of simulation systems per vertex in the
// multi-system deployment.
const NumSystems = 3

// systemProperties maps each system index to its property subset.
var systemProperties = [NumSystems][]Property{
	{PropU, PropP},
	{PropGOO, PropGOH, PropGHH},
	{PropD},
}

// PartialSurrogate evaluates one system's property subset with the same
// surrogate surfaces and noise law as the full Surrogate. It implements
// mw.SystemEvaluator; run NumSystems of them under one vertex server.
type PartialSurrogate struct {
	// System selects the property subset (0..NumSystems-1).
	System int
	// NoiseFactor scales the property sigma0s.
	NoiseFactor float64
	// Rng drives the sampling noise.
	Rng *rand.Rand

	accs map[Property]*noise.Accumulator
}

var _ mw.SystemEvaluator = (*PartialSurrogate)(nil)

// NewPartialSurrogate builds the evaluator for one system of the split.
func NewPartialSurrogate(system int, noiseFactor float64, seed int64) *PartialSurrogate {
	if system < 0 || system >= NumSystems {
		panic(fmt.Sprintf("water: system %d out of range [0,%d)", system, NumSystems))
	}
	return &PartialSurrogate{
		System:      system,
		NoiseFactor: noiseFactor,
		Rng:         rand.New(rand.NewSource(seed)),
	}
}

// Start implements mw.SystemEvaluator.
func (p *PartialSurrogate) Start(x []float64) {
	theta := FromVec(x)
	props := NoiseFreeProperties(theta)
	sigmas := PropertySigma0(p.NoiseFactor)
	p.accs = make(map[Property]*noise.Accumulator, len(systemProperties[p.System]))
	for _, prop := range systemProperties[p.System] {
		p.accs[prop] = noise.NewAccumulator(props[prop], sigmas[prop])
	}
}

// Sample implements mw.SystemEvaluator.
func (p *PartialSurrogate) Sample(dt float64) {
	for _, acc := range p.accs {
		acc.Sample(dt, p.Rng)
	}
}

// Report implements mw.SystemEvaluator: the observable is NumSystems times
// this system's partial cost, so the server's average reconstructs the full
// eq-3.4 cost.
func (p *PartialSurrogate) Report() (mean, variance, t float64) {
	for _, prop := range systemProperties[p.System] {
		acc := p.accs[prop]
		r := (acc.Mean() - Targets[prop]) / Scales[prop]
		w2 := Weights[prop] * Weights[prop]
		mean += w2 * r * r
		// Propagate: d(partial)/dp = 2 w^2 (p - p0)/s^2.
		g := 2 * w2 * (acc.Mean() - Targets[prop]) / (Scales[prop] * Scales[prop])
		variance += g * g * acc.Sigma() * acc.Sigma()
		t = acc.Time()
	}
	return NumSystems * mean, NumSystems * NumSystems * variance, t
}

// Stop implements mw.SystemEvaluator.
func (p *PartialSurrogate) Stop() { p.accs = nil }

// PartialCostNoiseFree returns one system's exact partial cost contribution;
// the three partials sum to NoiseFreeCost.
func PartialCostNoiseFree(system int, theta Params) float64 {
	props := NoiseFreeProperties(theta)
	sum := 0.0
	for _, prop := range systemProperties[system] {
		r := (props[prop] - Targets[prop]) / Scales[prop]
		sum += Weights[prop] * Weights[prop] * r * r
	}
	return sum
}
