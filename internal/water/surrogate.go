package water

import (
	"math"
	"math/rand"

	"repro/internal/mw"
	"repro/internal/noise"
)

// Thermodynamic anchors. thetaStar is where the surrogate cost is near its
// minimum (the "slightly better than TIP4P" optimum the paper converges to);
// at published TIP4P parameters the surfaces reproduce the TIP4P column of
// the paper's property table: U = -41.8 kJ/mol, P = 373 atm, D = 3.29e-5
// cm^2/s.
var (
	thetaStar = Params{Epsilon: 0.1500, Sigma: 3.158, QH: 0.5225}

	// Property values at thetaStar and at TIP4P.
	uOpt, uTIP4P = -41.70, -41.80
	pOpt, pTIP4P = 250.0, 373.0
	dOpt, dTIP4P = 3.00e-5, 3.29e-5
)

// paramScales normalizes parameter deviations: a "unit" move is 0.02
// kcal/mol in epsilon, 0.05 A in sigma, 0.01 e in qH (the sensitivity ratios
// implied by the spread of the paper's final parameter tables).
var paramScales = Params{Epsilon: 0.02, Sigma: 0.05, QH: 0.01}

// quadraticBowl returns ||(theta-center)/scales||^2 normalized so that the
// published TIP4P point evaluates to 1.
func quadraticBowl(theta, center Params) float64 {
	norm := func(p Params) float64 {
		de := (p.Epsilon - center.Epsilon) / paramScales.Epsilon
		ds := (p.Sigma - center.Sigma) / paramScales.Sigma
		dq := (p.QH - center.QH) / paramScales.QH
		return de*de + ds*ds + dq*dq
	}
	ref := norm(TIP4PParams())
	if ref == 0 {
		return 0
	}
	return norm(theta) / ref
}

// NoiseFreeProperties evaluates the surrogate property surfaces (no sampling
// noise): the three thermodynamic surfaces are anchored quadratics, the three
// RDF residuals come from the parametric curve model of rdfmodel.go.
func NoiseFreeProperties(theta Params) [NumProperties]float64 {
	var p [NumProperties]float64
	p[PropU] = uOpt + (uTIP4P-uOpt)*quadraticBowl(theta, Params{
		Epsilon: thetaStar.Epsilon, Sigma: thetaStar.Sigma, QH: thetaStar.QH + 0.001})
	p[PropP] = pOpt + (pTIP4P-pOpt)*quadraticBowl(theta, Params{
		Epsilon: thetaStar.Epsilon + 0.002, Sigma: thetaStar.Sigma, QH: thetaStar.QH})
	p[PropD] = dOpt + (dTIP4P-dOpt)*quadraticBowl(theta, Params{
		Epsilon: thetaStar.Epsilon, Sigma: thetaStar.Sigma - 0.002, QH: thetaStar.QH})
	p[PropGOO] = RDFResidual(PropGOO, theta)
	p[PropGOH] = RDFResidual(PropGOH, theta)
	p[PropGHH] = RDFResidual(PropGHH, theta)
	return p
}

// PropertySigma0 returns the inherent sampling-noise strength sigma0 of each
// property estimate (eq 1.2), scaled by the global noise factor. The ratios
// mirror the error bars of the paper's property table: pressure is by far
// the noisiest observable, the RDF residuals the quietest.
func PropertySigma0(noiseFactor float64) [NumProperties]float64 {
	return [NumProperties]float64{
		PropD:   0.4e-5 * noiseFactor,
		PropGHH: 0.010 * noiseFactor,
		PropGOH: 0.010 * noiseFactor,
		PropGOO: 0.012 * noiseFactor,
		PropP:   90 * noiseFactor,
		PropU:   0.25 * noiseFactor,
	}
}

// Surrogate is the fast property engine: noisy property estimates plus the
// eq 3.4 cost, usable directly or as an mw.SystemEvaluator.
type Surrogate struct {
	// NoiseFactor scales every property's sigma0; zero means noiseless.
	NoiseFactor float64
	// Rng drives the sampling noise.
	Rng *rand.Rand

	theta Params
	accs  [NumProperties]*noise.Accumulator
}

var _ mw.SystemEvaluator = (*Surrogate)(nil)

// NewSurrogate builds a surrogate evaluator with its own noise stream.
func NewSurrogate(noiseFactor float64, seed int64) *Surrogate {
	return &Surrogate{NoiseFactor: noiseFactor, Rng: rand.New(rand.NewSource(seed))}
}

// Start implements mw.SystemEvaluator.
func (s *Surrogate) Start(x []float64) {
	s.theta = FromVec(x)
	props := NoiseFreeProperties(s.theta)
	sigmas := PropertySigma0(s.NoiseFactor)
	for i := Property(0); i < NumProperties; i++ {
		s.accs[i] = noise.NewAccumulator(props[i], sigmas[i])
	}
}

// Sample implements mw.SystemEvaluator: every property's simulation advances
// by dt concurrently (they are separate sampling calculations under one
// vertex, exactly the Ns-systems structure of the paper).
func (s *Surrogate) Sample(dt float64) {
	for i := Property(0); i < NumProperties; i++ {
		s.accs[i].Sample(dt, s.Rng)
	}
}

// PropertyEstimates returns the current noisy property means and their
// standard deviations.
func (s *Surrogate) PropertyEstimates() (means, sigmas [NumProperties]float64) {
	for i := Property(0); i < NumProperties; i++ {
		means[i] = s.accs[i].Mean()
		sigmas[i] = s.accs[i].Sigma()
	}
	return means, sigmas
}

// Report implements mw.SystemEvaluator: the observable is the eq 3.4 cost
// computed from the current noisy property estimates, with its variance
// propagated through the cost gradient.
func (s *Surrogate) Report() (mean, variance, t float64) {
	means, sigmas := s.PropertyEstimates()
	mean = Cost(means)
	for i := Property(0); i < NumProperties; i++ {
		g := costGradient(means, i)
		variance += g * g * sigmas[i] * sigmas[i]
	}
	return mean, variance, s.accs[PropU].Time()
}

// Stop implements mw.SystemEvaluator.
func (s *Surrogate) Stop() {
	for i := range s.accs {
		s.accs[i] = nil
	}
}

// NoiseFreeCost evaluates the exact surrogate cost surface, used by
// harnesses for the R performance measure and by the noiseless sanity tests.
func NoiseFreeCost(x []float64) float64 {
	props := NoiseFreeProperties(FromVec(x))
	return Cost(props)
}

// CostSigma0 approximates the sampling-noise strength of the cost estimate
// at x for the given noise factor, via gradient propagation of the
// per-property sigma0s. It lets the plain sim.LocalSpace backend stand in
// for the full property pipeline in cheap experiments.
func CostSigma0(x []float64, noiseFactor float64) float64 {
	props := NoiseFreeProperties(FromVec(x))
	sigmas := PropertySigma0(noiseFactor)
	v := 0.0
	for i := Property(0); i < NumProperties; i++ {
		g := costGradient(props, i)
		v += g * g * sigmas[i] * sigmas[i]
	}
	return math.Sqrt(v)
}
