package water

import (
	"math"
	"testing"

	"repro/internal/mw"
)

func TestPartialsSumToFullCost(t *testing.T) {
	for _, theta := range []Params{TIP4PParams(), {0.2, 3.0, 0.54}, thetaStar} {
		sum := 0.0
		for sys := 0; sys < NumSystems; sys++ {
			sum += PartialCostNoiseFree(sys, theta)
		}
		if full := NoiseFreeCost(theta.Vec()); math.Abs(sum-full) > 1e-12*(1+full) {
			t.Errorf("theta %+v: partials sum %v != full %v", theta, sum, full)
		}
	}
}

func TestPartialSurrogateNoiselessReport(t *testing.T) {
	theta := TIP4PParams()
	total := 0.0
	for sys := 0; sys < NumSystems; sys++ {
		p := NewPartialSurrogate(sys, 0, int64(sys))
		p.Start(theta.Vec())
		p.Sample(1)
		mean, variance, _ := p.Report()
		if variance != 0 {
			t.Fatalf("system %d noiseless variance = %v", sys, variance)
		}
		total += mean / NumSystems
	}
	if full := NoiseFreeCost(theta.Vec()); math.Abs(total-full) > 1e-12 {
		t.Fatalf("aggregated %v != full %v", total, full)
	}
}

func TestPartialSurrogateRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPartialSurrogate(NumSystems, 1, 1)
}

// Through the genuine vertex pipeline with Ns = NumSystems clients, the
// aggregated noiseless estimate must equal the full cost exactly — the exact
// structure of the paper's water deployment.
func TestMultiSystemVertexAggregation(t *testing.T) {
	vw, err := mw.NewVertexWorker(mw.VertexWorkerConfig{
		Ns: NumSystems,
		NewSystem: func(sys int) mw.SystemEvaluator {
			return NewPartialSurrogate(sys, 0, int64(100+sys))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vw.Close()

	theta := Params{0.17, 3.2, 0.53}
	if err := vw.Execute(mw.NewStartOp(theta.Vec())); err != nil {
		t.Fatal(err)
	}
	samp := mw.NewSampleOp(2)
	if err := vw.Execute(samp); err != nil {
		t.Fatal(err)
	}
	want := NoiseFreeCost(theta.Vec())
	if math.Abs(samp.Mean-want) > 1e-9*(1+want) {
		t.Fatalf("vertex-aggregated cost %v, want %v", samp.Mean, want)
	}
	if samp.Variance != 0 {
		t.Fatalf("noiseless aggregated variance = %v", samp.Variance)
	}
}

// With noise, the multi-system estimate must converge to the full cost and
// its reported variance must shrink with sampling.
func TestMultiSystemVertexNoisyConvergence(t *testing.T) {
	vw, err := mw.NewVertexWorker(mw.VertexWorkerConfig{
		Ns: NumSystems,
		NewSystem: func(sys int) mw.SystemEvaluator {
			return NewPartialSurrogate(sys, 1.0, int64(200+sys))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vw.Close()

	theta := TIP4PParams()
	if err := vw.Execute(mw.NewStartOp(theta.Vec())); err != nil {
		t.Fatal(err)
	}
	s1 := mw.NewSampleOp(1)
	if err := vw.Execute(s1); err != nil {
		t.Fatal(err)
	}
	s2 := mw.NewSampleOp(400)
	if err := vw.Execute(s2); err != nil {
		t.Fatal(err)
	}
	if s2.Variance >= s1.Variance {
		t.Fatalf("variance did not shrink: %v -> %v", s1.Variance, s2.Variance)
	}
	want := NoiseFreeCost(theta.Vec())
	if math.Abs(s2.Mean-want) > 6*math.Sqrt(s2.Variance)+0.05 {
		t.Fatalf("converged estimate %v too far from %v", s2.Mean, want)
	}
}
