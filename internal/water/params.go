// Package water implements the paper's application study (section 3.5): the
// automated reparameterization of the TIP4P water model. The optimizer
// varies three force-field parameters theta = (epsilonOO, sigmaOO, qH) and
// minimizes the weighted sum of squared property residuals of eq 3.4 over
// six properties: the self-diffusion coefficient D, the gHH/gOH/gOO radial
// distribution residuals (eq 3.5), the average pressure P and the average
// internal energy U.
//
// Two property engines are provided:
//
//   - Surrogate: calibrated smooth response surfaces anchored at the
//     published TIP4P values and at a slightly-better optimum, observed
//     through the eq 1.2 sampling-noise model. This engine preserves the
//     pipeline (noisy properties -> cost -> simplex decisions) and the
//     location/shape of the minimum while being fast enough for the repeated
//     optimizations of Tables 3.4-3.5 and Figs 3.19-3.20. The RDF residual
//     properties are genuinely computed from a parametric g(r) curve model,
//     so the table values and the figure curves are mutually consistent.
//   - The md engine (RealProperties): a genuine rigid-TIP4P molecular
//     dynamics simulation via internal/md, demonstrating the full paper
//     pipeline at laptop scale (cmd/waterfit -md-only / -validate-md).
package water

import "fmt"

// Params is the optimized parameter set theta = (epsilon, sigma, qH) of
// Figure 3.19.
type Params struct {
	// Epsilon is the O-O Lennard-Jones well depth (kcal/mol).
	Epsilon float64
	// Sigma is the O-O Lennard-Jones diameter (angstrom).
	Sigma float64
	// QH is the hydrogen partial charge (e).
	QH float64
}

// TIP4PParams returns the published TIP4P parameterization (Jorgensen 1983),
// the benchmark of section 3.5.
func TIP4PParams() Params {
	return Params{Epsilon: 0.1550, Sigma: 3.154, QH: 0.520}
}

// Vec flattens the parameters into the optimizer's coordinate order.
func (p Params) Vec() []float64 { return []float64{p.Epsilon, p.Sigma, p.QH} }

// FromVec rebuilds Params from optimizer coordinates.
func FromVec(x []float64) Params {
	if len(x) != 3 {
		panic(fmt.Sprintf("water: parameter vector has %d components, want 3", len(x)))
	}
	return Params{Epsilon: x[0], Sigma: x[1], QH: x[2]}
}

// String implements fmt.Stringer in the paper's reporting style.
func (p Params) String() string {
	return fmt.Sprintf("eps=%.4f kcal/mol, sigma=%.4f A, qH=%.4f e", p.Epsilon, p.Sigma, p.QH)
}

// Property indexes the six cost-function properties in the order of the
// paper's property table: D, gHH, gOH, gOO, P, E.
type Property int

// The six properties of eq 3.4.
const (
	PropD Property = iota
	PropGHH
	PropGOH
	PropGOO
	PropP
	PropU
	NumProperties
)

// String implements fmt.Stringer.
func (p Property) String() string {
	switch p {
	case PropD:
		return "D"
	case PropGHH:
		return "gHH"
	case PropGOH:
		return "gOH"
	case PropGOO:
		return "gOO"
	case PropP:
		return "P"
	case PropU:
		return "E"
	default:
		return fmt.Sprintf("Property(%d)", int(p))
	}
}

// Units returns the reporting unit of the property.
func (p Property) Units() string {
	switch p {
	case PropD:
		return "cm^2/s"
	case PropP:
		return "atm"
	case PropU:
		return "kJ/mol"
	default:
		return "" // RDF residuals are dimensionless
	}
}
