package water

// Experimental target values p0 of eq 3.4, as cited in the paper (Soper
// 2000; Mahoney & Jorgensen 2000; Eisenberg & Kauzmann 1969): U = -41.5
// kJ/mol, P = 1 atm at the experimental density, D = 2.27e-5 cm^2/s, and
// zero for the RDF residuals (a perfect fit to the experimental curves).
var Targets = [NumProperties]float64{
	PropD:   2.27e-5,
	PropGHH: 0,
	PropGOH: 0,
	PropGOO: 0,
	PropP:   1,
	PropU:   -41.5,
}

// Scales normalizes each residual. Eq 3.4 divides by (p0)^2, which is
// undefined for the zero-target RDF residuals and dominated by the tiny
// 1-atm pressure target; the paper notes the weights were "chosen
// subjectively to balance the level of error in each property", which is
// exactly what these per-property scales implement.
var Scales = [NumProperties]float64{
	PropD:   2.27e-5,
	PropGHH: 0.10,
	PropGOH: 0.10,
	PropGOO: 0.10,
	PropP:   373, // the TIP4P-scale pressure deviation
	PropU:   41.5,
}

// Weights are the w_i of eq 3.4.
var Weights = [NumProperties]float64{
	PropD:   1.0,
	PropGHH: 0.7,
	PropGOH: 0.7,
	PropGOO: 1.0,
	PropP:   0.3,
	PropU:   1.0,
}

// Cost evaluates eq 3.4 on a property vector:
// g = sum_i w_i^2 (p_i - p0_i)^2 / s_i^2.
func Cost(props [NumProperties]float64) float64 {
	g := 0.0
	for i := Property(0); i < NumProperties; i++ {
		r := (props[i] - Targets[i]) / Scales[i]
		g += Weights[i] * Weights[i] * r * r
	}
	return g
}

// costGradient returns d cost / d p_i at the given property vector.
func costGradient(props [NumProperties]float64, i Property) float64 {
	return 2 * Weights[i] * Weights[i] * (props[i] - Targets[i]) / (Scales[i] * Scales[i])
}
