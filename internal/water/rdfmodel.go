package water

import "math"

// The parametric radial-distribution model behind Figures 3.19-3.20 and the
// gOO/gOH/gHH residual properties. Each g(r) is an excluded-core sigmoid
// times (1 + sum of Gaussian peaks/troughs); the peak geometry responds to
// the force-field parameters the way liquid-water structure does: sigma sets
// the first-shell position, epsilon and qH set the structuring (peak
// heights), with qH additionally controlling the hydrogen-bond peaks of gOH
// and gHH.
//
// Calibration anchors: at thetaStar (see surrogate.go) the model curves
// coincide with the "experimental" curves (digitized peak parameters from
// Soper 2000 as cited by the paper), so the RDF residuals of eq 3.5 vanish
// there; at the published TIP4P parameters the curves show TIP4P's
// well-known slight over-structuring, giving the small nonzero residuals of
// the paper's property table.

// gaussPeak is one Gaussian feature of a g(r) curve.
type gaussPeak struct {
	pos, height, width float64
}

// rdfShape is a parametric pair-correlation curve.
type rdfShape struct {
	core  float64 // excluded-core radius (sigmoid midpoint)
	steep float64 // core turn-on steepness
	peaks []gaussPeak
}

func (s rdfShape) eval(r float64) float64 {
	g := 1.0
	for _, p := range s.peaks {
		d := (r - p.pos) / p.width
		g += p.height * math.Exp(-0.5*d*d)
	}
	turnOn := 1 / (1 + math.Exp(-s.steep*(r-s.core)))
	return g * turnOn
}

// experimentalGOO models the Soper (2000) oxygen-oxygen curve: first peak at
// 2.73 A of height ~2.75, first minimum at 3.45, second shell at 4.5.
var experimentalGOO = rdfShape{
	core:  2.45,
	steep: 14,
	peaks: []gaussPeak{
		{pos: 2.73, height: 1.95, width: 0.18},
		{pos: 3.45, height: -0.35, width: 0.45},
		{pos: 4.50, height: 0.25, width: 0.50},
	},
}

// experimentalGOH: intramolecular peaks excluded; hydrogen-bond peak at
// 1.85 A, second peak at 3.3 A.
var experimentalGOH = rdfShape{
	core:  1.55,
	steep: 16,
	peaks: []gaussPeak{
		{pos: 1.85, height: 0.60, width: 0.16},
		{pos: 3.30, height: 0.45, width: 0.40},
	},
}

// experimentalGHH: first intermolecular peak at 2.35 A, second at 3.8 A.
var experimentalGHH = rdfShape{
	core:  1.95,
	steep: 16,
	peaks: []gaussPeak{
		{pos: 2.35, height: 0.35, width: 0.22},
		{pos: 3.80, height: 0.25, width: 0.45},
	},
}

// ExperimentalRDF evaluates the experimental reference curve for the pair.
func ExperimentalRDF(pair Property, r float64) float64 {
	switch pair {
	case PropGOO:
		return experimentalGOO.eval(r)
	case PropGOH:
		return experimentalGOH.eval(r)
	case PropGHH:
		return experimentalGHH.eval(r)
	default:
		panic("water: ExperimentalRDF on non-RDF property")
	}
}

// rdfAnchor is the parameter point at which each model curve matches
// experiment exactly. The slight offsets from published TIP4P reproduce the
// paper's finding that the optimized models fit the experimental g(r)
// slightly better than TIP4P does.
var rdfAnchor = Params{Epsilon: 0.1500, Sigma: 3.158, QH: 0.5225}

// ModelRDF evaluates the parametric model curve for the pair at parameters
// theta. Structure responds to the parameters:
//   - sigma shifts the gOO first shell (d pos/d sigma ~ 0.85) and the core;
//   - epsilon and qH deepen the structuring (peak heights);
//   - qH shifts and sharpens the hydrogen-bond peaks of gOH/gHH.
func ModelRDF(pair Property, theta Params, r float64) float64 {
	dSig := theta.Sigma - rdfAnchor.Sigma
	dEps := theta.Epsilon - rdfAnchor.Epsilon
	dQ := theta.QH - rdfAnchor.QH
	// Structuring factor: over-bound water (larger eps, larger |q|) raises
	// first-shell peaks and deepens minima.
	structure := 1 + 3.5*dEps + 4.0*dQ

	var base rdfShape
	var posShift float64
	switch pair {
	case PropGOO:
		base = experimentalGOO
		posShift = 0.85 * dSig
	case PropGOH:
		base = experimentalGOH
		posShift = 0.45*dSig - 0.9*dQ
	case PropGHH:
		base = experimentalGHH
		posShift = 0.45*dSig - 0.6*dQ
	default:
		panic("water: ModelRDF on non-RDF property")
	}
	shape := rdfShape{core: base.core + posShift, steep: base.steep}
	shape.peaks = make([]gaussPeak, len(base.peaks))
	for i, p := range base.peaks {
		shape.peaks[i] = gaussPeak{
			pos:    p.pos + posShift,
			height: p.height * structure,
			width:  p.width,
		}
	}
	return shape.eval(r)
}

// RDF residual integration window (eq 3.5), matching the range over which
// the paper's Figure 3.19 compares curves.
const (
	rdfRMin = 2.0
	rdfRMax = 8.0
	rdfStep = 0.05
)

// RDFResidual computes the eq 3.5 root-mean-square deviation between the
// model curve at theta and the experimental curve.
func RDFResidual(pair Property, theta Params) float64 {
	sum, n := 0.0, 0
	for r := rdfRMin; r <= rdfRMax; r += rdfStep {
		d := ModelRDF(pair, theta, r) - ExperimentalRDF(pair, r)
		sum += d * d
		n++
	}
	return math.Sqrt(sum / float64(n))
}

// RDFCurve samples a model or experimental curve on [rmin, rmax] for the
// figures. A nil theta selects the experimental curve.
func RDFCurve(pair Property, theta *Params, rmin, rmax float64, n int) (rs, gs []float64) {
	rs = make([]float64, n)
	gs = make([]float64, n)
	for i := 0; i < n; i++ {
		r := rmin + (rmax-rmin)*float64(i)/float64(n-1)
		rs[i] = r
		if theta == nil {
			gs[i] = ExperimentalRDF(pair, r)
		} else {
			gs[i] = ModelRDF(pair, *theta, r)
		}
	}
	return rs, gs
}
