package water

import (
	"fmt"

	"repro/internal/md"
)

// MDConfig sizes a real molecular-dynamics property evaluation.
type MDConfig struct {
	// N is the number of water molecules (perfect cube; 0 selects 64).
	N int
	// EquilSteps / ProdSteps size the two phases (0 selects 300/500).
	EquilSteps, ProdSteps int
	// Dt is the timestep in fs (0 selects 1.0).
	Dt float64
	// Seed seeds the initial configuration and velocities.
	Seed int64
}

// RealProperties evaluates the six cost-function properties with a genuine
// rigid-TIP4P molecular dynamics run (NVT equilibration + NVE production),
// the engine behind cmd/waterfit -md-only. The RDF residuals compare the
// measured curves against the parametric experimental references on the
// paper's eq 3.5 window.
func RealProperties(theta Params, cfg MDConfig) ([NumProperties]float64, error) {
	var out [NumProperties]float64
	if cfg.N == 0 {
		cfg.N = 64
	}
	if cfg.EquilSteps == 0 {
		cfg.EquilSteps = 300
	}
	if cfg.ProdSteps == 0 {
		cfg.ProdSteps = 500
	}
	if cfg.Dt == 0 {
		cfg.Dt = 1.0
	}

	model := md.TIP4P()
	model.EpsilonOO = theta.Epsilon
	model.SigmaOO = theta.Sigma
	model.QH = theta.QH

	sys, err := md.NewSystem(md.Config{N: cfg.N, Model: model, Seed: cfg.Seed})
	if err != nil {
		return out, fmt.Errorf("water: building MD system: %w", err)
	}
	props, err := sys.Run(md.RunConfig{
		Dt:         cfg.Dt,
		EquilSteps: cfg.EquilSteps,
		ProdSteps:  cfg.ProdSteps,
	})
	if err != nil {
		return out, fmt.Errorf("water: MD run: %w", err)
	}

	out[PropU] = props.EnergyKJPerMol
	out[PropP] = props.PressureAtm
	out[PropD] = props.DiffusionCm2PerS
	out[PropGOO] = mdRDFResidual(props.GOO, PropGOO)
	out[PropGOH] = mdRDFResidual(props.GOH, PropGOH)
	out[PropGHH] = mdRDFResidual(props.GHH, PropGHH)
	return out, nil
}

// mdRDFResidual evaluates eq 3.5 between a measured RDF and the experimental
// reference curve, over the overlap of the measurement range and the paper's
// integration window.
func mdRDFResidual(rdf *md.RDF, pair Property) float64 {
	rs, _ := rdf.Curve()
	ref := make([]float64, len(rs))
	for i, r := range rs {
		ref[i] = ExperimentalRDF(pair, r)
	}
	rmax := rdfRMax
	if rs[len(rs)-1] < rmax {
		rmax = rs[len(rs)-1]
	}
	return rdf.RMSDeviation(ref, rdfRMin, rmax)
}
