package water

import "testing"

func BenchmarkSurrogateSample(b *testing.B) {
	s := NewSurrogate(1.0, 1)
	s.Start(TIP4PParams().Vec())
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sample(1)
		if _, _, t := s.Report(); t == 0 {
			b.Fatal("no time accrued")
		}
	}
}

func BenchmarkNoiseFreeProperties(b *testing.B) {
	theta := TIP4PParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		props := NoiseFreeProperties(theta)
		if props[PropU] >= 0 {
			b.Fatal("bad U")
		}
	}
}

func BenchmarkRDFResidual(b *testing.B) {
	theta := TIP4PParams()
	for i := 0; i < b.N; i++ {
		if RDFResidual(PropGOO, theta) < 0 {
			b.Fatal("negative residual")
		}
	}
}

// BenchmarkMDEvaluation is the real-engine cost reference: one tiny MD
// property evaluation (the quantity the surrogate replaces in the repeated
// optimization studies).
func BenchmarkMDEvaluation(b *testing.B) {
	if testing.Short() {
		b.Skip("MD evaluation is slow")
	}
	for i := 0; i < b.N; i++ {
		props, err := RealProperties(TIP4PParams(), MDConfig{
			N: 8, EquilSteps: 20, ProdSteps: 30, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		if props[PropU] >= 0 {
			b.Fatal("bad MD energy")
		}
	}
}
