// Package jobstore defines the durable job store behind the jobs manager:
// a pluggable keyed record store that survives process death, so any optd
// replica can recover any job from it (the deterministic seed/draw model
// makes a recovered run bitwise-identical to the uninterrupted one).
//
// A record is an opaque payload keyed by job ID — the jobs package stores
// its self-contained checkpoint document (spec + optimizer snapshot) there
// and never tells the store what is inside. Two implementations ship:
//
//   - FileStore: one file per job written with atomic write-then-rename
//     (the layout the manager used before the interface existed, so a
//     pre-existing checkpoint directory recovers unchanged);
//   - WALStore: a single append-only write-ahead log with fsynced,
//     CRC-guarded records and background-free compaction — one fsync per
//     durable update instead of a file create+rename, and group commit
//     under concurrent writers.
//
// Both implementations satisfy the same conformance contract, enforced by
// the shared storetest suite (storetest.Run) covering round-trips,
// partial-write truncation, concurrent writers and crash-point enumeration
// at every record boundary.
package jobstore

import "fmt"

// Record is one durable job record: an opaque payload keyed by job ID.
type Record struct {
	// ID is the job ID the record is keyed by.
	ID string
	// Payload is the opaque document the jobs layer stored.
	Payload []byte
}

// Store persists job records durably. Implementations must be safe for
// concurrent use and must make Put durable (on stable storage) before
// returning.
type Store interface {
	// Put durably replaces the record for id.
	Put(id string, payload []byte) error
	// Delete durably removes the record for id. Deleting an absent id is
	// not an error.
	Delete(id string) error
	// List returns every live record sorted by ID. Implementations may
	// return the readable records alongside the first read error, so one
	// damaged record does not block recovery of the rest.
	List() ([]Record, error)
	// Kind names the implementation ("file", "wal") for status surfaces.
	Kind() string
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// maxIDLen bounds record IDs: IDs become file names (FileStore) and
// length-prefixed wire fields (WALStore).
const maxIDLen = 128

// ValidID reports whether id is storable: non-empty, at most maxIDLen
// bytes, only [A-Za-z0-9._-], and not starting with a dot (IDs are file
// names in the FileStore layout).
func ValidID(id string) bool {
	if id == "" || len(id) > maxIDLen || id[0] == '.' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// CheckID returns a descriptive error for an unstorable ID.
func CheckID(id string) error {
	if !ValidID(id) {
		return fmt.Errorf("jobstore: invalid record id %q (want 1-%d chars of [A-Za-z0-9._-], not starting with '.')", id, maxIDLen)
	}
	return nil
}

// Open opens a store of the named kind rooted at dir: "file" (or empty)
// selects the one-file-per-job FileStore, "wal" the append-only WALStore.
// The directory is created if missing.
func Open(kind, dir string) (Store, error) {
	switch kind {
	case "", "file":
		return OpenFile(dir)
	case "wal":
		return OpenWAL(dir)
	default:
		return nil, fmt.Errorf("jobstore: unknown store kind %q (want \"file\" or \"wal\")", kind)
	}
}
