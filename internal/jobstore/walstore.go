package jobstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/fileio"
)

// walFileName is the log file inside the store directory.
const walFileName = "jobs.wal"

// compactFloor is the minimum garbage (bytes superseded by later records)
// before a compaction is worth an extra full-file write.
const compactFloor = 1 << 20 // 1 MiB

// WALStore is the append-only durable store: every Put/Delete appends one
// CRC-guarded record to a single write-ahead log and fsyncs before
// returning. Concurrent writers group-commit — any fsync that covers a
// writer's append satisfies it, so N concurrent Puts pay far fewer than N
// fsyncs. The log self-compacts when superseded bytes outgrow live ones.
//
// Crash safety: appends are fsynced, so the only legal damage is a torn
// or truncated final record; OpenWAL replays up to it, truncates the tail,
// and the store continues from the last durable state — enumerated
// record-boundary crash points are part of the storetest contract.
type WALStore struct {
	dir  string
	path string

	mu         sync.Mutex
	f          *os.File          // guarded by mu
	live       map[string][]byte // guarded by mu
	liveBytes  int               // guarded by mu: encoded size of the live records
	totalBytes int               // guarded by mu: bytes appended since the magic
	buf        []byte            // guarded by mu: reusable encode buffer
	closed     bool              // guarded by mu

	// appendGen counts appends; syncedGen is the latest generation known
	// durable. A writer whose generation is already synced skips its fsync
	// — that is the whole group-commit mechanism.
	appendGen atomic.Uint64
	syncedGen atomic.Uint64

	// syncMu serializes fsyncs (and compaction, which replaces f). Never
	// held together with mu except by compact, which takes syncMu first.
	syncMu sync.Mutex
}

// OpenWAL opens (creating if missing) a WALStore rooted at dir, replaying
// the log and truncating any torn tail a crash left behind.
func OpenWAL(dir string) (*WALStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobstore: wal store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	path := filepath.Join(dir, walFileName)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		data = nil
	} else if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	if len(data) < len(walMagic) && string(data) == walMagic[:len(data)] {
		// Empty, or a crash tore the initial magic write: no record was
		// ever acknowledged, so restart the log from scratch.
		data = nil
	}
	// Replay into locals; the store is published via the composite literal
	// below, before any other goroutine can see it.
	var live map[string][]byte
	totalBytes := 0
	if len(data) == 0 {
		// Fresh (or torn-at-birth) log: write the magic durably.
		if werr := os.WriteFile(path, []byte(walMagic), 0o644); werr != nil {
			return nil, fmt.Errorf("jobstore: %w", werr)
		}
		live = make(map[string][]byte)
	} else {
		if len(data) < len(walMagic) || string(data[:len(walMagic)]) != walMagic {
			return nil, fmt.Errorf("jobstore: %s is not a WAL (bad magic)", path)
		}
		var goodLen int
		live, goodLen, _ = replayWAL(data[len(walMagic):])
		totalBytes = goodLen
		if tail := len(walMagic) + goodLen; tail < len(data) {
			// A torn final append: everything before it is durable state,
			// the tail is the crash artifact the fsync discipline allows.
			if terr := os.Truncate(path, int64(tail)); terr != nil {
				return nil, fmt.Errorf("jobstore: truncating torn WAL tail: %w", terr)
			}
		}
	}
	liveBytes := 0
	for id, payload := range live {
		liveBytes += encodedWALSize(id, payload)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	s := &WALStore{
		dir:        dir,
		path:       path,
		f:          f,
		live:       live,
		liveBytes:  liveBytes,
		totalBytes: totalBytes,
	}
	if garbage := totalBytes - liveBytes; garbage > compactFloor && garbage > liveBytes {
		if err := s.compact(); err != nil {
			f.Close()
			return nil, err
		}
	}
	return s, nil
}

// encodedWALSize is the on-disk footprint of one put record.
func encodedWALSize(id string, payload []byte) int {
	return walHeaderLen + walBodyMin + len(id) + len(payload) + walTrailerLen
}

// garbageLocked is the superseded byte count. Caller holds mu (or has
// exclusive access during Open).
func (s *WALStore) garbageLocked() int { return s.totalBytes - s.liveBytes }

// Dir returns the store's root directory.
func (s *WALStore) Dir() string { return s.dir }

// Kind implements Store.
func (s *WALStore) Kind() string { return "wal" }

// Put implements Store: append one put record, fsync (group-committed),
// and compact if the log has outgrown its live content.
func (s *WALStore) Put(id string, payload []byte) error {
	if len(payload) > maxWALPayload {
		return fmt.Errorf("jobstore: payload of %d bytes exceeds the WAL record cap %d", len(payload), maxWALPayload)
	}
	return s.append(opPut, id, payload)
}

// Delete implements Store: append one delete record and fsync.
func (s *WALStore) Delete(id string) error {
	return s.append(opDelete, id, nil)
}

func (s *WALStore) append(op byte, id string, payload []byte) error {
	if err := CheckID(id); err != nil {
		return err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("jobstore: store is closed")
	}
	s.buf = appendWALRecord(s.buf[:0], op, id, payload)
	if _, err := s.f.Write(s.buf); err != nil {
		s.mu.Unlock()
		return fmt.Errorf("jobstore: %w", err)
	}
	s.totalBytes += len(s.buf)
	if prev, ok := s.live[id]; ok {
		s.liveBytes -= encodedWALSize(id, prev)
	}
	if op == opPut {
		s.live[id] = append([]byte(nil), payload...)
		s.liveBytes += encodedWALSize(id, payload)
	} else {
		delete(s.live, id)
	}
	gen := s.appendGen.Add(1)
	needCompact := s.garbageLocked() > compactFloor && s.garbageLocked() > s.liveBytes
	s.mu.Unlock()

	if err := s.syncTo(gen); err != nil {
		return err
	}
	if needCompact {
		return s.compact()
	}
	return nil
}

// syncTo makes generation gen durable. Writers whose generation an earlier
// fsync already covered return immediately; the one that does fsync covers
// every append that completed before it — group commit.
func (s *WALStore) syncTo(gen uint64) error {
	if s.syncedGen.Load() >= gen {
		return nil
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.syncedGen.Load() >= gen {
		return nil
	}
	// Every append at or below this generation has hit the file (writes
	// happen before appendGen is bumped, both under mu). Snapshot the
	// handle under mu: compact may swap s.f, but only while also holding
	// syncMu, so the snapshot cannot go stale inside this critical section.
	cover := s.appendGen.Load()
	s.mu.Lock()
	f := s.f
	s.mu.Unlock()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	s.syncedGen.Store(cover)
	return nil
}

// compact rewrites the log to exactly the live records (sorted by ID, one
// atomic write-then-rename) and reopens the append handle. Readers of the
// old file see either the old or the new complete log, never a mix.
func (s *WALStore) compact() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("jobstore: store is closed")
	}
	if s.garbageLocked() <= compactFloor/4 {
		return nil // a concurrent compaction already ran
	}
	content := []byte(walMagic)
	for _, id := range s.sortedIDsLocked() {
		content = appendWALRecord(content, opPut, id, s.live[id])
	}
	if err := fileio.WriteAtomic(s.path, content, 0o644); err != nil {
		return err
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: reopening compacted WAL: %w", err)
	}
	s.f.Close()
	s.f = f
	s.totalBytes = len(content) - len(walMagic)
	s.liveBytes = s.totalBytes
	// The compacted file is durable (WriteAtomic fsyncs before renaming),
	// so everything appended so far is covered.
	s.syncedGen.Store(s.appendGen.Load())
	return nil
}

func (s *WALStore) sortedIDsLocked() []string {
	ids := make([]string, 0, len(s.live))
	//optlint:nondeterministic-ok collection is sorted immediately below
	for id := range s.live {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// List implements Store: the live records, sorted by ID. Payloads are
// copies, safe to hold across later store mutations.
func (s *WALStore) List() ([]Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("jobstore: store is closed")
	}
	recs := make([]Record, 0, len(s.live))
	for _, id := range s.sortedIDsLocked() {
		recs = append(recs, Record{ID: id, Payload: append([]byte(nil), s.live[id]...)})
	}
	return recs, nil
}

// Close implements Store.
func (s *WALStore) Close() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.f.Sync()
	if cerr := s.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}
