package jobstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// walOp is one scripted operation for the crash-point tests.
type walOp struct {
	op      byte
	id      string
	payload []byte
}

// crashScript is the op sequence the crash-point enumeration replays: it
// exercises put, overwrite and delete so the state changes at every
// record boundary.
func crashScript() []walOp {
	return []walOp{
		{opPut, "j000001", []byte("spec-only")},
		{opPut, "j000002", []byte("another job")},
		{opPut, "j000001", []byte("now with a snapshot attached")},
		{opDelete, "j000002", nil},
		{opPut, "j000003", bytes.Repeat([]byte("x"), 300)},
		{opDelete, "j000001", nil},
		{opPut, "j000002", []byte("resubmitted")},
	}
}

// applyScript returns the live state after the first n ops.
func applyScript(ops []walOp, n int) map[string][]byte {
	state := map[string][]byte{}
	for _, o := range ops[:n] {
		if o.op == opPut {
			state[o.id] = o.payload
		} else {
			delete(state, o.id)
		}
	}
	return state
}

func writeWAL(t *testing.T, dir string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, walFileName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func expectState(t *testing.T, st Store, want map[string][]byte) {
	t.Helper()
	recs, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	got := map[string][]byte{}
	for _, r := range recs {
		got[r.ID] = r.Payload
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records %v, want %d", len(got), keys(got), len(want))
	}
	for id, p := range want {
		if !bytes.Equal(got[id], p) {
			t.Fatalf("record %q = %q, want %q", id, got[id], p)
		}
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	//optlint:nondeterministic-ok diagnostic output only
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWALCrashPointEnumeration is the satellite crash-point test: it cuts
// the log at EVERY byte offset — not just record boundaries — and requires
// that opening the prefix recovers exactly the ops whose records are fully
// contained, that the torn tail is truncated, and that the store keeps
// accepting writes afterwards. This is the precise meaning of "fsync
// before acknowledge": an acknowledged op is one whose record is complete
// on disk, and nothing else may survive.
func TestWALCrashPointEnumeration(t *testing.T) {
	ops := crashScript()
	// Encode the full log and record each op's end offset.
	raw := []byte(walMagic)
	ends := make([]int, 0, len(ops))
	for _, o := range ops {
		raw = appendWALRecord(raw, o.op, o.id, o.payload)
		ends = append(ends, len(raw))
	}
	// completeOps(cut) = number of ops fully contained in raw[:cut].
	completeOps := func(cut int) int {
		n := 0
		for _, e := range ends {
			if e <= cut {
				n++
			}
		}
		return n
	}

	for cut := 0; cut <= len(raw); cut++ {
		dir := t.TempDir()
		writeWAL(t, dir, raw[:cut])
		st, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("cut=%d: OpenWAL: %v", cut, err)
		}
		want := applyScript(ops, completeOps(cut))
		expectState(t, st, want)
		if err := st.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}

		// The torn tail must be gone from disk: a second open sees a clean
		// log with the same state.
		data, err := os.ReadFile(filepath.Join(dir, walFileName))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if _, goodLen, damage := replayWAL(data[len(walMagic):]); damage != nil || goodLen != len(data)-len(walMagic) {
			t.Fatalf("cut=%d: log still damaged after recovery: goodLen=%d len=%d damage=%v",
				cut, goodLen, len(data)-len(walMagic), damage)
		}

		// And the recovered store accepts and persists new writes.
		st2, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if err := st2.Put("post", []byte("post-crash")); err != nil {
			t.Fatalf("cut=%d: Put after recovery: %v", cut, err)
		}
		want["post"] = []byte("post-crash")
		expectState(t, st2, want)
		if err := st2.Close(); err != nil {
			t.Fatalf("cut=%d: Close: %v", cut, err)
		}
	}
}

// TestWALMidFileCorruption pins the bounded-trust policy: replay stops at
// the first damaged record, keeps everything before it, and truncates the
// rest — corruption in the middle of the log cannot resurrect or invent
// later state.
func TestWALMidFileCorruption(t *testing.T) {
	ops := crashScript()
	raw := []byte(walMagic)
	var firstEnd int
	for i, o := range ops {
		raw = appendWALRecord(raw, o.op, o.id, o.payload)
		if i == 0 {
			firstEnd = len(raw)
		}
	}
	// Flip one payload byte inside the second record: its CRC check fails,
	// so only the first op survives.
	raw[firstEnd+walHeaderLen+walBodyMin+2] ^= 0xFF
	dir := t.TempDir()
	writeWAL(t, dir, raw)
	st, err := OpenWAL(dir)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	defer st.Close()
	expectState(t, st, applyScript(ops, 1))
}

// TestWALBadMagic: a file that is not a WAL (rather than a torn one) must
// be refused, not silently clobbered.
func TestWALBadMagic(t *testing.T) {
	dir := t.TempDir()
	writeWAL(t, dir, []byte("NOTAWAL0-and-then-some"))
	if _, err := OpenWAL(dir); err == nil {
		t.Fatal("OpenWAL accepted a non-WAL file")
	}
	// The bogus file must still be there untouched.
	data, err := os.ReadFile(filepath.Join(dir, walFileName))
	if err != nil || string(data) != "NOTAWAL0-and-then-some" {
		t.Fatalf("non-WAL file was modified: %q, %v", data, err)
	}
}

// TestWALTornMagic: a crash during the very first create can tear the
// magic itself; nothing was ever acknowledged, so the store restarts
// empty instead of refusing to open.
func TestWALTornMagic(t *testing.T) {
	for cut := 0; cut < len(walMagic); cut++ {
		dir := t.TempDir()
		writeWAL(t, dir, []byte(walMagic[:cut]))
		st, err := OpenWAL(dir)
		if err != nil {
			t.Fatalf("cut=%d: OpenWAL: %v", cut, err)
		}
		if err := st.Put("a", []byte("x")); err != nil {
			t.Fatalf("cut=%d: Put: %v", cut, err)
		}
		expectState(t, st, map[string][]byte{"a": []byte("x")})
		st.Close()
	}
}

// TestWALCompaction: overwriting the same records until superseded bytes
// dominate must shrink the log without changing the visible state, and
// the compacted log must replay identically after reopen.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("p"), 64*1024)
	// ~40 overwrites of 64 KiB ≈ 2.5 MiB garbage against 64 KiB live —
	// well past the compaction threshold.
	for i := 0; i < 40; i++ {
		if err := st.Put("hot", payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Put("cold", []byte("small")); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(filepath.Join(dir, walFileName))
	if err != nil {
		t.Fatal(err)
	}
	// Raw appends total ~2.5 MiB. Compaction keeps residual garbage under
	// its 1 MiB floor, so the surviving log must stay well below the raw
	// size: floor + live content + slack.
	if max := int64(compactFloor + 3*64*1024); fi.Size() > max {
		t.Fatalf("log is %d bytes after heavy overwrite (max %d); compaction did not run", fi.Size(), max)
	}
	want := map[string][]byte{"hot": payload, "cold": []byte("small")}
	expectState(t, st, want)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	expectState(t, st2, want)
}

// TestWALPayloadCap: a payload over the record cap is refused up front —
// the cap is what keeps hostile length prefixes from over-allocating at
// replay, so the writer must never produce one.
func TestWALPayloadCap(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenWAL(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Put("big", make([]byte, maxWALPayload+1)); err == nil {
		t.Fatal("Put accepted a payload over the WAL record cap")
	}
	expectState(t, st, map[string][]byte{})
}

// TestWALRecordSizeAccounting pins encodedWALSize against the real
// encoder — the compaction trigger arithmetic depends on it.
func TestWALRecordSizeAccounting(t *testing.T) {
	for _, tc := range []struct {
		id      string
		payload []byte
	}{
		{"a", nil},
		{"j000001", []byte("x")},
		{"some-long-id.spec", bytes.Repeat([]byte("y"), 1000)},
	} {
		got := len(appendWALRecord(nil, opPut, tc.id, tc.payload))
		if want := encodedWALSize(tc.id, tc.payload); got != want {
			t.Errorf("encodedWALSize(%q, %d bytes) = %d, real record is %d", tc.id, len(tc.payload), want, got)
		}
	}
}

// TestWALDeleteRecordRejectsPayload pins the codec-level invariant used
// by the fuzz target's corruption checks.
func TestWALDeleteRecordRejectsPayload(t *testing.T) {
	rec := appendWALRecord(nil, opDelete, "id", nil)
	if _, _, _, _, err := decodeWALRecord(rec); err != nil {
		t.Fatalf("clean delete record rejected: %v", err)
	}
	bad := appendWALRecord(nil, opDelete, "id", []byte("junk"))
	if _, _, _, _, err := decodeWALRecord(bad); err == nil {
		t.Fatal("delete record with payload accepted")
	}
	if _, _, _, _, err := decodeWALRecord(appendWALRecord(nil, 99, "id", nil)); err == nil {
		t.Fatal("unknown op accepted")
	}
}

func BenchmarkWALPut(b *testing.B) {
	st, err := OpenWAL(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	payload := bytes.Repeat([]byte("s"), 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Put(fmt.Sprintf("j%06d", i%1024), payload); err != nil {
			b.Fatal(err)
		}
	}
}
