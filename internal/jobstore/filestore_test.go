package jobstore

import (
	"os"
	"path/filepath"
	"testing"
)

// TestFileStoreLegacyLayout pins the on-disk layout to the one the jobs
// manager wrote before the Store interface existed: <id>.ckpt.json per
// record. Checkpoint directories from older releases must recover through
// this store unchanged.
func TestFileStoreLegacyLayout(t *testing.T) {
	dir := t.TempDir()
	// A "legacy" checkpoint written by the pre-interface manager.
	if err := os.WriteFile(filepath.Join(dir, "j000042"+FileSuffix), []byte(`{"id":"j000042"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Noise the old recovery loop also skipped.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("ignore me"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	recs, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(recs) != 1 || recs[0].ID != "j000042" || string(recs[0].Payload) != `{"id":"j000042"}` {
		t.Fatalf("legacy checkpoint not recovered: %v", recs)
	}
	// And Put writes the exact same layout back.
	if err := st.Put("j000043", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "j000043"+FileSuffix)); err != nil {
		t.Fatalf("Put did not produce the legacy file name: %v", err)
	}
}

// TestFileStoreSweepsOrphans: OpenFile removes the temp files a crash
// mid-WriteAtomic leaves behind, and only those.
func TestFileStoreSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "j000001"+FileSuffix+".tmp-777")
	keeper := filepath.Join(dir, "j000001"+FileSuffix)
	for _, f := range []string{orphan, keeper} {
		if err := os.WriteFile(f, []byte("data"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Fatalf("orphan temp file not swept: %v", err)
	}
	if _, err := os.Stat(keeper); err != nil {
		t.Fatalf("real record swept along with the orphan: %v", err)
	}
}
