package jobstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedRecords is the seed set for FuzzWALRecord (and, via
// TestWriteWALFuzzCorpus, the committed corpus): one record per op plus
// the boundary shapes that reach every branch of the decoder.
func fuzzSeedRecords() [][]byte {
	var seeds [][]byte
	add := func(b []byte) { seeds = append(seeds, b) }
	put := appendWALRecord(nil, opPut, "j000001", []byte("payload"))
	del := appendWALRecord(nil, opDelete, "j000001", nil)
	add(put)
	add(del)
	add(appendWALRecord(nil, opPut, "a", nil))                     // empty payload
	add(append(append([]byte{}, put...), del...))                  // two records back to back
	add(put[:len(put)-1])                                          // torn trailer
	add(put[:walHeaderLen+2])                                      // torn body
	add(put[:2])                                                   // torn header
	add(appendWALRecord(nil, 99, "j000001", []byte("x")))          // unknown op
	add(appendWALRecord(nil, opDelete, "j000001", []byte("junk"))) // delete with payload

	// CRC mismatch: flip one body byte of a valid record.
	bad := append([]byte(nil), put...)
	bad[walHeaderLen+1] ^= 0xFF
	add(bad)

	// Hostile length prefix far beyond the cap.
	var hostile [4]byte
	binary.BigEndian.PutUint32(hostile[:], uint32(maxWALBody+1))
	add(hostile[:])

	// Body length below the structural minimum.
	var tiny [5]byte
	binary.BigEndian.PutUint32(tiny[:], 1)
	tiny[4] = byte(opPut)
	add(tiny[:])
	return seeds
}

// FuzzWALRecord fuzzes the WAL record decoder: arbitrary bytes must either
// be rejected cleanly (truncation or corruption error, never a panic or an
// over-allocation) or decode to a record that re-encodes to exactly the
// bytes consumed. replayWAL over the same input must never fail — damage
// is a stop point, not an error — and must consume precisely the decoded
// prefix.
func FuzzWALRecord(f *testing.F) {
	for _, s := range fuzzSeedRecords() {
		f.Add(append([]byte(nil), s...))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		op, id, payload, n, err := decodeWALRecord(data)
		if err == nil {
			if n <= 0 || n > len(data) {
				t.Fatalf("decoded %d bytes of a %d-byte input", n, len(data))
			}
			reenc := appendWALRecord(nil, op, id, payload)
			if !bytes.Equal(reenc, data[:n]) {
				t.Fatalf("re-encode mismatch:\n got  %x\n want %x", reenc, data[:n])
			}
		}
		// Replay must never fail and must stop exactly where decoding does.
		live, goodLen, damage := replayWAL(data)
		if goodLen < 0 || goodLen > len(data) {
			t.Fatalf("replay consumed %d of %d bytes", goodLen, len(data))
		}
		if damage == nil && goodLen != len(data) {
			t.Fatalf("clean replay left %d bytes unconsumed", len(data)-goodLen)
		}
		for lid := range live {
			if !ValidID(lid) {
				t.Fatalf("replay admitted invalid id %q", lid)
			}
		}
	})
}

// TestWriteWALFuzzCorpus regenerates the committed seed corpus under
// testdata/fuzz/FuzzWALRecord from fuzzSeedRecords. It is a no-op unless
// JOBSTORE_WRITE_FUZZ_CORPUS=1, so the corpus only changes deliberately:
//
//	JOBSTORE_WRITE_FUZZ_CORPUS=1 go test ./internal/jobstore -run TestWriteWALFuzzCorpus
func TestWriteWALFuzzCorpus(t *testing.T) {
	if os.Getenv("JOBSTORE_WRITE_FUZZ_CORPUS") != "1" {
		t.Skip("set JOBSTORE_WRITE_FUZZ_CORPUS=1 to rewrite testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzWALRecord")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range fuzzSeedRecords() {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
