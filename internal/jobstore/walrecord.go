package jobstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The WAL file layout. The file opens with an 8-byte magic, then holds a
// flat sequence of self-delimiting records:
//
//	[u32 bodyLen][body][u32 crc32]
//	body = [1 op][u16 idLen][id bytes][payload bytes]
//
// All integers are big-endian; the CRC (IEEE) covers the body only, so a
// torn append is detected whether the tear hit the length, the body or the
// checksum. Appends are fsynced before Put/Delete return, which makes the
// only legal damage a truncated or torn final record — replay stops there
// and the opener truncates the tail, exactly like any write-ahead log.
const (
	walMagic = "OPTDWAL1"

	opPut    byte = 1
	opDelete byte = 2

	// walHeaderLen is the length-prefix size of one record.
	walHeaderLen = 4
	// walTrailerLen is the CRC size of one record.
	walTrailerLen = 4
	// walBodyMin is op + idLen with an empty id and payload.
	walBodyMin = 3
	// maxWALPayload bounds one record's payload so a corrupt or hostile
	// length prefix cannot allocate unbounded memory during replay.
	maxWALPayload = 1 << 26 // 64 MiB
	// maxWALBody bounds the whole body.
	maxWALBody = walBodyMin + maxIDLen + maxWALPayload
)

// errWALTruncated marks a record cut short by a crash: the bytes present
// are a strict prefix of a record. Replay treats it as the clean end of
// the log.
var errWALTruncated = errors.New("jobstore: truncated WAL record")

// appendWALRecord appends the encoded record to dst and returns the
// extended slice.
func appendWALRecord(dst []byte, op byte, id string, payload []byte) []byte {
	bodyLen := walBodyMin + len(id) + len(payload)
	dst = binary.BigEndian.AppendUint32(dst, uint32(bodyLen))
	bodyStart := len(dst)
	dst = append(dst, op)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(id)))
	dst = append(dst, id...)
	dst = append(dst, payload...)
	crc := crc32.ChecksumIEEE(dst[bodyStart:])
	return binary.BigEndian.AppendUint32(dst, crc)
}

// decodeWALRecord parses the first record of b, returning the op, id,
// payload (aliasing b) and the total bytes consumed. A prefix of a valid
// record yields errWALTruncated; structurally invalid bytes (oversized
// lengths, unknown op, CRC mismatch) yield a corruption error.
func decodeWALRecord(b []byte) (op byte, id string, payload []byte, n int, err error) {
	if len(b) < walHeaderLen {
		return 0, "", nil, 0, errWALTruncated
	}
	bodyLen := int(binary.BigEndian.Uint32(b))
	if bodyLen < walBodyMin || bodyLen > maxWALBody {
		return 0, "", nil, 0, fmt.Errorf("jobstore: WAL record body length %d out of range [%d, %d]", bodyLen, walBodyMin, maxWALBody)
	}
	total := walHeaderLen + bodyLen + walTrailerLen
	if len(b) < total {
		return 0, "", nil, 0, errWALTruncated
	}
	body := b[walHeaderLen : walHeaderLen+bodyLen]
	wantCRC := binary.BigEndian.Uint32(b[walHeaderLen+bodyLen:])
	if crc := crc32.ChecksumIEEE(body); crc != wantCRC {
		return 0, "", nil, 0, fmt.Errorf("jobstore: WAL record CRC mismatch (got %08x, want %08x)", crc, wantCRC)
	}
	op = body[0]
	if op != opPut && op != opDelete {
		return 0, "", nil, 0, fmt.Errorf("jobstore: unknown WAL record op %d", op)
	}
	idLen := int(binary.BigEndian.Uint16(body[1:]))
	if idLen > maxIDLen || walBodyMin+idLen > bodyLen {
		return 0, "", nil, 0, fmt.Errorf("jobstore: WAL record id length %d exceeds body", idLen)
	}
	id = string(body[walBodyMin : walBodyMin+idLen])
	payload = body[walBodyMin+idLen : bodyLen]
	if op == opDelete && len(payload) != 0 {
		return 0, "", nil, 0, fmt.Errorf("jobstore: WAL delete record carries a %d-byte payload", len(payload))
	}
	return op, id, payload, total, nil
}

// replayWAL applies every complete record of data (the file bytes after
// the magic) to a fresh state map. It returns the live records, the byte
// offset of the first damaged or truncated record relative to data (==
// len(data) when the log is clean), and the damage encountered there
// (nil when clean). Damage never fails the replay: everything before it
// is durable state.
func replayWAL(data []byte) (live map[string][]byte, goodLen int, damage error) {
	live = make(map[string][]byte)
	off := 0
	for off < len(data) {
		op, id, payload, n, err := decodeWALRecord(data[off:])
		if err != nil {
			return live, off, err
		}
		if err := CheckID(id); err != nil {
			return live, off, err
		}
		switch op {
		case opPut:
			live[id] = append([]byte(nil), payload...)
		case opDelete:
			delete(live, id)
		}
		off += n
	}
	return live, off, nil
}
