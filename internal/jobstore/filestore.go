package jobstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/fileio"
)

// FileSuffix is the per-record file suffix of the FileStore layout —
// the layout the jobs manager wrote before the Store interface existed,
// kept bit-for-bit so existing checkpoint directories recover unchanged.
const FileSuffix = ".ckpt.json"

// FileStore stores one file per record under a directory, each written
// with fileio.WriteAtomic so a crash mid-write leaves the previous record
// intact. The zero cost of its reads and the human-inspectable layout make
// it the default store; the WALStore trades that for cheaper writes.
type FileStore struct {
	dir string

	mu     sync.Mutex
	closed bool // guarded by mu
}

// OpenFile opens (creating if missing) a FileStore rooted at dir and
// sweeps the orphaned temp files a crash mid-WriteAtomic leaves behind.
func OpenFile(dir string) (*FileStore, error) {
	if dir == "" {
		return nil, fmt.Errorf("jobstore: file store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	// A crash mid-WriteAtomic leaves an orphaned temp file (the previous
	// record is intact); sweep them so they do not accumulate.
	stale, err := filepath.Glob(filepath.Join(dir, "*"+FileSuffix+".tmp-*"))
	if err == nil {
		for _, f := range stale {
			os.Remove(f)
		}
	}
	return &FileStore{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *FileStore) Dir() string { return s.dir }

// Kind implements Store.
func (s *FileStore) Kind() string { return "file" }

func (s *FileStore) path(id string) string {
	return filepath.Join(s.dir, id+FileSuffix)
}

// Put implements Store: an atomic write-then-rename of <dir>/<id>.ckpt.json.
func (s *FileStore) Put(id string, payload []byte) error {
	if err := CheckID(id); err != nil {
		return err
	}
	if err := s.check(); err != nil {
		return err
	}
	return fileio.WriteAtomic(s.path(id), payload, 0o644)
}

// Delete implements Store.
func (s *FileStore) Delete(id string) error {
	if err := CheckID(id); err != nil {
		return err
	}
	if err := s.check(); err != nil {
		return err
	}
	if err := os.Remove(s.path(id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// List implements Store: every *.ckpt.json record sorted by ID. Unreadable
// files are skipped and reported through the first error, never deleted.
func (s *FileStore) List() ([]Record, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	var recs []Record
	var firstErr error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, FileSuffix) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.dir, name))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobstore: %w", err)
			}
			continue
		}
		recs = append(recs, Record{ID: strings.TrimSuffix(name, FileSuffix), Payload: data})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, firstErr
}

// Close implements Store.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

func (s *FileStore) check() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("jobstore: store is closed")
	}
	return nil
}
