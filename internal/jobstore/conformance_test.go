package jobstore_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/jobstore"
	"repro/internal/jobstore/storetest"
)

// TestFileStoreConformance runs the shared store contract against the
// one-file-per-job layout. Its torn-write model is WriteAtomic's: a crash
// mid-Put leaves the previous record intact plus an orphaned temp file.
func TestFileStoreConformance(t *testing.T) {
	storetest.Run(t, storetest.Harness{
		Open: func(dir string) (jobstore.Store, error) { return jobstore.OpenFile(dir) },
		Tear: func(t *testing.T, dir string) {
			orphan := filepath.Join(dir, "torn"+jobstore.FileSuffix+".tmp-12345")
			if err := os.WriteFile(orphan, []byte(`{"half":`), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	})
}

// TestWALStoreConformance runs the same contract against the write-ahead
// log. Its torn-write model is a partial final record appended to the log.
func TestWALStoreConformance(t *testing.T) {
	storetest.Run(t, storetest.Harness{
		Open: func(dir string) (jobstore.Store, error) { return jobstore.OpenWAL(dir) },
		Tear: func(t *testing.T, dir string) {
			// Append the first half of a record that was never acknowledged.
			rec := jobstore.AppendWALRecordForTest(nil, "torn", []byte("never-acked-payload"))
			f, err := os.OpenFile(filepath.Join(dir, "jobs.wal"), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write(rec[:len(rec)/2]); err != nil {
				t.Fatal(err)
			}
		},
	})
}

// TestOpenDispatch pins the kind names the Open factory accepts — they are
// wired to the optd -store flag and the router failover request body.
func TestOpenDispatch(t *testing.T) {
	for kind, want := range map[string]string{"": "file", "file": "file", "wal": "wal"} {
		dir := t.TempDir()
		st, err := jobstore.Open(kind, dir)
		if err != nil {
			t.Fatalf("Open(%q): %v", kind, err)
		}
		if st.Kind() != want {
			t.Errorf("Open(%q).Kind() = %q, want %q", kind, st.Kind(), want)
		}
		// Dir travels in the failover request body; both stores expose it.
		type direr interface{ Dir() string }
		if d, ok := st.(direr); !ok || d.Dir() != dir {
			t.Errorf("Open(%q).Dir() = %v, want %q", kind, st, dir)
		}
		st.Close()
	}
	if _, err := jobstore.Open("bolt", t.TempDir()); err == nil {
		t.Fatal("unknown store kind must be rejected")
	}
}
