package jobstore

// Test-only exports for the external conformance tests.

// AppendWALRecordForTest encodes one put record, so store-external tests
// can fabricate the torn-append crash artifact.
func AppendWALRecordForTest(dst []byte, id string, payload []byte) []byte {
	return appendWALRecord(dst, opPut, id, payload)
}
