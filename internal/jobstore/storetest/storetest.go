// Package storetest is the conformance suite every jobstore.Store
// implementation must pass. It pins the contract the jobs manager relies
// on — durable round-trips, sorted listing, survival of the crash
// artifacts each store's write discipline permits, and safety under
// concurrent writers — so a new store earns trust by passing one shared
// suite instead of re-deriving the rules.
//
// Store-specific damage models (byte-level crash-point enumeration for the
// WAL, temp-file orphans for the file layout) stay in the store's own
// tests; the Tear hook lets each store plug its "legal" torn-write
// artifact into the shared recovery check.
package storetest

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/jobstore"
)

// Harness adapts one store implementation to the suite.
type Harness struct {
	// Open opens (or reopens) the store rooted at dir. The suite calls it
	// repeatedly on the same directory to check durability across close.
	Open func(dir string) (jobstore.Store, error)
	// Tear simulates the worst crash artifact the store's write discipline
	// permits mid-update (a torn tail, an orphaned temp file) in a closed
	// store's directory. The suite then reopens and requires the
	// previously-acknowledged records intact. Optional.
	Tear func(t *testing.T, dir string)
}

// Run executes the conformance suite against h.
func Run(t *testing.T, h Harness) {
	t.Run("RoundTrip", func(sub *testing.T) { testRoundTrip(sub, h) })
	t.Run("ListSorted", func(sub *testing.T) { testListSorted(sub, h) })
	t.Run("Payloads", func(sub *testing.T) { testPayloads(sub, h) })
	t.Run("InvalidIDs", func(sub *testing.T) { testInvalidIDs(sub, h) })
	t.Run("ReopenPersists", func(sub *testing.T) { testReopenPersists(sub, h) })
	t.Run("TornWriteRecovers", func(sub *testing.T) { testTornWrite(sub, h) })
	t.Run("ConcurrentWriters", func(sub *testing.T) { testConcurrentWriters(sub, h) })
	t.Run("ConcurrentSameID", func(sub *testing.T) { testConcurrentSameID(sub, h) })
	t.Run("Closed", func(sub *testing.T) { testClosed(sub, h) })
}

func open(t *testing.T, h Harness, dir string) jobstore.Store {
	t.Helper()
	st, err := h.Open(dir)
	if err != nil {
		t.Fatalf("open store at %s: %v", dir, err)
	}
	return st
}

// expect asserts the store lists exactly want (id → payload).
func expect(t *testing.T, st jobstore.Store, want map[string][]byte) {
	t.Helper()
	recs, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(recs) != len(want) {
		t.Fatalf("List returned %d records, want %d (%v)", len(recs), len(want), recs)
	}
	for i, r := range recs {
		if i > 0 && recs[i-1].ID >= r.ID {
			t.Fatalf("List not sorted: %q before %q", recs[i-1].ID, r.ID)
		}
		p, ok := want[r.ID]
		if !ok {
			t.Fatalf("List returned unexpected id %q", r.ID)
		}
		if !bytes.Equal(r.Payload, p) {
			t.Fatalf("record %q payload = %q, want %q", r.ID, r.Payload, p)
		}
	}
}

func testRoundTrip(t *testing.T, h Harness) {
	st := open(t, h, t.TempDir())
	defer st.Close()
	if err := st.Put("a", []byte("one")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := st.Put("b", []byte("two")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	expect(t, st, map[string][]byte{"a": []byte("one"), "b": []byte("two")})

	// Overwrite replaces, delete removes, deleting an absent id is a no-op.
	if err := st.Put("a", []byte("one-v2")); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	if err := st.Delete("b"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := st.Delete("never-existed"); err != nil {
		t.Fatalf("Delete of absent id must succeed, got %v", err)
	}
	expect(t, st, map[string][]byte{"a": []byte("one-v2")})
	if st.Kind() == "" {
		t.Fatal("Kind must name the implementation")
	}
}

func testListSorted(t *testing.T, h Harness) {
	st := open(t, h, t.TempDir())
	defer st.Close()
	want := map[string][]byte{}
	// Insert in deliberately unsorted order.
	for _, id := range []string{"j000010", "j000002", "zz", "A", "j000001"} {
		payload := []byte("p-" + id)
		if err := st.Put(id, payload); err != nil {
			t.Fatalf("Put(%q): %v", id, err)
		}
		want[id] = payload
	}
	expect(t, st, want)
}

func testPayloads(t *testing.T, h Harness) {
	st := open(t, h, t.TempDir())
	defer st.Close()
	large := bytes.Repeat([]byte("0123456789abcdef"), 64*1024) // 1 MiB
	want := map[string][]byte{
		"empty": {},
		"nilpl": nil,
		"large": large,
		"bin":   {0, 1, 2, 0xFF, '\n', 0},
	}
	for id, p := range want {
		if err := st.Put(id, p); err != nil {
			t.Fatalf("Put(%q, %d bytes): %v", id, len(p), err)
		}
	}
	recs, err := st.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for _, r := range recs {
		if !bytes.Equal(r.Payload, want[r.ID]) {
			t.Fatalf("record %q: %d bytes, want %d", r.ID, len(r.Payload), len(want[r.ID]))
		}
	}
}

func testInvalidIDs(t *testing.T, h Harness) {
	st := open(t, h, t.TempDir())
	defer st.Close()
	bad := []string{
		"",
		".hidden",
		"..",
		"a/b",
		"a\\b",
		"sp ace",
		"nul\x00",
		strings.Repeat("x", 129),
	}
	for _, id := range bad {
		if err := st.Put(id, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted an invalid id", id)
		}
		if err := st.Delete(id); err == nil {
			t.Errorf("Delete(%q) accepted an invalid id", id)
		}
	}
	// The boundary cases that must be accepted.
	for _, id := range []string{"a", "j000001.spec", "A-Z_0.9", strings.Repeat("x", 128)} {
		if err := st.Put(id, []byte("x")); err != nil {
			t.Errorf("Put(%q) rejected a valid id: %v", id, err)
		}
	}
}

func testReopenPersists(t *testing.T, h Harness) {
	dir := t.TempDir()
	st := open(t, h, dir)
	want := map[string][]byte{}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("j%06d", i)
		payload := []byte(strings.Repeat(id, i+1))
		if err := st.Put(id, payload); err != nil {
			t.Fatalf("Put: %v", err)
		}
		want[id] = payload
	}
	// Overwrites and deletes must also survive reopen.
	want["j000003"] = []byte("rewritten")
	if err := st.Put("j000003", want["j000003"]); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := st.Delete("j000007"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	delete(want, "j000007")
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := open(t, h, dir)
	defer st2.Close()
	expect(t, st2, want)
}

func testTornWrite(t *testing.T, h Harness) {
	if h.Tear == nil {
		t.Skip("store has no torn-write model")
	}
	dir := t.TempDir()
	st := open(t, h, dir)
	want := map[string][]byte{
		"a": []byte("payload-a"),
		"b": []byte("payload-b"),
	}
	for id, p := range want {
		if err := st.Put(id, p); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Simulate the crash artifact, then reopen twice: once to recover,
	// once to prove recovery itself left a clean directory.
	h.Tear(t, dir)
	for round := 0; round < 2; round++ {
		st2 := open(t, h, dir)
		expect(t, st2, want)
		if err := st2.Close(); err != nil {
			t.Fatalf("Close after tear (round %d): %v", round, err)
		}
	}

	// And the store must still accept writes after recovering.
	st3 := open(t, h, dir)
	defer st3.Close()
	if err := st3.Put("c", []byte("post-crash")); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	want["c"] = []byte("post-crash")
	expect(t, st3, want)
}

func testConcurrentWriters(t *testing.T, h Harness) {
	dir := t.TempDir()
	st := open(t, h, dir)
	const writers = 8
	const perWriter = 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() { // per-iteration w: each goroutine gets its own copy
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				id := fmt.Sprintf("w%d-r%03d", w, i)
				if err := st.Put(id, []byte(id+"-payload")); err != nil {
					errs <- err
					return
				}
				if i%5 == 4 { // delete every fifth record after writing it
					if err := st.Delete(id); err != nil {
						errs <- err
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent writer: %v", err)
	}
	want := map[string][]byte{}
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			if i%5 == 4 {
				continue
			}
			id := fmt.Sprintf("w%d-r%03d", w, i)
			want[id] = []byte(id + "-payload")
		}
	}
	expect(t, st, want)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2 := open(t, h, dir)
	defer st2.Close()
	expect(t, st2, want)
}

func testConcurrentSameID(t *testing.T, h Harness) {
	dir := t.TempDir()
	st := open(t, h, dir)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() { // per-iteration w: each goroutine gets its own copy
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := st.Put("contended", []byte(fmt.Sprintf("writer-%d-round-%d", w, i))); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	check := func(s jobstore.Store) {
		t.Helper()
		recs, err := s.List()
		if err != nil {
			t.Fatalf("List: %v", err)
		}
		if len(recs) != 1 || recs[0].ID != "contended" {
			t.Fatalf("want exactly the contended record, got %v", recs)
		}
		// The surviving payload must be one some writer actually wrote —
		// torn interleavings are forbidden.
		p := string(recs[0].Payload)
		if !strings.HasPrefix(p, "writer-") || !strings.Contains(p, "-round-") {
			t.Fatalf("payload %q is not any writer's complete value", p)
		}
	}
	check(st)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2 := open(t, h, dir)
	defer st2.Close()
	check(st2)
}

func testClosed(t *testing.T, h Harness) {
	st := open(t, h, t.TempDir())
	if err := st.Put("a", []byte("x")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close must be idempotent, got %v", err)
	}
	if err := st.Put("b", []byte("y")); err == nil {
		t.Error("Put on a closed store must fail")
	}
	if err := st.Delete("a"); err == nil {
		t.Error("Delete on a closed store must fail")
	}
}
