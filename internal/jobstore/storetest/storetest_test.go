package storetest

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/jobstore"
)

// memStore is a minimal known-correct model implementation: the suite must
// pass it, or the suite itself is wrong. Records live in a process-global
// map keyed by directory so "reopen the same dir" observes prior writes,
// mirroring how a durable store survives Close.
type memStore struct {
	dir    string
	mu     sync.Mutex
	closed bool
}

var (
	memMu   sync.Mutex
	memDirs = map[string]map[string][]byte{}
)

func openMem(dir string) (jobstore.Store, error) {
	memMu.Lock()
	defer memMu.Unlock()
	if memDirs[dir] == nil {
		memDirs[dir] = map[string][]byte{}
	}
	return &memStore{dir: dir}, nil
}

func (s *memStore) Put(id string, payload []byte) error {
	if err := jobstore.CheckID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storetest: mem store is closed")
	}
	memMu.Lock()
	defer memMu.Unlock()
	memDirs[s.dir][id] = append([]byte(nil), payload...)
	return nil
}

func (s *memStore) Delete(id string) error {
	if err := jobstore.CheckID(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("storetest: mem store is closed")
	}
	memMu.Lock()
	defer memMu.Unlock()
	delete(memDirs[s.dir], id)
	return nil
}

func (s *memStore) List() ([]jobstore.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("storetest: mem store is closed")
	}
	memMu.Lock()
	defer memMu.Unlock()
	recs := make([]jobstore.Record, 0, len(memDirs[s.dir]))
	for id, p := range memDirs[s.dir] {
		recs = append(recs, jobstore.Record{ID: id, Payload: append([]byte(nil), p...)})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}

func (s *memStore) Kind() string { return "mem" }

func (s *memStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// TestSuiteAgainstModelStore runs the full conformance suite against the
// in-memory model. A correct implementation must pass every case, so a
// failure here means a suite bug, not a store bug.
func TestSuiteAgainstModelStore(t *testing.T) {
	Run(t, Harness{Open: openMem})
}

// TestSuiteCatchesBrokenStore pins the other direction: the suite must
// reject an implementation that violates the contract. unsortedStore
// returns records in reverse order; expect() must notice.
func TestSuiteCatchesBrokenStore(t *testing.T) {
	st, err := openMem(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, id := range []string{"a", "b", "c"} {
		if err := st.Put(id, []byte(id)); err != nil {
			t.Fatal(err)
		}
	}
	// expect() reports through Fatalf, which exits its goroutine — run the
	// probe on its own goroutine so Goexit ends only the probe.
	probe := &testing.T{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		expect(probe, reversedStore{st}, map[string][]byte{
			"a": []byte("a"), "b": []byte("b"), "c": []byte("c"),
		})
	}()
	<-done
	if !probe.Failed() {
		t.Fatal("expect() accepted an unsorted List — the suite would miss a broken store")
	}
}

// reversedStore breaks the sorted-List contract on purpose.
type reversedStore struct{ jobstore.Store }

func (r reversedStore) List() ([]jobstore.Record, error) {
	recs, err := r.Store.List()
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	return recs, err
}
