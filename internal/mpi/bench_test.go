package mpi

import "testing"

func BenchmarkBufferPackUnpack(b *testing.B) {
	payload := make([]float64, 64)
	for i := range payload {
		payload[i] = float64(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := NewBuffer()
		buf.PackInt(i)
		buf.PackFloats(payload)
		rb := NewBufferFrom(buf.Bytes())
		if _, err := rb.UnpackInt(); err != nil {
			b.Fatal(err)
		}
		if _, err := rb.UnpackFloats(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSendRecvPingPong(b *testing.B) {
	w := NewWorld(2)
	defer w.Close()
	go func() {
		c := w.Comm(1)
		for {
			m, err := c.Recv(0, 1)
			if err != nil {
				return
			}
			_ = c.Send(0, 2, m.Buf)
		}
	}()
	c0 := w.Comm(0)
	payload := NewBuffer()
	payload.PackFloat(3.14)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := c0.Send(1, 1, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := c0.Recv(1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFanInThroughput(b *testing.B) {
	const senders = 4
	w := NewWorld(senders + 1)
	defer w.Close()
	stop := make(chan struct{})
	for s := 1; s <= senders; s++ {
		go func(rank int) {
			c := w.Comm(rank)
			buf := NewBuffer()
			buf.PackInt(rank)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c.Send(0, 1, buf) != nil {
					return
				}
			}
		}(s)
	}
	c0 := w.Comm(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c0.Recv(AnySource, 1); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
}
