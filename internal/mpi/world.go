package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// Wildcards for Recv matching, mirroring MPI_ANY_SOURCE / MPI_ANY_TAG.
const (
	AnySource = -1
	AnyTag    = -1
)

// ErrClosed is returned by Send and Recv after the world is shut down.
var ErrClosed = errors.New("mpi: world closed")

// Message is one received message.
type Message struct {
	// From is the sender's rank.
	From int
	// Tag is the message tag.
	Tag int
	// Buf carries the packed payload, rewound and ready to unpack.
	Buf *Buffer
}

// World is a communicator over n ranks. Messages between a fixed (sender,
// receiver) pair are delivered in send order, like MPI point-to-point
// ordering. A World must be created with NewWorld.
type World struct {
	n     int
	boxes []*mailbox
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	msgs   []Message
	closed bool
}

// NewWorld creates a communicator with n ranks (n >= 1).
func NewWorld(n int) *World {
	if n < 1 {
		panic(fmt.Sprintf("mpi: NewWorld(%d): need at least one rank", n))
	}
	w := &World{n: n, boxes: make([]*mailbox, n)}
	for i := range w.boxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		w.boxes[i] = mb
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Comm returns the endpoint for the given rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.n {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, w.n))
	}
	return &Comm{rank: rank, w: w}
}

// Close shuts the world down: every blocked Recv returns ErrClosed and
// subsequent Sends fail. Close is idempotent.
func (w *World) Close() {
	for _, mb := range w.boxes {
		mb.mu.Lock()
		mb.closed = true
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// Comm is one rank's endpoint into a World.
type Comm struct {
	rank int
	w    *World
}

// Rank returns this endpoint's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the communicator size.
func (c *Comm) Size() int { return c.w.n }

// Send delivers a copy of the buffer's bytes to the destination rank with
// the given tag. Send never blocks (mailboxes are unbounded, matching the
// eager-send behaviour the MW framework assumes for its small control
// messages).
func (c *Comm) Send(to, tag int, b *Buffer) error {
	if to < 0 || to >= c.w.n {
		return fmt.Errorf("mpi: send to invalid rank %d", to)
	}
	if tag < 0 {
		return fmt.Errorf("mpi: send with invalid tag %d", tag)
	}
	payload := append([]byte(nil), b.Bytes()...)
	mb := c.w.boxes[to]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.msgs = append(mb.msgs, Message{From: c.rank, Tag: tag, Buf: NewBufferFrom(payload)})
	mb.cond.Broadcast()
	return nil
}

// Recv blocks until a message matching (from, tag) arrives, where AnySource
// and AnyTag act as wildcards. Among matching messages the earliest arrival
// is returned. Recv returns ErrClosed once the world is shut down and no
// matching message remains.
func (c *Comm) Recv(from, tag int) (Message, error) {
	mb := c.w.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.msgs {
			if (from == AnySource || m.From == from) && (tag == AnyTag || m.Tag == tag) {
				mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
				return m, nil
			}
		}
		if mb.closed {
			return Message{}, ErrClosed
		}
		mb.cond.Wait()
	}
}

// TryRecv is a non-blocking Recv: ok is false when no matching message is
// queued.
func (c *Comm) TryRecv(from, tag int) (Message, bool, error) {
	mb := c.w.boxes[c.rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.msgs {
		if (from == AnySource || m.From == from) && (tag == AnyTag || m.Tag == tag) {
			mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
			return m, true, nil
		}
	}
	if mb.closed {
		return Message{}, false, ErrClosed
	}
	return Message{}, false, nil
}
