// Package mpi is an in-memory message-passing substrate standing in for the
// MPI layer of the paper's deployment (section 4.2: "we use MPI communication
// between master and workers"). It reproduces the communication semantics the
// MW framework relies on — rank-addressed, tagged, ordered point-to-point
// messages with pack/unpack marshalling (the MWRMComm virtual functions
// pack/unpack/send/recv) — with goroutines playing the role of processes.
//
// The substitution preserves the relevant behaviour because the optimization
// framework only requires asynchronous task farming over ordered channels;
// the paper itself observes that "communication costs are low while
// computation costs are high", so the transport's absolute latency is
// irrelevant to every reported experiment.
package mpi

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Marshalling errors.
var (
	// ErrBufferUnderflow is returned when an Unpack reads past the end of
	// the packed data.
	ErrBufferUnderflow = errors.New("mpi: buffer underflow")
)

// Buffer is a pack/unpack marshalling buffer in the style of MWRMComm. Data
// must be unpacked in the order it was packed; there are no type tags, as in
// real MPI packing.
type Buffer struct {
	data []byte
	pos  int
}

// NewBuffer returns an empty buffer ready for packing.
func NewBuffer() *Buffer { return &Buffer{} }

// NewBufferFrom wraps existing packed bytes for unpacking. The buffer takes
// ownership of the slice.
func NewBufferFrom(data []byte) *Buffer { return &Buffer{data: data} }

// Bytes returns the packed bytes. The caller must not modify them while the
// buffer is in use.
func (b *Buffer) Bytes() []byte { return b.data }

// Len returns the number of packed bytes.
func (b *Buffer) Len() int { return len(b.data) }

// Remaining returns the number of unread bytes.
func (b *Buffer) Remaining() int { return len(b.data) - b.pos }

// Rewind resets the read cursor so the buffer can be unpacked again.
func (b *Buffer) Rewind() { b.pos = 0 }

// PackInt appends a 64-bit integer.
func (b *Buffer) PackInt(v int) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], uint64(v))
	b.data = append(b.data, tmp[:]...)
}

// UnpackInt reads the next integer.
func (b *Buffer) UnpackInt() (int, error) {
	if b.Remaining() < 8 {
		return 0, ErrBufferUnderflow
	}
	v := int(binary.BigEndian.Uint64(b.data[b.pos:]))
	b.pos += 8
	return v, nil
}

// PackFloat appends a float64.
func (b *Buffer) PackFloat(v float64) {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], math.Float64bits(v))
	b.data = append(b.data, tmp[:]...)
}

// UnpackFloat reads the next float64.
func (b *Buffer) UnpackFloat() (float64, error) {
	if b.Remaining() < 8 {
		return 0, ErrBufferUnderflow
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(b.data[b.pos:]))
	b.pos += 8
	return v, nil
}

// PackFloats appends a length-prefixed float64 slice.
func (b *Buffer) PackFloats(vs []float64) {
	b.PackInt(len(vs))
	for _, v := range vs {
		b.PackFloat(v)
	}
}

// UnpackFloats reads a length-prefixed float64 slice.
func (b *Buffer) UnpackFloats() ([]float64, error) {
	n, err := b.UnpackInt()
	if err != nil {
		return nil, err
	}
	if n < 0 || b.Remaining() < 8*n {
		return nil, ErrBufferUnderflow
	}
	vs := make([]float64, n)
	for i := range vs {
		vs[i], err = b.UnpackFloat()
		if err != nil {
			return nil, err
		}
	}
	return vs, nil
}

// PackString appends a length-prefixed string.
func (b *Buffer) PackString(s string) {
	b.PackInt(len(s))
	b.data = append(b.data, s...)
}

// UnpackString reads a length-prefixed string.
func (b *Buffer) UnpackString() (string, error) {
	n, err := b.UnpackInt()
	if err != nil {
		return "", err
	}
	if n < 0 || b.Remaining() < n {
		return "", ErrBufferUnderflow
	}
	s := string(b.data[b.pos : b.pos+n])
	b.pos += n
	return s, nil
}

// PackBool appends a boolean.
func (b *Buffer) PackBool(v bool) {
	if v {
		b.PackInt(1)
	} else {
		b.PackInt(0)
	}
}

// UnpackBool reads a boolean.
func (b *Buffer) UnpackBool() (bool, error) {
	n, err := b.UnpackInt()
	return n != 0, err
}

// String renders a short debug summary.
func (b *Buffer) String() string {
	return fmt.Sprintf("mpi.Buffer{len=%d, pos=%d}", len(b.data), b.pos)
}
