package mpi

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestBufferRoundTrip(t *testing.T) {
	b := NewBuffer()
	b.PackInt(-42)
	b.PackFloat(3.14159)
	b.PackFloats([]float64{1, 2, 3})
	b.PackString("hello")
	b.PackBool(true)
	b.PackBool(false)

	rb := NewBufferFrom(b.Bytes())
	if v, err := rb.UnpackInt(); err != nil || v != -42 {
		t.Fatalf("UnpackInt = %v, %v", v, err)
	}
	if v, err := rb.UnpackFloat(); err != nil || v != 3.14159 {
		t.Fatalf("UnpackFloat = %v, %v", v, err)
	}
	if vs, err := rb.UnpackFloats(); err != nil || len(vs) != 3 || vs[2] != 3 {
		t.Fatalf("UnpackFloats = %v, %v", vs, err)
	}
	if s, err := rb.UnpackString(); err != nil || s != "hello" {
		t.Fatalf("UnpackString = %q, %v", s, err)
	}
	if v, err := rb.UnpackBool(); err != nil || !v {
		t.Fatalf("UnpackBool = %v, %v", v, err)
	}
	if v, err := rb.UnpackBool(); err != nil || v {
		t.Fatalf("UnpackBool = %v, %v", v, err)
	}
	if rb.Remaining() != 0 {
		t.Fatalf("Remaining = %d", rb.Remaining())
	}
}

func TestBufferUnderflow(t *testing.T) {
	b := NewBuffer()
	b.PackInt(1)
	rb := NewBufferFrom(b.Bytes())
	if _, err := rb.UnpackInt(); err != nil {
		t.Fatal(err)
	}
	if _, err := rb.UnpackInt(); err != ErrBufferUnderflow {
		t.Fatalf("expected underflow, got %v", err)
	}
	if _, err := rb.UnpackFloat(); err != ErrBufferUnderflow {
		t.Fatalf("expected underflow, got %v", err)
	}
	if _, err := rb.UnpackString(); err != ErrBufferUnderflow {
		t.Fatalf("expected underflow, got %v", err)
	}
}

func TestBufferRewind(t *testing.T) {
	b := NewBuffer()
	b.PackInt(7)
	rb := NewBufferFrom(b.Bytes())
	if v, _ := rb.UnpackInt(); v != 7 {
		t.Fatal("first read failed")
	}
	rb.Rewind()
	if v, _ := rb.UnpackInt(); v != 7 {
		t.Fatal("read after Rewind failed")
	}
}

// Property: arbitrary sequences of packed values round-trip exactly.
func TestBufferRoundTripProperty(t *testing.T) {
	f := func(i int, fl float64, s string, fs []float64) bool {
		if math.IsNaN(fl) {
			return true
		}
		b := NewBuffer()
		b.PackInt(i)
		b.PackFloat(fl)
		b.PackString(s)
		b.PackFloats(fs)
		rb := NewBufferFrom(b.Bytes())
		gi, err1 := rb.UnpackInt()
		gf, err2 := rb.UnpackFloat()
		gs, err3 := rb.UnpackString()
		gfs, err4 := rb.UnpackFloats()
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		if gi != i || gf != fl || gs != s || len(gfs) != len(fs) {
			return false
		}
		for k := range fs {
			if gfs[k] != fs[k] && !(math.IsNaN(gfs[k]) && math.IsNaN(fs[k])) {
				return false
			}
		}
		return rb.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvBasic(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	go func() {
		b := NewBuffer()
		b.PackString("ping")
		w.Comm(0).Send(1, 5, b)
	}()
	m, err := w.Comm(1).Recv(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 0 || m.Tag != 5 {
		t.Fatalf("From/Tag = %d/%d", m.From, m.Tag)
	}
	if s, _ := m.Buf.UnpackString(); s != "ping" {
		t.Fatalf("payload = %q", s)
	}
}

func TestRecvWildcards(t *testing.T) {
	w := NewWorld(3)
	defer w.Close()
	b := NewBuffer()
	b.PackInt(9)
	if err := w.Comm(2).Send(0, 7, b); err != nil {
		t.Fatal(err)
	}
	m, err := w.Comm(0).Recv(AnySource, AnyTag)
	if err != nil {
		t.Fatal(err)
	}
	if m.From != 2 || m.Tag != 7 {
		t.Fatalf("wildcard recv got From=%d Tag=%d", m.From, m.Tag)
	}
}

func TestRecvTagFiltering(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)
	bA := NewBuffer()
	bA.PackInt(1)
	bB := NewBuffer()
	bB.PackInt(2)
	c0.Send(1, 10, bA)
	c0.Send(1, 20, bB)
	// Receive tag 20 first even though tag 10 arrived earlier.
	m, err := c1.Recv(AnySource, 20)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Buf.UnpackInt(); v != 2 {
		t.Fatalf("tag-20 payload = %d, want 2", v)
	}
	m, err = c1.Recv(AnySource, 10)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Buf.UnpackInt(); v != 1 {
		t.Fatalf("tag-10 payload = %d, want 1", v)
	}
}

func TestPairwiseOrdering(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	const n = 100
	for i := 0; i < n; i++ {
		b := NewBuffer()
		b.PackInt(i)
		if err := w.Comm(0).Send(1, 1, b); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		m, err := w.Comm(1).Recv(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v, _ := m.Buf.UnpackInt(); v != i {
			t.Fatalf("out of order: got %d at position %d", v, i)
		}
	}
}

func TestSendPayloadIsolation(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	b := NewBuffer()
	b.PackInt(5)
	if err := w.Comm(0).Send(1, 1, b); err != nil {
		t.Fatal(err)
	}
	b.PackInt(6) // mutate after send; receiver must still see only the first int
	m, err := w.Comm(1).Recv(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.Buf.Len() != 8 {
		t.Fatalf("received %d bytes, want 8 (send must copy)", m.Buf.Len())
	}
}

func TestCloseUnblocksReceivers(t *testing.T) {
	w := NewWorld(2)
	done := make(chan error, 1)
	go func() {
		_, err := w.Comm(1).Recv(AnySource, AnyTag)
		done <- err
	}()
	w.Close()
	if err := <-done; err != ErrClosed {
		t.Fatalf("blocked Recv returned %v, want ErrClosed", err)
	}
	if err := w.Comm(0).Send(1, 1, NewBuffer()); err != ErrClosed {
		t.Fatalf("Send after Close returned %v, want ErrClosed", err)
	}
}

func TestTryRecv(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	if _, ok, err := w.Comm(1).TryRecv(AnySource, AnyTag); ok || err != nil {
		t.Fatalf("TryRecv on empty box: ok=%v err=%v", ok, err)
	}
	b := NewBuffer()
	b.PackInt(3)
	w.Comm(0).Send(1, 2, b)
	m, ok, err := w.Comm(1).TryRecv(0, 2)
	if !ok || err != nil {
		t.Fatalf("TryRecv: ok=%v err=%v", ok, err)
	}
	if v, _ := m.Buf.UnpackInt(); v != 3 {
		t.Fatalf("payload = %d", v)
	}
}

func TestInvalidRankAndTag(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	if err := w.Comm(0).Send(5, 1, NewBuffer()); err == nil {
		t.Fatal("send to invalid rank accepted")
	}
	if err := w.Comm(0).Send(1, -3, NewBuffer()); err == nil {
		t.Fatal("send with negative tag accepted")
	}
}

func TestCommPanicsOnBadRank(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Comm(9) did not panic")
		}
	}()
	w.Comm(9)
}

// Stress: many senders to one receiver; every message must arrive exactly
// once. Run with -race to exercise the locking.
func TestManyToOneDelivery(t *testing.T) {
	const senders = 8
	const perSender = 200
	w := NewWorld(senders + 1)
	defer w.Close()
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			c := w.Comm(rank)
			for i := 0; i < perSender; i++ {
				b := NewBuffer()
				b.PackInt(rank*1000000 + i)
				if err := c.Send(0, 1, b); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	seen := make(map[int]bool)
	c0 := w.Comm(0)
	for i := 0; i < senders*perSender; i++ {
		m, err := c0.Recv(AnySource, 1)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := m.Buf.UnpackInt()
		if seen[v] {
			t.Fatalf("duplicate message %d", v)
		}
		seen[v] = true
	}
	wg.Wait()
	if len(seen) != senders*perSender {
		t.Fatalf("got %d distinct messages, want %d", len(seen), senders*perSender)
	}
}
