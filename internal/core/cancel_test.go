package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

func TestOptimizeContextCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp := space(testfunc.Rosenbrock, 3, 10, 1)
	start := [][]float64{{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4}}
	res, err := OptimizeContext(ctx, sp, start, DefaultConfig(MN))
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "canceled" {
		t.Fatalf("Termination = %q, want canceled", res.Termination)
	}
	if res.Iterations != 0 {
		t.Fatalf("Iterations = %d, want 0", res.Iterations)
	}
}

func TestOptimizeContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sp := space(testfunc.Rosenbrock, 3, 50, 2)
	start := [][]float64{{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4}}
	cfg := DefaultConfig(PC)
	cfg.Tol = 0 // never converge; only the cancel can stop the run
	cfg.MaxWalltime = 0
	cfg.MaxIterations = 0
	cfg.Trace = func(ev TraceEvent) {
		if ev.Iter == 5 {
			cancel()
		}
	}
	res, err := OptimizeContext(ctx, sp, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "canceled" {
		t.Fatalf("Termination = %q, want canceled", res.Termination)
	}
	if res.Iterations < 5 {
		t.Fatalf("Iterations = %d, want >= 5", res.Iterations)
	}
	if len(res.BestX) != 3 {
		t.Fatalf("BestX = %v", res.BestX)
	}
}

// TestOptimizerBitwiseIdenticalAcrossWorkers is the end-to-end determinism
// contract: a full PC optimization through the concurrent batch path must
// return a Result bitwise identical to the serial path for the same seed.
func TestOptimizerBitwiseIdenticalAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		sp := sim.NewLocalSpace(sim.LocalConfig{
			Dim:      3,
			F:        testfunc.Rosenbrock,
			Sigma0:   sim.ConstSigma(25),
			Seed:     5,
			Parallel: true,
			Workers:  workers,
		})
		defer sp.Close()
		cfg := DefaultConfig(PC)
		cfg.MaxIterations = 60
		cfg.Tol = 0
		cfg.MaxWalltime = 0
		res, err := Optimize(sp, [][]float64{{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	for _, workers := range []int{2, 8} {
		if conc := run(workers); !reflect.DeepEqual(serial, conc) {
			t.Fatalf("Result differs between workers=1 and workers=%d:\nserial: %+v\nconc:   %+v", workers, serial, conc)
		}
	}
}

// failingSpace wraps a LocalSpace, failing every batch after a threshold and
// counting live (unclosed) points — the shape of an MW deployment with a
// dead worker, whose bounded rank pool deadlocks if vertices leak.
type failingSpace struct {
	*sim.LocalSpace
	batches int
	live    int
}

type trackedPoint struct {
	sim.Point
	sp *failingSpace
}

func (s *failingSpace) NewPoint(x []float64) sim.Point {
	s.live++
	return &trackedPoint{Point: s.LocalSpace.NewPoint(x), sp: s}
}

func (p *trackedPoint) Close() {
	p.sp.live--
	p.Point.Close()
}

func (s *failingSpace) SampleAll(points []sim.Point, dt float64) {
	if err := s.SampleBatch(context.Background(), points, dt); err != nil {
		panic(err)
	}
}

func (s *failingSpace) SampleBatch(ctx context.Context, points []sim.Point, dt float64) error {
	s.batches++
	if s.batches > 6 {
		return errSimulatedWorker
	}
	inner := make([]sim.Point, len(points))
	for i, p := range points {
		inner[i] = p.(*trackedPoint).Point
	}
	return s.LocalSpace.SampleBatch(ctx, inner, dt)
}

var errSimulatedWorker = errors.New("core test: simulated dead worker")

// TestBackendErrorClosesAllPoints pins the cleanup contract on mid-run
// backend failures: Optimize must close every point it created (on an MW
// space each Close releases a vertex worker rank; leaking them deadlocks the
// next run on the space).
func TestBackendErrorClosesAllPoints(t *testing.T) {
	fs := &failingSpace{LocalSpace: space(testfunc.Rosenbrock, 3, 10, 1)}
	cfg := DefaultConfig(DET)
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	_, err := Optimize(fs, [][]float64{{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4}}, cfg)
	if err == nil {
		t.Fatal("Optimize succeeded despite failing backend")
	}
	if fs.live != 0 {
		t.Fatalf("%d points left unclosed after backend error", fs.live)
	}
}
