package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

func space(f func([]float64) float64, dim int, sigma float64, seed int64) *sim.LocalSpace {
	return sim.NewLocalSpace(sim.LocalConfig{
		Dim:      dim,
		F:        f,
		Sigma0:   sim.ConstSigma(sigma),
		Seed:     seed,
		Parallel: true,
	})
}

// initSimplex builds d+1 vertices uniformly in [lo, hi) per coordinate.
func initSimplex(d int, lo, hi float64, rng *rand.Rand) [][]float64 {
	s := make([][]float64, d+1)
	for i := range s {
		s[i] = make([]float64, d)
		for j := range s[i] {
			s[i][j] = lo + (hi-lo)*rng.Float64()
		}
	}
	return s
}

func TestDETNoiselessSphere(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 1)
	cfg := DefaultConfig(DET)
	cfg.Tol = 1e-10
	res, err := Optimize(sp, [][]float64{{3, 3}, {4, 3}, {3, 4}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "tolerance" {
		t.Fatalf("termination = %q, want tolerance", res.Termination)
	}
	if d := testfunc.Dist(res.BestX, []float64{0, 0}); d > 1e-3 {
		t.Fatalf("DET sphere: best %v too far from origin (d=%v)", res.BestX, d)
	}
}

func TestDETNoiselessRosenbrock(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 2, 0, 1)
	cfg := DefaultConfig(DET)
	cfg.Tol = 1e-12
	res, err := Optimize(sp, [][]float64{{-1.2, 1}, {-1, 1.2}, {-0.8, 0.8}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := testfunc.Rosenbrock(res.BestX); f > 1e-4 {
		t.Fatalf("DET rosenbrock: f(best) = %v at %v, want near 0", f, res.BestX)
	}
}

func TestAllAlgorithmsRunOnNoisyRosenbrock(t *testing.T) {
	for _, alg := range []Algorithm{DET, MN, PC, PCMN, AndersonNM} {
		alg := alg
		t.Run(alg.String(), func(t *testing.T) {
			sp := space(testfunc.Rosenbrock, 3, 10, 42)
			cfg := DefaultConfig(alg)
			cfg.MaxWalltime = 5e4
			cfg.Tol = 1e-3
			rng := rand.New(rand.NewSource(7))
			res, err := Optimize(sp, initSimplex(3, -2, 2, rng), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Iterations == 0 {
				t.Fatal("no iterations performed")
			}
			if res.Termination == "" {
				t.Fatal("empty termination reason")
			}
			if len(res.BestX) != 3 {
				t.Fatalf("BestX dimension %d", len(res.BestX))
			}
			// The run must improve on the worst starting point.
			if f := testfunc.Rosenbrock(res.BestX); f > 1e6 {
				t.Fatalf("f(best) = %v: no progress at all", f)
			}
		})
	}
}

// MN must track the true minimum substantially better than DET under heavy
// noise: this is Fig 3.5a's headline claim. Aggregate over seeds to avoid
// flakiness.
func TestMNBeatsDETUnderHeavyNoise(t *testing.T) {
	const trials = 12
	var detErr, mnErr float64
	for s := int64(0); s < trials; s++ {
		rng := rand.New(rand.NewSource(1000 + s))
		start := initSimplex(3, -2, 2, rng)

		run := func(alg Algorithm) float64 {
			sp := space(testfunc.Rosenbrock, 3, 1000, 500+s)
			cfg := DefaultConfig(alg)
			cfg.MaxWalltime = 2e4
			cfg.Tol = 0 // run to the time budget
			res, err := Optimize(sp, start, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return testfunc.Rosenbrock(res.BestX)
		}
		detErr += math.Log10(run(DET) + 1e-12)
		mnErr += math.Log10(run(MN) + 1e-12)
	}
	if mnErr >= detErr {
		t.Fatalf("MN mean log-error %.3f not better than DET %.3f", mnErr/trials, detErr/trials)
	}
}

func TestTerminationWalltime(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 3, 1000, 3)
	cfg := DefaultConfig(PC)
	cfg.MaxWalltime = 100
	cfg.Tol = 0
	rng := rand.New(rand.NewSource(1))
	res, err := Optimize(sp, initSimplex(3, -2, 2, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "walltime" {
		t.Fatalf("termination = %q, want walltime", res.Termination)
	}
}

func TestTerminationIterations(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 3, 0, 3)
	cfg := DefaultConfig(DET)
	cfg.Tol = 0
	cfg.MaxIterations = 5
	cfg.MaxWalltime = 0
	rng := rand.New(rand.NewSource(2))
	res, err := Optimize(sp, initSimplex(3, -2, 2, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "iterations" || res.Iterations != 5 {
		t.Fatalf("got %q after %d iters, want iterations after 5", res.Termination, res.Iterations)
	}
}

func TestTerminationToleranceImmediate(t *testing.T) {
	// A simplex whose vertices all have the same value terminates at once.
	sp := space(func(x []float64) float64 { return 7 }, 2, 0, 1)
	cfg := DefaultConfig(DET)
	res, err := Optimize(sp, [][]float64{{0, 0}, {1, 0}, {0, 1}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "tolerance" || res.Iterations != 0 {
		t.Fatalf("got %q after %d iters, want tolerance after 0", res.Termination, res.Iterations)
	}
}

func TestInitialSimplexValidation(t *testing.T) {
	sp := space(testfunc.Sphere, 3, 0, 1)
	cfg := DefaultConfig(DET)
	if _, err := Optimize(sp, [][]float64{{0, 0, 0}}, cfg); err == nil {
		t.Fatal("expected error for wrong vertex count")
	}
	if _, err := Optimize(sp, [][]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}}, cfg); err == nil {
		t.Fatal("expected error for wrong vertex dimension")
	}
}

func TestConfigValidation(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 1)
	start := [][]float64{{0, 0}, {1, 0}, {0, 1}}
	bad := []func(*Config){
		func(c *Config) { c.InitialSample = 0 },
		func(c *Config) { c.Resample = -1 },
		func(c *Config) { c.ResampleGrowth = 0.5 },
		func(c *Config) { c.Tol = -1 },
		func(c *Config) { c.MaxWaitRounds = 0 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(DET)
		mutate(&cfg)
		if _, err := Optimize(sp, start, cfg); err == nil {
			t.Errorf("mutation %d: expected config validation error", i)
		}
	}
	cfgPC := DefaultConfig(PC)
	cfgPC.K = 0
	if _, err := Optimize(sp, start, cfgPC); err == nil {
		t.Error("PC with K=0 accepted")
	}
	cfgMN := DefaultConfig(MN)
	cfgMN.MNK = 0
	if _, err := Optimize(sp, start, cfgMN); err == nil {
		t.Error("MN with MNK=0 accepted")
	}
	cfgA := DefaultConfig(AndersonNM)
	cfgA.K1 = 0
	if _, err := Optimize(sp, start, cfgA); err == nil {
		t.Error("AndersonNM with K1=0 accepted")
	}
}

func TestForcedDecisionsUnderTinyWaitCap(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 3, 1000, 9)
	cfg := DefaultConfig(PC)
	cfg.MaxWaitRounds = 1
	cfg.MaxIterations = 50
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	rng := rand.New(rand.NewSource(4))
	res, err := Optimize(sp, initSimplex(3, -2, 2, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ForcedDecisions == 0 {
		t.Fatal("expected some forced decisions with MaxWaitRounds=1 under heavy noise")
	}
}

func TestMoveStatsAccounting(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 2, 0, 1)
	cfg := DefaultConfig(DET)
	cfg.Tol = 1e-10
	res, err := Optimize(sp, [][]float64{{-1.2, 1}, {-1, 1.2}, {-0.8, 0.8}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := res.Moves.Reflections + res.Moves.Expansions + res.Moves.Contractions + res.Moves.Collapses
	if total != res.Iterations {
		t.Fatalf("moves total %d != iterations %d", total, res.Iterations)
	}
}

func TestContractionLevelTracking(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 1)
	cfg := DefaultConfig(DET)
	cfg.Tol = 1e-10
	res, err := Optimize(sp, [][]float64{{10, 10}, {11, 10}, {10, 11}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := res.Moves.Contractions - res.Moves.Expansions + 2*res.Moves.Collapses
	if res.ContractionLevel != want {
		t.Fatalf("contraction level %d, want %d (C=%d E=%d X=%d)",
			res.ContractionLevel, want, res.Moves.Contractions, res.Moves.Expansions, res.Moves.Collapses)
	}
}

func TestTraceEmission(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 1)
	cfg := DefaultConfig(DET)
	cfg.MaxIterations = 10
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	var events []TraceEvent
	cfg.Trace = func(e TraceEvent) { events = append(events, e) }
	if _, err := Optimize(sp, [][]float64{{3, 3}, {4, 3}, {3, 4}}, cfg); err != nil {
		t.Fatal(err)
	}
	if len(events) != 10 {
		t.Fatalf("got %d trace events, want 10", len(events))
	}
	for i, e := range events {
		if e.Iter != i+1 {
			t.Fatalf("event %d has Iter %d", i, e.Iter)
		}
		if i > 0 && e.Time < events[i-1].Time {
			t.Fatal("trace time went backwards")
		}
		if math.IsNaN(e.BestUnderlying) {
			t.Fatal("LocalSpace should expose underlying values")
		}
	}
}

func TestStepOverheadAdvancesClock(t *testing.T) {
	run := func(overhead float64) float64 {
		sp := space(testfunc.Sphere, 2, 0, 1)
		cfg := DefaultConfig(DET)
		cfg.MaxIterations = 5
		cfg.Tol = 0
		cfg.MaxWalltime = 0
		cfg.OverheadBase = overhead
		res, err := Optimize(sp, [][]float64{{3, 3}, {4, 3}, {3, 4}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Walltime
	}
	without := run(0)
	with := run(10)
	if diff := with - without; math.Abs(diff-50) > 1e-9 {
		t.Fatalf("overhead contribution = %v, want 50", diff)
	}
}

func TestConditionMask(t *testing.T) {
	m := Conditions(1, 3, 6)
	for n := 1; n <= 7; n++ {
		want := n == 1 || n == 3 || n == 6
		if m.Has(n) != want {
			t.Errorf("Has(%d) = %v, want %v", n, m.Has(n), want)
		}
	}
	if m.String() != "c136" {
		t.Errorf("String() = %q, want c136", m.String())
	}
	if AllConditions.String() != "c1-7" {
		t.Errorf("AllConditions.String() = %q", AllConditions.String())
	}
	if Conditions().String() != "c(none)" {
		t.Errorf("empty mask String() = %q", Conditions().String())
	}
}

func TestConditionMaskPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Conditions(8) did not panic")
		}
	}()
	Conditions(8)
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]Algorithm{
		"det": DET, "DET": DET, "mn": MN, "pc": PC,
		"pc+mn": PCMN, "pcmn": PCMN, "anderson": AndersonNM,
	}
	for s, want := range cases {
		got, err := ParseAlgorithm(s)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("bogus"); err == nil {
		t.Error("ParseAlgorithm accepted bogus name")
	}
}

func TestAlgorithmString(t *testing.T) {
	for _, c := range []struct {
		a Algorithm
		s string
	}{{DET, "DET"}, {MN, "MN"}, {PC, "PC"}, {PCMN, "PC+MN"}, {AndersonNM, "AndersonNM"}} {
		if c.a.String() != c.s {
			t.Errorf("%d.String() = %q, want %q", int(c.a), c.a.String(), c.s)
		}
	}
}

func TestMoveString(t *testing.T) {
	moves := map[Move]string{
		MoveNone: "none", MoveReflect: "reflect", MoveExpand: "expand",
		MoveContract: "contract", MoveCollapse: "collapse",
	}
	for m, s := range moves {
		if m.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), s)
		}
	}
}

// Property: for any seed and algorithm, results satisfy structural
// invariants — best value equals the minimum of the final vertex values, the
// final simplex has d+1 vertices of dimension d, walltime is non-negative.
func TestResultInvariantsProperty(t *testing.T) {
	algs := []Algorithm{DET, MN, PC, PCMN, AndersonNM}
	f := func(seed int64, algPick uint8) bool {
		alg := algs[int(algPick)%len(algs)]
		rng := rand.New(rand.NewSource(seed))
		sp := space(testfunc.Rosenbrock, 3, 50, seed)
		cfg := DefaultConfig(alg)
		cfg.MaxIterations = 60
		cfg.MaxWalltime = 1e4
		cfg.Tol = 1e-3
		res, err := Optimize(sp, initSimplex(3, -3, 3, rng), cfg)
		if err != nil {
			return false
		}
		if len(res.FinalSimplex) != 4 || len(res.FinalValues) != 4 {
			return false
		}
		minV := math.Inf(1)
		for _, v := range res.FinalValues {
			if v < minV {
				minV = v
			}
		}
		if res.BestG != minV {
			return false
		}
		for _, v := range res.FinalSimplex {
			if len(v) != 3 {
				return false
			}
		}
		return res.Walltime >= 0 && res.Termination != ""
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// The geometric helpers must satisfy their defining identities.
func TestGeometryHelpersProperty(t *testing.T) {
	f := func(a, b [4]float64) bool {
		cent, xmax := a[:], b[:]
		ref := reflectPoint(cent, xmax)
		exp := expandPoint(ref, cent)
		con := contractPoint(xmax, cent)
		for i := range cent {
			if math.IsNaN(cent[i]) || math.Abs(cent[i]) > 1e100 ||
				math.IsNaN(xmax[i]) || math.Abs(xmax[i]) > 1e100 {
				return true
			}
			// ref - cent == cent - xmax (reflection through centroid)
			if math.Abs((ref[i]-cent[i])-(cent[i]-xmax[i])) > 1e-6*(1+math.Abs(cent[i])+math.Abs(xmax[i])) {
				return false
			}
			// exp == 2*ref - cent
			if math.Abs(exp[i]-(2*ref[i]-cent[i])) > 1e-6*(1+math.Abs(ref[i])+math.Abs(cent[i])) {
				return false
			}
			// con is the midpoint of xmax and cent
			if math.Abs(con[i]-(xmax[i]+cent[i])/2) > 1e-6*(1+math.Abs(cent[i])+math.Abs(xmax[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// PC with no error bars must behave exactly like a mean-based comparison:
// no resample rounds are ever needed at the c1/c5 stage because the two
// conditions are complements.
func TestPCNoErrorBarsNeverResamples(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 3, 100, 21)
	cfg := DefaultConfig(PC)
	cfg.ErrorBars = Conditions() // none
	cfg.MaxIterations = 100
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	rng := rand.New(rand.NewSource(6))
	res, err := Optimize(sp, initSimplex(3, -2, 2, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResampleRounds != 0 {
		t.Fatalf("PC without error bars resampled %d times", res.ResampleRounds)
	}
}

// PC with error bars on all conditions must spend sampling effort resolving
// comparisons under heavy noise.
func TestPCAllErrorBarsResamples(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 3, 1000, 22)
	cfg := DefaultConfig(PC)
	cfg.MaxIterations = 50
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	rng := rand.New(rand.NewSource(6))
	res, err := Optimize(sp, initSimplex(3, -2, 2, rng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ResampleRounds == 0 {
		t.Fatal("PC with error bars never resampled under heavy noise")
	}
}

// PCMN imposes the max-noise gate on top of the PC conditions (Algorithm 4):
// it must spend wait rounds that plain PC never does, and its per-step
// sampling investment (evaluations per iteration) must be at least PC's.
func TestPCMNStricterThanPC(t *testing.T) {
	var pcEvalsPerStep, pcmnEvalsPerStep float64
	var pcWaits, pcmnWaits int
	for s := int64(0); s < 6; s++ {
		rng := rand.New(rand.NewSource(3000 + s))
		start := initSimplex(4, -5, 5, rng)
		run := func(alg Algorithm) *Result {
			sp := space(testfunc.Rosenbrock, 4, 1000, 800+s)
			cfg := DefaultConfig(alg)
			cfg.MaxWalltime = 3e4
			cfg.Tol = 0
			res, err := Optimize(sp, start, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		pc := run(PC)
		pcmn := run(PCMN)
		pcEvalsPerStep += float64(pc.Evaluations) / float64(pc.Iterations)
		pcmnEvalsPerStep += float64(pcmn.Evaluations) / float64(pcmn.Iterations)
		pcWaits += pc.WaitRounds
		pcmnWaits += pcmn.WaitRounds
	}
	if pcWaits != 0 {
		t.Fatalf("plain PC recorded %d max-noise wait rounds", pcWaits)
	}
	if pcmnWaits == 0 {
		t.Fatal("PC+MN never engaged the max-noise gate")
	}
	if pcmnEvalsPerStep <= pcEvalsPerStep {
		t.Fatalf("PC+MN sampling per step %.1f not above PC's %.1f",
			pcmnEvalsPerStep/6, pcEvalsPerStep/6)
	}
}
