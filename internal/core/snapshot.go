package core

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/sim"
)

// SnapshotVersion identifies the serialized snapshot layout. Bump it when a
// field changes incompatibly; Resume refuses snapshots from other versions.
const SnapshotVersion = 1

// Snapshot is the complete serializable state of an optimization run at a
// simplex-iteration boundary: the simplex coordinates, every vertex's
// accumulated sampling estimate and RNG stream identity, the contraction
// level, the effort counters, the virtual clock, and (for restarted runs)
// the restart-leg state. Together with the original Config and the space's
// construction parameters — which are code, not data, and are re-supplied on
// resume — it makes a killed run resumable bitwise-deterministically.
//
// Snapshots are taken only between iterations, when no trial points are
// live: the paper keeps evaluations "active on each of the d+1 vertices", so
// d+1 vertex states are exactly the live sampling state.
type Snapshot struct {
	// Version is the snapshot layout version (SnapshotVersion).
	Version int `json:"version"`
	// Dim is the parameter-space dimension, a resume-time consistency check.
	Dim int `json:"dim"`
	// Iterations is the number of completed simplex steps.
	Iterations int `json:"iterations"`
	// Level is the contraction level l (section 2.2).
	Level int `json:"level"`
	// LastMove is the transformation applied in the latest iteration.
	LastMove Move `json:"last_move"`
	// Start is the virtual-clock reading at the start of the run, so the
	// walltime budget resumes where it left off.
	Start float64 `json:"start"`
	// Moves, WaitRounds, ResampleRounds and ForcedDecisions are the effort
	// counters accumulated so far.
	Moves           MoveStats `json:"moves"`
	WaitRounds      int       `json:"wait_rounds"`
	ResampleRounds  int       `json:"resample_rounds"`
	ForcedDecisions int       `json:"forced_decisions"`
	// AdaptiveFloor and AdaptiveRounds are the variance-adaptive sampling
	// state: the learned initial allotment for fresh points and the growth
	// rounds spent so far. Recording them matters especially for snapshots
	// taken mid-restart-leg — without them a resumed run would re-grow the
	// allotment from Config.InitialSample and diverge from the
	// uninterrupted run. Zero AdaptiveFloor (a pre-adaptive snapshot) means
	// "start from Config.InitialSample".
	AdaptiveFloor  float64 `json:"adaptive_floor,omitempty"`
	AdaptiveRounds int     `json:"adaptive_rounds,omitempty"`
	// SpeculativeWaste is the count of discarded speculative candidate
	// evaluations accumulated so far.
	SpeculativeWaste int `json:"speculative_waste,omitempty"`
	// Space is the sampling backend's serializable state.
	Space sim.SpaceState `json:"space"`
	// Verts holds the d+1 vertex states in simplex order.
	Verts []sim.PointState `json:"verts"`
	// Restart, when the run is a leg of OptimizeWithRestarts, records which
	// leg and the accumulated cross-leg state. Nil for plain runs.
	Restart *RestartState `json:"restart,omitempty"`
}

// RestartState is the cross-leg state of an OptimizeWithRestarts run: which
// leg the snapshot belongs to and the totals accumulated from completed legs.
type RestartState struct {
	// Leg is 0 for the initial run, 1..Restarts for the restart legs.
	Leg int `json:"leg"`
	// Scale holds the simplex edge lengths the current leg was built with.
	Scale []float64 `json:"scale"`
	// Best is the best Result over completed legs (nil during leg 0).
	Best *Result `json:"best,omitempty"`
	// Total is the accumulated effort over completed legs (nil during leg 0).
	Total *Result `json:"total,omitempty"`
}

// MarshalBinary is the canonical serialization used by the jobs layer. Go's
// float64 JSON encoding round-trips exactly, so decode(encode(s)) preserves
// bitwise determinism.
func (s *Snapshot) MarshalBinary() ([]byte, error) { return json.Marshal(s) }

// UnmarshalBinary decodes a snapshot serialized by MarshalBinary.
func (s *Snapshot) UnmarshalBinary(data []byte) error { return json.Unmarshal(data, s) }

// snapshot exports the optimizer's state. Called only at iteration
// boundaries (o.trials empty).
func (o *optimizer) snapshot() (*Snapshot, error) {
	snapper, ok := o.space.(sim.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("core: space %T does not support snapshots", o.space)
	}
	s := &Snapshot{
		Version:          SnapshotVersion,
		Dim:              o.d,
		Iterations:       o.res.Iterations,
		Level:            o.level,
		LastMove:         o.lastMove,
		Start:            o.start,
		Moves:            o.res.Moves,
		WaitRounds:       o.res.WaitRounds,
		ResampleRounds:   o.res.ResampleRounds,
		ForcedDecisions:  o.res.ForcedDecisions,
		AdaptiveFloor:    o.adaptiveFloor,
		AdaptiveRounds:   o.res.AdaptiveRounds,
		SpeculativeWaste: o.res.SpeculativeWaste,
		Space:            snapper.ExportState(),
		Verts:            make([]sim.PointState, len(o.verts)),
	}
	for i, v := range o.verts {
		ps, err := snapper.ExportPoint(v)
		if err != nil {
			return nil, err
		}
		s.Verts[i] = ps
	}
	return s, nil
}

// emitCheckpoint invokes the Checkpoint callback when one is due.
func (o *optimizer) emitCheckpoint() error {
	if o.cfg.Checkpoint == nil {
		return nil
	}
	every := o.cfg.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	if o.res.Iterations%every != 0 {
		return nil
	}
	snap, err := o.snapshot()
	if err != nil {
		return err
	}
	o.cfg.Checkpoint(snap)
	return nil
}

// Resume continues an optimization from a snapshot. See ResumeContext.
func Resume(space sim.Space, snap *Snapshot, cfg Config) (*Result, error) {
	return ResumeContext(context.Background(), space, snap, cfg)
}

// ResumeContext rebuilds the optimizer from a snapshot on a freshly
// constructed space and continues the run. The space must be built from the
// same construction parameters (objective, noise law, seed) the snapshotted
// run used and must implement sim.Snapshotter; cfg must be the run's
// original Config (callbacks may differ — they are not part of the state).
// The resumed run is bitwise identical to the uninterrupted one: every
// vertex's noise stream is fast-forwarded to its recorded position, the
// virtual clock and effort counters continue where they stopped, and future
// point creations draw the same stream seeds they would have drawn.
func ResumeContext(ctx context.Context, space sim.Space, snap *Snapshot, cfg Config) (*Result, error) {
	d := space.Dim()
	if err := cfg.validate(d); err != nil {
		return nil, err
	}
	if err := checkSnapshot(snap, d); err != nil {
		return nil, err
	}
	snapper, ok := space.(sim.Snapshotter)
	if !ok {
		return nil, fmt.Errorf("core: space %T does not support snapshots", space)
	}
	if err := checkSpeculative(space, cfg); err != nil {
		return nil, err
	}
	if err := snapper.RestoreState(snap.Space); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	o := &optimizer{space: space, cfg: cfg, d: d, clock: space.Clock(), ctx: ctx}
	o.start = snap.Start
	o.level = snap.Level
	o.lastMove = snap.LastMove
	o.res.Iterations = snap.Iterations
	o.res.Moves = snap.Moves
	o.res.WaitRounds = snap.WaitRounds
	o.res.ResampleRounds = snap.ResampleRounds
	o.res.ForcedDecisions = snap.ForcedDecisions
	o.res.AdaptiveRounds = snap.AdaptiveRounds
	o.res.SpeculativeWaste = snap.SpeculativeWaste
	// Pre-adaptive snapshots (AdaptiveFloor zero) start from the config
	// floor, exactly as a fresh run would.
	o.adaptiveFloor = snap.AdaptiveFloor
	if o.adaptiveFloor <= 0 {
		o.adaptiveFloor = cfg.InitialSample
	}
	o.verts = make([]sim.Point, len(snap.Verts))
	for i, ps := range snap.Verts {
		p, err := snapper.RestorePoint(ps)
		if err != nil {
			for _, q := range o.verts[:i] {
				q.Close()
			}
			return nil, err
		}
		o.verts[i] = p
	}
	return o.run()
}

// checkSnapshot validates the invariants Resume relies on.
func checkSnapshot(snap *Snapshot, d int) error {
	if snap == nil {
		return fmt.Errorf("core: nil snapshot")
	}
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	if snap.Dim != d {
		return fmt.Errorf("core: snapshot dimension %d, space dimension %d", snap.Dim, d)
	}
	if len(snap.Verts) != d+1 {
		return fmt.Errorf("core: snapshot has %d vertices, want d+1 = %d", len(snap.Verts), d+1)
	}
	return nil
}
