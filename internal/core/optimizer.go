package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// Optimizer metrics (obs registry): iteration throughput, the simplex
// move mix, and discarded speculative evaluations. Move counters are
// indexed by Move so the per-iteration cost is two atomic adds.
var (
	mIterations = obs.Default().Counter("core_iterations_total",
		"simplex iterations completed across all runs")
	mMoves = [...]*obs.Counter{
		MoveNone:     obs.Default().Counter(`core_moves_total{move="none"}`, "iterations by applied simplex transformation"),
		MoveReflect:  obs.Default().Counter(`core_moves_total{move="reflect"}`),
		MoveExpand:   obs.Default().Counter(`core_moves_total{move="expand"}`),
		MoveContract: obs.Default().Counter(`core_moves_total{move="contract"}`),
		MoveCollapse: obs.Default().Counter(`core_moves_total{move="collapse"}`),
	}
	mSpecWaste = obs.Default().Counter("core_speculative_waste_total",
		"prefetched speculative candidate evaluations discarded unused")
)

// Optimize runs the configured stochastic simplex on the given space starting
// from the provided initial simplex (d+1 vertices of dimension d). The
// initial simplex is the one piece of human input the paper deliberately does
// not automate ("the total cost of the optimization can depend dramatically
// on the initial state of the simplex").
func Optimize(space sim.Space, initial [][]float64, cfg Config) (*Result, error) {
	return OptimizeContext(context.Background(), space, initial, cfg)
}

// OptimizeContext is Optimize with cancellation: every sampling batch is
// dispatched through the space's concurrent path (sim.BatchSampler) under
// ctx. Cancellation is a termination criterion, not an error — the run stops
// within one sampling round, the in-progress iteration is abandoned, and the
// returned Result reports Termination "canceled" with the best vertex found
// so far.
func OptimizeContext(ctx context.Context, space sim.Space, initial [][]float64, cfg Config) (*Result, error) {
	d := space.Dim()
	if err := cfg.validate(d); err != nil {
		return nil, err
	}
	if len(initial) != d+1 {
		return nil, fmt.Errorf("core: initial simplex has %d vertices, want d+1 = %d", len(initial), d+1)
	}
	for i, v := range initial {
		if len(v) != d {
			return nil, fmt.Errorf("core: initial vertex %d has dimension %d, want %d", i, len(v), d)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Checkpoint != nil {
		if _, ok := space.(sim.Snapshotter); !ok {
			return nil, fmt.Errorf("core: Config.Checkpoint set but space %T does not implement sim.Snapshotter", space)
		}
	}
	if err := checkSpeculative(space, cfg); err != nil {
		return nil, err
	}
	o := &optimizer{space: space, cfg: cfg, d: d, clock: space.Clock(), ctx: ctx}
	o.start = o.clock.Now()
	o.adaptiveFloor = cfg.InitialSample
	o.verts = make([]sim.Point, d+1)
	for i, v := range initial {
		o.verts[i] = space.NewPoint(v)
	}
	// All initial vertices sample concurrently: the MW deployment keeps one
	// worker per vertex busy from the start (section 3.1).
	if err := o.sampleFresh(o.verts, nil); err != nil && o.term == "" {
		o.finish()
		return nil, err
	}
	return o.run()
}

type optimizer struct {
	space sim.Space
	cfg   Config
	d     int
	clock *vtime.Clock
	ctx   context.Context
	start float64

	verts    []sim.Point // d+1 simplex vertices
	trials   []sim.Point // live trial points (reflection/expansion/contraction)
	level    int         // contraction level l (section 2.2)
	lastMove Move        // transformation applied in the latest iteration

	// adaptiveFloor is the current initial-sampling allotment for fresh
	// points under Config.AdaptiveSamples: it starts at InitialSample and is
	// raised to the largest total sampling time a fresh point needed to meet
	// the confidence half-width, so later points receive the learned
	// allotment up front instead of re-growing from the floor. It is part
	// of the snapshot state (Snapshot.AdaptiveFloor).
	adaptiveFloor float64

	res  Result
	term string
}

// run drives the main loop. Each pass is one simplex iteration.
func (o *optimizer) run() (*Result, error) {
	for {
		if o.checkTermination() {
			break
		}
		var err error
		switch o.cfg.Algorithm {
		case DET:
			err = o.stepNM(waitNone)
		case MN:
			err = o.stepNM(waitMaxNoise)
		case AndersonNM:
			err = o.stepNM(waitAnderson)
		case PC:
			err = o.stepPC(false)
		case PCMN:
			err = o.stepPC(true)
		default:
			err = errors.New("core: unknown algorithm")
		}
		if err != nil {
			if o.term == "canceled" {
				// Cancellation surfaced mid-iteration: the step abandoned its
				// move; report what was found so far.
				break
			}
			// A backend failure (e.g. a dead MW worker) aborts the run; the
			// steps closed their trial points, finish closes the vertices so
			// their worker ranks are released for the next run on the space.
			o.finish()
			return nil, err
		}
		o.res.Iterations++
		mIterations.Inc()
		if int(o.lastMove) < len(mMoves) {
			mMoves[o.lastMove].Inc()
		}
		o.stepOverhead()
		o.emitTrace()
		if err := o.emitCheckpoint(); err != nil {
			o.finish()
			return nil, err
		}
	}
	o.finish()
	return &o.res, nil
}

// sampleAll dispatches one concurrent sampling batch under the run context.
// On cancellation it records the "canceled" termination; any other error
// (a failed backend worker) is passed through for the caller to propagate.
func (o *optimizer) sampleAll(points []sim.Point, dt float64) error {
	err := sim.SampleBatch(o.ctx, o.space, points, dt)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		o.term = "canceled"
	}
	return err
}

// sampleFresh gives a batch of freshly created points their initial
// allotment: the fixed InitialSample, or — under Config.AdaptiveSamples —
// variance-adaptive growth from the current adaptive floor until every point
// meets the confidence half-width. rank, when non-nil, orders the dispatch of
// the first batch (the speculative step ranks candidates by how likely they
// are to be consumed).
func (o *optimizer) sampleFresh(points []sim.Point, rank func(i int) int) error {
	if !o.cfg.AdaptiveSamples {
		err := sim.SampleBatchRanked(o.ctx, o.space, points, o.cfg.InitialSample, rank)
		if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			o.term = "canceled"
		}
		return err
	}
	maxRounds := o.cfg.AdaptiveMaxRounds
	if maxRounds <= 0 {
		maxRounds = o.cfg.MaxWaitRounds
	}
	plan := sim.AdaptivePlan{
		HalfWidth: o.cfg.AdaptiveHalfWidth,
		Z:         o.cfg.AdaptiveZ,
		Grow:      o.cfg.ResampleGrowth,
		MaxRounds: maxRounds,
		Clamp:     o.clampDt,
	}
	dt0 := o.clampDt(o.adaptiveFloor)
	if dt0 <= 0 {
		dt0 = o.cfg.InitialSample // budget exhausted: minimal allotment, termination will fire
	}
	rounds, err := sim.SampleAdaptive(o.ctx, o.space, points, dt0, plan, rank)
	o.res.AdaptiveRounds += rounds
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			o.term = "canceled"
		}
		return err
	}
	// Raise the floor to the largest total allotment a resolved point
	// needed, so the next fresh batch starts there instead of re-growing.
	for _, p := range points {
		if t := p.Estimate().Time; t > o.adaptiveFloor {
			o.adaptiveFloor = t
		}
	}
	return nil
}

func (o *optimizer) stepOverhead() {
	oh := o.cfg.OverheadBase + o.cfg.OverheadPerDim*float64(o.d)
	if oh > 0 {
		o.clock.Advance(oh)
	}
}

func (o *optimizer) elapsed() float64 { return o.clock.Now() - o.start }

// spread returns max_i |g_i - g_min| over the current estimates (eq 2.9).
func (o *optimizer) spread() float64 {
	min := math.Inf(1)
	max := math.Inf(-1)
	for _, v := range o.verts {
		g := v.Estimate().Mean
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	return max - min
}

func (o *optimizer) checkTermination() bool {
	if o.term != "" {
		return true
	}
	switch {
	case o.ctx.Err() != nil:
		o.term = "canceled"
	case o.spread() <= o.cfg.Tol:
		o.term = "tolerance"
	case o.cfg.MaxWalltime > 0 && o.elapsed() >= o.cfg.MaxWalltime:
		o.term = "walltime"
	case o.cfg.MaxIterations > 0 && o.res.Iterations >= o.cfg.MaxIterations:
		o.term = "iterations"
	default:
		return false
	}
	return true
}

// overBudget reports whether the walltime budget is exhausted; used inside
// wait/resample loops so a stalled decision cannot run past the budget.
func (o *optimizer) overBudget() bool {
	return o.cfg.MaxWalltime > 0 && o.elapsed() >= o.cfg.MaxWalltime
}

// clampDt caps a sampling increment at the remaining walltime budget, so the
// geometrically growing resample rounds cannot overshoot MaxWalltime by more
// than one round's rounding. Returns 0 when no budget remains.
func (o *optimizer) clampDt(dt float64) float64 {
	if o.cfg.MaxWalltime <= 0 {
		return dt
	}
	rem := o.cfg.MaxWalltime - o.elapsed()
	if rem <= 0 {
		return 0
	}
	if dt > rem {
		return rem
	}
	return dt
}

// order returns the indices of the worst (imax), second-worst (ismax) and
// best (imin) vertices by current estimate.
func (o *optimizer) order() (imax, ismax, imin int) {
	n := len(o.verts)
	imax, imin = 0, 0
	for i := 1; i < n; i++ {
		gi := o.verts[i].Estimate().Mean
		if gi > o.verts[imax].Estimate().Mean {
			imax = i
		}
		if gi < o.verts[imin].Estimate().Mean {
			imin = i
		}
	}
	ismax = -1
	for i := 0; i < n; i++ {
		if i == imax {
			continue
		}
		if ismax == -1 || o.verts[i].Estimate().Mean > o.verts[ismax].Estimate().Mean {
			ismax = i
		}
	}
	if ismax == -1 {
		ismax = imin // degenerate d=1 simplex: second-worst is the best
	}
	return imax, ismax, imin
}

// centroid computes the centroid of all vertices except imax.
func (o *optimizer) centroid(imax int) []float64 {
	c := make([]float64, o.d)
	n := 0
	for i, v := range o.verts {
		if i == imax {
			continue
		}
		for j, xj := range v.X() {
			c[j] += xj
		}
		n++
	}
	for j := range c {
		c[j] /= float64(n)
	}
	return c
}

// affine returns a + t*(b-a) evaluated per coordinate as (1-t)*a + t*b.
func affine(a, b []float64, t float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = (1-t)*a[i] + t*b[i]
	}
	return out
}

// reflectPoint computes 2*cent - xmax (alpha = 1).
func reflectPoint(cent, xmax []float64) []float64 {
	out := make([]float64, len(cent))
	for i := range cent {
		out[i] = 2*cent[i] - xmax[i]
	}
	return out
}

// expandPoint computes 2*ref - cent (gamma = 2).
func expandPoint(ref, cent []float64) []float64 {
	out := make([]float64, len(cent))
	for i := range cent {
		out[i] = 2*ref[i] - cent[i]
	}
	return out
}

// contractPoint computes 0.5*xmax + 0.5*cent (beta = 0.5).
func contractPoint(xmax, cent []float64) []float64 {
	return affine(xmax, cent, 0.5)
}

// newSampled creates a point and gives it the initial sampling allotment
// (adaptive when configured). On a sampling error the point is already
// closed; the caller just abandons the iteration.
func (o *optimizer) newSampled(x []float64) (sim.Point, error) {
	p := o.space.NewPoint(x)
	if err := o.sampleFresh([]sim.Point{p}, nil); err != nil {
		p.Close()
		return nil, err
	}
	return p, nil
}

// replace installs p as vertex i, closing the displaced point.
func (o *optimizer) replace(i int, p sim.Point) {
	o.verts[i].Close()
	o.verts[i] = p
}

// collapse moves every vertex except imin halfway toward the best vertex and
// restarts sampling there. The contraction level increases by d (section 2.2).
// The fresh vertices are installed before the batch, so even on a canceled
// batch every live point is tracked (and closed by finish).
func (o *optimizer) collapse(imin int) error {
	xmin := o.verts[imin].X()
	fresh := make([]sim.Point, 0, o.d)
	for i := range o.verts {
		if i == imin {
			continue
		}
		nx := affine(o.verts[i].X(), xmin, 0.5)
		p := o.space.NewPoint(nx)
		o.verts[i].Close()
		o.verts[i] = p
		fresh = append(fresh, p)
	}
	err := o.sampleFresh(fresh, nil)
	o.level += o.d
	o.res.Moves.Collapses++
	return err
}

// collapseWith performs the collapse with pre-created, pre-sampled shrink
// points (the speculative step evaluates them inside the candidate batch):
// the vertices are swapped in with no further sampling round.
func (o *optimizer) collapseWith(imin int, shrink []sim.Point) {
	k := 0
	for i := range o.verts {
		if i == imin {
			continue
		}
		o.verts[i].Close()
		o.verts[i] = shrink[k]
		k++
	}
	o.level += o.d
	o.res.Moves.Collapses++
}

func (o *optimizer) emitTrace() {
	if o.cfg.Trace == nil {
		return
	}
	_, _, imin := o.order()
	best := o.verts[imin]
	underlying := math.NaN()
	if f, ok := sim.Underlying(best); ok {
		underlying = f
	}
	o.cfg.Trace(TraceEvent{
		Iter:             o.res.Iterations,
		Time:             o.elapsed(),
		Best:             best.Estimate().Mean,
		BestX:            append([]float64(nil), best.X()...),
		BestUnderlying:   underlying,
		Spread:           o.spread(),
		Move:             o.lastMove,
		ContractionLevel: o.level,
	})
}

func (o *optimizer) finish() {
	_, _, imin := o.order()
	best := o.verts[imin]
	est := best.Estimate()
	o.res.BestX = append([]float64(nil), best.X()...)
	o.res.BestG = est.Mean
	o.res.BestSigma = est.Sigma
	o.res.Walltime = o.elapsed()
	o.res.Evaluations = o.space.Evaluations()
	o.res.Termination = o.term
	o.res.FinalSpread = o.spread()
	o.res.ContractionLevel = o.level
	o.res.FinalSimplex = make([][]float64, len(o.verts))
	o.res.FinalValues = make([]float64, len(o.verts))
	for i, v := range o.verts {
		o.res.FinalSimplex[i] = append([]float64(nil), v.X()...)
		o.res.FinalValues[i] = v.Estimate().Mean
		v.Close()
	}
}
