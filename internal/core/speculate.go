package core

import (
	"fmt"

	"repro/internal/sim"
)

// This file implements speculative batched candidate evaluation, the batch
// analogue of parallel SPSA / parallel knowledge-gradient batch proposals:
// instead of evaluating the simplex's candidate moves one round-trip at a
// time (reflection, then maybe expansion, then maybe contraction, then maybe
// the shrink vertices), a speculative step submits every candidate as ONE
// prioritized sampling batch before the decision, selects the accepted move
// from the landed results, and discards the rest. The candidateSet below is
// the shared bookkeeping: the sequential path uses it in lazy mode (points
// created on demand, bitwise identical to the pre-speculation driver), the
// speculative path prefetches.
//
// Determinism: candidate points are created in a fixed order (reflection,
// expansion, contraction, shrink vertices), so their noise-stream indices —
// and therefore every value they ever observe — are a pure function of the
// decision history, never of worker timing. Discarding a candidate closes
// its point; the stream indices it consumed stay consumed, which is exactly
// what the space's NextStream snapshot counter records for resume.

// checkSpeculative gates Config.Speculative on the backend's batch capacity:
// the candidate prefetch keeps up to d+4 (with shrink, 2d+4) points live at
// once, which deadlocks backends that pin every live point to a bounded
// worker rank (mw.Space blocks in NewPoint once its d+3 ranks are taken).
// sim.RankedSampler is the marker of a backend built for prioritized
// wide batches (LocalSpace); anything else gets a descriptive error instead
// of a hang.
func checkSpeculative(space sim.Space, cfg Config) error {
	if !cfg.Speculative {
		return nil
	}
	if _, ok := space.(sim.RankedSampler); !ok {
		return fmt.Errorf("core: Config.Speculative requires a space implementing sim.RankedSampler (unbounded live points); %T pins points to a bounded worker pool and would deadlock", space)
	}
	return nil
}

// Dispatch ranks of the speculative batch: when the worker pool is narrower
// than the batch, the candidates most likely to be consumed start first.
const (
	rankReflect = iota
	rankExpand
	rankContract
	rankShrink
)

// candidateSet owns the candidate moves of one simplex step: the reflection,
// expansion and contraction trial points plus (speculatively) the shrink
// vertices of a collapse. Exactly one of the candidates ends up claimed as a
// vertex; discard closes the rest.
type candidateSet struct {
	o          *optimizer
	imax, imin int
	cent       []float64

	ref, exp, con sim.Point
	shrink        []sim.Point
	claimed       map[sim.Point]bool
	speculated    bool
}

// newCandidates builds the step's candidate set. In speculative mode every
// candidate is created (fixed order: reflection, expansion, contraction,
// then shrink vertices when a collapse is plausible) and sampled as one
// ranked batch; otherwise the set starts empty and candidates are created on
// demand, reproducing the sequential driver exactly.
func (o *optimizer) newCandidates(imax, imin int, cent []float64) (*candidateSet, error) {
	cs := &candidateSet{o: o, imax: imax, imin: imin, cent: cent, claimed: make(map[sim.Point]bool)}
	if !o.cfg.Speculative {
		return cs, nil
	}
	xmax := o.verts[imax].X()
	xref := reflectPoint(cent, xmax)
	cs.ref = o.space.NewPoint(xref)
	cs.exp = o.space.NewPoint(expandPoint(xref, cent))
	cs.con = o.space.NewPoint(contractPoint(xmax, cent))
	batch := []sim.Point{cs.ref, cs.exp, cs.con}
	ranks := []int{rankReflect, rankExpand, rankContract}
	if o.shrinkPlausible() {
		xmin := o.verts[imin].X()
		for i, v := range o.verts {
			if i == imin {
				continue
			}
			p := o.space.NewPoint(affine(v.X(), xmin, 0.5))
			cs.shrink = append(cs.shrink, p)
			batch = append(batch, p)
			ranks = append(ranks, rankShrink)
		}
	}
	cs.speculated = true
	if err := o.sampleFresh(batch, func(i int) int { return ranks[i] }); err != nil {
		// The aborted batch's candidates can never be consumed — the entries
		// a worker had already picked up (and sampled) as much as the ones
		// the abort withdrew before dispatch. Route them through the normal
		// discard so each is counted in the waste accounting exactly once,
		// instead of bypassing it with bare Closes.
		cs.discard()
		return nil, err
	}
	o.trials = cs.live()
	return cs, nil
}

// shrinkPlausible reports whether the speculative batch should include the
// shrink vertices: collapses cluster in the contraction phase of the search,
// so they are prefetched only while the simplex is contracting.
func (o *optimizer) shrinkPlausible() bool {
	return o.lastMove == MoveContract || o.lastMove == MoveCollapse
}

// reflection returns the reflection candidate, creating and sampling it now
// if it was not prefetched.
func (cs *candidateSet) reflection() (sim.Point, error) {
	if cs.ref == nil {
		p, err := cs.o.newSampled(reflectPoint(cs.cent, cs.o.verts[cs.imax].X()))
		if err != nil {
			return nil, err
		}
		cs.ref = p
		cs.o.trials = cs.live()
	}
	return cs.ref, nil
}

// expansion returns the expansion candidate, creating it from the actual
// reflection position if it was not prefetched (the prefetch computes the
// same coordinates from the predicted reflection, bit for bit).
func (cs *candidateSet) expansion() (sim.Point, error) {
	if cs.exp == nil {
		p, err := cs.o.newSampled(expandPoint(cs.ref.X(), cs.cent))
		if err != nil {
			return nil, err
		}
		cs.exp = p
		cs.o.trials = cs.live()
	}
	return cs.exp, nil
}

// contraction returns the contraction candidate, creating it now if it was
// not prefetched.
func (cs *candidateSet) contraction() (sim.Point, error) {
	if cs.con == nil {
		p, err := cs.o.newSampled(contractPoint(cs.o.verts[cs.imax].X(), cs.cent))
		if err != nil {
			return nil, err
		}
		cs.con = p
		cs.o.trials = cs.live()
	}
	return cs.con, nil
}

// claim marks a candidate as consumed (it is being installed as a vertex),
// excluding it from discard.
func (cs *candidateSet) claim(p sim.Point) sim.Point {
	cs.claimed[p] = true
	return p
}

// dropExpansion closes the expansion candidate early: the step has committed
// to the contraction ladder, so the expansion is certainly unneeded and must
// stop accruing sampling.
func (cs *candidateSet) dropExpansion() {
	if cs.exp != nil {
		cs.discardPoint(cs.exp)
		cs.exp = nil
		cs.o.trials = cs.live()
	}
}

// dropContraction closes the contraction candidate and any speculative
// shrink vertices early: the step has committed to the expansion ladder, so
// neither can be consumed.
func (cs *candidateSet) dropContraction() {
	changed := false
	if cs.con != nil {
		cs.discardPoint(cs.con)
		cs.con = nil
		changed = true
	}
	if cs.shrink != nil {
		for _, p := range cs.shrink {
			cs.discardPoint(p)
		}
		cs.shrink = nil
		changed = true
	}
	if changed {
		cs.o.trials = cs.live()
	}
}

// collapse performs the step's collapse move: with prefetched shrink
// vertices they are installed directly (their sampling landed in the
// candidate batch), otherwise the sequential collapse creates and samples
// them now. The unconsumed trial candidates are released FIRST: on backends
// where a live point holds a worker assignment (mw.Space), the collapse's
// fresh vertices need those slots — closing after would deadlock NewPoint.
func (cs *candidateSet) collapse() error {
	for _, p := range []sim.Point{cs.ref, cs.exp, cs.con} {
		if p != nil && !cs.claimed[p] {
			cs.discardPoint(p)
		}
	}
	cs.ref, cs.exp, cs.con = nil, nil, nil
	cs.o.trials = cs.live()
	if cs.shrink != nil {
		for _, p := range cs.shrink {
			cs.claimed[p] = true
		}
		cs.o.collapseWith(cs.imin, cs.shrink)
		cs.shrink = nil
		return nil
	}
	return cs.o.collapse(cs.imin)
}

// live lists the candidate points still under consideration — the step's
// trial set for ScopeActive resampling, in the fixed candidate order.
func (cs *candidateSet) live() []sim.Point {
	var out []sim.Point
	for _, p := range []sim.Point{cs.ref, cs.exp, cs.con} {
		if p != nil && !cs.claimed[p] {
			out = append(out, p)
		}
	}
	for _, p := range cs.shrink {
		if !cs.claimed[p] {
			out = append(out, p)
		}
	}
	return out
}

// discardPoint closes one unconsumed candidate, accounting it as speculative
// waste when it was prefetched.
func (cs *candidateSet) discardPoint(p sim.Point) {
	p.Close()
	if cs.speculated {
		cs.o.res.SpeculativeWaste++
		mSpecWaste.Inc()
	}
}

// discard closes every live unclaimed candidate and clears the trial set.
// It is deferred by the step functions, so error paths and decision paths
// release candidates uniformly.
func (cs *candidateSet) discard() {
	for _, p := range cs.live() {
		cs.discardPoint(p)
	}
	cs.ref, cs.exp, cs.con, cs.shrink = nil, nil, nil, nil
	cs.o.trials = nil
}
