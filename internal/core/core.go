// Package core implements the paper's primary contribution: stochastic
// variants of the Nelder-Mead downhill simplex for objective functions
// observed through sampling noise whose variance decays with sampling time
// (eq 1.2).
//
// Five decision policies are provided, following Algorithms 1-4 of chapter 2:
//
//   - DET: the deterministic downhill simplex (Algorithm 1). Note the paper's
//     pseudocode accepts a reflection whenever g(ref) < g(max) rather than the
//     textbook g(ref) < g(smax) band; we implement the paper verbatim.
//   - MN: max-noise (Algorithm 2). Before each simplex decision, sampling
//     continues until the noisiest vertex's variance is small compared to the
//     internal variance of the vertex function values (eq 2.3).
//   - PC: point-to-point comparison (Algorithm 3). Each of seven comparison
//     conditions is made at a k-sigma confidence separation; indeterminate
//     comparisons trigger resampling of the vertices involved. Which
//     conditions use the error bars is configurable (the c1..c7 ablations of
//     Figs 3.8-3.17).
//   - PCMN: PC and MN combined (Algorithm 4).
//   - AndersonNM: the convergence criterion of Anderson et al. (eq 2.4,
//     sigma_i^2 < k1 * 2^(-l(1+k2)) at contraction level l) evaluated inside
//     the same NM skeleton, exactly as the paper's comparison does. The full
//     Anderson structure-based direct search lives in internal/anderson.
//
// One interpretation decision is worth flagging: Algorithm 3's written
// condition 5 is the literal complement of condition 1, which would make the
// trailing "resample until condition 1 or 5" unreachable. The c3/c4 and c6/c7
// pairs are written symmetrically (a +-k*sigma dead band separates them), and
// the ablation figures treat c5's error bar as independently switchable, so we
// implement c5 symmetrically too: g(ref) - k*sigma_ref >= g(smax) +
// k*sigma_smax. With error bars disabled on both c1 and c5 the two become
// exact complements, recovering the literal pseudocode.
package core

import (
	"errors"
	"fmt"
)

// Algorithm selects the simplex decision policy.
type Algorithm int

const (
	// DET is the deterministic downhill simplex (Algorithm 1).
	DET Algorithm = iota
	// MN is the max-noise algorithm (Algorithm 2).
	MN
	// PC is the point-to-point comparison algorithm (Algorithm 3).
	PC
	// PCMN combines PC and MN (Algorithm 4).
	PCMN
	// AndersonNM applies Anderson et al.'s convergence criterion (eq 2.4)
	// inside the Nelder-Mead skeleton.
	AndersonNM
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case DET:
		return "DET"
	case MN:
		return "MN"
	case PC:
		return "PC"
	case PCMN:
		return "PC+MN"
	case AndersonNM:
		return "AndersonNM"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// ParseAlgorithm converts a CLI name into an Algorithm. Names resolve
// through the strategy registry (canonical names and aliases such as "pcmn"
// and "pc-mn", case-insensitive), so ParseAlgorithm and strategy-based spec
// validation can never disagree about what a name means. Strategies that are
// not NM-family policies (e.g. "pso") are rejected here: they have no
// Algorithm value and must be run by strategy name.
func ParseAlgorithm(s string) (Algorithm, error) {
	strat, err := LookupStrategy(s)
	if err != nil {
		return 0, err
	}
	as, ok := strat.(AlgorithmStrategy)
	if !ok {
		return 0, fmt.Errorf("core: %q is a registered strategy but not a simplex algorithm; run it by strategy name", strat.Name())
	}
	return as.Algorithm(), nil
}

// ConditionMask selects which of the seven PC comparison conditions use the
// +-k*sigma error bars. Bit i-1 corresponds to condition ci.
type ConditionMask uint8

// AllConditions enables error bars in every condition (the strict "c1-7"
// variant of Figs 3.9-3.15).
const AllConditions ConditionMask = 0x7F

// Conditions builds a mask from condition numbers 1..7, e.g.
// Conditions(1, 3, 6) is the "c136" variant of Figs 3.16-3.17.
func Conditions(nums ...int) ConditionMask {
	var m ConditionMask
	for _, n := range nums {
		if n < 1 || n > 7 {
			panic(fmt.Sprintf("core: condition number %d out of range 1..7", n))
		}
		m |= 1 << (n - 1)
	}
	return m
}

// Has reports whether condition n (1..7) is in the mask.
func (m ConditionMask) Has(n int) bool { return m&(1<<(n-1)) != 0 }

// String renders the mask in the paper's cN notation.
func (m ConditionMask) String() string {
	if m == AllConditions {
		return "c1-7"
	}
	s := "c"
	for n := 1; n <= 7; n++ {
		if m.Has(n) {
			s += fmt.Sprintf("%d", n)
		}
	}
	if s == "c" {
		return "c(none)"
	}
	return s
}

// ResampleScope selects the sampling scope of indeterminate PC comparisons.
type ResampleScope int

const (
	// ScopeActive samples every active point each resample round (the
	// parallel-deployment semantics; default).
	ScopeActive ResampleScope = iota
	// ScopePair samples only the two points being compared.
	ScopePair
)

// String implements fmt.Stringer.
func (s ResampleScope) String() string {
	switch s {
	case ScopeActive:
		return "active"
	case ScopePair:
		return "pair"
	default:
		return fmt.Sprintf("ResampleScope(%d)", int(s))
	}
}

// Move identifies a simplex transformation.
type Move int

const (
	// MoveNone means no transformation was applied this iteration.
	MoveNone Move = iota
	// MoveReflect replaced the worst vertex with its reflection.
	MoveReflect
	// MoveExpand replaced the worst vertex with the expansion point.
	MoveExpand
	// MoveContract replaced the worst vertex with the contraction point.
	MoveContract
	// MoveCollapse shrank every vertex halfway toward the best vertex.
	MoveCollapse
)

// String implements fmt.Stringer.
func (m Move) String() string {
	switch m {
	case MoveNone:
		return "none"
	case MoveReflect:
		return "reflect"
	case MoveExpand:
		return "expand"
	case MoveContract:
		return "contract"
	case MoveCollapse:
		return "collapse"
	default:
		return fmt.Sprintf("Move(%d)", int(m))
	}
}

// Config controls an optimization run. The zero value is not usable; use
// DefaultConfig as a starting point.
type Config struct {
	// Algorithm selects the decision policy.
	Algorithm Algorithm

	// K is the confidence multiplier in PC comparisons: a decision requires
	// g(a) + K*sigma_a < g(b) - K*sigma_b. The paper uses K=1 by default and
	// K=2 in the Fig 3.7 ablation.
	K float64
	// MNK is the k of eq 2.3: the MN wait loop holds while
	// max_i sigma_i^2 > MNK * Var_internal. The paper studies k in {2..5}.
	MNK float64
	// K1, K2 parameterize the Anderson criterion (eq 2.4). The paper sets
	// K2=0 and sweeps K1 over {2^0, 2^10, 2^20, 2^30}.
	K1, K2 float64

	// ErrorBars selects which PC conditions apply the error-bar comparison.
	ErrorBars ConditionMask
	// Scope selects which points accrue sampling while a PC comparison is
	// indeterminate. The default (ScopeActive) models the paper's
	// deployment, where a dedicated worker keeps every active vertex
	// sampling; ScopePair samples only the two compared points, a
	// serial-machine semantics kept for the ablation study (it materially
	// weakens PC relative to MN — see EXPERIMENTS.md note 2).
	Scope ResampleScope

	// Speculative enables batch-speculative candidate evaluation: each
	// simplex step submits the reflection, expansion and contraction
	// candidates (plus the shrink vertices when a collapse is plausible) as
	// ONE prioritized sampling batch before the decision, then selects the
	// accepted move from the landed results and discards the rest. A step
	// costs one batch round-trip instead of up to four sequential ones, so
	// on a worker pool of >= 3 the per-step latency drops by the depth of
	// the skipped round-trips (see BENCH_sched.json). Speculative runs are
	// bitwise-deterministic at any worker count (per-candidate noise
	// streams are pre-assigned in a fixed order) but follow a different —
	// equally valid — trajectory than sequential runs, because candidates
	// draw different stream indices and the virtual clock advances once per
	// batch. Requires a space implementing sim.RankedSampler (LocalSpace):
	// backends that pin live points to a bounded worker pool (mw.Space)
	// cannot host the prefetch and are rejected before any sampling.
	Speculative bool

	// AdaptiveSamples enables variance-adaptive resampling of fresh points:
	// instead of the fixed InitialSample allotment, every new point samples
	// in geometrically growing rounds until its confidence half-width
	// (AdaptiveZ * sigma, Welford-estimated when the backend reports
	// estimated sigmas) falls to AdaptiveHalfWidth. The driver remembers the
	// largest allotment a point needed (the adaptive floor, persisted in
	// snapshots) and starts subsequent points there, so the growth is paid
	// once, not per point.
	AdaptiveSamples bool
	// AdaptiveHalfWidth is the target confidence half-width of a fresh
	// point's estimate. Required (positive) when AdaptiveSamples is set.
	AdaptiveHalfWidth float64
	// AdaptiveZ is the confidence multiplier of the half-width gate. Zero
	// selects 1.96 (a 95% normal interval).
	AdaptiveZ float64
	// AdaptiveMaxRounds caps the growth rounds per fresh-point batch. Zero
	// selects MaxWaitRounds.
	AdaptiveMaxRounds int

	// InitialSample is the virtual sampling time given to each new vertex.
	InitialSample float64
	// Resample is the additional sampling time per wait/resample round.
	Resample float64
	// ResampleGrowth multiplies the resample increment on each consecutive
	// round within one decision, so that reaching a 1/sqrt(t) noise target
	// takes O(log) rounds instead of O(t). Must be >= 1.
	ResampleGrowth float64

	// Tol is the convergence tolerance: the run stops when
	// max_i |g_i - g_min| <= Tol (eq 2.9).
	Tol float64
	// MaxWalltime is the virtual wall-clock budget in seconds (the paper's
	// second termination criterion). Zero means unlimited.
	MaxWalltime float64
	// MaxIterations caps the simplex steps. Zero means unlimited.
	MaxIterations int
	// MaxWaitRounds caps the wait/resample rounds within a single decision;
	// when exceeded, the decision is forced on the plain means and counted
	// in Result.ForcedDecisions. Guards against the stall the paper
	// describes for MN when "one vertex has large noise".
	MaxWaitRounds int
	// DecisionBudget optionally caps the virtual sampling time spent
	// resolving one decision before it is forced on the plain means. Zero
	// (the default, and the paper's protocol) means unlimited patience —
	// "sampling proceeds until the point where the simplex transformation
	// can be made at the chosen accuracy" — bounded only by MaxWaitRounds
	// and the global walltime. A positive value trades per-decision
	// confidence for a steadier simplex step rate.
	DecisionBudget float64

	// OverheadBase and OverheadPerDim model the master's bookkeeping and
	// file/socket I/O per simplex step (Fig 3.18c): each iteration advances
	// the wall clock by OverheadBase + OverheadPerDim*d seconds.
	OverheadBase   float64
	OverheadPerDim float64

	// Trace, if non-nil, receives one event per simplex iteration.
	Trace func(TraceEvent)

	// Checkpoint, if non-nil, receives a Snapshot of the full optimizer
	// state every CheckpointEvery iterations (every iteration when
	// CheckpointEvery <= 0). The space must implement sim.Snapshotter
	// (LocalSpace does). Taking a snapshot reads no randomness and mutates
	// nothing, so a run with checkpointing enabled is bitwise identical to
	// one without; a run resumed from any snapshot (ResumeContext) is
	// bitwise identical to the uninterrupted run — the paper's §1.3.5.1
	// restart-on-failure strategy made durable. The callback must finish
	// with the snapshot (e.g. serialize it) before returning; the optimizer
	// continues immediately after.
	Checkpoint func(*Snapshot)
	// CheckpointEvery is the iteration period of Checkpoint callbacks.
	CheckpointEvery int
}

// DefaultConfig returns the parameter defaults used throughout the paper's
// computational study.
func DefaultConfig(alg Algorithm) Config {
	return Config{
		Algorithm:      alg,
		K:              1,
		MNK:            3,
		K1:             1 << 20,
		K2:             0,
		ErrorBars:      AllConditions,
		InitialSample:  1,
		Resample:       1,
		ResampleGrowth: 2,
		Tol:            1e-6,
		MaxWalltime:    1e9,
		MaxIterations:  100000,
		MaxWaitRounds:  60,
	}
}

// Validate checks the configuration against a space dimension: the
// pre-sampling gate Run and every strategy use, exported so third-party
// Strategy implementations can apply the same contract in their Validate.
func (c *Config) Validate(dim int) error { return c.validate(dim) }

func (c *Config) validate(dim int) error {
	if c.K <= 0 && (c.Algorithm == PC || c.Algorithm == PCMN) {
		return errors.New("core: Config.K must be positive for PC algorithms")
	}
	if c.MNK <= 0 && (c.Algorithm == MN || c.Algorithm == PCMN) {
		return errors.New("core: Config.MNK must be positive for MN algorithms")
	}
	if c.K1 <= 0 && c.Algorithm == AndersonNM {
		return errors.New("core: Config.K1 must be positive for AndersonNM")
	}
	if c.InitialSample <= 0 {
		return errors.New("core: Config.InitialSample must be positive")
	}
	if c.Resample <= 0 {
		return errors.New("core: Config.Resample must be positive")
	}
	if c.ResampleGrowth < 1 {
		return errors.New("core: Config.ResampleGrowth must be >= 1")
	}
	if c.Tol < 0 {
		return errors.New("core: Config.Tol must be non-negative")
	}
	if c.MaxWaitRounds <= 0 {
		return errors.New("core: Config.MaxWaitRounds must be positive")
	}
	if c.AdaptiveSamples && c.AdaptiveHalfWidth <= 0 {
		return errors.New("core: Config.AdaptiveHalfWidth must be positive when AdaptiveSamples is set")
	}
	if c.AdaptiveZ < 0 {
		return errors.New("core: Config.AdaptiveZ must be non-negative")
	}
	if c.AdaptiveMaxRounds < 0 {
		return errors.New("core: Config.AdaptiveMaxRounds must be non-negative")
	}
	if dim < 1 {
		return errors.New("core: dimension must be >= 1")
	}
	return nil
}

// TraceEvent is emitted once per simplex iteration.
type TraceEvent struct {
	// Iter is the 1-based iteration number.
	Iter int
	// Time is the virtual wall-clock time at the end of the iteration.
	Time float64
	// Best is the current noisy estimate at the best vertex.
	Best float64
	// BestX is a copy of the best vertex's coordinates.
	BestX []float64
	// BestUnderlying is the noise-free objective at the best vertex when the
	// backend exposes it (LocalSpace does), else NaN.
	BestUnderlying float64
	// Spread is max_i |g_i - g_min| over the current estimates.
	Spread float64
	// Move is the transformation applied this iteration.
	Move Move
	// ContractionLevel is the level l after the move (section 2.2).
	ContractionLevel int
}

// MoveStats counts the simplex transformations applied during a run.
type MoveStats struct {
	Reflections  int
	Expansions   int
	Contractions int
	Collapses    int
}

// Result summarizes a completed optimization.
type Result struct {
	// BestX is the best vertex at termination.
	BestX []float64
	// BestG is the noisy running estimate at BestX.
	BestG float64
	// BestSigma is the standard deviation of BestG.
	BestSigma float64
	// Iterations is the number of simplex steps (the paper's N measure).
	Iterations int
	// Walltime is the virtual seconds elapsed.
	Walltime float64
	// Evaluations is the total number of sampling increments issued.
	Evaluations int64
	// Termination names the criterion that stopped the run: "tolerance",
	// "walltime", "iterations", or "canceled" (the OptimizeContext context
	// ended; the result holds the best vertex found up to that point).
	Termination string
	// Moves counts the transformations applied.
	Moves MoveStats
	// WaitRounds is the total MN/Anderson wait rounds.
	WaitRounds int
	// ResampleRounds is the total PC resample rounds.
	ResampleRounds int
	// AdaptiveRounds is the total variance-adaptive growth rounds spent
	// bringing fresh points to the configured confidence half-width (zero
	// unless Config.AdaptiveSamples is set).
	AdaptiveRounds int
	// SpeculativeWaste counts speculative candidate evaluations that were
	// discarded unused (zero unless Config.Speculative is set) — the
	// sampling cost paid for collapsing a step's sequential round-trips
	// into one batch.
	SpeculativeWaste int
	// ForcedDecisions counts decisions forced after MaxWaitRounds.
	ForcedDecisions int
	// FinalSpread is max_i |g_i - g_min| at termination.
	FinalSpread float64
	// ContractionLevel is the final level l.
	ContractionLevel int
	// FinalSimplex holds the coordinates of every vertex at termination.
	FinalSimplex [][]float64
	// FinalValues holds the noisy estimates of every vertex at termination,
	// index-aligned with FinalSimplex.
	FinalValues []float64
}
