package core

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

// The paper's noise model allows sigma0 to vary over parameter space ("some
// models may be noisier than others ... there is no expectation that this
// variance is known ahead of time"). With noise ~7x the local signal, a
// single simplex of any flavour can collapse prematurely and then never
// resolve another comparison (separations shrink faster than 1/sqrt(t)
// precision can follow); the restart strategy recovers. This test pins that
// behaviour: restarted PC solves several seeds that plain PC cannot.
func TestLocationDependentNoiseNeedsRestarts(t *testing.T) {
	const seeds = 6
	run := func(seed int64, restarts int) float64 {
		sp := sim.NewLocalSpace(sim.LocalConfig{
			Dim: 2,
			F:   testfunc.Sphere,
			// Noise grows steeply away from the origin: the starting
			// region is two orders of magnitude noisier than the optimum.
			Sigma0: func(x []float64) float64 {
				return 1 + 10*math.Sqrt(x[0]*x[0]+x[1]*x[1])
			},
			Seed:     seed,
			Parallel: true,
		})
		cfg := DefaultConfig(PC)
		cfg.MaxWalltime = 2e5
		cfg.Tol = 0.05
		res, err := OptimizeWithRestarts(sp, [][]float64{{8, 8}, {9, 8}, {8, 9}}, RestartConfig{
			Config: cfg, Restarts: restarts, Scale: []float64{2, 2}, ScaleDecay: 0.7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return testfunc.Sphere(res.BestX)
	}
	solvedPlain, solvedRestarted := 0, 0
	for seed := int64(3); seed < 3+seeds; seed++ {
		if run(seed, 0) < 20 {
			solvedPlain++
		}
		if run(seed, 4) < 20 {
			solvedRestarted++
		}
	}
	if solvedRestarted < 4 {
		t.Fatalf("restarted PC solved only %d/%d seeds", solvedRestarted, seeds)
	}
	if solvedRestarted <= solvedPlain {
		t.Fatalf("restarts did not help: %d vs %d seeds solved", solvedRestarted, solvedPlain)
	}
}

// With estimated (rather than known) sigma, the PC algorithm must still make
// progress: the practitioner's regime where sigma0 is learned from batch
// statistics.
func TestEstimatedSigmaMode(t *testing.T) {
	sp := sim.NewLocalSpace(sim.LocalConfig{
		Dim:      2,
		F:        testfunc.Sphere,
		Sigma0:   sim.ConstSigma(20),
		Seed:     4,
		Mode:     sim.SigmaEstimated,
		Parallel: true,
	})
	cfg := DefaultConfig(PC)
	cfg.MaxWalltime = 5e4
	cfg.Tol = 0
	res, err := Optimize(sp, [][]float64{{8, 8}, {9, 8}, {8, 9}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := testfunc.Sphere(res.BestX); f >= testfunc.Sphere([]float64{8, 8}) {
		t.Fatalf("no progress with estimated sigma: f=%v", f)
	}
}
