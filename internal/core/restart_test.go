package core

import (
	"math"
	"testing"

	"repro/internal/testfunc"
)

func TestRestartValidation(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 1)
	start := [][]float64{{1, 1}, {2, 1}, {1, 2}}
	base := RestartConfig{Config: DefaultConfig(DET), Scale: []float64{0.1, 0.1}}

	bad := base
	bad.Restarts = -1
	if _, err := OptimizeWithRestarts(sp, start, bad); err == nil {
		t.Error("negative restarts accepted")
	}
	bad = base
	bad.Scale = []float64{0.1}
	if _, err := OptimizeWithRestarts(sp, start, bad); err == nil {
		t.Error("wrong scale length accepted")
	}
	bad = base
	bad.Scale = []float64{0.1, -1}
	if _, err := OptimizeWithRestarts(sp, start, bad); err == nil {
		t.Error("negative scale accepted")
	}
	bad = base
	bad.ScaleDecay = 2
	if _, err := OptimizeWithRestarts(sp, start, bad); err == nil {
		t.Error("decay > 1 accepted")
	}
}

func TestZeroRestartsEqualsOptimize(t *testing.T) {
	start := [][]float64{{3, 3}, {4, 3}, {3, 4}}
	cfg := DefaultConfig(DET)
	cfg.Tol = 1e-10

	sp1 := space(testfunc.Sphere, 2, 0, 1)
	plain, err := Optimize(sp1, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp2 := space(testfunc.Sphere, 2, 0, 1)
	restarted, err := OptimizeWithRestarts(sp2, start, RestartConfig{
		Config: cfg, Restarts: 0, Scale: []float64{0.1, 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if restarted.BestG != plain.BestG || restarted.Iterations != plain.Iterations {
		t.Fatalf("zero-restart run differs: %v/%d vs %v/%d",
			restarted.BestG, restarted.Iterations, plain.BestG, plain.Iterations)
	}
}

// On the Rosenbrock banana a budget-starved simplex stalls in the valley;
// restarts must recover and get strictly closer to the minimum.
func TestRestartsImproveStalledRosenbrock(t *testing.T) {
	start := [][]float64{{-1.5, 2}, {-1.4, 2.1}, {-1.6, 2.1}}
	cfg := DefaultConfig(DET)
	cfg.Tol = 1e-9
	cfg.MaxIterations = 60 // starve the first leg
	cfg.MaxWalltime = 0

	spPlain := space(testfunc.Rosenbrock, 2, 0, 1)
	plain, err := Optimize(spPlain, start, cfg)
	if err != nil {
		t.Fatal(err)
	}

	spRe := space(testfunc.Rosenbrock, 2, 0, 1)
	restarted, err := OptimizeWithRestarts(spRe, start, RestartConfig{
		Config: cfg, Restarts: 4, Scale: []float64{0.3, 0.3},
	})
	if err != nil {
		t.Fatal(err)
	}
	fPlain := testfunc.Rosenbrock(plain.BestX)
	fRe := testfunc.Rosenbrock(restarted.BestX)
	if fRe >= fPlain {
		t.Fatalf("restarts did not improve: %v vs %v", fRe, fPlain)
	}
	if restarted.Iterations <= plain.Iterations {
		t.Fatal("restart legs not accumulated in Iterations")
	}
}

func TestRestartsWorkUnderNoise(t *testing.T) {
	sp := space(testfunc.Rosenbrock, 3, 10, 5)
	cfg := DefaultConfig(PC)
	cfg.MaxWalltime = 1e4
	cfg.Tol = 0.01
	res, err := OptimizeWithRestarts(sp, [][]float64{
		{-2, 1, 0}, {-1, 2, 1}, {0, 0, -1}, {1, -1, 2},
	}, RestartConfig{Config: cfg, Restarts: 2, Scale: []float64{0.5, 0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestX == nil || math.IsNaN(res.BestG) {
		t.Fatal("restart result incomplete")
	}
}

func TestSimplexAroundGeometry(t *testing.T) {
	s := simplexAround([]float64{1, 2, 3}, []float64{0.1, 0.2, 0.3})
	if len(s) != 4 {
		t.Fatalf("vertices = %d", len(s))
	}
	if s[0][0] != 1 || s[0][1] != 2 || s[0][2] != 3 {
		t.Fatalf("anchor = %v", s[0])
	}
	if s[1][0] != 1.1 || s[2][1] != 2.2 || s[3][2] != 3.3 {
		t.Fatalf("offsets wrong: %v", s)
	}
	// Mutating the anchor input must not alias the simplex.
	x := []float64{5, 5}
	s2 := simplexAround(x, []float64{1, 1})
	x[0] = 99
	if s2[0][0] != 5 {
		t.Fatal("simplexAround aliased its input")
	}
}

// A restart around the best point of a converged sphere run must terminate
// immediately near the optimum rather than wandering off.
func TestRestartStaysAtOptimum(t *testing.T) {
	sp := space(testfunc.Sphere, 2, 0, 3)
	cfg := DefaultConfig(DET)
	cfg.Tol = 1e-12
	res, err := OptimizeWithRestarts(sp, [][]float64{{2, 2}, {3, 2}, {2, 3}}, RestartConfig{
		Config: cfg, Restarts: 3, Scale: []float64{0.5, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f := testfunc.Sphere(res.BestX); f > 1e-6 {
		t.Fatalf("f(best) = %v after restarts", f)
	}
}
