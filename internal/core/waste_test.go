package core

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

// TestAbortedSpeculativeBatchWasteCountedOnce is the regression test for the
// waste accounting of candidate batches aborted mid-flight: every prefetched
// candidate of the aborted step — the entry the worker had already picked up
// and sampled as much as the entries withdrawn before dispatch — must be
// counted in Result.SpeculativeWaste exactly once (it used to be counted
// zero times, bypassing the accounting with bare Closes).
//
// The run is fully deterministic: Workers == 1 executes the candidate batch
// serially in submission-rank order, and the SampleCost hook cancels the
// context while the FIRST candidate of the first speculative step is being
// sampled. The batch then aborts with one entry executed and two withdrawn;
// all three are speculative work that can never be consumed, so the waste
// must be exactly 3.
func TestAbortedSpeculativeBatchWasteCountedOnce(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var samples atomic.Int64
	sp := sim.NewLocalSpace(sim.LocalConfig{
		Dim:      3,
		F:        testfunc.Rosenbrock,
		Sigma0:   sim.ConstSigma(10),
		Seed:     4,
		Parallel: true,
		Workers:  1, // serial reference semantics: the interleaving is exact
		SampleCost: func([]float64, float64) {
			// Calls 1-4 are the initial simplex; call 5 is the first
			// candidate of step 1's speculative batch.
			if samples.Add(1) == 5 {
				cancel()
			}
		},
	})
	defer sp.Close()

	cfg := DefaultConfig(DET)
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	cfg.MaxIterations = 5
	cfg.Speculative = true
	initial := [][]float64{{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4}}

	res, err := OptimizeContext(ctx, sp, initial, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "canceled" {
		t.Fatalf("Termination = %q, want canceled", res.Termination)
	}
	if res.Iterations != 0 {
		t.Fatalf("Iterations = %d, want 0 (the first step was aborted)", res.Iterations)
	}
	// Exactly the aborted batch's three candidates (reflection, expansion,
	// contraction; no shrink prefetch on the first step), each once.
	if res.SpeculativeWaste != 3 {
		t.Fatalf("SpeculativeWaste = %d, want 3 (one per discarded candidate of the aborted batch)", res.SpeculativeWaste)
	}
	if got := samples.Load(); got != 5 {
		t.Fatalf("sampling increments = %d, want 5 (4 initial + 1 candidate before the abort)", got)
	}
}
