package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

func snapSpace(seed int64) *sim.LocalSpace {
	return sim.NewLocalSpace(sim.LocalConfig{
		Dim:      3,
		F:        testfunc.Rosenbrock,
		Sigma0:   sim.ConstSigma(50),
		Seed:     seed,
		Parallel: true,
	})
}

func snapInitial() [][]float64 {
	return [][]float64{{-2, 1, 3}, {2, -1, 0}, {0, 3, -2}, {1, 1, 1}}
}

// collectSnapshots runs an optimization with checkpointing, keeping the JSON
// serialization of every snapshot (exercising the same round-trip the durable
// checkpoint store performs).
func collectSnapshots(t *testing.T, cfg Config, every int) (*Result, [][]byte) {
	t.Helper()
	var blobs [][]byte
	cfg.CheckpointEvery = every
	cfg.Checkpoint = func(s *Snapshot) {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("marshal snapshot: %v", err)
		}
		blobs = append(blobs, b)
	}
	space := snapSpace(11)
	res, err := Optimize(space, snapInitial(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res, blobs
}

// TestSnapshotResumeBitwise is the acceptance-criterion test: a run
// snapshotted mid-flight and resumed on a fresh space produces a Result
// bitwise identical to the uninterrupted run — for every decision policy and
// from every snapshot taken along the way.
func TestSnapshotResumeBitwise(t *testing.T) {
	for _, alg := range []Algorithm{DET, MN, PC, PCMN, AndersonNM} {
		t.Run(alg.String(), func(t *testing.T) {
			cfg := DefaultConfig(alg)
			cfg.MaxIterations = 40
			cfg.MaxWalltime = 1e7
			cfg.Tol = 1e-9

			uninterrupted, blobs := collectSnapshots(t, cfg, 10)
			if len(blobs) == 0 {
				t.Fatal("no snapshots were taken")
			}

			for i, blob := range blobs {
				var snap Snapshot
				if err := json.Unmarshal(blob, &snap); err != nil {
					t.Fatalf("unmarshal snapshot %d: %v", i, err)
				}
				// Fresh process-like state: a brand-new space from the same
				// construction parameters, and the original Config without
				// the checkpoint callback.
				resumeCfg := cfg
				resumeCfg.Checkpoint = nil
				resumeCfg.CheckpointEvery = 0
				resumed, err := Resume(snapSpace(11), &snap, resumeCfg)
				if err != nil {
					t.Fatalf("resume from snapshot %d (iter %d): %v", i, snap.Iterations, err)
				}
				if !reflect.DeepEqual(resumed, uninterrupted) {
					t.Fatalf("resume from iter %d diverged:\nresumed      %+v\nuninterrupted %+v",
						snap.Iterations, resumed, uninterrupted)
				}
			}
		})
	}
}

// TestCheckpointingDoesNotPerturb checks that enabling checkpoints changes
// nothing: snapshot export reads no randomness.
func TestCheckpointingDoesNotPerturb(t *testing.T) {
	cfg := DefaultConfig(PC)
	cfg.MaxIterations = 30
	cfg.MaxWalltime = 1e7
	cfg.Tol = 1e-9

	withCkpt, _ := collectSnapshots(t, cfg, 5)
	plain, err := Optimize(snapSpace(11), snapInitial(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(withCkpt, plain) {
		t.Fatalf("checkpointing perturbed the run:\nwith    %+v\nwithout %+v", withCkpt, plain)
	}
}

// TestSnapshotJSONRoundTrip checks the serialized form is lossless.
func TestSnapshotJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig(MN)
	cfg.MaxIterations = 12
	cfg.MaxWalltime = 1e7
	var snaps []*Snapshot
	cfg.CheckpointEvery = 4
	cfg.Checkpoint = func(s *Snapshot) {
		// Deep-copy via JSON, as the durable store would.
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var c Snapshot
		if err := json.Unmarshal(b, &c); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(&c, s) {
			t.Fatalf("JSON round-trip lost state:\nin  %+v\nout %+v", s, &c)
		}
		snaps = append(snaps, &c)
	}
	if _, err := Optimize(snapSpace(5), snapInitial(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatal("no snapshots were taken")
	}
}

// TestRestartResumeBitwise covers the multi-leg path: snapshots taken inside
// restart legs carry the leg state, and ResumeWithRestartsContext reproduces
// the uninterrupted OptimizeWithRestarts result bitwise.
func TestRestartResumeBitwise(t *testing.T) {
	rcfg := RestartConfig{
		Config:   DefaultConfig(MN),
		Restarts: 2,
		Scale:    []float64{0.5, 0.5, 0.5},
	}
	rcfg.MaxIterations = 15
	rcfg.MaxWalltime = 1e7
	rcfg.Tol = 1e-9

	var blobs [][]byte
	ckptCfg := rcfg
	ckptCfg.CheckpointEvery = 7
	ckptCfg.Checkpoint = func(s *Snapshot) {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	uninterrupted, err := OptimizeWithRestarts(snapSpace(23), snapInitial(), ckptCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) == 0 {
		t.Fatal("no snapshots were taken")
	}

	sawLater := false
	for i, blob := range blobs {
		var snap Snapshot
		if err := json.Unmarshal(blob, &snap); err != nil {
			t.Fatal(err)
		}
		if snap.Restart == nil {
			t.Fatalf("snapshot %d from a restart run is missing the leg state", i)
		}
		if snap.Restart.Leg > 0 {
			sawLater = true
		}
		resumed, err := ResumeWithRestartsContext(nil, snapSpace(23), &snap, rcfg)
		if err != nil {
			t.Fatalf("resume from snapshot %d (leg %d, iter %d): %v",
				i, snap.Restart.Leg, snap.Iterations, err)
		}
		if !reflect.DeepEqual(resumed, uninterrupted) {
			t.Fatalf("restart resume from leg %d iter %d diverged:\nresumed       %+v\nuninterrupted %+v",
				snap.Restart.Leg, snap.Iterations, resumed, uninterrupted)
		}
	}
	if !sawLater {
		t.Fatal("no snapshot was taken inside a restart leg; widen the test")
	}
}

// TestResumeRejectsBadSnapshots covers the resume-time validation.
func TestResumeRejectsBadSnapshots(t *testing.T) {
	cfg := DefaultConfig(DET)
	if _, err := Resume(snapSpace(1), nil, cfg); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	if _, err := Resume(snapSpace(1), &Snapshot{Version: 99, Dim: 3}, cfg); err == nil {
		t.Fatal("wrong version accepted")
	}
	if _, err := Resume(snapSpace(1), &Snapshot{Version: SnapshotVersion, Dim: 2}, cfg); err == nil {
		t.Fatal("wrong dimension accepted")
	}
	if _, err := Resume(snapSpace(1), &Snapshot{Version: SnapshotVersion, Dim: 3}, cfg); err == nil {
		t.Fatal("wrong vertex count accepted")
	}

	// A restart snapshot with a corrupted scale must be rejected, not
	// silently resumed with the wrong simplex edge lengths.
	rcfg := RestartConfig{Config: cfg, Restarts: 1, Scale: []float64{1, 1, 1}}
	var snap *Snapshot
	ckpt := rcfg
	ckpt.CheckpointEvery = 1
	ckpt.Checkpoint = func(s *Snapshot) {
		if snap == nil {
			c := *s
			snap = &c
		}
	}
	ckpt.MaxIterations = 3
	ckpt.MaxWalltime = 1e7
	if _, err := OptimizeWithRestarts(snapSpace(1), snapInitial(), ckpt); err != nil {
		t.Fatal(err)
	}
	snap.Restart.Scale = snap.Restart.Scale[:2]
	if _, err := ResumeWithRestartsContext(nil, snapSpace(1), snap, rcfg); err == nil {
		t.Fatal("corrupted restart scale accepted")
	}
}
