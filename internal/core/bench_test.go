package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

// BenchmarkIterationDET measures the cost of one deterministic simplex
// iteration including sampling bookkeeping.
func BenchmarkIterationDET(b *testing.B) {
	benchIterations(b, DET, 0)
}

// BenchmarkIterationMN includes the max-noise wait machinery.
func BenchmarkIterationMN(b *testing.B) {
	benchIterations(b, MN, 50)
}

// BenchmarkIterationPC includes the confidence comparisons and resampling.
func BenchmarkIterationPC(b *testing.B) {
	benchIterations(b, PC, 50)
}

func benchIterations(b *testing.B, alg Algorithm, sigma float64) {
	b.Helper()
	start := [][]float64{{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4}}
	b.ReportAllocs()
	iters := 0
	for i := 0; i < b.N; i++ {
		sp := space(testfunc.Rosenbrock, 3, sigma, int64(i+1))
		cfg := DefaultConfig(alg)
		cfg.MaxIterations = 50
		cfg.Tol = 0
		cfg.MaxWalltime = 0
		res, err := Optimize(sp, start, cfg)
		if err != nil {
			b.Fatal(err)
		}
		iters += res.Iterations
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
}

// BenchmarkOptimizeExpensiveWorkers runs full MN optimizations where each
// sampling increment waits on an external simulation (latency-bound
// SampleCost), at increasing sched worker counts. The speedup over the
// workers=1 row is the end-to-end payoff of concurrent batch sampling; the
// results themselves are bitwise identical across rows.
func BenchmarkOptimizeExpensiveWorkers(b *testing.B) {
	start := [][]float64{{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4}}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sp := sim.NewLocalSpace(sim.LocalConfig{
					Dim:        3,
					F:          testfunc.Rosenbrock,
					Sigma0:     sim.ConstSigma(50),
					Seed:       1,
					Parallel:   true,
					Workers:    workers,
					SampleCost: func([]float64, float64) { time.Sleep(50 * time.Microsecond) },
				})
				cfg := DefaultConfig(MN)
				cfg.MaxIterations = 30
				cfg.Tol = 0
				cfg.MaxWalltime = 0
				if _, err := Optimize(sp, start, cfg); err != nil {
					b.Fatal(err)
				}
				sp.Close()
			}
		})
	}
}

// BenchmarkRestarts measures the restart wrapper overhead.
func BenchmarkRestarts(b *testing.B) {
	start := [][]float64{{-1.5, 2}, {-1.4, 2.1}, {-1.6, 2.1}}
	for i := 0; i < b.N; i++ {
		sp := space(testfunc.Rosenbrock, 2, 0, int64(i+1))
		cfg := DefaultConfig(DET)
		cfg.MaxIterations = 40
		cfg.Tol = 1e-9
		cfg.MaxWalltime = 0
		if _, err := OptimizeWithRestarts(sp, start, RestartConfig{
			Config: cfg, Restarts: 3, Scale: []float64{0.3, 0.3},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
