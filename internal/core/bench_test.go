package core

import (
	"testing"

	"repro/internal/testfunc"
)

// BenchmarkIterationDET measures the cost of one deterministic simplex
// iteration including sampling bookkeeping.
func BenchmarkIterationDET(b *testing.B) {
	benchIterations(b, DET, 0)
}

// BenchmarkIterationMN includes the max-noise wait machinery.
func BenchmarkIterationMN(b *testing.B) {
	benchIterations(b, MN, 50)
}

// BenchmarkIterationPC includes the confidence comparisons and resampling.
func BenchmarkIterationPC(b *testing.B) {
	benchIterations(b, PC, 50)
}

func benchIterations(b *testing.B, alg Algorithm, sigma float64) {
	b.Helper()
	start := [][]float64{{-3, -3, -3}, {4, -2, 1}, {-1, 3, -2}, {2, 2, 4}}
	b.ReportAllocs()
	iters := 0
	for i := 0; i < b.N; i++ {
		sp := space(testfunc.Rosenbrock, 3, sigma, int64(i+1))
		cfg := DefaultConfig(alg)
		cfg.MaxIterations = 50
		cfg.Tol = 0
		cfg.MaxWalltime = 0
		res, err := Optimize(sp, start, cfg)
		if err != nil {
			b.Fatal(err)
		}
		iters += res.Iterations
	}
	b.ReportMetric(float64(iters)/float64(b.N), "iters/op")
}

// BenchmarkRestarts measures the restart wrapper overhead.
func BenchmarkRestarts(b *testing.B) {
	start := [][]float64{{-1.5, 2}, {-1.4, 2.1}, {-1.6, 2.1}}
	for i := 0; i < b.N; i++ {
		sp := space(testfunc.Rosenbrock, 2, 0, int64(i+1))
		cfg := DefaultConfig(DET)
		cfg.MaxIterations = 40
		cfg.Tol = 1e-9
		cfg.MaxWalltime = 0
		if _, err := OptimizeWithRestarts(sp, start, RestartConfig{
			Config: cfg, Restarts: 3, Scale: []float64{0.3, 0.3},
		}); err != nil {
			b.Fatal(err)
		}
	}
}
