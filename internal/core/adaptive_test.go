package core

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

func adaptiveSpace(workers int) *sim.LocalSpace {
	return sim.NewLocalSpace(sim.LocalConfig{
		Dim:      2,
		F:        testfunc.Sphere,
		Sigma0:   sim.ConstSigma(1),
		Seed:     17,
		Parallel: true,
		Workers:  workers,
	})
}

func adaptiveConfig() Config {
	cfg := DefaultConfig(MN)
	cfg.AdaptiveSamples = true
	cfg.AdaptiveHalfWidth = 0.3 // needs t ~ (1.96/0.3)^2 ~ 43 >> InitialSample
	cfg.MaxIterations = 6
	cfg.Tol = 0 // run every leg to the iteration cap
	return cfg
}

// TestAdaptiveFloorGrows checks the core adaptive-resampling mechanics: with
// a half-width target far below the noise at the initial allotment, fresh
// points must grow their sampling until the gate clears, and the learned
// floor must spare later points the re-growth (one big first batch, then
// cheap fresh points).
func TestAdaptiveFloorGrows(t *testing.T) {
	space := adaptiveSpace(1)
	defer space.Close()
	cfg := adaptiveConfig()
	var floors []float64
	cfg.Checkpoint = func(s *Snapshot) { floors = append(floors, s.AdaptiveFloor) }
	cfg.CheckpointEvery = 1
	res, err := Optimize(space, [][]float64{{1, 1}, {2, 1}, {1, 2}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AdaptiveRounds == 0 {
		t.Error("expected adaptive growth rounds, got none")
	}
	if len(floors) == 0 || floors[0] <= cfg.InitialSample {
		t.Fatalf("adaptive floor did not grow above InitialSample: %v", floors)
	}
	want := math.Pow(1.96/cfg.AdaptiveHalfWidth, 2) // t at which 1.96*sigma0/sqrt(t) == target
	if last := floors[len(floors)-1]; last < want {
		t.Errorf("final adaptive floor %v below the half-width requirement %v", last, want)
	}
}

// TestAdaptiveRestartLegResume is the regression test for the
// mid-restart-leg snapshot bug: a snapshot taken inside a restart leg must
// record the adaptive-sampling counters (Snapshot.AdaptiveFloor,
// AdaptiveRounds), so the resumed run starts fresh points at the learned
// allotment instead of re-growing from Config.InitialSample — which would
// make every post-resume sampling schedule, and hence the whole trajectory,
// diverge from the uninterrupted run.
func TestAdaptiveRestartLegResume(t *testing.T) {
	cfg := adaptiveConfig()
	rcfg := RestartConfig{Config: cfg, Restarts: 2, Scale: []float64{1, 1}}
	initial := [][]float64{{1, 1}, {2, 1}, {1, 2}}

	type snap struct {
		raw []byte
		leg int
	}
	var snaps []snap
	rcfg.Checkpoint = func(s *Snapshot) {
		leg := 0
		if s.Restart != nil {
			leg = s.Restart.Leg
		}
		if s.AdaptiveFloor <= cfg.InitialSample {
			t.Errorf("leg %d snapshot is missing the grown adaptive floor (got %v)", leg, s.AdaptiveFloor)
		}
		raw, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap{raw, leg})
	}
	rcfg.CheckpointEvery = 1

	space := adaptiveSpace(1)
	want, err := OptimizeWithRestarts(space, initial, rcfg)
	space.Close()
	if err != nil {
		t.Fatal(err)
	}

	rcfg.Checkpoint = nil
	midLeg := -1
	for i, s := range snaps {
		if s.leg >= 1 {
			midLeg = i
			break
		}
	}
	if midLeg < 0 {
		t.Fatal("no mid-restart-leg snapshot captured")
	}
	// Resume from the first snapshot of leg 1 and from the last snapshot
	// overall: both continuations must reproduce the uninterrupted result
	// bitwise.
	for _, i := range []int{midLeg, len(snaps) - 1} {
		restored := new(Snapshot)
		if err := restored.UnmarshalBinary(snaps[i].raw); err != nil {
			t.Fatal(err)
		}
		space := adaptiveSpace(4)
		got, err := ResumeWithRestartsContext(t.Context(), space, restored, rcfg)
		space.Close()
		if err != nil {
			t.Fatalf("resume from snapshot %d (leg %d): %v", i, snaps[i].leg, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("resume from snapshot %d (leg %d) diverged:\n got  %+v\n want %+v",
				i, snaps[i].leg, got, want)
		}
	}
}

// boundedSpace narrows a LocalSpace to the bare sim.Space interface, hiding
// its RankedSampler face — modelling a backend (mw.Space) that pins every
// live point to a bounded worker rank and cannot host the speculative
// candidate prefetch.
type boundedSpace struct{ sim.Space }

// TestSpeculativeRequiresRankedSampler verifies the capability gate: on a
// backend without RankedSampler (bounded live points), Speculative must fail
// fast with a descriptive error instead of deadlocking in NewPoint.
func TestSpeculativeRequiresRankedSampler(t *testing.T) {
	inner := adaptiveSpace(1)
	defer inner.Close()
	cfg := DefaultConfig(DET)
	cfg.Speculative = true
	cfg.MaxIterations = 3
	_, err := Optimize(boundedSpace{inner}, [][]float64{{1, 1}, {2, 1}, {1, 2}}, cfg)
	if err == nil || !strings.Contains(err.Error(), "RankedSampler") {
		t.Fatalf("speculative run on a non-ranked space: err = %v, want a RankedSampler capability error", err)
	}
	// The same gate must hold on the resume path (on a space that can
	// snapshot but cannot host the prefetch).
	type boundedCkptSpace struct {
		sim.Space
		sim.Snapshotter
	}
	snap := &Snapshot{Version: SnapshotVersion, Dim: 2, Verts: make([]sim.PointState, 3)}
	if _, err := Resume(boundedCkptSpace{inner, inner}, snap, cfg); err == nil || !strings.Contains(err.Error(), "RankedSampler") {
		t.Fatalf("speculative resume on a non-ranked space: err = %v, want a RankedSampler capability error", err)
	}
}

// TestSpeculativeWasteCounted checks the speculative-mode accounting: a
// speculative run discards the unused candidates of every step and reports
// them in Result.SpeculativeWaste; the sequential driver reports zero.
func TestSpeculativeWasteCounted(t *testing.T) {
	run := func(speculative bool) *Result {
		space := adaptiveSpace(1)
		defer space.Close()
		cfg := DefaultConfig(DET)
		cfg.MaxIterations = 20
		cfg.Tol = 0
		cfg.Speculative = speculative
		res, err := Optimize(space, [][]float64{{1, 1}, {2, 1}, {1, 2}}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if got := run(false).SpeculativeWaste; got != 0 {
		t.Errorf("sequential run reports SpeculativeWaste %d, want 0", got)
	}
	spec := run(true)
	if spec.SpeculativeWaste == 0 {
		t.Error("speculative run reports zero SpeculativeWaste")
	}
	// Every step prefetches at least ref+exp+con and consumes at most one
	// (a collapse consumes the shrink set and discards all three).
	if min := spec.Iterations * 2; spec.SpeculativeWaste < min {
		t.Errorf("SpeculativeWaste %d below the structural minimum %d", spec.SpeculativeWaste, min)
	}
}
