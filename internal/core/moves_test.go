package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

// oneStep runs exactly one DET iteration on a noiseless function from a
// fixed simplex and returns the result.
func oneStep(t *testing.T, f func([]float64) float64, start [][]float64) *Result {
	t.Helper()
	sp := sim.NewLocalSpace(sim.LocalConfig{Dim: len(start[0]), F: f, Parallel: true})
	cfg := DefaultConfig(DET)
	cfg.MaxIterations = 1
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	res, err := Optimize(sp, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// f(x) = x1 on simplex {(0,0),(1,0),(0,1)}: max = (1,0); cent = (0,0.5);
// ref = (-1,1) with f=-1 < gmin=0 -> expansion point (-2,1.5) with f=-2 < -1
// -> expansion accepted, contraction level -1.
func TestDeterministicExpansionMove(t *testing.T) {
	res := oneStep(t, func(x []float64) float64 { return x[0] },
		[][]float64{{0, 0}, {1, 0}, {0, 1}})
	if res.Moves.Expansions != 1 {
		t.Fatalf("moves = %+v, want one expansion", res.Moves)
	}
	if res.ContractionLevel != -1 {
		t.Fatalf("level = %d, want -1", res.ContractionLevel)
	}
	found := false
	for _, v := range res.FinalSimplex {
		if v[0] == -2 && v[1] == 1.5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expansion point missing from %v", res.FinalSimplex)
	}
}

// Sphere on {(0,0),(2,0),(0,0.1)}: max = (2,0) g=4; cent = (0,0.05);
// ref = (-2, 0.1) g=4.01 >= gmax -> contraction (1, 0.025) g=1.0006 < 4
// -> contraction accepted, level +1.
func TestDeterministicContractionMove(t *testing.T) {
	res := oneStep(t, testfunc.Sphere, [][]float64{{0, 0}, {2, 0}, {0, 0.1}})
	if res.Moves.Contractions != 1 {
		t.Fatalf("moves = %+v, want one contraction", res.Moves)
	}
	if res.ContractionLevel != 1 {
		t.Fatalf("level = %d, want +1", res.ContractionLevel)
	}
}

// f(x) = -x1^2 on {(0,0),(1,0),(-1,0.1)}: values 0, -1, -1; max = (0,0) g=0.
// ref = (0, 0.1) has g=0, not below gmax; contraction (0, 0.025) also g=0,
// not below gmax -> collapse toward the min; level +d = +2.
func TestDeterministicCollapseMove(t *testing.T) {
	res := oneStep(t, func(x []float64) float64 { return -x[0] * x[0] },
		[][]float64{{0, 0}, {1, 0}, {-1, 0.1}})
	if res.Moves.Collapses != 1 {
		t.Fatalf("moves = %+v, want one collapse", res.Moves)
	}
	if res.ContractionLevel != 2 {
		t.Fatalf("level = %d, want +2 (d=2)", res.ContractionLevel)
	}
	// Vertices other than the min moved halfway toward it.
	// min is (1,0) (first of the two tied at -1 by order()).
	wantA := []float64{0.5, 0}  // (0,0) -> midpoint with (1,0)
	wantB := []float64{0, 0.05} // (-1,0.1) -> midpoint with (1,0)
	foundA, foundB := false, false
	for _, v := range res.FinalSimplex {
		if v[0] == wantA[0] && v[1] == wantA[1] {
			foundA = true
		}
		if v[0] == wantB[0] && v[1] == wantB[1] {
			foundB = true
		}
	}
	if !foundA || !foundB {
		t.Fatalf("collapse geometry wrong: %v", res.FinalSimplex)
	}
}

// Linear descent on a plane: the simplex must descend monotonically, never
// contract or collapse (downhill always exists), and expand at least once.
func TestPlaneDescendsWithoutContraction(t *testing.T) {
	sp := sim.NewLocalSpace(sim.LocalConfig{
		Dim: 2, F: func(x []float64) float64 { return x[0] + x[1] }, Parallel: true,
	})
	cfg := DefaultConfig(DET)
	cfg.MaxIterations = 8
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	prevBest := 0.0
	cfg.Trace = func(e TraceEvent) {
		if e.Best > prevBest {
			t.Fatalf("iteration %d: best value rose to %v", e.Iter, e.Best)
		}
		prevBest = e.Best
	}
	res, err := Optimize(sp, [][]float64{{0, 0}, {1, 0}, {0, 1}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves.Contractions != 0 || res.Moves.Collapses != 0 {
		t.Fatalf("moves = %+v: contraction/collapse on a plane", res.Moves)
	}
	if res.Moves.Expansions == 0 {
		t.Fatalf("moves = %+v: no expansion on a plane", res.Moves)
	}
}

// PC on a noiseless function must replicate DET's trajectory exactly: all
// comparisons resolve immediately (sigma = 0) on the same means.
func TestPCNoiselessMatchesDET(t *testing.T) {
	start := [][]float64{{-1.2, 1}, {-1, 1.2}, {-0.8, 0.8}}
	runAlg := func(alg Algorithm) *Result {
		sp := sim.NewLocalSpace(sim.LocalConfig{Dim: 2, F: testfunc.Rosenbrock, Parallel: true})
		cfg := DefaultConfig(alg)
		cfg.MaxIterations = 100
		cfg.Tol = 1e-12
		cfg.MaxWalltime = 0
		res, err := Optimize(sp, start, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	det := runAlg(DET)
	pc := runAlg(PC)
	if det.Iterations != pc.Iterations {
		t.Fatalf("iterations differ: DET %d vs PC %d", det.Iterations, pc.Iterations)
	}
	for i := range det.BestX {
		if det.BestX[i] != pc.BestX[i] {
			t.Fatalf("trajectories diverged: %v vs %v", det.BestX, pc.BestX)
		}
	}
	if pc.ResampleRounds != 0 {
		t.Fatalf("noiseless PC resampled %d times", pc.ResampleRounds)
	}
}

// ScopePair must confine sampling to the compared points: under the same
// seed and budget it performs fewer evaluations per resample round than
// ScopeActive (which samples all d+1+trials points every round).
func TestScopePairSamplesFewerPoints(t *testing.T) {
	runScope := func(scope ResampleScope) (evals int64, rounds int) {
		sp := sim.NewLocalSpace(sim.LocalConfig{
			Dim: 3, F: testfunc.Rosenbrock, Sigma0: sim.ConstSigma(100),
			Seed: 5, Parallel: true,
		})
		cfg := DefaultConfig(PC)
		cfg.Scope = scope
		cfg.MaxIterations = 25
		cfg.Tol = 0
		cfg.MaxWalltime = 0
		res, err := Optimize(sp, [][]float64{
			{-2, 1, 0}, {1, 2, -1}, {0, -2, 2}, {2, 0, 1},
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Evaluations, res.ResampleRounds
	}
	pairEvals, pairRounds := runScope(ScopePair)
	activeEvals, activeRounds := runScope(ScopeActive)
	if pairRounds == 0 || activeRounds == 0 {
		t.Skip("no resampling occurred; cannot compare scopes")
	}
	perPair := float64(pairEvals) / float64(pairRounds)
	perActive := float64(activeEvals) / float64(activeRounds)
	if perPair >= perActive {
		t.Fatalf("pair scope %.1f evals/round not below active scope %.1f", perPair, perActive)
	}
}

func TestResampleScopeString(t *testing.T) {
	if ScopeActive.String() != "active" || ScopePair.String() != "pair" {
		t.Fatal("scope names wrong")
	}
}
