package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/sim"
)

// RestartConfig wraps a Config with the restart strategy of section 1.3.5.1:
// the downhill simplex is prone to premature termination in curved, gently
// sloped valleys (the simplex collapses geometrically before reaching the
// basin floor), "done either by restarting the simplex or by using it as a
// local search subroutine". After each convergence a fresh simplex is
// rebuilt around the best point found so far and the optimization resumes.
type RestartConfig struct {
	Config
	// Restarts is the number of restarts after the first convergence.
	Restarts int
	// Scale gives the edge lengths of each rebuilt simplex, one entry per
	// dimension (the natural parameter scales of the problem).
	Scale []float64
	// ScaleDecay multiplies Scale at each restart (default 0.5), so later
	// restarts probe progressively finer neighbourhoods.
	ScaleDecay float64
}

// OptimizeWithRestarts runs Optimize, then restarts it from a fresh simplex
// around the best vertex the configured number of times, returning the best
// result overall. The walltime budget of the inner Config applies per leg;
// iteration counts and sampling statistics are accumulated into the returned
// Result.
func OptimizeWithRestarts(space sim.Space, initial [][]float64, rcfg RestartConfig) (*Result, error) {
	return OptimizeWithRestartsContext(context.Background(), space, initial, rcfg)
}

// OptimizeWithRestartsContext is OptimizeWithRestarts with cancellation: a
// canceled context ends the current leg (Termination "canceled") and skips
// the remaining restarts.
func OptimizeWithRestartsContext(ctx context.Context, space sim.Space, initial [][]float64, rcfg RestartConfig) (*Result, error) {
	if rcfg.Restarts < 0 {
		return nil, errors.New("core: RestartConfig.Restarts must be >= 0")
	}
	d := space.Dim()
	if len(rcfg.Scale) != d {
		return nil, fmt.Errorf("core: RestartConfig.Scale has %d entries, want %d", len(rcfg.Scale), d)
	}
	for i, s := range rcfg.Scale {
		if s <= 0 {
			return nil, fmt.Errorf("core: RestartConfig.Scale[%d] = %v must be positive", i, s)
		}
	}
	decay := rcfg.ScaleDecay
	if decay == 0 {
		decay = 0.5
	}
	if decay <= 0 || decay > 1 {
		return nil, errors.New("core: RestartConfig.ScaleDecay must be in (0, 1]")
	}

	best, err := OptimizeContext(ctx, space, initial, rcfg.Config)
	if err != nil {
		return nil, err
	}
	total := *best

	scale := append([]float64(nil), rcfg.Scale...)
	for r := 0; r < rcfg.Restarts && best.Termination != "canceled"; r++ {
		fresh := simplexAround(best.BestX, scale)
		leg, err := OptimizeContext(ctx, space, fresh, rcfg.Config)
		if err != nil {
			return nil, err
		}
		accumulate(&total, leg)
		if leg.BestG < best.BestG {
			best = leg
			total.BestX = leg.BestX
			total.BestG = leg.BestG
			total.BestSigma = leg.BestSigma
			total.FinalSimplex = leg.FinalSimplex
			total.FinalValues = leg.FinalValues
			total.FinalSpread = leg.FinalSpread
			total.Termination = leg.Termination
			total.ContractionLevel = leg.ContractionLevel
		}
		if leg.Termination == "canceled" {
			total.Termination = "canceled"
			break
		}
		for i := range scale {
			scale[i] *= decay
		}
	}
	return &total, nil
}

// simplexAround builds a right-angle simplex: the anchor point plus one
// vertex offset by scale[i] along each coordinate axis.
func simplexAround(x []float64, scale []float64) [][]float64 {
	d := len(x)
	out := make([][]float64, d+1)
	out[0] = append([]float64(nil), x...)
	for i := 0; i < d; i++ {
		v := append([]float64(nil), x...)
		v[i] += scale[i]
		out[i+1] = v
	}
	return out
}

// accumulate folds a leg's effort counters into the running total.
func accumulate(total, leg *Result) {
	total.Iterations += leg.Iterations
	total.Walltime += leg.Walltime
	total.Evaluations = leg.Evaluations // cumulative on the space already
	total.WaitRounds += leg.WaitRounds
	total.ResampleRounds += leg.ResampleRounds
	total.ForcedDecisions += leg.ForcedDecisions
	total.Moves.Reflections += leg.Moves.Reflections
	total.Moves.Expansions += leg.Moves.Expansions
	total.Moves.Contractions += leg.Moves.Contractions
	total.Moves.Collapses += leg.Moves.Collapses
}
