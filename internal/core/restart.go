package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/sim"
)

// RestartConfig wraps a Config with the restart strategy of section 1.3.5.1:
// the downhill simplex is prone to premature termination in curved, gently
// sloped valleys (the simplex collapses geometrically before reaching the
// basin floor), "done either by restarting the simplex or by using it as a
// local search subroutine". After each convergence a fresh simplex is
// rebuilt around the best point found so far and the optimization resumes.
type RestartConfig struct {
	Config
	// Restarts is the number of restarts after the first convergence.
	Restarts int
	// Scale gives the edge lengths of each rebuilt simplex, one entry per
	// dimension (the natural parameter scales of the problem).
	Scale []float64
	// ScaleDecay multiplies Scale at each restart (default 0.5), so later
	// restarts probe progressively finer neighbourhoods.
	ScaleDecay float64
}

// validate checks the restart-level parameters (the embedded Config is
// validated per leg by OptimizeContext).
func (rcfg *RestartConfig) validate(d int) error {
	if rcfg.Restarts < 0 {
		return errors.New("core: RestartConfig.Restarts must be >= 0")
	}
	if len(rcfg.Scale) != d {
		return fmt.Errorf("core: RestartConfig.Scale has %d entries, want %d", len(rcfg.Scale), d)
	}
	for i, s := range rcfg.Scale {
		if s <= 0 {
			return fmt.Errorf("core: RestartConfig.Scale[%d] = %v must be positive", i, s)
		}
	}
	if d := rcfg.ScaleDecay; d != 0 && (d < 0 || d > 1) {
		return errors.New("core: RestartConfig.ScaleDecay must be in (0, 1]")
	}
	return nil
}

// decay returns the effective scale decay factor.
func (rcfg *RestartConfig) decay() float64 {
	if rcfg.ScaleDecay == 0 {
		return 0.5
	}
	return rcfg.ScaleDecay
}

// OptimizeWithRestarts runs Optimize, then restarts it from a fresh simplex
// around the best vertex the configured number of times, returning the best
// result overall. The walltime budget of the inner Config applies per leg;
// iteration counts and sampling statistics are accumulated into the returned
// Result.
func OptimizeWithRestarts(space sim.Space, initial [][]float64, rcfg RestartConfig) (*Result, error) {
	return OptimizeWithRestartsContext(context.Background(), space, initial, rcfg)
}

// OptimizeWithRestartsContext is OptimizeWithRestarts with cancellation: a
// canceled context ends the current leg (Termination "canceled") and skips
// the remaining restarts. When Config.Checkpoint is set, every snapshot
// additionally carries the restart-leg state (Snapshot.Restart), so a killed
// multi-leg run resumes mid-leg with ResumeWithRestartsContext.
func OptimizeWithRestartsContext(ctx context.Context, space sim.Space, initial [][]float64, rcfg RestartConfig) (*Result, error) {
	if err := rcfg.validate(space.Dim()); err != nil {
		return nil, err
	}
	scale := append([]float64(nil), rcfg.Scale...)
	legCfg := rcfg.Config
	if legCfg.Checkpoint != nil {
		legCfg.Checkpoint = restartCheckpoint(rcfg.Config.Checkpoint, 0, scale, nil, nil)
	}
	best, err := OptimizeContext(ctx, space, initial, legCfg)
	if err != nil {
		return nil, err
	}
	total := *best
	return runRestartLegs(ctx, space, rcfg, best, &total, 1, scale)
}

// ResumeWithRestartsContext continues an OptimizeWithRestarts run from a
// snapshot: the in-flight leg resumes via ResumeContext, then the remaining
// restart legs run as usual. Snapshots without restart state (snap.Restart
// == nil) are treated as leg 0. The resumed run is bitwise identical to the
// uninterrupted one under the same determinism contract as ResumeContext.
func ResumeWithRestartsContext(ctx context.Context, space sim.Space, snap *Snapshot, rcfg RestartConfig) (*Result, error) {
	if err := rcfg.validate(space.Dim()); err != nil {
		return nil, err
	}
	leg, scale := 0, append([]float64(nil), rcfg.Scale...)
	var prevBest, prevTotal *Result
	if snap != nil && snap.Restart != nil {
		leg = snap.Restart.Leg
		if leg < 0 || leg > rcfg.Restarts {
			return nil, fmt.Errorf("core: snapshot restart leg %d out of range 0..%d", leg, rcfg.Restarts)
		}
		if len(snap.Restart.Scale) != len(scale) {
			return nil, fmt.Errorf("core: snapshot restart scale has %d entries, want %d",
				len(snap.Restart.Scale), len(scale))
		}
		scale = append([]float64(nil), snap.Restart.Scale...)
		prevBest, prevTotal = snap.Restart.Best, snap.Restart.Total
	}
	if leg > 0 && (prevBest == nil || prevTotal == nil) {
		return nil, fmt.Errorf("core: snapshot of restart leg %d is missing the accumulated results", leg)
	}

	legCfg := rcfg.Config
	if legCfg.Checkpoint != nil {
		legCfg.Checkpoint = restartCheckpoint(rcfg.Config.Checkpoint, leg, scale, prevBest, prevTotal)
	}
	legRes, err := ResumeContext(ctx, space, snap, legCfg)
	if err != nil {
		return nil, err
	}

	if leg == 0 {
		total := *legRes
		return runRestartLegs(ctx, space, rcfg, legRes, &total, 1, scale)
	}
	best := prevBest
	total := *prevTotal
	best = mergeLeg(&total, best, legRes)
	if legRes.Termination == "canceled" {
		total.Termination = "canceled"
		return &total, nil
	}
	for i := range scale {
		scale[i] *= rcfg.decay()
	}
	return runRestartLegs(ctx, space, rcfg, best, &total, leg+1, scale)
}

// runRestartLegs drives restart legs nextLeg..Restarts, accumulating effort
// into total and tracking the best leg. scale is mutated in place (decayed
// after each completed leg).
func runRestartLegs(ctx context.Context, space sim.Space, rcfg RestartConfig, best *Result, total *Result, nextLeg int, scale []float64) (*Result, error) {
	for r := nextLeg; r <= rcfg.Restarts && best.Termination != "canceled"; r++ {
		fresh := simplexAround(best.BestX, scale)
		legCfg := rcfg.Config
		if legCfg.Checkpoint != nil {
			legCfg.Checkpoint = restartCheckpoint(rcfg.Config.Checkpoint, r, scale, best, total)
		}
		leg, err := OptimizeContext(ctx, space, fresh, legCfg)
		if err != nil {
			return nil, err
		}
		best = mergeLeg(total, best, leg)
		if leg.Termination == "canceled" {
			total.Termination = "canceled"
			break
		}
		for i := range scale {
			scale[i] *= rcfg.decay()
		}
	}
	return total, nil
}

// mergeLeg folds a completed leg into the running totals and returns the new
// best result.
func mergeLeg(total, best, leg *Result) *Result {
	accumulate(total, leg)
	if leg.BestG < best.BestG {
		best = leg
		total.BestX = leg.BestX
		total.BestG = leg.BestG
		total.BestSigma = leg.BestSigma
		total.FinalSimplex = leg.FinalSimplex
		total.FinalValues = leg.FinalValues
		total.FinalSpread = leg.FinalSpread
		total.Termination = leg.Termination
		total.ContractionLevel = leg.ContractionLevel
	}
	return best
}

// restartCheckpoint wraps a Checkpoint callback so every snapshot of the
// current leg carries the restart-leg state. best/total are copied at leg
// start — exactly the accumulated state a resume must rebuild.
func restartCheckpoint(cb func(*Snapshot), leg int, scale []float64, best, total *Result) func(*Snapshot) {
	scaleCopy := append([]float64(nil), scale...)
	var bestCopy, totalCopy *Result
	if best != nil {
		b := *best
		bestCopy = &b
	}
	if total != nil {
		t := *total
		totalCopy = &t
	}
	return func(s *Snapshot) {
		s.Restart = &RestartState{Leg: leg, Scale: scaleCopy, Best: bestCopy, Total: totalCopy}
		cb(s)
	}
}

// UniformSimplex draws d+1 vertices with coordinates uniform over [lo, hi)
// from rng. It is the one initial-simplex draw shared by cmd/stochsimplex,
// job specs and the experiment drivers, so a seed reproduces the same
// starting simplex no matter which entry point drives the run.
func UniformSimplex(d int, lo, hi float64, rng *rand.Rand) [][]float64 {
	out := make([][]float64, d+1)
	for i := range out {
		out[i] = make([]float64, d)
		for j := range out[i] {
			out[i][j] = lo + (hi-lo)*rng.Float64()
		}
	}
	return out
}

// simplexAround builds a right-angle simplex: the anchor point plus one
// vertex offset by scale[i] along each coordinate axis.
func simplexAround(x []float64, scale []float64) [][]float64 {
	d := len(x)
	out := make([][]float64, d+1)
	out[0] = append([]float64(nil), x...)
	for i := 0; i < d; i++ {
		v := append([]float64(nil), x...)
		v[i] += scale[i]
		out[i+1] = v
	}
	return out
}

// accumulate folds a leg's effort counters into the running total.
func accumulate(total, leg *Result) {
	total.Iterations += leg.Iterations
	total.Walltime += leg.Walltime
	total.Evaluations = leg.Evaluations // cumulative on the space already
	total.WaitRounds += leg.WaitRounds
	total.ResampleRounds += leg.ResampleRounds
	total.ForcedDecisions += leg.ForcedDecisions
	total.AdaptiveRounds += leg.AdaptiveRounds
	total.SpeculativeWaste += leg.SpeculativeWaste
	total.Moves.Reflections += leg.Moves.Reflections
	total.Moves.Expansions += leg.Moves.Expansions
	total.Moves.Contractions += leg.Moves.Contractions
	total.Moves.Collapses += leg.Moves.Collapses
}
