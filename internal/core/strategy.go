package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// RunSpec is the resolved, strategy-agnostic description of one optimization
// run: what the repro facade's functional options compile into, what a job
// spec translates to, and what a Strategy consumes. The driver (Run) resolves
// the strategy by name from the process-wide registry, so adding an optimizer
// is a Register call, not a core fork.
type RunSpec struct {
	// Strategy selects the optimizer by registry name (canonical or alias,
	// case-insensitive). Empty selects "pc".
	Strategy string
	// Config carries the decision-policy parameters, sampling schedule,
	// budgets and callbacks (Trace, Checkpoint). Config.Algorithm is
	// overridden by NM-family strategies with their own policy, so the
	// strategy name is authoritative.
	Config Config
	// Initial is an explicit initial simplex (d+1 vertices of dimension d).
	// Nil lets the strategy draw its own start from the box.
	Initial [][]float64
	// Seed drives strategy-owned randomness: the uniform initial-simplex
	// draw and the swarm initialization of pso-family strategies.
	Seed int64
	// Lo and Hi bound the uniform initial-simplex draw (NM family) and the
	// search box (pso family) per coordinate. Only meaningful with HasBox.
	Lo, Hi float64
	// HasBox records that Lo/Hi were explicitly provided.
	HasBox bool
	// Restarts is the number of §1.3.5.1 restart legs after the first
	// convergence (NM family).
	Restarts int
	// RestartScale gives the rebuilt-simplex edge lengths: one entry per
	// dimension, or a single entry broadcast to every dimension, or empty
	// for 1.0 everywhere. Pso-family strategies reuse it as the local
	// refinement scale of the hybrid.
	RestartScale []float64
	// ScaleDecay multiplies the restart scale after each leg; 0 selects 0.5.
	ScaleDecay float64
	// Resume continues a checkpointed run from its snapshot instead of
	// starting fresh. Requires a Resumable strategy and a sim.Snapshotter
	// space.
	Resume *Snapshot
	// Particles is the swarm size for pso-family strategies (0 = default).
	Particles int
	// SwarmIters is the number of swarm updates for pso-family strategies
	// (0 = default).
	SwarmIters int
	// Fleet, when non-nil, reroutes the space's batch sampling through a
	// remote worker fleet before the run starts (repro.WithFleet). The space
	// must be a fresh *sim.LocalSpace and FleetObjective must name, in the
	// workers' catalogs, the function the space computes. Results are
	// bitwise identical to in-process runs.
	Fleet sim.FleetSampler
	// FleetObjective names the objective remote workers evaluate; required
	// with Fleet.
	FleetObjective string
}

// ScaleVector resolves RestartScale against the space dimension: empty means
// 1.0 per dimension, a single entry broadcasts, a d-length vector is used
// verbatim. Every entry must be positive.
func (spec *RunSpec) ScaleVector(d int) ([]float64, error) {
	out := make([]float64, d)
	switch len(spec.RestartScale) {
	case 0:
		for i := range out {
			out[i] = 1
		}
	case 1:
		for i := range out {
			out[i] = spec.RestartScale[0]
		}
	case d:
		copy(out, spec.RestartScale)
	default:
		return nil, fmt.Errorf("core: restart scale has %d entries, want 1 or %d", len(spec.RestartScale), d)
	}
	for i, s := range out {
		if s <= 0 {
			return nil, fmt.Errorf("core: restart scale[%d] = %v must be positive", i, s)
		}
	}
	return out, nil
}

// Strategy is one pluggable optimization policy: the unit of registration in
// the strategy registry. The five NM-family policies, the particle swarm and
// the PSO→simplex hybrid are all strategies; third-party optimizers join by
// implementing this interface and calling Register (through the repro facade
// outside this module).
//
// Contract:
//   - Name returns the canonical registry key, lower-case and stable (it is
//     what jobs.Spec.Algorithm and HTTP clients use).
//   - Validate rejects a spec the strategy cannot run, before any sampling,
//     with a descriptive error. It must not mutate the space.
//   - Run executes the spec under ctx on the space. Cancellation is a
//     termination criterion, not an error: the run stops within one sampling
//     round and the Result reports Termination "canceled". When spec.Resume
//     is non-nil (only if Resumable) the strategy continues from that state
//     bitwise-deterministically.
//   - Resumable reports whether the strategy supports Config.Checkpoint and
//     spec.Resume. The driver rejects checkpoint/resume specs for strategies
//     that return false.
type Strategy interface {
	Name() string
	Validate(space sim.Space, spec *RunSpec) error
	Run(ctx context.Context, space sim.Space, spec *RunSpec) (*Result, error)
	Resumable() bool
}

// AlgorithmStrategy is implemented by strategies that are one of the
// NM-family Algorithm policies; ParseAlgorithm uses it to resolve names
// through the registry.
type AlgorithmStrategy interface {
	Strategy
	Algorithm() Algorithm
}

// StrategyInfo describes one registered strategy (the GET /strategies
// payload of the optd server).
type StrategyInfo struct {
	// Name is the canonical registry name.
	Name string `json:"name"`
	// Aliases are alternative names accepted by LookupStrategy.
	Aliases []string `json:"aliases,omitempty"`
	// Resumable reports checkpoint/resume support.
	Resumable bool `json:"resumable"`
	// Algorithm is the NM-family policy name for simplex strategies, empty
	// for global strategies like pso.
	Algorithm string `json:"algorithm,omitempty"`
}

var (
	stratMu      sync.RWMutex
	stratByName  = map[string]Strategy{}
	stratAliases = map[string][]string{} // canonical -> aliases
	aliasToName  = map[string]string{}   // alias -> canonical
)

// Register adds a strategy to the process-wide registry under its canonical
// Name plus the given aliases. Names are matched case-insensitively. It
// panics on a duplicate name or alias — registration happens in package
// init, where a collision is a programming error.
func Register(s Strategy, aliases ...string) {
	name := strings.ToLower(s.Name())
	if name == "" {
		panic("core: Register: empty strategy name")
	}
	stratMu.Lock()
	defer stratMu.Unlock()
	if _, dup := stratByName[name]; dup {
		panic(fmt.Sprintf("core: Register: duplicate strategy %q", name))
	}
	if prev, dup := aliasToName[name]; dup {
		panic(fmt.Sprintf("core: Register: strategy %q collides with an alias of %q", name, prev))
	}
	// seen catches duplicates within this call too (a repeated alias, or an
	// alias equal to the strategy's own name).
	seen := map[string]bool{name: true}
	for _, a := range aliases {
		a = strings.ToLower(a)
		if _, dup := stratByName[a]; dup {
			panic(fmt.Sprintf("core: Register: alias %q collides with a strategy name", a))
		}
		if prev, dup := aliasToName[a]; dup {
			panic(fmt.Sprintf("core: Register: duplicate alias %q (already on %q)", a, prev))
		}
		if seen[a] {
			panic(fmt.Sprintf("core: Register: duplicate alias %q in one registration", a))
		}
		seen[a] = true
	}
	stratByName[name] = s
	for _, a := range aliases {
		a = strings.ToLower(a)
		aliasToName[a] = name
		stratAliases[name] = append(stratAliases[name], a)
	}
}

// Strategies returns the canonical names of every registered strategy,
// sorted.
func Strategies() []string {
	stratMu.RLock()
	defer stratMu.RUnlock()
	out := make([]string, 0, len(stratByName))
	//optlint:nondeterministic-ok names are sorted below
	for name := range stratByName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StrategyInfos returns a description of every registered strategy, sorted
// by name.
func StrategyInfos() []StrategyInfo {
	stratMu.RLock()
	defer stratMu.RUnlock()
	out := make([]StrategyInfo, 0, len(stratByName))
	//optlint:nondeterministic-ok infos are sorted by name below
	for name, s := range stratByName {
		info := StrategyInfo{Name: name, Resumable: s.Resumable()}
		info.Aliases = append(info.Aliases, stratAliases[name]...)
		sort.Strings(info.Aliases)
		if as, ok := s.(AlgorithmStrategy); ok {
			info.Algorithm = as.Algorithm().String()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LookupStrategy resolves a strategy by canonical name or alias,
// case-insensitively.
func LookupStrategy(name string) (Strategy, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	stratMu.RLock()
	defer stratMu.RUnlock()
	if s, ok := stratByName[key]; ok {
		return s, nil
	}
	if canon, ok := aliasToName[key]; ok {
		return stratByName[canon], nil
	}
	names := make([]string, 0, len(stratByName))
	//optlint:nondeterministic-ok error-message name list is sorted below
	for n := range stratByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("core: unknown strategy %q (registered: %s)", name, strings.Join(names, ", "))
}

// Run is the single driver behind repro.Run and the jobs manager: it
// resolves spec.Strategy from the registry, applies the driver-level
// validation shared by every strategy (resume/checkpoint capability, option
// conflicts), and hands the run to the strategy.
func Run(ctx context.Context, space sim.Space, spec RunSpec) (*Result, error) {
	if space == nil {
		return nil, errors.New("core: nil space")
	}
	name := spec.Strategy
	if name == "" {
		name = "pc"
	}
	strat, err := LookupStrategy(name)
	if err != nil {
		return nil, err
	}
	spec.Strategy = strat.Name()
	if spec.Resume != nil && spec.Initial != nil {
		return nil, errors.New("core: resume and an explicit initial simplex are mutually exclusive (the snapshot already carries the simplex)")
	}
	if spec.Resume != nil && !strat.Resumable() {
		return nil, fmt.Errorf("core: strategy %q does not support resume", strat.Name())
	}
	if spec.Config.Checkpoint != nil && !strat.Resumable() {
		return nil, fmt.Errorf("core: strategy %q does not support checkpointing", strat.Name())
	}
	if _, ok := space.(sim.Snapshotter); !ok {
		if spec.Resume != nil {
			return nil, fmt.Errorf("core: resume requires a space implementing sim.Snapshotter; %T does not", space)
		}
		if spec.Config.Checkpoint != nil {
			return nil, fmt.Errorf("core: Config.Checkpoint set but space %T does not implement sim.Snapshotter", space)
		}
	}
	if err := strat.Validate(space, &spec); err != nil {
		return nil, err
	}
	if spec.Fleet != nil {
		ls, ok := space.(*sim.LocalSpace)
		if !ok {
			return nil, fmt.Errorf("core: a remote fleet requires a *sim.LocalSpace; %T cannot reroute its sampling", space)
		}
		if err := ls.UseFleet(spec.Fleet, spec.FleetObjective); err != nil {
			return nil, err
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return strat.Run(ctx, space, &spec)
}

// nmStrategy adapts one NM-family decision policy (Algorithms 1-4 plus the
// Anderson criterion) to the Strategy interface. All five share the simplex
// skeleton; the strategy pins Config.Algorithm to its own policy, so the
// registry name is authoritative.
type nmStrategy struct {
	alg  Algorithm
	name string
}

func (s nmStrategy) Name() string         { return s.name }
func (s nmStrategy) Resumable() bool      { return true }
func (s nmStrategy) Algorithm() Algorithm { return s.alg }

func (s nmStrategy) Validate(space sim.Space, spec *RunSpec) error {
	if spec.Restarts < 0 {
		return errors.New("core: restarts must be >= 0")
	}
	if spec.Initial == nil && !spec.HasBox && spec.Resume == nil {
		return fmt.Errorf("core: strategy %q needs a starting simplex: provide an initial simplex, a uniform-draw box, or a resume snapshot", s.name)
	}
	if spec.HasBox && !(spec.Lo < spec.Hi) {
		return fmt.Errorf("core: simplex draw box [%v, %v) is empty", spec.Lo, spec.Hi)
	}
	if spec.Restarts > 0 {
		if _, err := spec.ScaleVector(space.Dim()); err != nil {
			return err
		}
	}
	cfg := spec.Config
	cfg.Algorithm = s.alg
	return cfg.validate(space.Dim())
}

func (s nmStrategy) Run(ctx context.Context, space sim.Space, spec *RunSpec) (*Result, error) {
	cfg := spec.Config
	cfg.Algorithm = s.alg
	initial := spec.Initial
	if initial == nil && spec.Resume == nil {
		initial = UniformSimplex(space.Dim(), spec.Lo, spec.Hi, rand.New(rand.NewSource(spec.Seed)))
	}
	if spec.Restarts > 0 {
		scale, err := spec.ScaleVector(space.Dim())
		if err != nil {
			return nil, err
		}
		rcfg := RestartConfig{Config: cfg, Restarts: spec.Restarts, Scale: scale, ScaleDecay: spec.ScaleDecay}
		if spec.Resume != nil {
			return ResumeWithRestartsContext(ctx, space, spec.Resume, rcfg)
		}
		return OptimizeWithRestartsContext(ctx, space, initial, rcfg)
	}
	if spec.Resume != nil {
		return ResumeContext(ctx, space, spec.Resume, cfg)
	}
	return OptimizeContext(ctx, space, initial, cfg)
}

func init() {
	Register(nmStrategy{DET, "det"}, "deterministic")
	Register(nmStrategy{MN, "mn"}, "max-noise", "maxnoise")
	Register(nmStrategy{PC, "pc"})
	Register(nmStrategy{PCMN, "pc+mn"}, "pcmn", "pc-mn")
	Register(nmStrategy{AndersonNM, "anderson"}, "andersonnm")
}
