package core

import (
	"math"

	"repro/internal/sim"
)

// waitPolicy selects the pre-decision sampling rule used by the NM-skeleton
// algorithms.
type waitPolicy int

const (
	waitNone     waitPolicy = iota // DET: decide on current estimates
	waitMaxNoise                   // MN: eq 2.3
	waitAnderson                   // Anderson criterion: eq 2.4
)

// decisionClock budgets the sampling effort of one simplex decision: it
// clamps each increment to the remaining per-decision and global budgets and
// enforces the round cap.
type decisionClock struct {
	o      *optimizer
	start  float64
	budget float64 // <= 0 means unlimited
	rounds int
}

func (o *optimizer) newDecision() *decisionClock {
	return &decisionClock{o: o, start: o.clock.Now(), budget: o.cfg.DecisionBudget}
}

// allow reports whether one more round of sampling may proceed and returns
// the clamped increment. A false return with forced=true means the decision
// must be made on the current means.
func (d *decisionClock) allow(dt float64) (step float64, ok, forced bool) {
	if d.o.overBudget() {
		return 0, false, false
	}
	if d.rounds >= d.o.cfg.MaxWaitRounds {
		return 0, false, true
	}
	step = d.o.clampDt(dt)
	if step <= 0 {
		return 0, false, false
	}
	if d.budget > 0 {
		rem := d.budget - (d.o.clock.Now() - d.start)
		if rem <= 0 {
			return 0, false, true
		}
		if step > rem {
			step = rem
		}
	}
	d.rounds++
	return step, true, false
}

// waitLoop samples all vertices until the policy's noise condition clears,
// the decision budget or round cap forces a decision, the walltime budget
// runs out, or the run context is canceled.
func (o *optimizer) waitLoop(policy waitPolicy) error {
	if policy == waitNone {
		return nil
	}
	dt := o.cfg.Resample
	dec := o.newDecision()
	for o.waitConditionHolds(policy) {
		step, ok, forced := dec.allow(dt)
		if !ok {
			if forced {
				o.res.ForcedDecisions++
			}
			return nil
		}
		if err := o.sampleAll(o.verts, step); err != nil {
			return err
		}
		dt *= o.cfg.ResampleGrowth
		o.res.WaitRounds++
	}
	return nil
}

// waitConditionHolds reports whether sampling must continue before a decision.
func (o *optimizer) waitConditionHolds(policy waitPolicy) bool {
	switch policy {
	case waitMaxNoise:
		// Eq 2.3: wait while max_i sigma_i^2 > k * Var_internal, with
		// Var_internal the variance of the vertices' *underlying* function
		// values ("the noise at each of the vertices is small compared to
		// the internal variance of the vertices themselves"). The observed
		// scatter of the noisy estimates contains the noise itself, so the
		// underlying variance is estimated by subtracting the average noise
		// variance — otherwise the gate would self-satisfy under uniform
		// noise and k would change the outcome rather than only the speed,
		// contradicting section 3.2.
		maxVar := 0.0
		avgVar := 0.0
		mean := 0.0
		n := float64(len(o.verts))
		for _, v := range o.verts {
			est := v.Estimate()
			s2 := est.Sigma * est.Sigma
			if s2 > maxVar {
				maxVar = s2
			}
			avgVar += s2 / n
			mean += est.Mean / n
		}
		observed := 0.0
		for _, v := range o.verts {
			d := v.Estimate().Mean - mean
			observed += d * d / n
		}
		internal := observed - avgVar
		if internal < 0 {
			internal = 0
		}
		return maxVar > o.cfg.MNK*internal
	case waitAnderson:
		// Eq 2.4: every vertex must satisfy sigma_i^2 < k1 * 2^(-l(1+k2)).
		cutoff := o.cfg.K1 * math.Exp2(-float64(o.level)*(1+o.cfg.K2))
		for _, v := range o.verts {
			s := v.Estimate().Sigma
			if s*s >= cutoff {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// stepNM performs one iteration of the Nelder-Mead skeleton shared by
// Algorithms 1 and 2 (and the AndersonNM variant): reflection, then
// expansion / reflection-accept / contraction / collapse, deciding on the
// plain running means. The wait policy runs first. The candidates are
// evaluated sequentially on demand, or — under Config.Speculative — as one
// prefetched batch before the decision.
func (o *optimizer) stepNM(policy waitPolicy) error {
	if err := o.waitLoop(policy); err != nil {
		return err
	}

	imax, _, imin := o.order()
	cent := o.centroid(imax)
	gmax := o.verts[imax].Estimate().Mean
	gmin := o.verts[imin].Estimate().Mean

	cs, err := o.newCandidates(imax, imin, cent)
	if err != nil {
		return err
	}
	defer cs.discard()

	ref, err := cs.reflection()
	if err != nil {
		return err
	}
	gref := ref.Estimate().Mean

	switch {
	case gref < gmin:
		exp, err := cs.expansion()
		if err != nil {
			return err
		}
		if exp.Estimate().Mean < gref {
			o.replace(imax, cs.claim(exp))
			o.level--
			o.lastMove = MoveExpand
			o.res.Moves.Expansions++
		} else {
			o.replace(imax, cs.claim(ref))
			o.lastMove = MoveReflect
			o.res.Moves.Reflections++
		}
	case gref < gmax:
		// The paper's Algorithm 1 accepts any reflection that improves on
		// the worst vertex (line 12), unlike the textbook smax band.
		o.replace(imax, cs.claim(ref))
		o.lastMove = MoveReflect
		o.res.Moves.Reflections++
	default:
		con, err := cs.contraction()
		if err != nil {
			return err
		}
		if con.Estimate().Mean < gmax {
			o.replace(imax, cs.claim(con))
			o.level++
			o.lastMove = MoveContract
			o.res.Moves.Contractions++
		} else {
			if err := cs.collapse(); err != nil {
				return err
			}
			o.lastMove = MoveCollapse
		}
	}
	return nil
}

// confidently reports the outcome of the PC comparison "a is below b" for
// condition cond: mean(a) + K*sigma_a < mean(b) - K*sigma_b when the
// condition uses error bars, else mean(a) < mean(b). The second return value
// distinguishes a definite verdict from the comparison itself; callers pair
// two complementary conditions and resample while both are false.
func (o *optimizer) confidently(a, b sim.Point, cond int) bool {
	ea, eb := a.Estimate(), b.Estimate()
	if o.cfg.ErrorBars.Has(cond) {
		return ea.Mean+o.cfg.K*ea.Sigma < eb.Mean-o.cfg.K*eb.Sigma
	}
	return ea.Mean < eb.Mean
}

// confidentlyGEq reports "a is above-or-equal b" at confidence for condition
// cond: mean(a) - K*sigma_a >= mean(b) + K*sigma_b with error bars, else
// mean(a) >= mean(b).
func (o *optimizer) confidentlyGEq(a, b sim.Point, cond int) bool {
	ea, eb := a.Estimate(), b.Estimate()
	if o.cfg.ErrorBars.Has(cond) {
		return ea.Mean-o.cfg.K*ea.Sigma >= eb.Mean+o.cfg.K*eb.Sigma
	}
	return ea.Mean >= eb.Mean
}

// resample gives the points of an indeterminate comparison one more round of
// concurrent sampling. Under ScopeActive (default), every active point — the
// d+1 vertices plus live trial points — accrues: in the paper's deployment a
// worker is dedicated to each active vertex, so while a comparison is
// pending all of them keep accumulating precision at no extra wall-clock
// cost ("objective function evaluations must be kept active on each of the
// d+1 vertices until it is certain that they are no longer needed"). Under
// ScopePair only the two compared points sample. Returns false when the
// budget or the round cap is exhausted and the decision must be forced, or
// when the batch errored (cancellation) and the iteration must be abandoned.
func (o *optimizer) resample(a, b sim.Point, dt *float64, dec *decisionClock) (bool, error) {
	step, ok, forced := dec.allow(*dt)
	if !ok {
		if forced {
			o.res.ForcedDecisions++
		}
		return false, nil
	}
	var batch []sim.Point
	if o.cfg.Scope == ScopePair {
		batch = []sim.Point{a, b}
	} else {
		batch = make([]sim.Point, 0, len(o.verts)+len(o.trials))
		batch = append(batch, o.verts...)
		batch = append(batch, o.trials...)
	}
	if err := o.sampleAll(batch, step); err != nil {
		return false, err
	}
	*dt *= o.cfg.ResampleGrowth
	o.res.ResampleRounds++
	return true, nil
}

// stepPC performs one iteration of the point-to-point comparison algorithm
// (Algorithm 3), optionally preceded by the max-noise wait loop (Algorithm 4,
// PC+MN). The seven numbered conditions follow the paper's pseudocode; see
// the package comment for the c5 symmetry note. Under Config.Speculative the
// expansion and contraction candidates are prefetched in the reflection's
// batch and accrue sampling with the other active points until the ladder
// commits to a branch and drops them.
func (o *optimizer) stepPC(withMaxNoise bool) error {
	if withMaxNoise {
		if err := o.waitLoop(waitMaxNoise); err != nil {
			return err
		}
	}

	imax, ismax, imin := o.order()
	cent := o.centroid(imax)
	max := o.verts[imax]
	smax := o.verts[ismax]
	min := o.verts[imin]

	cs, err := o.newCandidates(imax, imin, cent)
	if err != nil {
		return err
	}
	defer cs.discard()

	ref, err := cs.reflection()
	if err != nil {
		return err
	}

	dt := o.cfg.Resample
	dec := o.newDecision()
	for {
		switch {
		case o.confidently(ref, smax, 1): // condition 1: reflection viable
			if o.confidentlyGEq(ref, min, 2) {
				// Condition 2: ref is confidently above the best vertex;
				// plain reflection, no expansion attempt.
				o.replace(imax, cs.claim(ref))
				o.lastMove = MoveReflect
				o.res.Moves.Reflections++
				return nil
			}
			return o.pcExpansion(cs, ref)
		case o.confidentlyGEq(ref, smax, 5): // condition 5: reflection fails
			return o.pcContraction(cs, ref, max)
		default:
			// Indeterminate band between c1 and c5: resample "until
			// condition 1 or 5 is satisfied" (all active points accrue).
			ok, err := o.resample(ref, smax, &dt, dec)
			if err != nil {
				return err
			}
			if !ok {
				// Forced decision on means.
				if ref.Estimate().Mean < smax.Estimate().Mean {
					if ref.Estimate().Mean >= min.Estimate().Mean {
						o.replace(imax, cs.claim(ref))
						o.lastMove = MoveReflect
						o.res.Moves.Reflections++
						return nil
					}
					return o.pcExpansion(cs, ref)
				}
				return o.pcContraction(cs, ref, max)
			}
		}
	}
}

// pcExpansion handles conditions 3 and 4: the reflected point may be a new
// best, so the expansion point is evaluated and compared against it. The
// contraction candidate (and any speculative shrink vertices) can no longer
// be consumed and are dropped.
func (o *optimizer) pcExpansion(cs *candidateSet, ref sim.Point) error {
	exp, err := cs.expansion()
	if err != nil {
		return err
	}
	cs.dropContraction()
	imax := cs.imax
	dt := o.cfg.Resample
	dec := o.newDecision()
	for {
		switch {
		case o.confidently(exp, ref, 3): // condition 3: expansion wins
			o.replace(imax, cs.claim(exp))
			o.level--
			o.lastMove = MoveExpand
			o.res.Moves.Expansions++
			return nil
		case o.confidentlyGEq(exp, ref, 4): // condition 4: keep reflection
			o.replace(imax, cs.claim(ref))
			o.lastMove = MoveReflect
			o.res.Moves.Reflections++
			return nil
		default:
			ok, err := o.resample(exp, ref, &dt, dec)
			if err != nil {
				return err
			}
			if !ok {
				if exp.Estimate().Mean < ref.Estimate().Mean {
					o.replace(imax, cs.claim(exp))
					o.level--
					o.lastMove = MoveExpand
					o.res.Moves.Expansions++
				} else {
					o.replace(imax, cs.claim(ref))
					o.lastMove = MoveReflect
					o.res.Moves.Reflections++
				}
				return nil
			}
		}
	}
}

// pcContraction handles conditions 6 and 7: reflection failed, so the
// contraction point is evaluated against the worst vertex; if even the
// contraction cannot beat it, the simplex collapses toward the best vertex.
// The expansion candidate can no longer be consumed and is dropped.
func (o *optimizer) pcContraction(cs *candidateSet, ref, max sim.Point) error {
	con, err := cs.contraction()
	if err != nil {
		return err
	}
	cs.dropExpansion()
	imax := cs.imax
	dt := o.cfg.Resample
	dec := o.newDecision()
	for {
		switch {
		case o.confidently(con, max, 6): // condition 6: contraction accepted
			o.replace(imax, cs.claim(con))
			o.level++
			o.lastMove = MoveContract
			o.res.Moves.Contractions++
			return nil
		case o.confidentlyGEq(con, max, 7): // condition 7: collapse
			if err := cs.collapse(); err != nil {
				return err
			}
			o.lastMove = MoveCollapse
			return nil
		default:
			ok, err := o.resample(con, max, &dt, dec)
			if err != nil {
				return err
			}
			if !ok {
				if con.Estimate().Mean < max.Estimate().Mean {
					o.replace(imax, cs.claim(con))
					o.level++
					o.lastMove = MoveContract
					o.res.Moves.Contractions++
				} else {
					if err := cs.collapse(); err != nil {
						return err
					}
					o.lastMove = MoveCollapse
				}
				return nil
			}
		}
	}
}
