package core

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

func TestRegistryHasNMFamily(t *testing.T) {
	names := Strategies()
	for _, want := range []string{"det", "mn", "pc", "pc+mn", "anderson"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Strategies() = %v missing %q", names, want)
		}
	}
}

func TestLookupStrategyAliasesAndCase(t *testing.T) {
	cases := map[string]string{
		"pc":         "pc",
		"PC":         "pc",
		"pc+mn":      "pc+mn",
		"pcmn":       "pc+mn",
		"pc-mn":      "pc+mn",
		"PC-MN":      "pc+mn",
		"PCMN":       "pc+mn",
		"anderson":   "anderson",
		"andersonnm": "anderson",
		"AndersonNM": "anderson",
		"  det ":     "det",
	}
	for in, want := range cases {
		s, err := LookupStrategy(in)
		if err != nil {
			t.Errorf("LookupStrategy(%q): %v", in, err)
			continue
		}
		if s.Name() != want {
			t.Errorf("LookupStrategy(%q).Name() = %q, want %q", in, s.Name(), want)
		}
	}
	if _, err := LookupStrategy("bogus"); err == nil || !strings.Contains(err.Error(), "registered:") {
		t.Errorf("LookupStrategy(bogus) = %v, want error listing registered strategies", err)
	}
}

func TestParseAlgorithmThroughRegistry(t *testing.T) {
	cases := map[string]Algorithm{
		"det": DET, "DET": DET,
		"mn": MN, "MN": MN,
		"pc": PC, "PC": PC,
		"pcmn": PCMN, "pc+mn": PCMN, "pc-mn": PCMN, "PCMN": PCMN, "PC+MN": PCMN,
		"anderson": AndersonNM, "andersonnm": AndersonNM, "AndersonNM": AndersonNM,
	}
	for in, want := range cases {
		got, err := ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseAlgorithm("no-such-alg"); err == nil {
		t.Error("ParseAlgorithm accepted an unknown name")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		})
	}
	mustPanic("duplicate name", func() { Register(nmStrategy{PC, "pc"}) })
	mustPanic("alias repeated in one call", func() {
		Register(nmStrategy{PC, "dup-test"}, "dt", "dt")
	})
	mustPanic("alias equals own name", func() {
		Register(nmStrategy{PC, "dup-test2"}, "dup-test2")
	})
}

func TestStrategyInfosShape(t *testing.T) {
	infos := StrategyInfos()
	byName := map[string]StrategyInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	pcmn, ok := byName["pc+mn"]
	if !ok || !pcmn.Resumable || pcmn.Algorithm != "PC+MN" {
		t.Fatalf("pc+mn info = %+v, ok=%v", pcmn, ok)
	}
	wantAliases := map[string]bool{"pcmn": true, "pc-mn": true}
	for _, a := range pcmn.Aliases {
		delete(wantAliases, a)
	}
	if len(wantAliases) > 0 {
		t.Errorf("pc+mn aliases %v missing %v", pcmn.Aliases, wantAliases)
	}
}

// TestRunMatchesOptimize verifies the driver path (strategy resolved by
// name, simplex drawn from the box) reproduces a direct OptimizeContext call
// bitwise for every NM policy.
func TestRunMatchesOptimize(t *testing.T) {
	for _, name := range []string{"det", "mn", "pc", "pc+mn", "anderson"} {
		alg, err := ParseAlgorithm(name)
		if err != nil {
			t.Fatal(err)
		}
		newSpace := func() *sim.LocalSpace {
			return sim.NewLocalSpace(sim.LocalConfig{
				Dim: 3, F: testfunc.Rosenbrock, Sigma0: sim.ConstSigma(20),
				Seed: 5, Parallel: true,
			})
		}
		cfg := DefaultConfig(alg)
		cfg.MaxWalltime = 2e3
		cfg.Tol = 0

		direct, err := OptimizeContext(context.Background(), newSpace(),
			UniformSimplex(3, -4, 4, rand.New(rand.NewSource(5))), cfg)
		if err != nil {
			t.Fatalf("%s: direct: %v", name, err)
		}
		viaRun, err := Run(context.Background(), newSpace(), RunSpec{
			Strategy: name, Config: cfg,
			Seed: 5, Lo: -4, Hi: 4, HasBox: true,
		})
		if err != nil {
			t.Fatalf("%s: Run: %v", name, err)
		}
		if !reflect.DeepEqual(direct, viaRun) {
			t.Errorf("%s: Run result differs from direct OptimizeContext\n direct: %+v\n    run: %+v",
				name, direct, viaRun)
		}
	}
}
