package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestWelfordAddBatchMatchesSequentialProperty pins AddBatch's contract: it
// must be bitwise indistinguishable from feeding the same values through Add
// one at a time — same count, same mean bits, same variance bits — for any
// sequence and any split into batches. The batched sampling path (fleet
// results, zero-alloc local batches) depends on this for the repo-wide
// bitwise-determinism guarantee.
func TestWelfordAddBatchMatchesSequentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	prop := func() bool {
		xs := randSeq(rng)
		var seq, bat Welford
		for _, x := range xs {
			seq.Add(x)
		}
		// Feed the batched accumulator the same sequence in random chunks.
		for lo := 0; lo < len(xs); {
			hi := lo + rng.Intn(len(xs)-lo+1)
			bat.AddBatch(xs[lo:hi])
			lo = hi
		}
		return seq.N() == bat.N() &&
			math.Float64bits(seq.Mean()) == math.Float64bits(bat.Mean()) &&
			math.Float64bits(seq.Variance()) == math.Float64bits(bat.Variance())
	}
	if err := quick.Check(prop, quickCfg(78, 300)); err != nil {
		t.Fatal(err)
	}
}

// TestWelfordAddBatchEmpty checks the zero-length batch is a no-op.
func TestWelfordAddBatchEmpty(t *testing.T) {
	var w Welford
	w.Add(3)
	before := w
	w.AddBatch(nil)
	w.AddBatch([]float64{})
	if w != before {
		t.Fatalf("empty AddBatch changed state: %+v -> %+v", before, w)
	}
}

// TestWelfordAllocFree is the allocation budget on the per-draw statistics
// update: both the scalar and the batched fold must not allocate.
func TestWelfordAllocFree(t *testing.T) {
	var w Welford
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if allocs := testing.AllocsPerRun(200, func() { w.Add(1.5) }); allocs != 0 {
		t.Errorf("Welford.Add: %.1f allocs per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() { w.AddBatch(xs) }); allocs != 0 {
		t.Errorf("Welford.AddBatch: %.1f allocs per call, want 0", allocs)
	}
}
