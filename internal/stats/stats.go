// Package stats provides the summary statistics and histogram machinery the
// experiment drivers use to reproduce the paper's figures: distributions of
// log10 minimum-value ratios over 100 initial simplex states (Figs 3.5-3.17)
// and the N/R/D aggregate measures of Tables 3.1-3.2.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for fewer than two
// values).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the median of xs (NaN for empty input).
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile of xs by linear interpolation, q in [0,1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Min and Max return the extrema (NaN for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (NaN for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// FractionBelow returns the fraction of values strictly below the threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// LogRatio computes log10(a/b) with both values floored at eps, the transform
// the paper applies to pairs of minimum function values ("these ratios are
// presented on a logarithmic scale, so a value of zero means that the two
// methods performed equally"). Values below eps are clamped so a method that
// hits the exact minimum yields a finite, strongly negative ratio.
func LogRatio(a, b, eps float64) float64 {
	if a < eps {
		a = eps
	}
	if b < eps {
		b = eps
	}
	return math.Log10(a / b)
}

// LogRatios applies LogRatio pairwise.
func LogRatios(as, bs []float64, eps float64) []float64 {
	if len(as) != len(bs) {
		panic("stats: LogRatios length mismatch")
	}
	out := make([]float64, len(as))
	for i := range as {
		out[i] = LogRatio(as[i], bs[i], eps)
	}
	return out
}

// Histogram is a fixed-width binned count over [Lo, Hi); values outside the
// range are clamped into the first/last bin, as the figures do.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram [%v,%v) with %d bins", lo, hi, bins))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add counts one value.
func (h *Histogram) Add(x float64) {
	b := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
	h.N++
}

// AddAll counts every value.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// MaxCount returns the largest bin count.
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// Welford is a streaming mean/variance accumulator. It is the online-moment
// engine behind the noise layer's sigma estimation and the adaptive-sampling
// confidence gate: observations fold in one at a time, and the running
// moments are exact (no catastrophic cancellation) regardless of how the
// stream was split into increments.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
//
//optlint:noalloc
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// AddBatch folds a slice of observations in one call, the batched face of
// Add for hot loops: the moments stay in registers across the slice instead
// of a load/store round-trip per observation. The fold is the exact
// sequential recurrence of Add — batching changes call overhead, never
// arithmetic — so the result is bitwise identical to adding the observations
// one at a time, which is what the determinism contract requires.
//
//optlint:noalloc
func (w *Welford) AddBatch(xs []float64) {
	n, mean, m2 := w.n, w.mean, w.m2
	for _, x := range xs {
		n++
		d := x - mean
		mean += d / float64(n)
		m2 += d * (x - mean)
	}
	w.n, w.mean, w.m2 = n, mean, m2
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN before any observation).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running unbiased variance (NaN below two
// observations).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// StdErr returns the standard error of the running mean, StdDev/sqrt(n)
// (NaN below two observations).
func (w *Welford) StdErr() float64 {
	if w.n < 2 {
		return math.NaN()
	}
	return w.StdDev() / math.Sqrt(float64(w.n))
}

// HalfWidth returns the z-scaled confidence half-width of the running mean,
// z * StdErr. A mean is resolved to half-width h at confidence z when
// HalfWidth(z) <= h; the adaptive resampling gate keeps sampling until it is.
func (w *Welford) HalfWidth(z float64) float64 { return z * w.StdErr() }

// Merge folds another accumulator's observations into w, as if every
// observation both accumulators saw had been Added to w (Chan et al.'s
// parallel combination of partial moments). Merging the per-shard
// accumulators of a partitioned stream agrees with a single sequential pass
// up to floating-point reassociation; the moments remain exact in the
// Welford sense (no catastrophic cancellation).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	na, nb := float64(w.n), float64(o.n)
	n := na + nb
	d := o.mean - w.mean
	w.mean += d * nb / n
	w.m2 += o.m2 + d*d*na*nb/n
	w.n += o.n
}

// WelfordState is the serializable state of a Welford accumulator, used by
// the noise layer's checkpoint format. The three moments round-trip exactly
// through JSON (Go float64 encoding is lossless), preserving bitwise
// determinism across a snapshot/restore cycle.
type WelfordState struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// State exports the accumulator's moments.
func (w *Welford) State() WelfordState { return WelfordState{N: w.n, Mean: w.mean, M2: w.m2} }

// Restore overwrites the accumulator's moments from a snapshot.
func (w *Welford) Restore(st WelfordState) { w.n, w.mean, w.m2 = st.N, st.Mean, st.M2 }
