package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", v, 32.0/7.0)
	}
}

func TestEmptyInputs(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) ||
		!math.IsNaN(Median(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty-input statistics should be NaN")
	}
}

func TestMedianQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Median(xs); m != 2.5 {
		t.Fatalf("Median = %v, want 2.5", m)
	}
	if q := Quantile(xs, 0); q != 1 {
		t.Fatalf("Q0 = %v, want 1", q)
	}
	if q := Quantile(xs, 1); q != 4 {
		t.Fatalf("Q1 = %v, want 4", q)
	}
	if q := Quantile(xs, 0.25); math.Abs(q-1.75) > 1e-12 {
		t.Fatalf("Q.25 = %v, want 1.75", q)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestMinMaxFraction(t *testing.T) {
	xs := []float64{-1, 5, 2}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if f := FractionBelow(xs, 2); math.Abs(f-1.0/3.0) > 1e-12 {
		t.Fatalf("FractionBelow = %v", f)
	}
}

func TestLogRatio(t *testing.T) {
	if r := LogRatio(100, 1, 1e-12); r != 2 {
		t.Fatalf("LogRatio(100,1) = %v, want 2", r)
	}
	if r := LogRatio(1, 100, 1e-12); r != -2 {
		t.Fatalf("LogRatio(1,100) = %v, want -2", r)
	}
	if r := LogRatio(0, 1e-6, 1e-12); r != -6 {
		t.Fatalf("clamped LogRatio = %v, want -6", r)
	}
	if r := LogRatio(0, 0, 1e-12); r != 0 {
		t.Fatalf("LogRatio(0,0) = %v, want 0", r)
	}
}

func TestLogRatiosMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on mismatch")
		}
	}()
	LogRatios([]float64{1}, []float64{1, 2}, 1e-12)
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1.9, 2, 5, 9.99, -3, 100})
	// bins: [0,2) [2,4) [4,6) [6,8) [8,10); -3 clamps into bin 0, 100 into bin 4.
	want := []int{3, 1, 1, 0, 2}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Fatalf("bin %d = %d, want %d (all %v)", i, c, want[i], h.Counts)
		}
	}
	if h.N != 7 {
		t.Fatalf("N = %d, want 7", h.N)
	}
	if h.MaxCount() != 3 {
		t.Fatalf("MaxCount = %d", h.MaxCount())
	}
	if c := h.BinCenter(0); c != 1 {
		t.Fatalf("BinCenter(0) = %v, want 1", c)
	}
}

func TestHistogramInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid histogram")
		}
	}()
	NewHistogram(1, 1, 5)
}

// Property: Welford matches the two-pass mean and variance.
func TestWelfordMatchesTwoPass(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 2
		xs := make([]float64, count)
		var w Welford
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 3
			w.Add(xs[i])
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return math.Abs(w.Mean()-Mean(xs)) < 1e-9*scale &&
			math.Abs(w.Variance()-Variance(xs)) < 1e-9*math.Max(1, Variance(xs)) &&
			w.N() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: histogram never loses a count and bin totals equal N.
func TestHistogramConservesCountsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(-5, 5, 10)
		clean := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			clean++
		}
		total := 0
		for _, c := range h.Counts {
			total += c
		}
		return total == clean && h.N == clean
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
