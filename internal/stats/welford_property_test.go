package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// This file is the property-test layer over the Welford accumulator, the
// online-moment engine under the noise layer's sigma estimation, the
// adaptive-sampling confidence gate and the checkpoint format. The
// properties are checked with testing/quick over a seeded generator, so
// failures reproduce.

// quickCfg returns a deterministic testing/quick configuration.
func quickCfg(seed int64, max int) *quick.Config {
	return &quick.Config{Rand: rand.New(rand.NewSource(seed)), MaxCount: max}
}

// randSeq draws a random-length float sequence with mixed scales — large
// offsets plus small jitter is exactly the regime naive two-pass variance
// loses digits in.
func randSeq(rng *rand.Rand) []float64 {
	n := 1 + rng.Intn(60)
	offset := math.Pow(10, float64(rng.Intn(7)-3))
	out := make([]float64, n)
	for i := range out {
		out[i] = offset * (1 + 1e-6*rng.NormFloat64())
	}
	return out
}

// TestWelfordStateRestoreRoundTripProperty checks restore exactness: an
// accumulator restored from State and then fed more observations is bitwise
// indistinguishable from one that saw the whole stream uninterrupted —
// whatever the split point. This is the property the checkpoint format's
// bitwise-resume contract needs from the stats layer.
func TestWelfordStateRestoreRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		xs := randSeq(rng)
		cut := rng.Intn(len(xs) + 1)

		var whole Welford
		for _, x := range xs {
			whole.Add(x)
		}

		var first Welford
		for _, x := range xs[:cut] {
			first.Add(x)
		}
		var resumed Welford
		resumed.Restore(first.State())
		for _, x := range xs[cut:] {
			resumed.Add(x)
		}

		ws, rs := whole.State(), resumed.State()
		if ws != rs {
			t.Errorf("split at %d/%d: resumed state %+v != whole state %+v", cut, len(xs), rs, ws)
			return false
		}
		// The state must also capture everything: a second round trip of the
		// final state is the identity.
		var again Welford
		again.Restore(rs)
		return again.State() == rs
	}
	if err := quick.Check(f, quickCfg(1, 400)); err != nil {
		t.Fatal(err)
	}
}

// TestWelfordMergeMatchesSequentialProperty checks merge-vs-sequential
// agreement: splitting a random sequence into random shards, accumulating
// each shard independently and merging must agree with the single
// sequential pass on count exactly and on mean/variance to floating-point
// reassociation accuracy.
func TestWelfordMergeMatchesSequentialProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	const relTol = 1e-9
	close := func(a, b float64) bool {
		if math.IsNaN(a) && math.IsNaN(b) {
			return true
		}
		scale := math.Max(math.Abs(a), math.Abs(b))
		return math.Abs(a-b) <= relTol*math.Max(scale, 1)
	}
	f := func() bool {
		xs := randSeq(rng)
		var seq Welford
		for _, x := range xs {
			seq.Add(x)
		}

		// Random sharding, including empty shards (merging one is a no-op).
		var merged Welford
		for i := 0; i < len(xs); {
			var shard Welford
			if rng.Intn(6) > 0 { // one in six shards stays empty
				w := 1 + rng.Intn(len(xs)-i)
				for _, x := range xs[i : i+w] {
					shard.Add(x)
				}
				i += w
			}
			merged.Merge(shard)
		}

		if merged.N() != seq.N() {
			t.Errorf("merged N = %d, sequential N = %d", merged.N(), seq.N())
			return false
		}
		if !close(merged.Mean(), seq.Mean()) {
			t.Errorf("merged mean %v, sequential %v (n=%d)", merged.Mean(), seq.Mean(), seq.N())
			return false
		}
		if !close(merged.Variance(), seq.Variance()) {
			t.Errorf("merged variance %v, sequential %v (n=%d)", merged.Variance(), seq.Variance(), seq.N())
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg(2, 400)); err != nil {
		t.Fatal(err)
	}
}

// TestWelfordMergeIntoEmpty pins the two identity shapes: merging into a
// fresh accumulator copies the argument exactly, and merging an empty
// argument changes nothing.
func TestWelfordMergeIntoEmpty(t *testing.T) {
	var a Welford
	for _, x := range []float64{1, 2, 3.5} {
		a.Add(x)
	}
	var b Welford
	b.Merge(a)
	if b.State() != a.State() {
		t.Errorf("merge into empty: %+v != %+v", b.State(), a.State())
	}
	before := a.State()
	a.Merge(Welford{})
	if a.State() != before {
		t.Errorf("merge of empty changed state: %+v != %+v", a.State(), before)
	}
}

// TestWelfordMergeAgainstTwoPass crosses Merge with the package's two-pass
// reference implementations on a concrete case.
func TestWelfordMergeAgainstTwoPass(t *testing.T) {
	xs := []float64{3, -1, 4, 1, -5, 9, 2, 6}
	var a, b Welford
	for _, x := range xs[:3] {
		a.Add(x)
	}
	for _, x := range xs[3:] {
		b.Add(x)
	}
	a.Merge(b)
	if a.N() != len(xs) {
		t.Fatalf("N = %d, want %d", a.N(), len(xs))
	}
	if got, want := a.Mean(), Mean(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got, want := a.Variance(), Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}
