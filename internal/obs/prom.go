package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): series grouped by base name under
// one # HELP/# TYPE header, histograms expanded into cumulative _bucket
// lines with `le` labels plus _sum and _count. Output ordering is
// deterministic (sorted by series name) so scrapes diff cleanly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	names := r.names()
	var lastBase string
	for _, name := range names {
		base, labels, err := splitName(name)
		if err != nil {
			return err // unreachable: names were validated at registration
		}
		r.mu.Lock()
		kind, help := r.kinds[base], r.help[base]
		counter, gauge, hist := r.counters[name], r.gauges[name], r.hists[name]
		r.mu.Unlock()
		if base != lastBase {
			if help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", base, help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, kind); err != nil {
				return err
			}
			lastBase = base
		}
		switch {
		case counter != nil:
			if _, err := fmt.Fprintf(w, "%s %d\n", name, counter.Value()); err != nil {
				return err
			}
		case gauge != nil:
			if _, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(gauge.Value())); err != nil {
				return err
			}
		case hist != nil:
			if err := writeHistogram(w, base, labels, hist.View()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets with
// the `le` label merged into any baked-in labels, then _sum and _count.
func writeHistogram(w io.Writer, base, labels string, v HistogramView) error {
	prefix := labels
	if prefix != "" {
		prefix += ","
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	var cum uint64
	for i, c := range v.Counts {
		cum += c
		le := "+Inf"
		if i < len(v.Bounds) {
			le = formatFloat(v.Bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", base, prefix, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", base, suffix, formatFloat(v.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, suffix, cum)
	return err
}

// formatFloat renders a float the way Prometheus expects: shortest
// round-trip form, with +Inf/-Inf/NaN spelled out.
func formatFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
