package obs

import "testing"

// This file is the allocation-budget layer for the metric hot path.
// Counter/Gauge/Histogram ops sit inside the sampling inner loops
// (sched.DoN, sim batch advance, the dist frame codecs); the contract is
// that recording a metric is pure atomics — zero allocations per op.
// The budget is 0, not "small": any regression fails the build.

func TestMetricOpsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total")
	g := r.Gauge("alloc_gauge")
	h := r.Histogram("alloc_seconds", nil)
	cases := []struct {
		name string
		op   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Counter.Add", func() { c.Add(3) }},
		{"Counter.Value", func() { _ = c.Value() }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Gauge.Add", func() { g.Add(-0.5) }},
		{"Histogram.Observe", func() { h.Observe(0.0042) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.op); allocs != 0 {
			t.Errorf("%s: %.1f allocs per op, want 0", tc.name, allocs)
		}
	}
}

// TestMetricOpsAllocFreeDisabled pins the stripped path too: with
// recording off, ops must still be alloc-free (they are the branch
// alone).
func TestMetricOpsAllocFreeDisabled(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	r := NewRegistry()
	c := r.Counter("alloc_off_total")
	h := r.Histogram("alloc_off_seconds", nil)
	if allocs := testing.AllocsPerRun(1000, func() { c.Inc(); h.Observe(1) }); allocs != 0 {
		t.Errorf("disabled ops: %.1f allocs per op, want 0", allocs)
	}
}
