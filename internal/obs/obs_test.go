package obs

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestRegistryConcurrentStress is the -race correctness layer: N
// goroutines hammer the same counter, gauge and histogram through fresh
// registry lookups with randomized per-goroutine workloads, and the final
// values must equal the exact sums of what everyone recorded. Any lost
// update, torn float or registry race fails here.
func TestRegistryConcurrentStress(t *testing.T) {
	const goroutines = 16
	r := NewRegistry()
	var (
		wg        sync.WaitGroup
		wantCount int64
		wantGauge float64
		wantObs   uint64
		mu        sync.Mutex
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			var localCount int64
			var localGauge float64
			var localObs uint64
			n := 500 + rng.Intn(1500)
			for i := 0; i < n; i++ {
				switch rng.Intn(4) {
				case 0:
					r.Counter("stress_total").Inc()
					localCount++
				case 1:
					d := int64(rng.Intn(10))
					r.Counter("stress_total").Add(d)
					localCount += d
				case 2:
					d := float64(rng.Intn(7)) - 3
					r.Gauge("stress_gauge").Add(d)
					localGauge += d
				case 3:
					r.Histogram("stress_seconds", nil).Observe(rng.Float64())
					localObs++
				}
			}
			mu.Lock()
			wantCount += localCount
			wantGauge += localGauge
			wantObs += localObs
			mu.Unlock()
		}(int64(g) + 1)
	}
	wg.Wait()
	if got := r.Counter("stress_total").Value(); got != wantCount {
		t.Errorf("counter = %d, want %d", got, wantCount)
	}
	if got := r.Gauge("stress_gauge").Value(); got != wantGauge {
		t.Errorf("gauge = %v, want %v", got, wantGauge)
	}
	v := r.Histogram("stress_seconds", nil).View()
	if v.Count != wantObs {
		t.Errorf("histogram count = %d, want %d", v.Count, wantObs)
	}
	var sum uint64
	for _, c := range v.Counts {
		sum += c
	}
	if sum != wantObs {
		t.Errorf("bucket sum = %d, want %d", sum, wantObs)
	}
}

// TestHistogramBucketBoundaries pins the `le` semantics: a value exactly
// on a bound lands in that bound's bucket (inclusive upper limit), one
// ulp above lands in the next, below-first goes to bucket 0, and
// above-last goes to the overflow bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0}, {0.5, 0}, {1, 0},
		{math.Nextafter(1, 2), 1}, {2, 1},
		{3, 2}, {4, 2},
		{math.Nextafter(4, 5), 3}, {100, 3},
	}
	for _, c := range cases {
		before := h.View()
		h.Observe(c.v)
		after := h.View()
		for i := range after.Counts {
			want := before.Counts[i]
			if i == c.bucket {
				want++
			}
			if after.Counts[i] != want {
				t.Errorf("Observe(%v): bucket %d count %d, want %d", c.v, i, after.Counts[i], want)
			}
		}
	}
	v := h.View()
	if v.Count != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", v.Count, len(cases))
	}
}

// TestHistogramQuantiles is the quantile-extraction table: known
// observation sets against the linear-interpolation estimates the view
// must produce, including the clamp-to-last-bound overflow rule and the
// empty-histogram zero.
func TestHistogramQuantiles(t *testing.T) {
	cases := []struct {
		name   string
		bounds []float64
		obs    []float64
		q      float64
		want   float64
	}{
		// 10 values uniformly filling one bucket (0,10]: p50 ranks 5 of
		// 10 into the bucket, interpolating to 0 + 10*(5/10) = 5.
		{"single-bucket-p50", []float64{10}, seq(1, 10), 0.5, 5},
		{"single-bucket-p90", []float64{10}, seq(1, 10), 0.9, 9},
		// Two buckets, 5 values in each: p50 is exactly the first bound.
		{"two-buckets-p50", []float64{5, 10}, seq(1, 10), 0.5, 5},
		// p75 ranks 7.5: 2.5 of the 5 values into (5,10] -> 5 + 5*(2.5/5).
		{"two-buckets-p75", []float64{5, 10}, seq(1, 10), 0.75, 7.5},
		// Everything above the last bound clamps to it.
		{"overflow-clamps", []float64{1, 2}, []float64{50, 60, 70}, 0.99, 2},
		// q<=0 interpolates to the bottom of the first occupied bucket.
		{"q-zero", []float64{5, 10}, seq(1, 10), 0, 0},
		// q>=1 lands at the top of the last occupied bucket.
		{"q-one", []float64{5, 10}, seq(1, 10), 1, 10},
		{"empty", []float64{1, 2}, nil, 0.5, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			h := newHistogram(c.bounds)
			for _, v := range c.obs {
				h.Observe(v)
			}
			if got := h.View().Quantile(c.q); math.Abs(got-c.want) > 1e-12 {
				t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
			}
		})
	}
}

// seq returns the floats lo..hi inclusive.
func seq(lo, hi int) []float64 {
	out := make([]float64, 0, hi-lo+1)
	for v := lo; v <= hi; v++ {
		out = append(out, float64(v))
	}
	return out
}

// TestSnapshotIsolation: mutating metrics after taking a snapshot must
// not alter the snapshot — views are copies, not aliases.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("iso_total")
	g := r.Gauge("iso_gauge")
	h := r.Histogram("iso_seconds", []float64{1, 10})
	c.Add(3)
	g.Set(7)
	h.Observe(0.5)
	h.Observe(5)

	snap := r.Snapshot()
	c.Add(100)
	g.Set(-1)
	for i := 0; i < 50; i++ {
		h.Observe(100)
	}

	if snap.Counters["iso_total"] != 3 {
		t.Errorf("snapshot counter = %d, want 3", snap.Counters["iso_total"])
	}
	if snap.Gauges["iso_gauge"] != 7 {
		t.Errorf("snapshot gauge = %v, want 7", snap.Gauges["iso_gauge"])
	}
	hv := snap.Histograms["iso_seconds"]
	if hv.Count != 2 || hv.Sum != 5.5 {
		t.Errorf("snapshot histogram count=%d sum=%v, want 2 and 5.5", hv.Count, hv.Sum)
	}
	if got := []uint64{hv.Counts[0], hv.Counts[1], hv.Counts[2]}; got[0] != 1 || got[1] != 1 || got[2] != 0 {
		t.Errorf("snapshot buckets = %v, want [1 1 0]", got)
	}
}

// TestSetEnabled: disabled metrics record nothing and re-enabling
// resumes on the same handles.
func TestSetEnabled(t *testing.T) {
	defer SetEnabled(true)
	r := NewRegistry()
	c := r.Counter("toggle_total")
	g := r.Gauge("toggle_gauge")
	h := r.Histogram("toggle_seconds", nil)
	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(2)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.View().Count != 0 {
		t.Errorf("disabled metrics recorded: c=%d g=%v h=%d", c.Value(), g.Value(), h.View().Count)
	}
	SetEnabled(true)
	c.Inc()
	if c.Value() != 1 {
		t.Errorf("re-enabled counter = %d, want 1", c.Value())
	}
}

// TestRegistryKindConflict: one base name cannot be two metric kinds.
func TestRegistryKindConflict(t *testing.T) {
	r := NewRegistry()
	r.Counter(`dup_total{a="1"}`)
	// Same base as a different labeled counter series is fine.
	r.Counter(`dup_total{a="2"}`)
	defer func() {
		if recover() == nil {
			t.Error("registering dup_total as a gauge did not panic")
		}
	}()
	r.Gauge("dup_total")
}

// TestSplitName covers the series-name grammar, both ways.
func TestSplitName(t *testing.T) {
	good := []struct{ name, base, labels string }{
		{"a_total", "a_total", ""},
		{`x{k="v"}`, "x", `k="v"`},
		{`dist_frames_total{codec="binary",dir="tx"}`, "dist_frames_total", `codec="binary",dir="tx"`},
		{"ns:sub_metric", "ns:sub_metric", ""},
	}
	for _, c := range good {
		base, labels, err := splitName(c.name)
		if err != nil || base != c.base || labels != c.labels {
			t.Errorf("splitName(%q) = %q, %q, %v; want %q, %q", c.name, base, labels, err, c.base, c.labels)
		}
	}
	bad := []string{"", "9lead", "has space", "x{", "x{}", `{k="v"}`, `x{k="v"`, `x{k="v}`}
	for _, name := range bad {
		if _, _, err := splitName(name); err == nil {
			t.Errorf("splitName(%q) did not error", name)
		}
	}
}

// TestHistogramMean sanity-checks the derived mean.
func TestHistogramMean(t *testing.T) {
	h := newHistogram([]float64{10})
	if got := h.View().Mean(); got != 0 {
		t.Errorf("empty mean = %v, want 0", got)
	}
	h.Observe(2)
	h.Observe(4)
	if got := h.View().Mean(); got != 3 {
		t.Errorf("mean = %v, want 3", got)
	}
}
