package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestEventNDJSON: every event is exactly one parseable JSON line with
// ts + event leading and the caller's fields in order.
func TestEventNDJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.now = func() time.Time { return time.Date(2026, 8, 8, 12, 0, 0, 123456789, time.UTC) }
	l.Event("worker_join", "worker", 3, "name", "agent-a", "capacity", 2, "err", error(nil))
	l.Event("job_state", "job", "j1", "state", "running")

	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not JSON: %v\n%s", err, lines[0])
	}
	if first["event"] != "worker_join" || first["worker"] != float64(3) || first["name"] != "agent-a" {
		t.Errorf("unexpected fields: %v", first)
	}
	if ts, ok := first["ts"].(string); !ok || ts != "2026-08-08T12:00:00.123456789Z" {
		t.Errorf("ts = %v", first["ts"])
	}
	if !strings.HasPrefix(lines[0], `{"ts":`) || !strings.Contains(lines[0], `,"event":"worker_join",`) {
		t.Errorf("field order not preserved: %s", lines[0])
	}
}

// TestEventAwkwardValues: errors, Stringers, durations and malformed
// key/value lists must still produce a valid line, never drop the event.
func TestEventAwkwardValues(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Event("fatal",
		"err", errors.New("dial tcp: no route"),
		"backoff", 250*time.Millisecond,
		42, "non-string key",
		"dangling")
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, buf.String())
	}
	if m["err"] != "dial tcp: no route" {
		t.Errorf("err = %v", m["err"])
	}
	if m["backoff"] != "250ms" {
		t.Errorf("backoff = %v", m["backoff"])
	}
	if m["42"] != "non-string key" {
		t.Errorf("coerced key = %v", m["42"])
	}
	if v, present := m["dangling"]; !present || v != nil {
		t.Errorf("dangling key = %v (present=%v), want null", v, present)
	}
}

// TestNilLoggerSafe: a nil *Logger (and nil sinks) discard silently so
// instrumented code needs no nil checks.
func TestNilLoggerSafe(t *testing.T) {
	var l *Logger
	l.Event("anything", "k", "v")
	l.Logf("still %s", "fine")
	if NewLogger(nil) != nil {
		t.Error("NewLogger(nil) should return nil")
	}
	if NewFuncLogger(nil) != nil {
		t.Error("NewFuncLogger(nil) should return nil")
	}
}

// TestFuncLoggerShim: the legacy printf adapter renders events as flat
// "event k=v" lines through the wrapped function.
func TestFuncLoggerShim(t *testing.T) {
	var got []string
	l := NewFuncLogger(func(format string, args ...any) {
		got = append(got, fmt.Sprintf(format, args...))
	})
	l.Event("session_end", "err", errors.New("eof"), "reconnect_in", 500*time.Millisecond)
	l.Logf("plain %d", 7)
	if len(got) != 2 {
		t.Fatalf("got %d lines: %v", len(got), got)
	}
	if got[0] != "session_end err=eof reconnect_in=500ms" {
		t.Errorf("rendered event = %q", got[0])
	}
	if got[1] != "log msg=plain 7" {
		t.Errorf("rendered Logf = %q", got[1])
	}
}

// TestLoggerConcurrent: concurrent events on one logger never interleave
// mid-line (every line parses) and none are lost.
func TestLoggerConcurrent(t *testing.T) {
	var buf syncBuffer
	l := NewLogger(&buf)
	var wg sync.WaitGroup
	const writers, per = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Event("tick", "writer", w, "i", i)
			}
		}(w)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != writers*per {
		t.Fatalf("got %d lines, want %d", len(lines), writers*per)
	}
	for _, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("corrupt line: %v\n%s", err, line)
		}
	}
}

// syncBuffer serializes writes; the logger's own mutex should make this
// redundant, but the test must not race on the buffer itself.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
