package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestWritePrometheus pins the exposition format: one HELP/TYPE header
// per base name shared across labeled variants, counters and gauges as
// plain samples, histograms as cumulative le-buckets plus _sum/_count
// with the le label merged into baked-in labels.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(`frames_total{codec="binary",dir="tx"}`, "frames per codec per direction").Add(7)
	r.Counter(`frames_total{codec="json",dir="rx"}`).Add(2)
	r.Gauge("workers", "live workers").Set(3)
	h := r.Histogram(`rtt_seconds{proto="binary"}`, []float64{0.1, 1}, "dispatch RTT")
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	wantLines := []string{
		`# HELP frames_total frames per codec per direction`,
		`# TYPE frames_total counter`,
		`frames_total{codec="binary",dir="tx"} 7`,
		`frames_total{codec="json",dir="rx"} 2`,
		`# HELP rtt_seconds dispatch RTT`,
		`# TYPE rtt_seconds histogram`,
		`rtt_seconds_bucket{proto="binary",le="0.1"} 2`,
		`rtt_seconds_bucket{proto="binary",le="1"} 3`,
		`rtt_seconds_bucket{proto="binary",le="+Inf"} 4`,
		`rtt_seconds_sum{proto="binary"} 5.6`,
		`rtt_seconds_count{proto="binary"} 4`,
		`# TYPE workers gauge`,
		`workers 3`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in output:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE frames_total counter") != 1 {
		t.Errorf("TYPE header not shared across labeled variants:\n%s", out)
	}
	// Every non-comment line is "name[{labels}] value".
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}
}

// TestMetricsHandler: the HTTP wrapper serves the same body with the
// Prometheus text content type.
func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total").Add(5)
	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 5\n") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

// TestDebugMux: the standalone debug mux (the optworker -debug-addr
// surface) serves /metrics and the pprof index.
func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("mux_total").Inc()
	mux := r.DebugMux()
	for _, path := range []string{"/metrics", "/debug/pprof/", "/debug/pprof/cmdline"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}
