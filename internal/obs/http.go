package obs

import (
	"net/http"
	"net/http/pprof"
)

// MetricsHandler returns an http.Handler serving the registry in
// Prometheus text exposition format — the body of GET /metrics.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// RegisterDebug wires the observability surface onto mux: GET /metrics
// (the registry) and the standard net/http/pprof profile endpoints under
// /debug/pprof/. It exists because both optd and the optworker debug
// listener expose the same pair, and because the commands use non-default
// muxes (pprof only self-registers on http.DefaultServeMux).
func (r *Registry) RegisterDebug(mux *http.ServeMux) {
	mux.Handle("GET /metrics", r.MetricsHandler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// DebugMux returns a standalone mux carrying the registry's /metrics and
// the pprof endpoints — the whole surface of the optworker -debug-addr
// listener.
func (r *Registry) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	r.RegisterDebug(mux)
	return mux
}
