// Package obs is the process-wide observability core: dependency-free
// metrics (atomic counters, gauges and fixed-bucket histograms behind a
// named registry) plus a structured NDJSON event logger (events.go) and
// the HTTP exposition surface (/metrics in Prometheus text format and
// net/http/pprof wiring, http.go).
//
// The design contract is that instrumentation must be safe to leave on in
// the hottest paths of the sampling engine:
//
//   - Counter.Inc/Add, Gauge.Set/Add and Histogram.Observe are single
//     atomic operations (the histogram adds a branch-free binary search
//     over its bounds) and never allocate. An AllocsPerRun budget test
//     pins this at 0 allocs per op.
//   - Metric handles are resolved once, at package init of the
//     instrumented package; the registry map is never touched on a hot
//     path.
//   - Instrumentation reads no randomness and influences no control flow,
//     so results stay bitwise-identical with metrics on or off
//     (SetEnabled toggles recording globally; the conformance goldens and
//     all determinism flags are CI-asserted with instrumentation on).
//
// Metric names follow Prometheus conventions. A name may carry a baked-in
// label set, e.g. `dist_frames_total{codec="binary",dir="tx"}`: the
// registry treats the whole string as the series key, and the /metrics
// renderer groups series by base name so labeled variants share one
// # TYPE line.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// enabled is the global recording switch. It defaults to on; benchmarks
// flip it off to measure the instrumented-vs-stripped overhead
// (BENCH_sched.json obs_overhead rows).
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns metric recording on or off process-wide. Handles stay
// valid either way; while disabled, Inc/Add/Set/Observe are branch-only
// no-ops. Events (Logger) are not affected.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether metric recording is on. Instrumented call sites
// that pay measurable setup per record (e.g. a time.Now pair around a
// batch) should gate on it so disabling obs strips that cost too.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing metric. The zero value is ready
// to use; concurrent use is safe.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
//
//optlint:noalloc
func (c *Counter) Inc() {
	if enabled.Load() {
		c.v.Add(1)
	}
}

// Add adds n. Counters are monotonic: n must be >= 0 (negative deltas are
// ignored rather than corrupting the series).
//
//optlint:noalloc
func (c *Counter) Add(n int64) {
	if n > 0 && enabled.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
//
//optlint:noalloc
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, worker
// counts). The zero value is ready to use; concurrent use is safe.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
//
//optlint:noalloc
func (g *Gauge) Set(v float64) {
	if enabled.Load() {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adjusts the gauge by delta (negative to decrease).
//
//optlint:noalloc
func (g *Gauge) Add(delta float64) {
	if !enabled.Load() {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
//
//optlint:noalloc
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
//
//optlint:noalloc
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
//
//optlint:noalloc
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// LatencyBuckets is the default histogram bucket layout for durations in
// seconds: roughly-doubling bounds from 50µs to 100s, wide enough to
// cover a single cheap draw batch up to a slow fleet round-trip.
var LatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10, 30, 100,
}

// Histogram is a fixed-bucket distribution metric. Bounds are inclusive
// upper limits (Prometheus `le` semantics); one implicit overflow bucket
// catches values above the last bound. Observe is a bounded binary
// search plus three atomic ops and never allocates.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; immutable after creation
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i] > bounds[i-1]) {
			panic(fmt.Sprintf("obs: histogram bounds not strictly ascending at %d: %v", i, bounds))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
//
//optlint:noalloc
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	// First index whose bound is >= v; len(bounds) is the overflow bucket.
	i, j := 0, len(h.bounds)
	for i < j {
		m := int(uint(i+j) >> 1)
		if h.bounds[m] < v {
			i = m + 1
		} else {
			j = m
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// View copies the histogram's current state. The copy is isolated:
// observations after View do not alter it.
func (h *Histogram) View() HistogramView {
	v := HistogramView{
		Bounds: h.bounds, // immutable, safe to share
		Counts: make([]uint64, len(h.buckets)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		c := h.buckets[i].Load()
		v.Counts[i] = c
		v.Count += c
	}
	return v
}

// HistogramView is a point-in-time copy of a histogram. Counts is
// per-bucket (not cumulative) and one longer than Bounds; the final entry
// is the overflow bucket. Count is derived from Counts so quantiles stay
// internally consistent even if the snapshot raced with writers.
type HistogramView struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
}

// Mean returns Sum/Count, or 0 for an empty histogram.
func (v HistogramView) Mean() float64 {
	if v.Count == 0 {
		return 0
	}
	return v.Sum / float64(v.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) by linear
// interpolation within the bucket containing that rank, assuming values
// are uniform inside a bucket — the standard Prometheus histogram_quantile
// estimate. The first bucket interpolates from 0; ranks landing in the
// overflow bucket clamp to the last finite bound. An empty histogram
// returns 0.
func (v HistogramView) Quantile(q float64) float64 {
	if v.Count == 0 || len(v.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(v.Count)
	cum := 0.0
	for i, c := range v.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(v.Bounds) {
			break // overflow bucket: clamp below
		}
		lower := 0.0
		if i > 0 {
			lower = v.Bounds[i-1]
		}
		upper := v.Bounds[i]
		return lower + (upper-lower)*(rank-prev)/float64(c)
	}
	return v.Bounds[len(v.Bounds)-1]
}

// Registry owns a namespace of metrics. Lookups are get-or-create and
// mutex-guarded; they are meant for package init, not hot paths — hold
// the returned handle. The zero value is not usable; use NewRegistry or
// the process-wide Default.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	kinds    map[string]string // base name -> "counter"|"gauge"|"histogram"
	help     map[string]string // base name -> help text
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		kinds:    make(map[string]string),
		help:     make(map[string]string),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that every instrumented
// package registers into and that optd/optworker expose on /metrics.
func Default() *Registry { return defaultRegistry }

// Counter returns the counter registered under name, creating it on
// first use. An optional help string documents the series (kept per base
// name; the first non-empty wins). Panics if the name is malformed or
// already registered as a different kind.
func (r *Registry) Counter(name string, help ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "counter", help)
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use. Panics on a malformed name or a kind conflict.
func (r *Registry) Gauge(name string, help ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "gauge", help)
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use (nil bounds = LatencyBuckets).
// Later lookups ignore bounds. Panics on a malformed name or a kind
// conflict.
func (r *Registry) Histogram(name string, bounds []float64, help ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register(name, "histogram", help)
	h := r.hists[name]
	if h == nil {
		if bounds == nil {
			bounds = LatencyBuckets
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// register validates the series name and records kind + help under its
// base name. Caller holds r.mu.
func (r *Registry) register(name, kind string, help []string) {
	base, _, err := splitName(name)
	if err != nil {
		panic("obs: " + err.Error())
	}
	if prev, ok := r.kinds[base]; ok && prev != kind {
		panic(fmt.Sprintf("obs: %s already registered as %s, requested %s", base, prev, kind))
	}
	r.kinds[base] = kind
	if len(help) > 0 && help[0] != "" && r.help[base] == "" {
		r.help[base] = help[0]
	}
}

// splitName splits a series name into base name and the raw label text
// (without braces), validating the base against the Prometheus metric
// name charset and the label text for balanced quoting.
func splitName(name string) (base, labels string, err error) {
	base = name
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") || i == 0 {
			return "", "", fmt.Errorf("malformed series name %q", name)
		}
		base, labels = name[:i], name[i+1:len(name)-1]
		if labels == "" || strings.Count(labels, `"`)%2 != 0 {
			return "", "", fmt.Errorf("malformed label set in %q", name)
		}
	}
	for i := 0; i < len(base); i++ {
		c := base[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return "", "", fmt.Errorf("invalid metric name %q", name)
		}
	}
	if base == "" {
		return "", "", fmt.Errorf("empty metric name")
	}
	return base, labels, nil
}

// Snapshot is a point-in-time copy of every series in a registry, keyed
// by full series name. It marshals cleanly to JSON (the enriched
// /healthz embeds one) and is isolated from later metric updates.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters,omitempty"`
	Gauges     map[string]float64       `json:"gauges,omitempty"`
	Histograms map[string]HistogramView `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every registered series.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramView, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.View()
	}
	return s
}

// names returns every registered series name, sorted, for deterministic
// rendering.
func (r *Registry) names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		out = append(out, n)
	}
	for n := range r.gauges {
		out = append(out, n)
	}
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
