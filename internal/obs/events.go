package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Logger is the structured event log: one JSON object per line (NDJSON),
// each with a "ts" timestamp and an "event" type followed by the caller's
// key/value fields. It replaces the ad-hoc `Logf func(string, ...any)`
// fields that used to be scattered across dist, jobs and the commands.
//
// A nil *Logger is valid and discards everything, so instrumented code
// never needs a nil check. Writes are serialized by a mutex; lines are
// written with a single Write call so concurrent loggers sharing a pipe
// (optd and its workers on stderr) do not interleave mid-line.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	fn  func(format string, args ...any) // legacy sink, used when w is nil
	now func() time.Time                 // test hook; nil = time.Now
	buf bytes.Buffer
}

// NewLogger returns a Logger writing NDJSON lines to w. A nil w yields a
// discard-everything logger (same as a nil *Logger).
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w}
}

// NewFuncLogger adapts a legacy printf-style sink into a Logger: each
// event is rendered as one "event k=v ..." line through fn. It is the
// compatibility shim that keeps `Logf func(string, ...any)` config fields
// working while call sites move to typed events. A nil fn yields a
// discard-everything logger.
func NewFuncLogger(fn func(format string, args ...any)) *Logger {
	if fn == nil {
		return nil
	}
	return &Logger{fn: fn}
}

// Event emits one structured event. typ names the event ("worker_join",
// "job_state", ...); kv is alternating key, value pairs. Non-string keys
// and a trailing odd value are tolerated (rendered via fmt) rather than
// dropped, so a malformed call site still leaves evidence in the log.
// Values marshal as JSON; errors and fmt.Stringers render as strings.
func (l *Logger) Event(typ string, kv ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now
	if l.now != nil {
		now = l.now
	}
	if l.w == nil {
		// Legacy printf sink: render flat.
		var b bytes.Buffer
		b.WriteString(typ)
		for i := 0; i < len(kv); i += 2 {
			key := keyString(kv[i])
			if i+1 < len(kv) {
				fmt.Fprintf(&b, " %s=%v", key, eventValue(kv[i+1]))
			} else {
				fmt.Fprintf(&b, " %s=?", key)
			}
		}
		l.fn("%s", b.String())
		return
	}
	b := &l.buf
	b.Reset()
	b.WriteString(`{"ts":`)
	writeJSON(b, now().UTC().Format(time.RFC3339Nano))
	b.WriteString(`,"event":`)
	writeJSON(b, typ)
	for i := 0; i < len(kv); i += 2 {
		b.WriteByte(',')
		writeJSON(b, keyString(kv[i]))
		b.WriteByte(':')
		if i+1 < len(kv) {
			writeJSON(b, eventValue(kv[i+1]))
		} else {
			b.WriteString("null")
		}
	}
	b.WriteString("}\n")
	l.w.Write(b.Bytes())
}

// Logf is the printf-style shim: the formatted message becomes a "log"
// event with a single "msg" field. Existing call sites that held a
// `Logf func(string, ...any)` can hold logger.Logf instead.
func (l *Logger) Logf(format string, args ...any) {
	if l == nil {
		return
	}
	l.Event("log", "msg", fmt.Sprintf(format, args...))
}

// keyString coerces an event key to a string.
func keyString(k any) string {
	if s, ok := k.(string); ok {
		return s
	}
	return fmt.Sprint(k)
}

// eventValue maps awkward-to-marshal values (errors, Stringers) to
// strings and passes everything else through to the JSON encoder.
func eventValue(v any) any {
	switch t := v.(type) {
	case error:
		return t.Error()
	case fmt.Stringer:
		return t.String()
	case time.Duration:
		return t.String()
	}
	return v
}

// writeJSON appends the JSON encoding of v, falling back to a quoted
// fmt rendering if v does not marshal (a logger must not drop events
// over an unmarshalable field).
func writeJSON(b *bytes.Buffer, v any) {
	enc, err := json.Marshal(v)
	if err != nil {
		enc, _ = json.Marshal(fmt.Sprintf("%v", v))
	}
	b.Write(enc)
}
