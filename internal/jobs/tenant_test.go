package jobs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/jobstore"
)

// waitJobState polls until the job reaches the wanted state.
func waitJobState(t *testing.T, m *Manager, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, err := m.Get(id)
		if err != nil {
			t.Fatalf("Get(%s): %v", id, err)
		}
		if st.State == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

func tenantSpec(tenant string, seed int64) Spec {
	spec := smallSpec(seed)
	spec.Tenant = tenant
	spec.MaxIterations = 3
	return spec
}

// TestTenantQuotaMaxQueued: submissions beyond the queued cap fail with
// ErrQuotaExceeded, other tenants are unaffected, and capacity freed by a
// cancellation is reusable.
func TestTenantQuotaMaxQueued(t *testing.T) {
	m := newManager(t, Config{
		MaxConcurrent: 1,
		DefaultQuota:  Quota{MaxQueued: 2},
		Objectives:    slowObjectives(time.Millisecond),
	})
	// Occupy the single run slot so later submissions stay queued.
	blocker := slowSpec(1)
	blocker.Tenant = "alpha"
	blockerID, err := m.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, m, blockerID, StateRunning)

	var queued []string
	for i := 0; i < 2; i++ {
		id, err := m.Submit(tenantSpec("alpha", int64(i)))
		if err != nil {
			t.Fatalf("within-quota submission %d: %v", i, err)
		}
		queued = append(queued, id)
	}
	if _, err := m.Submit(tenantSpec("alpha", 9)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("over-quota submission: %v, want ErrQuotaExceeded", err)
	}
	// Another tenant has its own budget.
	if _, err := m.Submit(tenantSpec("beta", 1)); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	// Canceling a queued job frees a slot immediately.
	if err := m.Cancel(queued[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tenantSpec("alpha", 10)); err != nil {
		t.Fatalf("submission after freeing quota: %v", err)
	}

	stats := m.Tenants()
	if len(stats) != 2 || stats[0].Tenant != "alpha" || stats[1].Tenant != "beta" {
		t.Fatalf("unexpected tenant stats: %+v", stats)
	}
	if stats[0].Rejected != 1 || stats[0].Submitted != 4 {
		t.Fatalf("alpha accounting: %+v", stats[0])
	}
}

// TestTenantMaxRunningNoHeadOfLineBlocking: a tenant at its running cap
// keeps its jobs queued, but jobs of other tenants behind them in the FIFO
// still get slots.
func TestTenantMaxRunningNoHeadOfLineBlocking(t *testing.T) {
	m := newManager(t, Config{
		MaxConcurrent: 2,
		TenantQuotas:  map[string]Quota{"capped": {MaxRunning: 1}},
		Objectives:    slowObjectives(time.Millisecond),
	})
	first := slowSpec(1)
	first.Tenant = "capped"
	firstID, err := m.Submit(first)
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, m, firstID, StateRunning)

	// Second capped job queues ahead of the other tenant's job.
	second := slowSpec(2)
	second.Tenant = "capped"
	secondID, err := m.Submit(second)
	if err != nil {
		t.Fatal(err)
	}
	otherID, err := m.Submit(tenantSpec("other", 3))
	if err != nil {
		t.Fatal(err)
	}
	// The other tenant's job must pass the capped one.
	waitJobState(t, m, otherID, StateDone)
	if st, _ := m.Get(secondID); st.State != StateQueued {
		t.Fatalf("capped job should still be queued, is %s", st.State)
	}
	// Freeing the capped tenant's slot lets its queued job run.
	if err := m.Cancel(firstID); err != nil {
		t.Fatal(err)
	}
	waitJobState(t, m, secondID, StateRunning)
	if err := m.Cancel(secondID); err != nil {
		t.Fatal(err)
	}
}

// TestTenantRateLimit: the token bucket admits Burst submissions
// immediately, then rejects with ErrRateLimited until time refills it.
func TestTenantRateLimit(t *testing.T) {
	m := newManager(t, Config{
		MaxConcurrent: 2,
		TenantQuotas:  map[string]Quota{"metered": {RatePerSec: 0.001, Burst: 2}},
	})
	for i := 0; i < 2; i++ {
		if _, err := m.Submit(tenantSpec("metered", int64(i))); err != nil {
			t.Fatalf("burst submission %d: %v", i, err)
		}
	}
	if _, err := m.Submit(tenantSpec("metered", 9)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-rate submission: %v, want ErrRateLimited", err)
	}
	// An unmetered tenant is unaffected.
	if _, err := m.Submit(tenantSpec("free", 1)); err != nil {
		t.Fatal(err)
	}
}

// TestTenantStorm is the satellite race storm: N tenants × M goroutines
// hammer submit/cancel/status/quota-exhaust concurrently (run under -race
// in CI). At the end every accepted job must be terminal and each
// tenant's queued/running accounting must balance to exactly zero.
func TestTenantStorm(t *testing.T) {
	const (
		tenants    = 4
		goroutines = 4 // per tenant
		perG       = 8 // submissions per goroutine
	)
	m := newManager(t, Config{
		MaxConcurrent: 4,
		// A multi-worker fleet so batches go through the concurrent
		// fair-share queues (Workers 1 would run serially in-caller), and
		// tight quotas so the storm constantly trips them.
		Workers:      4,
		DefaultQuota: Quota{MaxQueued: 6, MaxRunning: 2},
	})
	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		ids []string
	)
	for ten := 0; ten < tenants; ten++ {
		tenant := fmt.Sprintf("tenant-%d", ten)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(tenant string, g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(g)*1000 + 1)) //optlint:nondeterministic-ok test-local jitter
				for i := 0; i < perG; i++ {
					spec := tenantSpec(tenant, int64(g*perG+i))
					id, err := m.Submit(spec)
					if err != nil {
						if !errors.Is(err, ErrQuotaExceeded) && !errors.Is(err, ErrRateLimited) {
							t.Errorf("unexpected submit error: %v", err)
							return
						}
						// Quota full: let the pool drain a little.
						time.Sleep(time.Duration(rng.Intn(4)+1) * time.Millisecond)
						continue
					}
					mu.Lock()
					ids = append(ids, id)
					mu.Unlock()
					switch rng.Intn(3) {
					case 0:
						if err := m.Cancel(id); err != nil {
							t.Errorf("Cancel(%s): %v", id, err)
						}
					case 1:
						if _, err := m.Get(id); err != nil {
							t.Errorf("Get(%s): %v", id, err)
						}
					}
				}
			}(tenant, g)
		}
	}
	wg.Wait()

	for _, id := range ids {
		if _, err := m.Wait(id); err != nil {
			// Canceled-before-start and failed results are fine; the wait
			// itself must resolve.
			continue
		}
	}
	// Quota accounting must balance to zero for every tenant.
	for _, ts := range m.Tenants() {
		if ts.Queued != 0 || ts.Running != 0 {
			t.Errorf("tenant %s accounting did not balance: queued=%d running=%d", ts.Tenant, ts.Queued, ts.Running)
		}
		if ts.Submitted == 0 && ts.Rejected == 0 {
			t.Errorf("tenant %s saw no traffic", ts.Tenant)
		}
	}
	if got := len(m.Tenants()); got != tenants {
		t.Errorf("expected %d tenants, got %d", tenants, got)
	}
	// The fleet's fair-share ledger must balance too: every batch task
	// handed to a worker was charged to exactly one tenant, nothing stays
	// queued once every job is terminal, and the per-tenant dispatched
	// counters sum to the scheduler's total.
	var dispatched uint64
	for _, sh := range m.pool.Shares() {
		if sh.Queued != 0 {
			t.Errorf("tenant %q still has %d fleet tasks queued", sh.Tenant, sh.Queued)
		}
		dispatched += sh.Dispatched
	}
	if total := m.pool.Dispatched(); dispatched != total {
		t.Errorf("per-tenant fleet dispatches sum to %d, scheduler total is %d", dispatched, total)
	}
	if m.pool.Dispatched() == 0 {
		t.Error("storm dispatched no fleet batches through the fair-share queues")
	}
}

// TestSubmitWithID pins the router-facing contract: explicit IDs are
// honored, duplicates and invalid IDs are rejected, and numeric-form
// explicit IDs reserve their number against auto-assignment.
func TestSubmitWithID(t *testing.T) {
	m := newManager(t, Config{MaxConcurrent: 2})
	id, err := m.SubmitWithID("r7-j000005", tenantSpec("", 1))
	if err != nil || id != "r7-j000005" {
		t.Fatalf("SubmitWithID: %q, %v", id, err)
	}
	if _, err := m.SubmitWithID("r7-j000005", tenantSpec("", 2)); err == nil {
		t.Fatal("duplicate explicit ID accepted")
	}
	if _, err := m.SubmitWithID("../evil", tenantSpec("", 3)); err == nil {
		t.Fatal("invalid explicit ID accepted")
	}
	if _, err := m.SubmitWithID("j000010", tenantSpec("", 4)); err != nil {
		t.Fatal(err)
	}
	auto, err := m.Submit(tenantSpec("", 5))
	if err != nil {
		t.Fatal(err)
	}
	if auto != "j000011" {
		t.Fatalf("auto ID after explicit j000010 = %s, want j000011", auto)
	}
}

// TestSubmitTimeDurability: a job killed while still QUEUED (never ran,
// never checkpointed) must survive into the next manager via its
// submit-time record and then complete.
func TestSubmitTimeDurability(t *testing.T) {
	for _, kind := range []string{"file", "wal"} {
		t.Run(kind, func(t *testing.T) {
			dir := t.TempDir()
			m1, err := New(Config{
				MaxConcurrent: 1,
				CheckpointDir: dir,
				StoreKind:     kind,
				Objectives:    slowObjectives(time.Millisecond),
			})
			if err != nil {
				t.Fatal(err)
			}
			blocker := slowSpec(1)
			blockerID, err := m1.Submit(blocker)
			if err != nil {
				t.Fatal(err)
			}
			waitJobState(t, m1, blockerID, StateRunning)
			queuedSpec := tenantSpec("acme", 2)
			queuedID, err := m1.Submit(queuedSpec)
			if err != nil {
				t.Fatal(err)
			}
			m1.Close() // the "kill": queued job never started

			m2 := newManager(t, Config{MaxConcurrent: 2, CheckpointDir: dir, StoreKind: kind,
				Objectives: slowObjectives(time.Millisecond)})
			ids, err := m2.Recover()
			if err != nil {
				t.Fatalf("Recover: %v", err)
			}
			found := false
			for _, id := range ids {
				if id == queuedID {
					found = true
				}
			}
			if !found {
				t.Fatalf("queued job %s not recovered (got %v)", queuedID, ids)
			}
			res, err := m2.Wait(queuedID)
			if err != nil {
				t.Fatal(err)
			}
			st, err := m2.Get(queuedID)
			if err != nil {
				t.Fatal(err)
			}
			if !st.Resumed || st.Tenant != "acme" {
				t.Fatalf("recovered job lost identity: %+v", st)
			}
			// The recovered-from-spec run must match a fresh run bitwise.
			ref := newManager(t, Config{MaxConcurrent: 1})
			refID, err := ref.Submit(queuedSpec)
			if err != nil {
				t.Fatal(err)
			}
			refRes, err := ref.Wait(refID)
			if err != nil {
				t.Fatal(err)
			}
			if res.BestG != refRes.BestG || res.Iterations != refRes.Iterations {
				t.Fatalf("recovered run diverged: %v/%d vs %v/%d",
					res.BestG, res.Iterations, refRes.BestG, refRes.Iterations)
			}
		})
	}
}

// TestRecoverFromAdoptsForeignStore: the failover primitive — a manager
// adopts a dead replica's store, runs its jobs, and cleans their records
// out of the adopted store on completion.
func TestRecoverFromAdoptsForeignStore(t *testing.T) {
	deadDir := t.TempDir()
	m1, err := New(Config{MaxConcurrent: 1, CheckpointDir: deadDir,
		Objectives: slowObjectives(time.Millisecond)})
	if err != nil {
		t.Fatal(err)
	}
	blockerID, err := m1.Submit(slowSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, m1, blockerID, StateRunning)
	queuedID, err := m1.Submit(tenantSpec("acme", 2))
	if err != nil {
		t.Fatal(err)
	}
	m1.Close() // the dead replica

	// The survivor has its own store and adopts the dead one's.
	m2 := newManager(t, Config{MaxConcurrent: 2, CheckpointDir: t.TempDir(),
		Objectives: slowObjectives(time.Millisecond)})
	st, err := jobstore.OpenFile(deadDir)
	if err != nil {
		t.Fatal(err)
	}
	ids, err := m2.RecoverFrom(st)
	if err != nil {
		t.Fatalf("RecoverFrom: %v", err)
	}
	if len(ids) != 2 {
		t.Fatalf("adopted %v, want both jobs", ids)
	}
	if _, err := m2.Wait(queuedID); err != nil {
		t.Fatal(err)
	}
	// The blocker has no iteration cap; cancel it instead of waiting.
	if err := m2.Cancel(blockerID); err != nil {
		t.Fatal(err)
	}

	// The completed job's record must be gone from the ADOPTED store.
	recs, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.ID == queuedID {
			t.Fatalf("completed adopted job %s still recorded in the dead store", queuedID)
		}
	}
}

// brokenStore fails every Put: the submit path must roll its tenant
// admission back so the failed attempt leaves no phantom queued job.
type brokenStore struct{}

func (brokenStore) Put(string, []byte) error         { return errors.New("disk full") }
func (brokenStore) Delete(string) error              { return nil }
func (brokenStore) List() ([]jobstore.Record, error) { return nil, nil }
func (brokenStore) Kind() string                     { return "broken" }
func (brokenStore) Close() error                     { return nil }

// TestTenantQuotaRollbackOnStoreFailure: a submission that passes admission
// but fails persistence must release its queued-quota reservation —
// otherwise a flaky disk permanently eats the tenant's quota.
func TestTenantQuotaRollbackOnStoreFailure(t *testing.T) {
	m := newManager(t, Config{
		MaxConcurrent: 1,
		Store:         brokenStore{},
		DefaultQuota:  Quota{MaxQueued: 1},
	})
	for i := 0; i < 3; i++ {
		_, err := m.Submit(tenantSpec("acme", int64(i)))
		if err == nil {
			t.Fatalf("submit %d: want persistence error, got success", i)
		}
		if errors.Is(err, ErrQuotaExceeded) {
			t.Fatalf("submit %d hit the quota: the failed attempts leaked their reservations (%v)", i, err)
		}
	}
	for _, ts := range m.Tenants() {
		if ts.Tenant == "acme" && ts.Queued != 0 {
			t.Fatalf("tenant accounting after rollbacks: queued = %d, want 0", ts.Queued)
		}
	}
}

// TestQuotaCapDoesNotDrainBucket is the regression test for the admission
// ordering bug: rejections at the queued-job cap must not consume rate
// tokens. Before the fix, every capped submission first burned a token, so
// a tenant hammering a full queue drained its bucket and then ate spurious
// rate errors after the queue freed up.
func TestQuotaCapDoesNotDrainBucket(t *testing.T) {
	m := newManager(t, Config{
		MaxConcurrent: 1,
		TenantQuotas:  map[string]Quota{"acme": {MaxQueued: 1, RatePerSec: 0.001, Burst: 2}},
		Objectives:    slowObjectives(time.Millisecond),
	})
	t0 := time.Unix(1_700_000_000, 0)
	m.now = func() time.Time { return t0 } // frozen clock: no refill during the test

	// Occupy the run slot, then the tenant's single queued slot.
	blocker := slowSpec(1)
	blocker.Tenant = "other"
	blockerID, err := m.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	waitJobState(t, m, blockerID, StateRunning)
	queuedID, err := m.Submit(tenantSpec("acme", 2))
	if err != nil {
		t.Fatal(err)
	}

	// Hammer the full queue. Every rejection must be the quota error —
	// with the buggy ordering the second one already surfaced as
	// ErrRateLimited because the first had silently burned the last token.
	for i := 0; i < 5; i++ {
		_, err := m.Submit(tenantSpec("acme", int64(10+i)))
		if !errors.Is(err, ErrQuotaExceeded) {
			t.Fatalf("capped submission %d: %v, want ErrQuotaExceeded", i, err)
		}
	}

	// Free the queue: the bucket must still hold its remaining token, so
	// the next submission is admitted without any refill time passing.
	if err := m.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	lastID, err := m.Submit(tenantSpec("acme", 20))
	if err != nil {
		t.Fatalf("submission after freeing the cap: %v (the cap rejections drained the bucket)", err)
	}
	// And that was the last token (burst 2, frozen clock): with queue room
	// available again, the next rejection is the rate limiter's.
	if err := m.Cancel(lastID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(tenantSpec("acme", 21)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("bucket should now be empty: %v, want ErrRateLimited", err)
	}
}

// TestRateRefillBoundaries drives the token bucket through its refill
// boundaries on an injected clock — no sleeping, bitwise-exact arithmetic
// (0.5s × 2/s buys exactly 1.0 tokens in binary floating point).
func TestRateRefillBoundaries(t *testing.T) {
	m := newManager(t, Config{
		MaxConcurrent: 2,
		TenantQuotas:  map[string]Quota{"metered": {RatePerSec: 2, Burst: 4}},
	})
	now := time.Unix(1_700_000_000, 0)
	m.now = func() time.Time { return now }

	steps := []struct {
		name    string
		advance time.Duration
		admit   int  // submissions that must succeed at this instant
		then    bool // whether one more must be rate-limited
	}{
		// A fresh tenant starts with a full bucket; the burst admits
		// exactly Burst submissions and the empty bucket rejects the next.
		{"burst-then-empty", 0, 4, true},
		// 0.5s at 2 tokens/s refills exactly one token: one admit, then
		// empty again — the exact-1-token boundary.
		{"exact-one-token", 500 * time.Millisecond, 1, true},
		// A long idle caps the refill at the burst depth: exactly 4, not
		// 2 tokens/s × 10min.
		{"idle-caps-at-burst", 10 * time.Minute, 4, true},
	}
	seed := int64(0)
	for _, step := range steps {
		now = now.Add(step.advance)
		for i := 0; i < step.admit; i++ {
			seed++
			if _, err := m.Submit(tenantSpec("metered", seed)); err != nil {
				t.Fatalf("%s: admit %d/%d: %v", step.name, i+1, step.admit, err)
			}
		}
		if step.then {
			seed++
			if _, err := m.Submit(tenantSpec("metered", seed)); !errors.Is(err, ErrRateLimited) {
				t.Fatalf("%s: over-rate submission: %v, want ErrRateLimited", step.name, err)
			}
		}
	}
}
