package jobs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/fileio"
)

// The durable checkpoint store: one JSON file per live job under
// Config.CheckpointDir, written with fileio.WriteAtomic so a crash mid-write
// leaves the previous checkpoint intact. A checkpoint file is self-contained
// — spec plus optimizer snapshot — so any process with this binary can
// recover it.

const ckptSuffix = ".ckpt.json"

// checkpointFile is the on-disk layout.
type checkpointFile struct {
	// ID is the job ID, echoed inside the file so a moved/renamed file is
	// still attributable.
	ID string `json:"id"`
	// Saved is the wall-clock write time.
	Saved time.Time `json:"saved"`
	// Spec rebuilds the space and config.
	Spec Spec `json:"spec"`
	// Snapshot fast-forwards the optimizer.
	Snapshot *core.Snapshot `json:"snapshot"`
}

func (m *Manager) ckptPath(id string) string {
	return filepath.Join(m.cfg.CheckpointDir, id+ckptSuffix)
}

func (m *Manager) initCheckpointDir() error {
	if err := os.MkdirAll(m.cfg.CheckpointDir, 0o755); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	// A crash mid-WriteAtomic leaves an orphaned temp file (the previous
	// checkpoint is intact); sweep them so they do not accumulate.
	stale, err := filepath.Glob(filepath.Join(m.cfg.CheckpointDir, "*"+ckptSuffix+".tmp-*"))
	if err == nil {
		for _, f := range stale {
			os.Remove(f)
		}
	}
	// Reserve the checkpointed IDs up front, so fresh submissions made
	// before (or instead of) Recover can never take an ID whose checkpoint
	// is still on disk — a collision would orphan the recoverable run and
	// eventually delete its checkpoint.
	ckpts, err := filepath.Glob(filepath.Join(m.cfg.CheckpointDir, "*"+ckptSuffix))
	if err == nil {
		// Called from New before the manager is shared, so the lock is
		// uncontended — held anyway to keep the guarded-by discipline on
		// nextID locally checkable.
		m.mu.Lock()
		for _, f := range ckpts {
			id := strings.TrimSuffix(filepath.Base(f), ckptSuffix)
			if n, err := strconv.Atoi(strings.TrimPrefix(id, "j")); err == nil && n > m.nextID {
				m.nextID = n
			}
		}
		m.mu.Unlock()
	}
	return nil
}

// saveCheckpoint persists the latest snapshot of a running job.
func (m *Manager) saveCheckpoint(id string, spec Spec, snap *core.Snapshot) error {
	if m.cfg.CheckpointDir == "" {
		return nil
	}
	payload, err := json.Marshal(checkpointFile{ID: id, Saved: time.Now(), Spec: spec, Snapshot: snap})
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	return fileio.WriteAtomic(m.ckptPath(id), payload, 0o644)
}

// removeCheckpoint deletes a job's checkpoint file, if any.
func (m *Manager) removeCheckpoint(id string) {
	if m.cfg.CheckpointDir == "" {
		return
	}
	os.Remove(m.ckptPath(id))
}

// Recover scans the checkpoint directory and re-enqueues every checkpointed
// job under its original ID, resuming from its last snapshot. It returns the
// recovered job IDs (sorted). Call it once, after New and before Submit, in
// a freshly started process; recovered and new jobs share the run pool.
// Unreadable checkpoint files are skipped with an error, never deleted.
func (m *Manager) Recover() ([]string, error) {
	if m.cfg.CheckpointDir == "" {
		return nil, nil
	}
	entries, err := os.ReadDir(m.cfg.CheckpointDir)
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	var ids []string
	var firstErr error
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(m.cfg.CheckpointDir, name))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: %w", err)
			}
			continue
		}
		var ckpt checkpointFile
		if err := json.Unmarshal(data, &ckpt); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: checkpoint %s: %w", name, err)
			}
			continue
		}
		id := ckpt.ID
		if id == "" || ckpt.Snapshot == nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: checkpoint %s is incomplete", name)
			}
			continue
		}
		if prev, exists := m.jobs[id]; exists {
			if prev.resume != nil {
				continue // already recovered (double Recover call)
			}
			// A fresh submission took this ID: resuming would collide, and
			// letting the fresh job finish would delete this checkpoint.
			// Report it instead of losing the run silently (call Recover
			// before Submit to avoid this).
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: checkpoint %s: job ID %s already taken by a fresh submission", name, id)
			}
			continue
		}
		ckpt.Spec.normalize()
		m.enqueueLocked(id, ckpt.Spec, ckpt.Snapshot)
		// Keep fresh IDs clear of recovered ones.
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "j")); err == nil && n > m.nextID {
			m.nextID = n
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, firstErr
}
