package jobs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/jobstore"
)

// The durable job layer over jobstore.Store. A record is self-contained —
// spec plus (once the run has checkpointed) optimizer snapshot — so ANY
// process with this binary can recover it: the record is written at
// submission (spec only, so a job killed while still queued survives),
// replaced with each snapshot, and deleted when the job completes.

// ckptSuffix is re-exported for tests that inspect the file-store layout.
const ckptSuffix = jobstore.FileSuffix

// checkpointFile is the stored record layout.
type checkpointFile struct {
	// ID is the job ID, echoed inside the record so a moved/copied record
	// is still attributable.
	ID string `json:"id"`
	// Saved is the wall-clock write time.
	Saved time.Time `json:"saved"`
	// Spec rebuilds the space and config.
	Spec Spec `json:"spec"`
	// Snapshot fast-forwards the optimizer. Nil for a job that never
	// reached its first checkpoint: recovery re-runs it from the spec
	// (bitwise-identically — the run is a pure function of the spec).
	Snapshot *core.Snapshot `json:"snapshot"`
}

// initStore opens the manager's own store (Config.Store, or the
// CheckpointDir shorthand) and reserves every stored ID, so fresh
// submissions made before (or instead of) Recover can never take an ID
// whose record is still durable — a collision would orphan the
// recoverable run and eventually delete its record.
func (m *Manager) initStore() error {
	if m.cfg.Store != nil {
		m.store = m.cfg.Store
	} else if m.cfg.CheckpointDir != "" {
		st, err := jobstore.Open(m.cfg.StoreKind, m.cfg.CheckpointDir)
		if err != nil {
			return err
		}
		m.store = st
	}
	if m.store == nil {
		return nil
	}
	// List errors are tolerated here (Recover surfaces them); whatever was
	// readable still gets its ID reserved.
	recs, _ := m.store.List()
	m.mu.Lock()
	for _, rec := range recs {
		m.reserved[rec.ID] = struct{}{}
		m.bumpIDLocked(rec.ID)
	}
	m.mu.Unlock()
	return nil
}

// bumpIDLocked keeps auto-assigned IDs clear of id if it is j<number>-form.
func (m *Manager) bumpIDLocked(id string) {
	if n, err := strconv.Atoi(strings.TrimPrefix(id, "j")); err == nil && n > m.nextID {
		m.nextID = n
	}
}

// marshalRecord encodes one durable job record.
func marshalRecord(id string, spec Spec, snap *core.Snapshot) ([]byte, error) {
	payload, err := json.Marshal(checkpointFile{ID: id, Saved: time.Now(), Spec: spec, Snapshot: snap})
	if err != nil {
		return nil, fmt.Errorf("jobs: %w", err)
	}
	return payload, nil
}

// saveCheckpoint persists the latest snapshot of a running job to the
// store its record lives in.
func (m *Manager) saveCheckpoint(j *job, snap *core.Snapshot) error {
	if j.store == nil {
		return nil
	}
	payload, err := marshalRecord(j.id, j.spec, snap)
	if err != nil {
		return err
	}
	return j.store.Put(j.id, payload)
}

// removeRecord deletes a job's durable record, if any. Deletion failures
// are reported to the event log but not propagated: the worst outcome is
// a completed job re-running (to the same result) after a recovery.
func (m *Manager) removeRecord(j *job) {
	if j.store == nil {
		return
	}
	if err := j.store.Delete(j.id); err != nil {
		m.cfg.Events.Event("checkpoint_delete_error", "job", j.id, "err", err)
	}
}

// Recover re-enqueues every job recorded in the manager's own store under
// its original ID — resuming from its last snapshot, or from the spec for
// jobs that never checkpointed (killed while queued). It returns the
// recovered job IDs (sorted). Call it once, after New and before Submit,
// in a freshly started process; recovered and new jobs share the run pool.
// Unreadable records are skipped with an error, never deleted. Recovered
// jobs bypass tenant admission (quotas and rate limits bound NEW work; a
// restart must never strand durable jobs), but they do count against the
// tenant's running cap once dispatched.
func (m *Manager) Recover() ([]string, error) {
	if m.store == nil {
		return nil, nil
	}
	return m.recoverFrom(m.store)
}

// RecoverFrom adopts every job recorded in st — a dead replica's store —
// exactly as Recover does for the manager's own. The manager takes
// ownership of st and closes it on Close; adopted jobs keep their records
// (and future snapshots) in st, so a later recovery of that store still
// finds them. This is the coordinator-failover primitive: a surviving
// optd replica opens the dead shard's store and re-dispatches its jobs,
// the same way the fleet coordinator re-dispatches a dead worker's tasks.
func (m *Manager) RecoverFrom(st jobstore.Store) ([]string, error) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.adopted = append(m.adopted, st)
	m.mu.Unlock()
	m.cfg.Events.Event("store_adopt", "kind", st.Kind())
	return m.recoverFrom(st)
}

func (m *Manager) recoverFrom(st jobstore.Store) ([]string, error) {
	recs, firstErr := st.List()
	var ids []string
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	for _, rec := range recs {
		var ckpt checkpointFile
		if err := json.Unmarshal(rec.Payload, &ckpt); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: record %s: %w", rec.ID, err)
			}
			continue
		}
		id := ckpt.ID
		if id == "" {
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: record %s is incomplete", rec.ID)
			}
			continue
		}
		if prev, exists := m.jobs[id]; exists {
			if prev.recovered {
				continue // already recovered (double Recover call)
			}
			// A fresh submission took this ID: resuming would collide, and
			// letting the fresh job finish would delete this record. Report
			// it instead of losing the run silently (call Recover before
			// Submit to avoid this).
			if firstErr == nil {
				firstErr = fmt.Errorf("jobs: record %s: job ID %s already taken by a fresh submission", rec.ID, id)
			}
			continue
		}
		ckpt.Spec.normalize()
		ts := m.tenantLocked(tenantOf(ckpt.Spec.Tenant))
		ts.queued++
		ts.mQueued.Set(float64(ts.queued))
		j := m.enqueueLocked(id, ckpt.Spec, ckpt.Snapshot, true)
		j.store = st
		delete(m.reserved, id)
		m.bumpIDLocked(id)
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, firstErr
}
