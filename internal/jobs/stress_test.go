package jobs

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestManagerSubmitCancelStatusStorm is the manager's survival property
// under -race: 60 goroutines hammer one small manager with submissions,
// cancellations (of their own and of other goroutines' jobs), status polls,
// list/stats scans and waits, all interleaved with the run pool finishing
// and evicting work. The storm asserts the invariants that must hold under
// any interleaving: every submitted job reaches a terminal state, Wait's
// answer is consistent with that state, and the manager's books balance.
func TestManagerSubmitCancelStatusStorm(t *testing.T) {
	m := newManager(t, Config{
		MaxConcurrent: 3,
		Workers:       2,
		// Retention far above the storm's job count: eviction is exercised
		// separately; here every record must stay inspectable.
		RetainTerminal: -1,
	})

	const (
		goroutines = 60
		jobsEach   = 4
	)
	var (
		ids   = make(chan string, goroutines*jobsEach)
		wg    sync.WaitGroup
		fails = make(chan error, goroutines*jobsEach)

		submitted, canceled, done atomic.Int64
	)

	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for j := 0; j < jobsEach; j++ {
				spec := smallSpec(int64(g*1000 + j))
				spec.MaxIterations = 10 + rng.Intn(30)
				id, err := m.Submit(spec)
				if err != nil {
					fails <- fmt.Errorf("goroutine %d: submit: %v", g, err)
					return
				}
				submitted.Add(1)
				ids <- id

				// Harass the manager between submissions.
				switch rng.Intn(4) {
				case 0:
					// Cancel own job at a random point of its lifecycle.
					if err := m.Cancel(id); err != nil {
						fails <- fmt.Errorf("goroutine %d: cancel %s: %v", g, id, err)
						return
					}
				case 1:
					// Poll someone's status; any registered ID must resolve.
					if _, err := m.Get(id); err != nil {
						fails <- fmt.Errorf("goroutine %d: get %s: %v", g, id, err)
						return
					}
				case 2:
					m.List()
					m.Stats()
				case 3:
					// Cancel a random other job if one is available; a second
					// cancel of the same job must be a no-op, not an error.
					select {
					case other := <-ids:
						if err := m.Cancel(other); err != nil {
							fails <- fmt.Errorf("goroutine %d: cancel other %s: %v", g, other, err)
							return
						}
						if err := m.Cancel(other); err != nil {
							fails <- fmt.Errorf("goroutine %d: double cancel %s: %v", g, other, err)
							return
						}
						ids <- other
					default:
					}
				}
			}
		}()
	}
	wg.Wait()
	close(fails)
	for err := range fails {
		t.Fatal(err)
	}
	close(ids)

	// Every job must reach a terminal state, and Wait must agree with it.
	seen := map[string]bool{}
	for id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		res, err := m.Wait(id)
		st, gerr := m.Get(id)
		if gerr != nil {
			t.Fatalf("job %s: get after wait: %v", id, gerr)
		}
		if !st.State.Terminal() {
			t.Fatalf("job %s: state %s after Wait returned", id, st.State)
		}
		switch st.State {
		case StateDone:
			done.Add(1)
			if err != nil || res == nil {
				t.Fatalf("job %s done but Wait = (%v, %v)", id, res, err)
			}
		case StateCanceled:
			canceled.Add(1)
			// Canceled-before-start yields an error, canceled mid-run yields
			// the best-so-far result; either way exactly one of the two.
			if (res == nil) == (err == nil) {
				t.Fatalf("job %s canceled but Wait = (%v, %v)", id, res, err)
			}
		case StateFailed:
			t.Fatalf("job %s failed: %v", id, err)
		}
	}
	if got := int64(len(seen)); got != submitted.Load() {
		t.Fatalf("tracked %d jobs, submitted %d", got, submitted.Load())
	}

	st := m.Stats()
	if int64(st.Done+st.Canceled+st.Failed) != submitted.Load() || st.Queued != 0 || st.Running != 0 {
		t.Fatalf("books do not balance after the storm: %+v (submitted %d)", st, submitted.Load())
	}
	t.Logf("storm: %d submitted, %d done, %d canceled", submitted.Load(), done.Load(), canceled.Load())
}

// TestCancelWhileQueuedInterleaving pins the deterministic corner the storm
// only samples: a job canceled while it sits in the queue finalizes
// immediately (no run-pool slot needed) and Wait reports the
// canceled-before-start contract.
func TestCancelWhileQueuedInterleaving(t *testing.T) {
	m := newManager(t, Config{MaxConcurrent: 1, Objectives: slowObjectives(2 * time.Millisecond)})

	// Occupy the single slot so subsequent submissions queue.
	blocker, err := m.Submit(slowSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := m.Get(queued); st.State != StateQueued {
		t.Fatalf("second job state %s, want queued", st.State)
	}
	if err := m.Cancel(queued); err != nil {
		t.Fatal(err)
	}
	// The cancellation must finalize without waiting for the blocker.
	waitDone := make(chan struct{})
	go func() {
		m.Wait(queued)
		close(waitDone)
	}()
	select {
	case <-waitDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Wait on a canceled-while-queued job blocked behind the running job")
	}
	if st, _ := m.Get(queued); st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
	if res, err := m.Result(queued); err == nil || res != nil {
		t.Fatalf("Result = (%v, %v), want the canceled-before-start error", res, err)
	}
	if err := m.Cancel(blocker); err != nil {
		t.Fatal(err)
	}
	m.Wait(blocker)
}

// TestCancelAfterDoneInterleaving pins the other corner: canceling a job
// that already finished is a no-op — the state stays done and the result
// stays available.
func TestCancelAfterDoneInterleaving(t *testing.T) {
	m := newManager(t, Config{MaxConcurrent: 1})
	id, err := m.Submit(smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatalf("cancel after done: %v", err)
	}
	if st, _ := m.Get(id); st.State != StateDone {
		t.Fatalf("state %s after cancel-after-done, want done", st.State)
	}
	res2, err := m.Result(id)
	if err != nil || res2 != res {
		t.Fatalf("Result after cancel-after-done = (%v, %v), want the original result", res2, err)
	}
	if err := m.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown id: err = %v, want ErrNotFound", err)
	}
}
