package jobs

import (
	"strings"
	"testing"
)

// The strategy registry flows through jobs.Spec.Algorithm: pso and hybrid
// jobs run end-to-end through the same manager path as the NM family.

func TestPSOAndHybridJobsEndToEnd(t *testing.T) {
	m, err := New(Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	for _, spec := range []Spec{
		{Objective: "rastrigin", Dim: 2, Algorithm: "pso",
			Sigma0: 2, Seed: 7, Particles: 8, SwarmIterations: 10},
		{Objective: "rastrigin", Dim: 2, Algorithm: "hybrid",
			Sigma0: 2, Seed: 7, Particles: 8, SwarmIterations: 10,
			Tol: -1, MaxIterations: 30, Budget: 1e12},
	} {
		id, err := m.Submit(spec)
		if err != nil {
			t.Fatalf("%s: submit: %v", spec.Algorithm, err)
		}
		res, err := m.Wait(id)
		if err != nil {
			t.Fatalf("%s: wait: %v", spec.Algorithm, err)
		}
		st, err := m.Get(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("%s: state %v err %v", spec.Algorithm, st.State, err)
		}
		if len(res.BestX) != 2 || res.Iterations == 0 {
			t.Fatalf("%s: degenerate result %+v", spec.Algorithm, res)
		}
		// Status progress must reflect the run (trace-fed counters).
		if st.Iterations == 0 {
			t.Errorf("%s: status shows no progress: %+v", spec.Algorithm, st)
		}
	}
}

// TestPSOJobDeterminism: the same pso spec produces the same result on
// repeated submissions (per-point noise streams + seeded swarm).
func TestPSOJobDeterminism(t *testing.T) {
	m, err := New(Config{MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	spec := Spec{Objective: "rosenbrock", Dim: 3, Algorithm: "pso",
		Sigma0: 10, Seed: 21, Particles: 6, SwarmIterations: 8}
	var bests []float64
	for i := 0; i < 2; i++ {
		id, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		bests = append(bests, res.BestG)
	}
	if bests[0] != bests[1] {
		t.Fatalf("pso jobs not deterministic: %v != %v", bests[0], bests[1])
	}
}

// TestSpecStrategyValidation: alias names validate, junk and misuse do not.
func TestSpecStrategyValidation(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ok := []Spec{
		{Objective: "rosenbrock", Dim: 2, Algorithm: "pc-mn", Sigma0: 1, MaxIterations: 1, Tol: -1},
		{Objective: "rosenbrock", Dim: 2, Algorithm: "PCMN", Sigma0: 1, MaxIterations: 1, Tol: -1},
	}
	for _, spec := range ok {
		if _, err := m.Submit(spec); err != nil {
			t.Errorf("Submit(%q): %v", spec.Algorithm, err)
		}
	}
	bad := []struct {
		spec Spec
		want string
	}{
		{Spec{Objective: "rosenbrock", Dim: 2, Algorithm: "warp"}, "unknown strategy"},
		{Spec{Objective: "rosenbrock", Dim: 2, Algorithm: "pso", Restarts: 2}, "restart"},
		{Spec{Objective: "rosenbrock", Dim: 2, Algorithm: "pso", Particles: -1}, "Particles"},
		{Spec{Objective: "rosenbrock", Dim: 2, Algorithm: "pso", Particles: 100_000}, "Particles"},
		{Spec{Objective: "rosenbrock", Dim: 2, Algorithm: "hybrid", SwarmIterations: -1}, "SwarmIterations"},
	}
	for _, c := range bad {
		_, err := m.Submit(c.spec)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Submit(%+v) err = %v, want containing %q", c.spec, err, c.want)
		}
	}
}

// TestPSOJobSkipsCheckpointing: a non-resumable strategy runs fine under a
// checkpointing manager — it just completes without writing checkpoints.
func TestPSOJobSkipsCheckpointing(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{MaxConcurrent: 1, CheckpointDir: dir, CheckpointEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id, err := m.Submit(Spec{Objective: "rosenbrock", Dim: 2, Algorithm: "pso",
		Sigma0: 5, Seed: 3, Particles: 6, SwarmIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(id); err != nil {
		t.Fatal(err)
	}
	st, _ := m.Get(id)
	if st.State != StateDone || st.CheckpointError != "" {
		t.Fatalf("pso job under checkpointing manager: %+v", st)
	}
}
