package jobs

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobstore"
	"repro/internal/testfunc"
)

// smallSpec is a quick PC job used throughout the tests.
func smallSpec(seed int64) Spec {
	return Spec{
		Name:          fmt.Sprintf("t-%d", seed),
		Objective:     "rosenbrock",
		Dim:           3,
		Algorithm:     "pc",
		Sigma0:        50,
		Seed:          seed,
		Budget:        1e12,
		Tol:           -1, // run to the iteration cap
		MaxIterations: 60,
	}
}

func newManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m
}

// slowObjectives registers "slowrosen": Rosenbrock with a real-time delay
// per point creation, so tests that must catch a job mid-run have a window
// to do it in. The delay has no effect on the sampled values.
func slowObjectives(d time.Duration) map[string]func([]float64) float64 {
	return map[string]func([]float64) float64{
		"slowrosen": func(x []float64) float64 {
			time.Sleep(d)
			return testfunc.Rosenbrock(x)
		},
	}
}

// slowSpec is smallSpec on the slow objective with no iteration cap: it runs
// until canceled (or for ~a minute, far longer than any test waits).
func slowSpec(seed int64) Spec {
	spec := smallSpec(seed)
	spec.Objective = "slowrosen"
	spec.MaxIterations = 0
	return spec
}

func TestSubmitWaitResult(t *testing.T) {
	m := newManager(t, Config{MaxConcurrent: 2})
	id, err := m.Submit(smallSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 60 || res.Termination != "iterations" {
		t.Fatalf("unexpected result: %d iterations, termination %q", res.Iterations, res.Termination)
	}
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Iterations != 60 {
		t.Fatalf("unexpected status %+v", st)
	}
	if st.Started.IsZero() || st.Finished.Before(st.Started) {
		t.Fatalf("lifecycle timestamps wrong: %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	m := newManager(t, Config{})
	bad := []Spec{
		{Objective: "no-such-func", Dim: 3, Sigma0: 1},
		{Objective: "rosenbrock", Dim: 0, Sigma0: 1},
		{Objective: "powell", Dim: 3, Sigma0: 1},          // powell requires d=4
		{Objective: "rosenbrock", Dim: 3, Algorithm: "x"}, // unknown algorithm
		{Objective: "rosenbrock", Dim: 3, Lo: 2, Hi: 1},
		{Objective: "rosenbrock", Dim: 3, Restarts: -1},
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	if _, err := m.Get("j999999"); err != ErrNotFound {
		t.Fatalf("Get unknown id: %v", err)
	}
	if err := m.Cancel("j999999"); err != ErrNotFound {
		t.Fatalf("Cancel unknown id: %v", err)
	}
}

// TestConcurrentJobs is the acceptance-criterion load test: the manager
// sustains >= 8 jobs running concurrently over the shared fleet, every job
// completes, and each job's result matches a solo run of the same spec
// bitwise (jobs must not interfere).
func TestConcurrentJobs(t *testing.T) {
	// Sleep-backed objective: jobs block on timers rather than CPU, so all 8
	// slots genuinely overlap even on a 2-core CI box.
	const n = 12
	slow := slowObjectives(time.Millisecond)
	concSpec := func(i int) Spec {
		spec := smallSpec(int64(100 + i))
		spec.Objective = "slowrosen"
		spec.MaxIterations = 30
		return spec
	}
	m := newManager(t, Config{MaxConcurrent: 8, Workers: 4, Objectives: slow})

	ids := make([]string, n)
	for i := range ids {
		id, err := m.Submit(concSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			if _, err := m.Wait(id); err != nil {
				t.Errorf("job %s: %v", id, err)
			}
		}(i, id)
	}
	wg.Wait()

	// Overlap check: with 12 jobs and 8 slots, at least 8 distinct jobs
	// must have been running at once at some point; verify via timestamps.
	sts := m.List()
	if len(sts) != n {
		t.Fatalf("List returned %d jobs, want %d", len(sts), n)
	}
	maxOverlap := 0
	for _, a := range sts {
		overlap := 0
		for _, b := range sts {
			if !b.Started.After(a.Started) && !b.Finished.Before(a.Started) {
				overlap++
			}
		}
		if overlap > maxOverlap {
			maxOverlap = overlap
		}
	}
	if maxOverlap < 8 {
		t.Errorf("max concurrent jobs observed %d, want >= 8", maxOverlap)
	}

	// Isolation: each job's result equals a solo run of the same spec.
	solo := newManager(t, Config{MaxConcurrent: 1, Objectives: slow})
	for i, id := range ids {
		soloID, err := solo.Submit(concSpec(i))
		if err != nil {
			t.Fatal(err)
		}
		want, err := solo.Wait(soloID)
		if err != nil {
			t.Fatal(err)
		}
		got, err := m.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("job %s diverged from solo run:\nconcurrent %+v\nsolo       %+v", id, got, want)
		}
	}
}

// TestCancelRunning checks a running job stops quickly (within one sampling
// round) and reports state "canceled" with the best-so-far result.
func TestCancelRunning(t *testing.T) {
	m := newManager(t, Config{MaxConcurrent: 1, Objectives: slowObjectives(500 * time.Microsecond)})
	id, err := m.Submit(slowSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running and has made progress.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning && st.Iterations > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(id); err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.Termination != "canceled" {
		t.Fatalf("termination %q, want canceled", res.Termination)
	}
	st, _ := m.Get(id)
	if st.State != StateCanceled {
		t.Fatalf("state %s, want canceled", st.State)
	}
}

// TestCancelQueued checks jobs canceled before a slot frees never run.
func TestCancelQueued(t *testing.T) {
	m := newManager(t, Config{MaxConcurrent: 1, Objectives: slowObjectives(500 * time.Microsecond)})
	blockID, err := m.Submit(slowSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	queuedID, err := m.Submit(smallSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queuedID); err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(blockID); err != nil {
		t.Fatal(err)
	}
	// A job canceled before it ever started has no Result: Wait reports that
	// explicitly instead of returning (nil, nil).
	if _, err := m.Wait(queuedID); err == nil || !strings.Contains(err.Error(), "before it started") {
		t.Fatalf("Wait on never-started job: %v, want canceled-before-start error", err)
	}
	st, _ := m.Get(queuedID)
	if st.State != StateCanceled || !st.Started.IsZero() {
		t.Fatalf("queued job should cancel without starting: %+v", st)
	}
}

func TestSubscribeStream(t *testing.T) {
	m := newManager(t, Config{MaxConcurrent: 1, TraceBuffer: 4096})
	id, err := m.Submit(smallSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := m.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	var traces int
	var sawTerminal bool
	for e := range ch {
		switch e.Type {
		case "trace":
			traces++
			if e.Trace == nil || e.JobID != id {
				t.Fatalf("malformed trace event %+v", e)
			}
		case "state":
			if e.State.Terminal() {
				sawTerminal = true
			}
		}
	}
	if traces == 0 {
		t.Error("no trace events received")
	}
	if !sawTerminal {
		t.Error("stream closed without a terminal state event")
	}
	// Late subscription to a terminal job yields the terminal state.
	ch2, cancel2, err := m.Subscribe(id)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel2()
	e, ok := <-ch2
	if !ok || e.State != StateDone {
		t.Fatalf("late subscription got %+v (ok=%v), want done state", e, ok)
	}
}

// TestCheckpointRecoverDeterminism is the durable half of the acceptance
// criterion: a job killed mid-run (manager closed) is recovered by a fresh
// manager from its on-disk checkpoint and produces a Result bitwise
// identical to an uninterrupted run of the same spec.
func TestCheckpointRecoverDeterminism(t *testing.T) {
	for _, restarts := range []int{0, 2} {
		t.Run(fmt.Sprintf("restarts=%d", restarts), func(t *testing.T) {
			slow := slowObjectives(time.Millisecond)
			spec := smallSpec(42)
			spec.Objective = "slowrosen"
			spec.Restarts = restarts
			spec.MaxIterations = 50

			// Uninterrupted reference run.
			ref := newManager(t, Config{MaxConcurrent: 1, Objectives: slow})
			refID, err := ref.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Wait(refID)
			if err != nil {
				t.Fatal(err)
			}

			// Interrupted run: checkpoint every iteration, kill mid-flight.
			dir := t.TempDir()
			m1, err := New(Config{MaxConcurrent: 1, CheckpointDir: dir, CheckpointEvery: 1, Objectives: slow})
			if err != nil {
				t.Fatal(err)
			}
			id, err := m1.Submit(spec)
			if err != nil {
				t.Fatal(err)
			}
			deadline := time.Now().Add(10 * time.Second)
			for {
				st, err := m1.Get(id)
				if err != nil {
					t.Fatal(err)
				}
				if st.Iterations >= 5 {
					break
				}
				if st.State.Terminal() {
					t.Fatalf("job finished before it could be killed: %+v", st)
				}
				if time.Now().After(deadline) {
					t.Fatal("job made no progress")
				}
				time.Sleep(time.Millisecond)
			}
			m1.Close() // kill: cancels the run, leaves the checkpoint on disk

			files, err := filepath.Glob(filepath.Join(dir, "*"+ckptSuffix))
			if err != nil || len(files) != 1 {
				t.Fatalf("expected one checkpoint file, got %v (%v)", files, err)
			}

			// Fresh process: recover and run to completion.
			m2 := newManager(t, Config{MaxConcurrent: 1, CheckpointDir: dir, CheckpointEvery: 1, Objectives: slow})
			ids, err := m2.Recover()
			if err != nil {
				t.Fatal(err)
			}
			if len(ids) != 1 || ids[0] != id {
				t.Fatalf("recovered %v, want [%s]", ids, id)
			}
			// Post-recovery status must never show progress below the last
			// checkpoint (monotonicity for polling clients across the kill):
			// the pre-kill poll saw >= 5 iterations with CheckpointEvery 1,
			// so the snapshot holds at least iteration 4.
			if st, err := m2.Get(id); err != nil || st.Iterations < 4 {
				t.Fatalf("recovered status regressed: %+v (err %v)", st, err)
			}
			got, err := m2.Wait(id)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("recovered run diverged from uninterrupted run:\nrecovered     %+v\nuninterrupted %+v", got, want)
			}
			st, _ := m2.Get(id)
			if !st.Resumed {
				t.Fatalf("recovered job not marked resumed: %+v", st)
			}

			// The checkpoint is cleaned up once the job completes.
			files, _ = filepath.Glob(filepath.Join(dir, "*"+ckptSuffix))
			if len(files) != 0 {
				t.Fatalf("checkpoint not removed after completion: %v", files)
			}
		})
	}
}

// TestRecoverSkipsGarbage checks unreadable checkpoint files are reported
// but do not block recovery of good ones.
func TestRecoverSkipsGarbage(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "junk"+ckptSuffix), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	m := newManager(t, Config{CheckpointDir: dir})
	ids, err := m.Recover()
	if err == nil || !strings.Contains(err.Error(), "junk") {
		t.Fatalf("garbage checkpoint not reported: ids=%v err=%v", ids, err)
	}
	if len(ids) != 0 {
		t.Fatalf("recovered from garbage: %v", ids)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := m.Submit(smallSpec(1)); err != ErrClosed {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
	m.Close() // idempotent
}

// TestCustomObjective checks Config.Objectives extends the catalog.
func TestCustomObjective(t *testing.T) {
	m := newManager(t, Config{
		Objectives: map[string]func([]float64) float64{
			"parabola": func(x []float64) float64 { return x[0]*x[0] + x[1]*x[1] },
		},
	})
	id, err := m.Submit(Spec{
		Objective: "parabola", Dim: 2, Algorithm: "det",
		Sigma0: 0, Seed: 5, MaxIterations: 200, Tol: 1e-10, Budget: 1e7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestG > 1e-3 {
		t.Fatalf("custom objective did not optimize: best %v", res.BestG)
	}
}

// TestInitSweepsStaleTempFiles checks a crash's orphaned WriteAtomic temp
// file is removed at startup while real checkpoints are untouched.
func TestInitSweepsStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	stale := filepath.Join(dir, "j000007"+ckptSuffix+".tmp-123456")
	keep := filepath.Join(dir, "j000007"+ckptSuffix)
	for _, f := range []string{stale, keep} {
		if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	newManager(t, Config{CheckpointDir: dir})
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp file not swept: %v", err)
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("real checkpoint removed: %v", err)
	}
}

// TestTerminalRetention checks the oldest terminal job records are evicted
// beyond the RetainTerminal bound while live jobs are untouched.
func TestTerminalRetention(t *testing.T) {
	m := newManager(t, Config{MaxConcurrent: 2, RetainTerminal: 3})
	var ids []string
	for s := int64(1); s <= 6; s++ {
		spec := smallSpec(s)
		spec.MaxIterations = 5
		id, err := m.Submit(spec)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		if _, err := m.Wait(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(m.List()); got != 3 {
		t.Fatalf("retained %d terminal jobs, want 3", got)
	}
	if _, err := m.Get(ids[0]); err != ErrNotFound {
		t.Fatalf("oldest job should be evicted: %v", err)
	}
	if _, err := m.Get(ids[5]); err != nil {
		t.Fatalf("newest job missing: %v", err)
	}
}

// TestRecoverCollisionRejected checks a checkpoint whose ID was taken by a
// fresh submission is reported, and that a manager sharing the checkpoint
// dir reserves checkpointed IDs so the collision cannot happen organically.
func TestRecoverCollisionRejected(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"id":"j000001","spec":{"objective":"rosenbrock","dim":3},"snapshot":{"version":1,"dim":3}}`)
	if err := os.WriteFile(filepath.Join(dir, "j000001"+ckptSuffix), payload, 0o644); err != nil {
		t.Fatal(err)
	}

	// Organic path: a fresh submission on a dir holding j000001 gets j000002.
	m := newManager(t, Config{CheckpointDir: dir})
	spec := smallSpec(1)
	spec.MaxIterations = 5
	id, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if id == "j000001" {
		t.Fatal("fresh submission took a checkpointed ID")
	}

	// Forced collision (no store at New, so no reservation): adopting the
	// directory after a fresh submission took j000001 must report the
	// collision rather than silently dropping the run.
	m2 := newManager(t, Config{})
	if _, err := m2.Submit(spec); err != nil { // takes j000001
		t.Fatal(err)
	}
	st, err := jobstore.OpenFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m2.RecoverFrom(st)
	if err == nil || !strings.Contains(err.Error(), "already taken") {
		t.Fatalf("collision not reported: %v", err)
	}
}

// TestSpecSizeCaps checks the HTTP-reachable size limits.
func TestSpecSizeCaps(t *testing.T) {
	m := newManager(t, Config{})
	if _, err := m.Submit(Spec{Objective: "rosenbrock", Dim: maxDim + 1, Sigma0: 1}); err == nil {
		t.Fatal("oversized Dim accepted")
	}
	if _, err := m.Submit(Spec{Objective: "rosenbrock", Dim: 3, Sigma0: 1, Workers: maxWorkers + 1}); err == nil {
		t.Fatal("oversized Workers accepted")
	}
}
