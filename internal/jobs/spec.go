package jobs

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/jobstore"
	"repro/internal/sim"
	"repro/internal/testfunc"

	// Register the pso and hybrid strategies, so job specs (and everything
	// above this package: the repro facade, cmd/optd) can select them by
	// name through the core strategy registry.
	_ "repro/internal/pso"
)

// Spec is the serializable description of one optimization job — everything
// needed to (re)build the run from scratch in any process, which is what
// makes checkpoints durable: a checkpoint file pairs a Spec with a
// core.Snapshot, and a recovering manager reconstructs the space from the
// Spec and fast-forwards it from the Snapshot.
//
// The objective is referenced by name (the testfunc catalog plus any
// custom objectives registered in Config.Objectives) rather than carried as
// code, exactly as a black-box optimization service's API would.
type Spec struct {
	// Name is an optional human label echoed in Status.
	Name string `json:"name,omitempty"`
	// Tenant is the namespace the job is accounted to: quotas and rate
	// limits (Config.DefaultQuota, Config.TenantQuotas) apply per tenant,
	// and the optd server scopes /v1/tenants/{tenant}/jobs to it. Empty
	// means the "default" tenant. Tenant names share the record-ID
	// character set (letters, digits, ., _, -).
	Tenant string `json:"tenant,omitempty"`
	// Objective names the objective function (e.g. "rosenbrock", "powell").
	Objective string `json:"objective"`
	// Dim is the parameter-space dimension.
	Dim int `json:"dim"`
	// Algorithm selects the optimization strategy by registry name ("det",
	// "mn", "pc", "pc+mn", "anderson", "pso", "hybrid", or any registered
	// alias such as "pcmn"/"pc-mn"). Empty defaults to "pc". GET /strategies
	// on the optd server lists what the process can run.
	Algorithm string `json:"algorithm,omitempty"`
	// Sigma0 is the eq-1.2 noise strength of the observation model.
	Sigma0 float64 `json:"sigma0"`
	// Seed seeds both the noise streams and the initial simplex draw, so a
	// job is reproducible from its spec alone.
	Seed int64 `json:"seed"`
	// Budget is the virtual walltime budget per leg (MaxWalltime). Zero
	// keeps the core default.
	Budget float64 `json:"budget,omitempty"`
	// Tol is the spread termination tolerance. Zero keeps the core default;
	// a negative value disables the tolerance criterion (run to budget).
	Tol float64 `json:"tol,omitempty"`
	// MaxIterations caps the simplex steps. Zero keeps the core default.
	MaxIterations int `json:"max_iterations,omitempty"`
	// K overrides the PC confidence multiplier and MN wait factor when > 0.
	K float64 `json:"k,omitempty"`
	// Lo and Hi bound the uniform initial-simplex draw. Both zero selects
	// the default [-5, 5).
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Restarts is the number of §1.3.5.1 restart legs after the first
	// convergence.
	Restarts int `json:"restarts,omitempty"`
	// RestartScale is the rebuilt-simplex edge length per dimension when
	// Restarts > 0. Zero selects 1.
	RestartScale float64 `json:"restart_scale,omitempty"`
	// Workers gives the job's space a private worker pool of that size
	// instead of the manager's shared fleet. Leave zero for the fleet.
	Workers int `json:"workers,omitempty"`
	// Fleet routes the job's sampling over the manager's remote worker
	// fleet (Config.Fleet; optd's -fleet-addr listener). The objective must
	// resolve in the remote workers' catalogs too. Results are bitwise
	// identical to the in-process run of the same spec.
	Fleet bool `json:"fleet,omitempty"`
	// Speculative enables batch-speculative candidate evaluation for
	// NM-family strategies: every candidate move of a simplex step is
	// submitted as one prioritized sampling batch before the decision. Runs
	// stay bitwise-deterministic and checkpoint/resume-exact.
	Speculative bool `json:"speculative,omitempty"`
	// AdaptiveHalfWidth, when positive, enables variance-adaptive
	// resampling: fresh points sample in growing rounds until their
	// confidence half-width (1.96 sigma) falls to this target, replacing
	// the fixed initial allotment.
	AdaptiveHalfWidth float64 `json:"adaptive_half_width,omitempty"`
	// Particles is the swarm size for the "pso" and "hybrid" strategies.
	// Zero keeps the strategy default.
	Particles int `json:"particles,omitempty"`
	// SwarmIterations is the number of swarm updates for the "pso" and
	// "hybrid" strategies. Zero keeps the strategy default.
	SwarmIterations int `json:"swarm_iterations,omitempty"`
}

// normalize fills defaults in place.
func (s *Spec) normalize() {
	if s.Algorithm == "" {
		s.Algorithm = "pc"
	}
	if s.Lo == 0 && s.Hi == 0 {
		s.Lo, s.Hi = -5, 5
	}
	if s.RestartScale == 0 {
		s.RestartScale = 1
	}
}

// maxDim, maxWorkers and maxParticles bound client-supplied sizes: specs
// arrive from untrusted HTTP clients, and an absurd dimension would allocate
// a multi-GB simplex (a fatal OOM no recover can catch) while an absurd
// private worker count would bypass the bounded shared fleet. The paper's
// largest study is d=100; these caps are far above any real workload.
const (
	maxDim       = 10_000
	maxWorkers   = 256
	maxParticles = 10_000
)

// validate checks the spec against the manager's objective registry.
func (s *Spec) validate(m *Manager) error {
	if s.Tenant != "" && !jobstore.ValidID(s.Tenant) {
		return fmt.Errorf("jobs: invalid Spec.Tenant %q (want letters, digits, '.', '_' or '-')", s.Tenant)
	}
	if s.Dim < 1 {
		return errors.New("jobs: Spec.Dim must be >= 1")
	}
	if s.Dim > maxDim {
		return fmt.Errorf("jobs: Spec.Dim %d exceeds the maximum %d", s.Dim, maxDim)
	}
	if s.Sigma0 < 0 {
		return errors.New("jobs: Spec.Sigma0 must be non-negative")
	}
	if s.Lo >= s.Hi {
		return fmt.Errorf("jobs: initial simplex bounds [%v, %v) are empty", s.Lo, s.Hi)
	}
	if s.Restarts < 0 {
		return errors.New("jobs: Spec.Restarts must be >= 0")
	}
	if s.RestartScale < 0 {
		return errors.New("jobs: Spec.RestartScale must be positive")
	}
	if s.Workers < 0 || s.Workers > maxWorkers {
		return fmt.Errorf("jobs: Spec.Workers must be in 0..%d", maxWorkers)
	}
	if s.Fleet {
		if m.cfg.Fleet == nil {
			return errors.New("jobs: Spec.Fleet set but the manager has no remote fleet (Config.Fleet)")
		}
		if s.Workers > 0 {
			return errors.New("jobs: Spec.Fleet and Spec.Workers are mutually exclusive")
		}
	}
	if s.AdaptiveHalfWidth < 0 {
		return errors.New("jobs: Spec.AdaptiveHalfWidth must be non-negative")
	}
	if s.Particles < 0 || s.Particles > maxParticles {
		return fmt.Errorf("jobs: Spec.Particles must be in 0..%d", maxParticles)
	}
	if s.SwarmIterations < 0 {
		return errors.New("jobs: Spec.SwarmIterations must be >= 0")
	}
	strat, err := core.LookupStrategy(s.Algorithm)
	if err != nil {
		return err
	}
	if _, isNM := strat.(core.AlgorithmStrategy); !isNM && s.Restarts > 0 {
		return fmt.Errorf("jobs: strategy %q does not take restart legs", strat.Name())
	}
	f, err := m.objective(s.Objective)
	if err != nil {
		return err
	}
	if f.Dim != 0 && f.Dim != s.Dim {
		return fmt.Errorf("jobs: objective %q requires dimension %d, spec has %d", s.Objective, f.Dim, s.Dim)
	}
	return nil
}

// objective resolves a named objective: custom registrations first, then the
// testfunc catalog.
func (m *Manager) objective(name string) (testfunc.Func, error) {
	if f, ok := m.cfg.Objectives[name]; ok {
		return testfunc.Func{Name: name, F: f}, nil
	}
	return testfunc.ByName(name)
}

// space builds the job's sampling backend. Resumed jobs rebuild an identical
// space from the same spec, which is what the snapshot determinism contract
// requires.
func (m *Manager) space(spec Spec) (*sim.LocalSpace, error) {
	f, err := m.objective(spec.Objective)
	if err != nil {
		return nil, err
	}
	cfg := sim.LocalConfig{
		Dim:        spec.Dim,
		F:          f.F,
		Sigma0:     sim.ConstSigma(spec.Sigma0),
		Seed:       spec.Seed,
		Parallel:   true,
		SampleCost: m.cfg.SampleCost,
	}
	switch {
	case spec.Fleet:
		if m.cfg.Fleet == nil {
			// Submission validates this, but a checkpointed fleet job can be
			// recovered by a manager started without a fleet; failing the job
			// beats silently downgrading it to an in-process pool.
			return nil, errors.New("jobs: spec requires a remote fleet but the manager has none (Config.Fleet)")
		}
		cfg.Fleet = m.cfg.Fleet
		cfg.FleetObjective = spec.Objective
	case spec.Workers > 0:
		cfg.Workers = spec.Workers
	default:
		cfg.Pool = m.pool
		// Batches on the shared fleet are charged to the job's tenant, so
		// the scheduler can divide fleet capacity by Quota.Weight.
		cfg.Tenant = tenantOf(spec.Tenant)
	}
	return sim.NewLocalSpace(cfg), nil
}

// runSpec translates the job spec into the strategy-agnostic core.RunSpec
// the shared driver consumes. NM-family jobs draw their initial simplex from
// the spec seed inside the strategy — the same core.UniformSimplex draw
// cmd/stochsimplex uses, so a spec seed reproduces the CLI run exactly;
// pso-family jobs use the same box and seed for the swarm.
func (spec Spec) runSpec() (core.RunSpec, error) {
	strat, err := core.LookupStrategy(spec.Algorithm)
	if err != nil {
		return core.RunSpec{}, err
	}
	alg := core.PC
	if as, ok := strat.(core.AlgorithmStrategy); ok {
		alg = as.Algorithm()
	}
	cfg := core.DefaultConfig(alg)
	if spec.Budget > 0 {
		cfg.MaxWalltime = spec.Budget
	}
	switch {
	case spec.Tol > 0:
		cfg.Tol = spec.Tol
	case spec.Tol < 0:
		cfg.Tol = 0
	}
	if spec.MaxIterations > 0 {
		cfg.MaxIterations = spec.MaxIterations
	}
	if spec.K > 0 {
		cfg.K = spec.K
		cfg.MNK = spec.K
	}
	cfg.Speculative = spec.Speculative
	if spec.AdaptiveHalfWidth > 0 {
		cfg.AdaptiveSamples = true
		cfg.AdaptiveHalfWidth = spec.AdaptiveHalfWidth
	}
	return core.RunSpec{
		Strategy:     strat.Name(),
		Config:       cfg,
		Seed:         spec.Seed,
		Lo:           spec.Lo,
		Hi:           spec.Hi,
		HasBox:       true,
		Restarts:     spec.Restarts,
		RestartScale: []float64{spec.RestartScale},
		Particles:    spec.Particles,
		SwarmIters:   spec.SwarmIterations,
	}, nil
}

// resumable reports whether the spec's strategy supports checkpoint/resume;
// the manager skips durable checkpointing for strategies that do not.
func (spec Spec) resumable() bool {
	strat, err := core.LookupStrategy(spec.Algorithm)
	return err == nil && strat.Resumable()
}
