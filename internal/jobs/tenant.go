package jobs

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/obs"
)

// DefaultTenant is the namespace jobs with an empty Spec.Tenant are
// accounted to.
const DefaultTenant = "default"

// tenantOf maps a spec's tenant field to its accounting namespace.
func tenantOf(name string) string {
	if name == "" {
		return DefaultTenant
	}
	return name
}

// Quota bounds one tenant's use of the manager. The zero value is
// unlimited; each field is enforced independently when positive.
type Quota struct {
	// MaxQueued caps jobs waiting for a run-pool slot. Submissions beyond
	// it fail with ErrQuotaExceeded — backpressure at admission, before
	// any durable state is written.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning caps the tenant's simultaneously running jobs. Jobs over
	// the cap stay queued (other tenants' jobs pass them — no head-of-line
	// blocking) until one of the tenant's runs finishes.
	MaxRunning int `json:"max_running,omitempty"`
	// RatePerSec is a token-bucket submission rate limit. Submissions
	// finding the bucket empty fail with ErrRateLimited.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket depth; zero selects ceil(RatePerSec), min 1.
	Burst int `json:"burst,omitempty"`
	// Weight is the tenant's fair-share weight on the sampling fleet: while
	// tenants are backlogged, a weight-w tenant's batches receive w fleet
	// dispatch slots per weight-1 slot (see sched.FairShare). Zero selects
	// 1. Unlike the other fields it shapes capacity rather than bounding
	// it: an idle fleet still serves any tenant at full speed.
	Weight int `json:"weight,omitempty"`
}

// weight is the effective fair-share weight.
func (q Quota) weight() int {
	if q.Weight > 0 {
		return q.Weight
	}
	return 1
}

// burst is the effective bucket depth.
func (q Quota) burst() float64 {
	if q.Burst > 0 {
		return float64(q.Burst)
	}
	return math.Max(1, math.Ceil(q.RatePerSec))
}

// ErrQuotaExceeded is returned by Submit when the tenant's MaxQueued quota
// is exhausted (HTTP 429 at the optd layer).
var ErrQuotaExceeded = errors.New("jobs: tenant queued-job quota exceeded")

// ErrRateLimited is returned by Submit when the tenant's token bucket is
// empty (HTTP 429 at the optd layer).
var ErrRateLimited = errors.New("jobs: tenant submission rate exceeded")

// tenantState is the manager's accounting record for one namespace. All
// fields are guarded by Manager.mu.
type tenantState struct {
	name  string
	quota Quota

	queued    int // guarded by mu: jobs waiting (or reserved mid-submit)
	running   int // guarded by mu
	submitted int // guarded by mu: jobs accepted
	rejected  int // guarded by mu: submissions refused by quota or rate

	tokens     float64   // guarded by mu: token bucket level
	lastRefill time.Time // guarded by mu

	mQueued    *obs.Gauge
	mRunning   *obs.Gauge
	mSubmitted *obs.Counter
	mRejQuota  *obs.Counter
	mRejRate   *obs.Counter
}

// tenantLocked returns (creating on first use) the named tenant's state.
func (m *Manager) tenantLocked(name string) *tenantState {
	if ts, ok := m.tenants[name]; ok {
		return ts
	}
	quota, ok := m.cfg.TenantQuotas[name]
	if !ok {
		quota = m.cfg.DefaultQuota
	}
	// Register the tenant's fair-share weight with the fleet scheduler, so
	// its first batch already dispatches at the right share.
	m.pool.SetWeight(name, quota.weight())
	reg := obs.Default()
	ts := &tenantState{
		name:       name,
		quota:      quota,
		tokens:     quota.burst(), // a fresh tenant starts with a full bucket
		lastRefill: m.now(),
		mQueued: reg.Gauge(fmt.Sprintf("jobs_tenant_queued{tenant=%q}", name),
			"jobs queued, by tenant"),
		mRunning: reg.Gauge(fmt.Sprintf("jobs_tenant_running{tenant=%q}", name),
			"jobs running, by tenant"),
		mSubmitted: reg.Counter(fmt.Sprintf("jobs_tenant_submitted_total{tenant=%q}", name),
			"jobs accepted, by tenant"),
		mRejQuota: reg.Counter(fmt.Sprintf("jobs_tenant_rejected_total{tenant=%q,reason=\"quota\"}", name),
			"submissions refused by the queued-job quota, by tenant"),
		mRejRate: reg.Counter(fmt.Sprintf("jobs_tenant_rejected_total{tenant=%q,reason=\"rate\"}", name),
			"submissions refused by the rate limit, by tenant"),
	}
	m.tenants[name] = ts
	return ts
}

// admitLocked charges one submission against the tenant's rate limit and
// queued-job quota, reserving a queued slot on success. The reservation
// holds while the caller persists the job outside the lock; roll it back
// with unadmitLocked if persistence fails.
func (m *Manager) admitLocked(ts *tenantState, now time.Time) error {
	q := ts.quota
	// The queued-job quota is checked before the rate limit: the quota
	// rejection reserves nothing, while the rate check consumes a token.
	// In the other order a tenant pinned at its queue cap would drain its
	// bucket on every rejected submission and then eat spurious rate
	// errors after the queue frees up.
	if q.MaxQueued > 0 && ts.queued >= q.MaxQueued {
		ts.rejected++
		ts.mRejQuota.Inc()
		return fmt.Errorf("%w: tenant %q has %d jobs queued (max %d)", ErrQuotaExceeded, ts.name, ts.queued, q.MaxQueued)
	}
	if q.RatePerSec > 0 {
		// Token-bucket refill: elapsed wall time buys tokens, capped at the
		// bucket depth so idle time cannot bank an unbounded burst.
		ts.tokens = math.Min(q.burst(), ts.tokens+now.Sub(ts.lastRefill).Seconds()*q.RatePerSec)
		ts.lastRefill = now
		if ts.tokens < 1 {
			ts.rejected++
			ts.mRejRate.Inc()
			return fmt.Errorf("%w: tenant %q over %.3g/s", ErrRateLimited, ts.name, q.RatePerSec)
		}
		ts.tokens--
	}
	ts.queued++
	ts.mQueued.Set(float64(ts.queued))
	return nil
}

// unadmitLocked releases an admitLocked reservation that never became a
// job. The rate-limit token is deliberately not refunded: the submission
// attempt consumed real work.
func (m *Manager) unadmitLocked(ts *tenantState) {
	ts.queued--
	ts.mQueued.Set(float64(ts.queued))
}

// atRunCapLocked reports whether the tenant has no running capacity left.
func (ts *tenantState) atRunCapLocked() bool {
	return ts.quota.MaxRunning > 0 && ts.running >= ts.quota.MaxRunning
}

// startLocked moves one of the tenant's jobs from queued to running.
func (ts *tenantState) startLocked() {
	ts.queued--
	ts.running++
	ts.mQueued.Set(float64(ts.queued))
	ts.mRunning.Set(float64(ts.running))
}

// finishLocked accounts one job leaving the given state.
func (ts *tenantState) finishLocked(from State) {
	switch from {
	case StateQueued:
		ts.queued--
		ts.mQueued.Set(float64(ts.queued))
	case StateRunning:
		ts.running--
		ts.mRunning.Set(float64(ts.running))
	}
}

// TenantStats is one tenant's aggregate accounting, surfaced by the optd
// /healthz payload.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Queued    int    `json:"queued"`
	Running   int    `json:"running"`
	Submitted int    `json:"submitted"`
	Rejected  int    `json:"rejected"`
	// Weight is the effective fair-share weight (Quota.Weight, min 1).
	Weight int   `json:"weight"`
	Quota  Quota `json:"quota,omitzero"`
}

// Tenants returns per-tenant accounting, sorted by tenant name. Only
// tenants that have submitted (or been recovered) appear.
func (m *Manager) Tenants() []TenantStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]TenantStats, 0, len(m.tenants))
	//optlint:nondeterministic-ok sorted immediately below
	for _, ts := range m.tenants {
		out = append(out, TenantStats{
			Tenant:    ts.name,
			Queued:    ts.queued,
			Running:   ts.running,
			Submitted: ts.submitted,
			Rejected:  ts.rejected,
			Weight:    ts.quota.weight(),
			Quota:     ts.quota,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
