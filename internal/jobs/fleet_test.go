package jobs

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/dist"
)

// startFleet brings up a coordinator with n in-process agents for the
// manager tests.
func startFleet(t *testing.T, n int) *dist.Coordinator {
	t.Helper()
	c := dist.NewCoordinator(dist.Config{})
	if err := c.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sub := make(chan struct{}, n)
		for i := 0; i < n; i++ {
			w := dist.NewWorker(dist.WorkerConfig{Addr: c.Addr().String(), Name: "jobs-agent", Capacity: 2})
			go func() {
				w.RunLoop(ctx)
				sub <- struct{}{}
			}()
		}
		for i := 0; i < n; i++ {
			<-sub
		}
	}()
	t.Cleanup(func() { cancel(); <-done })
	wctx, wcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer wcancel()
	if err := c.WaitWorkers(wctx, n); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestFleetJobBitwiseIdenticalToInProcess runs the same spec through a
// fleet-backed manager and a plain one: the job results must agree exactly —
// the manager-level face of the fleet determinism contract.
func TestFleetJobBitwiseIdenticalToInProcess(t *testing.T) {
	fleet := startFleet(t, 2)
	withFleet := newManager(t, Config{MaxConcurrent: 2, Fleet: fleet})
	plain := newManager(t, Config{MaxConcurrent: 2})

	spec := smallSpec(77)
	fleetSpec := spec
	fleetSpec.Fleet = true

	id1, err := withFleet.Submit(fleetSpec)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := plain.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := withFleet.Wait(id1)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := plain.Wait(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Errorf("fleet job result diverged from in-process result:\nfleet: %+v\nlocal: %+v", res1, res2)
	}
}

// TestFleetSpecValidation pins the submission-time errors for fleet jobs.
func TestFleetSpecValidation(t *testing.T) {
	noFleet := newManager(t, Config{})
	spec := smallSpec(1)
	spec.Fleet = true
	if _, err := noFleet.Submit(spec); err == nil || !strings.Contains(err.Error(), "no remote fleet") {
		t.Errorf("fleet spec on fleetless manager: err = %v", err)
	}

	fleet := startFleet(t, 1)
	m := newManager(t, Config{Fleet: fleet})
	spec.Workers = 4
	if _, err := m.Submit(spec); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("fleet+workers spec: err = %v", err)
	}
}
