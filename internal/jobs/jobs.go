// Package jobs is the optimization job service: a manager that multiplexes
// many concurrent optimization runs — each one a first-class job with a
// lifecycle, live progress, cancellation, and durable checkpoints — over one
// shared sched worker fleet.
//
// The paper's deployment (§3.1) runs one master process per optimization and
// survives interruption with the §1.3.5.1 restart strategy. Production
// black-box services (SigOpt's parallel Bayesian optimization, parallel
// SPSA) are instead built as a job layer over a worker fleet; this package
// is that layer for the stochastic simplex:
//
//   - a bounded run pool (Config.MaxConcurrent) drains a FIFO queue of
//     submitted jobs, so a burst of submissions cannot oversubscribe the
//     machine;
//   - every job's sampling space dispatches batches on one shared
//     sched.Scheduler (Config.Workers), the in-process analogue of the
//     paper's fixed worker fleet;
//   - per-job context cancellation stops a run within one sampling round
//     (the sched dispatch guarantee);
//   - live progress fans out from core.Config.Trace to any number of
//     subscribers (Manager.Subscribe);
//   - checkpoints: the optimizer state is snapshotted every
//     Config.CheckpointEvery iterations and persisted with atomic
//     write-then-rename (internal/fileio). A killed process recovers its
//     jobs with Manager.Recover and resumes them bitwise-deterministically
//     — the paper's restart strategy made durable.
//
// cmd/optd exposes the manager over HTTP/JSON; the repro facade re-exports
// it for in-process library use.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/jobstore"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Job-lifecycle metrics (obs registry): state-transition counters, pool
// occupancy gauges and per-state duration histograms. All are updated at
// lifecycle transitions under the manager mutex, far off the sampling
// hot path.
var (
	mSubmitted = obs.Default().Counter("jobs_submitted_total",
		"jobs accepted by Submit")
	mRecovered = obs.Default().Counter("jobs_recovered_total",
		"jobs re-enqueued from durable checkpoints by Recover")
	mCompleted = obs.Default().Counter("jobs_completed_total",
		"jobs that terminated done")
	mFailed = obs.Default().Counter("jobs_failed_total",
		"jobs that terminated failed")
	mCanceled = obs.Default().Counter("jobs_canceled_total",
		"jobs that terminated canceled")
	mQueuedGauge = obs.Default().Gauge("jobs_queued",
		"jobs currently waiting for a run-pool slot")
	mRunningGauge = obs.Default().Gauge("jobs_running",
		"jobs currently executing (run-pool occupancy)")
	mQueueSeconds = obs.Default().Histogram("jobs_queue_seconds", nil,
		"time jobs spent queued before starting")
	mRunSeconds = obs.Default().Histogram("jobs_run_seconds", nil,
		"wall-clock run duration of terminal jobs")
	mCkptWrites = obs.Default().Counter("jobs_checkpoint_writes_total",
		"durable checkpoint snapshots persisted")
	mCkptErrors = obs.Default().Counter("jobs_checkpoint_errors_total",
		"checkpoint writes that failed (run continues without durability)")
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued means the job is waiting for a run-pool slot.
	StateQueued State = "queued"
	// StateRunning means the optimizer is executing.
	StateRunning State = "running"
	// StateDone means the run terminated normally (tolerance, walltime or
	// iteration budget).
	StateDone State = "done"
	// StateFailed means the run returned an error or panicked.
	StateFailed State = "failed"
	// StateCanceled means the job was canceled before or during the run.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Event is one element of a job's progress stream.
type Event struct {
	// JobID identifies the job.
	JobID string `json:"job_id"`
	// Type is "state" for lifecycle transitions, "trace" for per-iteration
	// optimizer progress.
	Type string `json:"type"`
	// State is set on "state" events.
	State State `json:"state,omitempty"`
	// Trace is set on "trace" events.
	Trace *core.TraceEvent `json:"trace,omitempty"`
}

// Status is the externally visible snapshot of a job.
type Status struct {
	ID string `json:"id"`
	// Name is the spec's optional human label.
	Name string `json:"name,omitempty"`
	// Tenant is the namespace the job is accounted to ("default" when the
	// spec named none).
	Tenant string `json:"tenant,omitempty"`
	State  State  `json:"state"`
	Spec   Spec   `json:"spec"`
	// Created/Started/Finished are wall-clock lifecycle timestamps; zero
	// until reached.
	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
	// Iterations and BestG are live progress (updated per trace event).
	// Iterations accumulates across restart legs and BestG is the best
	// estimate seen over the whole job, so both are monotonic for polling
	// clients even when a fresh restart leg begins.
	Iterations int     `json:"iterations"`
	BestG      float64 `json:"best_g"`
	// Error holds the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// CheckpointError reports a durable-checkpoint write failure. The run
	// itself continues (and may finish done), but it cannot be recovered
	// from a snapshot newer than the last successful write.
	CheckpointError string `json:"checkpoint_error,omitempty"`
	// Resumed reports whether the job was recovered from a checkpoint.
	Resumed bool `json:"resumed,omitempty"`
}

// Config configures a Manager.
type Config struct {
	// MaxConcurrent bounds the number of jobs running simultaneously.
	// Zero selects 4.
	MaxConcurrent int
	// Workers sizes the shared sched fleet all job spaces dispatch on.
	// Zero selects GOMAXPROCS.
	Workers int
	// SchedPolicy selects how the shared fleet orders batch tasks across
	// tenants: "fair" (default) is weighted fair-share by Quota.Weight,
	// "fifo" is the single-global-queue baseline the serving benchmark
	// contrasts it against.
	SchedPolicy string
	// Store, when non-nil, is the durable job store: every accepted job is
	// recorded in it at submission (so a killed-while-queued job survives),
	// updated with each optimizer snapshot, and removed on completion. The
	// manager takes ownership and closes it on Close.
	Store jobstore.Store
	// CheckpointDir is shorthand for Store: when Store is nil and
	// CheckpointDir is non-empty, the manager opens a jobstore of StoreKind
	// rooted there. The directory is created if missing.
	CheckpointDir string
	// StoreKind selects the CheckpointDir store layout: "file" (default,
	// one atomically-renamed JSON file per job) or "wal" (single fsynced
	// append-only log).
	StoreKind string
	// CheckpointEvery is the snapshot period in simplex iterations.
	// Zero selects 20.
	CheckpointEvery int
	// TraceBuffer is the per-subscriber event buffer. A slow subscriber
	// drops events rather than stalling the optimizer. Zero selects 64.
	TraceBuffer int
	// RetainTerminal bounds how many terminal (done/failed/canceled) job
	// records the manager keeps; when exceeded, the oldest terminal jobs are
	// evicted so a long-lived server's memory stays bounded. Evicted jobs
	// return ErrNotFound from Get/Result/Wait — like any retention-bounded
	// service, results must be consumed before the record ages out, so size
	// the bound well above the submission fan-out between fetches. Zero
	// selects 4096; negative retains everything.
	RetainTerminal int
	// Objectives adds custom named objectives to the testfunc catalog.
	Objectives map[string]func(x []float64) float64
	// SampleCost, if non-nil, models the per-increment CPU cost of sampling
	// (sim.LocalConfig.SampleCost) in every job space this manager builds.
	// An objective's F runs once at point creation in the job's own
	// goroutine; SampleCost is what each sampling increment pays on the
	// shared fleet's workers — it is what makes fleet scheduling (and the
	// fairness benchmark) meaningful. Must be safe for concurrent calls.
	SampleCost func(x []float64, dt float64)
	// Fleet, when non-nil, lets jobs with Spec.Fleet run their sampling over
	// a remote worker fleet (a dist.Coordinator) instead of the in-process
	// pool. The manager does not own the fleet; the caller (cmd/optd)
	// creates and closes it.
	Fleet sim.FleetSampler
	// Events, when non-nil, receives structured lifecycle events
	// (job_state transitions, checkpoint writes and failures). A nil
	// logger discards them.
	Events *obs.Logger
	// DefaultQuota applies to every tenant without an explicit entry in
	// TenantQuotas. The zero Quota is unlimited.
	DefaultQuota Quota
	// TenantQuotas overrides DefaultQuota per tenant name.
	TenantQuotas map[string]Quota
}

func (c *Config) normalize() {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 4
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 20
	}
	if c.TraceBuffer <= 0 {
		c.TraceBuffer = 64
	}
	if c.RetainTerminal == 0 {
		c.RetainTerminal = 4096
	}
	if c.SchedPolicy == "" {
		c.SchedPolicy = "fair"
	}
}

// job is the manager's internal record of one run.
type job struct {
	id     string
	spec   Spec
	tenant string
	// store holds the job's durable record (nil when the manager has no
	// store). Adopted jobs keep the dead replica's store they came from,
	// so their snapshots and cleanup land where a later recovery looks.
	store jobstore.Store
	// recovered marks jobs re-enqueued from a durable record (with or
	// without a snapshot).
	recovered bool

	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	result   *core.Result
	err      error
	ckptErr  error // latest checkpoint-write failure; the run itself continues
	iter     int
	bestG    float64

	ctx    context.Context
	cancel context.CancelFunc
	resume *core.Snapshot // non-nil when recovered with a snapshot
	done   chan struct{}

	subs    map[int]chan Event
	nextSub int
}

// Manager runs many optimizations as jobs over one worker fleet. Create it
// with New, submit with Submit, and release it with Close.
type Manager struct {
	cfg  Config
	pool *sched.Scheduler

	// store is the manager's own durable store (nil when durability is
	// off); adopted collects stores taken over via RecoverFrom. Both are
	// set before the manager is shared (store) or append-only under mu
	// (adopted), and every store is internally synchronized.
	store   jobstore.Store
	adopted []jobstore.Store // guarded by mu

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*job         // guarded by mu
	queue    []*job                  // guarded by mu
	terminal []string                // guarded by mu: terminal job IDs, oldest first, for retention eviction
	tenants  map[string]*tenantState // guarded by mu
	reserved map[string]struct{}     // guarded by mu: IDs spoken for (durable records not yet recovered, submissions mid-persist)
	nextID   int                     // guarded by mu
	closed   bool                    // guarded by mu

	// now is the manager's clock, set once in New and only overridden by
	// tests: the token-bucket refill math is a pure function of the times
	// it returns, so rate-limit boundaries are testable without sleeping.
	now func() time.Time

	wg sync.WaitGroup
}

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("jobs: no such job")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager is closed")

// New builds a Manager and starts its run pool. When cfg.CheckpointDir is
// set, previously checkpointed jobs are NOT resumed automatically; call
// Recover to pick them up.
func New(cfg Config) (*Manager, error) {
	cfg.normalize()
	var policy sched.Policy
	switch cfg.SchedPolicy {
	case "fair":
		policy = sched.FairShare
	case "fifo":
		policy = sched.FIFO
	default:
		return nil, fmt.Errorf("jobs: unknown SchedPolicy %q (want \"fair\" or \"fifo\")", cfg.SchedPolicy)
	}
	m := &Manager{
		cfg:      cfg,
		pool:     sched.New(sched.Config{Workers: cfg.Workers, Policy: policy}),
		jobs:     make(map[string]*job),
		tenants:  make(map[string]*tenantState),
		reserved: make(map[string]struct{}),
		now:      time.Now,
	}
	m.cond = sync.NewCond(&m.mu)
	if err := m.initStore(); err != nil {
		m.pool.Close()
		return nil, err
	}
	for i := 0; i < cfg.MaxConcurrent; i++ {
		m.wg.Add(1)
		go m.runner()
	}
	return m, nil
}

// Close cancels every live job, waits for the run pool to drain, releases
// the worker fleet and closes the durable store(s). Records of queued and
// running jobs stay durable, so a new manager — on this machine or any
// replica sharing the store — can Recover them.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	for _, j := range m.jobs {
		j.cancel()
	}
	m.cond.Broadcast()
	stores := m.adopted
	m.mu.Unlock()
	m.wg.Wait()
	m.pool.Close()
	if m.store != nil {
		m.store.Close()
	}
	for _, st := range stores {
		st.Close()
	}
}

// Submit validates the spec, charges the tenant's quota and rate limit,
// assigns a job ID, durably records the job (when a store is configured)
// and enqueues it. The job starts as soon as a run-pool slot frees up.
func (m *Manager) Submit(spec Spec) (string, error) {
	return m.submit("", spec)
}

// SubmitWithID is Submit with a caller-chosen job ID — the shard router
// uses it so the job's placement is a pure function of an ID the router
// generated, and any replica can locate the job without shared state. The
// ID must be storable (jobstore.ValidID) and not already in use; IDs of
// the auto-assigned j<number> form reserve that number, so later automatic
// IDs never collide with it.
func (m *Manager) SubmitWithID(id string, spec Spec) (string, error) {
	if err := jobstore.CheckID(id); err != nil {
		return "", err
	}
	return m.submit(id, spec)
}

// submit is the two-phase admission path shared by Submit and
// SubmitWithID. Phase one (under mu): validate, charge the tenant, assign
// and reserve the ID. Phase two (outside mu — an fsync must never
// serialize the manager): persist the record, then re-lock and enqueue.
func (m *Manager) submit(explicit string, spec Spec) (string, error) {
	spec.normalize()
	if err := spec.validate(m); err != nil {
		return "", err
	}
	tenant := tenantOf(spec.Tenant)

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return "", ErrClosed
	}
	id := explicit
	if id == "" {
		m.nextID++
		id = fmt.Sprintf("j%06d", m.nextID)
	} else {
		if _, taken := m.jobs[id]; taken {
			m.mu.Unlock()
			return "", fmt.Errorf("jobs: job ID %s already taken", id)
		}
		if _, taken := m.reserved[id]; taken {
			m.mu.Unlock()
			return "", fmt.Errorf("jobs: job ID %s already taken", id)
		}
		m.bumpIDLocked(id)
	}
	ts := m.tenantLocked(tenant)
	if err := m.admitLocked(ts, m.now()); err != nil {
		m.mu.Unlock()
		return "", err
	}
	m.reserved[id] = struct{}{}
	store := m.store
	m.mu.Unlock()

	if store != nil {
		payload, err := marshalRecord(id, spec, nil)
		if err == nil {
			err = store.Put(id, payload)
		}
		if err != nil {
			m.mu.Lock()
			delete(m.reserved, id)
			m.unadmitLocked(ts)
			m.mu.Unlock()
			return "", fmt.Errorf("jobs: persisting job %s: %w", id, err)
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.reserved, id)
	if m.closed {
		// Closed while persisting: the job was never enqueued, so drop the
		// record — leaving it would resurrect a job the caller was told was
		// rejected. A failed delete is harmless (re-running a spec is
		// deterministic), so the error is not propagated.
		if store != nil {
			store.Delete(id)
		}
		m.unadmitLocked(ts)
		return "", ErrClosed
	}
	ts.submitted++
	ts.mSubmitted.Inc()
	j := m.enqueueLocked(id, spec, nil, false)
	j.store = store
	return id, nil
}

// enqueueLocked registers a job (fresh or recovered) and wakes a runner.
// The caller has already charged the job's tenant with one queued slot.
func (m *Manager) enqueueLocked(id string, spec Spec, resume *core.Snapshot, recovered bool) *job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &job{
		id:        id,
		spec:      spec,
		tenant:    tenantOf(spec.Tenant),
		recovered: recovered,
		state:     StateQueued,
		created:   time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		resume:    resume,
		done:      make(chan struct{}),
		subs:      make(map[int]chan Event),
	}
	if resume != nil {
		// Seed live progress from the snapshot immediately, so a client
		// polling across the kill/recover never sees the counters regress.
		j.iter = resume.Iterations
		if resume.Restart != nil && resume.Restart.Total != nil {
			j.iter += resume.Restart.Total.Iterations
		}
		if resume.Restart != nil && resume.Restart.Best != nil {
			j.bestG = resume.Restart.Best.BestG
		}
	}
	m.jobs[id] = j
	m.queue = append(m.queue, j)
	if recovered {
		mRecovered.Inc()
	} else {
		mSubmitted.Inc()
	}
	mQueuedGauge.Inc()
	m.cfg.Events.Event("job_state", "job", id, "state", StateQueued, "tenant", j.tenant, "resumed", recovered)
	m.cond.Signal()
	return j
}

// dequeueLocked pops the first runnable job in FIFO order, skipping jobs
// whose tenant is at its running cap (they keep their queue position, but
// other tenants' jobs pass them — one capped tenant must not block the
// pool). Queued jobs already canceled are finalized in place. Returns nil
// when nothing is runnable right now.
func (m *Manager) dequeueLocked() *job {
	for i := 0; i < len(m.queue); i++ {
		j := m.queue[i]
		if j.ctx.Err() != nil {
			// Canceled (or manager-closed) while still queued.
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			m.finishLocked(j, nil, nil, StateCanceled)
			i--
			continue
		}
		if ts, ok := m.tenants[j.tenant]; ok && ts.atRunCapLocked() {
			continue
		}
		m.queue = append(m.queue[:i], m.queue[i+1:]...)
		return j
	}
	return nil
}

// runner is one run-pool slot: it drains the FIFO queue until Close.
func (m *Manager) runner() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		var j *job
		for {
			if j = m.dequeueLocked(); j != nil || m.closed {
				break
			}
			m.cond.Wait()
		}
		if j == nil {
			m.mu.Unlock()
			return
		}
		j.state = StateRunning
		j.started = time.Now()
		m.tenantLocked(j.tenant).startLocked()
		mQueuedGauge.Dec()
		mRunningGauge.Inc()
		mQueueSeconds.Observe(j.started.Sub(j.created).Seconds())
		m.cfg.Events.Event("job_state", "job", j.id, "state", StateRunning)
		m.publishLocked(j, Event{JobID: j.id, Type: "state", State: StateRunning})
		m.mu.Unlock()

		res, err := m.execute(j)

		m.mu.Lock()
		switch {
		case err != nil:
			m.finishLocked(j, nil, err, StateFailed)
		case res.Termination == "canceled":
			m.finishLocked(j, res, nil, StateCanceled)
		default:
			m.finishLocked(j, res, nil, StateDone)
		}
		m.mu.Unlock()
	}
}

// execute runs one job to completion (or cancellation). A panic in the
// objective is converted to a job failure instead of crashing the service.
func (m *Manager) execute(j *job) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("jobs: run panicked: %v", r)
		}
	}()
	space, err := m.space(j.spec)
	if err != nil {
		return nil, err
	}
	defer space.Close()

	// Status progress stays monotonic across restart legs: core trace
	// events restart Iter at 1 per leg, so accumulate a base, and report
	// the best estimate seen over all legs. Subscribers still receive the
	// raw per-leg optimizer events. A job recovered from a checkpoint seeds
	// the counters from the snapshot, so post-recovery polls never show
	// values below what clients saw before the kill.
	var legBase, prevIter int
	var haveBest bool
	if r := j.resume; r != nil {
		// Continue the monotonic accounting enqueueLocked seeded.
		prevIter = r.Iterations // leg-local position at the snapshot
		if r.Restart != nil && r.Restart.Total != nil {
			legBase = r.Restart.Total.Iterations // completed earlier legs
		}
		haveBest = r.Restart != nil && r.Restart.Best != nil
	}
	trace := func(e core.TraceEvent) {
		m.mu.Lock()
		if e.Iter <= prevIter {
			legBase += prevIter // a fresh restart leg began
		}
		prevIter = e.Iter
		j.iter = legBase + e.Iter
		if !haveBest || e.Best < j.bestG {
			j.bestG = e.Best
			haveBest = true
		}
		m.publishLocked(j, Event{JobID: j.id, Type: "trace", Trace: &e})
		m.mu.Unlock()
	}
	checkpoint := func(s *core.Snapshot) {
		if cerr := m.saveCheckpoint(j, s); cerr != nil {
			// A checkpoint that cannot be written must not kill the run; the
			// job just loses durability from this point on. Surfaced as
			// Status.CheckpointError, distinct from a run failure.
			mCkptErrors.Inc()
			m.cfg.Events.Event("checkpoint_error", "job", j.id, "err", cerr)
			m.mu.Lock()
			j.ckptErr = cerr
			m.mu.Unlock()
			return
		}
		mCkptWrites.Inc()
		m.cfg.Events.Event("checkpoint_write", "job", j.id, "iterations", s.Iterations)
	}

	// Every strategy — the NM family, pso, the hybrid, and anything a
	// third party registers — runs through the one core driver, so the job
	// layer adds no per-strategy code paths.
	rs, err := j.spec.runSpec()
	if err != nil {
		return nil, err
	}
	rs.Config.Trace = trace
	if j.store != nil && j.spec.resumable() {
		rs.Config.Checkpoint = checkpoint
		rs.Config.CheckpointEvery = m.cfg.CheckpointEvery
	}
	rs.Resume = j.resume
	return core.Run(j.ctx, space, rs)
}

// finishLocked moves a job to a terminal state, publishes the transition,
// closes subscriber channels and cleans up the durable checkpoint.
func (m *Manager) finishLocked(j *job, res *core.Result, err error, state State) {
	prev := j.state
	j.state = state
	j.result = res
	if err != nil {
		j.err = err
	}
	j.finished = time.Now()
	if res != nil {
		j.iter = res.Iterations
		j.bestG = res.BestG
	}
	switch prev {
	case StateQueued:
		mQueuedGauge.Dec()
	case StateRunning:
		mRunningGauge.Dec()
		mRunSeconds.Observe(j.finished.Sub(j.started).Seconds())
	}
	m.tenantLocked(j.tenant).finishLocked(prev)
	if prev == StateRunning {
		// A tenant that was at its running cap may have queued jobs a
		// runner skipped; wake the pool to re-scan the queue.
		m.cond.Broadcast()
	}
	switch state {
	case StateDone:
		mCompleted.Inc()
	case StateFailed:
		mFailed.Inc()
	case StateCanceled:
		mCanceled.Inc()
	}
	if err != nil {
		m.cfg.Events.Event("job_state", "job", j.id, "state", state, "err", err)
	} else {
		m.cfg.Events.Event("job_state", "job", j.id, "state", state)
	}
	m.publishLocked(j, Event{JobID: j.id, Type: "state", State: state})
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
	close(j.done)
	if state == StateDone || (state == StateCanceled && !m.closed) {
		// A completed or user-canceled job no longer needs its record.
		// Failed jobs keep theirs (re-recoverable once the bug is fixed),
		// and jobs canceled by Close keep theirs too — shutdown is the
		// "kill" the durable-record design exists for, and a fresh manager
		// (or an adopting replica) picks them up with Recover/RecoverFrom.
		m.removeRecord(j)
	}
	// Retention: evict the oldest terminal records beyond the bound so a
	// long-lived server's job table stays finite.
	m.terminal = append(m.terminal, j.id)
	if r := m.cfg.RetainTerminal; r > 0 {
		for len(m.terminal) > r {
			delete(m.jobs, m.terminal[0])
			m.terminal = m.terminal[1:]
		}
	}
}

// publishLocked fans an event out to the job's subscribers, dropping it for
// any subscriber whose buffer is full (slow consumers must not stall the
// optimizer loop).
func (m *Manager) publishLocked(j *job, e Event) {
	for _, ch := range j.subs {
		select {
		case ch <- e:
		default:
		}
	}
}

// Cancel requests cancellation of a job. Queued jobs are removed from the
// queue and finalized immediately (a Wait on them returns right away, not
// after the current job frees a slot); running jobs stop within one sampling
// round and finish with state "canceled". Canceling a terminal job is a
// no-op.
func (m *Manager) Cancel(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return ErrNotFound
	}
	j.cancel()
	if j.state == StateQueued {
		for i, q := range m.queue {
			if q == j {
				m.queue = append(m.queue[:i], m.queue[i+1:]...)
				break
			}
		}
		m.finishLocked(j, nil, nil, StateCanceled)
	}
	return nil
}

// Get returns the job's current status.
func (m *Manager) Get(id string) (Status, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Status{}, ErrNotFound
	}
	return m.statusLocked(j), nil
}

// Stats is a point-in-time aggregate view of the manager, the payload
// behind the optd server's /healthz readiness probe.
type Stats struct {
	// Workers is the size of the shared sampling fleet.
	Workers int `json:"workers"`
	// MaxConcurrent is the run-pool width.
	MaxConcurrent int `json:"max_concurrent"`
	// Store names the durable store kind ("file", "wal"; empty when
	// durability is off).
	Store string `json:"store,omitempty"`
	// Tenants counts namespaces that have submitted or recovered jobs.
	Tenants int `json:"tenants,omitempty"`
	// Queued..Canceled count jobs by lifecycle state (terminal counts are
	// bounded by Config.RetainTerminal).
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Done     int `json:"done"`
	Failed   int `json:"failed"`
	Canceled int `json:"canceled"`
}

// Stats returns the manager's aggregate state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Workers: m.pool.Workers(), MaxConcurrent: m.cfg.MaxConcurrent, Tenants: len(m.tenants)}
	if m.store != nil {
		st.Store = m.store.Kind()
	}
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
	}
	return st
}

// List returns the status of every job, oldest first.
func (m *Manager) List() []Status {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Status, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, m.statusLocked(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

func (m *Manager) statusLocked(j *job) Status {
	st := Status{
		ID:         j.id,
		Name:       j.spec.Name,
		Tenant:     j.tenant,
		State:      j.state,
		Spec:       j.spec,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
		Iterations: j.iter,
		BestG:      j.bestG,
		Resumed:    j.recovered,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.ckptErr != nil {
		st.CheckpointError = j.ckptErr.Error()
	}
	return st
}

// Result returns the completed job's Result. It errors while the job is
// still queued or running, for failed jobs (the run error), and for jobs
// canceled before they ever started (no result exists). A job canceled
// mid-run does have a Result: the best vertex found up to the cancellation.
func (m *Manager) Result(id string) (*core.Result, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return m.resultLocked(j)
}

func (m *Manager) resultLocked(j *job) (*core.Result, error) {
	if !j.state.Terminal() {
		return nil, fmt.Errorf("jobs: job %s is %s", j.id, j.state)
	}
	if j.state == StateFailed {
		return nil, j.err
	}
	if j.result == nil {
		return nil, fmt.Errorf("jobs: job %s was canceled before it started", j.id)
	}
	return j.result, nil
}

// Wait blocks until the job reaches a terminal state and returns its Result
// under the same contract as Result (an error for failed jobs and for jobs
// canceled before they started).
func (m *Manager) Wait(id string) (*core.Result, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	<-j.done
	// Read the record directly: the job may already have been evicted from
	// the table by terminal-retention churn.
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resultLocked(j)
}

// Subscribe registers a progress listener for a job: the returned channel
// receives "state" and per-iteration "trace" events and is closed when the
// job reaches a terminal state (or when the returned cancel function is
// called). Events are dropped, not queued unboundedly, when the subscriber
// falls more than TraceBuffer events behind.
func (m *Manager) Subscribe(id string) (<-chan Event, func(), error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	ch := make(chan Event, m.cfg.TraceBuffer)
	if j.state.Terminal() {
		// Deliver the terminal state and close immediately: late subscribers
		// see a consistent (if short) stream.
		ch <- Event{JobID: j.id, Type: "state", State: j.state}
		close(ch)
		return ch, func() {}, nil
	}
	sub := j.nextSub
	j.nextSub++
	j.subs[sub] = ch
	cancel := func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		if c, ok := j.subs[sub]; ok {
			delete(j.subs, sub)
			close(c)
		}
	}
	return ch, cancel, nil
}
