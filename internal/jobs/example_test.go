package jobs_test

import (
	"fmt"

	"repro/internal/jobs"
)

// Example_manager submits two optimization jobs to a shared manager, waits
// for both, and prints their outcomes. The same API is re-exported at the
// module root (repro.NewJobManager) and served over HTTP by cmd/optd.
func Example_manager() {
	m, err := jobs.New(jobs.Config{MaxConcurrent: 2})
	if err != nil {
		panic(err)
	}
	defer m.Close()

	var ids []string
	for seed := int64(1); seed <= 2; seed++ {
		id, err := m.Submit(jobs.Spec{
			Objective:     "rosenbrock",
			Dim:           3,
			Algorithm:     "mn",
			Sigma0:        10,
			Seed:          seed,
			Tol:           -1, // run to the iteration cap
			Budget:        1e12,
			MaxIterations: 100,
		})
		if err != nil {
			panic(err)
		}
		ids = append(ids, id)
	}

	for _, id := range ids {
		res, err := m.Wait(id)
		if err != nil {
			panic(err)
		}
		st, _ := m.Get(id)
		fmt.Printf("%s: %s (termination %q, %d iterations)\n",
			id, st.State, res.Termination, res.Iterations)
	}
	// Output:
	// j000001: done (termination "walltime", 68 iterations)
	// j000002: done (termination "walltime", 96 iterations)
}
