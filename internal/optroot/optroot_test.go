package optroot

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildRoot creates a minimal OPTROOT tree: two systems (one with a nested
// second phase), two properties computed from the parameters by shell
// arithmetic.
func buildRoot(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	write("input", strings.Join([]string{
		"a b",
		"1.0 2.0",
		"1.5 2.0",
		"1.0 2.5",
	}, "\n"))
	// System 1: phase 1 writes a|b to out1, phase 2 copies it up.
	write("systems/sysA/run.sh", "echo $PARAM_a > out1\n")
	write("systems/sysA/nve/run.sh", "cp ../out1 out2\n")
	write("systems/sysA/config.dat", "starting configuration\n")
	// System 2: single phase.
	write("systems/sysB/run.sh", "echo $PARAM_b > outB\n")
	// Reserved par dir must be ignored.
	write("systems/par0001/run.sh", "echo should-never-run\n")
	// Properties: prop1 = a (target 1, w 1), prop2 = b (target 2, w 2).
	write("properties/prop1.sh", "cat sysA/out1\n")
	write("properties/prop1.val", "1.0\n")
	write("properties/prop2.sh", "cat sysB/outB\n")
	write("properties/prop2.val", "2.0\n")
	write("properties/prop2.w", "2.0\n")
	return dir
}

func TestLoadParsesTree(t *testing.T) {
	r, err := Load(buildRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.ParamNames) != 2 || r.ParamNames[0] != "a" || r.ParamNames[1] != "b" {
		t.Fatalf("params = %v", r.ParamNames)
	}
	if len(r.InitialSimplex) != 3 {
		t.Fatalf("simplex rows = %d", len(r.InitialSimplex))
	}
	if r.InitialSimplex[1][0] != 1.5 {
		t.Fatalf("vertex value = %v", r.InitialSimplex[1][0])
	}
	if len(r.Systems) != 2 {
		t.Fatalf("systems = %+v", r.Systems)
	}
	if r.Systems[0].Name != "sysA" || len(r.Systems[0].Phases) != 2 {
		t.Fatalf("sysA phases = %+v", r.Systems[0].Phases)
	}
	if r.Systems[0].Phases[1].Depth != 2 {
		t.Fatalf("nested phase depth = %d", r.Systems[0].Phases[1].Depth)
	}
	if len(r.Properties) != 2 {
		t.Fatalf("properties = %+v", r.Properties)
	}
	if r.Properties[1].Weight != 2 {
		t.Fatalf("prop2 weight = %v", r.Properties[1].Weight)
	}
}

func TestProcessorsCountsRunScripts(t *testing.T) {
	r, err := Load(buildRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	// sysA has 2 phases, sysB has 1; par0001 is ignored.
	if got := r.Processors(); got != 3 {
		t.Fatalf("Processors = %d, want 3", got)
	}
}

func TestEvaluateRunsPhasesAndComputesCost(t *testing.T) {
	r, err := Load(buildRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Evaluate([]float64{1.2, 2.4})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Properties) != 2 {
		t.Fatalf("properties = %v", ev.Properties)
	}
	if math.Abs(ev.Properties[0]-1.2) > 1e-9 || math.Abs(ev.Properties[1]-2.4) > 1e-9 {
		t.Fatalf("properties = %v, want [1.2 2.4]", ev.Properties)
	}
	// cost = (1/1^2)((1.2-1)/1)^2 + (1/2^2)((2.4-2)/2)^2 = 0.04 + 0.01.
	if math.Abs(ev.Cost-0.05) > 1e-9 {
		t.Fatalf("cost = %v, want 0.05", ev.Cost)
	}
	// The nested phase must have run after phase 1.
	if _, err := os.Stat(filepath.Join(ev.Dir, "sysA", "nve", "out2")); err != nil {
		t.Fatalf("phase 2 output missing: %v", err)
	}
	// Static input files must have been staged.
	if _, err := os.Stat(filepath.Join(ev.Dir, "sysA", "config.dat")); err != nil {
		t.Fatalf("staged config missing: %v", err)
	}
}

func TestEvaluateSeparateDirsPerCall(t *testing.T) {
	r, err := Load(buildRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	ev1, err := r.Evaluate([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	ev2, err := r.Evaluate([]float64{1.1, 2.2})
	if err != nil {
		t.Fatal(err)
	}
	if ev1.Dir == ev2.Dir {
		t.Fatal("evaluations shared a par directory")
	}
}

func TestEvaluateDimensionCheck(t *testing.T) {
	r, err := Load(buildRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Evaluate([]float64{1}); err == nil {
		t.Fatal("wrong-dimension evaluate accepted")
	}
}

func TestLoadErrors(t *testing.T) {
	// Missing input file.
	dir := t.TempDir()
	if _, err := Load(dir); err == nil {
		t.Fatal("empty dir accepted")
	}

	// Input with too few vertex rows.
	dir2 := t.TempDir()
	os.WriteFile(filepath.Join(dir2, "input"), []byte("a b\n1 2\n"), 0o644)
	if _, err := Load(dir2); err == nil {
		t.Fatal("short input accepted")
	}

	// System without run.sh.
	dir3 := t.TempDir()
	os.WriteFile(filepath.Join(dir3, "input"), []byte("a\n1\n2\n"), 0o644)
	os.MkdirAll(filepath.Join(dir3, "systems", "broken"), 0o755)
	if _, err := Load(dir3); err == nil {
		t.Fatal("system without run.sh accepted")
	}
}

func TestPropertyWithoutTargetRejected(t *testing.T) {
	dir := buildRoot(t)
	os.WriteFile(filepath.Join(dir, "properties", "prop3.sh"), []byte("echo 1\n"), 0o755)
	if _, err := Load(dir); err == nil {
		t.Fatal("property without .val accepted")
	}
}

func TestNegativeWeightRejected(t *testing.T) {
	dir := buildRoot(t)
	os.WriteFile(filepath.Join(dir, "properties", "prop2.w"), []byte("-1\n"), 0o644)
	if _, err := Load(dir); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestFailingPhaseSurfacesError(t *testing.T) {
	dir := buildRoot(t)
	os.WriteFile(filepath.Join(dir, "systems", "sysB", "run.sh"), []byte("echo boom >&2; exit 3\n"), 0o755)
	r, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Evaluate([]float64{1, 2}); err == nil {
		t.Fatal("failing phase did not surface")
	} else if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error lacks script output: %v", err)
	}
}

func TestZeroTargetUsesAbsoluteResidual(t *testing.T) {
	dir := buildRoot(t)
	os.WriteFile(filepath.Join(dir, "properties", "prop1.val"), []byte("0\n"), 0o644)
	r, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := r.Evaluate([]float64{0.3, 2})
	if err != nil {
		t.Fatal(err)
	}
	// prop1: (0.3-0)^2/1 = 0.09; prop2 on target = 0.
	if math.Abs(ev.Cost-0.09) > 1e-9 {
		t.Fatalf("cost = %v, want 0.09", ev.Cost)
	}
}
