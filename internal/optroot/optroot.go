// Package optroot implements the $OPTROOT directory protocol of Chapter 4,
// the user-facing input format of the optimization program:
//
//	$OPTROOT/
//	  input                      # row 1: d parameter names; rows 2..: vertices
//	  systems/<sysname>/run.sh   # phase-1 simulation script (+ input files)
//	  systems/<sysname>/<phase>/run.sh   # optional later phases, nested
//	  properties/prop*.sh        # property calculators (print one number)
//	  properties/prop*.val       # target value p0 (first line)
//	  properties/prop*.w         # optional tolerance weight w (default 1)
//
// Subdirectories of systems/ matching par[0-9]* are reserved for evaluation
// outputs ("new simulations ... are carried out in a new directory under the
// $OPTROOT/systems directory") and are never treated as systems. Job sizing
// follows the paper: one processor is requested per run.sh found.
//
// The cost function follows eq 1.3, where the weights are *inverse*
// tolerances: g = sum_i (1/w_i^2) (p_i - p0_i)^2 / (p0_i)^2, so doubling w_i
// halves the penalty of a given relative error. (The application chapter's
// eq 3.4 writes the weight multiplicatively; internal/water follows that
// form. The two differ only by the convention w -> 1/w.)
package optroot

import (
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// parDirPattern matches the reserved evaluation-output directories.
var parDirPattern = regexp.MustCompile(`^par[0-9]*$`)

// Phase is one simulation phase: a run.sh in a (possibly nested) directory.
type Phase struct {
	// RelDir is the phase directory relative to the system root ("." for
	// phase 1).
	RelDir string
	// Depth is 1 for the top-level run.sh, 2 for its subdirectories, etc.
	Depth int
}

// System is one simulated system under systems/.
type System struct {
	// Name is the directory name.
	Name string
	// Phases lists the run.sh phases, ordered parent-first and lexically
	// within a level.
	Phases []Phase
}

// PropertySpec is one target property.
type PropertySpec struct {
	// Name is the prop* basename (without extension).
	Name string
	// Target is the p0 value from prop*.val.
	Target float64
	// Weight is the tolerance w from prop*.w (1 if absent).
	Weight float64
	// Script is the absolute path of the calculator.
	Script string
}

// Root is a parsed $OPTROOT tree.
type Root struct {
	// Dir is the absolute root path.
	Dir string
	// ParamNames is the first row of the input file.
	ParamNames []string
	// InitialSimplex holds the d+1 starting vertices.
	InitialSimplex [][]float64
	// Systems lists the simulation systems.
	Systems []System
	// Properties lists the cost-function properties.
	Properties []PropertySpec
	// Seed, when non-zero, is exported to every phase and property script
	// as OPT_SEED, so stochastic user simulations can be reproduced from
	// the mwopt invocation that drove them.
	Seed int64

	evalSeq int
}

// Load parses an $OPTROOT directory.
func Load(dir string) (*Root, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, fmt.Errorf("optroot: %w", err)
	}
	r := &Root{Dir: abs}
	if err := r.loadInput(); err != nil {
		return nil, err
	}
	if err := r.loadSystems(); err != nil {
		return nil, err
	}
	if err := r.loadProperties(); err != nil {
		return nil, err
	}
	return r, nil
}

func (r *Root) loadInput() error {
	data, err := os.ReadFile(filepath.Join(r.Dir, "input"))
	if err != nil {
		return fmt.Errorf("optroot: reading input file: %w", err)
	}
	lines := nonEmptyLines(string(data))
	if len(lines) < 2 {
		return fmt.Errorf("optroot: input file needs a name row and at least one vertex row")
	}
	r.ParamNames = strings.Fields(lines[0])
	d := len(r.ParamNames)
	if d == 0 {
		return fmt.Errorf("optroot: input file has an empty parameter-name row")
	}
	need := d + 1
	if len(lines)-1 < need {
		return fmt.Errorf("optroot: input file has %d vertex rows, need at least d+1 = %d", len(lines)-1, need)
	}
	for _, line := range lines[1 : need+1] {
		fields := strings.Fields(line)
		if len(fields) != d {
			return fmt.Errorf("optroot: vertex row %q has %d values, want %d", line, len(fields), d)
		}
		v := make([]float64, d)
		for i, f := range fields {
			v[i], err = strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("optroot: vertex value %q: %w", f, err)
			}
		}
		r.InitialSimplex = append(r.InitialSimplex, v)
	}
	return nil
}

func nonEmptyLines(s string) []string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.TrimSpace(line) != "" {
			out = append(out, line)
		}
	}
	return out
}

func (r *Root) loadSystems() error {
	sysRoot := filepath.Join(r.Dir, "systems")
	entries, err := os.ReadDir(sysRoot)
	if err != nil {
		return fmt.Errorf("optroot: reading systems directory: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() || parDirPattern.MatchString(e.Name()) {
			continue
		}
		sys := System{Name: e.Name()}
		if err := collectPhases(filepath.Join(sysRoot, e.Name()), ".", 1, &sys.Phases); err != nil {
			return err
		}
		if len(sys.Phases) == 0 {
			return fmt.Errorf("optroot: system %q has no run.sh", e.Name())
		}
		r.Systems = append(r.Systems, sys)
	}
	if len(r.Systems) == 0 {
		return fmt.Errorf("optroot: no systems found under %s", sysRoot)
	}
	sort.Slice(r.Systems, func(i, j int) bool { return r.Systems[i].Name < r.Systems[j].Name })
	return nil
}

// collectPhases walks a system directory parent-first: a run.sh in dir is a
// phase; every non-par subdirectory is a later phase.
func collectPhases(absDir, relDir string, depth int, out *[]Phase) error {
	if _, err := os.Stat(filepath.Join(absDir, "run.sh")); err == nil {
		*out = append(*out, Phase{RelDir: relDir, Depth: depth})
	}
	entries, err := os.ReadDir(absDir)
	if err != nil {
		return fmt.Errorf("optroot: %w", err)
	}
	var subs []string
	for _, e := range entries {
		if e.IsDir() && !parDirPattern.MatchString(e.Name()) {
			subs = append(subs, e.Name())
		}
	}
	sort.Strings(subs)
	for _, s := range subs {
		if err := collectPhases(filepath.Join(absDir, s), filepath.Join(relDir, s), depth+1, out); err != nil {
			return err
		}
	}
	return nil
}

func (r *Root) loadProperties() error {
	propRoot := filepath.Join(r.Dir, "properties")
	entries, err := os.ReadDir(propRoot)
	if err != nil {
		return fmt.Errorf("optroot: reading properties directory: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "prop") || !strings.HasSuffix(name, ".sh") {
			continue
		}
		base := strings.TrimSuffix(name, ".sh")
		spec := PropertySpec{
			Name:   base,
			Weight: 1,
			Script: filepath.Join(propRoot, name),
		}
		valData, err := os.ReadFile(filepath.Join(propRoot, base+".val"))
		if err != nil {
			return fmt.Errorf("optroot: property %s has no target (.val): %w", base, err)
		}
		spec.Target, err = firstFloat(string(valData))
		if err != nil {
			return fmt.Errorf("optroot: property %s target: %w", base, err)
		}
		if wData, err := os.ReadFile(filepath.Join(propRoot, base+".w")); err == nil {
			w, err := firstFloat(string(wData))
			if err != nil {
				return fmt.Errorf("optroot: property %s weight: %w", base, err)
			}
			if w <= 0 {
				return fmt.Errorf("optroot: property %s weight must be positive, got %v", base, w)
			}
			spec.Weight = w
		}
		r.Properties = append(r.Properties, spec)
	}
	if len(r.Properties) == 0 {
		return fmt.Errorf("optroot: no prop*.sh calculators under %s", propRoot)
	}
	sort.Slice(r.Properties, func(i, j int) bool { return r.Properties[i].Name < r.Properties[j].Name })
	return nil
}

func firstFloat(s string) (float64, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return 0, fmt.Errorf("no value found")
	}
	return strconv.ParseFloat(fields[0], 64)
}

// Processors returns the processor request for the job: one per run.sh, the
// sizing rule of section 4.2.
func (r *Root) Processors() int {
	n := 0
	for _, s := range r.Systems {
		n += len(s.Phases)
	}
	return n
}

// Dim returns the parameter-space dimension.
func (r *Root) Dim() int { return len(r.ParamNames) }

// Evaluation is the result of one cost-function evaluation.
type Evaluation struct {
	// Dir is the par<N> directory the simulations ran in.
	Dir string
	// Properties holds the calculated p_i, ordered like Root.Properties.
	Properties []float64
	// Cost is the eq 1.3 value.
	Cost float64
}

// Evaluate runs every system's phases for the given parameter values in a
// fresh par<N> directory, then runs the property calculators and assembles
// the eq 1.3 cost. Scripts receive the parameters both as environment
// variables (PARAM_<name>) and in a params.txt file, and run with their
// phase directory as the working directory.
func (r *Root) Evaluate(x []float64) (*Evaluation, error) {
	if len(x) != r.Dim() {
		return nil, fmt.Errorf("optroot: evaluate with %d values, want %d", len(x), r.Dim())
	}
	r.evalSeq++
	evalDir := filepath.Join(r.Dir, "systems", fmt.Sprintf("par%04d", r.evalSeq))
	if err := os.MkdirAll(evalDir, 0o755); err != nil {
		return nil, fmt.Errorf("optroot: %w", err)
	}

	env := append(os.Environ(), "OPTROOT="+r.Dir, "OPT_EVAL_DIR="+evalDir)
	if r.Seed != 0 {
		env = append(env, fmt.Sprintf("OPT_SEED=%d", r.Seed))
	}
	var params strings.Builder
	for i, name := range r.ParamNames {
		env = append(env, fmt.Sprintf("PARAM_%s=%g", name, x[i]))
		fmt.Fprintf(&params, "%s %g\n", name, x[i])
	}
	if err := os.WriteFile(filepath.Join(evalDir, "params.txt"), []byte(params.String()), 0o644); err != nil {
		return nil, fmt.Errorf("optroot: %w", err)
	}

	for _, sys := range r.Systems {
		src := filepath.Join(r.Dir, "systems", sys.Name)
		dst := filepath.Join(evalDir, sys.Name)
		if err := copyTree(src, dst); err != nil {
			return nil, fmt.Errorf("optroot: staging system %s: %w", sys.Name, err)
		}
		for _, ph := range sys.Phases {
			workDir := filepath.Join(dst, ph.RelDir)
			cmd := exec.Command("/bin/sh", "run.sh")
			cmd.Dir = workDir
			cmd.Env = env
			if out, err := cmd.CombinedOutput(); err != nil {
				return nil, fmt.Errorf("optroot: system %s phase %s: %w (output: %s)",
					sys.Name, ph.RelDir, err, strings.TrimSpace(string(out)))
			}
		}
	}

	ev := &Evaluation{Dir: evalDir}
	for _, spec := range r.Properties {
		cmd := exec.Command("/bin/sh", spec.Script)
		cmd.Dir = evalDir
		cmd.Env = env
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("optroot: property %s: %w", spec.Name, err)
		}
		p, err := firstFloat(string(out))
		if err != nil {
			return nil, fmt.Errorf("optroot: property %s output %q: %w", spec.Name, out, err)
		}
		ev.Properties = append(ev.Properties, p)
	}
	ev.Cost = r.cost(ev.Properties)
	return ev, nil
}

// cost evaluates eq 1.3 with inverse-tolerance weights.
func (r *Root) cost(props []float64) float64 {
	g := 0.0
	for i, spec := range r.Properties {
		scale := spec.Target
		if scale == 0 {
			scale = 1 // zero targets fall back to absolute residuals
		}
		rel := (props[i] - spec.Target) / scale
		g += rel * rel / (spec.Weight * spec.Weight)
	}
	return g
}

// copyTree recursively copies a directory, skipping reserved par* dirs.
func copyTree(src, dst string) error {
	return filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if parDirPattern.MatchString(d.Name()) && rel != "." {
				return filepath.SkipDir
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(filepath.Join(dst, rel))
		if err != nil {
			return err
		}
		defer out.Close()
		_, err = io.Copy(out, in)
		return err
	})
}
