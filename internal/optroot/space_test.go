package optroot

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
)

// buildQuadraticRoot creates an OPTROOT whose cost is minimized at
// (a, b) = (1.5, 2.5): two systems echo the parameters, two properties
// target those values.
func buildQuadraticRoot(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	write("input", strings.Join([]string{
		"a b",
		"0.0 0.0",
		"1.0 0.0",
		"0.0 1.0",
	}, "\n"))
	write("systems/sysA/run.sh", "echo $PARAM_a > outA\n")
	write("systems/sysB/run.sh", "echo $PARAM_b > outB\n")
	write("properties/prop1.sh", "cat sysA/outA\n")
	write("properties/prop1.val", "1.5\n")
	write("properties/prop2.sh", "cat sysB/outB\n")
	write("properties/prop2.val", "2.5\n")
	return dir
}

func TestSpaceImplementsSim(t *testing.T) {
	var _ sim.Space = (*Space)(nil)
}

func TestSpaceBasics(t *testing.T) {
	root, err := Load(buildQuadraticRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSpace(root)
	if sp.Dim() != 2 {
		t.Fatalf("Dim = %d", sp.Dim())
	}
	p := sp.NewPoint([]float64{1.5, 2.5})
	est := p.Estimate()
	if !math.IsInf(est.Sigma, 1) {
		t.Fatalf("unsampled sigma = %v, want +Inf", est.Sigma)
	}
	p.Sample(1)
	est = p.Estimate()
	if est.Mean != 0 {
		t.Fatalf("cost at the optimum = %v, want 0", est.Mean)
	}
	p.Sample(1)
	if got := p.Estimate(); got.Sigma != 0 {
		t.Fatalf("deterministic scripts: sigma = %v after two batches", got.Sigma)
	}
	if sp.Evaluations() != 2 {
		t.Fatalf("evaluations = %d", sp.Evaluations())
	}
	if sp.Err() != nil {
		t.Fatalf("unexpected error: %v", sp.Err())
	}
	p.Close()
}

func TestSpaceDimMismatchPanics(t *testing.T) {
	root, err := Load(buildQuadraticRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewSpace(root).NewPoint([]float64{1})
}

// Full pipeline: the DET simplex over real shell-script evaluations must
// drive the parameters to the property targets (the cmd/mwopt path).
func TestOptimizeOverScriptTree(t *testing.T) {
	root, err := Load(buildQuadraticRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSpace(root)
	cfg := core.DefaultConfig(core.DET)
	cfg.MaxIterations = 60
	cfg.Tol = 1e-10
	cfg.MaxWalltime = 0
	res, err := core.Optimize(sp, root.InitialSimplex, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Err() != nil {
		t.Fatalf("script failures: %v", sp.Err())
	}
	if math.Abs(res.BestX[0]-1.5) > 0.05 || math.Abs(res.BestX[1]-2.5) > 0.05 {
		t.Fatalf("best = %v, want ~(1.5, 2.5)", res.BestX)
	}
}

func TestSpaceSurvivesFailingScripts(t *testing.T) {
	dir := buildQuadraticRoot(t)
	// Break sysB: the space must report +Inf costs rather than abort.
	os.WriteFile(filepath.Join(dir, "systems", "sysB", "run.sh"), []byte("exit 1\n"), 0o755)
	root, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	sp := NewSpace(root)
	p := sp.NewPoint([]float64{1, 1})
	p.Sample(1)
	if est := p.Estimate(); !math.IsInf(est.Mean, 1) {
		t.Fatalf("failing script cost = %v, want +Inf", est.Mean)
	}
	if sp.Err() == nil {
		t.Fatal("script failure not recorded")
	}
}
