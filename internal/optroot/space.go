package optroot

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/sim"
	"repro/internal/vtime"
)

// Space adapts an $OPTROOT tree to the optimizer's sampling interface: each
// Sample(dt) runs one complete batch of simulations and property
// calculations for the point, and the point's estimate is the running mean
// of the batch costs, with the standard error of the mean as sigma. This is
// genuine repeated sampling — the noise decays as 1/sqrt(batches), matching
// eq 1.2 with "time" counted in batches.
type Space struct {
	root  *Root
	clock vtime.Clock

	mu    sync.Mutex
	evals int64
	err   error // first batch failure, surfaced via Err
}

// NewSpace wraps a loaded Root.
func NewSpace(root *Root) *Space { return &Space{root: root} }

// Dim implements sim.Space.
func (s *Space) Dim() int { return s.root.Dim() }

// Clock implements sim.Space.
func (s *Space) Clock() *vtime.Clock { return &s.clock }

// Evaluations implements sim.Space.
func (s *Space) Evaluations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evals
}

// Err returns the first script failure encountered during sampling, if any.
// Script failures surface as +Inf cost estimates so the simplex steers away
// from broken parameter regions instead of aborting the whole optimization.
func (s *Space) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// NewPoint implements sim.Space.
func (s *Space) NewPoint(x []float64) sim.Point {
	if len(x) != s.root.Dim() {
		panic(fmt.Sprintf("optroot: NewPoint dimension %d, want %d", len(x), s.root.Dim()))
	}
	return &rootPoint{space: s, x: append([]float64(nil), x...)}
}

// SampleAll implements sim.Space: one batch per point, wall clock advanced
// once (the batches would run concurrently on a cluster).
func (s *Space) SampleAll(points []sim.Point, dt float64) {
	if len(points) == 0 {
		return
	}
	for _, p := range points {
		rp, ok := p.(*rootPoint)
		if !ok {
			panic("optroot: SampleAll received a foreign Point")
		}
		rp.sampleOnce()
	}
	s.clock.Advance(dt)
}

type rootPoint struct {
	space *Space
	x     []float64

	n    int
	mean float64
	m2   float64
}

func (p *rootPoint) X() []float64 { return p.x }

func (p *rootPoint) sampleOnce() {
	ev, err := p.space.root.Evaluate(p.x)
	cost := math.Inf(1)
	if err != nil {
		p.space.mu.Lock()
		if p.space.err == nil {
			p.space.err = err
		}
		p.space.mu.Unlock()
	} else {
		cost = ev.Cost
	}
	p.n++
	d := cost - p.mean
	p.mean += d / float64(p.n)
	p.m2 += d * (cost - p.mean)

	p.space.mu.Lock()
	p.space.evals++
	p.space.mu.Unlock()
}

func (p *rootPoint) Estimate() sim.Estimate {
	if p.n == 0 {
		return sim.Estimate{Mean: math.NaN(), Sigma: math.Inf(1)}
	}
	sigma := 0.0
	if p.n >= 2 {
		sigma = math.Sqrt(p.m2/float64(p.n-1)) / math.Sqrt(float64(p.n))
	}
	return sim.Estimate{Mean: p.mean, Sigma: sigma, Time: float64(p.n)}
}

func (p *rootPoint) Sample(dt float64) {
	p.sampleOnce()
	p.space.clock.Advance(dt)
}

func (p *rootPoint) Close() {}
