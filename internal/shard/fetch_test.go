package shard

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestFetchShardFailoverRetry pins the mid-merge failover window: a shard
// that was serving when the merge snapshotted its targets but died (and was
// adopted) before its page was fetched must be retried once through the
// failover chain — and must NOT be double-counted when its adopter is
// already part of the same merge.
func TestFetchShardFailoverRetry(t *testing.T) {
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))
	defer alive.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Write([]byte(`{"ok":true}`))
	}))

	r, err := New(Config{
		Shards: []Shard{
			{Addr: dead.Listener.Addr().String()},
			{Addr: alive.Listener.Addr().String()},
		},
		// Slow probe: this test drives the state machine by hand.
		Probe:     time.Hour,
		DeadAfter: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// The merge snapshots its targets while both shards serve...
	targets := r.serving()
	if len(targets) != 2 {
		t.Fatalf("serving() = %v, want both shards", targets)
	}

	// ...then shard 0 dies and is adopted by shard 1 before it is fetched
	// (the probe loop would do exactly this on the next tick).
	dead.Close()
	r.mu.Lock()
	r.state[0].dead = true
	r.state[0].adopter = 1
	r.mu.Unlock()

	// The adopter is part of the same merge: retrying against it would
	// double-count its page, so the fetch reports degraded instead.
	var out struct {
		OK bool `json:"ok"`
	}
	if r.fetchShard(targets, 0, "/", &out) {
		t.Fatal("fetchShard retried into a shard already in the merge (double count)")
	}

	// A merge that does NOT already include the adopter (it snapshotted
	// only the dead shard) must recover through the chain and succeed.
	out.OK = false
	if !r.fetchShard([]int{0}, 0, "/", &out) {
		t.Fatal("fetchShard did not retry through the failover chain")
	}
	if !out.OK {
		t.Fatal("retried fetch did not fill the payload")
	}

	// A dead shard with no adopter is simply degraded.
	r.mu.Lock()
	r.state[0].adopter = -1
	r.mu.Unlock()
	if r.fetchShard([]int{0}, 0, "/", &out) {
		t.Fatal("fetchShard claimed success with the whole chain down")
	}
}
