package shard_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/testfunc"
)

// TestHashPinned pins the placement hash: it is a wire contract (every
// router replica must compute the same placement), so a change here is a
// breaking deployment change, not a refactor.
func TestHashPinned(t *testing.T) {
	cases := map[string]uint64{
		"":  14695981039346656037, // FNV-1a 64 offset basis
		"a": 12638187200555641996,
	}
	for id, want := range cases {
		if got := shard.Hash(id); got != want {
			t.Errorf("Hash(%q) = %d, want %d", id, got, want)
		}
	}
	// Pick must spread dense router IDs over both shards, and must be
	// stable run to run.
	counts := [2]int{}
	for i := 1; i <= 64; i++ {
		counts[shard.Pick(fmt.Sprintf("r%06d", i), 2)]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("dense IDs all hash to one shard: %v", counts)
	}
}

// testShard is one in-process optd replica: a jobs.Manager behind the real
// serve handler.
type testShard struct {
	mgr *jobs.Manager
	ts  *httptest.Server
}

func (s *testShard) addr() string { return strings.TrimPrefix(s.ts.URL, "http://") }

// newTestShard starts a replica. gate, when non-nil, is consulted by the
// "gate" objective: evaluation blocks until the channel closes.
func newTestShard(t *testing.T, cfg jobs.Config, gate <-chan struct{}) *testShard {
	t.Helper()
	if gate != nil {
		cfg.Objectives = map[string]func([]float64) float64{
			"gate": func(x []float64) float64 {
				<-gate
				return testfunc.Rosenbrock(x)
			},
		}
	}
	mgr, err := jobs.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(serve.New(serve.Config{Mgr: mgr, DefaultSeed: 1}))
	t.Cleanup(func() {
		ts.Close()
		mgr.Close()
	})
	return &testShard{mgr: mgr, ts: ts}
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode %s response: %v", url, err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func waitTerminal(t *testing.T, base, id string) map[string]any {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		var st map[string]any
		if code := getJSON(t, base+"/v1/jobs/"+id, &st); code == http.StatusOK {
			switch st["state"] {
			case "done", "failed", "canceled":
				return st
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return nil
}

func specBody(tenant string, seed int64) string {
	return fmt.Sprintf(`{"objective":"rosenbrock","dim":3,"algorithm":"pc","sigma0":50,"seed":%d,"tol":-1,"max_iterations":20,"tenant":%q}`, seed, tenant)
}

// TestRouterRouting: submissions spread by ID hash, job-scoped requests
// route to the right shard, lists and tenant accounting merge.
func TestRouterRouting(t *testing.T) {
	s0 := newTestShard(t, jobs.Config{MaxConcurrent: 2}, nil)
	s1 := newTestShard(t, jobs.Config{MaxConcurrent: 2}, nil)
	r, err := shard.New(shard.Config{
		Shards: []shard.Shard{{Addr: s0.addr()}, {Addr: s1.addr()}},
		Probe:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	rt := httptest.NewServer(r.Handler())
	t.Cleanup(rt.Close)

	tenants := []string{"acme", "globex"}
	ids := make([]string, 0, 8)
	for i := 0; i < 8; i++ {
		code, body := postJSON(t, rt.URL+"/v1/jobs", specBody(tenants[i%2], int64(i+1)))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d body %v", i, code, body)
		}
		ids = append(ids, body["id"].(string))
	}

	// Every job is visible and finishes through the router, and each lives
	// on exactly the shard its hash names.
	shards := []*testShard{s0, s1}
	spread := [2]int{}
	for _, id := range ids {
		if st := waitTerminal(t, rt.URL, id); st["state"] != "done" {
			t.Fatalf("job %s: %v", id, st)
		}
		home := shard.Pick(id, 2)
		spread[home]++
		if _, err := shards[home].mgr.Get(id); err != nil {
			t.Fatalf("job %s not on home shard %d: %v", id, home, err)
		}
		if _, err := shards[1-home].mgr.Get(id); err == nil {
			t.Fatalf("job %s present on both shards", id)
		}
		// The result is served through the router too.
		var res map[string]any
		if code := getJSON(t, rt.URL+"/v1/jobs/"+id+"/result", &res); code != http.StatusOK {
			t.Fatalf("result %s: code %d", id, code)
		}
	}
	if spread[0] == 0 || spread[1] == 0 {
		t.Fatalf("hash placed every job on one shard: %v", spread)
	}

	// Merged list: all 8 jobs, sorted by ID.
	var list []map[string]any
	if code := getJSON(t, rt.URL+"/v1/jobs", &list); code != http.StatusOK || len(list) != 8 {
		t.Fatalf("merged list: code %d len %d", code, len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1]["id"].(string) >= list[i]["id"].(string) {
			t.Fatalf("merged list not sorted: %v >= %v", list[i-1]["id"], list[i]["id"])
		}
	}

	// Merged tenants: both namespaces, 4 submissions each across shards.
	var tl struct {
		Tenants []jobs.TenantStats `json:"tenants"`
	}
	if code := getJSON(t, rt.URL+"/v1/tenants", &tl); code != http.StatusOK || len(tl.Tenants) != 2 {
		t.Fatalf("merged tenants: code %d %v", code, tl.Tenants)
	}
	for _, ts := range tl.Tenants {
		if ts.Submitted != 4 {
			t.Fatalf("tenant %s submitted = %d, want 4 (merged)", ts.Tenant, ts.Submitted)
		}
	}
}

// TestRouterFailover: kill one shard mid-load, watch the router declare it
// dead, fail its durable store over to the survivor, and serve the dead
// shard's jobs — resumed deterministically, results identical to a fresh
// reference run.
func TestRouterFailover(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }

	dir0, dir1 := t.TempDir(), t.TempDir()
	// Shard 0 has one runner, occupied by a gated blocker: every routed
	// job that lands there stays queued with a durable spec-only record.
	s0 := newTestShard(t, jobs.Config{MaxConcurrent: 1, CheckpointDir: dir0, StoreKind: "wal"}, gate)
	s1 := newTestShard(t, jobs.Config{MaxConcurrent: 4, CheckpointDir: dir1, StoreKind: "wal"}, gate)
	t.Cleanup(release) // LIFO: release the gate before the managers Close

	blocker := `{"objective":"gate","dim":3,"algorithm":"pc","sigma0":50,"seed":99,"tol":-1,"max_iterations":5}`
	if code, body := postJSON(t, s0.ts.URL+"/v1/jobs?id=blocker0", blocker); code != http.StatusAccepted {
		t.Fatalf("blocker: code %d body %v", code, body)
	}

	r, err := shard.New(shard.Config{
		Shards: []shard.Shard{
			{Addr: s0.addr(), Dir: dir0, Store: "wal"},
			{Addr: s1.addr(), Dir: dir1, Store: "wal"},
		},
		Probe:     20 * time.Millisecond,
		DeadAfter: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	rt := httptest.NewServer(r.Handler())
	t.Cleanup(rt.Close)

	// Load: shard-1 jobs complete; shard-0 jobs queue behind the blocker.
	var onDead []string
	var seeds = map[string]int64{}
	for i := 0; i < 10; i++ {
		seed := int64(100 + i)
		code, body := postJSON(t, rt.URL+"/v1/jobs", specBody("acme", seed))
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: code %d body %v", i, code, body)
		}
		id := body["id"].(string)
		seeds[id] = seed
		if shard.Pick(id, 2) == 0 {
			onDead = append(onDead, id)
		}
	}
	if len(onDead) == 0 {
		t.Fatal("no routed job hashed to shard 0; widen the load")
	}

	// Kill shard 0 (network death: its listener goes away, its queued
	// jobs' records stay in dir0).
	s0.ts.Close()

	// The router must declare it dead and hand its range to shard 1.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var health struct {
			Shards []shard.ShardStatus `json:"shards"`
		}
		getJSON(t, rt.URL+"/healthz", &health)
		if len(health.Shards) == 2 && health.Shards[0].Dead {
			if health.Shards[0].Adopter != 1 {
				t.Fatalf("adopter = %d, want 1", health.Shards[0].Adopter)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard 0 never declared dead: %+v", health.Shards)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every job that lived on shard 0 finishes through the router — on
	// shard 1, marked resumed, with results identical to a fresh run of
	// the same spec (placement moved; the computation did not change).
	for _, id := range onDead {
		st := waitTerminal(t, rt.URL, id)
		if st["state"] != "done" || st["resumed"] != true {
			t.Fatalf("adopted job %s: %v", id, st)
		}
		if _, err := s1.mgr.Get(id); err != nil {
			t.Fatalf("adopted job %s not on shard 1: %v", id, err)
		}
		ref := runReference(t, seeds[id])
		if got := st["best_g"].(float64); got != ref.BestG {
			t.Fatalf("job %s best_g = %v, want reference %v", id, got, ref.BestG)
		}
		if got := int(st["iterations"].(float64)); got != ref.Iterations {
			t.Fatalf("job %s iterations = %d, want reference %d", id, got, ref.Iterations)
		}
	}
	release()
}

// runReference runs the routed spec in a fresh standalone manager and
// returns its terminal status — the determinism baseline.
func runReference(t *testing.T, seed int64) jobs.Status {
	t.Helper()
	m, err := jobs.New(jobs.Config{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	id, err := m.Submit(jobs.Spec{
		Objective: "rosenbrock", Dim: 3, Algorithm: "pc", Sigma0: 50,
		Seed: seed, Tol: -1, MaxIterations: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(id); err != nil {
		t.Fatal(err)
	}
	st, err := m.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRouterAllDead: a router whose whole table is unreachable serves 503s.
func TestRouterAllDead(t *testing.T) {
	r, err := shard.New(shard.Config{
		Shards:    []shard.Shard{{Addr: "127.0.0.1:1"}},
		Probe:     10 * time.Millisecond,
		DeadAfter: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	rt := httptest.NewServer(r.Handler())
	t.Cleanup(rt.Close)

	deadline := time.Now().Add(5 * time.Second)
	for {
		var health struct {
			OK     bool                `json:"ok"`
			Shards []shard.ShardStatus `json:"shards"`
		}
		code := getJSON(t, rt.URL+"/healthz", &health)
		if code == http.StatusServiceUnavailable && len(health.Shards) == 1 && health.Shards[0].Dead {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("router never reported all-dead")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, body := postJSON(t, rt.URL+"/v1/jobs", specBody("", 1)); code != http.StatusServiceUnavailable {
		t.Fatalf("submit with all shards dead: code %d body %v", code, body)
	}
	if err := shardNewEmpty(); err == nil {
		t.Fatal("New with empty table succeeded")
	}
}

func shardNewEmpty() error {
	_, err := shard.New(shard.Config{})
	return err
}

// TestRouterDegradedMerge is the regression test for all-or-nothing merges:
// a shard dying between the router's health probe and the merge fetch must
// not blow away the healthy shards' answers. The router retries through the
// failover chain (none here — the shard just died), then returns the
// partial merge wrapped with a "degraded" field instead of a 502.
func TestRouterDegradedMerge(t *testing.T) {
	s0 := newTestShard(t, jobs.Config{MaxConcurrent: 2}, nil)
	s1 := newTestShard(t, jobs.Config{MaxConcurrent: 2}, nil)
	r, err := shard.New(shard.Config{
		Shards: []shard.Shard{{Addr: s0.addr()}, {Addr: s1.addr()}},
		// The probe never fires again after startup: the kill below lands
		// exactly in the probe-to-proxy window the bug lived in.
		Probe:     time.Hour,
		DeadAfter: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	rt := httptest.NewServer(r.Handler())
	t.Cleanup(rt.Close)

	// Two jobs per shard, submitted directly so the spread is fixed.
	for i := 0; i < 2; i++ {
		if code, body := postJSON(t, s0.ts.URL+"/v1/jobs", specBody("acme", int64(i+1))); code != http.StatusAccepted {
			t.Fatalf("s0 submit: code %d body %v", code, body)
		}
		if code, body := postJSON(t, s1.ts.URL+"/v1/jobs", specBody("acme", int64(i+10))); code != http.StatusAccepted {
			t.Fatalf("s1 submit: code %d body %v", code, body)
		}
	}

	// Healthy baseline: a plain merged array, no degradation wrapper.
	var whole []map[string]any
	if code := getJSON(t, rt.URL+"/v1/jobs", &whole); code != http.StatusOK || len(whole) != 4 {
		t.Fatalf("healthy merge: code %d len %d", code, len(whole))
	}

	// Kill shard 0 inside the probe window: the router still believes it
	// is serving.
	s0.ts.Close()

	var partial struct {
		Jobs     []map[string]any `json:"jobs"`
		Degraded []string         `json:"degraded"`
	}
	if code := getJSON(t, rt.URL+"/v1/jobs", &partial); code != http.StatusOK {
		t.Fatalf("degraded merge: code %d, want 200 with partial results", code)
	}
	if len(partial.Jobs) != 2 {
		t.Fatalf("degraded merge returned %d jobs, want shard 1's 2", len(partial.Jobs))
	}
	if len(partial.Degraded) != 1 || partial.Degraded[0] != s0.addr() {
		t.Fatalf("degraded field = %v, want [%s]", partial.Degraded, s0.addr())
	}

	// The tenants merge degrades the same way: shard 1's accounting
	// survives, the dead shard is reported.
	var tl struct {
		Tenants  []jobs.TenantStats `json:"tenants"`
		Degraded []string           `json:"degraded"`
	}
	if code := getJSON(t, rt.URL+"/v1/tenants", &tl); code != http.StatusOK {
		t.Fatalf("degraded tenants: code %d", code)
	}
	if len(tl.Tenants) != 1 || tl.Tenants[0].Submitted != 2 {
		t.Fatalf("degraded tenants merge: %+v", tl.Tenants)
	}
	if len(tl.Degraded) != 1 || tl.Degraded[0] != s0.addr() {
		t.Fatalf("tenants degraded field = %v, want [%s]", tl.Degraded, s0.addr())
	}
}
