// Package shard is the multi-tenant serving router: it spreads jobs across
// N optd replicas ("shards") by a deterministic hash of the job ID, proxies
// the optd REST surface, health-checks the shards, and drives coordinator
// failover — when a shard dies, a surviving shard adopts its durable job
// store via POST /v1/failover and the router re-targets that shard's hash
// range at the adopter. Placement is a pure function of the job ID and the
// (fixed) shard table, so any router replica computes the same placement
// without shared state.
package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Hash is 64-bit FNV-1a over the job ID — the placement function. It is
// part of the wire contract: every router replica (and any client that
// wants to predict placement) must agree on it.
func Hash(id string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// Pick maps a job ID to its home shard index in a table of n shards.
func Pick(id string, n int) int {
	return int(Hash(id) % uint64(n))
}

// Shard describes one optd replica in the table.
type Shard struct {
	// Addr is the replica's HTTP address ("host:port").
	Addr string
	// Dir is the replica's durable store directory, readable by the
	// surviving replicas (shared or replicated storage). Empty disables
	// failover for this shard: its jobs die with it.
	Dir string
	// Store is the store kind in Dir: "file" (default) or "wal".
	Store string
}

// Config configures a Router.
type Config struct {
	// Shards is the fixed shard table. Placement hashes into this table,
	// so its length and order are part of the deployment's identity.
	Shards []Shard
	// Probe is the health-check cadence (default 250ms).
	Probe time.Duration
	// DeadAfter is how long a shard must stay unreachable before the
	// router declares it dead and fails its jobs over (default 2s).
	DeadAfter time.Duration
	// IDPrefix namespaces router-assigned job IDs (default "r"). Routers
	// sharing shards must use distinct prefixes.
	IDPrefix string
	// Client issues proxy and probe requests; nil uses a default with a
	// per-request timeout left to the caller's context.
	Client *http.Client
	// Events, when non-nil, receives shard lifecycle events.
	Events *obs.Logger
}

// shardState is one shard's health ledger.
type shardState struct {
	alive   bool      // guarded by mu: last probe succeeded
	lastOK  time.Time // guarded by mu: last successful probe (or router start)
	dead    bool      // guarded by mu: declared dead; never revived (its store moved)
	adopter int       // guarded by mu: shard that inherited this shard's range
	adopted bool      // guarded by mu: the failover POST landed
}

// Router proxies the optd surface over a shard table.
type Router struct {
	cfg    Config
	client *http.Client

	mu    sync.Mutex
	state []shardState // guarded by mu

	seq  atomic.Uint64 // router-assigned job ID counter
	done chan struct{}
	wg   sync.WaitGroup

	mAlive    *obs.Gauge
	mFailover *obs.Counter
	mProxyErr *obs.Counter
}

// New builds a Router over the shard table and starts its health prober.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("shard: empty shard table")
	}
	if cfg.Probe <= 0 {
		cfg.Probe = 250 * time.Millisecond
	}
	if cfg.DeadAfter <= 0 {
		cfg.DeadAfter = 2 * time.Second
	}
	if cfg.IDPrefix == "" {
		cfg.IDPrefix = "r"
	}
	now := time.Now()
	state := make([]shardState, len(cfg.Shards))
	for i := range state {
		// Optimistic start: a shard gets DeadAfter to answer its first
		// probe before it can be declared dead.
		state[i] = shardState{alive: true, lastOK: now, adopter: -1}
	}
	r := &Router{
		cfg:       cfg,
		client:    cfg.Client,
		state:     state,
		done:      make(chan struct{}),
		mAlive:    obs.Default().Gauge("shard_alive"),
		mFailover: obs.Default().Counter("shard_failover_total"),
		mProxyErr: obs.Default().Counter("shard_proxy_error_total"),
	}
	if r.client == nil {
		r.client = &http.Client{}
	}
	r.probeAll() // synchronous first sweep so Handler starts with real state
	r.wg.Add(1)
	go r.probeLoop()
	return r, nil
}

// Close stops the prober.
func (r *Router) Close() {
	close(r.done)
	r.wg.Wait()
}

func (r *Router) probeLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.Probe)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.probeAll()
		}
	}
}

// probeAll health-checks every live shard and runs the failover state
// machine for the ones that crossed DeadAfter.
func (r *Router) probeAll() {
	for i := range r.cfg.Shards {
		r.mu.Lock()
		skip := r.state[i].dead && r.state[i].adopted
		r.mu.Unlock()
		if skip {
			continue
		}
		ok := r.probe(i)
		r.update(i, ok)
	}
	r.mu.Lock()
	alive := 0
	for i := range r.state {
		if r.state[i].alive && !r.state[i].dead {
			alive++
		}
	}
	r.mu.Unlock()
	r.mAlive.Set(float64(alive))
}

// probe is one GET /healthz against shard i.
func (r *Router) probe(i int) bool {
	req, err := http.NewRequest(http.MethodGet, "http://"+r.cfg.Shards[i].Addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// update folds one probe result into the state machine. A shard that has
// been unreachable for DeadAfter is declared dead: the next alive shard
// (scanning up from its index) inherits its hash range, and — if the dead
// shard had a durable store — adopts its jobs via /v1/failover. Adoption
// retries on every probe tick until it lands; routing retargets
// immediately so lookups go to the adopter even while its recovery is in
// flight.
func (r *Router) update(i int, ok bool) {
	now := time.Now()
	r.mu.Lock()
	st := &r.state[i]
	if ok && !st.dead {
		st.alive = true
		st.lastOK = now
		r.mu.Unlock()
		return
	}
	st.alive = st.alive && ok
	if !st.dead && now.Sub(st.lastOK) >= r.cfg.DeadAfter {
		st.dead = true
		st.adopter = r.nextAliveLocked(i)
		st.adopted = st.adopter < 0 || r.cfg.Shards[i].Dir == "" // nothing to adopt
		r.mu.Unlock()
		r.cfg.Events.Event("shard_dead", "shard", i, "addr", r.cfg.Shards[i].Addr, "adopter", st.adopter)
		r.mFailover.Inc()
	} else {
		r.mu.Unlock()
	}
	r.mu.Lock()
	needAdopt := st.dead && !st.adopted
	adopter := st.adopter
	r.mu.Unlock()
	if needAdopt {
		r.adopt(i, adopter)
	}
}

// nextAliveLocked finds the shard that inherits i's range: the first
// non-dead shard scanning up from i+1. -1 when every shard is dead.
func (r *Router) nextAliveLocked(i int) int {
	for off := 1; off < len(r.state); off++ {
		j := (i + off) % len(r.state)
		if !r.state[j].dead {
			return j
		}
	}
	return -1
}

// adopt asks shard `to` to recover shard `from`'s durable store.
func (r *Router) adopt(from, to int) {
	body, _ := json.Marshal(map[string]string{
		"dir":   r.cfg.Shards[from].Dir,
		"store": r.cfg.Shards[from].Store,
	})
	resp, err := r.client.Post("http://"+r.cfg.Shards[to].Addr+"/v1/failover", "application/json", strings.NewReader(string(body)))
	if err != nil {
		r.cfg.Events.Event("shard_adopt_error", "from", from, "to", to, "err", err)
		return
	}
	out, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.cfg.Events.Event("shard_adopt_error", "from", from, "to", to, "code", resp.StatusCode, "body", string(out))
		return
	}
	r.mu.Lock()
	r.state[from].adopted = true
	r.mu.Unlock()
	r.cfg.Events.Event("shard_adopt", "from", from, "to", to, "resp", string(out))
}

// resolve maps a home shard index to the shard currently serving its hash
// range, chasing failover redirects. -1 when the whole chain is dead.
func (r *Router) resolve(i int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	for hops := 0; hops <= len(r.state); hops++ {
		if !r.state[i].dead {
			return i
		}
		if r.state[i].adopter < 0 {
			return -1
		}
		i = r.state[i].adopter
	}
	return -1
}

// Place reports the shard index currently serving id — the placement
// function composed with the failover redirect chain.
func (r *Router) Place(id string) int {
	return r.resolve(Pick(id, len(r.cfg.Shards)))
}

// NextID mints a router-assigned job ID. IDs are dense (<prefix><seq>) and
// their shard placement is fixed at mint time by Hash.
func (r *Router) NextID() string {
	return fmt.Sprintf("%s%06d", r.cfg.IDPrefix, r.seq.Add(1))
}

// ShardStatus is one row of the router's /healthz shard table.
type ShardStatus struct {
	Addr    string `json:"addr"`
	Alive   bool   `json:"alive"`
	Dead    bool   `json:"dead"`
	Adopter int    `json:"adopter,omitempty"`
}

// Status snapshots the shard table.
func (r *Router) Status() []ShardStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ShardStatus, len(r.state))
	for i := range r.state {
		out[i] = ShardStatus{
			Addr:    r.cfg.Shards[i].Addr,
			Alive:   r.state[i].alive && !r.state[i].dead,
			Dead:    r.state[i].dead,
			Adopter: r.state[i].adopter,
		}
	}
	return out
}

// Handler builds the router's HTTP surface: the optd REST API, proxied.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", r.health)
	mux.HandleFunc("GET /strategies", r.anyAlive)
	mux.HandleFunc("POST /v1/jobs", r.submit)
	mux.HandleFunc("GET /v1/jobs", r.list)
	mux.HandleFunc("GET /v1/jobs/{id}", r.byID)
	mux.HandleFunc("GET /v1/jobs/{id}/result", r.byID)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", r.byID)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", r.byID)
	mux.HandleFunc("DELETE /v1/jobs/{id}", r.byID)
	mux.HandleFunc("GET /v1/tenants", r.tenants)
	mux.HandleFunc("POST /v1/tenants/{tenant}/jobs", r.submit)
	mux.HandleFunc("GET /v1/tenants/{tenant}/jobs", r.list)
	obs.Default().RegisterDebug(mux)
	mux.HandleFunc("/healthz", serve.MethodNotAllowed("GET"))
	mux.HandleFunc("/strategies", serve.MethodNotAllowed("GET"))
	mux.HandleFunc("/v1/jobs", serve.MethodNotAllowed("GET", "POST"))
	mux.HandleFunc("/v1/jobs/{id}", serve.MethodNotAllowed("GET", "DELETE"))
	mux.HandleFunc("/v1/jobs/{id}/result", serve.MethodNotAllowed("GET"))
	mux.HandleFunc("/v1/jobs/{id}/trace", serve.MethodNotAllowed("GET"))
	mux.HandleFunc("/v1/jobs/{id}/cancel", serve.MethodNotAllowed("POST"))
	mux.HandleFunc("/v1/tenants", serve.MethodNotAllowed("GET"))
	mux.HandleFunc("/v1/tenants/{tenant}/jobs", serve.MethodNotAllowed("GET", "POST"))
	mux.HandleFunc("/metrics", serve.MethodNotAllowed("GET"))
	return mux
}

func (r *Router) health(w http.ResponseWriter, req *http.Request) {
	shards := r.Status()
	ok := false
	for _, s := range shards {
		if s.Alive {
			ok = true
			break
		}
	}
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	serve.WriteJSON(w, code, map[string]any{"ok": ok, "role": "router", "shards": shards})
}

// anyAlive proxies the request verbatim to the first alive shard — for
// endpoints whose answer is shard-independent (/strategies).
func (r *Router) anyAlive(w http.ResponseWriter, req *http.Request) {
	for i := range r.cfg.Shards {
		r.mu.Lock()
		up := r.state[i].alive && !r.state[i].dead
		r.mu.Unlock()
		if up {
			r.proxy(w, req, i, req.URL.RequestURI())
			return
		}
	}
	serve.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no alive shards"})
}

// submit mints the job ID, hashes it to its home shard and forwards the
// spec there via ?id= — so the placement of every job the router admits is
// reconstructible from the ID alone.
func (r *Router) submit(w http.ResponseWriter, req *http.Request) {
	id := r.NextID()
	target := r.Place(id)
	if target < 0 {
		serve.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no alive shards"})
		return
	}
	path := "/v1/jobs"
	if tenant := req.PathValue("tenant"); tenant != "" {
		path = "/v1/tenants/" + tenant + "/jobs"
	}
	r.proxy(w, req, target, path+"?id="+id)
}

// byID routes a job-scoped request to the shard serving the ID's range.
// IDs the router did not mint (direct shard submissions) still route
// correctly: placement is the hash, not the mint.
func (r *Router) byID(w http.ResponseWriter, req *http.Request) {
	target := r.Place(req.PathValue("id"))
	if target < 0 {
		serve.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no alive shards"})
		return
	}
	r.proxy(w, req, target, req.URL.RequestURI())
}

// fetchShard fetches path from shard i into out for a cross-shard merge,
// chasing the failover chain once if the shard errors mid-merge: a shard
// can die between serving() and the fetch, and the healthy shards' answers
// must not be thrown away because of it. It reports whether out was filled.
// When the failover chain lands on a shard already in targets (its adopter
// is part of the same merge), the fetch is not repeated — the adopter's own
// page covers (or will cover, once adoption lands) the dead shard's jobs.
func (r *Router) fetchShard(targets []int, i int, path string, out any) bool {
	if r.getJSON(i, path, out) == nil {
		return true
	}
	j := r.resolve(i)
	if j < 0 || j == i {
		return false
	}
	for _, t := range targets {
		if t == j {
			return false
		}
	}
	return r.getJSON(j, path, out) == nil
}

// list merges the job lists of every serving shard, sorted by ID. If a
// shard dies mid-merge and its failover chain cannot answer either, the
// healthy shards' merge is still returned, wrapped with a "degraded" field
// naming the unreachable shards — partial answers beat a blanket 502.
func (r *Router) list(w http.ResponseWriter, req *http.Request) {
	var merged []jobs.Status
	var degraded []string
	targets := r.serving()
	for _, i := range targets {
		var page []jobs.Status
		if !r.fetchShard(targets, i, req.URL.RequestURI(), &page) {
			degraded = append(degraded, r.cfg.Shards[i].Addr)
			continue
		}
		merged = append(merged, page...)
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a].ID < merged[b].ID })
	if merged == nil {
		merged = []jobs.Status{}
	}
	if len(degraded) > 0 {
		serve.WriteJSON(w, http.StatusOK, map[string]any{"jobs": merged, "degraded": degraded})
		return
	}
	serve.WriteJSON(w, http.StatusOK, merged)
}

// tenants merges per-tenant accounting across shards: counters sum; the
// quota shown is the first shard's (the fleet is deployed homogeneous).
// Like list, a shard unreachable through its failover chain degrades the
// merge (reported in "degraded") instead of failing it.
func (r *Router) tenants(w http.ResponseWriter, req *http.Request) {
	sum := map[string]*jobs.TenantStats{}
	var degraded []string
	targets := r.serving()
	for _, i := range targets {
		var page struct {
			Tenants []jobs.TenantStats `json:"tenants"`
		}
		if !r.fetchShard(targets, i, "/v1/tenants", &page) {
			degraded = append(degraded, r.cfg.Shards[i].Addr)
			continue
		}
		for _, ts := range page.Tenants {
			acc, ok := sum[ts.Tenant]
			if !ok {
				c := ts
				sum[ts.Tenant] = &c
				continue
			}
			acc.Queued += ts.Queued
			acc.Running += ts.Running
			acc.Submitted += ts.Submitted
			acc.Rejected += ts.Rejected
		}
	}
	names := make([]string, 0, len(sum))
	for name := range sum {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]jobs.TenantStats, 0, len(names))
	for _, name := range names {
		out = append(out, *sum[name])
	}
	if len(degraded) > 0 {
		serve.WriteJSON(w, http.StatusOK, map[string]any{"tenants": out, "degraded": degraded})
		return
	}
	serve.WriteJSON(w, http.StatusOK, map[string]any{"tenants": out})
}

// serving lists the shard indexes currently serving a hash range (alive,
// not failed over).
func (r *Router) serving() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for i := range r.state {
		if !r.state[i].dead {
			out = append(out, i)
		}
	}
	return out
}

// getJSON is a GET against shard i decoded into out.
func (r *Router) getJSON(i int, path string, out any) error {
	resp, err := r.client.Get("http://" + r.cfg.Shards[i].Addr + path)
	if err != nil {
		r.mProxyErr.Inc()
		return fmt.Errorf("shard %d (%s): %w", i, r.cfg.Shards[i].Addr, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.mProxyErr.Inc()
		return fmt.Errorf("shard %d (%s): HTTP %d", i, r.cfg.Shards[i].Addr, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// proxy re-issues the request against shard i at path (which carries the
// query) and streams the response back, flushing per chunk so NDJSON
// traces pass through live.
func (r *Router) proxy(w http.ResponseWriter, req *http.Request, i int, path string) {
	out, err := http.NewRequestWithContext(req.Context(), req.Method, "http://"+r.cfg.Shards[i].Addr+path, req.Body)
	if err != nil {
		serve.WriteJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := r.client.Do(out)
	if err != nil {
		r.mProxyErr.Inc()
		serve.WriteJSON(w, http.StatusBadGateway, map[string]string{"error": fmt.Sprintf("shard %d (%s): %v", i, r.cfg.Shards[i].Addr, err)})
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
	}
}
