package mw

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/testfunc"
)

// BenchmarkTaskRoundTrip measures the full MW dispatch cost: submit, pack,
// execute on a worker, pack result, collect.
func BenchmarkTaskRoundTrip(b *testing.B) {
	d, err := NewDriver(Config{
		Workers:   4,
		NewTask:   func() Task { return &echoTask{} },
		NewWorker: func(rank int) Worker { return &echoWorker{} },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Shutdown()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := d.Submit(&echoTask{In: float64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := p.Wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVertexPipelineSample measures one sampling op through the whole
// two-level stack: worker -> conduit -> server -> client -> back.
func BenchmarkVertexPipelineSample(b *testing.B) {
	vw, err := NewVertexWorker(VertexWorkerConfig{
		Ns: 1,
		NewSystem: func(sys int) SystemEvaluator {
			return &FuncSystem{
				F:      testfunc.Rosenbrock,
				Sigma0: func([]float64) float64 { return 1 },
				Rng:    rand.New(rand.NewSource(1)),
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer vw.Close()
	if err := vw.Execute(NewStartOp([]float64{1, 2, 3})); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := vw.Execute(NewSampleOp(0.1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpaceSampleAll measures a full-deployment concurrent sampling
// round across d+3 workers.
func BenchmarkSpaceSampleAll(b *testing.B) {
	const d = 8
	sp, err := NewSpace(SpaceConfig{
		Dim: d,
		Ns:  1,
		NewSystem: func(rank, sys int) SystemEvaluator {
			return &FuncSystem{
				F:      testfunc.Rosenbrock,
				Sigma0: func([]float64) float64 { return 1 },
				Rng:    rand.New(rand.NewSource(int64(rank))),
			}
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sp.Shutdown()
	pts := make([]sim.Point, d+1)
	x := make([]float64, d)
	for i := range pts {
		x[0] = float64(i)
		pts[i] = sp.NewPoint(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.SampleAll(pts, 0.1)
	}
}
