package mw

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseMachinefile(t *testing.T) {
	in := "node001\nnode001\n# comment\n\nnode002\n"
	m, err := ParseMachinefile(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", m.Len())
	}
}

func TestParseEmptyMachinefile(t *testing.T) {
	if _, err := ParseMachinefile(strings.NewReader("# nothing\n")); err == nil {
		t.Fatal("empty machinefile accepted")
	}
}

func TestGenerateMachinefile(t *testing.T) {
	m := GenerateMachinefile(3, 8)
	if m.Len() != 24 {
		t.Fatalf("Len = %d, want 24", m.Len())
	}
	if m.entries[0] != "node000" || m.entries[8] != "node001" {
		t.Fatalf("node layout wrong: %v, %v", m.entries[0], m.entries[8])
	}
}

func TestAllocateMatchesTable33(t *testing.T) {
	// The d=20/50/100, Ns=1 deployments must consume exactly the Table 3.3
	// totals.
	for _, c := range []struct{ d, want int }{{20, 70}, {50, 160}, {100, 310}} {
		m := GenerateMachinefile(c.want/8+1, 8)
		a, err := m.Allocate(c.d, 1)
		if err != nil {
			t.Fatal(err)
		}
		if a.Total() != c.want {
			t.Errorf("d=%d: allocated %d, want %d", c.d, a.Total(), c.want)
		}
	}
}

func TestAllocateInOrder(t *testing.T) {
	// Section 4.2: master first, then workers, then each worker's
	// client-server job from the next available slots.
	m := GenerateMachinefile(20, 8)
	a, err := m.Allocate(2, 2) // 1 master, 5 workers, 5 servers, 10 clients
	if err != nil {
		t.Fatal(err)
	}
	if a.Master != "node000" {
		t.Fatalf("master on %s", a.Master)
	}
	// Workers occupy slots 1..5 (node000 has 8 slots: indices 0..7).
	if a.Workers[0] != "node000" || a.Workers[4] != "node000" {
		t.Fatalf("workers = %v", a.Workers)
	}
	// Server of worker 1 takes slot 6; clients slots 7, 8 (8 = node001).
	if a.Servers[0] != "node000" {
		t.Fatalf("server[0] on %s", a.Servers[0])
	}
	if a.Clients[0][0] != "node000" || a.Clients[0][1] != "node001" {
		t.Fatalf("clients[0] = %v", a.Clients[0])
	}
}

func TestAllocateExhaustion(t *testing.T) {
	m := GenerateMachinefile(1, 8)
	if _, err := m.Allocate(20, 1); err == nil {
		t.Fatal("oversubscription accepted")
	}
	if _, err := m.Allocate(0, 1); err == nil {
		t.Fatal("d=0 accepted")
	}
}

func TestWorkerSlotsStableForRestart(t *testing.T) {
	m := GenerateMachinefile(10, 8)
	a, err := m.Allocate(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := a.WorkerSlots(2)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := a.WorkerSlots(2)
	if len(s1) != 1+1+2 {
		t.Fatalf("worker slots = %v", s1)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatal("restart slots not stable")
		}
	}
	if _, err := a.WorkerSlots(99); err == nil {
		t.Fatal("bad rank accepted")
	}
}

// Property: for any feasible (d, ns), the allocation is exactly the formula
// size, every slot is used at most once overall, and node usage sums match.
func TestAllocationConservationProperty(t *testing.T) {
	f := func(dRaw, nsRaw uint8) bool {
		d := int(dRaw%20) + 1
		ns := int(nsRaw%4) + 1
		need := ExpectedProcesses(d, ns)
		m := GenerateMachinefile(need/4+1, 4)
		a, err := m.Allocate(d, ns)
		if err != nil {
			return false
		}
		if a.Total() != need {
			return false
		}
		total := 0
		for _, n := range a.NodeUsage() {
			total += n
		}
		return total == need
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
