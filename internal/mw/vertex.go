package mw

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"

	"repro/internal/fileio"
	"repro/internal/mpi"
	"repro/internal/noise"
)

// SystemEvaluator is one simulation system running on a client process (the
// bottom level of Figure 3.2). Each of the Ns clients under a vertex server
// owns one SystemEvaluator; for molecular applications a system is a
// configuration plus simulation protocol, for the test functions it is a
// direct noisy evaluation.
type SystemEvaluator interface {
	// Start begins an evaluation at parameter point x, discarding any state
	// from the previous point.
	Start(x []float64)
	// Sample accrues dt more virtual seconds of sampling.
	Sample(dt float64)
	// Report returns the current running estimate: mean, its variance, and
	// the accumulated sampling time.
	Report() (mean, variance, t float64)
	// Stop ends the current evaluation (the master "has the ability to
	// direct a cessation of work at one point in parameter space").
	Stop()
}

// FuncSystem adapts a deterministic function plus the eq 1.2 noise model to
// the SystemEvaluator interface; it is the client-side evaluator for the
// Rosenbrock/Powell studies.
type FuncSystem struct {
	// F is the underlying deterministic objective.
	F func(x []float64) float64
	// Sigma0 maps a point to its inherent noise strength; nil = noiseless.
	Sigma0 func(x []float64) float64
	// Rng is the client's private noise stream.
	Rng *rand.Rand

	acc *noise.Accumulator
}

// Start implements SystemEvaluator.
func (s *FuncSystem) Start(x []float64) {
	sigma0 := 0.0
	if s.Sigma0 != nil {
		sigma0 = s.Sigma0(x)
	}
	s.acc = noise.NewAccumulator(s.F(x), sigma0)
}

// Sample implements SystemEvaluator.
func (s *FuncSystem) Sample(dt float64) {
	if s.acc == nil {
		panic("mw: FuncSystem.Sample before Start")
	}
	s.acc.Sample(dt, s.Rng)
}

// Report implements SystemEvaluator.
func (s *FuncSystem) Report() (float64, float64, float64) {
	if s.acc == nil {
		panic("mw: FuncSystem.Report before Start")
	}
	sg := s.acc.Sigma()
	return s.acc.Mean(), sg * sg, s.acc.Time()
}

// Stop implements SystemEvaluator.
func (s *FuncSystem) Stop() { s.acc = nil }

// Vertex pipeline op codes, spoken over the worker-server conduit and the
// server-client MPI world.
const (
	opStart = iota + 1
	opSample
	opStop
)

// Server-client message tags in the child world.
const (
	ctagCmd = iota + 1
	ctagReply
)

// ProcessCounts tracks the live simulated processes of a deployment,
// reproducing the accounting of Table 3.3.
type ProcessCounts struct {
	Masters atomic.Int64
	Workers atomic.Int64
	Servers atomic.Int64
	Clients atomic.Int64
}

// Total returns the current total process count.
func (p *ProcessCounts) Total() int64 {
	return p.Masters.Load() + p.Workers.Load() + p.Servers.Load() + p.Clients.Load()
}

// ExpectedProcesses evaluates the paper's formula for a d-dimensional
// optimization with Ns simulations per vertex: 1 master, d+3 workers, d+3
// servers and (d+3)*Ns clients, totalling d*Ns + 3*Ns + 2d + 7 (section 3.1).
func ExpectedProcesses(d, ns int) int {
	return d*ns + 3*ns + 2*d + 7
}

// VertexWorkerConfig configures the vertex-level deployment under one worker.
type VertexWorkerConfig struct {
	// Ns is the number of simulation clients under the vertex server.
	Ns int
	// NewSystem builds the evaluator for client sys (0-based) of this
	// worker; called on the client "process".
	NewSystem func(sys int) SystemEvaluator
	// SpoolDir, if non-empty, makes the worker-server conduit file-backed
	// (the paper's actual transport); otherwise an in-memory pair is used.
	SpoolDir string
	// Counts, if non-nil, receives process accounting.
	Counts *ProcessCounts
}

// VertexWorker is the level-2 deployment beneath one MW worker: the worker
// forwards ops over a file conduit to its server, which fans them out to Ns
// clients over a private MPI world and aggregates their reports (Figure 3.2).
type VertexWorker struct {
	cfg     VertexWorkerConfig
	toSrv   fileio.Conduit
	srvSide fileio.Conduit
	child   *mpi.World
}

// NewVertexWorker launches the server and client processes for one vertex.
func NewVertexWorker(cfg VertexWorkerConfig) (*VertexWorker, error) {
	if cfg.Ns < 1 {
		return nil, errors.New("mw: VertexWorkerConfig.Ns must be >= 1")
	}
	if cfg.NewSystem == nil {
		return nil, errors.New("mw: VertexWorkerConfig.NewSystem is required")
	}
	v := &VertexWorker{cfg: cfg}
	if cfg.SpoolDir != "" {
		a, b, err := fileio.NewFilePair(fileio.FilePairConfig{Dir: cfg.SpoolDir})
		if err != nil {
			return nil, err
		}
		v.toSrv, v.srvSide = a, b
	} else {
		v.toSrv, v.srvSide = fileio.NewMemPair()
	}
	v.child = mpi.NewWorld(cfg.Ns + 1)

	if cfg.Counts != nil {
		cfg.Counts.Workers.Add(1)
		cfg.Counts.Servers.Add(1)
		cfg.Counts.Clients.Add(int64(cfg.Ns))
	}
	for sys := 0; sys < cfg.Ns; sys++ {
		go v.clientLoop(sys)
	}
	go v.serverLoop()
	return v, nil
}

// clientLoop is one simulation client: it owns a SystemEvaluator and answers
// its server's commands.
func (v *VertexWorker) clientLoop(sys int) {
	comm := v.child.Comm(sys + 1)
	eval := v.cfg.NewSystem(sys)
	started := false
	for {
		msg, err := comm.Recv(0, ctagCmd)
		if err != nil {
			if started {
				eval.Stop()
			}
			return
		}
		op, err := msg.Buf.UnpackInt()
		if err != nil {
			continue
		}
		reply := mpi.NewBuffer()
		switch op {
		case opStart:
			x, err := msg.Buf.UnpackFloats()
			if err != nil {
				continue
			}
			eval.Start(x)
			started = true
			reply.PackInt(opStart)
		case opSample:
			dt, err := msg.Buf.UnpackFloat()
			if err != nil {
				continue
			}
			eval.Sample(dt)
			mean, variance, t := eval.Report()
			reply.PackInt(opSample)
			reply.PackFloat(mean)
			reply.PackFloat(variance)
			reply.PackFloat(t)
		case opStop:
			if started {
				eval.Stop()
				started = false
			}
			reply.PackInt(opStop)
		}
		_ = comm.Send(0, ctagReply, reply)
	}
}

// serverLoop relays ops from the worker conduit to the clients and aggregates
// replies: the vertex estimate is the mean of the client means, with variance
// (1/Ns^2) * sum of client variances (independent systems).
func (v *VertexWorker) serverLoop() {
	comm := v.child.Comm(0)
	ns := v.cfg.Ns
	for {
		data, err := v.srvSide.Recv()
		if err != nil {
			return
		}
		req := mpi.NewBufferFrom(data)
		op, err := req.UnpackInt()
		if err != nil {
			continue
		}
		// Fan the command out to every client.
		for c := 1; c <= ns; c++ {
			fwd := mpi.NewBuffer()
			fwd.PackInt(op)
			switch op {
			case opStart:
				req.Rewind()
				req.UnpackInt() // skip op
				x, _ := req.UnpackFloats()
				fwd.PackFloats(x)
			case opSample:
				req.Rewind()
				req.UnpackInt()
				dt, _ := req.UnpackFloat()
				fwd.PackFloat(dt)
			}
			if err := comm.Send(c, ctagCmd, fwd); err != nil {
				return
			}
		}
		// Gather replies and aggregate.
		var meanSum, varSum, tMin float64
		tMin = -1
		ok := true
		for c := 1; c <= ns; c++ {
			msg, err := comm.Recv(mpi.AnySource, ctagReply)
			if err != nil {
				return
			}
			rop, _ := msg.Buf.UnpackInt()
			if rop == opSample {
				m, _ := msg.Buf.UnpackFloat()
				s2, _ := msg.Buf.UnpackFloat()
				t, _ := msg.Buf.UnpackFloat()
				meanSum += m
				varSum += s2
				if tMin < 0 || t < tMin {
					tMin = t
				}
			} else if rop != op {
				ok = false
			}
		}
		resp := mpi.NewBuffer()
		resp.PackBool(ok)
		if op == opSample {
			nsF := float64(ns)
			resp.PackFloat(meanSum / nsF)
			resp.PackFloat(varSum / (nsF * nsF))
			resp.PackFloat(tMin)
		}
		if err := v.toSrvReply(resp); err != nil {
			return
		}
	}
}

func (v *VertexWorker) toSrvReply(b *mpi.Buffer) error {
	return v.srvSide.Send(b.Bytes())
}

// Init implements Worker. Vertex workers take no init payload: their
// configuration arrives through NewVertexWorker.
func (v *VertexWorker) Init(*mpi.Buffer) error { return nil }

// Execute implements Worker: it relays a VertexOp through the conduit to the
// server level and decodes the aggregated reply.
func (v *VertexWorker) Execute(t Task) error {
	op, ok := t.(*VertexOp)
	if !ok {
		return fmt.Errorf("mw: VertexWorker received %T, want *VertexOp", t)
	}
	req := mpi.NewBuffer()
	req.PackInt(op.Op)
	switch op.Op {
	case opStart:
		req.PackFloats(op.X)
	case opSample:
		req.PackFloat(op.Dt)
	}
	if err := v.toSrv.Send(req.Bytes()); err != nil {
		return err
	}
	data, err := v.toSrv.Recv()
	if err != nil {
		return err
	}
	resp := mpi.NewBufferFrom(data)
	okFlag, err := resp.UnpackBool()
	if err != nil {
		return err
	}
	if !okFlag {
		return errors.New("mw: vertex server reported a client protocol error")
	}
	if op.Op == opSample {
		if op.Mean, err = resp.UnpackFloat(); err != nil {
			return err
		}
		if op.Variance, err = resp.UnpackFloat(); err != nil {
			return err
		}
		if op.Time, err = resp.UnpackFloat(); err != nil {
			return err
		}
	}
	return nil
}

// Close implements Worker: it tears down the conduit and the child world.
func (v *VertexWorker) Close() {
	v.toSrv.Close()
	v.child.Close()
	if v.cfg.Counts != nil {
		v.cfg.Counts.Workers.Add(-1)
		v.cfg.Counts.Servers.Add(-1)
		v.cfg.Counts.Clients.Add(-int64(v.cfg.Ns))
	}
}

// VertexOp is the task type spoken between the simplex master and vertex
// workers: start sampling at a point, sample for dt, or stop.
type VertexOp struct {
	// Op is one of opStart/opSample/opStop (see NewStartOp etc.).
	Op int
	// X is the parameter point (opStart).
	X []float64
	// Dt is the sampling increment (opSample).
	Dt float64

	// Results of an opSample: aggregated mean, variance of the mean, and
	// minimum accumulated sampling time across clients.
	Mean, Variance, Time float64
}

// NewStartOp builds a start command for point x.
func NewStartOp(x []float64) *VertexOp { return &VertexOp{Op: opStart, X: x} }

// NewSampleOp builds a sampling command.
func NewSampleOp(dt float64) *VertexOp { return &VertexOp{Op: opSample, Dt: dt} }

// NewStopOp builds a stop command.
func NewStopOp() *VertexOp { return &VertexOp{Op: opStop} }

// PackWork implements Task.
func (o *VertexOp) PackWork(b *mpi.Buffer) {
	b.PackInt(o.Op)
	b.PackFloats(o.X)
	b.PackFloat(o.Dt)
}

// UnpackWork implements Task.
func (o *VertexOp) UnpackWork(b *mpi.Buffer) error {
	var err error
	if o.Op, err = b.UnpackInt(); err != nil {
		return err
	}
	if o.X, err = b.UnpackFloats(); err != nil {
		return err
	}
	o.Dt, err = b.UnpackFloat()
	return err
}

// PackResult implements Task.
func (o *VertexOp) PackResult(b *mpi.Buffer) {
	b.PackFloat(o.Mean)
	b.PackFloat(o.Variance)
	b.PackFloat(o.Time)
}

// UnpackResult implements Task.
func (o *VertexOp) UnpackResult(b *mpi.Buffer) error {
	var err error
	if o.Mean, err = b.UnpackFloat(); err != nil {
		return err
	}
	if o.Variance, err = b.UnpackFloat(); err != nil {
		return err
	}
	o.Time, err = b.UnpackFloat()
	return err
}
