package mw

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testfunc"
)

// On a noiseless objective the optimizer's decisions are deterministic, so
// the full parallel MW deployment must reproduce the sequential LocalSpace
// trajectory bit-for-bit: same iteration count, same best vertex.
func TestOptimizerOverMWMatchesLocalNoiseless(t *testing.T) {
	start := [][]float64{{-1.2, 1}, {-1, 1.2}, {-0.8, 0.8}}
	cfg := core.DefaultConfig(core.DET)
	cfg.Tol = 1e-9
	cfg.MaxIterations = 500

	local := sim.NewLocalSpace(sim.LocalConfig{
		Dim: 2, F: testfunc.Rosenbrock, Parallel: true,
	})
	resLocal, err := core.Optimize(local, start, cfg)
	if err != nil {
		t.Fatal(err)
	}

	mwSpace, err := NewSpace(SpaceConfig{
		Dim: 2,
		Ns:  1,
		NewSystem: func(rank, sys int) SystemEvaluator {
			return &FuncSystem{F: testfunc.Rosenbrock, Rng: rand.New(rand.NewSource(int64(rank)))}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mwSpace.Shutdown()
	resMW, err := core.Optimize(mwSpace, start, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if resMW.Iterations != resLocal.Iterations {
		t.Fatalf("iterations: MW %d vs local %d", resMW.Iterations, resLocal.Iterations)
	}
	for i := range resLocal.BestX {
		if resMW.BestX[i] != resLocal.BestX[i] {
			t.Fatalf("BestX differs: MW %v vs local %v", resMW.BestX, resLocal.BestX)
		}
	}
	if resMW.BestG != resLocal.BestG {
		t.Fatalf("BestG differs: MW %v vs local %v", resMW.BestG, resLocal.BestG)
	}
}

// The PC algorithm must run end-to-end over MW with noise, using all d+3
// workers without deadlock, and make progress on Rosenbrock.
func TestPCOverMWWithNoise(t *testing.T) {
	var counts ProcessCounts
	mwSpace, err := NewSpace(SpaceConfig{
		Dim: 3,
		Ns:  1,
		NewSystem: func(rank, sys int) SystemEvaluator {
			return &FuncSystem{
				F:      testfunc.Rosenbrock,
				Sigma0: func([]float64) float64 { return 10 },
				Rng:    rand.New(rand.NewSource(int64(1000 + rank))),
			}
		},
		Counts: &counts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mwSpace.Shutdown()

	if got, want := counts.Total(), int64(ExpectedProcesses(3, 1)); got != want {
		t.Fatalf("deployment size %d, want %d", got, want)
	}

	rng := rand.New(rand.NewSource(5))
	start := make([][]float64, 4)
	for i := range start {
		start[i] = []float64{rng.Float64()*4 - 2, rng.Float64()*4 - 2, rng.Float64()*4 - 2}
	}
	startBest := math.Inf(1)
	for _, x := range start {
		if f := testfunc.Rosenbrock(x); f < startBest {
			startBest = f
		}
	}

	cfg := core.DefaultConfig(core.PC)
	cfg.MaxWalltime = 5e3
	cfg.Tol = 1e-4
	res, err := core.Optimize(mwSpace, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f := testfunc.Rosenbrock(res.BestX); f >= startBest {
		t.Fatalf("no progress over MW: f(best)=%v, start=%v", f, startBest)
	}
	if res.Evaluations == 0 {
		t.Fatal("no evaluations recorded")
	}
}

// Scale-up smoke test in the spirit of section 3.4: a d=20 deployment (23
// workers, 70 processes) must run DET iterations without deadlock.
func TestMWScaleUpD20(t *testing.T) {
	const d = 20
	var counts ProcessCounts
	mwSpace, err := NewSpace(SpaceConfig{
		Dim: d,
		Ns:  1,
		NewSystem: func(rank, sys int) SystemEvaluator {
			return &FuncSystem{
				F:      testfunc.Rosenbrock,
				Sigma0: func([]float64) float64 { return 1 },
				Rng:    rand.New(rand.NewSource(int64(rank))),
			}
		},
		Counts: &counts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mwSpace.Shutdown()
	if got := counts.Total(); got != 70 {
		t.Fatalf("d=20 deployment size %d, want 70 (Table 3.3)", got)
	}

	rng := rand.New(rand.NewSource(17))
	start := make([][]float64, d+1)
	for i := range start {
		start[i] = make([]float64, d)
		for j := range start[i] {
			start[i][j] = rng.Float64()*6 - 3
		}
	}
	cfg := core.DefaultConfig(core.MN)
	cfg.MaxIterations = 30
	cfg.Tol = 0
	cfg.MaxWalltime = 0
	res, err := core.Optimize(mwSpace, start, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 30 {
		t.Fatalf("iterations = %d, want 30", res.Iterations)
	}
}
