package mw

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strings"
)

// Machinefile models the $PBS_NODEFILE processor list of section 4.2: one
// hostname entry per processor slot ("8 entries for each node"), allocated
// in order by the framework's own scheduler — one processor for the master,
// then the workers, then each worker's client-server job "by allocating the
// required number of processors next available in the machinefile".
type Machinefile struct {
	entries []string
}

// ParseMachinefile reads one hostname per line, ignoring blanks and
// #-comments.
func ParseMachinefile(r io.Reader) (*Machinefile, error) {
	var entries []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entries = append(entries, line)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mw: reading machinefile: %w", err)
	}
	if len(entries) == 0 {
		return nil, errors.New("mw: machinefile is empty")
	}
	return &Machinefile{entries: entries}, nil
}

// GenerateMachinefile fabricates a PBS-style machinefile: coresPerNode
// consecutive entries per node (PBS writes 8 per node on the paper's
// cluster).
func GenerateMachinefile(nodes, coresPerNode int) *Machinefile {
	if nodes < 1 || coresPerNode < 1 {
		panic("mw: GenerateMachinefile needs positive nodes and cores")
	}
	m := &Machinefile{}
	for n := 0; n < nodes; n++ {
		host := fmt.Sprintf("node%03d", n)
		for c := 0; c < coresPerNode; c++ {
			m.entries = append(m.entries, host)
		}
	}
	return m
}

// Len returns the number of processor slots.
func (m *Machinefile) Len() int { return len(m.entries) }

// Allocation maps every process of a deployment to a processor slot, in the
// order section 4.2 describes. Worker restarts reuse the same slots ("when a
// worker is restarted by the master; it is restarted on the same
// processors").
type Allocation struct {
	// Master is the master's processor.
	Master string
	// Workers holds the d+3 worker processors, index = rank-1.
	Workers []string
	// Servers holds each worker's server processor.
	Servers []string
	// Clients holds each worker's Ns client processors.
	Clients [][]string
}

// Allocate assigns processors for a d-dimensional deployment with Ns
// simulations per vertex: 1 master, d+3 workers, then per worker a server
// and Ns clients from the next available slots.
func (m *Machinefile) Allocate(d, ns int) (*Allocation, error) {
	if d < 1 || ns < 1 {
		return nil, errors.New("mw: Allocate needs d >= 1 and ns >= 1")
	}
	need := ExpectedProcesses(d, ns)
	if need > len(m.entries) {
		return nil, fmt.Errorf("mw: deployment needs %d processors, machinefile has %d", need, len(m.entries))
	}
	next := 0
	take := func() string {
		e := m.entries[next]
		next++
		return e
	}
	a := &Allocation{Master: take()}
	workers := d + 3
	for w := 0; w < workers; w++ {
		a.Workers = append(a.Workers, take())
	}
	for w := 0; w < workers; w++ {
		a.Servers = append(a.Servers, take())
		clients := make([]string, ns)
		for c := range clients {
			clients[c] = take()
		}
		a.Clients = append(a.Clients, clients)
	}
	return a, nil
}

// Total returns the number of allocated processors.
func (a *Allocation) Total() int {
	n := 1 + len(a.Workers) + len(a.Servers)
	for _, c := range a.Clients {
		n += len(c)
	}
	return n
}

// WorkerSlots returns every processor belonging to the worker of the given
// 1-based rank (the worker itself, its server, its clients) — the slots a
// restart reuses.
func (a *Allocation) WorkerSlots(rank int) ([]string, error) {
	if rank < 1 || rank > len(a.Workers) {
		return nil, fmt.Errorf("mw: rank %d out of range [1,%d]", rank, len(a.Workers))
	}
	out := []string{a.Workers[rank-1], a.Servers[rank-1]}
	out = append(out, a.Clients[rank-1]...)
	return out, nil
}

// NodeUsage counts allocated slots per host, for placement reports.
func (a *Allocation) NodeUsage() map[string]int {
	usage := map[string]int{a.Master: 1}
	for _, w := range a.Workers {
		usage[w]++
	}
	for _, s := range a.Servers {
		usage[s]++
	}
	for _, cl := range a.Clients {
		for _, c := range cl {
			usage[c]++
		}
	}
	return usage
}
