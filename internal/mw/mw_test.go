package mw

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/testfunc"
)

// echoTask doubles a number on the worker.
type echoTask struct {
	In  float64
	Out float64
}

func (t *echoTask) PackWork(b *mpi.Buffer) { b.PackFloat(t.In) }
func (t *echoTask) UnpackWork(b *mpi.Buffer) error {
	var err error
	t.In, err = b.UnpackFloat()
	return err
}
func (t *echoTask) PackResult(b *mpi.Buffer) { b.PackFloat(t.Out) }
func (t *echoTask) UnpackResult(b *mpi.Buffer) error {
	var err error
	t.Out, err = b.UnpackFloat()
	return err
}

// echoWorker doubles inputs; it can be told to fail the first n executions.
type echoWorker struct {
	mu        sync.Mutex
	failFirst int
	executed  int
}

func (w *echoWorker) Init(*mpi.Buffer) error { return nil }
func (w *echoWorker) Execute(t Task) error {
	w.mu.Lock()
	w.executed++
	fail := w.executed <= w.failFirst
	w.mu.Unlock()
	if fail {
		return errors.New("injected failure")
	}
	et := t.(*echoTask)
	et.Out = 2 * et.In
	return nil
}
func (w *echoWorker) Close() {}

func newEchoDriver(t *testing.T, workers, failFirst int) *Driver {
	t.Helper()
	d, err := NewDriver(Config{
		Workers:   workers,
		NewTask:   func() Task { return &echoTask{} },
		NewWorker: func(rank int) Worker { return &echoWorker{failFirst: failFirst} },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Shutdown)
	return d
}

func TestDriverPooledTasks(t *testing.T) {
	d := newEchoDriver(t, 4, 0)
	const n = 50
	pendings := make([]*Pending, n)
	tasks := make([]*echoTask, n)
	for i := 0; i < n; i++ {
		tasks[i] = &echoTask{In: float64(i)}
		p, err := d.Submit(tasks[i])
		if err != nil {
			t.Fatal(err)
		}
		pendings[i] = p
	}
	for i, p := range pendings {
		if err := p.Wait(); err != nil {
			t.Fatal(err)
		}
		if tasks[i].Out != 2*float64(i) {
			t.Fatalf("task %d: Out = %v", i, tasks[i].Out)
		}
	}
	if got := d.Stats().TasksCompleted; got != n {
		t.Fatalf("TasksCompleted = %d, want %d", got, n)
	}
}

func TestDriverTargetedSubmission(t *testing.T) {
	d := newEchoDriver(t, 3, 0)
	task := &echoTask{In: 21}
	p, err := d.SubmitTo(2, task)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if task.Out != 42 {
		t.Fatalf("Out = %v", task.Out)
	}
	if _, err := d.SubmitTo(99, &echoTask{}); err == nil {
		t.Fatal("SubmitTo out-of-range rank accepted")
	}
}

func TestDriverRetriesFailures(t *testing.T) {
	// Single worker failing its first execution: the retry must succeed.
	d := newEchoDriver(t, 1, 1)
	task := &echoTask{In: 5}
	p, err := d.Submit(task)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err != nil {
		t.Fatalf("task failed despite retries: %v", err)
	}
	if task.Out != 10 {
		t.Fatalf("Out = %v", task.Out)
	}
	if s := d.Stats(); s.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", s.Retries)
	}
}

func TestDriverGivesUpAfterMaxRetries(t *testing.T) {
	d, err := NewDriver(Config{
		Workers:    1,
		MaxRetries: 2,
		NewTask:    func() Task { return &echoTask{} },
		NewWorker:  func(rank int) Worker { return &echoWorker{failFirst: 1 << 30} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Shutdown()
	p, err := d.Submit(&echoTask{In: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Wait(); err == nil {
		t.Fatal("always-failing task reported success")
	}
	if s := d.Stats(); s.TasksFailed != 1 || s.Retries != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDriverRestart(t *testing.T) {
	d := newEchoDriver(t, 2, 0)
	task := &echoTask{In: 1}
	p, _ := d.Submit(task)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := d.Restart(1); err != nil {
		t.Fatal(err)
	}
	// The restarted worker must serve new tasks.
	task2 := &echoTask{In: 3}
	p2, err := d.SubmitTo(1, task2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Wait(); err != nil {
		t.Fatal(err)
	}
	if task2.Out != 6 {
		t.Fatalf("Out after restart = %v", task2.Out)
	}
	if d.Stats().Restarts != 1 {
		t.Fatalf("Restarts = %d", d.Stats().Restarts)
	}
}

func TestDriverShutdownRejectsSubmissions(t *testing.T) {
	d := newEchoDriver(t, 1, 0)
	d.Shutdown()
	if _, err := d.Submit(&echoTask{}); err == nil {
		t.Fatal("Submit after shutdown accepted")
	}
	d.Shutdown() // idempotent
}

func TestDriverConfigValidation(t *testing.T) {
	if _, err := NewDriver(Config{Workers: 0}); err == nil {
		t.Fatal("Workers=0 accepted")
	}
	if _, err := NewDriver(Config{Workers: 1}); err == nil {
		t.Fatal("missing factories accepted")
	}
}

func TestVertexPipelineAggregation(t *testing.T) {
	// Two clients with noiseless objectives f and f+2: the aggregated mean
	// must be f+1 and the variance 0.
	vw, err := NewVertexWorker(VertexWorkerConfig{
		Ns: 2,
		NewSystem: func(sys int) SystemEvaluator {
			offset := float64(2 * sys)
			return &FuncSystem{
				F:   func(x []float64) float64 { return testfunc.Sphere(x) + offset },
				Rng: rand.New(rand.NewSource(int64(sys))),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vw.Close()

	start := NewStartOp([]float64{1, 2})
	if err := vw.Execute(start); err != nil {
		t.Fatal(err)
	}
	samp := NewSampleOp(4)
	if err := vw.Execute(samp); err != nil {
		t.Fatal(err)
	}
	want := testfunc.Sphere([]float64{1, 2}) + 1
	if math.Abs(samp.Mean-want) > 1e-12 {
		t.Fatalf("aggregated mean = %v, want %v", samp.Mean, want)
	}
	if samp.Variance != 0 {
		t.Fatalf("noiseless variance = %v", samp.Variance)
	}
	if samp.Time != 4 {
		t.Fatalf("time = %v, want 4", samp.Time)
	}
	if err := vw.Execute(NewStopOp()); err != nil {
		t.Fatal(err)
	}
}

func TestVertexPipelineNoiseVarianceScalesWithNs(t *testing.T) {
	// With Ns independent clients at sigma0 each, the aggregated variance
	// after time t is sigma0^2/(Ns*t).
	const sigma0 = 10.0
	const ns = 4
	vw, err := NewVertexWorker(VertexWorkerConfig{
		Ns: ns,
		NewSystem: func(sys int) SystemEvaluator {
			return &FuncSystem{
				F:      testfunc.Sphere,
				Sigma0: func([]float64) float64 { return sigma0 },
				Rng:    rand.New(rand.NewSource(int64(100 + sys))),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vw.Close()
	if err := vw.Execute(NewStartOp([]float64{0, 0})); err != nil {
		t.Fatal(err)
	}
	samp := NewSampleOp(25)
	if err := vw.Execute(samp); err != nil {
		t.Fatal(err)
	}
	want := sigma0 * sigma0 / (ns * 25.0)
	if math.Abs(samp.Variance-want) > 1e-9 {
		t.Fatalf("variance = %v, want %v", samp.Variance, want)
	}
}

func TestVertexWorkerFileConduit(t *testing.T) {
	vw, err := NewVertexWorker(VertexWorkerConfig{
		Ns:       1,
		SpoolDir: t.TempDir(),
		NewSystem: func(sys int) SystemEvaluator {
			return &FuncSystem{F: testfunc.Sphere, Rng: rand.New(rand.NewSource(1))}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer vw.Close()
	if err := vw.Execute(NewStartOp([]float64{3, 4})); err != nil {
		t.Fatal(err)
	}
	samp := NewSampleOp(1)
	if err := vw.Execute(samp); err != nil {
		t.Fatal(err)
	}
	if samp.Mean != 25 {
		t.Fatalf("mean over file conduit = %v, want 25", samp.Mean)
	}
}

func TestVertexOpMarshalling(t *testing.T) {
	op := NewStartOp([]float64{1, 2, 3})
	b := mpi.NewBuffer()
	op.PackWork(b)
	var got VertexOp
	if err := got.UnpackWork(mpi.NewBufferFrom(b.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got.Op != op.Op || len(got.X) != 3 || got.X[2] != 3 {
		t.Fatalf("round trip = %+v", got)
	}

	res := &VertexOp{Mean: 1.5, Variance: 0.25, Time: 8}
	rb := mpi.NewBuffer()
	res.PackResult(rb)
	var gotRes VertexOp
	if err := gotRes.UnpackResult(mpi.NewBufferFrom(rb.Bytes())); err != nil {
		t.Fatal(err)
	}
	if gotRes.Mean != 1.5 || gotRes.Variance != 0.25 || gotRes.Time != 8 {
		t.Fatalf("result round trip = %+v", gotRes)
	}
}

func TestExpectedProcessesFormula(t *testing.T) {
	// Table 3.3's rows: d=20 -> 70, d=50 -> 160, d=100 -> 310 with Ns=1.
	cases := []struct{ d, ns, want int }{
		{20, 1, 70},
		{50, 1, 160},
		{100, 1, 310},
	}
	for _, c := range cases {
		if got := ExpectedProcesses(c.d, c.ns); got != c.want {
			t.Errorf("ExpectedProcesses(%d, %d) = %d, want %d", c.d, c.ns, got, c.want)
		}
	}
}

func TestProcessAccountingMatchesFormula(t *testing.T) {
	var counts ProcessCounts
	sp, err := NewSpace(SpaceConfig{
		Dim: 5,
		Ns:  2,
		NewSystem: func(rank, sys int) SystemEvaluator {
			return &FuncSystem{F: testfunc.Sphere, Rng: rand.New(rand.NewSource(int64(rank*10 + sys)))}
		},
		Counts: &counts,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := counts.Total(), int64(ExpectedProcesses(5, 2)); got != want {
		t.Fatalf("live processes = %d, want %d", got, want)
	}
	sp.Shutdown()
	if got := counts.Total(); got != 0 {
		t.Fatalf("after shutdown, live processes = %d, want 0", got)
	}
}

func TestSpaceSamplingMatchesLocalSemantics(t *testing.T) {
	sp, err := NewSpace(SpaceConfig{
		Dim: 2,
		Ns:  1,
		NewSystem: func(rank, sys int) SystemEvaluator {
			return &FuncSystem{F: testfunc.Sphere, Rng: rand.New(rand.NewSource(int64(rank)))}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Shutdown()

	p1 := sp.NewPoint([]float64{1, 1})
	p2 := sp.NewPoint([]float64{2, 2})
	sp.SampleAll([]sim.Point{p1, p2}, 3)

	if got := sp.Clock().Now(); got != 3 {
		t.Fatalf("parallel clock = %v, want 3", got)
	}
	if e := p1.Estimate(); e.Mean != 2 || e.Time != 3 {
		t.Fatalf("p1 estimate = %+v", e)
	}
	if e := p2.Estimate(); e.Mean != 8 {
		t.Fatalf("p2 estimate = %+v", e)
	}
	if got := sp.Evaluations(); got != 2 {
		t.Fatalf("evaluations = %d, want 2", got)
	}
	p1.Close()
	p2.Close()
}

func TestSpaceSlotReuseAfterClose(t *testing.T) {
	// Dim=1 gives 4 workers; opening and closing 10 points sequentially
	// must never block.
	sp, err := NewSpace(SpaceConfig{
		Dim: 1,
		Ns:  1,
		NewSystem: func(rank, sys int) SystemEvaluator {
			return &FuncSystem{
				F:   func(x []float64) float64 { return x[0] * x[0] },
				Rng: rand.New(rand.NewSource(int64(rank))),
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Shutdown()
	for i := 0; i < 10; i++ {
		p := sp.NewPoint([]float64{float64(i)})
		p.Sample(1)
		if e := p.Estimate(); e.Mean != float64(i*i) {
			t.Fatalf("point %d mean = %v", i, e.Mean)
		}
		p.Close()
	}
}
