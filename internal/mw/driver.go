// Package mw re-implements the University of Wisconsin MW master-worker
// framework that the paper enhanced (section 3.1, Figure 3.1): a Driver
// (MWDriver) manages a set of Workers (MWWorker) executing Tasks (MWTask),
// with all marshalling through pack/unpack buffers and all communication
// through the mpi substrate.
//
// Two features from the paper's enhanced MW are reproduced:
//
//   - Vertex affinity: "each worker is logically associated with a vertex
//     object". SubmitTo pins a task to a specific worker rank so the
//     accumulated sampling state of a simplex vertex stays resident on its
//     worker (and on the server/client processes beneath it; see vertex.go).
//   - Worker restart on the same processor: "When a worker is restarted by
//     the master; it is restarted on the same processors" (section 4.2).
//
// Failed task executions are retried (at-least-once semantics), matching
// MW's fault-tolerant design for opportunistic grid resources.
package mw

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/mpi"
)

// Message tags on the master-worker communicator.
const (
	tagInit = iota + 1
	tagWork
	tagResult
	tagFailure
	tagShutdown
)

// AnyWorker requests pooled dispatch to whichever worker is idle first.
const AnyWorker = -1

// Task is one unit of work, the analogue of MWTask: it marshals its work
// description toward the worker and its results back toward the master.
type Task interface {
	// PackWork marshals the work description (master side).
	PackWork(b *mpi.Buffer)
	// UnpackWork unmarshals the work description (worker side).
	UnpackWork(b *mpi.Buffer) error
	// PackResult marshals the computed results (worker side).
	PackResult(b *mpi.Buffer)
	// UnpackResult unmarshals the results into the original task instance
	// (master side).
	UnpackResult(b *mpi.Buffer) error
}

// Worker executes tasks on one rank, the analogue of MWWorker.
type Worker interface {
	// Init consumes the driver's one-time init data before any task runs.
	Init(b *mpi.Buffer) error
	// Execute runs the task in place, filling its result fields. A returned
	// error is reported to the driver, which requeues the task.
	Execute(t Task) error
	// Close releases worker resources at shutdown or restart.
	Close()
}

// Config describes a Driver deployment.
type Config struct {
	// Workers is the number of worker processes (the paper uses d+3: one
	// per vertex plus two trial vertices).
	Workers int
	// NewTask constructs an empty task for unmarshalling on the worker.
	NewTask func() Task
	// NewWorker constructs the worker for a rank (called again on restart).
	NewWorker func(rank int) Worker
	// InitData, if non-nil, packs the one-time worker init payload.
	InitData func(b *mpi.Buffer)
	// MaxRetries bounds per-task requeues after worker failures.
	MaxRetries int
}

// Pending is a submitted task's completion handle.
type Pending struct {
	// ID is the driver-assigned task id.
	ID int
	// Task is the submitted instance; its result fields are filled when
	// Wait returns nil.
	Task Task

	done chan struct{}
	err  error
}

// Wait blocks until the task completes, returning the execution error if the
// task ultimately failed.
func (p *Pending) Wait() error {
	<-p.done
	return p.err
}

type inflightInfo struct {
	pending *Pending
	rank    int
	pooled  bool
	retries int
}

// Driver is the master process of the MW deployment.
type Driver struct {
	cfg    Config
	world  *mpi.World
	master *mpi.Comm

	mu       sync.Mutex
	inflight map[int]*inflightInfo
	nextID   int
	shutdown bool

	submitCh   chan *inflightInfo
	idleCh     chan int
	doneCh     chan struct{}
	wg         sync.WaitGroup // collector + dispatcher
	workerWG   sync.WaitGroup // worker goroutines
	workerDone map[int]chan struct{}

	stats Stats
}

// Stats reports driver activity counters.
type Stats struct {
	// TasksCompleted counts successfully finished tasks.
	TasksCompleted int
	// TasksFailed counts tasks abandoned after MaxRetries.
	TasksFailed int
	// Retries counts requeues after worker-reported failures.
	Retries int
	// Restarts counts worker restarts.
	Restarts int
}

// NewDriver builds the deployment: one master plus cfg.Workers workers on a
// fresh communicator, mirroring Figure 3.2's top level.
func NewDriver(cfg Config) (*Driver, error) {
	if cfg.Workers < 1 {
		return nil, errors.New("mw: Config.Workers must be >= 1")
	}
	if cfg.NewTask == nil || cfg.NewWorker == nil {
		return nil, errors.New("mw: Config.NewTask and Config.NewWorker are required")
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 2
	}
	d := &Driver{
		cfg:        cfg,
		world:      mpi.NewWorld(cfg.Workers + 1),
		inflight:   make(map[int]*inflightInfo),
		submitCh:   make(chan *inflightInfo, 1024),
		idleCh:     make(chan int, cfg.Workers),
		doneCh:     make(chan struct{}),
		workerDone: make(map[int]chan struct{}),
	}
	d.master = d.world.Comm(0)

	for rank := 1; rank <= cfg.Workers; rank++ {
		d.startWorker(rank)
		d.idleCh <- rank
	}
	d.wg.Add(2)
	go d.dispatcher()
	go d.collector()
	return d, nil
}

// startWorker constructs the worker synchronously (so deployment-wide
// resource accounting is complete when NewDriver returns), spawns its serving
// goroutine, and sends its init data.
func (d *Driver) startWorker(rank int) {
	done := make(chan struct{})
	d.mu.Lock()
	d.workerDone[rank] = done
	d.mu.Unlock()
	w := d.cfg.NewWorker(rank)
	d.workerWG.Add(1)
	go func() {
		defer close(done)
		d.workerLoop(rank, w)
	}()
	init := mpi.NewBuffer()
	if d.cfg.InitData != nil {
		d.cfg.InitData(init)
	}
	// Best effort: a closed world surfaces through worker exits.
	_ = d.master.Send(rank, tagInit, init)
}

// workerLoop is the worker "process": it initializes, then serves work
// messages until shutdown.
func (d *Driver) workerLoop(rank int, w Worker) {
	defer d.workerWG.Done()
	comm := d.world.Comm(rank)
	defer w.Close()

	msg, err := comm.Recv(0, tagInit)
	if err != nil {
		return
	}
	if err := w.Init(msg.Buf); err != nil {
		// A worker that cannot initialize reports failure for every task
		// sent to it; simplest is to keep serving and fail each task.
		w = &brokenWorker{err: err}
	}
	for {
		msg, err := comm.Recv(0, mpi.AnyTag)
		if err != nil {
			return // world closed
		}
		switch msg.Tag {
		case tagShutdown:
			return
		case tagWork:
			id, err := msg.Buf.UnpackInt()
			if err != nil {
				continue
			}
			t := d.cfg.NewTask()
			if err := t.UnpackWork(msg.Buf); err != nil {
				d.replyFailure(comm, id, err)
				continue
			}
			if err := w.Execute(t); err != nil {
				d.replyFailure(comm, id, err)
				continue
			}
			reply := mpi.NewBuffer()
			reply.PackInt(id)
			t.PackResult(reply)
			_ = comm.Send(0, tagResult, reply)
		}
	}
}

// brokenWorker fails every task with the initialization error.
type brokenWorker struct{ err error }

func (b *brokenWorker) Init(*mpi.Buffer) error { return nil }
func (b *brokenWorker) Execute(Task) error     { return b.err }
func (b *brokenWorker) Close()                 {}

func (d *Driver) replyFailure(comm *mpi.Comm, id int, err error) {
	reply := mpi.NewBuffer()
	reply.PackInt(id)
	reply.PackString(err.Error())
	_ = comm.Send(0, tagFailure, reply)
}

// Submit queues a task for pooled dispatch to any idle worker.
func (d *Driver) Submit(t Task) (*Pending, error) { return d.submit(t, AnyWorker) }

// SubmitTo pins a task to the given worker rank (1-based), the vertex
// affinity mode. The caller is responsible for not overlapping two in-flight
// tasks on one rank unless serialized execution is acceptable.
func (d *Driver) SubmitTo(rank int, t Task) (*Pending, error) {
	if rank < 1 || rank > d.cfg.Workers {
		return nil, fmt.Errorf("mw: SubmitTo rank %d out of range [1,%d]", rank, d.cfg.Workers)
	}
	return d.submit(t, rank)
}

func (d *Driver) submit(t Task, rank int) (*Pending, error) {
	d.mu.Lock()
	if d.shutdown {
		d.mu.Unlock()
		return nil, errors.New("mw: driver is shut down")
	}
	d.nextID++
	p := &Pending{ID: d.nextID, Task: t, done: make(chan struct{})}
	info := &inflightInfo{pending: p, rank: rank, pooled: rank == AnyWorker}
	d.inflight[p.ID] = info
	d.mu.Unlock()

	if info.pooled {
		select {
		case d.submitCh <- info:
		case <-d.doneCh:
			return nil, errors.New("mw: driver is shut down")
		}
	} else if err := d.sendWork(info); err != nil {
		return nil, err
	}
	return p, nil
}

func (d *Driver) sendWork(info *inflightInfo) error {
	b := mpi.NewBuffer()
	b.PackInt(info.pending.ID)
	info.pending.Task.PackWork(b)
	return d.master.Send(info.rank, tagWork, b)
}

// dispatcher matches pooled submissions with idle workers.
func (d *Driver) dispatcher() {
	defer d.wg.Done()
	for {
		select {
		case <-d.doneCh:
			return
		case info := <-d.submitCh:
			select {
			case <-d.doneCh:
				return
			case rank := <-d.idleCh:
				info.rank = rank
				if err := d.sendWork(info); err != nil {
					d.complete(info.pending, err)
					return
				}
			}
		}
	}
}

// collector receives results and failures from all workers.
func (d *Driver) collector() {
	defer d.wg.Done()
	for {
		msg, err := d.master.Recv(mpi.AnySource, mpi.AnyTag)
		if err != nil {
			return // world closed
		}
		id, err := msg.Buf.UnpackInt()
		if err != nil {
			continue
		}
		d.mu.Lock()
		info, ok := d.inflight[id]
		if ok {
			delete(d.inflight, id)
		}
		d.mu.Unlock()
		if !ok {
			continue // stale duplicate from a retried task
		}

		switch msg.Tag {
		case tagResult:
			err := info.pending.Task.UnpackResult(msg.Buf)
			if info.pooled {
				d.idleCh <- info.rank
			}
			d.mu.Lock()
			d.stats.TasksCompleted++
			d.mu.Unlock()
			d.complete(info.pending, err)
		case tagFailure:
			emsg, _ := msg.Buf.UnpackString()
			if info.pooled {
				d.idleCh <- info.rank
			}
			d.mu.Lock()
			retriesLeft := info.retries < d.cfg.MaxRetries
			if retriesLeft {
				info.retries++
				d.stats.Retries++
				d.inflight[id] = info
			} else {
				d.stats.TasksFailed++
			}
			d.mu.Unlock()
			if retriesLeft {
				if info.pooled {
					select {
					case d.submitCh <- info:
					case <-d.doneCh:
						d.complete(info.pending, errors.New("mw: driver shut down during retry"))
					}
				} else if err := d.sendWork(info); err != nil {
					d.complete(info.pending, err)
				}
			} else {
				d.complete(info.pending, fmt.Errorf("mw: task %d failed after %d retries: %s", id, d.cfg.MaxRetries, emsg))
			}
		}
	}
}

func (d *Driver) complete(p *Pending, err error) {
	p.err = err
	close(p.done)
}

// Restart tears down the worker on the given rank and starts a fresh one on
// the same rank ("restarted on the same processors"). Restart requires that
// no task is in flight on the rank.
func (d *Driver) Restart(rank int) error {
	if rank < 1 || rank > d.cfg.Workers {
		return fmt.Errorf("mw: Restart rank %d out of range", rank)
	}
	d.mu.Lock()
	for _, info := range d.inflight {
		if info.rank == rank {
			d.mu.Unlock()
			return fmt.Errorf("mw: Restart rank %d: task %d in flight", rank, info.pending.ID)
		}
	}
	d.stats.Restarts++
	done := d.workerDone[rank]
	d.mu.Unlock()
	if err := d.master.Send(rank, tagShutdown, mpi.NewBuffer()); err != nil {
		return err
	}
	// Wait for the old worker to exit before spawning its replacement so the
	// replacement's init message cannot be stolen by the old receive loop.
	<-done
	d.startWorker(rank)
	return nil
}

// Workers returns the configured worker count.
func (d *Driver) Workers() int { return d.cfg.Workers }

// Stats returns a snapshot of the activity counters.
func (d *Driver) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Shutdown stops all workers and releases the communicator. Outstanding
// pending tasks complete with an error.
func (d *Driver) Shutdown() {
	d.mu.Lock()
	if d.shutdown {
		d.mu.Unlock()
		return
	}
	d.shutdown = true
	orphans := make([]*Pending, 0, len(d.inflight))
	for id, info := range d.inflight {
		orphans = append(orphans, info.pending)
		delete(d.inflight, id)
	}
	d.mu.Unlock()

	close(d.doneCh)
	for rank := 1; rank <= d.cfg.Workers; rank++ {
		_ = d.master.Send(rank, tagShutdown, mpi.NewBuffer())
	}
	d.workerWG.Wait()
	d.world.Close()
	d.wg.Wait()
	for _, p := range orphans {
		d.complete(p, errors.New("mw: driver shut down"))
	}
}
