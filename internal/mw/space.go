package mw

import (
	"context"
	"errors"
	"fmt"
	"math"
	"path/filepath"
	"sync"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/vtime"
)

// SpaceConfig configures an MW-backed sampling space.
type SpaceConfig struct {
	// Dim is the parameter-space dimension; the deployment uses Dim+3
	// workers (one per vertex plus two trial vertices, section 3.1).
	Dim int
	// Ns is the number of simulation clients under each vertex server.
	Ns int
	// NewSystem builds the evaluator for client sys (0-based) of worker
	// rank (1-based). It runs on the client "process".
	NewSystem func(rank, sys int) SystemEvaluator
	// SpoolDir, if non-empty, routes every worker-server conduit through
	// files under SpoolDir/worker-<rank>; otherwise conduits are in-memory.
	SpoolDir string
	// Counts, if non-nil, receives live process accounting (Table 3.3).
	Counts *ProcessCounts
}

// Space is the parallel sampling backend: a sim.Space whose points live on
// MW vertex workers. Each point is pinned to one worker for its lifetime
// ("each worker is logically associated with a vertex object"), and
// SampleAll batches advance the virtual wall clock once, modelling the
// concurrent sampling of all active vertices.
type Space struct {
	cfg    SpaceConfig
	driver *Driver
	clock  vtime.Clock
	free   chan int
	pool   *sched.Scheduler

	mu    sync.Mutex
	evals int64
}

// NewSpace launches the full two-level deployment: 1 master, Dim+3 workers,
// Dim+3 servers, (Dim+3)*Ns clients.
func NewSpace(cfg SpaceConfig) (*Space, error) {
	if cfg.Dim < 1 {
		return nil, errors.New("mw: SpaceConfig.Dim must be >= 1")
	}
	if cfg.Ns < 1 {
		return nil, errors.New("mw: SpaceConfig.Ns must be >= 1")
	}
	if cfg.NewSystem == nil {
		return nil, errors.New("mw: SpaceConfig.NewSystem is required")
	}
	workers := cfg.Dim + 3
	s := &Space{
		cfg:  cfg,
		free: make(chan int, workers),
		// One scheduler slot per vertex worker: a batch's submit/collect
		// round-trips overlap exactly as the deployment's workers do.
		pool: sched.New(sched.Config{Workers: workers}),
	}
	driver, err := NewDriver(Config{
		Workers: workers,
		NewTask: func() Task { return &VertexOp{} },
		NewWorker: func(rank int) Worker {
			vcfg := VertexWorkerConfig{
				Ns:        cfg.Ns,
				NewSystem: func(sys int) SystemEvaluator { return cfg.NewSystem(rank, sys) },
				Counts:    cfg.Counts,
			}
			if cfg.SpoolDir != "" {
				vcfg.SpoolDir = filepath.Join(cfg.SpoolDir, fmt.Sprintf("worker-%03d", rank))
			}
			vw, err := NewVertexWorker(vcfg)
			if err != nil {
				return &brokenWorker{err: err}
			}
			return vw
		},
	})
	if err != nil {
		return nil, err
	}
	s.driver = driver
	if cfg.Counts != nil {
		cfg.Counts.Masters.Add(1)
	}
	for rank := 1; rank <= workers; rank++ {
		s.free <- rank
	}
	return s, nil
}

// Dim implements sim.Space.
func (s *Space) Dim() int { return s.cfg.Dim }

// Clock implements sim.Space.
func (s *Space) Clock() *vtime.Clock { return &s.clock }

// Evaluations implements sim.Space.
func (s *Space) Evaluations() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evals
}

// Driver exposes the underlying MW driver for stats and restarts.
func (s *Space) Driver() *Driver { return s.driver }

// NewPoint implements sim.Space: it claims a free vertex worker and starts an
// evaluation there. With more than Dim+3 concurrently active points, NewPoint
// blocks until one is closed — the paper's hard resource bound of d+3 active
// vertices.
func (s *Space) NewPoint(x []float64) sim.Point {
	if len(x) != s.cfg.Dim {
		panic("mw: NewPoint dimension mismatch")
	}
	rank := <-s.free
	xc := append([]float64(nil), x...)
	pending, err := s.driver.SubmitTo(rank, NewStartOp(xc))
	if err == nil {
		err = pending.Wait()
	}
	if err != nil {
		s.free <- rank
		panic(fmt.Sprintf("mw: starting point on worker %d: %v", rank, err))
	}
	return &mwPoint{
		space: s,
		rank:  rank,
		x:     xc,
		est:   sim.Estimate{Mean: math.NaN(), Sigma: math.Inf(1)},
	}
}

// SampleAll implements sim.Space: every point samples for dt concurrently on
// its own worker, and the wall clock advances dt once. A worker failure
// panics, preserving the historical SampleAll contract; use SampleBatch for
// error-returning semantics.
func (s *Space) SampleAll(points []sim.Point, dt float64) {
	if err := s.SampleBatch(context.Background(), points, dt); err != nil {
		panic(fmt.Sprintf("mw: %v", err))
	}
}

// SampleBatch implements sim.BatchSampler: each point's submit/collect
// round-trip to its pinned vertex worker runs as one task on the space's
// scheduler, replacing the bespoke issue-then-drain loops. On cancellation
// or worker failure the batch is partial and the wall clock does not
// advance.
func (s *Space) SampleBatch(ctx context.Context, points []sim.Point, dt float64) error {
	if len(points) == 0 {
		return ctx.Err()
	}
	mps := make([]*mwPoint, len(points))
	for i, p := range points {
		mp, ok := p.(*mwPoint)
		if !ok {
			panic("mw: SampleAll received a foreign Point")
		}
		mps[i] = mp
	}
	errs := make([]error, len(mps))
	if err := s.pool.DoN(ctx, len(mps), func(i int) {
		mp := mps[i]
		op := NewSampleOp(dt)
		pd, err := s.driver.SubmitTo(mp.rank, op)
		if err == nil {
			err = pd.Wait()
		}
		if err != nil {
			errs[i] = fmt.Errorf("sample on worker %d: %w", mp.rank, err)
			return
		}
		mp.est = sim.Estimate{
			Mean:  op.Mean,
			Sigma: math.Sqrt(op.Variance),
			Time:  op.Time,
		}
	}); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.evals += int64(len(points) * s.cfg.Ns)
	s.mu.Unlock()
	s.clock.Advance(dt)
	return nil
}

// Shutdown tears down the whole deployment.
func (s *Space) Shutdown() {
	s.driver.Shutdown()
	s.pool.Close()
	if s.cfg.Counts != nil {
		s.cfg.Counts.Masters.Add(-1)
	}
}

type mwPoint struct {
	space  *Space
	rank   int
	x      []float64
	est    sim.Estimate
	closed bool
}

func (p *mwPoint) X() []float64 { return p.x }

func (p *mwPoint) Estimate() sim.Estimate { return p.est }

func (p *mwPoint) Sample(dt float64) {
	if p.closed {
		panic("mw: Sample on closed point")
	}
	p.space.SampleAll([]sim.Point{p}, dt)
}

func (p *mwPoint) Close() {
	if p.closed {
		return
	}
	p.closed = true
	pending, err := p.space.driver.SubmitTo(p.rank, NewStopOp())
	if err == nil {
		err = pending.Wait()
	}
	if err == nil {
		p.space.free <- p.rank
	}
	// A failed stop leaks the slot rather than handing out a worker in an
	// unknown state; the driver's stats surface the failure.
}
