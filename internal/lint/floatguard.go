package lint

import (
	"go/ast"
	"go/types"
)

// Floatguard protects the dist wire boundary's cannot-carry-non-finite
// guarantee. Both frame codecs reject NaN and ±Inf on encode AND decode
// (the JSON codec through encoding/json's own refusal plus the coordinator's
// up-front validation, the binary codec through its bit-level helpers); a
// new code path that bit-casts a float64 straight onto the wire would
// silently reopen the hole.
//
// Two rules, scoped to package dist:
//
//   - math.Float64bits / math.Float64frombits may only be called inside a
//     function marked //optlint:floatboundary — the audited helpers
//     (appendF64, (*binReader).f64, finite) through which every wire float
//     flows;
//   - a function marked //optlint:floatboundary must actually reject
//     non-finite values: its body must call both math.IsNaN and
//     math.IsInf, or delegate to another marked helper.
var Floatguard = &Analyzer{
	Name: "floatguard",
	Doc:  "float64 bit-casts in the dist codec only inside //optlint:floatboundary helpers that reject non-finite values",
	Run:  runFloatguard,
}

func runFloatguard(p *Pass) error {
	if p.Types.Name() != "dist" {
		return nil
	}
	// First pass: collect the function objects marked as boundaries, so
	// delegation between helpers is recognized.
	boundaries := map[types.Object]bool{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || !p.FuncMarked(fd, VerbFloatBoundary) {
				continue
			}
			if obj := p.Info.Defs[fd.Name]; obj != nil {
				boundaries[obj] = true
			}
		}
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if boundaries[p.Info.Defs[fd.Name]] {
				checkBoundaryRejects(p, fd, boundaries)
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj := calleeFunc(p.Info, call)
				if isPkgFunc(obj, "math", "Float64bits") || isPkgFunc(obj, "math", "Float64frombits") {
					p.Reportf(call.Pos(), "math.%s outside a //optlint:floatboundary helper: float64 bits crossing a dist frame must pass non-finite rejection (route through appendF64 / binReader.f64)", obj.Name())
				}
				return true
			})
		}
	}
	return nil
}

// checkBoundaryRejects verifies a marked helper really rejects non-finite
// values: both math.IsNaN and math.IsInf appear in its body, or it calls
// another marked helper that does.
func checkBoundaryRejects(p *Pass, fd *ast.FuncDecl, boundaries map[types.Object]bool) {
	var isNaN, isInf, delegates bool
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeFunc(p.Info, call)
		switch {
		case isPkgFunc(obj, "math", "IsNaN"):
			isNaN = true
		case isPkgFunc(obj, "math", "IsInf"):
			isInf = true
		case obj != nil && boundaries[obj] && p.Info.Defs[fd.Name] != obj:
			delegates = true
		}
		return true
	})
	if !(isNaN && isInf) && !delegates {
		p.Reportf(fd.Name.Pos(), "function is marked //optlint:floatboundary but performs no non-finite rejection (needs math.IsNaN and math.IsInf, or a call to another boundary helper)")
	}
}
