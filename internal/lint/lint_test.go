package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantSpec is one expected diagnostic, parsed from a fixture comment of the
// form `// want `pattern` `pattern2“. Like x/tools' analysistest, the
// expectation binds to the comment's line.
type wantSpec struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

var wantRx = regexp.MustCompile("want\\s+((?:`[^`]+`\\s*)+)")
var patRx = regexp.MustCompile("`([^`]+)`")

// parseWants extracts expectations from every comment in the fixture.
func parseWants(t *testing.T, pkg *Package) []*wantSpec {
	t.Helper()
	var wants []*wantSpec
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				for _, pm := range patRx.FindAllStringSubmatch(m[1], -1) {
					rx, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pm[1], err)
					}
					wants = append(wants, &wantSpec{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// runTest loads testdata/src/<fixture>, runs one analyzer, and requires the
// diagnostics to match the fixture's want comments exactly.
func runTest(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	pkg, err := loadTestPackage(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, pkg)
	var unexpected []string
	for _, d := range diags {
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			unexpected = append(unexpected, d.String())
		}
	}
	for _, w := range wants {
		if !w.matched {
			unexpected = append(unexpected, fmt.Sprintf("%s:%d: no %q diagnostic matching %q", w.file, w.line, a.Name, w.rx))
		}
	}
	if len(unexpected) > 0 {
		t.Errorf("fixture %s:\n%s", fixture, strings.Join(unexpected, "\n"))
	}
}

func TestDeterminism(t *testing.T) { runTest(t, Determinism, "determinism") }
func TestNoalloc(t *testing.T)     { runTest(t, Noalloc, "noalloc") }
func TestFloatguard(t *testing.T)  { runTest(t, Floatguard, "floatguard") }
func TestLockguard(t *testing.T)   { runTest(t, Lockguard, "lockguard") }
func TestAtomicguard(t *testing.T) { runTest(t, Atomicguard, "atomicguard") }
func TestDirective(t *testing.T)   { runTest(t, Directive, "directive") }
func TestShadow(t *testing.T)      { runTest(t, Shadow, "shadow") }
func TestUnusedwrite(t *testing.T) { runTest(t, Unusedwrite, "unusedwrite") }
func TestNilness(t *testing.T)     { runTest(t, Nilness, "nilness") }

// TestDeterminismOutsideResultPackages proves the determinism rules do not
// fire on packages outside the result-affecting set: the same constructs the
// "sim" fixture flags are legal in a package named, say, "tools".
func TestDeterminismOutsideResultPackages(t *testing.T) {
	pkg, err := loadTestPackage(filepath.Join("testdata", "src", "determinism"))
	if err != nil {
		t.Fatal(err)
	}
	// Re-check the same files under a package identity outside the set by
	// running the floatguard analyzer, which is scoped to dist: zero
	// diagnostics from a "sim" package.
	diags, err := RunAnalyzers([]*Package{pkg}, []*Analyzer{Floatguard})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("floatguard fired outside package dist: %v", diags)
	}
}

func TestAnalyzerRegistry(t *testing.T) {
	all := All()
	if len(all) != 9 {
		t.Fatalf("All() = %d analyzers, want 9", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}

	picked, err := byName("noalloc, determinism")
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || picked[0].Name != "noalloc" || picked[1].Name != "determinism" {
		t.Errorf("byName returned %v", picked)
	}
	if _, err := byName("nope"); err == nil {
		t.Error("byName accepted an unknown analyzer")
	}
}
