package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces the repo's core reproducibility contract in
// result-affecting packages: every sampling increment is a pure function of
// (stream seed, draw index), so nothing on a result path may read the wall
// clock, draw from the process-global RNG, or let randomized map iteration
// order leak into state.
//
// Three constructs are reported:
//
//   - calls (or references) to time.Now, time.Since, time.Until;
//   - references to math/rand (or math/rand/v2) package-level functions,
//     which share the auto-seeded global source — constructing seeded
//     streams (rand.New, rand.NewSource, ...) is the sanctioned pattern
//     and stays legal;
//   - `range` over a map whose body writes state declared outside the
//     loop: iteration order is deliberately randomized by the runtime, so
//     such writes are ordered differently run to run.
//
// Timing/observability code that legitimately reads clocks (metrics,
// heartbeats) carries a line-scoped //optlint:nondeterministic-ok directive
// with a justification.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, the global RNG and map-order-dependent writes in result-affecting packages",
	Run:  runDeterminism,
}

// resultPackages names the packages whose code feeds optimization results.
// Everything else (obs, jobs plumbing, CLIs, experiments) is out of scope:
// their clocks and map walks cannot perturb a sample.
var resultPackages = map[string]bool{
	"core":  true,
	"sim":   true,
	"noise": true,
	"sched": true,
	"dist":  true,
	"pso":   true,
	"stats": true,
}

// wallClockFuncs are the time package reads that break run-to-run
// reproducibility. Timers and tickers are not listed: they schedule work but
// do not feed values into results.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandCtors are the math/rand(/v2) entry points that build private,
// seeded generators — the deterministic pattern this repo requires.
var seededRandCtors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(p *Pass) error {
	if !resultPackages[p.Types.Name()] {
		return nil
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := p.Info.Uses[n.Sel]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if wallClockFuncs[fn.Name()] && !p.Suppressed(n.Pos(), VerbNondeterministicOK) {
						p.Reportf(n.Pos(), "time.%s in result-affecting package %s: wall-clock values must never reach a sample; if this is metrics/heartbeat plumbing, annotate //optlint:nondeterministic-ok with a justification", fn.Name(), p.Types.Name())
					}
				case "math/rand", "math/rand/v2":
					// Methods on *rand.Rand have a receiver; only
					// package-level functions share the global source.
					if fn.Signature().Recv() == nil && !seededRandCtors[fn.Name()] && !p.Suppressed(n.Pos(), VerbNondeterministicOK) {
						p.Reportf(n.Pos(), "rand.%s uses the process-global RNG: results must come from seeded streams (rand.New(rand.NewSource(seed)))", fn.Name())
					}
				}
			case *ast.RangeStmt:
				checkMapRange(p, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange reports a map-range statement whose body writes state
// declared outside the loop. The check is conservative and syntactic about
// the write targets (assignments, ++/--, channel sends, and delete on an
// outer map); mutation through method calls is not tracked.
func checkMapRange(p *Pass, rng *ast.RangeStmt) {
	t := p.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	if p.Suppressed(rng.Pos(), VerbNondeterministicOK) {
		return
	}
	// outer reports whether the lvalue's base identifier was declared
	// outside the range statement (including params, receivers and
	// package-level state).
	outer := func(e ast.Expr) *ast.Ident {
		root := rootIdent(e)
		if root == nil {
			return nil
		}
		v, ok := p.Info.ObjectOf(root).(*types.Var)
		if !ok {
			return nil
		}
		if v.Pos() < rng.Pos() || v.Pos() > rng.End() {
			return root
		}
		return nil
	}
	var offender *ast.Ident
	var verb string
	found := func(id *ast.Ident, what string) bool {
		if id != nil && offender == nil {
			offender, verb = id, what
		}
		return offender != nil
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if offender != nil {
			return false
		}
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if found(outer(lhs), "assigns to") {
					return false
				}
			}
		case *ast.IncDecStmt:
			if found(outer(s.X), "mutates") {
				return false
			}
		case *ast.SendStmt:
			if found(outer(s.Chan), "sends on") {
				return false
			}
		case *ast.CallExpr:
			if obj, ok := calleeFunc(p.Info, s).(*types.Builtin); ok && obj.Name() == "delete" && len(s.Args) > 0 {
				if found(outer(s.Args[0]), "deletes from") {
					return false
				}
			}
		}
		return true
	})
	if offender != nil {
		p.Reportf(rng.Pos(), "map iteration %s non-loop-local state %q: map order is randomized per run; iterate a sorted key slice, or annotate //optlint:nondeterministic-ok with why the result is order-independent", verb, offender.Name)
	}
}
