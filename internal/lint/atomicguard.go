package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Atomicguard enforces all-or-nothing atomic discipline: once any code in a
// package accesses a struct field through sync/atomic (atomic.LoadUint64(&c.n),
// atomic.AddInt64(&g.v, d), ...) or the field has an atomic.* type
// (atomic.Uint64, atomic.Pointer[T], ...), every other access must be atomic
// too. A single plain read racing an atomic write is still a data race, and
// one -race never exercised can ship a torn read.
//
// Detection is intra-package:
//
//   - fields whose type lives in sync/atomic are atomic by construction;
//     accessing one without calling a method on it is reported (taking its
//     address for a method call is fine);
//   - fields passed by address into a sync/atomic function anywhere in the
//     package become "atomic fields"; any plain (non-&-into-atomic-call)
//     read or write of the same field object elsewhere is reported.
//
// Initialization inside composite literals is exempt for the same reason as
// lockguard: constructors publish the value after initialization.
var Atomicguard = &Analyzer{
	Name: "atomicguard",
	Doc:  "fields accessed via sync/atomic are never read or written plainly",
	Run:  runAtomicguard,
}

func runAtomicguard(p *Pass) error {
	atomicFields := map[*types.Var]bool{}      // fields passed as &f into sync/atomic funcs
	sanctioned := map[*ast.SelectorExpr]bool{} // selector uses that ARE the atomic access

	// Pass 1: find &<expr.field> arguments to sync/atomic calls, and selector
	// bases of atomic.* typed fields' method calls.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := calleeFunc(p.Info, call).(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				if fn.Signature().Recv() == nil {
					// atomic.LoadUint64(&x.f, ...): mark each &field arg.
					for _, arg := range call.Args {
						un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
						if !ok || un.Op != token.AND {
							continue
						}
						sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
						if !ok {
							continue
						}
						if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
							if v, ok := s.Obj().(*types.Var); ok {
								atomicFields[v] = true
								sanctioned[sel] = true
							}
						}
					}
				} else {
					// c.n.Load(): the receiver selector chain is sanctioned.
					if recv, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
						if base, ok := ast.Unparen(recv.X).(*ast.SelectorExpr); ok {
							sanctioned[base] = true
						}
					}
				}
			}
			return true
		})
	}

	// Pass 2: report plain accesses.
	for _, f := range p.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			if _, ok := n.(*ast.CompositeLit); ok {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			s, ok := p.Info.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			switch {
			case atomicFields[v]:
				p.Reportf(sel.Sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; plain access races the atomic ones (use atomic.Load/Store)", v.Name())
			case isAtomicTyped(v.Type()):
				// Method calls on the field (v.Load()) and address-taking for
				// passing it along are the sanctioned shapes; anything else —
				// e.g. assigning the struct by value — copies the atomic.
				if !atomicUseOK(stack, sel) {
					p.Reportf(sel.Sel.Pos(), "field %s has atomic type %s; it must only be used via its methods, never copied or assigned", v.Name(), v.Type())
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicTyped reports whether t is one of sync/atomic's value types
// (atomic.Uint64, atomic.Int64, atomic.Bool, atomic.Pointer[T], ...).
func isAtomicTyped(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && !strings.HasPrefix(obj.Name(), "no")
}

// atomicUseOK reports whether the selector of an atomic-typed field sits in a
// sanctioned position: receiver of a method call (x.f.Load()) or operand of
// unary & (passing a pointer on).
func atomicUseOK(stack []ast.Node, sel *ast.SelectorExpr) bool {
	// stack[len-1] == sel; walk outward past parens.
	i := len(stack) - 2
	for i >= 0 {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			i--
			continue
		}
		break
	}
	if i < 0 {
		return false
	}
	switch outer := stack[i].(type) {
	case *ast.SelectorExpr:
		// x.f.Load — the outer selector is the method; require it to be a
		// method selection on sel.
		return outer.X == sel || isParenOf(outer.X, sel)
	case *ast.UnaryExpr:
		return outer.Op == token.AND
	}
	return false
}

func isParenOf(e ast.Expr, sel *ast.SelectorExpr) bool {
	return ast.Unparen(e) == sel
}
