// Package dist is a floatguard fixture; the analyzer only patrols the dist
// wire codec.
package dist

import "math"

func leakEncode(v float64) uint64 {
	return math.Float64bits(v) // want `math\.Float64bits outside a //optlint:floatboundary helper`
}

func leakDecode(bits uint64) float64 {
	return math.Float64frombits(bits) // want `math\.Float64frombits outside a //optlint:floatboundary helper`
}

// goodBoundary rejects non-finite values before the bit-cast, like the real
// appendF64.
//
//optlint:floatboundary
func goodBoundary(buf []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return buf
	}
	_ = math.Float64bits(v)
	return buf
}

// lazyBoundary is marked but never rejects anything.
//
//optlint:floatboundary
func lazyBoundary(v float64) uint64 { // want `marked //optlint:floatboundary but performs no non-finite rejection`
	return math.Float64bits(v)
}

// delegating forwards to a rejecting helper, which satisfies the contract.
//
//optlint:floatboundary
func delegating(buf []byte, v float64) []byte {
	return goodBoundary(buf, v)
}
