// Package directives is a directive-hygiene fixture. The want expectations
// ride inside the directive comments themselves: the analyzer ignores
// everything after the verb, while the test harness still reads the
// backquoted pattern.
package directives

import "time"

//optlint:nondetermnistic-ok typo'd verb -- want `unknown optlint directive "nondetermnistic-ok"`
var bootTime = time.Now()

// optlint:noalloc spaced form -- want `malformed directive: write //optlint:noalloc without a space`
func spaced() {}

// addAll is correctly marked: a function-doc directive draws no report.
//
//optlint:noalloc
func addAll(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	//optlint:noalloc misplaced inside a body -- want `//optlint:noalloc only has effect in a function's doc comment`
	return s
}

//optlint:floatboundary misplaced on a type -- want `//optlint:floatboundary only has effect in a function's doc comment`
type codec struct{}

func suppressionPlacementIsLegal() time.Time {
	// A line-scoped suppression is a known verb anywhere; placement is the
	// determinism analyzer's concern, not this one's.
	return time.Now() //optlint:nondeterministic-ok fixture
}
