// Package atomics is an atomicguard fixture.
package atomics

import "sync/atomic"

type counters struct {
	legacy uint64 // accessed via atomic.* package functions below
	v      atomic.Uint64
	plain  int
}

func (c *counters) Inc() {
	atomic.AddUint64(&c.legacy, 1)
}

func (c *counters) Racy() uint64 {
	return c.legacy // want `field legacy is accessed with sync/atomic elsewhere`
}

func (c *counters) RacyWrite() {
	c.legacy = 0 // want `field legacy is accessed with sync/atomic elsewhere`
}

func (c *counters) Typed() uint64 { return c.v.Load() }

func (c *counters) TypedPtr() *atomic.Uint64 { return &c.v }

func (c *counters) Copied() atomic.Uint64 {
	return c.v // want `field v has atomic type`
}

func (c *counters) PlainIsFine() int {
	c.plain++
	return c.plain
}

func fresh() *counters {
	// Composite literals are construction, not access.
	return &counters{plain: 1}
}
