// Package guard is a lockguard fixture.
package guard

import "sync"

type counter struct {
	mu sync.RWMutex
	n  int // guarded by mu
	// hits is documented with a doc comment instead of a trailing one.
	// guarded by mu
	hits int
	free bool // undocumented: the analyzer has no opinion
}

func (c *counter) Snapshot() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) RLocking() int {
	// RLock also counts as holding (the repo's RWMutex readers).
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.n
}

func (c *counter) bumpLocked() { c.n++ }

func (c *counter) Bare() int {
	return c.n // want `field guard\.n is documented .guarded by mu. but Bare neither locks mu`
}

func (c *counter) DocComment() int {
	return c.hits // want `field guard\.hits is documented .guarded by mu.`
}

func (c *counter) Unguarded() bool { return c.free }

func newCounter() *counter {
	// Composite-literal keys are init-before-share and exempt.
	return &counter{n: 1, hits: 2}
}

func (c *counter) LeakyGoroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		// The enclosing Lock is NOT held when this body runs.
		c.n++ // want `field guard\.n is documented .guarded by mu.`
	}()
}

func (c *counter) LockedClosure() {
	fn := func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
	fn()
}
