// Package deadstore is an unusedwrite fixture.
package deadstore

func deadFinalStore(a, b int) int {
	x := a + b
	_ = x
	x = a * b // want `value stored to "x" is never read`
	return a
}

func readAfterIsFine(a, b int) int {
	x := a
	x = a * b
	return x
}

func addrTakenIsFine(a int) int {
	x := a
	p := &x
	x = a + 1
	return *p
}

func capturedIsFine(a int) func() int {
	x := a
	x = a + 1
	return func() int { return x }
}

func loopsAreSkipped(a int) int {
	x := 0
	sink := 0
	for i := 0; i < a; i++ {
		sink = x
		x = i
	}
	return sink
}

func namedReturnIsFine() (x int) {
	x = 1
	return
}

func multiAssignIsFine(m map[int]int) {
	v, ok := m[1]
	v, ok = m[2]
	_, _ = v, ok
}
