// Package sim is a determinism-analyzer fixture; the name puts it in the
// result-affecting set.
package sim

import (
	"math/rand"
	"time"
)

func clock() time.Duration {
	t0 := time.Now() // want `time\.Now in result-affecting package sim`
	return time.Since(t0) // want `time\.Since in result-affecting package sim`
}

func annotatedAbove() time.Time {
	//optlint:nondeterministic-ok fixture: justified on the line above
	return time.Now()
}

func annotatedTrailing() time.Time {
	return time.Now() //optlint:nondeterministic-ok fixture: justified on the same line
}

func notLineScoped() time.Time {
	//optlint:nondeterministic-ok fixture: two lines up, must NOT suppress

	return time.Now() // want `time\.Now in result-affecting package sim`
}

func spacedDirectiveDoesNotSuppress() time.Time {
	// optlint:nondeterministic-ok fixture: spaced form, must NOT suppress
	return time.Now() // want `time\.Now in result-affecting package sim`
}

func globalRNG() float64 {
	return rand.Float64() // want `rand\.Float64 uses the process-global RNG`
}

func seededIsFine(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func mapAccumulates(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration assigns to non-loop-local state "total"`
		total += v
	}
	return total
}

func mapCollectsAnnotated(m map[string]int) []int {
	out := make([]int, 0, len(m))
	//optlint:nondeterministic-ok fixture: caller sorts the collected values
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func mapDeletes(m, dead map[string]int) {
	for k := range m { // want `map iteration deletes from non-loop-local state "dead"`
		delete(dead, k)
	}
}

func mapLoopLocalIsFine(m map[string]int) {
	for k := range m {
		n := len(k)
		n++
		_ = n
	}
}
