// Package shadowcase is a shadow fixture.
package shadowcase

import "errors"

func shadowedAndUsedAfter(flag bool) error {
	var err error
	if flag {
		err := errors.New("inner") // want `declaration of "err" shadows declaration at`
		_ = err
	}
	return err
}

func differentTypeIsFine(flag bool) error {
	var err error
	if flag {
		err := 1 // int shadowing error: almost certainly deliberate
		_ = err
	}
	return err
}

func notUsedAfterIsFine(flag bool) {
	var err error
	_ = err
	if flag {
		err := errors.New("inner")
		_ = err
	}
}

func reuseIsFine(flag bool) error {
	err := errors.New("outer")
	if flag {
		err = errors.New("reassigned, not shadowed")
	}
	return err
}
