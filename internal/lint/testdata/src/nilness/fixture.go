// Package nilcase is a nilness fixture.
package nilcase

type node struct {
	next *node
	val  int
}

func derefInNilBranch(n *node) *node {
	if n == nil {
		return n.next // want `field access on "n" inside the branch where it is provably nil`
	}
	return n
}

func derefInElse(n *node) int {
	if n != nil {
		return n.val
	} else {
		return (*n).val // want `dereference of "n" inside the branch where it is provably nil`
	}
}

func yodaCondition(n *node) *node {
	if nil == n {
		return n.next // want `field access on "n" inside the branch where it is provably nil`
	}
	return n
}

func reassignedFirstIsFine(n *node) *node {
	if n == nil {
		n = &node{}
		return n.next
	}
	return n
}

func nilSliceIndex(xs []int) int {
	if xs == nil {
		return xs[0] // want `index of "xs" inside the branch where it is provably nil`
	}
	return xs[0]
}

func nilFuncCall(f func() int) int {
	if f == nil {
		return f() // want `call of "f" inside the branch where it is provably nil`
	}
	return f()
}

func nilMapReadIsFine(m map[string]int) int {
	if m == nil {
		return m["missing"] // reading a nil map is defined behavior
	}
	return m["present"]
}

func methodOnNilIsFine(n *node) int {
	if n == nil {
		return n.depth()
	}
	return n.depth()
}

func (n *node) depth() int {
	if n == nil {
		return 0
	}
	return 1 + n.next.depth()
}
