// Package hot is a noalloc-analyzer fixture.
package hot

import "fmt"

type ring struct {
	buf []byte
	n   int
}

// bad trips every rule the analyzer enforces.
//
//optlint:noalloc
func bad(r *ring, label string, bs []byte) {
	f := func() int { return r.n } // want `closure capturing "r" allocates`
	_ = f
	_ = fmt.Sprintf("%d", r.n) // want `fmt\.Sprintf allocates and boxes`
	_ = any(r.n)               // want `conversion to interface type \S+ boxes`
	_ = string(bs)             // want `conversion between string and \[\]byte copies`
	_ = []byte(label)          // want `conversion between string and \[\]byte copies`
	_ = label + "!"            // want `string concatenation allocates`
	label += "!"               // want `string concatenation allocates`
	r.buf = append(r.buf, 1)   // want `append may grow its backing array`
	_ = make([]byte, 4)        // want `make allocates`
	_ = new(ring)              // want `new allocates`
	_ = &ring{}                // want `address of composite literal allocates`
}

// clean stays within the contract: arithmetic, field writes, calls to
// non-fmt functions, and capture-free literals.
//
//optlint:noalloc
func clean(r *ring, b byte) {
	r.n++
	if r.n < len(r.buf) {
		r.buf[r.n] = b
	}
	g := func(x int) int { return x * 2 }
	r.n = g(r.n)
	const tag = "a" + "b" // constant folding, no runtime concat
	_ = tag
}

// unmarked may allocate freely: the analyzer only patrols marked functions.
func unmarked() []byte {
	s := fmt.Sprintf("%d", 42)
	return append([]byte(s), make([]byte, 8)...)
}
