package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive keeps the escape hatches honest. A typo'd directive
// (//optlint:nondetermnistic-ok) or a spaced one (// optlint:noalloc) would
// otherwise silently fail to suppress or mark anything, and the invariant it
// was meant to document would go unenforced in the opposite direction the
// author expected. Reported:
//
//   - unknown verbs, with the list of known ones;
//   - the spaced form `// optlint:...`, which Go tooling (and this suite)
//     does not treat as a directive;
//   - function-marker verbs (noalloc, floatboundary) placed anywhere other
//     than a function's doc comment, where they have no effect.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "every //optlint: comment is well-formed, known, and placed where it has effect",
	Run:  runDirective,
}

func runDirective(p *Pass) error {
	// Positions of comments that belong to some function's doc block.
	funcDoc := map[token.Pos]bool{}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				funcDoc[c.Slash] = true
			}
		}
	}
	known := map[string]bool{}
	for _, v := range KnownVerbs {
		known[v] = true
	}
	for _, d := range p.directives() {
		switch {
		case d.spaced:
			p.Reportf(d.pos, "malformed directive: write //optlint:%s without a space — the spaced form is ignored by the suite", d.verb)
		case !known[d.verb]:
			p.Reportf(d.pos, "unknown optlint directive %q (known: %s)", d.verb, strings.Join(KnownVerbs, ", "))
		case (d.verb == VerbNoalloc || d.verb == VerbFloatBoundary) && !funcDoc[d.pos]:
			p.Reportf(d.pos, "//optlint:%s only has effect in a function's doc comment", d.verb)
		}
	}
	return nil
}
