package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// ImportPath is the package's canonical import path.
	ImportPath string
	// Dir is the package's source directory.
	Dir string
	// Fset maps positions (shared across one Load call).
	Fset *token.FileSet
	// Files are the parsed non-test sources, comments included.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds type-checker facts for the files.
	Info *types.Info
}

// listedPackage mirrors the `go list -json` fields the loader consumes.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	DepOnly    bool
}

// goList runs `go list -export -deps -json` in dir and decodes the stream.
// Export data comes straight out of the build cache, so the only external
// tool the suite needs is the Go toolchain itself.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Imports,Export,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %v: %v", patterns, err)
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPackage
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup builds the gc-importer lookup function over an import-path →
// export-file map.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok || f == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}
}

// typeCheck parses and type-checks one package from source against export
// data for its dependencies.
func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, err)
	}
	return &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Load resolves patterns (e.g. "./...") with the go toolchain, parses the
// matched packages from source, and type-checks them against build-cache
// export data. Test files are not analyzed: the invariants the suite enforces
// are about result-affecting production code, and tests legitimately use wall
// clocks and the global RNG.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	var pkgs []*Package
	for _, p := range targets {
		pkg, err := typeCheck(fset, imp, p.ImportPath, p.Dir, p.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// testExports caches import-path → export-file resolutions for the test
// harness, so repeated fixture loads pay one `go list` per new import set.
var testExports sync.Map

// loadTestPackage loads every .go file in dir as one package — the fixture
// shape used by the analyzer test suites (testdata/src/<analyzer>/<pkg>).
// Imports are resolved through the build cache like Load does.
func loadTestPackage(dir string) (*Package, error) {
	entries, rdErr := os.ReadDir(dir)
	if rdErr != nil {
		return nil, rdErr
	}
	fset := token.NewFileSet()
	var files []*ast.File
	var goFiles []string
	imports := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		goFiles = append(goFiles, path)
		for _, spec := range f.Imports {
			p, err := strconv.Unquote(spec.Path.Value)
			if err != nil {
				return nil, err
			}
			imports[p] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}

	var missing []string
	for p := range imports {
		if _, ok := testExports.Load(p); !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		listed, err := goList(dir, missing...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				testExports.Store(p.ImportPath, p.Export)
			}
		}
	}
	exports := map[string]string{}
	testExports.Range(func(k, v any) bool {
		exports[k.(string)] = v.(string)
		return true
	})

	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	name := files[0].Name.Name
	tpkg, err := conf.Check(name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking fixture %s: %v", dir, err)
	}
	return &Package{
		ImportPath: name,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
