package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Nilness is a stdlib-only stand-in for the x/tools nilness pass, reduced to
// its highest-confidence case: inside a branch that is only reached when a
// variable is known to be nil (`if x == nil { ... }`, or the else arm of
// `if x != nil`), the variable is dereferenced — a guaranteed panic.
//
// Reported dereference shapes: field selection through a nil pointer,
// explicit *x, indexing a nil slice, and calling a nil function value.
// Scanning a branch stops at the first reassignment of the variable (it may
// no longer be nil) and does not descend into nested function literals
// (which run later, when the variable may have changed). Method calls are
// not flagged: methods on nil receivers are legal and sometimes deliberate.
var Nilness = &Analyzer{
	Name: "nilness",
	Doc:  "dereference of a variable inside the branch that proves it nil",
	Run:  runNilness,
}

func runNilness(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			v, id := nilComparedVar(p, ifs.Cond)
			if v == nil {
				return true
			}
			switch {
			case isEq(ifs.Cond):
				checkNilBranch(p, ifs.Body, v, id.Name)
			default:
				if blk, ok := ifs.Else.(*ast.BlockStmt); ok {
					checkNilBranch(p, blk, v, id.Name)
				}
			}
			return true
		})
	}
	return nil
}

// nilComparedVar matches `x == nil` / `x != nil` (either operand order) where
// x is a plain identifier of pointer, slice, func or map type.
func nilComparedVar(p *Pass, cond ast.Expr) (*types.Var, *ast.Ident) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, nil
	}
	x := ast.Unparen(be.X)
	y := ast.Unparen(be.Y)
	if isNilIdent(p, x) {
		x, y = y, x
	} else if !isNilIdent(p, y) {
		return nil, nil
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, nil
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok {
		return nil, nil
	}
	switch v.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Signature, *types.Map:
		return v, id
	}
	return nil, nil
}

func isEq(cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	return ok && be.Op == token.EQL
}

func isNilIdent(p *Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := p.Info.Uses[id].(*types.Nil)
	return isNil
}

// checkNilBranch walks the known-nil branch, reporting dereferences of v
// until v is reassigned.
func checkNilBranch(p *Pass, body *ast.BlockStmt, v *types.Var, name string) {
	reassigned := false
	refersToV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && p.Info.Uses[id] == v
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if reassigned {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if refersToV(lhs) {
					reassigned = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if refersToV(n.X) {
				if s, ok := p.Info.Selections[n]; ok && s.Kind() == types.FieldVal {
					if _, ptr := v.Type().Underlying().(*types.Pointer); ptr {
						p.Reportf(n.Pos(), "field access on %q inside the branch where it is provably nil", name)
					}
				}
			}
		case *ast.StarExpr:
			if refersToV(n.X) {
				p.Reportf(n.Pos(), "dereference of %q inside the branch where it is provably nil", name)
			}
		case *ast.IndexExpr:
			if refersToV(n.X) {
				if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
					p.Reportf(n.Pos(), "index of %q inside the branch where it is provably nil", name)
				}
			}
		case *ast.CallExpr:
			if refersToV(n.Fun) {
				if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
					p.Reportf(n.Pos(), "call of %q inside the branch where it is provably nil", name)
				}
			}
		}
		return true
	})
}
