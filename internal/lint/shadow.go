package lint

import (
	"go/token"
	"go/types"
)

// Shadow is a stdlib-only reimplementation of the x/tools shadow pass (which
// stock `go vet` does not run). It reports an inner declaration that shadows
// an outer variable of the identical type when the outer variable is still
// used after the inner scope ends — the configuration where a `:=` that was
// meant to be `=` silently discards a value (the classic shadowed-err bug).
//
// Deliberately narrower than x/tools shadow to stay quiet: package-level
// shadows and shadows of differently-typed variables are not reported.
var Shadow = &Analyzer{
	Name: "shadow",
	Doc:  "inner declaration shadows a same-typed outer variable that is used after the inner scope",
	Run:  runShadow,
}

func runShadow(p *Pass) error {
	pkgScope := p.Types.Scope()
	for id, obj := range p.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || id.Name == "_" {
			continue
		}
		inner := pkgScope.Innermost(v.Pos())
		if inner == nil || inner == pkgScope || inner.Parent() == nil {
			continue
		}
		_, outerObj := inner.Parent().LookupParent(id.Name, v.Pos())
		outer, ok := outerObj.(*types.Var)
		if !ok || outer == v || outer.IsField() {
			continue
		}
		// Skip package-level shadows (idiomatic, and the package variable is
		// trivially "used later" somewhere).
		if outer.Parent() == pkgScope || outer.Parent() == types.Universe {
			continue
		}
		if !types.Identical(v.Type(), outer.Type()) {
			continue
		}
		if !usedAfter(p, outer, inner.End()) {
			continue
		}
		p.Reportf(id.Pos(), "declaration of %q shadows declaration at %s; the outer variable is used after this scope ends", id.Name, p.Fset.Position(outer.Pos()))
	}
	return nil
}

// usedAfter reports whether obj is referenced at any position after end.
func usedAfter(p *Pass, obj types.Object, end token.Pos) bool {
	for id, use := range p.Info.Uses {
		if use == obj && id.Pos() > end {
			return true
		}
	}
	return false
}
