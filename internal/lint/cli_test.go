package lint

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runMain(args ...string) (code int, stdout, stderr string) {
	var out, errw bytes.Buffer
	code = Main(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestMainUnitcheckerProbes(t *testing.T) {
	code, out, _ := runMain("-V=full")
	if code != 0 || !strings.Contains(out, " version devel ") || !strings.Contains(out, "buildID=") {
		t.Errorf("-V=full: code=%d out=%q", code, out)
	}
	code, out, _ = runMain("-flags")
	if code != 0 || strings.TrimSpace(out) != "[]" {
		t.Errorf("-flags: code=%d out=%q", code, out)
	}
}

func TestMainListAndFlagErrors(t *testing.T) {
	code, out, _ := runMain("-list")
	if code != 0 {
		t.Fatalf("-list: code=%d", code)
	}
	for _, a := range All() {
		if !strings.Contains(out, a.Name) {
			t.Errorf("-list output missing %q", a.Name)
		}
	}
	if code, _, stderr := runMain("-only", "bogus"); code != 2 || !strings.Contains(stderr, "bogus") {
		t.Errorf("-only bogus: code=%d stderr=%q", code, stderr)
	}
	if code, _, _ := runMain("-nonsense"); code != 2 {
		t.Errorf("bad flag: code=%d", code)
	}
	if code, _, _ := runMain("-C", filepath.Join(t.TempDir(), "missing"), "./..."); code != 2 {
		t.Errorf("bad -C dir: code=%d", code)
	}
}

// TestDogfoodRepoClean is the acceptance gate: the suite run over the whole
// repository reports nothing, because every finding was fixed or annotated.
func TestDogfoodRepoClean(t *testing.T) {
	code, out, stderr := runMain("-C", filepath.Join("..", ".."), "./...")
	if code != 0 {
		t.Fatalf("optlint ./... over the repo: code=%d\nstdout:\n%s\nstderr:\n%s", code, out, stderr)
	}
	if out != "" {
		t.Errorf("optlint ./... over the repo printed diagnostics despite exit 0:\n%s", out)
	}
}

// writeDirtyModule creates a throwaway module whose package sim trips the
// determinism analyzer, and returns its root.
func writeDirtyModule(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	mustWrite := func(rel, body string) {
		t.Helper()
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("go.mod", "module dirtymod\n\ngo 1.24\n")
	mustWrite("sim/sim.go", `package sim

import "time"

func Stamp() int64 { return time.Now().UnixNano() }
`)
	return root
}

func TestMainReportsFindings(t *testing.T) {
	root := writeDirtyModule(t)
	code, out, stderr := runMain("-C", root, "./...")
	if code != 1 {
		t.Fatalf("code=%d stdout=%q stderr=%q", code, out, stderr)
	}
	if !strings.Contains(out, "wall clock") && !strings.Contains(out, "time.Now") {
		t.Errorf("diagnostic output does not mention the clock: %q", out)
	}
	if !strings.Contains(stderr, "1 finding(s)") {
		t.Errorf("stderr summary missing: %q", stderr)
	}
	// -only with an analyzer that cannot fire here must pass.
	if code, _, _ := runMain("-C", root, "-only", "noalloc", "./..."); code != 0 {
		t.Errorf("-only noalloc on the dirty module: code=%d", code)
	}
}

// buildVetCfg shapes a cmd/go-style vet.cfg for the ./sim package of the
// dirty module, with export data resolved through the build cache.
func buildVetCfg(t *testing.T, root string) vetConfig {
	t.Helper()
	listed, err := goList(root, "./sim")
	if err != nil {
		t.Fatal(err)
	}
	cfg := vetConfig{
		ID:          "dirtymod/sim",
		ImportMap:   map[string]string{},
		PackageFile: map[string]string{},
	}
	for _, p := range listed {
		if p.Export != "" {
			cfg.PackageFile[p.ImportPath] = p.Export
		}
		if p.DepOnly {
			cfg.ImportMap[p.ImportPath] = p.ImportPath
			continue
		}
		cfg.Dir = p.Dir
		cfg.ImportPath = p.ImportPath
		for _, f := range p.GoFiles {
			cfg.GoFiles = append(cfg.GoFiles, filepath.Join(p.Dir, f))
		}
	}
	return cfg
}

func writeVetCfg(t *testing.T, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "vet.cfg")
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunVetCfg(t *testing.T) {
	root := writeDirtyModule(t)
	cfg := buildVetCfg(t, root)
	cfg.VetxOutput = filepath.Join(t.TempDir(), "sim.vetx")

	var stderr bytes.Buffer
	code := runVetCfg(writeVetCfg(t, cfg), &stderr)
	if code != 1 {
		t.Fatalf("code=%d stderr=%q", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "sim.go:5:") {
		t.Errorf("diagnostic position missing from stderr: %q", stderr.String())
	}
	if _, err := os.Stat(cfg.VetxOutput); err != nil {
		t.Errorf("facts file not written: %v", err)
	}
}

func TestRunVetCfgVariants(t *testing.T) {
	root := writeDirtyModule(t)
	base := buildVetCfg(t, root)

	t.Run("vetx-only", func(t *testing.T) {
		cfg := base
		cfg.VetxOnly = true
		cfg.VetxOutput = filepath.Join(t.TempDir(), "sim.vetx")
		var stderr bytes.Buffer
		if code := runVetCfg(writeVetCfg(t, cfg), &stderr); code != 0 {
			t.Errorf("code=%d stderr=%q", code, stderr.String())
		}
		if _, err := os.Stat(cfg.VetxOutput); err != nil {
			t.Errorf("facts file not written: %v", err)
		}
	})
	t.Run("in-package-test-files-filtered", func(t *testing.T) {
		// cmd/go folds _test.go files into the base unit; they must not be
		// analyzed even though production files in the same unit still are.
		cfg := base
		testFile := filepath.Join(root, "sim", "clock_test.go")
		body := "package sim\n\nimport \"time\"\n\nfunc stampForTest() int64 { return time.Now().UnixNano() }\n"
		if err := os.WriteFile(testFile, []byte(body), 0o666); err != nil {
			t.Fatal(err)
		}
		cfg.GoFiles = append(append([]string{}, cfg.GoFiles...), testFile)
		var stderr bytes.Buffer
		if code := runVetCfg(writeVetCfg(t, cfg), &stderr); code != 1 {
			t.Errorf("code=%d stderr=%q", code, stderr.String())
		}
		if strings.Contains(stderr.String(), "clock_test.go") {
			t.Errorf("test file was analyzed: %q", stderr.String())
		}
	})
	t.Run("test-variant-skipped", func(t *testing.T) {
		cfg := base
		cfg.ImportPath = "dirtymod/sim [dirtymod/sim.test]"
		var stderr bytes.Buffer
		if code := runVetCfg(writeVetCfg(t, cfg), &stderr); code != 0 {
			t.Errorf("test variant analyzed: code=%d stderr=%q", code, stderr.String())
		}
	})
	t.Run("succeed-on-typecheck-failure", func(t *testing.T) {
		cfg := base
		cfg.GoFiles = []string{filepath.Join(root, "does-not-exist.go")}
		cfg.SucceedOnTypecheckFailure = true
		var stderr bytes.Buffer
		if code := runVetCfg(writeVetCfg(t, cfg), &stderr); code != 0 {
			t.Errorf("code=%d stderr=%q", code, stderr.String())
		}
		cfg.SucceedOnTypecheckFailure = false
		if code := runVetCfg(writeVetCfg(t, cfg), &stderr); code != 2 {
			t.Errorf("typecheck failure not fatal: code=%d", code)
		}
	})
	t.Run("bad-cfg", func(t *testing.T) {
		var stderr bytes.Buffer
		if code := runVetCfg(filepath.Join(t.TempDir(), "missing.cfg"), &stderr); code != 2 {
			t.Errorf("missing cfg: code=%d", code)
		}
		path := filepath.Join(t.TempDir(), "garbage.cfg")
		if err := os.WriteFile(path, []byte("{"), 0o666); err != nil {
			t.Fatal(err)
		}
		if code := runVetCfg(path, &stderr); code != 2 {
			t.Errorf("garbage cfg: code=%d", code)
		}
	})
}

// TestGoVetVettool exercises the real `go vet -vettool` integration end to
// end: clean over this repository, failing over the dirty module.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet over the repo")
	}
	repoRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	tool := filepath.Join(t.TempDir(), "optlint")
	build := exec.Command("go", "build", "-o", tool, "./cmd/optlint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building optlint: %v\n%s", err, out)
	}

	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = repoRoot
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool over the repo: %v\n%s", err, out)
	}

	root := writeDirtyModule(t)
	vet = exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool over the dirty module passed:\n%s", out)
	}
	if !strings.Contains(string(out), "wall clock") && !strings.Contains(string(out), "time.Now") {
		t.Errorf("vet output does not carry the diagnostic: %s", out)
	}
}
