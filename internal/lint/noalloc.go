package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Noalloc enforces the zero-allocation contract on functions marked
// //optlint:noalloc — the per-draw hot paths whose AllocsPerRun budget tests
// (sched, sim, noise, stats, obs) pin them at zero allocations. The budget
// tests catch a regression at test time on the happy path they measure; this
// analyzer catches it at compile review time on every path, including panic
// and error branches the budgets never execute.
//
// Inside a marked function the following constructs are reported:
//
//   - function literals that capture variables (the closure header
//     escapes);
//   - explicit conversions to interface types, and []byte/[]rune ↔ string
//     conversions (boxing / copying);
//   - non-constant string concatenation;
//   - any call into package fmt (formatting allocates, and boxes its
//     arguments);
//   - append (growth is unbounded; hot-path buffers are preallocated by
//     their owners);
//   - make, new, and taking the address of a composite literal.
//
// There is deliberately no line-scoped escape hatch: if a function needs one
// of these constructs, it does not belong on the zero-alloc hot path — move
// the construct to the caller or drop the marker.
var Noalloc = &Analyzer{
	Name: "noalloc",
	Doc:  "forbid allocation-forcing constructs in functions marked //optlint:noalloc",
	Run:  runNoalloc,
}

func runNoalloc(p *Pass) error {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !p.FuncMarked(fd, VerbNoalloc) {
				continue
			}
			checkNoalloc(p, fd)
		}
	}
	return nil
}

func checkNoalloc(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if name, ok := capturesVariable(p, fd, n); ok {
				p.Reportf(n.Pos(), "closure capturing %q allocates; noalloc functions must not close over variables", name)
			}
		case *ast.CallExpr:
			checkNoallocCall(p, n)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isNonConstString(p, n) {
				p.Reportf(n.Pos(), "string concatenation allocates; preformat outside the hot path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(p.Info.TypeOf(n.Lhs[0])) {
				p.Reportf(n.Pos(), "string concatenation allocates; preformat outside the hot path")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					p.Reportf(n.Pos(), "address of composite literal allocates")
				}
			}
		}
		return true
	})
}

// checkNoallocCall classifies one call inside a noalloc body: a conversion
// that boxes or copies, a builtin that allocates, or a fmt call.
func checkNoallocCall(p *Pass, call *ast.CallExpr) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		dst := tv.Type
		src := p.Info.TypeOf(call.Args[0])
		switch {
		case types.IsInterface(dst) && src != nil && !types.IsInterface(src):
			p.Reportf(call.Pos(), "conversion to interface type %s boxes its operand and allocates", types.TypeString(dst, types.RelativeTo(p.Types)))
		case isStringType(dst) && src != nil && isByteOrRuneSlice(src):
			p.Reportf(call.Pos(), "conversion between string and %s copies and allocates", src)
		case isByteOrRuneSlice(dst) && src != nil && isStringType(src):
			p.Reportf(call.Pos(), "conversion between string and %s copies and allocates", dst)
		}
		return
	}
	switch obj := calleeFunc(p.Info, call).(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "append":
			p.Reportf(call.Pos(), "append may grow its backing array; hot-path buffers must be preallocated by the caller")
		case "make", "new":
			p.Reportf(call.Pos(), "%s allocates", obj.Name())
		}
	case *types.Func:
		if obj.Pkg() != nil && obj.Pkg().Path() == "fmt" {
			p.Reportf(call.Pos(), "fmt.%s allocates and boxes its arguments", obj.Name())
		}
	}
}

// capturesVariable reports the first variable the literal closes over: a
// non-field variable declared inside the enclosing function but outside the
// literal itself.
func capturesVariable(p *Pass, fd *ast.FuncDecl, lit *ast.FuncLit) (string, bool) {
	var name string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fd.Pos() && v.Pos() < lit.Pos() {
			name = v.Name()
			return false
		}
		return true
	})
	return name, name != ""
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune)
}

// isNonConstString reports a string-typed expression that the compiler
// cannot fold to a constant.
func isNonConstString(p *Pass, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && isStringType(tv.Type) && tv.Value == nil
}
