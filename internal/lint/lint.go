// Package lint is the repo's custom static-analysis suite (optlint): a small
// go/analysis-shaped framework plus repo-specific analyzers that mechanically
// enforce the invariants every layer of this codebase is written against —
// bitwise determinism of result-affecting code, zero-allocation hot paths,
// non-finite rejection at the wire boundary, and documented lock/atomic
// discipline.
//
// The framework is deliberately stdlib-only (go/ast, go/types, go/importer):
// the build environment has no module proxy access, so golang.org/x/tools
// cannot be vendored. The Analyzer/Pass/Diagnostic shape mirrors
// golang.org/x/tools/go/analysis closely enough that porting the analyzers
// onto the real framework later is mechanical; package loading reuses the
// toolchain itself (`go list -export`) and the stdlib gc export-data
// importer, which is exactly how x/tools' loader works underneath.
//
// Analyzers (see docs/LINT.md for the full rule catalog):
//
//   - determinism: no wall-clock reads, no process-global RNG, and no
//     map-order-dependent writes in result-affecting packages.
//   - noalloc: functions marked //optlint:noalloc contain no
//     allocation-forcing constructs.
//   - floatguard: float64 bit-casts in package dist only inside
//     //optlint:floatboundary helpers that reject non-finite values.
//   - lockguard: fields documented `// guarded by mu` are only touched by
//     functions that lock mu (or are named *Locked).
//   - atomicguard: fields accessed via sync/atomic are never read or
//     written plainly.
//   - directive: every //optlint: comment is well-formed, known, and
//     placed where it has effect.
//   - shadow, unusedwrite, nilness: stdlib-only reimplementations of the
//     x/tools passes absent from stock `go vet`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -only filters.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run performs the check on one package, reporting findings through the
	// pass.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message describes the finding.
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the pass.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression and object facts.
	Info *types.Info

	diags *[]Diagnostic
	dirs  []directive
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Directive verbs the suite understands. Anything else after "//optlint:" is
// itself a finding (see the directive analyzer).
const (
	// VerbNondeterministicOK suppresses a determinism finding on its own
	// line or the line directly below (line-scoped, never file- or
	// function-scoped).
	VerbNondeterministicOK = "nondeterministic-ok"
	// VerbNoalloc marks a function whose body must contain no
	// allocation-forcing constructs. It belongs in the function's doc
	// comment.
	VerbNoalloc = "noalloc"
	// VerbFloatBoundary marks a dist helper audited to reject non-finite
	// floats around a bit-level (de)serialization. It belongs in the
	// function's doc comment.
	VerbFloatBoundary = "floatboundary"
)

// KnownVerbs lists every directive verb the suite accepts.
var KnownVerbs = []string{VerbNondeterministicOK, VerbNoalloc, VerbFloatBoundary}

// directive is one parsed //optlint: comment.
type directive struct {
	verb   string // the token after the colon
	spaced bool   // written with a space ("// optlint:"), which Go tooling does not treat as a directive
	file   string
	line   int
	pos    token.Pos
}

// directiveRx matches optlint directive comments, tolerating (and flagging)
// the malformed spaced form.
var directiveRx = regexp.MustCompile(`^//(\s*)optlint:([^ \t]*)`)

// directives scans (once) every line comment in the pass for //optlint:
// markers.
func (p *Pass) directives() []directive {
	if p.dirs != nil {
		return p.dirs
	}
	p.dirs = []directive{} // non-nil: scan exactly once
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Slash)
				p.dirs = append(p.dirs, directive{
					verb:   m[2],
					spaced: m[1] != "",
					file:   pos.Filename,
					line:   pos.Line,
					pos:    c.Slash,
				})
			}
		}
	}
	return p.dirs
}

// Suppressed reports whether a finding at pos is covered by a well-formed
// directive with the given verb on the same line or the line directly above.
// Suppression is deliberately line-scoped: a directive never silences a whole
// function or file.
func (p *Pass) Suppressed(pos token.Pos, verb string) bool {
	at := p.Fset.Position(pos)
	for _, d := range p.directives() {
		if d.spaced || d.verb != verb || d.file != at.Filename {
			continue
		}
		if d.line == at.Line || d.line == at.Line-1 {
			return true
		}
	}
	return false
}

// FuncMarked reports whether fd's doc comment carries a well-formed
// //optlint:<verb> directive.
func (p *Pass) FuncMarked(fd *ast.FuncDecl, verb string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if m := directiveRx.FindStringSubmatch(c.Text); m != nil && m[1] == "" && m[2] == verb {
			return true
		}
	}
	return false
}

// rootIdent unwraps selectors, indexing, derefs and parens down to the base
// identifier of an lvalue (c in c.queue[i].x), or nil if the base is not an
// identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// calleeFunc resolves a call expression to the function or builtin object it
// invokes (nil for indirect calls through variables and for conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) types.Object {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	switch obj := info.Uses[id].(type) {
	case *types.Func, *types.Builtin:
		return obj
	}
	return nil
}

// isPkgFunc reports whether obj is the named function of the named package.
func isPkgFunc(obj types.Object, pkgPath, name string) bool {
	fn, ok := obj.(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// All returns the full analyzer suite in reporting order: the five
// repo-specific invariant checks, the directive hygiene check, and the three
// standard passes absent from stock `go vet`.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism,
		Noalloc,
		Floatguard,
		Lockguard,
		Atomicguard,
		Directive,
		Shadow,
		Unusedwrite,
		Nilness,
	}
}

// byName resolves a comma-separated -only list against All.
func byName(names string) ([]*Analyzer, error) {
	all := All()
	if names == "" {
		return all, nil
	}
	index := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		index[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunAnalyzers runs every analyzer over every package and returns the
// findings sorted by position. Analyzers that iterate maps internally stay
// deterministic because the final ordering is imposed here.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Types:    pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", pkg.ImportPath, a.Name, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
