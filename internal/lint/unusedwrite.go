package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Unusedwrite is a stdlib-only stand-in for the x/tools unusedwrite pass: it
// reports a store to a local variable that nothing ever reads — the value is
// computed, assigned, and discarded.
//
// The check is deliberately conservative, using source order as the proxy for
// execution order. A function is skipped entirely if it contains a loop,
// branch statement or label (back edges make source order lie); a variable is
// skipped if its address is taken, if it is captured by a function literal,
// or if it is a named return (the return reads it implicitly); and only
// single-LHS plain `=` stores are candidates (removing one arm of a
// multi-assignment would change the statement's meaning, and `:=` stores
// that are never read are already a compile error). What is left is the
// unambiguous case: a store to a plain local after which the variable is
// never mentioned again.
var Unusedwrite = &Analyzer{
	Name: "unusedwrite",
	Doc:  "store to a local variable that is never subsequently read",
	Run:  runUnusedwrite,
}

func runUnusedwrite(p *Pass) error {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkUnusedWrites(p, fd)
		}
	}
	return nil
}

func checkUnusedWrites(p *Pass, fd *ast.FuncDecl) {
	skipAll := false
	skipVar := map[*types.Var]bool{}
	if fd.Type.Results != nil {
		for _, r := range fd.Type.Results.List {
			for _, name := range r.Names {
				if v, ok := p.Info.Defs[name].(*types.Var); ok {
					skipVar[v] = true
				}
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.BranchStmt, *ast.LabeledStmt:
			skipAll = true
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if v, ok := p.Info.Uses[id].(*types.Var); ok {
						skipVar[v] = true
					}
				}
			}
		case *ast.FuncLit:
			// Anything mentioned inside a closure may run at any time.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if v, ok := p.Info.Uses[id].(*types.Var); ok {
						skipVar[v] = true
					}
				}
				return true
			})
			return false
		}
		return !skipAll
	})
	if skipAll {
		return
	}

	local := func(id *ast.Ident) *types.Var {
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || skipVar[v] {
			return nil
		}
		if v.Pos() < fd.Pos() || v.Pos() > fd.End() {
			return nil
		}
		return v
	}

	// Classify every mention: plain-`=` LHS idents are writes; every other
	// use is a read. Single-LHS writes are the dead-store candidates.
	writeIdent := map[*ast.Ident]bool{}
	type candidate struct {
		v    *types.Var
		name string
		pos  token.Pos
	}
	var candidates []candidate
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			v := local(id)
			if v == nil {
				continue
			}
			writeIdent[id] = true
			if len(as.Lhs) == 1 {
				candidates = append(candidates, candidate{v, id.Name, id.Pos()})
			}
		}
		return true
	})
	if len(candidates) == 0 {
		return
	}
	lastRead := map[*types.Var]token.Pos{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || writeIdent[id] {
			return true
		}
		if v := local(id); v != nil && id.Pos() > lastRead[v] {
			lastRead[v] = id.Pos()
		}
		return true
	})
	for _, c := range candidates {
		if lastRead[c.v] <= c.pos {
			p.Reportf(c.pos, "value stored to %q is never read", c.name)
		}
	}
}
