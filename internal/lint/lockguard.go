package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// Lockguard enforces documented mutex discipline. A struct field whose
// declaration carries a `// guarded by <mu>` comment (the convention used by
// dist.Coordinator, dist.remoteWorker and jobs.Manager) may only be read or
// written by a function that demonstrably holds that mutex:
//
//   - the enclosing function contains a <recv>.<mu>.Lock() or
//     <recv>.<mu>.RLock() call, or
//   - the enclosing function's name ends in "Locked" — the repo-wide naming
//     convention for must-hold-the-lock helpers, whose callers are checked
//     at their own call sites.
//
// The check is intra-package and syntactic: it does not do inter-procedural
// lock-set analysis, so a Lock anywhere in the function body (even on a
// branch) counts as holding. That makes it a reviewable documentation
// enforcer rather than a race detector — `go test -race` remains the dynamic
// backstop. Composite-literal keys are exempt: constructors initialize
// guarded fields before the value is shared.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields documented `// guarded by mu` only touched under that mutex or in *Locked helpers",
	Run:  runLockguard,
}

var guardedByRx = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_.]*)`)

// guardedField records one `// guarded by <mu>` declaration.
type guardedField struct {
	field *types.Var
	mu    string // mutex field name, e.g. "mu"
}

func runLockguard(p *Pass) error {
	guarded := collectGuardedFields(p)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockguardFunc(p, fd, guarded)
		}
	}
	return nil
}

// collectGuardedFields scans struct declarations for fields documented
// `// guarded by <mu>` — in the field's doc comment above it, or in a
// trailing comment on the field's line. A single field line may declare
// several names; the comment covers all of them.
func collectGuardedFields(p *Pass) map[*types.Var]string {
	guarded := map[*types.Var]string{}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				mu := ""
				if fld.Doc != nil {
					if m := guardedByRx.FindStringSubmatch(fld.Doc.Text()); m != nil {
						mu = m[1]
					}
				}
				if mu == "" && fld.Comment != nil {
					if m := guardedByRx.FindStringSubmatch(fld.Comment.Text()); m != nil {
						mu = m[1]
					}
				}
				if mu == "" {
					continue
				}
				for _, name := range fld.Names {
					if v, ok := p.Info.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return false
		})
	}
	return guarded
}

func checkLockguardFunc(p *Pass, fd *ast.FuncDecl, guarded map[*types.Var]string) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	held := heldMutexes(p, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Closures (goroutine bodies) are checked on their own: locks
			// taken inside the literal count, locks in the enclosing
			// function generally aren't held when the goroutine runs.
			checkLockguardBlock(p, fd, n.Body, heldMutexesIn(p, n.Body), guarded)
			return false
		case *ast.CompositeLit:
			// Constructor initialization happens before the value is shared.
			return false
		case *ast.SelectorExpr:
			reportUnguarded(p, fd, n, held, guarded)
		}
		return true
	})
}

// checkLockguardBlock checks one closure body with its own held set.
func checkLockguardBlock(p *Pass, fd *ast.FuncDecl, body *ast.BlockStmt, held map[string]bool, guarded map[*types.Var]string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			return false
		case *ast.SelectorExpr:
			reportUnguarded(p, fd, n, held, guarded)
		}
		return true
	})
}

func reportUnguarded(p *Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr, held map[string]bool, guarded map[*types.Var]string) {
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	mu, ok := guarded[v]
	if !ok || held[mu] {
		return
	}
	p.Reportf(sel.Sel.Pos(), "field %s.%s is documented `guarded by %s` but %s neither locks %s nor is named *Locked", fieldOwner(v), v.Name(), mu, fd.Name.Name, mu)
}

// fieldOwner names the struct type a field belongs to, best-effort.
func fieldOwner(v *types.Var) string {
	// The field's parent scope doesn't name the struct; fall back to the
	// package-qualified field position being enough context and just use the
	// package name.
	if v.Pkg() != nil {
		return v.Pkg().Name()
	}
	return "?"
}

// heldMutexes scans a function body (excluding nested function literals) for
// <x>.<mu>.Lock() / RLock() calls and returns the set of mutex field names
// locked anywhere in it.
func heldMutexes(p *Pass, fd *ast.FuncDecl) map[string]bool {
	return heldMutexesIn(p, fd.Body)
}

func heldMutexesIn(p *Pass, body *ast.BlockStmt) map[string]bool {
	held := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		// sel.X is <something>.<mu> or <mu>; record the final field name.
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			held[x.Sel.Name] = true
		case *ast.Ident:
			held[x.Name] = true
		}
		return true
	})
	return held
}
