package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Main is the optlint driver, shared by cmd/optlint and the tests. It speaks
// two protocols:
//
//   - standalone: `optlint [-only a,b] [packages]` loads the patterns
//     (default ./...) with the go toolchain and prints findings;
//   - vettool: when invoked by `go vet -vettool=$(which optlint)`, the
//     arguments follow cmd/go's unitchecker protocol (-V=full, -flags, or a
//     single *.cfg file per package) and the toolchain supplies the
//     type-checking inputs.
//
// Exit codes: 0 clean, 1 findings, 2 usage or load error.
func Main(args []string, stdout, stderr io.Writer) int {
	// Unitchecker protocol first: exact argument shapes, before flag parsing.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// cmd/go hashes this line into its build cache key and insists on
			// the `<tool> version devel ... buildID=<id>` shape. Identify the
			// build by the executable's content hash so editing an analyzer
			// invalidates cached vet results.
			fmt.Fprintln(stdout, versionLine())
			return 0
		case args[0] == "-flags":
			fmt.Fprintln(stdout, "[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runVetCfg(args[0], stderr)
		}
	}

	fs := flag.NewFlagSet("optlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list analyzers and exit")
	chdir := fs.String("C", ".", "directory to resolve package patterns in")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: optlint [-only analyzers] [-C dir] [packages]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers, err := byName(*only)
	if err != nil {
		fmt.Fprintln(stderr, "optlint:", err)
		return 2
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := Load(*chdir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "optlint:", err)
		return 2
	}
	diags, err := RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "optlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "optlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}

// versionLine formats the -V=full response. cmd/go requires the leading
// field to match the tool binary's base name, so it is derived from
// os.Args[0] rather than hard-coded.
func versionLine() string {
	name := "optlint"
	if len(os.Args) > 0 && os.Args[0] != "" {
		name = strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
	}
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	return fmt.Sprintf("%s version devel comments-go-here buildID=%s", name, id)
}

// vetConfig mirrors the fields of cmd/go's vet.cfg this driver consumes.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetCfg analyzes one package described by a cmd/go vet.cfg file.
func runVetCfg(path string, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, "optlint:", err)
		return 2
	}
	var cfg vetConfig
	if err = json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(stderr, "optlint: parsing %s: %v\n", path, err)
		return 2
	}
	// cmd/go requires the facts file to exist even though this suite keeps no
	// cross-package facts.
	if cfg.VetxOutput != "" {
		if err = os.WriteFile(cfg.VetxOutput, []byte("optlint"), 0o666); err != nil {
			fmt.Fprintln(stderr, "optlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// cmd/go folds in-package _test.go files into the unit and also dispatches
	// external-test and synthesized test-main units. Filter all of that out so
	// vettool mode analyzes exactly what the standalone driver does:
	// production code only. Tests legitimately use wall clocks and the global
	// RNG.
	if strings.Contains(cfg.ImportPath, " [") ||
		strings.HasSuffix(cfg.ImportPath, "_test") ||
		strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}
	goFiles := cfg.GoFiles[:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	lookup := func(imp string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[imp]; ok {
			imp = canon
		}
		f, ok := cfg.PackageFile[imp]
		if !ok || f == "" {
			return nil, fmt.Errorf("optlint: no export data for %q", imp)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	pkg, err := typeCheck(fset, imp, cfg.ImportPath, cfg.Dir, goFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(stderr, "optlint:", err)
		return 2
	}
	diags, err := RunAnalyzers([]*Package{pkg}, All())
	if err != nil {
		fmt.Fprintln(stderr, "optlint:", err)
		return 2
	}
	for _, d := range diags {
		// go vet surfaces stderr lines in file:line:col: message form.
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
