package testfunc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRosenbrockMinimum(t *testing.T) {
	for _, d := range []int{2, 3, 4, 10, 100} {
		x := ones(d)
		if got := Rosenbrock(x); got != 0 {
			t.Errorf("Rosenbrock(ones(%d)) = %v, want 0", d, got)
		}
	}
}

func TestRosenbrockKnownValues(t *testing.T) {
	// f(0,0) = 1; f(-1,1) = 4; f(1,2,3) = 100*(2-1)^2 + (1-2)^2? compute:
	// i=1: (1-1)^2 + 100*(2-1)^2 = 100
	// i=2: (1-2)^2 + 100*(3-4)^2 = 1 + 100 = 101 => 201
	cases := []struct {
		x    []float64
		want float64
	}{
		{[]float64{0, 0}, 1},
		{[]float64{-1, 1}, 4},
		{[]float64{1, 2, 3}, 201},
	}
	for _, c := range cases {
		if got := Rosenbrock(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Rosenbrock(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestRosenbrockPanicsOnDim1(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Rosenbrock([1]) did not panic")
		}
	}()
	Rosenbrock([]float64{1})
}

func TestPowellMinimum(t *testing.T) {
	if got := Powell(zeros(4)); got != 0 {
		t.Fatalf("Powell(0) = %v, want 0", got)
	}
}

func TestPowellKnownValue(t *testing.T) {
	// x = (3, -1, 0, 1):
	// (3-10)^2 + 5(0-1)^2 + (-1-0)^4 + 10(3-1)^4 = 49 + 5 + 1 + 160 = 215
	got := Powell([]float64{3, -1, 0, 1})
	if math.Abs(got-215) > 1e-12 {
		t.Fatalf("Powell(3,-1,0,1) = %v, want 215", got)
	}
}

func TestPowellPanicsOnWrongDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Powell(dim 3) did not panic")
		}
	}()
	Powell([]float64{1, 2, 3})
}

func TestBealeMinimum(t *testing.T) {
	if got := Beale([]float64{3, 0.5}); math.Abs(got) > 1e-12 {
		t.Fatalf("Beale(3, 0.5) = %v, want 0", got)
	}
}

func TestSphereAndQuartic(t *testing.T) {
	x := []float64{1, -2, 3}
	if got := Sphere(x); got != 14 {
		t.Fatalf("Sphere = %v, want 14", got)
	}
	if got := SumQuartic(x); got != 1+16+81 {
		t.Fatalf("SumQuartic = %v, want 98", got)
	}
}

func TestByName(t *testing.T) {
	f, err := ByName("rosenbrock")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "rosenbrock" {
		t.Fatalf("got %q", f.Name)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown function")
	}
}

func TestCatalogMinimaAreMinima(t *testing.T) {
	// Every catalog entry's claimed minimizer must (a) achieve FMin and
	// (b) be no worse than random nearby perturbations.
	rng := rand.New(rand.NewSource(5))
	for _, f := range Catalog {
		d := f.Dim
		if d == 0 {
			d = 4
		}
		xmin := f.Minimizer(d)
		if got := f.F(xmin); math.Abs(got-f.FMin) > 1e-10 {
			t.Errorf("%s: F(minimizer) = %v, want %v", f.Name, got, f.FMin)
			continue
		}
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, d)
			for i := range x {
				x[i] = xmin[i] + (rng.Float64()-0.5)*0.2
			}
			if f.F(x) < f.FMin-1e-12 {
				t.Errorf("%s: found point below claimed minimum: %v", f.Name, x)
			}
		}
	}
}

// Property: Rosenbrock and Powell are non-negative everywhere (sums of even
// powers).
func TestNonNegativityProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		clamp := func(v float64) float64 {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0
			}
			return math.Mod(v, 100)
		}
		x := []float64{clamp(a), clamp(b), clamp(c), clamp(d)}
		return Rosenbrock(x) >= 0 && Powell(x) >= 0 && Sphere(x) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDist(t *testing.T) {
	if got := Dist([]float64{0, 0}, []float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Dist = %v, want 5", got)
	}
}

func TestDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dist mismatch did not panic")
		}
	}()
	Dist([]float64{1}, []float64{1, 2})
}
