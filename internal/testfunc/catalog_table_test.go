package testfunc

import (
	"math"
	"math/rand"
	"testing"
)

// This file is the table-driven contract for the scenario catalog: every
// objective's known minimum location and value (exactly, not approximately —
// the catalog minima are all representable), its dimension rule, and its
// symmetry properties. A new scenario objective added to the catalog without
// a row here fails TestCatalogTableIsComplete, so regressions cannot slip in
// silently.

// catalogRow pins one objective's analytically known facts.
type catalogRow struct {
	name string
	// dims are the dimensions the entry is exercised at (for Dim == 0
	// entries a representative spread; for fixed-Dim entries exactly it).
	dims []int
	// fminExact demands F(minimizer) == FMin bit for bit: all catalog
	// minima evaluate without rounding (sums of exactly-representable
	// terms).
	fminExact bool
	// even marks f(x) == f(-x) for all x.
	even bool
	// permutationInvariant marks f independent of coordinate order.
	permutationInvariant bool
}

var catalogTable = []catalogRow{
	{name: "rosenbrock", dims: []int{2, 3, 4, 10, 100}, fminExact: true},
	{name: "powell", dims: []int{4}, fminExact: true, even: true},
	{name: "sphere", dims: []int{2, 3, 7}, fminExact: true, even: true, permutationInvariant: true},
	{name: "quartic", dims: []int{2, 3, 7}, fminExact: true, even: true, permutationInvariant: true},
	{name: "beale", dims: []int{2}, fminExact: true},
	{name: "rastrigin", dims: []int{2, 3, 7}, fminExact: true, even: true, permutationInvariant: true},
}

// TestCatalogTableIsComplete forces a table row (and therefore pinned
// minimum/symmetry facts) for every catalog entry, and no stale rows.
func TestCatalogTableIsComplete(t *testing.T) {
	rows := map[string]bool{}
	for _, r := range catalogTable {
		rows[r.name] = true
	}
	for _, f := range Catalog {
		if !rows[f.Name] {
			t.Errorf("catalog objective %q has no row in catalogTable: pin its minimum and symmetries before shipping it", f.Name)
		}
		delete(rows, f.Name)
	}
	for name := range rows {
		t.Errorf("catalogTable row %q matches no catalog objective", name)
	}
}

// TestCatalogKnownMinima checks, per objective and dimension, that the
// claimed minimizer achieves exactly FMin and that every on-axis
// perturbation strictly increases the value — the minimum is where the
// catalog says it is, not merely somewhere nearby.
func TestCatalogKnownMinima(t *testing.T) {
	for _, row := range catalogTable {
		f, err := ByName(row.name)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range row.dims {
			if f.Dim != 0 && d != f.Dim {
				t.Fatalf("table row %s lists dim %d but the objective requires %d", row.name, d, f.Dim)
			}
			xmin := f.Minimizer(d)
			if len(xmin) != d {
				t.Errorf("%s: Minimizer(%d) has %d coordinates", row.name, d, len(xmin))
				continue
			}
			got := f.F(xmin)
			if row.fminExact && got != f.FMin {
				t.Errorf("%s d=%d: F(minimizer) = %v, want exactly %v", row.name, d, got, f.FMin)
			}
			for i := 0; i < d; i++ {
				for _, delta := range []float64{0.05, -0.05, 0.4, -0.4} {
					x := append([]float64(nil), xmin...)
					x[i] += delta
					if v := f.F(x); v <= f.FMin {
						t.Errorf("%s d=%d: perturbing coordinate %d by %v gives %v <= FMin %v — the claimed minimizer is not a strict axis minimum",
							row.name, d, i, delta, v, f.FMin)
					}
				}
			}
		}
	}
}

// TestCatalogSymmetries checks the evenness and permutation-invariance
// claims of the table over random points. A symmetry silently broken by an
// "optimized" rewrite of an objective would skew every experiment comparing
// runs across mirrored or reordered starts.
func TestCatalogSymmetries(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, row := range catalogTable {
		f, err := ByName(row.name)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range row.dims {
			for trial := 0; trial < 40; trial++ {
				x := make([]float64, d)
				for i := range x {
					x[i] = rng.Float64()*8 - 4
				}
				fx := f.F(x)
				if row.even {
					neg := make([]float64, d)
					for i := range x {
						neg[i] = -x[i]
					}
					if fn := f.F(neg); fn != fx {
						t.Errorf("%s d=%d: f(-x) = %v != f(x) = %v at x=%v", row.name, d, fn, fx, x)
					}
				}
				if row.permutationInvariant {
					// Mathematical, not bitwise: reordering the summation
					// reassociates the floating-point adds, so equality holds
					// only to rounding.
					perm := append([]float64(nil), x...)
					rng.Shuffle(d, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
					fp := f.F(perm)
					if math.Abs(fp-fx) > 1e-12*math.Max(math.Abs(fx), 1) {
						t.Errorf("%s d=%d: f(perm(x)) = %v != f(x) = %v at x=%v", row.name, d, fp, fx, x)
					}
				}
			}
		}
	}
}

// TestCatalogDimensionRules checks the Dim contract the job layer validates
// against: fixed-Dim objectives panic off their dimension, any-Dim
// objectives accept the full spread and reject d < 2 only where documented.
func TestCatalogDimensionRules(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	for _, f := range Catalog {
		if f.Dim != 0 {
			f := f
			bad := make([]float64, f.Dim+1)
			mustPanic(f.Name+" (dim+1)", func() { f.F(bad) })
			continue
		}
		// Any-dimension objectives must actually work across the spread.
		for _, d := range []int{2, 5, 50} {
			x := make([]float64, d)
			for i := range x {
				x[i] = 0.5
			}
			if v := f.F(x); math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s d=%d: non-finite value %v", f.Name, d, v)
			}
		}
	}
	mustPanic("rosenbrock (dim 1)", func() { Rosenbrock([]float64{1}) })
}
