// Package testfunc provides the deterministic test objectives used in the
// paper's computational study (chapter 3): the Rosenbrock "banana" function
// in arbitrary dimension (eq 3.1 for d=3, eq 3.2 for d=4) and the Powell
// function in four dimensions (eq 3.3), plus a few standard extras used by
// this repository's own tests and ablation benchmarks.
package testfunc

import (
	"fmt"
	"math"
)

// Func bundles an objective with its known minimizer, so experiment harnesses
// can compute the paper's R (error in function value at convergence) and D
// (distance of the lowest vertex from the solution) performance measures.
type Func struct {
	// Name identifies the function in tables and CLI flags.
	Name string
	// Dim is the required dimension; 0 means any dimension >= 2.
	Dim int
	// F evaluates the noise-free objective.
	F func(x []float64) float64
	// Minimizer returns the known global minimizer for dimension d.
	Minimizer func(d int) []float64
	// FMin is the function value at the minimizer.
	FMin float64
}

// Rosenbrock is the chained Rosenbrock function
//
//	f(x) = sum_{i=1}^{d-1} (1 - x_{i-1})^2 + 100 (x_i - x_{i-1}^2)^2
//
// with global minimum 0 at (1, ..., 1). For d=3 this is eq 3.1 of the paper,
// for d=4 eq 3.2; the MW scale-up study (section 3.4) uses d up to 100.
func Rosenbrock(x []float64) float64 {
	if len(x) < 2 {
		panic("testfunc: Rosenbrock needs dimension >= 2")
	}
	sum := 0.0
	for i := 1; i < len(x); i++ {
		a := 1 - x[i-1]
		b := x[i] - x[i-1]*x[i-1]
		sum += a*a + 100*b*b
	}
	return sum
}

// Powell is the four-dimensional Powell singular function (eq 3.3):
//
//	f(x) = (x1 + 10 x2)^2 + 5 (x3 - x4)^2 + (x2 - 2 x3)^4 + 10 (x1 - x4)^4
//
// with global minimum 0 at the origin. Its Hessian is singular at the
// minimum, which makes late-stage progress noise-sensitive — the property the
// paper exploits in Fig 3.6.
func Powell(x []float64) float64 {
	if len(x) != 4 {
		panic("testfunc: Powell is defined for dimension 4")
	}
	a := x[0] + 10*x[1]
	b := x[2] - x[3]
	c := x[1] - 2*x[2]
	d := x[0] - x[3]
	return a*a + 5*b*b + c*c*c*c + 10*d*d*d*d
}

// Sphere is sum x_i^2, the easiest convex test case.
func Sphere(x []float64) float64 {
	sum := 0.0
	for _, v := range x {
		sum += v * v
	}
	return sum
}

// SumQuartic is sum x_i^4, a flat-bottomed convex bowl whose shallow minimum
// basin stresses noise-limited convergence.
func SumQuartic(x []float64) float64 {
	sum := 0.0
	for _, v := range x {
		sum += v * v * v * v
	}
	return sum
}

// Rastrigin is the classic multimodal test function
//
//	f(x) = 10 d + sum_i (x_i^2 - 10 cos(2 pi x_i))
//
// with global minimum 0 at the origin and a regular grid of local minima —
// the regime the paper's future-work section targets with the PSO hybrid
// ("simplex in general lack[s] the ability to converge to [the] global
// minimum but converges quickly to a local minimum").
func Rastrigin(x []float64) float64 {
	sum := 10 * float64(len(x))
	for _, v := range x {
		sum += v*v - 10*math.Cos(2*math.Pi*v)
	}
	return sum
}

// Beale is the 2-d Beale function, a classic narrow-valley test with minimum
// 0 at (3, 0.5).
func Beale(x []float64) float64 {
	if len(x) != 2 {
		panic("testfunc: Beale is defined for dimension 2")
	}
	a := 1.5 - x[0] + x[0]*x[1]
	b := 2.25 - x[0] + x[0]*x[1]*x[1]
	c := 2.625 - x[0] + x[0]*x[1]*x[1]*x[1]
	return a*a + b*b + c*c
}

func ones(d int) []float64 {
	v := make([]float64, d)
	for i := range v {
		v[i] = 1
	}
	return v
}

func zeros(d int) []float64 { return make([]float64, d) }

// Catalog lists the functions exposed to CLIs and experiment drivers.
var Catalog = []Func{
	{Name: "rosenbrock", Dim: 0, F: Rosenbrock, Minimizer: ones, FMin: 0},
	{Name: "powell", Dim: 4, F: Powell, Minimizer: zeros, FMin: 0},
	{Name: "sphere", Dim: 0, F: Sphere, Minimizer: zeros, FMin: 0},
	{Name: "quartic", Dim: 0, F: SumQuartic, Minimizer: zeros, FMin: 0},
	{Name: "beale", Dim: 2, F: Beale, Minimizer: func(int) []float64 { return []float64{3, 0.5} }, FMin: 0},
	{Name: "rastrigin", Dim: 0, F: Rastrigin, Minimizer: zeros, FMin: 0},
}

// ByName looks up a catalog function.
func ByName(name string) (Func, error) {
	for _, f := range Catalog {
		if f.Name == name {
			return f, nil
		}
	}
	return Func{}, fmt.Errorf("testfunc: unknown function %q", name)
}

// Dist returns the Euclidean distance between two points of equal dimension.
// Experiment drivers use it for the paper's D measure.
func Dist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("testfunc: Dist dimension mismatch")
	}
	sum := 0.0
	for i := range a {
		d := a[i] - b[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}
