package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/mw"
	"repro/internal/testfunc"
	"repro/internal/textplot"
)

// scaleDims are the dimensions of the section 3.4 scale-up study.
func scaleDims(opt Options) []int {
	if opt.Quick {
		return []int{20, 50}
	}
	return []int{20, 50, 100}
}

// Table33 reproduces the processor-allocation table: for each d, the number
// of workers, servers, clients and total cores, verified against the live
// deployment's process accounting.
func Table33(opt Options) (string, error) {
	header := []string{"d", "workers (d+3)", "servers (d+3)", "clients (d+3)Ns", "total (dNs+3Ns+2d+7)", "live"}
	var rows [][]string
	for _, d := range []int{20, 50, 100} {
		var counts mw.ProcessCounts
		space, err := mw.NewSpace(mw.SpaceConfig{
			Dim: d,
			Ns:  1,
			NewSystem: func(rank, sys int) mw.SystemEvaluator {
				return &mw.FuncSystem{F: testfunc.Rosenbrock, Rng: rand.New(rand.NewSource(int64(rank)))}
			},
			Counts: &counts,
		})
		if err != nil {
			return "", err
		}
		live := counts.Total()
		space.Shutdown()
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", d+3),
			fmt.Sprintf("%d", d+3),
			fmt.Sprintf("%d", d+3),
			fmt.Sprintf("%d", mw.ExpectedProcesses(d, 1)),
			fmt.Sprintf("%d", live),
		})
	}
	return "Table 3.3: processor allocation for Rosenbrock optimization using MW (Ns=1)\n" +
		textplot.Table(header, rows), nil
}

// ScaleRun is one scale-up measurement.
type ScaleRun struct {
	// D is the dimension.
	D int
	// Times / Values / Steps are the per-iteration trace.
	Times, Values []float64
	Steps         []float64
	// TimePerStep is total walltime / iterations.
	TimePerStep float64
	// Processes is the live deployment size.
	Processes int64
}

// ScaleUpRuns executes the section 3.4 protocol: Rosenbrock in d dimensions
// over the full MW deployment (Ns = 1), with the MN algorithm and a mild
// noise level, recording the convergence trace and the time-per-step cost.
func ScaleUpRuns(opt Options) ([]*ScaleRun, error) {
	var out []*ScaleRun
	iters := 120
	if opt.Quick {
		iters = 25
	}
	for _, d := range scaleDims(opt) {
		var counts mw.ProcessCounts
		space, err := mw.NewSpace(mw.SpaceConfig{
			Dim: d,
			Ns:  1,
			NewSystem: func(rank, sys int) mw.SystemEvaluator {
				return &mw.FuncSystem{
					F:      testfunc.Rosenbrock,
					Sigma0: func([]float64) float64 { return 1 },
					Rng:    rand.New(rand.NewSource(opt.Seed + int64(rank*31))),
				}
			},
			Counts: &counts,
		})
		if err != nil {
			return nil, err
		}
		sr := &ScaleRun{D: d, Processes: counts.Total()}

		rng := rand.New(rand.NewSource(opt.Seed + int64(d)))
		start := uniformSimplex(d, -3, 3, rng)
		cfg := core.DefaultConfig(core.MN)
		cfg.MaxIterations = iters
		cfg.Tol = 0
		cfg.MaxWalltime = 0
		// The per-step master bookkeeping and file I/O grows with d
		// (section 3.4 attributes the mild degradation to "the I/O at the
		// simplex and vertex levels").
		cfg.OverheadBase = 0.5
		cfg.OverheadPerDim = 0.05
		cfg.Trace = func(e core.TraceEvent) {
			sr.Times = append(sr.Times, e.Time)
			sr.Values = append(sr.Values, math.Max(e.Best, 1e-4))
			sr.Steps = append(sr.Steps, float64(e.Iter))
		}
		res, err := core.Optimize(space, start, cfg)
		space.Shutdown()
		if err != nil {
			return nil, err
		}
		sr.TimePerStep = res.Walltime / float64(res.Iterations)
		out = append(out, sr)
	}
	return out, nil
}

// Fig318 renders the three scale-up panels: function value vs time, function
// value vs steps, and time-per-step vs dimension.
func Fig318(opt Options) (string, error) {
	runs, err := ScaleUpRuns(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig 3.18: MW scale-up (Rosenbrock over the full deployment, Ns=1)\n\n")

	var timeSeries, stepSeries []textplot.Series
	var ds, tps []float64
	for _, r := range runs {
		name := fmt.Sprintf("d=%d (%d procs)", r.D, r.Processes)
		timeSeries = append(timeSeries, textplot.Series{Name: name, X: r.Times, Y: r.Values})
		stepSeries = append(stepSeries, textplot.Series{Name: name, X: r.Steps, Y: r.Values})
		ds = append(ds, float64(r.D))
		tps = append(tps, r.TimePerStep)
	}
	b.WriteString(textplot.XY(timeSeries, textplot.XYOptions{
		Title: "(a) best value vs time", LogY: true, XLabel: "time (s)", YLabel: "g(best)",
	}))
	b.WriteString("\n")
	b.WriteString(textplot.XY(stepSeries, textplot.XYOptions{
		Title: "(b) best value vs steps", LogY: true, XLabel: "step", YLabel: "g(best)",
	}))
	b.WriteString("\n")
	b.WriteString(textplot.XY([]textplot.Series{{Name: "time/step", X: ds, Y: tps}},
		textplot.XYOptions{Title: "(c) time per simplex step vs dimension", XLabel: "d", YLabel: "s/step", Height: 10}))
	return b.String(), nil
}
