package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/mw"
	"repro/internal/textplot"
	"repro/internal/water"
)

// waterNoiseFactor scales the property sampling noise of the surrogate
// engine during the application study.
const waterNoiseFactor = 1.0

// WaterInitialSimplex returns the deliberately poor starting vertices of the
// application study ("parameter values that gave poor and unphysical
// results", Table 3.4a).
func WaterInitialSimplex() [][]float64 {
	return [][]float64{
		{0.200, 3.00, 0.54},
		{0.180, 3.40, 0.45},
		{0.155, 3.25, 0.52},
		{0.190, 2.80, 0.60},
	}
}

// WaterResult is one algorithm's outcome on the TIP4P reparameterization.
type WaterResult struct {
	// Alg is the decision policy used.
	Alg core.Algorithm
	// Final is the best parameter set at termination.
	Final water.Params
	// FinalSimplex holds every final vertex (the paper tabulates all).
	FinalSimplex [][]float64
	// Steps is the simplex iteration count.
	Steps int
	// Cost is the noise-free eq 3.4 cost at Final.
	Cost float64
	// Stages snapshots the best vertex at 0%/33%/66%/100% of the run, for
	// the Figure 3.20 curves.
	Stages []water.Params
}

// WaterStudy runs the section 3.5 application for the given algorithm over
// the full MW deployment (master, d+3 vertex workers, servers, clients) with
// the surrogate property engine.
func WaterStudy(opt Options, alg core.Algorithm) (*WaterResult, error) {
	space, err := mw.NewSpace(mw.SpaceConfig{
		Dim: 3,
		Ns:  1,
		NewSystem: func(rank, sys int) mw.SystemEvaluator {
			return water.NewSurrogate(waterNoiseFactor, opt.Seed+int64(rank*131+sys))
		},
	})
	if err != nil {
		return nil, err
	}
	defer space.Shutdown()

	cfg := core.DefaultConfig(alg)
	cfg.MaxWalltime = opt.budget()
	cfg.MaxIterations = 400
	restarts := 3
	if opt.Quick {
		cfg.MaxIterations = 80
		restarts = 2
	}
	cfg.Tol = 0.002

	var trace []core.TraceEvent
	cfg.Trace = func(e core.TraceEvent) { trace = append(trace, e) }

	// The cost valley around the optimum is long and gently curved (like
	// the physical parameter correlations of a water model); simplex
	// restarts around the incumbent (section 1.3.5.1) prevent premature
	// collapse far from the basin floor.
	res, err := core.OptimizeWithRestarts(space, WaterInitialSimplex(), core.RestartConfig{
		Config:   cfg,
		Restarts: restarts,
		Scale:    []float64{0.01, 0.02, 0.005}, // natural (eps, sigma, qH) scales
	})
	if err != nil {
		return nil, err
	}

	wr := &WaterResult{
		Alg:          alg,
		Final:        water.FromVec(res.BestX),
		FinalSimplex: res.FinalSimplex,
		Steps:        res.Iterations,
		Cost:         water.NoiseFreeCost(res.BestX),
	}
	wr.Stages = append(wr.Stages, water.FromVec(WaterInitialSimplex()[0]))
	for _, frac := range []float64{1. / 3, 2. / 3, 1} {
		idx := int(frac*float64(len(trace))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(trace) {
			idx = len(trace) - 1
		}
		if len(trace) > 0 {
			wr.Stages = append(wr.Stages, water.FromVec(trace[idx].BestX))
		}
	}
	return wr, nil
}

// waterAlgs lists the application-study algorithms in paper order.
var waterAlgs = []core.Algorithm{core.MN, core.PC, core.PCMN}

// Table34 renders the initial parameters and the final parameters obtained
// with each algorithm (the paper's Table 3.4 a-d).
func Table34(opt Options) (string, error) {
	var b strings.Builder
	b.WriteString("Table 3.4: initial and final TIP4P parameters (eps kcal/mol, sigma A, qH e)\n\n")
	b.WriteString("(a) Initial parameters\n")
	var rows [][]string
	for _, v := range WaterInitialSimplex() {
		p := water.FromVec(v)
		rows = append(rows, []string{
			fmt.Sprintf("%.4f", p.Epsilon), fmt.Sprintf("%.3f", p.Sigma), fmt.Sprintf("%.3f", p.QH),
		})
	}
	b.WriteString(textplot.Table([]string{"eps", "sigma", "qH"}, rows))

	published := water.TIP4PParams()
	for i, alg := range waterAlgs {
		res, err := WaterStudy(opt, alg)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "\n(%c) Final vertices with %s after %d steps (published TIP4P: %s)\n",
			'b'+i, alg, res.Steps, published)
		var frows [][]string
		for _, v := range res.FinalSimplex {
			p := water.FromVec(v)
			frows = append(frows, []string{
				fmt.Sprintf("%.4f", p.Epsilon), fmt.Sprintf("%.4f", p.Sigma), fmt.Sprintf("%.4f", p.QH),
			})
		}
		b.WriteString(textplot.Table([]string{"eps", "sigma", "qH"}, frows))
	}
	return b.String(), nil
}

// propertyReport samples the surrogate properties at theta long enough for
// tight error bars and returns values and one-sigma errors.
func propertyReport(theta water.Params, seed int64) (vals, errs [water.NumProperties]float64) {
	s := water.NewSurrogate(waterNoiseFactor, seed)
	s.Start(theta.Vec())
	s.Sample(400) // sigma = sigma0/20
	return s.PropertyEstimates()
}

// Table35 renders the property comparison table (the second "Table 3.4" of
// the paper): property value and error under MN/PC/PC+MN, against TIP4P and
// experiment.
func Table35(opt Options) (string, error) {
	type col struct {
		name string
		vals [water.NumProperties]float64
		errs [water.NumProperties]float64
	}
	var cols []col
	for _, alg := range waterAlgs {
		res, err := WaterStudy(opt, alg)
		if err != nil {
			return "", err
		}
		v, e := propertyReport(res.Final, opt.Seed+int64(alg)*7)
		cols = append(cols, col{name: alg.String(), vals: v, errs: e})
	}
	tip4pProps := water.NoiseFreeProperties(water.TIP4PParams())

	header := []string{"Pr"}
	for _, c := range cols {
		header = append(header, c.name+" V", c.name+" E")
	}
	header = append(header, "TIP4P V", "EXP V")
	var rows [][]string
	for p := water.Property(0); p < water.NumProperties; p++ {
		row := []string{p.String()}
		for _, c := range cols {
			row = append(row, fmtG(c.vals[p]), fmtG(c.errs[p]))
		}
		row = append(row, fmtG(tip4pProps[p]), fmtG(water.Targets[p]))
		rows = append(rows, row)
	}
	return "Table 3.5 (paper's second Table 3.4): properties under MN/PC/PC+MN vs TIP4P and experiment\n" +
		textplot.Table(header, rows), nil
}

// gooSeries samples a gOO(r) curve for plotting.
func gooSeries(name string, theta *water.Params) textplot.Series {
	rs, gs := water.RDFCurve(water.PropGOO, theta, 2.0, 8.0, 60)
	return textplot.Series{Name: name, X: rs, Y: gs}
}

// Fig319 renders the oxygen-oxygen RDF panels: (a) the poor initial
// parameter sets, then the optimized MN/PC/PC+MN models against TIP4P and
// experiment.
func Fig319(opt Options) (string, error) {
	var b strings.Builder
	b.WriteString("Fig 3.19: oxygen-oxygen radial distribution functions\n\n")

	series := []textplot.Series{gooSeries("experiment", nil)}
	for i, v := range WaterInitialSimplex() {
		p := water.FromVec(v)
		series = append(series, gooSeries(fmt.Sprintf("vertex %d", i+1), &p))
	}
	b.WriteString(textplot.XY(series, textplot.XYOptions{
		Title: "(a) non-optimal initial parameters", XLabel: "rOO (A)", YLabel: "gOO(r)",
	}))
	b.WriteString("\n")

	tip4p := water.TIP4PParams()
	for i, alg := range waterAlgs {
		res, err := WaterStudy(opt, alg)
		if err != nil {
			return "", err
		}
		panel := []textplot.Series{
			gooSeries("experiment", nil),
			gooSeries("TIP4P", &tip4p),
			gooSeries("optimized", &res.Final),
		}
		b.WriteString(textplot.XY(panel, textplot.XYOptions{
			Title:  fmt.Sprintf("(%c) parameters from the %s algorithm", 'b'+i, alg),
			XLabel: "rOO (A)", YLabel: "gOO(r)",
		}))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Fig320 renders gOO(r) at successive stages of the MN optimization.
func Fig320(opt Options) (string, error) {
	res, err := WaterStudy(opt, core.MN)
	if err != nil {
		return "", err
	}
	series := []textplot.Series{gooSeries("experiment", nil)}
	labels := []string{"initial", "1/3 of run", "2/3 of run", "converged"}
	for i, st := range res.Stages {
		stage := st
		series = append(series, gooSeries(labels[i%len(labels)], &stage))
	}
	return textplot.XY(series, textplot.XYOptions{
		Title:  "Fig 3.20: gOO(r) across stages of the MN simplex optimization",
		XLabel: "rOO (A)", YLabel: "gOO(r)",
	}), nil
}
