package experiments

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/jobs"
	"repro/internal/stats"
	"repro/internal/testfunc"
	"repro/internal/textplot"
)

// This file is the job-service scenario behind BENCH_jobs.json: a fixed
// batch of optimization jobs — each on an objective with a real per-point
// latency, the deployment shape the paper's worker fleet exists for — is
// pushed through a jobs.Manager at increasing run-pool widths, measuring
// sustained throughput (jobs/sec) and client-visible latency (submit to
// finish, p50/p99). It is the service-level counterpart of BenchSched: that
// study shows one run's sampling batches scale with the worker pool; this
// one shows many users' runs multiplex over the same machine.
//
// Beside the primary PC workload, the same batch runs as "pso" and "hybrid"
// jobs through the identical manager/driver path, demonstrating that the
// strategy registry adds no per-job overhead: a strategy's throughput is set
// by its own sampling effort, not by how it was dispatched.

// JobsRun is one row of the throughput study.
type JobsRun struct {
	// Concurrency is the manager's MaxConcurrent (run-pool width).
	Concurrency int
	// Jobs is the number of jobs pushed through the pool (per strategy).
	Jobs int
	// WallSeconds is total submit-to-drain wall time of the PC workload.
	WallSeconds float64
	// JobsPerSec is Jobs / WallSeconds for the PC workload.
	JobsPerSec float64
	// Speedup is relative to the Concurrency=1 row.
	Speedup float64
	// P50Ms and P99Ms are the PC workload's submit-to-finish latency
	// percentiles in milliseconds.
	P50Ms, P99Ms float64
	// PSOJobsPerSec and HybridJobsPerSec are the same batch pushed through
	// the "pso" and "hybrid" strategies.
	PSOJobsPerSec    float64
	HybridJobsPerSec float64
	// SpecJobsPerSec is the PC batch re-run with speculative steps. Under
	// this bench's cost model (latency per point *creation*) speculation
	// pays its evaluation waste without collecting its batching win — the
	// win is per sampling round-trip, measured by BENCH_sched.json's
	// step_latency rows — so this column prices the waste at service level.
	SpecJobsPerSec float64
}

func (r JobsRun) MarshalJSON() ([]byte, error) {
	type row struct {
		Concurrency      int     `json:"concurrency"`
		Jobs             int     `json:"jobs"`
		WallSeconds      float64 `json:"wall_seconds"`
		JobsPerSec       float64 `json:"jobs_per_sec"`
		Speedup          float64 `json:"speedup"`
		P50Ms            float64 `json:"p50_ms"`
		P99Ms            float64 `json:"p99_ms"`
		PSOJobsPerSec    float64 `json:"pso_jobs_per_sec"`
		HybridJobsPerSec float64 `json:"hybrid_jobs_per_sec"`
		SpecJobsPerSec   float64 `json:"spec_pc_jobs_per_sec"`
	}
	return json.Marshal(row{r.Concurrency, r.Jobs, r.WallSeconds, r.JobsPerSec, r.Speedup,
		r.P50Ms, r.P99Ms, r.PSOJobsPerSec, r.HybridJobsPerSec, r.SpecJobsPerSec})
}

// JobsBenchResult is the full study, serialized into BENCH_jobs.json.
type JobsBenchResult struct {
	// JobIterations is the per-job simplex iteration cap.
	JobIterations int `json:"job_iterations"`
	// PointLatencyUS is the simulated per-point-creation latency in
	// microseconds (an external simulation spin-up).
	PointLatencyUS int `json:"point_latency_us"`
	// NumCPU records the host's core count.
	NumCPU int `json:"num_cpu"`
	// Deterministic reports whether every concurrency level produced
	// bitwise-identical per-job results.
	Deterministic bool      `json:"deterministic"`
	Runs          []JobsRun `json:"runs"`
}

// jobsWorkload pushes n jobs of one strategy through a manager with the
// given run-pool width and returns wall seconds, sorted submit-to-finish
// latencies, and each job's final best estimate (the determinism
// fingerprint, seed-indexed). The swarm sizes keep the pso/hybrid sampling
// effort in the same ballpark as iters simplex steps.
func jobsWorkload(strategy string, speculative bool, concurrency, n, iters int, delay time.Duration) (float64, []time.Duration, []float64, error) {
	m, err := jobs.New(jobs.Config{
		MaxConcurrent: concurrency,
		Objectives: map[string]func([]float64) float64{
			"latentrosen": func(x []float64) float64 {
				time.Sleep(delay)
				return testfunc.Rosenbrock(x)
			},
		},
	})
	if err != nil {
		return 0, nil, nil, err
	}
	defer m.Close()

	start := time.Now()
	ids := make([]string, n)
	for i := range ids {
		id, err := m.Submit(jobs.Spec{
			Objective:       "latentrosen",
			Dim:             3,
			Algorithm:       strategy,
			Sigma0:          50,
			Seed:            int64(1 + i),
			Tol:             -1,
			Budget:          1e12,
			MaxIterations:   iters,
			Particles:       6,
			SwarmIterations: iters / 2,
			Speculative:     speculative,
		})
		if err != nil {
			return 0, nil, nil, err
		}
		ids[i] = id
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	bests := make([]float64, n)
	lats := make([]time.Duration, n)
	for i, id := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := m.Wait(id)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("job %s: %w", id, err)
				}
				mu.Unlock()
				return
			}
			st, _ := m.Get(id)
			bests[i] = res.BestG
			lats[i] = st.Finished.Sub(st.Created)
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return 0, nil, nil, firstErr
	}
	wall := time.Since(start).Seconds()
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	return wall, lats, bests, nil
}

// percentile returns the q-th quantile (0..1) of the latencies in
// milliseconds, via the same stats.Quantile every other driver uses.
func percentile(lats []time.Duration, q float64) float64 {
	ms := make([]float64, len(lats))
	for i, d := range lats {
		ms[i] = float64(d) / float64(time.Millisecond)
	}
	return stats.Quantile(ms, q)
}

// JobsBench measures manager throughput and latency against the run-pool
// width, checking that multiplexing never changes any job's result.
func JobsBench(opt Options) (*JobsBenchResult, error) {
	n, iters := 48, 25
	delay := 200 * time.Microsecond
	if opt.Quick {
		n, iters = 16, 10
		delay = 100 * time.Microsecond
	}
	res := &JobsBenchResult{
		JobIterations:  iters,
		PointLatencyUS: int(delay / time.Microsecond),
		NumCPU:         runtime.NumCPU(),
		Deterministic:  true,
	}
	workloads := []struct {
		key         string
		strategy    string
		speculative bool
	}{
		{"pc", "pc", false},
		{"pso", "pso", false},
		{"hybrid", "hybrid", false},
		{"spec-pc", "pc", true},
	}
	baseBests := map[string][]float64{} // workload key -> concurrency=1 fingerprints
	for _, c := range []int{1, 2, 4, 8, 16} {
		row := JobsRun{Concurrency: c, Jobs: n}
		for _, w := range workloads {
			wall, lats, bests, err := jobsWorkload(w.strategy, w.speculative, c, n, iters, delay)
			if err != nil {
				return nil, err
			}
			if base, ok := baseBests[w.key]; !ok {
				baseBests[w.key] = bests
			} else {
				for i := range bests {
					if bests[i] != base[i] {
						res.Deterministic = false
					}
				}
			}
			switch w.key {
			case "pc":
				row.WallSeconds = wall
				row.JobsPerSec = float64(n) / wall
				row.P50Ms = percentile(lats, 0.50)
				row.P99Ms = percentile(lats, 0.99)
			case "pso":
				row.PSOJobsPerSec = float64(n) / wall
			case "hybrid":
				row.HybridJobsPerSec = float64(n) / wall
			case "spec-pc":
				row.SpecJobsPerSec = float64(n) / wall
			}
		}
		res.Runs = append(res.Runs, row)
	}
	for i := range res.Runs {
		res.Runs[i].Speedup = res.Runs[i].JobsPerSec / res.Runs[0].JobsPerSec
	}
	return res, nil
}

// JobsBenchJSON renders the study as the BENCH_jobs.json payload.
func JobsBenchJSON(opt Options) ([]byte, error) {
	res, err := JobsBench(opt)
	if err != nil {
		return nil, err
	}
	return jobsBenchPayload(res)
}

// jobsBenchPayload serializes an already-computed study.
func jobsBenchPayload(res *JobsBenchResult) ([]byte, error) {
	return json.MarshalIndent(res, "", "  ")
}

// BenchJobs renders the throughput study as a table.
func BenchJobs(opt Options) (string, error) {
	res, err := JobsBench(opt)
	if err != nil {
		return "", err
	}
	return jobsBenchTable(res), nil
}

// jobsBenchTable renders an already-computed study as a table.
func jobsBenchTable(res *JobsBenchResult) string {
	header := []string{"pool", "jobs", "wall (s)", "pc jobs/s", "speedup", "p50 (ms)", "p99 (ms)", "pso jobs/s", "hybrid jobs/s", "spec-pc jobs/s"}
	var rows [][]string
	for _, r := range res.Runs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Concurrency),
			fmt.Sprintf("%d", r.Jobs),
			fmt.Sprintf("%.3f", r.WallSeconds),
			fmt.Sprintf("%.1f", r.JobsPerSec),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%.1f", r.P50Ms),
			fmt.Sprintf("%.1f", r.P99Ms),
			fmt.Sprintf("%.1f", r.PSOJobsPerSec),
			fmt.Sprintf("%.1f", r.HybridJobsPerSec),
			fmt.Sprintf("%.1f", r.SpecJobsPerSec),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "jobs service throughput: %d jobs x %d iterations, %dus point latency, host cores=%d\n",
		res.Runs[0].Jobs, res.JobIterations, res.PointLatencyUS, res.NumCPU)
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "bitwise-identical job results across pool widths (pc, pso, hybrid and speculative pc): %v\n", res.Deterministic)
	return b.String()
}
