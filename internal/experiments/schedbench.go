package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/noise"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/testfunc"
	"repro/internal/textplot"
)

// This file is the expensive-objective scenario behind BENCH_sched.json: it
// measures how LocalSpace.SampleAll scales with the sched worker count when
// each sampling increment actually costs something, and verifies that the
// concurrency never changes a single bit of the sampled estimates.
//
// Two cost models bracket real deployments:
//
//   - cpu: each increment burns local CPU (an in-process MD segment). Wall
//     time scales with physical cores; on a single-core host it is flat.
//   - latency: each increment waits on an external resource (a remote worker,
//     a file-spool round-trip — the paper's deployment shape). Concurrent
//     dispatch overlaps the waits, so the speedup tracks the worker count
//     regardless of core count.

// SpinCost returns a SampleCost hook that burns roughly n floating-point
// operations per increment.
func SpinCost(n int) func([]float64, float64) {
	return func([]float64, float64) {
		x := 1.0
		for i := 0; i < n; i++ {
			x = math.Sqrt(x + float64(i&7))
		}
		if x < 0 {
			panic("unreachable")
		}
	}
}

// LatencyCost returns a SampleCost hook that waits d per increment,
// modelling an external simulation the process does not execute itself.
func LatencyCost(d time.Duration) func([]float64, float64) {
	return func([]float64, float64) { time.Sleep(d) }
}

// SchedRun is one row of the scaling study.
type SchedRun struct {
	// Workers is the sched pool size.
	Workers int
	// CPUSeconds / LatencySeconds are the measured wall seconds for the
	// full batch sequence under each cost model.
	CPUSeconds, LatencySeconds float64
	// CPUSpeedup / LatencySpeedup are relative to the Workers=1 row.
	CPUSpeedup, LatencySpeedup float64
}

// StepLatencyRun is one row of the speculative step-latency study: the mean
// wall milliseconds one simplex step costs under the latency cost model,
// sequential vs speculative driver, at one pool width.
type StepLatencyRun struct {
	// Workers is the sched pool size.
	Workers int `json:"workers"`
	// SeqStepMillis is the mean per-step wall time of the sequential driver
	// (candidate moves evaluated one round-trip at a time).
	SeqStepMillis float64 `json:"seq_step_ms"`
	// SpecStepMillis is the mean per-step wall time of the speculative
	// driver (every candidate in one prioritized batch).
	SpecStepMillis float64 `json:"spec_step_ms"`
	// Speedup is SeqStepMillis / SpecStepMillis.
	Speedup float64 `json:"speedup"`
}

// ProtoBenchRun is one row of the frame-codec microbench: encode+decode
// throughput of representative dispatch and results frames under one codec.
type ProtoBenchRun struct {
	// Codec is the frame codec ("json" or "binary").
	Codec string `json:"codec"`
	// FramesPerSec is encode+decode round-trips per second.
	FramesPerSec float64 `json:"frames_per_sec"`
	// BytesPerFrame is the mean encoded frame size.
	BytesPerFrame float64 `json:"bytes_per_frame"`
}

// AllocRun is one row of the per-draw allocation study: the same 16-stream
// sampling workload dispatched through the legacy per-closure Do path versus
// the indexed DoN path that replaced it on the hot path.
type AllocRun struct {
	// Path names the dispatch mechanism ("closure-do" or "indexed-don").
	Path string `json:"path"`
	// AllocsPerDraw is heap allocations per sampling increment.
	AllocsPerDraw float64 `json:"allocs_per_draw"`
	// DrawsPerSec is sampling increments per second.
	DrawsPerSec float64 `json:"draws_per_sec"`
}

// ObsOverheadRun is one row of the instrumentation-overhead study: the CPU
// cost model's batch workload with the obs hot path live (instrumented)
// versus obs.SetEnabled(false) (stripped — the counters' Enabled() gates
// short-circuit, removing even the time.Now pairs).
type ObsOverheadRun struct {
	// Mode is "instrumented" or "stripped".
	Mode string `json:"mode"`
	// DrawsPerSec is sampling increments per second.
	DrawsPerSec float64 `json:"draws_per_sec"`
}

// DistRun is one row of the distributed-fleet scaling study: the same batch
// sequence as the sched rows, executed over remote worker agents (real TCP,
// in-process endpoints) under the latency cost model.
type DistRun struct {
	// Agents is the number of registered worker agents (capacity 1 each).
	Agents int `json:"agents"`
	// Seconds is the measured wall time of the batch sequence.
	Seconds float64 `json:"seconds"`
	// Speedup is relative to the one-agent row.
	Speedup float64 `json:"speedup"`
}

// SchedScalingResult is the full study, serialized into BENCH_sched.json.
type SchedScalingResult struct {
	// Batch is the points per SampleAll (d+3 with d=13, the paper's shape).
	Batch int `json:"batch"`
	// Rounds is the number of SampleAll batches timed.
	Rounds int `json:"rounds"`
	// NumCPU records the host's core count (CPU rows cannot exceed it).
	NumCPU int `json:"num_cpu"`
	// Deterministic reports whether every worker count produced bitwise
	// identical estimates.
	Deterministic bool       `json:"deterministic"`
	Runs          []SchedRun `json:"runs"`
	// StepIters is the number of simplex steps timed per step-latency row.
	StepIters int `json:"step_iters"`
	// StepLatency compares sequential vs speculative per-step latency under
	// the latency cost model (one row per pool width).
	StepLatency []StepLatencyRun `json:"step_latency"`
	// SpecDeterministic reports whether the speculative runs produced
	// bitwise identical results at every pool width.
	SpecDeterministic bool `json:"spec_deterministic"`
	// Dist holds the distributed-fleet scaling rows (internal/dist backend,
	// latency cost model on the agents).
	Dist []DistRun `json:"dist"`
	// DistDeterministic reports whether every fleet size produced estimates
	// bitwise identical to the in-process runs.
	DistDeterministic bool `json:"dist_deterministic"`
	// Proto holds the frame-codec throughput rows (JSON fallback vs the
	// binary codec, same message mix).
	Proto []ProtoBenchRun `json:"proto_frames_per_sec"`
	// ProtoSpeedup is binary frames/sec over JSON frames/sec.
	ProtoSpeedup float64 `json:"proto_speedup"`
	// Allocs holds the per-draw allocation rows (legacy closure dispatch vs
	// the indexed zero-allocation path).
	Allocs []AllocRun `json:"allocs_per_draw"`
	// ObsOverhead compares the CPU-model workload with the obs metrics hot
	// path live versus disabled; ObsOverheadPct is the instrumented
	// slowdown in percent of the stripped throughput (acceptance: < 2).
	ObsOverhead    []ObsOverheadRun `json:"obs_overhead"`
	ObsOverheadPct float64          `json:"obs_overhead_pct"`
}

func (r SchedRun) MarshalJSON() ([]byte, error) {
	type row struct {
		Workers        int     `json:"workers"`
		CPUSeconds     float64 `json:"cpu_seconds"`
		CPUSpeedup     float64 `json:"cpu_speedup"`
		LatencySeconds float64 `json:"latency_seconds"`
		LatencySpeedup float64 `json:"latency_speedup"`
	}
	return json.Marshal(row{r.Workers, r.CPUSeconds, r.CPUSpeedup, r.LatencySeconds, r.LatencySpeedup})
}

// benchBatchWorkload is the one timed batch sequence every scaling variant
// runs: a fixed space (dim, objective, noise, seed) and point layout, with
// only the execution backend varying via mutate. Sharing the construction is
// what makes the cross-variant determinism comparisons meaningful — a drift
// in any workload parameter would silently compare different runs.
func benchBatchWorkload(batch, rounds int, mutate func(*sim.LocalConfig)) (float64, []float64) {
	cfg := sim.LocalConfig{
		Dim:      3,
		F:        testfunc.Rosenbrock,
		Sigma0:   sim.ConstSigma(10),
		Seed:     1,
		Parallel: true,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s := sim.NewLocalSpace(cfg)
	defer s.Close()
	pts := make([]sim.Point, batch)
	for i := range pts {
		pts[i] = s.NewPoint([]float64{float64(i%5) - 2, 1, 2})
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		s.SampleAll(pts, 0.1)
	}
	elapsed := time.Since(start).Seconds()
	means := make([]float64, batch)
	for i, p := range pts {
		means[i] = p.Estimate().Mean
	}
	return elapsed, means
}

// schedWorkload times the batch sequence on an in-process pool of the given
// width.
func schedWorkload(workers, batch, rounds int, cost func([]float64, float64)) (float64, []float64) {
	return benchBatchWorkload(batch, rounds, func(cfg *sim.LocalConfig) {
		cfg.Workers = workers
		cfg.SampleCost = cost
	})
}

// stepLatencyWorkload runs a short DET simplex optimization (decisions on
// plain means — per-step cost is dominated by the candidate round-trips, the
// quantity speculation attacks) on an expensive latency-model objective and
// returns the mean wall seconds per simplex step plus the run result (the
// determinism fingerprint).
func stepLatencyWorkload(workers int, speculative bool, iters int, lat time.Duration) (float64, *core.Result) {
	s := sim.NewLocalSpace(sim.LocalConfig{
		Dim:        3,
		F:          testfunc.Rosenbrock,
		Sigma0:     sim.ConstSigma(5),
		Seed:       2,
		Parallel:   true,
		Workers:    workers,
		SampleCost: LatencyCost(lat),
	})
	defer s.Close()
	cfg := core.DefaultConfig(core.DET)
	cfg.Tol = 0 // run to the iteration cap: every row times the same step count
	cfg.MaxIterations = iters
	cfg.Speculative = speculative
	initial := [][]float64{{-2, 1, 2}, {1.5, -1, 0.5}, {0, 2, -1}, {2, 0.5, 1}}
	start := time.Now()
	res, err := core.Optimize(s, initial, cfg)
	if err != nil {
		panic(err) // in-process space with no cancellation: must not fail
	}
	return time.Since(start).Seconds() / float64(iters), res
}

// stepFingerprint renders the parts of a result that must be bitwise
// identical across pool widths.
func stepFingerprint(res *core.Result) string {
	return fmt.Sprintf("%x/%x/%d/%d", res.BestG, res.Walltime, res.Evaluations, res.SpeculativeWaste)
}

// distWorkload runs the same timed batch sequence as schedWorkload, but
// with sampling farmed out to `agents` remote worker agents over TCP (the
// internal/dist backend; the latency cost runs on the agents). The returned
// means must be bitwise identical to the in-process ones — same space seed,
// same per-point streams, different executors.
func distWorkload(agents, batch, rounds int, lat time.Duration) (float64, []float64, error) {
	c := dist.NewCoordinator(dist.Config{})
	if err := c.Listen("127.0.0.1:0"); err != nil {
		return 0, nil, err
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < agents; i++ {
		w := dist.NewWorker(dist.WorkerConfig{
			Addr:       c.Addr().String(),
			Name:       fmt.Sprintf("bench%d", i),
			Capacity:   1,
			SampleCost: LatencyCost(lat),
		})
		go w.RunLoop(ctx)
	}
	wctx, wcancel := context.WithTimeout(ctx, 10*time.Second)
	defer wcancel()
	if err := c.WaitWorkers(wctx, agents); err != nil {
		return 0, nil, err
	}

	elapsed, means := benchBatchWorkload(batch, rounds, func(cfg *sim.LocalConfig) {
		cfg.Fleet = c
		cfg.FleetObjective = "rosenbrock"
	})
	return elapsed, means, nil
}

// protoBenchMessages builds the representative frame mix of one coordinator
// round-trip: a 16-task dispatch (dim 3, the bench workload's shape) and its
// 16 results.
func protoBenchMessages() []*dist.Message {
	d := &dist.Dispatch{Tasks: make([]dist.Task, 16)}
	r := &dist.Results{Results: make([]dist.TaskResult, 16)}
	for i := range d.Tasks {
		d.Tasks[i] = dist.Task{
			ID:        uint64(i + 1),
			Objective: "rosenbrock",
			X:         []float64{float64(i%5) - 2, 1, 2},
			Seed:      int64(1000 + i),
			Skip:      i,
			Dt:        0.1,
		}
		r.Results[i] = dist.TaskResult{ID: uint64(i + 1), Z: 0.25 * float64(i), F: 1.5 * float64(i)}
	}
	return []*dist.Message{
		{Type: dist.TypeDispatch, Dispatch: d},
		{Type: dist.TypeResults, Results: r},
	}
}

// protoBenchWorkload times encode+decode round-trips of the representative
// frame mix under one codec and returns frames/sec and mean bytes/frame.
func protoBenchWorkload(proto dist.Proto, iters int) (fps, bytesPerFrame float64, err error) {
	msgs := protoBenchMessages()
	var buf bytes.Buffer
	fw := dist.NewFrameWriter(&buf, proto)
	fr := dist.NewFrameReader(&buf, proto)
	// One unmeasured pass sizes the frames and warms the reused buffers.
	for _, m := range msgs {
		if err := fw.Write(m); err != nil {
			return 0, 0, err
		}
	}
	bytesPerFrame = float64(buf.Len()) / float64(len(msgs))
	var m dist.Message
	for range msgs {
		if err := fr.Read(&m); err != nil {
			return 0, 0, err
		}
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		for _, msg := range msgs {
			if err := fw.Write(msg); err != nil {
				return 0, 0, err
			}
			if err := fr.Read(&m); err != nil {
				return 0, 0, err
			}
		}
	}
	elapsed := time.Since(start).Seconds()
	return float64(iters*len(msgs)) / elapsed, bytesPerFrame, nil
}

// allocWorkload measures heap allocations and throughput per sampling
// increment for one dispatch path over 16 noise streams on a 4-worker pool:
// the legacy shape (a fresh []func() of fresh closures per batch — one
// allocation per draw before this was rewritten) versus the indexed DoN path
// the sampling layer now uses.
func allocWorkload(indexed bool, rounds int) AllocRun {
	const nstreams = 16
	pool := sched.New(sched.Config{Workers: 4})
	defer pool.Close()
	streams := make([]*noise.Stream, nstreams)
	for i := range streams {
		streams[i] = noise.NewStream(1.0, 0.5, sched.StreamSeed(9, int64(i)))
	}
	ctx := context.Background()
	fn := func(i int) { streams[i].Sample(0.1) }
	batch := func() {
		if indexed {
			pool.DoN(ctx, nstreams, fn)
			return
		}
		tasks := make([]func(), nstreams)
		for i := range tasks {
			i := i
			tasks[i] = func() { streams[i].Sample(0.1) }
		}
		pool.Do(ctx, tasks)
	}
	batch() // warm the pool before measuring
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		batch()
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	draws := float64(rounds * nstreams)
	path := "closure-do"
	if indexed {
		path = "indexed-don"
	}
	return AllocRun{
		Path:          path,
		AllocsPerDraw: float64(after.Mallocs-before.Mallocs) / draws,
		DrawsPerSec:   draws / elapsed,
	}
}

// obsOverheadWorkload times the CPU-model batch workload with the obs hot
// path toggled and returns the row plus the sampled means (instrumentation
// must not move a bit of them).
func obsOverheadWorkload(enabled bool, batch, rounds, spin int) (ObsOverheadRun, []float64) {
	obs.SetEnabled(enabled)
	defer obs.SetEnabled(true)
	sec, means := schedWorkload(4, batch, rounds, SpinCost(spin))
	mode := "stripped"
	if enabled {
		mode = "instrumented"
	}
	return ObsOverheadRun{Mode: mode, DrawsPerSec: float64(batch*rounds) / sec}, means
}

// SchedScaling measures SampleAll wall time against the sched worker count
// for both cost models and checks cross-worker determinism.
func SchedScaling(opt Options) (*SchedScalingResult, error) {
	const batch = 16 // d+3 with d=13
	rounds := 40
	spin := 120_000
	lat := 400 * time.Microsecond
	if opt.Quick {
		rounds = 10
		spin = 30_000
		lat = 150 * time.Microsecond
	}
	res := &SchedScalingResult{Batch: batch, Rounds: rounds, NumCPU: runtime.NumCPU(), Deterministic: true}
	var baseMeans []float64
	for _, workers := range []int{1, 2, 4, 8} {
		cpuSec, means := schedWorkload(workers, batch, rounds, SpinCost(spin))
		latSec, _ := schedWorkload(workers, batch, rounds, LatencyCost(lat))
		if baseMeans == nil {
			baseMeans = means
		} else {
			for i := range means {
				if means[i] != baseMeans[i] {
					res.Deterministic = false
				}
			}
		}
		res.Runs = append(res.Runs, SchedRun{Workers: workers, CPUSeconds: cpuSec, LatencySeconds: latSec})
	}
	for i := range res.Runs {
		res.Runs[i].CPUSpeedup = res.Runs[0].CPUSeconds / res.Runs[i].CPUSeconds
		res.Runs[i].LatencySpeedup = res.Runs[0].LatencySeconds / res.Runs[i].LatencySeconds
	}

	// Speculative step latency: the tentpole claim behind Config.Speculative
	// is that one prioritized candidate batch beats the sequential
	// reflect-then-expand/contract round-trips once the pool holds the whole
	// batch (>= 3 workers); at one worker speculation must pay, not win.
	stepIters := 30
	if opt.Quick {
		stepIters = 12
	}
	res.StepIters = stepIters
	res.SpecDeterministic = true
	var seqFP, specFP string
	for _, workers := range []int{1, 4, 8} {
		seqSec, seqRes := stepLatencyWorkload(workers, false, stepIters, lat)
		specSec, specRes := stepLatencyWorkload(workers, true, stepIters, lat)
		if seqFP == "" {
			seqFP, specFP = stepFingerprint(seqRes), stepFingerprint(specRes)
		} else if stepFingerprint(seqRes) != seqFP || stepFingerprint(specRes) != specFP {
			res.SpecDeterministic = false
		}
		res.StepLatency = append(res.StepLatency, StepLatencyRun{
			Workers:        workers,
			SeqStepMillis:  seqSec * 1e3,
			SpecStepMillis: specSec * 1e3,
			Speedup:        seqSec / specSec,
		})
	}

	// Distributed fleet: the identical batch sequence farmed to remote
	// agents. The latency model is the fleet's home turf — each agent's wait
	// overlaps — and the means must match the in-process rows bit for bit.
	res.DistDeterministic = true
	for _, agents := range []int{1, 2, 4, 8} {
		sec, means, err := distWorkload(agents, batch, rounds, lat)
		if err != nil {
			return nil, fmt.Errorf("dist scaling with %d agents: %w", agents, err)
		}
		for i := range means {
			if means[i] != baseMeans[i] {
				res.DistDeterministic = false
			}
		}
		res.Dist = append(res.Dist, DistRun{Agents: agents, Seconds: sec})
	}
	for i := range res.Dist {
		res.Dist[i].Speedup = res.Dist[0].Seconds / res.Dist[i].Seconds
	}

	// Frame-codec throughput: the wire work one coordinator round-trip costs
	// under each codec, message mix matched to the fleet rows above.
	protoIters := 20_000
	if opt.Quick {
		protoIters = 4_000
	}
	for _, proto := range []dist.Proto{dist.ProtoJSON, dist.ProtoBinary} {
		fps, bpf, err := protoBenchWorkload(proto, protoIters)
		if err != nil {
			return nil, fmt.Errorf("proto bench (%s): %w", proto, err)
		}
		res.Proto = append(res.Proto, ProtoBenchRun{Codec: proto.String(), FramesPerSec: fps, BytesPerFrame: bpf})
	}
	res.ProtoSpeedup = res.Proto[1].FramesPerSec / res.Proto[0].FramesPerSec

	// Per-draw allocations: the legacy closure-per-task dispatch versus the
	// indexed DoN path the sampling layer now runs on.
	allocRounds := 20_000
	if opt.Quick {
		allocRounds = 4_000
	}
	res.Allocs = []AllocRun{allocWorkload(false, allocRounds), allocWorkload(true, allocRounds)}

	// Instrumentation overhead: the same CPU-model workload with the obs
	// metrics live versus stripped. The estimates must stay bitwise
	// identical — the metrics read no randomness and steer no control flow.
	// Interleaved best-of-3 per mode, so scheduler and thermal noise does
	// not masquerade as instrumentation cost.
	instr := ObsOverheadRun{Mode: "instrumented"}
	stripped := ObsOverheadRun{Mode: "stripped"}
	for trial := 0; trial < 3; trial++ {
		for _, best := range []*ObsOverheadRun{&instr, &stripped} {
			row, means := obsOverheadWorkload(best.Mode == "instrumented", batch, rounds, spin)
			for i := range means {
				if means[i] != baseMeans[i] {
					res.Deterministic = false
				}
			}
			if row.DrawsPerSec > best.DrawsPerSec {
				best.DrawsPerSec = row.DrawsPerSec
			}
		}
	}
	res.ObsOverhead = []ObsOverheadRun{instr, stripped}
	res.ObsOverheadPct = (1 - instr.DrawsPerSec/stripped.DrawsPerSec) * 100
	return res, nil
}

// SchedScalingJSON renders the study as the BENCH_sched.json payload.
func SchedScalingJSON(opt Options) ([]byte, error) {
	res, err := SchedScaling(opt)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(res, "", "  ")
}

// BenchSched renders the scaling study as a table.
func BenchSched(opt Options) (string, error) {
	res, err := SchedScaling(opt)
	if err != nil {
		return "", err
	}
	header := []string{"workers", "cpu (s)", "cpu speedup", "latency (s)", "latency speedup"}
	var rows [][]string
	for _, r := range res.Runs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.3f", r.CPUSeconds),
			fmt.Sprintf("%.2fx", r.CPUSpeedup),
			fmt.Sprintf("%.3f", r.LatencySeconds),
			fmt.Sprintf("%.2fx", r.LatencySpeedup),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sched scaling: %d-point SampleAll batches x%d, host cores=%d\n",
		res.Batch, res.Rounds, res.NumCPU)
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "bitwise-identical estimates across worker counts: %v\n", res.Deterministic)

	fmt.Fprintf(&b, "\nspeculative step latency: DET x%d steps, latency cost model\n", res.StepIters)
	stepHeader := []string{"workers", "seq step (ms)", "spec step (ms)", "spec speedup"}
	var stepRows [][]string
	for _, r := range res.StepLatency {
		stepRows = append(stepRows, []string{
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.3f", r.SeqStepMillis),
			fmt.Sprintf("%.3f", r.SpecStepMillis),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	b.WriteString(textplot.Table(stepHeader, stepRows))
	fmt.Fprintf(&b, "bitwise-identical speculative results across worker counts: %v\n", res.SpecDeterministic)

	fmt.Fprintf(&b, "\ndistributed fleet scaling: same batches over remote agents (TCP), latency cost model\n")
	distHeader := []string{"agents", "seconds", "speedup"}
	var distRows [][]string
	for _, r := range res.Dist {
		distRows = append(distRows, []string{
			fmt.Sprintf("%d", r.Agents),
			fmt.Sprintf("%.3f", r.Seconds),
			fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	b.WriteString(textplot.Table(distHeader, distRows))
	fmt.Fprintf(&b, "fleet estimates bitwise-identical to in-process runs: %v\n", res.DistDeterministic)

	fmt.Fprintf(&b, "\nframe codecs: encode+decode of a 16-task dispatch + results round-trip\n")
	protoHeader := []string{"codec", "frames/s", "bytes/frame"}
	var protoRows [][]string
	for _, r := range res.Proto {
		protoRows = append(protoRows, []string{
			r.Codec,
			fmt.Sprintf("%.0f", r.FramesPerSec),
			fmt.Sprintf("%.1f", r.BytesPerFrame),
		})
	}
	b.WriteString(textplot.Table(protoHeader, protoRows))
	fmt.Fprintf(&b, "binary over json: %.2fx frames/s\n", res.ProtoSpeedup)

	fmt.Fprintf(&b, "\nper-draw allocations: 16-stream batches on a 4-worker pool\n")
	allocHeader := []string{"dispatch path", "allocs/draw", "draws/s"}
	var allocRows [][]string
	for _, r := range res.Allocs {
		allocRows = append(allocRows, []string{
			r.Path,
			fmt.Sprintf("%.3f", r.AllocsPerDraw),
			fmt.Sprintf("%.0f", r.DrawsPerSec),
		})
	}
	b.WriteString(textplot.Table(allocHeader, allocRows))

	fmt.Fprintf(&b, "\ninstrumentation overhead: CPU-model batches, obs metrics live vs stripped\n")
	obsHeader := []string{"mode", "draws/s"}
	var obsRows [][]string
	for _, r := range res.ObsOverhead {
		obsRows = append(obsRows, []string{r.Mode, fmt.Sprintf("%.0f", r.DrawsPerSec)})
	}
	b.WriteString(textplot.Table(obsHeader, obsRows))
	fmt.Fprintf(&b, "instrumented slowdown: %.3f%%\n", res.ObsOverheadPct)
	return b.String(), nil
}
