package experiments

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"strings"
	"time"

	"repro/internal/sim"
	"repro/internal/testfunc"
	"repro/internal/textplot"
)

// This file is the expensive-objective scenario behind BENCH_sched.json: it
// measures how LocalSpace.SampleAll scales with the sched worker count when
// each sampling increment actually costs something, and verifies that the
// concurrency never changes a single bit of the sampled estimates.
//
// Two cost models bracket real deployments:
//
//   - cpu: each increment burns local CPU (an in-process MD segment). Wall
//     time scales with physical cores; on a single-core host it is flat.
//   - latency: each increment waits on an external resource (a remote worker,
//     a file-spool round-trip — the paper's deployment shape). Concurrent
//     dispatch overlaps the waits, so the speedup tracks the worker count
//     regardless of core count.

// SpinCost returns a SampleCost hook that burns roughly n floating-point
// operations per increment.
func SpinCost(n int) func([]float64, float64) {
	return func([]float64, float64) {
		x := 1.0
		for i := 0; i < n; i++ {
			x = math.Sqrt(x + float64(i&7))
		}
		if x < 0 {
			panic("unreachable")
		}
	}
}

// LatencyCost returns a SampleCost hook that waits d per increment,
// modelling an external simulation the process does not execute itself.
func LatencyCost(d time.Duration) func([]float64, float64) {
	return func([]float64, float64) { time.Sleep(d) }
}

// SchedRun is one row of the scaling study.
type SchedRun struct {
	// Workers is the sched pool size.
	Workers int
	// CPUSeconds / LatencySeconds are the measured wall seconds for the
	// full batch sequence under each cost model.
	CPUSeconds, LatencySeconds float64
	// CPUSpeedup / LatencySpeedup are relative to the Workers=1 row.
	CPUSpeedup, LatencySpeedup float64
}

// SchedScalingResult is the full study, serialized into BENCH_sched.json.
type SchedScalingResult struct {
	// Batch is the points per SampleAll (d+3 with d=13, the paper's shape).
	Batch int `json:"batch"`
	// Rounds is the number of SampleAll batches timed.
	Rounds int `json:"rounds"`
	// NumCPU records the host's core count (CPU rows cannot exceed it).
	NumCPU int `json:"num_cpu"`
	// Deterministic reports whether every worker count produced bitwise
	// identical estimates.
	Deterministic bool       `json:"deterministic"`
	Runs          []SchedRun `json:"runs"`
}

func (r SchedRun) MarshalJSON() ([]byte, error) {
	type row struct {
		Workers        int     `json:"workers"`
		CPUSeconds     float64 `json:"cpu_seconds"`
		CPUSpeedup     float64 `json:"cpu_speedup"`
		LatencySeconds float64 `json:"latency_seconds"`
		LatencySpeedup float64 `json:"latency_speedup"`
	}
	return json.Marshal(row{r.Workers, r.CPUSeconds, r.CPUSpeedup, r.LatencySeconds, r.LatencySpeedup})
}

// schedWorkload runs the timed batch sequence on a fresh space and returns
// the elapsed wall seconds plus every point's final mean (the determinism
// fingerprint).
func schedWorkload(workers, batch, rounds int, cost func([]float64, float64)) (float64, []float64) {
	s := sim.NewLocalSpace(sim.LocalConfig{
		Dim:        3,
		F:          testfunc.Rosenbrock,
		Sigma0:     sim.ConstSigma(10),
		Seed:       1,
		Parallel:   true,
		Workers:    workers,
		SampleCost: cost,
	})
	defer s.Close()
	pts := make([]sim.Point, batch)
	for i := range pts {
		pts[i] = s.NewPoint([]float64{float64(i%5) - 2, 1, 2})
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		s.SampleAll(pts, 0.1)
	}
	elapsed := time.Since(start).Seconds()
	means := make([]float64, batch)
	for i, p := range pts {
		means[i] = p.Estimate().Mean
	}
	return elapsed, means
}

// SchedScaling measures SampleAll wall time against the sched worker count
// for both cost models and checks cross-worker determinism.
func SchedScaling(opt Options) (*SchedScalingResult, error) {
	const batch = 16 // d+3 with d=13
	rounds := 40
	spin := 120_000
	lat := 400 * time.Microsecond
	if opt.Quick {
		rounds = 10
		spin = 30_000
		lat = 150 * time.Microsecond
	}
	res := &SchedScalingResult{Batch: batch, Rounds: rounds, NumCPU: runtime.NumCPU(), Deterministic: true}
	var baseMeans []float64
	for _, workers := range []int{1, 2, 4, 8} {
		cpuSec, means := schedWorkload(workers, batch, rounds, SpinCost(spin))
		latSec, _ := schedWorkload(workers, batch, rounds, LatencyCost(lat))
		if baseMeans == nil {
			baseMeans = means
		} else {
			for i := range means {
				if means[i] != baseMeans[i] {
					res.Deterministic = false
				}
			}
		}
		res.Runs = append(res.Runs, SchedRun{Workers: workers, CPUSeconds: cpuSec, LatencySeconds: latSec})
	}
	for i := range res.Runs {
		res.Runs[i].CPUSpeedup = res.Runs[0].CPUSeconds / res.Runs[i].CPUSeconds
		res.Runs[i].LatencySpeedup = res.Runs[0].LatencySeconds / res.Runs[i].LatencySeconds
	}
	return res, nil
}

// SchedScalingJSON renders the study as the BENCH_sched.json payload.
func SchedScalingJSON(opt Options) ([]byte, error) {
	res, err := SchedScaling(opt)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(res, "", "  ")
}

// BenchSched renders the scaling study as a table.
func BenchSched(opt Options) (string, error) {
	res, err := SchedScaling(opt)
	if err != nil {
		return "", err
	}
	header := []string{"workers", "cpu (s)", "cpu speedup", "latency (s)", "latency speedup"}
	var rows [][]string
	for _, r := range res.Runs {
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Workers),
			fmt.Sprintf("%.3f", r.CPUSeconds),
			fmt.Sprintf("%.2fx", r.CPUSpeedup),
			fmt.Sprintf("%.3f", r.LatencySeconds),
			fmt.Sprintf("%.2fx", r.LatencySpeedup),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sched scaling: %d-point SampleAll batches x%d, host cores=%d\n",
		res.Batch, res.Rounds, res.NumCPU)
	b.WriteString(textplot.Table(header, rows))
	fmt.Fprintf(&b, "bitwise-identical estimates across worker counts: %v\n", res.Deterministic)
	return b.String(), nil
}
