package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/testfunc"
	"repro/internal/water"
)

var quick = Options{Quick: true, Seed: 1}

func TestRegistryComplete(t *testing.T) {
	// Every table (3.1-3.5) and figure (3.3-3.20) of the evaluation must
	// have a registered driver.
	want := []string{
		"Table3.1", "Table3.2", "Table3.3", "Table3.4", "Table3.5",
		"Fig3.3", "Fig3.4", "Fig3.5", "Fig3.6", "Fig3.7", "Fig3.8",
		"Fig3.9", "Fig3.10", "Fig3.11", "Fig3.12", "Fig3.13", "Fig3.14",
		"Fig3.15", "Fig3.16", "Fig3.17", "Fig3.18", "Fig3.19", "Fig3.20",
		"BenchSched", "BenchJobs", "BenchServe",
	}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d drivers, want %d", len(reg), len(want))
	}
	for i, name := range want {
		if reg[i].Name != name {
			t.Errorf("registry[%d] = %q, want %q", i, reg[i].Name, name)
		}
	}
	if _, err := ByName("Fig3.5"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestTable31ShapeClaims(t *testing.T) {
	rows, err := Table31Rows(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != quick.inputs() {
		t.Fatalf("inputs = %d", len(rows))
	}
	// Paper: MN accuracy (R) is roughly independent of k — the spread of R
	// across k within one input should be bounded relative to its scale;
	// and all runs must actually iterate.
	for input, perK := range rows {
		for k, m := range perK {
			if m.N == 0 {
				t.Errorf("input %d k=%v: zero iterations", input, k)
			}
			if m.R < 0 || m.D < 0 {
				t.Errorf("input %d k=%v: negative measures", input, k)
			}
		}
	}
}

func TestTable32SmallK1IsWorse(t *testing.T) {
	rows, err := Table32Rows(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: overly small k1 generates large errors; compare the k1=2^0
	// column against k1=2^20 aggregated over inputs.
	var rSmall, rLarge float64
	var nSmall, nLarge int
	for _, perK := range rows {
		rSmall += perK[1].R
		rLarge += perK[1<<20].R
		nSmall += perK[1].N
		nLarge += perK[1<<20].N
	}
	if rSmall <= rLarge {
		t.Errorf("small k1 error %v not larger than k1=2^20 error %v", rSmall, rLarge)
	}
	if nSmall >= nLarge {
		t.Errorf("small k1 iterations %d not fewer than k1=2^20 iterations %d", nSmall, nLarge)
	}
}

func TestTable33RendersAllDims(t *testing.T) {
	out, err := Table33(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"70", "160", "310"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3.3 missing total %s:\n%s", want, out)
		}
	}
}

// The central claim of Fig 3.5a: at heavy noise, MN lands closer to the true
// minimum than DET in the majority-to-significant-minority sense; the median
// log ratio must not favor DET.
func TestFig35MNvsDETShape(t *testing.T) {
	num := comparisonConfig(core.MN, quick)
	den := comparisonConfig(core.DET, quick)
	f := mustFunc(t, "rosenbrock")
	ratios, _, _, err := pairComparison(quick, f, 4, 1000, num, den, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if med := stats.Median(ratios); med > 0.5 {
		t.Fatalf("MN vs DET median log-ratio %v favours DET", med)
	}
	if frac := stats.FractionBelow(ratios, 0.5); frac < 0.5 {
		t.Fatalf("MN ties-or-beats DET in only %.0f%% of runs", 100*frac)
	}
}

// Fig 3.5b claim: PC ties or outperforms MN in ~90% of cases at high noise.
func TestFig35PCvsMNShape(t *testing.T) {
	num := comparisonConfig(core.PC, quick)
	den := comparisonConfig(core.MN, quick)
	f := mustFunc(t, "rosenbrock")
	ratios, _, _, err := pairComparison(quick, f, 4, 1000, num, den, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if frac := stats.FractionBelow(ratios, 0.5); frac < 0.6 {
		t.Fatalf("PC ties-or-beats MN in only %.0f%% of runs", 100*frac)
	}
}

// Fig 3.5c claim: the PC+MN vs PC distribution is near-symmetric with a
// slight PC+MN edge ("performs slightly better at all noise levels, but only
// by a small margin"). The paper's companion step-count asymmetry (178 vs
// 900 steps) does not reproduce under parallel all-active sampling — see
// EXPERIMENTS.md — so the robust assertions are the accuracy relation and
// the mechanism itself: PC+MN runs the max-noise gate (wait rounds > 0)
// while plain PC never does.
func TestPCMNvsPCShape(t *testing.T) {
	num := comparisonConfig(core.PCMN, quick)
	den := comparisonConfig(core.PC, quick)
	f := mustFunc(t, "rosenbrock")
	ratios, pcmnM, pcM, err := pairComparison(quick, f, 4, 1000, num, den, -5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if med := stats.Median(ratios); med > 0.5 {
		t.Fatalf("PC+MN vs PC median log-ratio %v strongly favours PC", med)
	}
	var pcmnWaits, pcWaits int
	for i := range pcmnM {
		pcmnWaits += pcmnM[i].Result.WaitRounds
		pcWaits += pcM[i].Result.WaitRounds
	}
	if pcWaits != 0 {
		t.Fatalf("plain PC recorded %d max-noise wait rounds", pcWaits)
	}
	if pcmnWaits == 0 {
		t.Fatal("PC+MN never engaged the max-noise gate")
	}
}

func TestAblationRatiosRun(t *testing.T) {
	tiny := Options{Quick: true, Seed: 3}
	ratios, err := AblationRatios(tiny, core.Conditions(1), core.AllConditions)
	if err != nil {
		t.Fatal(err)
	}
	if len(ratios) != tiny.seeds() {
		t.Fatalf("got %d ratios", len(ratios))
	}
}

func TestFig34Renders(t *testing.T) {
	out, err := Fig34(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MN k=2", "Anderson k1=2^30", "input 1", "time (s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 3.4 missing %q", want)
		}
	}
}

func TestFig35RendersAllPanels(t *testing.T) {
	out, err := Fig35(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(a) MN vs DET", "(b) PC vs MN", "(c) PC+MN vs PC", "median="} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 3.5 missing %q", want)
		}
	}
}

func TestFig318Renders(t *testing.T) {
	out, err := Fig318(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(a) best value vs time", "(b) best value vs steps", "(c) time per simplex step", "procs"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 3.18 missing %q", want)
		}
	}
}

func TestFig33Renders(t *testing.T) {
	out, err := Fig33(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Rosenbrock") || len(out) < 500 {
		t.Fatalf("suspicious Fig 3.3 output (%d bytes)", len(out))
	}
}

func TestFig37Renders(t *testing.T) {
	out, err := Fig37(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "k=1 vs k=2") || !strings.Contains(out, "median=") {
		t.Fatalf("Fig 3.7 output malformed:\n%s", out)
	}
}

func TestScaleUpRuns(t *testing.T) {
	runs, err := ScaleUpRuns(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("quick scale-up dims = %d", len(runs))
	}
	for _, r := range runs {
		if r.Processes != int64(r.D)+3+int64(r.D)+3+int64(r.D)+3+1 {
			t.Errorf("d=%d live processes %d mismatch", r.D, r.Processes)
		}
		if len(r.Times) == 0 || r.TimePerStep <= 0 {
			t.Errorf("d=%d trace missing", r.D)
		}
	}
	// Higher dimension costs more per step (the overhead model plus larger
	// collapses).
	if runs[1].TimePerStep <= runs[0].TimePerStep {
		t.Errorf("time/step did not grow with d: %v vs %v",
			runs[0].TimePerStep, runs[1].TimePerStep)
	}
}

func TestWaterStudyConvergesNearTIP4P(t *testing.T) {
	res, err := WaterStudy(quick, core.PC)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's claim: final parameters land near the published TIP4P
	// values (eps ~0.147-0.155, sigma ~3.15-3.16, qH ~0.52-0.523).
	if res.Final.Epsilon < 0.10 || res.Final.Epsilon > 0.22 {
		t.Errorf("final eps = %v far from TIP4P", res.Final.Epsilon)
	}
	if res.Final.Sigma < 3.0 || res.Final.Sigma > 3.35 {
		t.Errorf("final sigma = %v far from TIP4P", res.Final.Sigma)
	}
	if res.Final.QH < 0.46 || res.Final.QH > 0.58 {
		t.Errorf("final qH = %v far from TIP4P", res.Final.QH)
	}
	// The optimized model must beat the poor starting vertex.
	start := WaterInitialSimplex()[0]
	if res.Cost >= waterCostOf(start) {
		t.Errorf("no improvement: cost %v vs start %v", res.Cost, waterCostOf(start))
	}
	if len(res.Stages) != 4 {
		t.Errorf("stages = %d", len(res.Stages))
	}
}

func TestTable34Renders(t *testing.T) {
	out, err := Table34(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"(a) Initial parameters", "MN", "PC", "PC+MN", "eps"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3.4 missing %q", want)
		}
	}
}

func TestTable35Renders(t *testing.T) {
	out, err := Table35(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"D", "gHH", "gOH", "gOO", "P", "E", "TIP4P V", "EXP V"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 3.5 missing %q:\n%s", want, out)
		}
	}
}

func TestFig319And320Render(t *testing.T) {
	out, err := Fig319(quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"experiment", "TIP4P", "optimized", "non-optimal"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig 3.19 missing %q", want)
		}
	}
	out, err = Fig320(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "stages") || !strings.Contains(out, "converged") {
		t.Errorf("Fig 3.20 malformed:\n%s", out)
	}
}

func mustFunc(t *testing.T, name string) testfunc.Func {
	t.Helper()
	f, err := testfunc.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func waterCostOf(x []float64) float64 { return water.NoiseFreeCost(x) }

func TestSchedScalingDeterministicAndComplete(t *testing.T) {
	res, err := SchedScaling(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Deterministic {
		t.Fatal("estimates differ across worker counts")
	}
	if len(res.Runs) != 4 || res.Runs[0].Workers != 1 {
		t.Fatalf("unexpected runs: %+v", res.Runs)
	}
	// The latency-bound model must show real concurrency even on one core:
	// the 4-worker row overlaps four waits, so >= 2x is a conservative gate
	// (measured ~4x; slack absorbs scheduler jitter on loaded CI hosts).
	four := res.Runs[2]
	if four.Workers != 4 || four.LatencySpeedup < 2 {
		t.Fatalf("latency speedup at 4 workers = %.2fx, want >= 2x", four.LatencySpeedup)
	}
	if out, err := BenchSched(quick); err != nil || !strings.Contains(out, "bitwise-identical") {
		t.Fatalf("BenchSched render: %v\n%s", err, out)
	}
	if payload, err := SchedScalingJSON(quick); err != nil || !strings.Contains(string(payload), "\"runs\"") {
		t.Fatalf("SchedScalingJSON: %v", err)
	}
}

func TestBenchJobs(t *testing.T) {
	res, err := JobsBench(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 5 || res.Runs[0].Concurrency != 1 || res.Runs[4].Concurrency != 16 {
		t.Fatalf("unexpected run set: %+v", res.Runs)
	}
	if !res.Deterministic {
		t.Fatal("job results changed with run-pool width")
	}
	// Jobs block on the simulated point latency, so widening the pool must
	// raise throughput even on one core; >= 2x at width 8 is conservative
	// (measured ~5-7x; slack absorbs CI scheduler jitter).
	eight := res.Runs[3]
	if eight.Concurrency != 8 || eight.Speedup < 2 {
		t.Fatalf("throughput speedup at pool width 8 = %.2fx, want >= 2x", eight.Speedup)
	}
	for _, r := range res.Runs {
		if r.P99Ms < r.P50Ms || r.P50Ms <= 0 {
			t.Fatalf("bad latency percentiles: %+v", r)
		}
	}
	// Render both artifact forms from the single already-computed result —
	// re-running the wall-clock workload per render would triple this
	// test's real-time cost.
	if out := jobsBenchTable(res); !strings.Contains(out, "bitwise-identical") {
		t.Fatalf("BenchJobs render:\n%s", out)
	}
	if payload, err := jobsBenchPayload(res); err != nil || !strings.Contains(string(payload), "\"runs\"") {
		t.Fatalf("JobsBenchJSON payload: %v", err)
	}
	if BenchJSONWriters()["BENCH_jobs.json"] == nil || BenchJSONWriters()["BENCH_sched.json"] == nil {
		t.Fatal("BenchJSONWriters is missing an artifact")
	}
}

// TestBenchServe smoke-runs the sharded-serving chaos study at quick scale:
// the kill must actually orphan jobs, failover must recover all of them,
// and every recovered result must match its uninterrupted reference run.
func TestBenchServe(t *testing.T) {
	res, err := ServeBench(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Load.JobsPerSec <= 0 || res.Load.P99Ms < res.Load.P50Ms {
		t.Fatalf("bad load phase: %+v", res.Load)
	}
	if res.Chaos.KilledShardJobs == 0 {
		t.Fatal("chaos phase killed a shard with no jobs on it")
	}
	if !res.Chaos.Deterministic {
		t.Fatal("recovered results diverged from uninterrupted reference runs")
	}
	// The dead-declaration window floors recovery (half of it in the worst
	// probe alignment); an instant "recovery" means the kill never landed.
	if res.Chaos.RecoverySeconds < res.Chaos.DeadAfterSeconds/2 {
		t.Fatalf("recovery %.3fs implausibly beat the dead-declaration floor %.3fs",
			res.Chaos.RecoverySeconds, res.Chaos.DeadAfterSeconds)
	}
	if res.Fairness.FIFO.P99Ms <= 0 || res.Fairness.Fair.P99Ms <= 0 {
		t.Fatalf("fairness phase did not run: %+v", res.Fairness)
	}
	// The point of fair-share: with a heavy tenant saturating the fleet, the
	// light tenant's worst-case latency must beat the FIFO baseline.
	if res.Fairness.Fair.P99Ms >= res.Fairness.FIFO.P99Ms {
		t.Fatalf("fair-share light-tenant p99 %.2fms did not beat FIFO %.2fms",
			res.Fairness.Fair.P99Ms, res.Fairness.FIFO.P99Ms)
	}
	out := serveBenchTable(res)
	if !strings.Contains(out, "byte-identical") {
		t.Fatalf("BenchServe render:\n%s", out)
	}
	if !strings.Contains(out, "speedup over FIFO") {
		t.Fatalf("BenchServe render is missing the fairness rows:\n%s", out)
	}
	if BenchJSONWriters()["BENCH_serve.json"] == nil {
		t.Fatal("BenchJSONWriters is missing BENCH_serve.json")
	}
}
