package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/testfunc"
	"repro/internal/textplot"
)

// This file is the sharded-serving scenario behind BENCH_serve.json: a
// two-shard optd deployment (each shard the real serve handler over a
// WAL-backed jobs.Manager) behind the real shard router, driven over HTTP
// by concurrent clients. Phase one measures steady-state serving (jobs/sec,
// submit-to-done p50/p99 through the router). Phase two is the chaos leg:
// a fresh load is pushed, shard 0 is killed mid-load (its evaluations
// freeze and its listener drops — the in-process stand-in for SIGKILL; the
// CI e2e kills a real optd process), and the harness measures how long the
// router takes to declare it dead, fail its WAL over to the survivor and
// drain every orphaned job — then verifies each recovered job's result is
// byte-identical to an uninterrupted reference run of the same spec.

// ServeBenchResult is the full study, serialized into BENCH_serve.json.
type ServeBenchResult struct {
	// Shards is the shard count (fixed at 2).
	Shards int `json:"shards"`
	// JobIterations is the per-job simplex iteration cap.
	JobIterations int `json:"job_iterations"`
	// PointLatencyUS is the simulated per-point-creation latency in
	// microseconds.
	PointLatencyUS int `json:"point_latency_us"`
	// Clients is the number of concurrent submitting clients.
	Clients int `json:"clients"`
	// NumCPU records the host's core count.
	NumCPU int `json:"num_cpu"`

	// Load is the steady-state phase.
	Load ServeLoad `json:"load"`
	// Chaos is the shard-kill phase.
	Chaos ServeChaos `json:"chaos"`
	// Fairness is the two-tenant fleet-saturation phase.
	Fairness ServeFairness `json:"fairness"`
}

// ServeFairness is the weighted fair-share measurement: a heavy tenant
// saturates the sampling fleet with long-running jobs while a light tenant
// submits short jobs one at a time, under the FIFO baseline scheduler and
// under fair-share. The light tenant's submit-to-done latency is the whole
// point of per-tenant scheduling: under FIFO its batches queue behind every
// heavy batch; under fair-share the two tenants' queues interleave.
type ServeFairness struct {
	// Workers is the sampling-fleet size both legs run on.
	Workers int `json:"workers"`
	// HeavyJobs is how many saturating jobs the heavy tenant keeps running.
	HeavyJobs int `json:"heavy_jobs"`
	// LightJobs is how many short jobs the light tenant submits serially.
	LightJobs int `json:"light_jobs"`
	// LightIterations is the light jobs' iteration cap.
	LightIterations int `json:"light_iterations"`
	// FIFO and Fair are the light tenant's latencies under each policy.
	FIFO ServeFairnessLeg `json:"fifo"`
	Fair ServeFairnessLeg `json:"fair"`
	// FairSpeedupP99 is FIFO p99 / fair p99 — the headline: how much
	// sooner the light tenant's worst-case job finishes under fair-share.
	FairSpeedupP99 float64 `json:"fair_speedup_p99"`
}

// ServeFairnessLeg is the light tenant's submit-to-done latency under one
// scheduling policy.
type ServeFairnessLeg struct {
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// ServeLoad is the steady-state serving measurement.
type ServeLoad struct {
	// Jobs is the number of jobs pushed through the router.
	Jobs int `json:"jobs"`
	// WallSeconds is submit-to-drain wall time.
	WallSeconds float64 `json:"wall_seconds"`
	// JobsPerSec is Jobs / WallSeconds.
	JobsPerSec float64 `json:"jobs_per_sec"`
	// P50Ms and P99Ms are submit-to-done latency percentiles through the
	// router, in milliseconds.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// ServeChaos is the shard-kill measurement.
type ServeChaos struct {
	// Jobs is the chaos-phase load size.
	Jobs int `json:"jobs"`
	// KilledShardJobs is how many of them were placed on the killed shard.
	KilledShardJobs int `json:"killed_shard_jobs"`
	// RecoveredJobs is how many were still pending at the kill and were
	// failed over to the survivor.
	RecoveredJobs int `json:"recovered_jobs"`
	// DeadAfterSeconds is the router's configured unreachable-to-dead
	// window (a floor on recovery time).
	DeadAfterSeconds float64 `json:"dead_after_seconds"`
	// RecoverySeconds is kill-to-drain: from the instant the shard died to
	// the last orphaned job finishing on the survivor.
	RecoverySeconds float64 `json:"recovery_seconds"`
	// WallSeconds is the whole chaos phase, submit to drain.
	WallSeconds float64 `json:"wall_seconds"`
	// Deterministic reports whether every recovered job's result was
	// byte-identical to an uninterrupted reference run.
	Deterministic bool `json:"deterministic"`
}

// benchShard is one in-process replica: the production handler over a
// WAL-backed manager, plus a freeze switch standing in for SIGKILL.
type benchShard struct {
	mgr    *jobs.Manager
	ts     *httptest.Server
	frozen atomic.Bool
	gate   chan struct{}
}

func (s *benchShard) addr() string { return strings.TrimPrefix(s.ts.URL, "http://") }

// kill freezes the shard's evaluations (running jobs stop making progress,
// so nothing more is written to its WAL) and drops its listener. The
// manager object is deliberately NOT closed: a crash doesn't run deferred
// cleanup either.
func (s *benchShard) kill() {
	s.frozen.Store(true)
	// Let evaluations already past the freeze check land, so the set of
	// terminal jobs is stable when the survivor reads the WAL.
	time.Sleep(50 * time.Millisecond)
	s.ts.Close()
}

// release unfreezes a killed shard so its blocked goroutines can drain at
// teardown (the bench process is long-lived; a real crash has no teardown).
func (s *benchShard) release() { close(s.gate) }

func newBenchShard(dir string, maxConcurrent int, delay time.Duration) (*benchShard, error) {
	s := &benchShard{gate: make(chan struct{})}
	mgr, err := jobs.New(jobs.Config{
		MaxConcurrent: maxConcurrent,
		CheckpointDir: dir,
		StoreKind:     "wal",
		Objectives: map[string]func([]float64) float64{
			"latentrosen": func(x []float64) float64 {
				if s.frozen.Load() {
					<-s.gate
				}
				time.Sleep(delay)
				return testfunc.Rosenbrock(x)
			},
		},
	})
	if err != nil {
		return nil, err
	}
	s.mgr = mgr
	s.ts = httptest.NewServer(serve.New(serve.Config{Mgr: mgr, DefaultSeed: 1}))
	return s, nil
}

// serveSpec is the bench workload spec, seed-indexed.
func serveSpec(seed int64, iters int) jobs.Spec {
	return jobs.Spec{
		Objective:     "latentrosen",
		Dim:           3,
		Algorithm:     "pc",
		Sigma0:        50,
		Seed:          seed,
		Tol:           -1,
		Budget:        1e12,
		MaxIterations: iters,
		Tenant:        fmt.Sprintf("team%d", seed%4),
	}
}

// fairSpec is the fairness-phase workload spec: pso rather than the serving
// phases' simplex strategy, because a swarm evaluates all its particles as
// one sampling batch per iteration — exactly the fleet-queue pressure the
// fair-share scheduler arbitrates. (NM-family steps sample one point at a
// time, which rides the scheduler's in-caller serial path and never queues.)
func fairSpec(tenant string, seed int64, swarmIters int) jobs.Spec {
	return jobs.Spec{
		Objective:       "rosenbrock",
		Dim:             3,
		Algorithm:       "pso",
		Sigma0:          50,
		Seed:            seed,
		Tol:             -1,
		Budget:          1e12,
		Particles:       16,
		SwarmIterations: swarmIters,
		Tenant:          tenant,
	}
}

// fairnessLeg measures the light tenant's submit-to-done latency under one
// scheduling policy: heavyJobs saturating jobs iterate until canceled on a
// deliberately small sampling fleet, while the light tenant submits short
// jobs one at a time and times each to completion.
func fairnessLeg(policy string, workers, heavyJobs, lightJobs, lightIters int, delay time.Duration) (ServeFairnessLeg, error) {
	var leg ServeFairnessLeg
	// The contended resource is the shared sampling fleet, so the simulated
	// cost sits on the fleet's workers (SampleCost, per increment) rather
	// than in the objective, which a job evaluates in its own goroutine at
	// point creation.
	m, err := jobs.New(jobs.Config{
		MaxConcurrent: heavyJobs + 1,
		Workers:       workers,
		SchedPolicy:   policy,
		SampleCost:    LatencyCost(delay),
	})
	if err != nil {
		return leg, err
	}
	defer m.Close()

	// Saturate: the heavy tenant's jobs have an effectively unbounded
	// iteration cap, so the fleet's queue stays full of heavy batches for
	// the whole measurement; they are canceled once the light tenant is done.
	heavyIDs := make([]string, 0, heavyJobs)
	for i := 0; i < heavyJobs; i++ {
		id, err := m.Submit(fairSpec("heavy", 3000+int64(i), 1<<30))
		if err != nil {
			return leg, err
		}
		heavyIDs = append(heavyIDs, id)
	}
	saturated := time.Now().Add(30 * time.Second)
	for m.Stats().Running < heavyJobs {
		if time.Now().After(saturated) {
			return leg, fmt.Errorf("fairness: heavy tenant never saturated the fleet (%+v)", m.Stats())
		}
		time.Sleep(time.Millisecond)
	}

	lats := make([]time.Duration, 0, lightJobs)
	for i := 0; i < lightJobs; i++ {
		start := time.Now()
		id, err := m.Submit(fairSpec("light", 4000+int64(i), lightIters))
		if err != nil {
			return leg, err
		}
		if _, err := m.Wait(id); err != nil {
			return leg, err
		}
		lats = append(lats, time.Since(start))
	}
	for _, id := range heavyIDs {
		m.Cancel(id)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	leg.P50Ms = percentile(lats, 0.50)
	leg.P99Ms = percentile(lats, 0.99)
	return leg, nil
}

// submitOne posts a spec through the router and returns the assigned ID.
func submitOne(base string, spec jobs.Spec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, out.Error)
	}
	return out.ID, nil
}

// pollDone polls a job through the router until it is terminal (or the
// abandon check says its shard died with the result already finalized, or
// the deadline passes). It tolerates transient proxy errors — that IS the
// failover window.
func pollDone(base, id string, abandon func(string) bool, deadline time.Time) (string, error) {
	for time.Now().Before(deadline) {
		if abandon != nil && abandon(id) {
			return "abandoned", nil
		}
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err == nil {
			var st struct {
				State string `json:"state"`
			}
			derr := json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if derr == nil && resp.StatusCode == http.StatusOK {
				switch st.State {
				case "done", "failed", "canceled":
					return st.State, nil
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	return "", fmt.Errorf("job %s: poll deadline exceeded", id)
}

// drive pushes n jobs through the router with `clients` concurrent
// submitters and waits for all of them, returning each job's ID,
// submit-to-done latency and terminal state, in submission order.
type driven struct {
	id    string
	state string
	lat   time.Duration
}

func drive(base string, seed0 int64, n, iters, clients int, abandon func(string) bool, timeout time.Duration) ([]driven, error) {
	out := make([]driven, n)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	deadline := time.Now().Add(timeout)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() { // per-iteration c: each client gets its own copy
			defer wg.Done()
			for i := c; i < n; i += clients {
				start := time.Now()
				// Submits retry through transient router errors: a 502
				// during the dead-declaration window is expected chaos, not
				// a bench failure.
				var id string
				var err error
				for {
					id, err = submitOne(base, serveSpec(seed0+int64(i), iters))
					if err == nil || time.Now().After(deadline) {
						break
					}
					time.Sleep(5 * time.Millisecond)
				}
				if err != nil {
					errs[c] = err
					return
				}
				out[i].id = id
				state, err := pollDone(base, id, abandon, deadline)
				if err != nil {
					errs[c] = err
					return
				}
				out[i].state = state
				out[i].lat = time.Since(start)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// referenceResult runs spec to completion in a fresh standalone manager and
// returns its result serialized — the uninterrupted baseline the recovered
// jobs must match byte for byte.
func referenceResult(spec jobs.Spec, delay time.Duration) ([]byte, error) {
	m, err := jobs.New(jobs.Config{
		MaxConcurrent: 1,
		Objectives: map[string]func([]float64) float64{
			"latentrosen": func(x []float64) float64 {
				time.Sleep(delay)
				return testfunc.Rosenbrock(x)
			},
		},
	})
	if err != nil {
		return nil, err
	}
	defer m.Close()
	id, err := m.Submit(spec)
	if err != nil {
		return nil, err
	}
	res, err := m.Wait(id)
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

// routedResult fetches a terminal job's result through the router, raw.
func routedResult(base, id string) ([]byte, error) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/result")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Result json.RawMessage `json:"result"`
		Error  string          `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK || out.Result == nil {
		return nil, fmt.Errorf("result %s: HTTP %d: %s", id, resp.StatusCode, out.Error)
	}
	return out.Result, nil
}

// ServeBench runs the two-phase sharded-serving study.
func ServeBench(opt Options) (*ServeBenchResult, error) {
	loadJobs, chaosJobs, iters, clients := 48, 32, 25, 8
	delay := 200 * time.Microsecond
	deadAfter := time.Second
	if opt.Quick {
		loadJobs, chaosJobs, iters, clients = 16, 12, 10, 4
		delay = 100 * time.Microsecond
		deadAfter = 300 * time.Millisecond
	}
	res := &ServeBenchResult{
		Shards:         2,
		JobIterations:  iters,
		PointLatencyUS: int(delay / time.Microsecond),
		Clients:        clients,
		NumCPU:         runtime.NumCPU(),
	}

	dir0, err := os.MkdirTemp("", "servebench-s0-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir0)
	dir1, err := os.MkdirTemp("", "servebench-s1-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir1)

	s0, err := newBenchShard(dir0, 2, delay)
	if err != nil {
		return nil, err
	}
	defer func() { s0.release(); s0.mgr.Close() }()
	s1, err := newBenchShard(dir1, 2, delay)
	if err != nil {
		return nil, err
	}
	defer func() {
		s1.ts.Close()
		s1.mgr.Close()
	}()

	router, err := shard.New(shard.Config{
		Shards: []shard.Shard{
			{Addr: s0.addr(), Dir: dir0, Store: "wal"},
			{Addr: s1.addr(), Dir: dir1, Store: "wal"},
		},
		Probe:     25 * time.Millisecond,
		DeadAfter: deadAfter,
	})
	if err != nil {
		return nil, err
	}
	defer router.Close()
	front := httptest.NewServer(router.Handler())
	defer front.Close()

	// Phase 1: steady state.
	start := time.Now()
	loaded, err := drive(front.URL, 1000, loadJobs, iters, clients, nil, 2*time.Minute)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	lats := make([]time.Duration, 0, len(loaded))
	for _, d := range loaded {
		if d.state != "done" {
			return nil, fmt.Errorf("load job %s finished %s", d.id, d.state)
		}
		lats = append(lats, d.lat)
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	res.Load = ServeLoad{
		Jobs:        loadJobs,
		WallSeconds: wall,
		JobsPerSec:  float64(loadJobs) / wall,
		P50Ms:       percentile(lats, 0.50),
		P99Ms:       percentile(lats, 0.99),
	}

	// Phase 2: chaos. Submit the load, kill shard 0 mid-flight, measure
	// kill-to-drain, and verify the recovered results.
	var (
		chaosMu   sync.Mutex
		abandoned = map[string]bool{} // guarded by chaosMu: done-on-dead-shard IDs
		killedAt  time.Time
	)
	abandon := func(id string) bool {
		chaosMu.Lock()
		defer chaosMu.Unlock()
		return abandoned[id]
	}
	chaosStart := time.Now()
	resultc := make(chan []driven, 1)
	errc := make(chan error, 1)
	go func() {
		chased, err := drive(front.URL, 2000, chaosJobs, iters, clients, abandon, 2*time.Minute)
		if err != nil {
			errc <- err
			return
		}
		resultc <- chased
	}()
	// Kill once shard 0 actually has load on it.
	for {
		st := s0.mgr.Stats()
		if st.Running > 0 || st.Queued > 0 {
			break
		}
		if time.Since(chaosStart) > 30*time.Second {
			return nil, fmt.Errorf("chaos: shard 0 never received load")
		}
		time.Sleep(2 * time.Millisecond)
	}
	s0.kill()
	killedAt = time.Now()
	// A job that finished on shard 0 before the kill died with its shard:
	// its record is deleted, so the survivor can never serve it. Its
	// client abandons the poll instead of waiting forever.
	chaosMu.Lock()
	for _, st := range s0.mgr.List() {
		if st.State.Terminal() {
			abandoned[st.ID] = true
		}
	}
	chaosMu.Unlock()
	var chased []driven
	select {
	case chased = <-resultc:
	case err := <-errc:
		return nil, err
	}
	drained := time.Now()

	killedShard, recovered := 0, 0
	deterministic := true
	for i, d := range chased {
		if shard.Pick(d.id, 2) != 0 {
			if d.state != "done" {
				return nil, fmt.Errorf("chaos job %s on surviving shard finished %s", d.id, d.state)
			}
			continue
		}
		killedShard++
		if d.state == "abandoned" {
			continue // finished and died with shard 0
		}
		if d.state != "done" {
			return nil, fmt.Errorf("chaos job %s on killed shard finished %s", d.id, d.state)
		}
		recovered++
		got, err := routedResult(front.URL, d.id)
		if err != nil {
			return nil, err
		}
		want, err := referenceResult(serveSpec(2000+int64(i), iters), delay)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(got, want) {
			deterministic = false
		}
	}
	res.Chaos = ServeChaos{
		Jobs:             chaosJobs,
		KilledShardJobs:  killedShard,
		RecoveredJobs:    recovered,
		DeadAfterSeconds: deadAfter.Seconds(),
		RecoverySeconds:  drained.Sub(killedAt).Seconds(),
		WallSeconds:      drained.Sub(chaosStart).Seconds(),
		Deterministic:    deterministic,
	}

	// Phase 3: fairness. Two fresh managers, identical except for the
	// scheduling policy, each with a tiny sampling fleet the heavy tenant
	// saturates. The per-point latency is raised well above timer jitter so
	// the measured difference is the queueing structure, not noise.
	fairWorkers, heavyJobs, lightJobs, lightIters := 2, 8, 6, 8
	if opt.Quick {
		heavyJobs, lightJobs, lightIters = 6, 5, 6
	}
	fairDelay := 5 * delay
	fifoLeg, fifoErr := fairnessLeg("fifo", fairWorkers, heavyJobs, lightJobs, lightIters, fairDelay)
	if fifoErr != nil {
		return nil, fifoErr
	}
	fairLeg, fairErr := fairnessLeg("fair", fairWorkers, heavyJobs, lightJobs, lightIters, fairDelay)
	if fairErr != nil {
		return nil, fairErr
	}
	res.Fairness = ServeFairness{
		Workers:         fairWorkers,
		HeavyJobs:       heavyJobs,
		LightJobs:       lightJobs,
		LightIterations: lightIters,
		FIFO:            fifoLeg,
		Fair:            fairLeg,
	}
	if fairLeg.P99Ms > 0 {
		res.Fairness.FairSpeedupP99 = fifoLeg.P99Ms / fairLeg.P99Ms
	}
	return res, nil
}

// ServeBenchJSON renders the study as the BENCH_serve.json payload.
func ServeBenchJSON(opt Options) ([]byte, error) {
	res, err := ServeBench(opt)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(res, "", "  ")
}

// BenchServe renders the study as a table.
func BenchServe(opt Options) (string, error) {
	res, err := ServeBench(opt)
	if err != nil {
		return "", err
	}
	return serveBenchTable(res), nil
}

// serveBenchTable renders an already-computed study.
func serveBenchTable(res *ServeBenchResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "sharded serving: %d shards, %d clients, %d iterations/job, %dus point latency, host cores=%d\n",
		res.Shards, res.Clients, res.JobIterations, res.PointLatencyUS, res.NumCPU)
	b.WriteString(textplot.Table(
		[]string{"phase", "jobs", "wall (s)", "jobs/s", "p50 (ms)", "p99 (ms)"},
		[][]string{{
			"load",
			fmt.Sprintf("%d", res.Load.Jobs),
			fmt.Sprintf("%.3f", res.Load.WallSeconds),
			fmt.Sprintf("%.1f", res.Load.JobsPerSec),
			fmt.Sprintf("%.1f", res.Load.P50Ms),
			fmt.Sprintf("%.1f", res.Load.P99Ms),
		}},
	))
	fmt.Fprintf(&b, "chaos: %d jobs, %d on killed shard, %d recovered by failover; dead-after=%.2fs recovery=%.3fs\n",
		res.Chaos.Jobs, res.Chaos.KilledShardJobs, res.Chaos.RecoveredJobs,
		res.Chaos.DeadAfterSeconds, res.Chaos.RecoverySeconds)
	fmt.Fprintf(&b, "recovered results byte-identical to uninterrupted reference runs: %v\n", res.Chaos.Deterministic)
	fmt.Fprintf(&b, "fairness: light tenant vs %d heavy jobs saturating %d workers (%d iterations/job)\n",
		res.Fairness.HeavyJobs, res.Fairness.Workers, res.Fairness.LightIterations)
	b.WriteString(textplot.Table(
		[]string{"policy", "light jobs", "p50 (ms)", "p99 (ms)"},
		[][]string{
			{
				"fifo",
				fmt.Sprintf("%d", res.Fairness.LightJobs),
				fmt.Sprintf("%.1f", res.Fairness.FIFO.P50Ms),
				fmt.Sprintf("%.1f", res.Fairness.FIFO.P99Ms),
			},
			{
				"fair",
				fmt.Sprintf("%d", res.Fairness.LightJobs),
				fmt.Sprintf("%.1f", res.Fairness.Fair.P50Ms),
				fmt.Sprintf("%.1f", res.Fairness.Fair.P99Ms),
			},
		},
	))
	fmt.Fprintf(&b, "fair-share light-tenant p99 speedup over FIFO: %.1fx\n", res.Fairness.FairSpeedupP99)
	return b.String()
}
