package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/testfunc"
	"repro/internal/textplot"
)

// table31Sigma is the controlled noise level of the Table 3.1/3.2 study: the
// paper chose sigma0 "so that simplex updates would occur on timescales of
// ~10^4 seconds in the late stages" — with convergence-zone separations of
// order 0.1, sigma0 = 10 puts the late-stage waits at t ~ (sigma0/0.1)^2 =
// 10^4 virtual seconds.
const table31Sigma = 10

// table31Start draws the paper's initial states for the 3-d study: "each of
// the three coordinates for each of the four vertices was uniformly
// distributed over [-6, 3]".
func table31Start(input int, seedBase int64) [][]float64 {
	rng := rand.New(rand.NewSource(seedBase + int64(input)*101))
	return uniformSimplex(3, -6, 3, rng)
}

// Table31Rows computes the MN rows: for each input and each k in {2,3,4,5}
// the N, R, D measures. Exposed (with Table32Rows) so benchmarks and tests
// can assert on the numbers behind the rendering.
func Table31Rows(opt Options) (map[int]map[float64]*runMeasures, error) {
	rosen, _ := testfunc.ByName("rosenbrock")
	out := make(map[int]map[float64]*runMeasures)
	ks := []float64{2, 3, 4, 5}
	for input := 1; input <= opt.inputs(); input++ {
		out[input] = make(map[float64]*runMeasures)
		for _, k := range ks {
			cfg := core.DefaultConfig(core.MN)
			cfg.MNK = k
			cfg.MaxWalltime = opt.budget()
			cfg.MaxIterations = 3000
			m, err := run(runSpec{
				f: rosen, dim: 3, sigma0: table31Sigma,
				seed:    opt.Seed + int64(input*1000) + int64(k),
				start:   table31Start(input, opt.Seed),
				cfg:     cfg,
				overTol: 0.5,
			})
			if err != nil {
				return nil, err
			}
			out[input][k] = m
		}
	}
	return out, nil
}

// Table31 renders "Results of optimization using MN algorithm with
// controlled noise": N, R, D for five inputs at k = 2..5.
func Table31(opt Options) (string, error) {
	rows, err := Table31Rows(opt)
	if err != nil {
		return "", err
	}
	return renderNRD("Table 3.1: MN algorithm with controlled noise (Rosenbrock 3-d)",
		"k", []float64{2, 3, 4, 5}, rows), nil
}

// Table32Rows computes the Anderson-criterion rows for k1 in
// {2^0, 2^10, 2^20, 2^30} at k2 = 0.
func Table32Rows(opt Options) (map[int]map[float64]*runMeasures, error) {
	rosen, _ := testfunc.ByName("rosenbrock")
	out := make(map[int]map[float64]*runMeasures)
	k1s := []float64{1, 1 << 10, 1 << 20, 1 << 30}
	for input := 1; input <= opt.inputs(); input++ {
		out[input] = make(map[float64]*runMeasures)
		for _, k1 := range k1s {
			cfg := core.DefaultConfig(core.AndersonNM)
			cfg.K1 = k1
			cfg.K2 = 0
			cfg.MaxWalltime = opt.budget()
			cfg.MaxIterations = 3000
			m, err := run(runSpec{
				f: rosen, dim: 3, sigma0: table31Sigma,
				seed:    opt.Seed + int64(input*1000) + int64(math.Log2(k1)),
				start:   table31Start(input, opt.Seed),
				cfg:     cfg,
				overTol: 0.5,
			})
			if err != nil {
				return nil, err
			}
			out[input][k1] = m
		}
	}
	return out, nil
}

// Table32 renders "Results of optimization using Anderson algorithm with
// controlled noise".
func Table32(opt Options) (string, error) {
	rows, err := Table32Rows(opt)
	if err != nil {
		return "", err
	}
	return renderNRD("Table 3.2: Anderson criterion with controlled noise (Rosenbrock 3-d)",
		"k1", []float64{1, 1 << 10, 1 << 20, 1 << 30}, rows), nil
}

func renderNRD(title, kName string, ks []float64, rows map[int]map[float64]*runMeasures) string {
	kLabel := func(k float64) string {
		if kName == "k1" && k >= 1024 {
			return fmt.Sprintf("2^%d", int(math.Round(math.Log2(k))))
		}
		return fmt.Sprintf("%g", k)
	}
	header := []string{"input"}
	for _, metric := range []string{"N", "R", "D"} {
		for _, k := range ks {
			header = append(header, fmt.Sprintf("%s(%s=%s)", metric, kName, kLabel(k)))
		}
	}
	var body [][]string
	for _, input := range sortedKeys(rows) {
		row := []string{fmt.Sprintf("%d", input)}
		for _, k := range ks {
			row = append(row, fmt.Sprintf("%d", rows[input][k].N))
		}
		for _, k := range ks {
			row = append(row, fmtG(rows[input][k].R))
		}
		for _, k := range ks {
			row = append(row, fmtG(rows[input][k].D))
		}
		body = append(body, row)
	}
	return title + "\n" + textplot.Table(header, body)
}

// Fig33 renders the Rosenbrock surface (Figure 3.3) as a log-scaled ASCII
// height map over [-2, 2.5] x [-1, 2].
func Fig33(Options) (string, error) {
	const w, h = 64, 22
	shades := []byte(" .:-=+*#%@")
	var b strings.Builder
	b.WriteString("Fig 3.3: Rosenbrock banana surface, log10(1+f) over x in [-2,2.5], y in [-1,2]\n")
	for row := 0; row < h; row++ {
		y := 2 - 3*float64(row)/float64(h-1)
		for col := 0; col < w; col++ {
			x := -2 + 4.5*float64(col)/float64(w-1)
			v := math.Log10(1 + testfunc.Rosenbrock([]float64{x, y}))
			idx := int(v / 4.3 * float64(len(shades)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shades) {
				idx = len(shades) - 1
			}
			b.WriteByte(shades[idx])
		}
		b.WriteByte('\n')
	}
	b.WriteString("(valley floor ' ' traces y = x^2 toward the minimum at (1,1))\n")
	return b.String(), nil
}

// Fig34 renders the function-value-vs-time traces: MN at k = 2..5 (left
// column of the paper's figure) and the Anderson criterion at k1 = 2^0,
// 2^10, 2^20, 2^30 (right column), one pair of plots per input.
func Fig34(opt Options) (string, error) {
	rosen, _ := testfunc.ByName("rosenbrock")
	var b strings.Builder
	b.WriteString("Fig 3.4: best function value vs time, MN (left params) vs Anderson (right params)\n\n")
	for input := 1; input <= opt.inputs(); input++ {
		start := table31Start(input, opt.Seed)

		var mnSeries []textplot.Series
		for _, k := range []float64{2, 3, 4, 5} {
			cfg := core.DefaultConfig(core.MN)
			cfg.MNK = k
			cfg.MaxWalltime = opt.budget()
			cfg.MaxIterations = 2000
			var xs, ys []float64
			cfg.Trace = func(e core.TraceEvent) {
				xs = append(xs, e.Time)
				ys = append(ys, math.Max(e.BestUnderlying, 1e-4))
			}
			if _, err := run(runSpec{
				f: rosen, dim: 3, sigma0: table31Sigma,
				seed:  opt.Seed + int64(input*999) + int64(k),
				start: start, cfg: cfg, overTol: 0.5,
			}); err != nil {
				return "", err
			}
			mnSeries = append(mnSeries, textplot.Series{Name: fmt.Sprintf("MN k=%g", k), X: xs, Y: ys})
		}
		b.WriteString(textplot.XY(mnSeries, textplot.XYOptions{
			Title:  fmt.Sprintf("input %d: MN", input),
			LogX:   true,
			LogY:   true,
			XLabel: "time (s)", YLabel: "f(best)",
		}))
		b.WriteString("\n")

		var anSeries []textplot.Series
		for _, k1 := range []float64{1, 1 << 10, 1 << 20, 1 << 30} {
			cfg := core.DefaultConfig(core.AndersonNM)
			cfg.K1 = k1
			cfg.MaxWalltime = opt.budget()
			cfg.MaxIterations = 2000
			var xs, ys []float64
			cfg.Trace = func(e core.TraceEvent) {
				xs = append(xs, e.Time)
				ys = append(ys, math.Max(e.BestUnderlying, 1e-4))
			}
			if _, err := run(runSpec{
				f: rosen, dim: 3, sigma0: table31Sigma,
				seed:  opt.Seed + int64(input*999) + int64(math.Log2(k1)),
				start: start, cfg: cfg, overTol: 0.5,
			}); err != nil {
				return "", err
			}
			anSeries = append(anSeries, textplot.Series{Name: fmt.Sprintf("Anderson k1=2^%d", int(math.Log2(k1))), X: xs, Y: ys})
		}
		b.WriteString(textplot.XY(anSeries, textplot.XYOptions{
			Title:  fmt.Sprintf("input %d: Anderson criterion", input),
			LogX:   true,
			LogY:   true,
			XLabel: "time (s)", YLabel: "f(best)",
		}))
		b.WriteString("\n")
	}
	return b.String(), nil
}

// pairComparison runs two configurations over the same set of initial
// simplex states and returns the log10 ratios of the noise-free residuals
// the paper histograms (negative = numerator method came closer to the
// minimum).
func pairComparison(opt Options, f testfunc.Func, dim int, sigma0 float64,
	num, den core.Config, lo, hi float64) ([]float64, []*runMeasures, []*runMeasures, error) {

	n := opt.seeds()
	ratios := make([]float64, 0, n)
	numM := make([]*runMeasures, 0, n)
	denM := make([]*runMeasures, 0, n)
	for s := 0; s < n; s++ {
		rng := rand.New(rand.NewSource(opt.Seed + int64(s)*7919))
		start := uniformSimplex(dim, lo, hi, rng)
		seed := opt.Seed + int64(s)*104729
		a, err := run(runSpec{f: f, dim: dim, sigma0: sigma0, seed: seed, start: start, cfg: num})
		if err != nil {
			return nil, nil, nil, err
		}
		b, err := run(runSpec{f: f, dim: dim, sigma0: sigma0, seed: seed, start: start, cfg: den})
		if err != nil {
			return nil, nil, nil, err
		}
		ratios = append(ratios, stats.LogRatio(a.Residual, b.Residual, residualEps))
		numM = append(numM, a)
		denM = append(denM, b)
	}
	return ratios, numM, denM, nil
}

// comparisonConfig builds the standard study configuration for an algorithm:
// no tolerance cut, fixed virtual-time budget, capped iterations.
func comparisonConfig(alg core.Algorithm, opt Options) core.Config {
	cfg := core.DefaultConfig(alg)
	cfg.MaxWalltime = opt.budget()
	cfg.MaxIterations = 3000
	cfg.Tol = 0
	return cfg
}

// ratioHistogram renders one panel of a Fig 3.5-style comparison.
func ratioHistogram(title string, ratios []float64) string {
	h := stats.NewHistogram(-8, 8, 16)
	h.AddAll(ratios)
	out := textplot.Histogram(h, textplot.HistogramOptions{
		Title:  title,
		XLabel: "log10(min num / min den)",
	})
	out += fmt.Sprintf("median=%.2f, frac(num better)=%.2f, frac(tie or better)=%.2f\n",
		stats.Median(ratios), stats.FractionBelow(ratios, 0), stats.FractionBelow(ratios, 0.5))
	return out
}

// fig356 produces the three-panel, three-noise-level comparison of Figs
// 3.5/3.6 for the given test function.
func fig356(opt Options, fname string, lo, hi float64, figName string) (string, error) {
	f, err := testfunc.ByName(fname)
	if err != nil {
		return "", err
	}
	noises := []float64{1, 100, 1000}
	if opt.Quick {
		noises = []float64{1000}
	}
	panels := []struct {
		title    string
		num, den core.Algorithm
	}{
		{"(a) MN vs DET", core.MN, core.DET},
		{"(b) PC vs MN", core.PC, core.MN},
		{"(c) PC+MN vs PC", core.PCMN, core.PC},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: minimum-ratio distributions over %d initial states (%s, 4-d)\n\n",
		figName, opt.seeds(), fname)
	for _, p := range panels {
		for _, sigma := range noises {
			ratios, _, _, err := pairComparison(opt, f, 4, sigma,
				comparisonConfig(p.num, opt), comparisonConfig(p.den, opt), lo, hi)
			if err != nil {
				return "", err
			}
			b.WriteString(ratioHistogram(fmt.Sprintf("%s, sigma0=%g", p.title, sigma), ratios))
			b.WriteString("\n")
		}
	}
	return b.String(), nil
}

// Fig35 reproduces the Rosenbrock comparison histograms.
func Fig35(opt Options) (string, error) {
	return fig356(opt, "rosenbrock", -5, 5, "Fig 3.5")
}

// Fig36 reproduces the Powell comparison histograms.
func Fig36(opt Options) (string, error) {
	return fig356(opt, "powell", -5, 5, "Fig 3.6")
}

// Fig37 compares PC at confidence k=1 against k=2 at sigma0=1000.
func Fig37(opt Options) (string, error) {
	rosen, _ := testfunc.ByName("rosenbrock")
	k1 := comparisonConfig(core.PC, opt)
	k1.K = 1
	k2 := comparisonConfig(core.PC, opt)
	k2.K = 2
	ratios, _, _, err := pairComparison(opt, rosen, 4, 1000, k1, k2, -5, 5)
	if err != nil {
		return "", err
	}
	return ratioHistogram("Fig 3.7: PC k=1 vs k=2, sigma0=1000", ratios), nil
}

// conditionAblation compares two PC error-bar masks under the Fig 3.8-3.17
// protocol (Rosenbrock 4-d, sigma0 = 1000).
func conditionAblation(opt Options, title string, maskNum, maskDen core.ConditionMask) (string, error) {
	rosen, _ := testfunc.ByName("rosenbrock")
	num := comparisonConfig(core.PC, opt)
	num.ErrorBars = maskNum
	den := comparisonConfig(core.PC, opt)
	den.ErrorBars = maskDen
	ratios, _, _, err := pairComparison(opt, rosen, 4, 1000, num, den, -5, 5)
	if err != nil {
		return "", err
	}
	return ratioHistogram(title, ratios), nil
}

// AblationRatios exposes the raw log-ratios of a mask-vs-mask comparison for
// the tests and benchmarks.
func AblationRatios(opt Options, maskNum, maskDen core.ConditionMask) ([]float64, error) {
	rosen, _ := testfunc.ByName("rosenbrock")
	num := comparisonConfig(core.PC, opt)
	num.ErrorBars = maskNum
	den := comparisonConfig(core.PC, opt)
	den.ErrorBars = maskDen
	ratios, _, _, err := pairComparison(opt, rosen, 4, 1000, num, den, -5, 5)
	return ratios, err
}

// Fig38 compares error bars in condition 1 only against condition 6 only.
func Fig38(opt Options) (string, error) {
	return conditionAblation(opt, "Fig 3.8: PC error bar in c1 only vs c6 only, sigma0=1000",
		core.Conditions(1), core.Conditions(6))
}

// figSingleVsAll generates Figs 3.9-3.15: condition N alone vs all seven.
func figSingleVsAll(opt Options, fig string, n int) (string, error) {
	return conditionAblation(opt,
		fmt.Sprintf("%s: PC error bar in c%d only vs all conditions (c1-7), sigma0=1000", fig, n),
		core.Conditions(n), core.AllConditions)
}

// Fig39 through Fig315 reproduce the single-condition-vs-strict ablations.
func Fig39(opt Options) (string, error)  { return figSingleVsAll(opt, "Fig 3.9", 1) }
func Fig310(opt Options) (string, error) { return figSingleVsAll(opt, "Fig 3.10", 2) }
func Fig311(opt Options) (string, error) { return figSingleVsAll(opt, "Fig 3.11", 3) }
func Fig312(opt Options) (string, error) { return figSingleVsAll(opt, "Fig 3.12", 4) }
func Fig313(opt Options) (string, error) { return figSingleVsAll(opt, "Fig 3.13", 5) }
func Fig314(opt Options) (string, error) { return figSingleVsAll(opt, "Fig 3.14", 6) }
func Fig315(opt Options) (string, error) { return figSingleVsAll(opt, "Fig 3.15", 7) }

// Fig316 compares c1 alone against the c136 combination.
func Fig316(opt Options) (string, error) {
	return conditionAblation(opt, "Fig 3.16: PC error bar in c1 only vs c136, sigma0=1000",
		core.Conditions(1), core.Conditions(1, 3, 6))
}

// Fig317 compares c136 against the strict c1-7.
func Fig317(opt Options) (string, error) {
	return conditionAblation(opt, "Fig 3.17: PC error bar in c136 vs all conditions (c1-7), sigma0=1000",
		core.Conditions(1, 3, 6), core.AllConditions)
}
