// Package experiments contains one driver per table and figure of the
// paper's evaluation (chapter 3). Each driver regenerates the corresponding
// artifact: it builds the workload, runs the algorithms under the same
// protocol the paper describes, and renders the result as text (tables via
// textplot.Table, figures via textplot.Histogram / textplot.XY).
//
// Every driver accepts Options so the full paper-scale protocol (100 initial
// simplex states, five inputs, three noise levels) and a quick smoke-scale
// variant (for tests and benchmarks) share one code path.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/testfunc"
)

// Options control experiment scale.
type Options struct {
	// Quick reduces replica counts for smoke tests and benchmarks.
	Quick bool
	// Seed offsets every random stream, for replica studies.
	Seed int64
}

// seeds returns the number of initial simplex states to average over
// (the paper uses 100).
func (o Options) seeds() int {
	if o.Quick {
		return 8
	}
	return 100
}

// inputs returns the number of initial states for the Table 3.1/3.2 studies
// (the paper uses 5).
func (o Options) inputs() int {
	if o.Quick {
		return 2
	}
	return 5
}

// budget returns the virtual walltime budget per optimization run.
func (o Options) budget() float64 {
	if o.Quick {
		return 3e4
	}
	return 3e5
}

// Driver is a registered experiment: it renders its artifact as text.
type Driver struct {
	// Name is the CLI identifier (e.g. "Table3.1", "Fig3.5").
	Name string
	// Paper describes what the artifact shows.
	Paper string
	// Run produces the rendered artifact.
	Run func(Options) (string, error)
}

// Registry lists every reproducible table and figure in paper order.
func Registry() []Driver {
	return []Driver{
		{"Table3.1", "MN on noisy Rosenbrock: N/R/D for 5 inputs x k=2..5", Table31},
		{"Table3.2", "Anderson criterion: N/R/D for 5 inputs x k1=2^0..2^30", Table32},
		{"Table3.3", "MW processor allocation for d=20/50/100", Table33},
		{"Table3.4", "Initial and final TIP4P parameters under MN/PC/PC+MN", Table34},
		{"Table3.5", "Property values and errors vs TIP4P and experiment", Table35},
		{"Fig3.3", "The Rosenbrock banana surface", Fig33},
		{"Fig3.4", "Function value vs time: MN(k) vs Anderson(k1), 5 inputs", Fig34},
		{"Fig3.5", "log-ratio histograms MN/DET, PC/MN, PC+MN/PC (Rosenbrock)", Fig35},
		{"Fig3.6", "log-ratio histograms MN/DET, PC/MN, PC+MN/PC (Powell)", Fig36},
		{"Fig3.7", "PC confidence k=1 vs k=2", Fig37},
		{"Fig3.8", "PC error bars: c1 only vs c6 only", Fig38},
		{"Fig3.9", "PC error bars: c1 only vs all (c1-7)", Fig39},
		{"Fig3.10", "PC error bars: c2 only vs all (c1-7)", Fig310},
		{"Fig3.11", "PC error bars: c3 only vs all (c1-7)", Fig311},
		{"Fig3.12", "PC error bars: c4 only vs all (c1-7)", Fig312},
		{"Fig3.13", "PC error bars: c5 only vs all (c1-7)", Fig313},
		{"Fig3.14", "PC error bars: c6 only vs all (c1-7)", Fig314},
		{"Fig3.15", "PC error bars: c7 only vs all (c1-7)", Fig315},
		{"Fig3.16", "PC error bars: c1 only vs c136", Fig316},
		{"Fig3.17", "PC error bars: c136 vs all (c1-7)", Fig317},
		{"Fig3.18", "MW scale-up: d=20/50/100 time, steps, time/step", Fig318},
		{"Fig3.19", "Optimized gOO(r) vs TIP4P and experiment", Fig319},
		{"Fig3.20", "gOO(r) at successive optimization stages", Fig320},
		{"BenchSched", "sched worker-pool scaling of SampleAll on an expensive objective", BenchSched},
		{"BenchJobs", "jobs-service throughput and latency vs run-pool width", BenchJobs},
		{"BenchServe", "sharded serving: router throughput/latency plus shard-kill failover recovery", BenchServe},
	}
}

// BenchJSONWriters maps benchmark artifact basenames to their JSON payload
// generators (the cmd/experiments -benchjson flag selects by basename).
func BenchJSONWriters() map[string]func(Options) ([]byte, error) {
	return map[string]func(Options) ([]byte, error){
		"BENCH_sched.json": SchedScalingJSON,
		"BENCH_jobs.json":  JobsBenchJSON,
		"BENCH_serve.json": ServeBenchJSON,
	}
}

// ByName finds a registered driver.
func ByName(name string) (Driver, error) {
	for _, d := range Registry() {
		if d.Name == name {
			return d, nil
		}
	}
	return Driver{}, fmt.Errorf("experiments: unknown experiment %q (see Registry)", name)
}

// uniformSimplex draws d+1 vertices with coordinates uniform over [lo, hi)
// (the shared core.UniformSimplex draw).
func uniformSimplex(d int, lo, hi float64, rng *rand.Rand) [][]float64 {
	return core.UniformSimplex(d, lo, hi, rng)
}

// runSpec describes one optimization run of the computational study.
type runSpec struct {
	f       testfunc.Func
	dim     int
	sigma0  float64
	seed    int64
	start   [][]float64
	cfg     core.Config
	overTol float64 // termination tolerance (0 = run to budget)
}

// runMeasures is the paper's per-run performance record (section 3.2).
type runMeasures struct {
	N        int     // iterations to convergence
	R        float64 // |f(best) - fmin| on the noise-free surface
	D        float64 // distance of best vertex to the known solution
	Residual float64 // R clamped for log-ratio plots
	Walltime float64
	Result   *core.Result
}

// residualEps floors residuals so a run that lands exactly on the minimum
// still yields a finite log ratio.
const residualEps = 1e-12

// run executes one optimization and computes the N/R/D measures.
func run(spec runSpec) (*runMeasures, error) {
	space := sim.NewLocalSpace(sim.LocalConfig{
		Dim:      spec.dim,
		F:        spec.f.F,
		Sigma0:   sim.ConstSigma(spec.sigma0),
		Seed:     spec.seed,
		Parallel: true,
	})
	cfg := spec.cfg
	cfg.Tol = spec.overTol
	res, err := core.Optimize(space, spec.start, cfg)
	if err != nil {
		return nil, err
	}
	xmin := spec.f.Minimizer(spec.dim)
	r := spec.f.F(res.BestX) - spec.f.FMin
	resid := r
	if resid < residualEps {
		resid = residualEps
	}
	return &runMeasures{
		N:        res.Iterations,
		R:        r,
		D:        testfunc.Dist(res.BestX, xmin),
		Residual: resid,
		Walltime: res.Walltime,
		Result:   res,
	}, nil
}

// fmtG formats a float compactly for tables.
func fmtG(v float64) string { return fmt.Sprintf("%.4g", v) }

// sortedKeys returns map keys in sorted order (deterministic rendering).
func sortedKeys[K ~int | ~int64, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
