// Package textplot renders the paper's figures as ASCII: bar-chart
// histograms for the log-ratio distributions (Figs 3.5-3.17) and scatter/line
// plots with optional log axes for the convergence traces (Figs 3.4, 3.18).
package textplot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// HistogramOptions tune histogram rendering.
type HistogramOptions struct {
	// Width is the maximum bar length in characters (default 50).
	Width int
	// Title is printed above the plot when non-empty.
	Title string
	// XLabel names the binned quantity.
	XLabel string
}

// Histogram renders h as a horizontal bar chart, one row per bin.
func Histogram(h *stats.Histogram, opt HistogramOptions) string {
	if opt.Width <= 0 {
		opt.Width = 50
	}
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	maxCount := h.MaxCount()
	if maxCount == 0 {
		maxCount = 1
	}
	binW := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Lo + float64(i)*binW
		bar := strings.Repeat("#", int(math.Round(float64(c)/float64(maxCount)*float64(opt.Width))))
		fmt.Fprintf(&b, "[%8.2f,%8.2f) %4d |%s\n", lo, lo+binW, c, bar)
	}
	if opt.XLabel != "" {
		fmt.Fprintf(&b, "x: %s, n=%d\n", opt.XLabel, h.N)
	}
	return b.String()
}

// Series is one named data series for an XY plot.
type Series struct {
	// Name appears in the legend.
	Name string
	// X, Y are the data coordinates (equal length).
	X, Y []float64
	// Marker is the plot character; zero selects one automatically.
	Marker byte
}

// XYOptions tune XY plot rendering.
type XYOptions struct {
	// Width and Height are the plot area size in characters (defaults
	// 64x20).
	Width, Height int
	// LogX / LogY select logarithmic axes; non-positive values are dropped.
	LogX, LogY bool
	// Title is printed above the plot when non-empty.
	Title string
	// XLabel / YLabel name the axes.
	XLabel, YLabel string
}

var defaultMarkers = []byte{'*', '+', 'o', 'x', '@', '%', '&', '~', '^', '='}

// XY renders the series on a shared grid with axis ranges spanning all data.
func XY(series []Series, opt XYOptions) string {
	if opt.Width <= 0 {
		opt.Width = 64
	}
	if opt.Height <= 0 {
		opt.Height = 20
	}

	tx := func(v float64) (float64, bool) {
		if opt.LogX {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	ty := func(v float64) (float64, bool) {
		if opt.LogY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin > xmax || ymin > ymax {
		return "(no plottable data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		for i := range s.X {
			x, okx := tx(s.X[i])
			y, oky := ty(s.Y[i])
			if !okx || !oky || math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(opt.Width-1)))
			row := opt.Height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(opt.Height-1)))
			if col >= 0 && col < opt.Width && row >= 0 && row < opt.Height {
				grid[row][col] = marker
			}
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	axisFmt := func(v float64, log bool) string {
		if log {
			return fmt.Sprintf("1e%.1f", v)
		}
		return fmt.Sprintf("%.3g", v)
	}
	for r, row := range grid {
		label := "          "
		switch r {
		case 0:
			label = fmt.Sprintf("%10s", axisFmt(ymax, opt.LogY))
		case opt.Height - 1:
			label = fmt.Sprintf("%10s", axisFmt(ymin, opt.LogY))
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "%10s  %-*s%s\n", "", opt.Width-6,
		axisFmt(xmin, opt.LogX), axisFmt(xmax, opt.LogX))
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", opt.XLabel, opt.YLabel)
	}
	for si, s := range series {
		marker := s.Marker
		if marker == 0 {
			marker = defaultMarkers[si%len(defaultMarkers)]
		}
		fmt.Fprintf(&b, "  %c %s\n", marker, s.Name)
	}
	return b.String()
}

// Table renders rows with aligned columns; header may be nil.
func Table(header []string, rows [][]string) string {
	widths := make([]int, 0)
	grow := func(cells []string) {
		for i, c := range cells {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if header != nil {
		grow(header)
	}
	for _, r := range rows {
		grow(r)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	if header != nil {
		writeRow(header)
		sep := make([]string, len(header))
		for i := range sep {
			sep[i] = strings.Repeat("-", widths[i])
		}
		writeRow(sep)
	}
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}
