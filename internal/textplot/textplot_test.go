package textplot

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestHistogramRendering(t *testing.T) {
	h := stats.NewHistogram(-2, 2, 4)
	h.AddAll([]float64{-1.5, -0.5, -0.5, 0.5, 0.5, 0.5, 1.5})
	out := Histogram(h, HistogramOptions{Title: "demo", Width: 10, XLabel: "log ratio"})
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 4 bins + xlabel
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// The fullest bin (3 counts) must carry the longest bar.
	if !strings.Contains(lines[3], strings.Repeat("#", 10)) {
		t.Fatalf("max bin bar wrong:\n%s", out)
	}
	if !strings.Contains(out, "n=7") {
		t.Fatal("missing count annotation")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := stats.NewHistogram(0, 1, 3)
	out := Histogram(h, HistogramOptions{})
	if !strings.Contains(out, "0 |") {
		t.Fatalf("empty histogram render:\n%s", out)
	}
}

func TestXYBasic(t *testing.T) {
	s := []Series{{Name: "line", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}}}
	out := XY(s, XYOptions{Width: 20, Height: 5, Title: "t", XLabel: "x", YLabel: "y"})
	if !strings.Contains(out, "t\n") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing markers")
	}
	if !strings.Contains(out, "line") {
		t.Fatal("missing legend")
	}
	if !strings.Contains(out, "x: x   y: y") {
		t.Fatal("missing axis labels")
	}
}

func TestXYLogAxisDropsNonPositive(t *testing.T) {
	s := []Series{{Name: "a", X: []float64{-1, 1, 10, 100}, Y: []float64{0, 1, 2, 3}}}
	out := XY(s, XYOptions{LogX: true, Width: 20, Height: 5})
	if !strings.Contains(out, "1e") {
		t.Fatalf("log axis labels missing:\n%s", out)
	}
}

func TestXYNoData(t *testing.T) {
	out := XY([]Series{{Name: "empty"}}, XYOptions{})
	if !strings.Contains(out, "no plottable data") {
		t.Fatalf("got:\n%s", out)
	}
}

func TestXYMultipleSeriesDistinctMarkers(t *testing.T) {
	s := []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Name: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	}
	out := XY(s, XYOptions{Width: 30, Height: 8})
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("expected distinct markers:\n%s", out)
	}
}

func TestXYConstantSeries(t *testing.T) {
	// Degenerate ranges must not divide by zero.
	s := []Series{{Name: "flat", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}}}
	out := XY(s, XYOptions{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Fatalf("flat series not plotted:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"alg", "N"}, [][]string{{"MN", "76"}, {"PC", "9"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "alg") {
		t.Fatalf("header line: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator line: %q", lines[1])
	}
	// Columns aligned: "MN" padded to width 3 ("alg").
	if !strings.HasPrefix(lines[2], "MN   76") {
		t.Fatalf("row line: %q", lines[2])
	}
}

func TestTableNoHeader(t *testing.T) {
	out := Table(nil, [][]string{{"a", "b"}})
	if strings.Contains(out, "---") {
		t.Fatal("separator without header")
	}
}
