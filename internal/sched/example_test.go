package sched_test

import (
	"context"
	"fmt"

	"repro/internal/sched"
)

// Example fans a batch of 8 evaluations out over 4 workers and joins them.
// The per-index results land in pre-allocated slots, so no synchronization
// beyond the batch join is needed.
func Example() {
	s := sched.New(sched.Config{Workers: 4})
	defer s.Close()

	squares := make([]int, 8)
	if err := s.DoN(context.Background(), len(squares), func(i int) {
		squares[i] = i * i
	}); err != nil {
		fmt.Println("batch failed:", err)
		return
	}
	fmt.Println(squares)
	// Output: [0 1 4 9 16 25 36 49]
}

// ExampleStreamSeed shows the per-point seed derivation: the same (base,
// stream) pair always yields the same seed, and different streams diverge, so
// concurrent sampling stays reproducible.
func ExampleStreamSeed() {
	a := sched.StreamSeed(42, 0)
	b := sched.StreamSeed(42, 1)
	fmt.Println(a == sched.StreamSeed(42, 0), a == b)
	// Output: true false
}
