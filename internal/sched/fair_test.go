package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
)

// drainOrder enqueues counts[i] no-op tasks for tenants[i] (interleaved, as
// concurrent submitters would), then pops the whole backlog through
// dequeueLocked and returns the tenant name charged for each dispatch slot,
// in order. No workers run: this exercises exactly the dispatch decision,
// which is specified to be a pure function of queue state.
func drainOrder(s *Scheduler, tenants []string, counts []int) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	for round := 0; ; round++ {
		queued := false
		for ti, name := range tenants {
			if round < counts[ti] {
				s.enqueueLocked(s.queueForLocked(name), func() {})
				queued = true
			}
		}
		if !queued {
			break
		}
	}
	var order []string
	for s.pending > 0 {
		// Identify the winning queue by observing which tenant's dispatched
		// counter advanced.
		before := make(map[string]uint64, len(s.all))
		for _, q := range s.all {
			before[q.name] = q.dispatched
		}
		s.dequeueLocked()
		for _, q := range s.all {
			if q.dispatched != before[q.name] {
				order = append(order, q.name)
			}
		}
	}
	return order
}

// TestFairShareWeightedOrder pins the stride schedule itself: with tenant a
// at weight 3 and tenant b at weight 1, every window of 4 consecutive
// dispatch slots under a full backlog gives a exactly 3 and b exactly 1 —
// the "~3x the batch slots under contention" contract, with no timing in
// the loop at all.
func TestFairShareWeightedOrder(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	s.SetWeight("a", 3)
	s.SetWeight("b", 1)

	// Backlogs proportional to weight, so both queues stay backlogged until
	// the very end and every window sees real contention.
	order := drainOrder(s, []string{"a", "b"}, []int{60, 20})
	if len(order) != 80 {
		t.Fatalf("drained %d slots, want 80", len(order))
	}
	for win := 0; win+4 <= len(order); win += 4 {
		got := map[string]int{}
		for _, name := range order[win : win+4] {
			got[name]++
		}
		if got["a"] != 3 || got["b"] != 1 {
			t.Fatalf("window %d..%d dispatched %v, want a:3 b:1 (order %v)",
				win, win+4, got, order[:win+4])
		}
	}
}

// TestFairShareEqualWeightsAlternate pins the deterministic tie-break: equal
// weights and equal backlogs must strictly alternate, with the lexically
// smaller tenant winning ties.
func TestFairShareEqualWeightsAlternate(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()

	order := drainOrder(s, []string{"beta", "alpha"}, []int{10, 10})
	for i, name := range order {
		want := "alpha"
		if i%2 == 1 {
			want = "beta"
		}
		if name != want {
			t.Fatalf("slot %d went to %q, want %q (order %v)", i, name, want, order)
		}
	}
}

// TestFIFOPolicyIgnoresTenants pins the benchmark baseline: under FIFO every
// submission lands in one queue and drains in arrival order, whatever the
// weights say.
func TestFIFOPolicyIgnoresTenants(t *testing.T) {
	s := New(Config{Workers: 4, Policy: FIFO})
	defer s.Close()
	s.SetWeight("a", 1000)

	var got []int
	s.mu.Lock()
	for i := 0; i < 8; i++ {
		i := i
		tenant := "a"
		if i%2 == 1 {
			tenant = "b"
		}
		s.enqueueLocked(s.queueForLocked(tenant), func() { got = append(got, i) })
	}
	for s.pending > 0 {
		s.dequeueLocked()()
	}
	s.mu.Unlock()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO drained %v, want strict arrival order", got)
		}
	}
	if len(s.tenants) != 1 {
		t.Fatalf("FIFO built %d queues, want 1", len(s.tenants))
	}
}

// TestFairShareActivationCatchup pins the virtual-time floor: a tenant that
// sat idle while another consumed many slots must re-enter at the current
// virtual time and share from there — not replay its unused past and
// monopolize the fleet.
func TestFairShareActivationCatchup(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()

	s.mu.Lock()
	busy := s.queueForLocked("busy")
	for i := 0; i < 50; i++ {
		s.enqueueLocked(busy, func() {})
	}
	for i := 0; i < 25; i++ {
		s.dequeueLocked()
	}
	// "idle" wakes up mid-stream with its own backlog.
	idle := s.queueForLocked("idle")
	for i := 0; i < 25; i++ {
		s.enqueueLocked(idle, func() {})
	}
	beforeBusy, beforeIdle := busy.dispatched, idle.dispatched
	for i := 0; i < 10; i++ {
		s.dequeueLocked()
	}
	gotBusy := int(busy.dispatched - beforeBusy)
	gotIdle := int(idle.dispatched - beforeIdle)
	s.mu.Unlock()
	// With the catch-up, the next 10 slots split evenly (5/5). Without it,
	// idle's pass would lag 25 strides behind and it would take all 10.
	if gotBusy != 5 || gotIdle != 5 {
		t.Fatalf("post-activation split busy=%d idle=%d, want 5/5", gotBusy, gotIdle)
	}
}

// TestSharesAccountingBalances runs real concurrent traffic from several
// tenants and asserts the fair-share ledger balances: per-tenant dispatched
// counters sum exactly to the scheduler's total, and every queue drains.
func TestSharesAccountingBalances(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	ctx := context.Background()

	var ran atomic.Int64
	var wg sync.WaitGroup
	tenants := []string{"a", "b", "c"}
	for gi, tenant := range tenants {
		wg.Add(1)
		go func(tenant string, w int) {
			defer wg.Done()
			s.SetWeight(tenant, w)
			for k := 0; k < 20; k++ {
				if err := s.DoNAs(ctx, tenant, 16, func(int) { ran.Add(1) }); err != nil {
					t.Error(err)
					return
				}
			}
		}(tenant, gi+1)
	}
	wg.Wait()

	if got := ran.Load(); got != 3*20*16 {
		t.Fatalf("ran %d tasks, want %d", got, 3*20*16)
	}
	shares := s.Shares()
	var sum uint64
	for _, sh := range shares {
		if sh.Queued != 0 {
			t.Errorf("tenant %q still has %d queued after drain", sh.Tenant, sh.Queued)
		}
		sum += sh.Dispatched
	}
	if total := s.Dispatched(); sum != total {
		t.Fatalf("per-tenant dispatched sums to %d, total says %d", sum, total)
	}
	for i := 1; i < len(shares); i++ {
		if shares[i-1].Tenant >= shares[i].Tenant {
			t.Fatalf("Shares not sorted by tenant: %+v", shares)
		}
	}
}
