package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestDoRunsEveryTask(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	var n atomic.Int64
	tasks := make([]func(), 100)
	for i := range tasks {
		tasks[i] = func() { n.Add(1) }
	}
	if err := s.Do(context.Background(), tasks); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d tasks, want 100", n.Load())
	}
}

func TestDoNIndices(t *testing.T) {
	s := New(Config{Workers: 3})
	defer s.Close()
	seen := make([]atomic.Int64, 32)
	if err := s.DoN(context.Background(), 32, func(i int) { seen[i].Add(1) }); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if seen[i].Load() != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, seen[i].Load())
		}
	}
}

func TestConcurrencyBounded(t *testing.T) {
	const workers = 3
	s := New(Config{Workers: workers})
	defer s.Close()
	var cur, max atomic.Int64
	if err := s.DoN(context.Background(), 50, func(int) {
		c := cur.Add(1)
		for {
			m := max.Load()
			if c <= m || max.CompareAndSwap(m, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
	}); err != nil {
		t.Fatal(err)
	}
	if got := max.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", got, workers)
	}
}

func TestSerialWorkerRunsInCaller(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	order := make([]int, 0, 5)
	if err := s.DoN(context.Background(), 5, func(i int) { order = append(order, i) }); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial execution out of order: %v", order)
		}
	}
}

func TestCancelStopsDispatch(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	var once sync.Once
	err := s.DoN(ctx, 100, func(int) {
		started.Add(1)
		once.Do(cancel) // cancel as soon as the first task runs
		time.Sleep(5 * time.Millisecond)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := started.Load(); n >= 100 {
		t.Fatalf("all %d tasks dispatched despite cancellation", n)
	}
}

func TestCanceledBeforeDispatch(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var n atomic.Int64
	if err := s.DoN(ctx, 4, func(int) { n.Add(1) }); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestDoAfterClose(t *testing.T) {
	s := New(Config{Workers: 2})
	s.Do(context.Background(), []func(){func() {}, func() {}}) // start workers
	s.Close()
	err := s.Do(context.Background(), []func(){func() {}, func() {}})
	if err != ErrClosed {
		t.Fatalf("Do after Close: err = %v, want ErrClosed", err)
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := New(Config{Workers: 2})
	s.Close()
	s.Close()
}

func TestPanicPropagates(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want \"boom\"", r)
		}
	}()
	_ = s.DoN(context.Background(), 8, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
	t.Fatal("Do returned instead of panicking")
}

func TestDefaultWorkersPositive(t *testing.T) {
	if w := New(Config{}).Workers(); w < 1 {
		t.Fatalf("default workers = %d", w)
	}
	if Shared().Workers() < 1 {
		t.Fatal("shared scheduler has no workers")
	}
}

func TestStreamSeedDeterministicAndDistinct(t *testing.T) {
	if StreamSeed(7, 3) != StreamSeed(7, 3) {
		t.Fatal("StreamSeed is not deterministic")
	}
	seen := map[int64]bool{}
	for base := int64(0); base < 8; base++ {
		for stream := int64(0); stream < 256; stream++ {
			s := StreamSeed(base, stream)
			if seen[s] {
				t.Fatalf("seed collision at base=%d stream=%d", base, stream)
			}
			seen[s] = true
		}
	}
}

func TestSerialDoAfterClose(t *testing.T) {
	s := New(Config{Workers: 1})
	s.Close()
	if err := s.Do(context.Background(), []func(){func() {}}); err != ErrClosed {
		t.Fatalf("serial Do after Close: err = %v, want ErrClosed", err)
	}
}

// TestCanceledDispatchesNothingWarmPool pins the cancel/dispatch ordering: a
// pool with parked workers must not hand a single task out under an
// already-canceled context (the select alone would race; the pre-check
// decides it).
func TestCanceledDispatchesNothingWarmPool(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	_ = s.DoN(context.Background(), 8, func(int) {}) // warm the workers
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	for i := 0; i < 2000; i++ {
		if err := s.DoN(ctx, 4, func(int) { ran.Add(1) }); err != context.Canceled {
			t.Fatalf("iteration %d: err = %v, want context.Canceled", i, err)
		}
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("%d tasks ran under a pre-canceled context", n)
	}
}
