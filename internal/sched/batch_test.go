package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestBatchPriorityOrder verifies entries dispatch in ascending priority
// (stable within a priority) on a serial scheduler, where dispatch order is
// exactly execution order.
func TestBatchPriorityOrder(t *testing.T) {
	s := New(Config{Workers: 1})
	b := s.NewBatch()
	var got []int
	for i, prio := range []int{3, 0, 2, 0, 1} {
		i := i
		b.Submit(prio, func() { got = append(got, i) })
	}
	if err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 4, 2, 0} // prio 0 entries in submission order, then 1, 2, 3
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

// TestBatchCancelEntry verifies a canceled entry never runs and the rest of
// the batch completes, at both worker counts.
func TestBatchCancelEntry(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := New(Config{Workers: workers})
		b := s.NewBatch()
		var ran atomic.Int32
		e := b.Submit(1, func() { t.Error("canceled entry ran") })
		for i := 0; i < 5; i++ {
			b.Submit(2, func() { ran.Add(1) })
		}
		if !e.Cancel() {
			t.Fatal("Cancel before Wait returned false")
		}
		if !e.Canceled() {
			t.Fatal("Canceled() false after Cancel")
		}
		if err := b.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
		if ran.Load() != 5 {
			t.Fatalf("workers=%d: %d live entries ran, want 5", workers, ran.Load())
		}
		if e.Cancel() {
			t.Error("second Cancel reported a fresh withdrawal")
		}
		s.Close()
	}
}

// TestBatchContextCancel verifies a context cancellation mid-batch withdraws
// the pending entries (reported via Canceled) and returns ctx.Err().
func TestBatchContextCancel(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	b := s.NewBatch()

	release := make(chan struct{})
	started := make(chan struct{}, 2)
	var entries []*Entry
	// Two blockers occupy both workers, then many pending entries.
	for i := 0; i < 2; i++ {
		entries = append(entries, b.Submit(0, func() {
			started <- struct{}{}
			<-release
		}))
	}
	for i := 0; i < 8; i++ {
		entries = append(entries, b.Submit(1, func() {}))
	}

	var wg sync.WaitGroup
	wg.Add(1)
	var err error
	go func() {
		defer wg.Done()
		err = b.Wait(ctx)
	}()
	<-started
	<-started
	cancel()
	close(release)
	wg.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait returned %v, want context.Canceled", err)
	}
	canceled := 0
	for _, e := range entries {
		if e.Canceled() {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("no pending entries were withdrawn on context cancellation")
	}
}

// TestBatchPanicPropagates verifies a task panic re-raises on the Wait
// caller after the batch drains, matching Do.
// TestBatchAbortEntryAccountedOnce is the waste-accounting regression test
// at the sched level: when a batch aborts mid-flight, every entry must end
// in exactly one of two states — executed once with Canceled() false (a
// worker picked it up), or never executed with Canceled() true (withdrawn) —
// and never both or neither. Callers that bill discarded work (the
// speculative driver's Result.SpeculativeWaste) rely on this to count each
// entry exactly once.
func TestBatchAbortEntryAccountedOnce(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := New(Config{Workers: workers})
		defer s.Close()
		for trial := 0; trial < 20; trial++ {
			ctx, cancel := context.WithCancel(context.Background())
			b := s.NewBatch()
			const n = 12
			runs := make([]atomic.Int32, n)
			entries := make([]*Entry, n)
			for i := 0; i < n; i++ {
				i := i
				entries[i] = b.Submit(i%3, func() {
					runs[i].Add(1)
					if runs[i].Load() == 1 && i == trial%n {
						// Abort while this entry is executing: it was picked
						// up by a worker, so it must count as run, not as
						// canceled.
						cancel()
					}
				})
			}
			err := b.Wait(ctx)
			if err != nil && err != context.Canceled {
				t.Fatal(err)
			}
			cancel()
			for i, e := range entries {
				ran := int(runs[i].Load())
				if ran > 1 {
					t.Fatalf("workers=%d trial=%d: entry %d executed %d times", workers, trial, i, ran)
				}
				if ran == 1 && e.Canceled() {
					t.Fatalf("workers=%d trial=%d: entry %d both executed and Canceled — a waste accountant would bill it twice", workers, trial, i)
				}
				if ran == 0 && !e.Canceled() {
					t.Fatalf("workers=%d trial=%d: entry %d neither executed nor Canceled — a waste accountant would miss it", workers, trial, i)
				}
			}
		}
	}
}

func TestBatchPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := New(Config{Workers: workers})
		b := s.NewBatch()
		b.Submit(0, func() { panic("boom") })
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("workers=%d: recovered %v, want boom", workers, r)
				}
			}()
			b.Wait(context.Background())
			t.Errorf("workers=%d: Wait returned instead of panicking", workers)
		}()
		s.Close()
	}
}

// TestBatchEmptyAndReuse verifies the edge contracts: an empty batch returns
// the context error, and a second Wait panics (single-use).
func TestBatchEmptyAndReuse(t *testing.T) {
	s := New(Config{Workers: 1})
	if err := s.NewBatch().Wait(context.Background()); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	b := s.NewBatch()
	b.Submit(0, func() {})
	if err := b.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("second Wait did not panic")
		}
	}()
	b.Wait(context.Background())
}
