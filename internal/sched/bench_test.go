package sched

import (
	"context"
	"fmt"
	"math"
	"testing"
)

// spin burns roughly n floating-point operations, standing in for the
// per-increment cost of a real sampling simulation (an MD trajectory
// segment in the paper's TIP4P study).
func spin(n int) float64 {
	x := 1.0
	for i := 0; i < n; i++ {
		x = math.Sqrt(x + float64(i&7))
	}
	return x
}

// BenchmarkBatch measures one Do over a d+3-sized batch of expensive
// evaluations (d=13 => 16 tasks) at increasing worker counts. The serial
// (workers=1) row is the baseline the concurrent rows are compared against;
// the acceptance target is >= 2x at 4 workers on a multi-core host.
func BenchmarkBatch(b *testing.B) {
	const batch = 16
	const work = 200_000
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := New(Config{Workers: workers})
			defer s.Close()
			sink := make([]float64, batch)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.DoN(context.Background(), batch, func(j int) {
					sink[j] = spin(work)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDispatchOverhead measures the pure scheduling cost with empty
// tasks: what a batch pays when the objective is too cheap to parallelize.
func BenchmarkDispatchOverhead(b *testing.B) {
	s := New(Config{Workers: 4})
	defer s.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := s.DoN(context.Background(), 16, func(int) {}); err != nil {
			b.Fatal(err)
		}
	}
}
