package sched

import (
	"fmt"

	"repro/internal/obs"
)

// Policy selects how the scheduler orders queued batch tasks across tenants.
type Policy int

const (
	// FairShare drains per-tenant queues by weighted stride round-robin:
	// each tenant owns a virtual-time pass that advances by stride =
	// strideUnit/weight per dispatched task, and the scheduler always pops
	// from the non-empty queue with the smallest (pass, name). A weight-w
	// tenant therefore receives w times the dispatch slots of a weight-1
	// tenant whenever both are backlogged, and the dispatch order is a pure
	// function of queue state — no clocks, no randomness, no map iteration.
	FairShare Policy = iota

	// FIFO collapses every submission into one global queue drained in
	// arrival order, ignoring tenants and weights. It is the pre-fair-share
	// behavior, kept as the benchmark baseline (BenchServe contrasts the
	// two under a saturating tenant).
	FIFO
)

// strideUnit is the stride numerator: pass advances by strideUnit/weight per
// dispatch, so relative throughput tracks weight to within 1/strideUnit.
const strideUnit = 1 << 20

// maxWeight caps tenant weights so stride never truncates to zero.
const maxWeight = strideUnit

// tenantQueue is one tenant's FIFO of runnable batch tasks plus its stride
// accounting. All fields are guarded by Scheduler.mu. The ring buffer is
// reused across batches, so the steady-state enqueue/dequeue path allocates
// nothing.
type tenantQueue struct {
	name   string
	weight uint64
	stride uint64
	pass   uint64 // virtual time; next dispatch "costs" stride

	ring []func()
	head int
	n    int

	dispatched uint64 // tasks handed to workers, lifetime

	mDispatched *obs.Counter
	mShare      *obs.Gauge
	mDepth      *obs.Gauge
}

// push appends fn to the tail of the ring, growing it (power of two) when
// full. Caller holds Scheduler.mu.
func (q *tenantQueue) push(fn func()) {
	if q.n == len(q.ring) {
		size := len(q.ring) * 2
		if size == 0 {
			size = 8
		}
		next := make([]func(), size)
		for i := 0; i < q.n; i++ {
			next[i] = q.ring[(q.head+i)&(len(q.ring)-1)]
		}
		q.ring = next
		q.head = 0
	}
	q.ring[(q.head+q.n)&(len(q.ring)-1)] = fn
	q.n++
}

// queueForLocked returns (creating on first use) the tenant's queue. Under
// the FIFO policy every tenant maps to the single "" queue. Caller holds
// Scheduler.mu. Metric handles are resolved here, off the dispatch hot path.
func (s *Scheduler) queueForLocked(tenant string) *tenantQueue {
	if s.policy == FIFO {
		tenant = ""
	}
	if q, ok := s.tenants[tenant]; ok {
		return q
	}
	q := &tenantQueue{
		name:   tenant,
		weight: 1,
		stride: strideUnit,
		pass:   s.vtime,
	}
	reg := obs.Default()
	q.mDispatched = reg.Counter(
		fmt.Sprintf("sched_tenant_dispatched_total{tenant=%q}", tenant),
		"batch tasks dispatched to fleet workers for this tenant")
	q.mShare = reg.Gauge(
		fmt.Sprintf("sched_tenant_fleet_share{tenant=%q}", tenant),
		"tenant's cumulative share of fleet task dispatches, 0..1")
	q.mDepth = reg.Gauge(
		fmt.Sprintf("sched_tenant_queue_depth{tenant=%q}", tenant),
		"batch tasks currently queued for this tenant")
	s.tenants[tenant] = q
	s.all = append(s.all, q)
	return q
}

// enqueueLocked appends one runnable task to the tenant's queue, activating
// the queue (with a virtual-time catch-up, so a tenant returning from idle
// cannot replay its unused past share) if it was empty. Caller holds
// Scheduler.mu and is responsible for waking workers.
func (s *Scheduler) enqueueLocked(q *tenantQueue, fn func()) {
	if q.n == 0 {
		if q.pass < s.vtime {
			q.pass = s.vtime
		}
		s.ready = append(s.ready, q)
	}
	q.push(fn)
	s.pending++
}

// dequeueLocked pops the next task under the scheduler's policy: the
// non-empty queue with the smallest (pass, name) wins, its pass advances by
// its stride, and the global virtual time follows the winner. The selection
// reads only queue state, so two schedulers holding identical queues always
// dispatch identically. Caller holds Scheduler.mu and guarantees pending > 0.
// This is the per-task dispatch hot path and must stay allocation-free.
//
//optlint:noalloc
func (s *Scheduler) dequeueLocked() func() {
	best := 0
	for i := 1; i < len(s.ready); i++ {
		q, b := s.ready[i], s.ready[best]
		if q.pass < b.pass || (q.pass == b.pass && q.name < b.name) {
			best = i
		}
	}
	q := s.ready[best]
	fn := q.ring[q.head]
	q.ring[q.head] = nil
	q.head = (q.head + 1) & (len(q.ring) - 1)
	q.n--
	s.pending--
	s.vtime = q.pass
	q.pass += q.stride
	if q.n == 0 {
		last := len(s.ready) - 1
		s.ready[best] = s.ready[last]
		s.ready[last] = nil
		s.ready = s.ready[:last]
	}
	q.dispatched++
	s.dispatched++
	q.mDispatched.Inc()
	q.mDepth.Set(float64(q.n))
	q.mShare.Set(float64(q.dispatched) / float64(s.dispatched))
	return fn
}

// SetWeight sets the tenant's fair-share weight (clamped to [1, 1<<20]).
// Weight w grants w dispatch slots per weight-1 slot while both tenants are
// backlogged. It only affects dispatches after the call; under the FIFO
// policy it is a no-op. Safe for concurrent use.
func (s *Scheduler) SetWeight(tenant string, weight int) {
	if weight < 1 {
		weight = 1
	}
	if weight > maxWeight {
		weight = maxWeight
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q := s.queueForLocked(tenant)
	q.weight = uint64(weight)
	q.stride = strideUnit / q.weight
}

// TenantShare is one tenant's fair-share accounting snapshot.
type TenantShare struct {
	Tenant     string `json:"tenant"`
	Weight     int    `json:"weight"`
	Dispatched uint64 `json:"dispatched"` // tasks handed to workers, lifetime
	Queued     int    `json:"queued"`     // tasks waiting right now
}

// Shares returns per-tenant dispatch accounting in tenant-name order. The
// sum of Dispatched across tenants equals Dispatched()'s total: every task
// handed to a worker is charged to exactly one tenant.
func (s *Scheduler) Shares() []TenantShare {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]TenantShare, 0, len(s.all))
	for _, q := range s.all {
		out = append(out, TenantShare{
			Tenant:     q.name,
			Weight:     int(q.weight),
			Dispatched: q.dispatched,
			Queued:     q.n,
		})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Tenant < out[j-1].Tenant; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Dispatched returns the lifetime count of tasks handed to pool workers
// across all tenants. Serial in-caller batches never enter the queues and
// are not counted.
func (s *Scheduler) Dispatched() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dispatched
}
