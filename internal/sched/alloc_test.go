package sched

import (
	"context"
	"sync/atomic"
	"testing"
)

// This file is the allocation-budget regression layer over task dispatch.
// DoN is the inner loop of every batch sample: its per-call overhead is paid
// once per optimization iteration, and its per-task overhead once per point.
// The budgets here fail the build if either regresses.

// TestDoNSerialAllocFree pins the serial path (workers == 1) at zero
// allocations per call, whatever n is: the loop must run entirely in the
// caller's frame.
func TestDoNSerialAllocFree(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.DoN(ctx, 64, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial DoN(64): %.1f allocs per call, want 0", allocs)
	}
}

// TestDoNConcurrentAllocBudget bounds the concurrent path: the whole batch —
// any n — must cost O(1) allocations (the batch header, its done channel and
// one shared method value), never O(n). The budget is deliberately a little
// above the measured cost so incidental runtime changes don't flake it, but
// far below one-alloc-per-task.
func TestDoNConcurrentAllocBudget(t *testing.T) {
	const budget = 8
	s := New(Config{Workers: 4})
	defer s.Close()
	ctx := context.Background()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	allocs := testing.AllocsPerRun(50, func() {
		if err := s.DoN(ctx, 256, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("concurrent DoN(256): %.1f allocs per call, budget %d", allocs, budget)
	}
	t.Logf("concurrent DoN(256): %.1f allocs per call (budget %d)", allocs, budget)
}

// TestDequeueAllocFree pins the fair-share dispatch decision itself at zero
// allocations in steady state: once a tenant's ring has grown to the
// backlog's high-water mark, an enqueue/dequeue round trip — stride
// selection, ring pop, ready-set maintenance, per-tenant metrics — must not
// allocate. This is the new per-task cost every pool worker pays.
func TestDequeueAllocFree(t *testing.T) {
	s := New(Config{Workers: 4})
	defer s.Close()
	s.SetWeight("a", 3)
	s.SetWeight("b", 1)
	task := func() {}
	// Warm the rings past their high-water mark so growth is paid up front.
	s.mu.Lock()
	qa, qb := s.queueForLocked("a"), s.queueForLocked("b")
	for i := 0; i < 32; i++ {
		s.enqueueLocked(qa, task)
		s.enqueueLocked(qb, task)
	}
	for s.pending > 0 {
		s.dequeueLocked()
	}
	s.mu.Unlock()

	allocs := testing.AllocsPerRun(100, func() {
		s.mu.Lock()
		for i := 0; i < 8; i++ {
			s.enqueueLocked(qa, task)
			s.enqueueLocked(qb, task)
		}
		for s.pending > 0 {
			s.dequeueLocked()
		}
		s.mu.Unlock()
	})
	if allocs != 0 {
		t.Errorf("enqueue/dequeue cycle: %.1f allocs, want 0", allocs)
	}
}
