package sched

import (
	"context"
	"sync/atomic"
	"testing"
)

// This file is the allocation-budget regression layer over task dispatch.
// DoN is the inner loop of every batch sample: its per-call overhead is paid
// once per optimization iteration, and its per-task overhead once per point.
// The budgets here fail the build if either regresses.

// TestDoNSerialAllocFree pins the serial path (workers == 1) at zero
// allocations per call, whatever n is: the loop must run entirely in the
// caller's frame.
func TestDoNSerialAllocFree(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	allocs := testing.AllocsPerRun(100, func() {
		if err := s.DoN(ctx, 64, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("serial DoN(64): %.1f allocs per call, want 0", allocs)
	}
}

// TestDoNConcurrentAllocBudget bounds the concurrent path: the whole batch —
// any n — must cost O(1) allocations (the batch header, its done channel and
// one shared method value), never O(n). The budget is deliberately a little
// above the measured cost so incidental runtime changes don't flake it, but
// far below one-alloc-per-task.
func TestDoNConcurrentAllocBudget(t *testing.T) {
	const budget = 8
	s := New(Config{Workers: 4})
	defer s.Close()
	ctx := context.Background()
	var sink atomic.Int64
	fn := func(i int) { sink.Add(int64(i)) }
	allocs := testing.AllocsPerRun(50, func() {
		if err := s.DoN(ctx, 256, fn); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > budget {
		t.Errorf("concurrent DoN(256): %.1f allocs per call, budget %d", allocs, budget)
	}
	t.Logf("concurrent DoN(256): %.1f allocs per call (budget %d)", allocs, budget)
}
