// Package sched provides the concurrent batch-evaluation engine shared by the
// sampling backends: a context-aware worker pool over which a batch of
// objective-sampling requests is fanned out, executed concurrently, and
// joined.
//
// The paper's central performance claim is that the d+3 concurrent vertex
// evaluations hide the sampling cost of the stochastic objective (section
// 3.1); parallel SPSA and parallel knowledge-gradient batch optimization make
// the same argument for their batch sizes. sched is where that concurrency
// actually happens in-process: sim.LocalSpace dispatches each SampleAll batch
// through a Scheduler, and mw.Space drives its per-worker submit/collect
// round-trips through one as well.
//
// Determinism is delegated to the callers via StreamSeed: every sampled point
// owns an independent RNG stream whose seed is derived from (space seed,
// point index), so the noise a point observes is a pure function of its
// identity and its sampling history — never of goroutine interleaving. Serial
// and concurrent execution of the same batch sequence therefore produce
// bitwise-identical results.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrClosed is returned by Do when the scheduler has been closed.
var ErrClosed = errors.New("sched: scheduler is closed")

// Pool metrics (obs registry). Handles are resolved once here; the hot
// paths only touch atomics. Batch-level granularity keeps the per-draw
// cost at ~zero: one counter add and one histogram observation per
// batch, never per task.
var (
	mBatches = obs.Default().Counter("sched_batches_total",
		"evaluation batches dispatched through Do, DoN or Batch.Wait")
	mTasks = obs.Default().Counter("sched_tasks_total",
		"individual evaluation tasks submitted across all batches")
	mBatchSeconds = obs.Default().Histogram("sched_batch_seconds", nil,
		"wall-clock latency of one evaluation batch, dispatch to join")
	mBusy = obs.Default().Gauge("sched_busy_workers",
		"goroutines currently executing batch tasks (the caller itself on the serial path)")
	mInflight = obs.Default().Gauge("sched_inflight_batches",
		"batches currently dispatching or draining")
)

// Config configures a Scheduler.
type Config struct {
	// Workers is the maximum number of batch tasks executing concurrently.
	// Zero (or negative) selects runtime.GOMAXPROCS(0). Workers == 1 degrades
	// to serial in-caller execution with no goroutines at all, which is the
	// reference semantics every concurrent run must reproduce bitwise.
	Workers int
}

// Scheduler executes batches of evaluation requests on a bounded pool of
// worker goroutines. The zero value is not usable; use New. A Scheduler is
// safe for concurrent use by multiple goroutines, though the sampling
// backends serialize batches themselves (one batch per simplex decision).
type Scheduler struct {
	workers int

	queue chan func()
	quit  chan struct{}

	startOnce sync.Once
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a scheduler with the configured worker bound. Workers are
// started lazily on the first batch, so an unused scheduler costs nothing.
func New(cfg Config) *Scheduler {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{
		workers: w,
		queue:   make(chan func()),
		quit:    make(chan struct{}),
	}
}

var (
	sharedOnce sync.Once
	shared     *Scheduler
)

// Shared returns the process-wide scheduler (GOMAXPROCS workers). Backends
// that are not given their own scheduler use it, so short-lived spaces do not
// each spin up a pool. The shared scheduler is never closed.
func Shared() *Scheduler {
	sharedOnce.Do(func() { shared = New(Config{}) })
	return shared
}

// Workers returns the scheduler's concurrency bound.
func (s *Scheduler) Workers() int { return s.workers }

// start launches the worker goroutines once.
func (s *Scheduler) start() {
	s.startOnce.Do(func() {
		for i := 0; i < s.workers; i++ {
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				for {
					select {
					case <-s.quit:
						return
					case fn := <-s.queue:
						fn()
					}
				}
			}()
		}
	})
}

// Close stops the worker goroutines. It must not be called while a Do is in
// flight; it is idempotent. Closing a scheduler whose workers never started
// is a no-op.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	s.wg.Wait()
}

// panicBox carries a task panic from a worker goroutine back to the Do
// caller, preserving the synchronous-panic semantics of the serial code path
// (e.g. sampling a closed point must still crash the caller, not a worker).
type panicBox struct {
	mu  sync.Mutex
	val any  // guarded by mu
	set bool // guarded by mu
}

func (p *panicBox) capture(v any) {
	p.mu.Lock()
	if !p.set {
		p.val, p.set = v, true
	}
	p.mu.Unlock()
}

// Do executes every task in the batch and returns when all dispatched tasks
// have finished. With Workers == 1 (or a single task) the batch runs serially
// on the calling goroutine. Cancellation is checked before every dispatch, so
// an already-canceled context dispatches nothing; if ctx is canceled
// mid-batch, at most the task currently being offered to a worker is still
// dispatched, already-running tasks finish, and ctx.Err() is returned. The
// caller cannot assume which of the remaining tasks ran. A panic inside any
// task is re-raised on the calling goroutine after the batch drains.
func (s *Scheduler) Do(ctx context.Context, tasks []func()) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	if !obs.Enabled() {
		return s.do(ctx, tasks)
	}
	serial := s.workers == 1 || len(tasks) == 1
	if serial {
		mBusy.Inc()
	}
	mInflight.Inc()
	start := time.Now() //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	err := s.do(ctx, tasks)
	mBatchSeconds.Observe(time.Since(start).Seconds()) //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	mBatches.Inc()
	mTasks.Add(int64(len(tasks)))
	mInflight.Dec()
	if serial {
		mBusy.Dec()
	}
	return err
}

// do is the uninstrumented batch body behind Do.
func (s *Scheduler) do(ctx context.Context, tasks []func()) error {
	if s.workers == 1 || len(tasks) == 1 {
		return s.doSerial(ctx, tasks)
	}

	s.start()
	var (
		wg  sync.WaitGroup
		box panicBox
		err error
	)
dispatch:
	for _, fn := range tasks {
		// Pre-check so a canceled context deterministically stops dispatch;
		// the select below would otherwise race ctx.Done against a parked
		// worker's queue receive.
		if cerr := ctx.Err(); cerr != nil {
			err = cerr
			break dispatch
		}
		fn := fn
		wg.Add(1)
		wrapped := func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					box.capture(r)
				}
			}()
			fn()
		}
		select {
		case s.queue <- wrapped:
		case <-ctx.Done():
			wg.Done()
			err = ctx.Err()
			break dispatch
		case <-s.quit:
			wg.Done()
			err = ErrClosed
			break dispatch
		}
	}
	wg.Wait()
	box.mu.Lock()
	val, set := box.val, box.set
	box.mu.Unlock()
	if set {
		panic(val)
	}
	return err
}

// nbatch is one DoN batch in flight: participants claim indices from a shared
// atomic cursor, so the per-task dispatch cost is one atomic add instead of a
// closure allocation and a channel handoff — the zero-allocation shape of the
// per-draw hot path.
type nbatch struct {
	fn      func(int)
	n       int64
	ctx     context.Context
	next    atomic.Int64
	drained sync.Once
	done    chan struct{} // closed when the last index is claimed
	wg      sync.WaitGroup
	box     panicBox
}

// run claims and executes indices until the batch is exhausted or its context
// ends. It is the body every participant (pool worker) executes.
func (b *nbatch) run() {
	defer b.wg.Done()
	mBusy.Inc()
	defer mBusy.Dec()
	for b.ctx.Err() == nil {
		i := b.next.Add(1) - 1
		if i >= b.n {
			return
		}
		if i == b.n-1 {
			b.drained.Do(func() { close(b.done) })
		}
		b.runOne(int(i))
	}
}

// runOne executes one index, capturing a panic for re-raise on the caller.
func (b *nbatch) runOne(i int) {
	defer func() {
		if r := recover(); r != nil {
			b.box.capture(r)
		}
	}()
	b.fn(i)
}

// DoN fans fn out over indices 0..n-1 as one batch. It is the common shape of
// a sampling batch: index i samples point i. Semantics match Do — serial
// in-caller execution with Workers == 1 (or n == 1), cancellation checked
// before every index, panics re-raised on the caller — but dispatch is
// index-claiming rather than per-task closures: up to Workers pool
// goroutines each pull indices off one shared cursor, so a batch costs a
// handful of allocations regardless of n instead of O(n) closures. Unlike
// Do, a mid-batch cancellation may skip any subset of the remaining indices
// (participants stop claiming independently); as with Do, the caller cannot
// assume which of the remaining tasks ran.
func (s *Scheduler) DoN(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if !obs.Enabled() {
		return s.doN(ctx, n, fn)
	}
	serial := s.workers == 1 || n == 1
	if serial {
		mBusy.Inc()
	}
	mInflight.Inc()
	start := time.Now() //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	err := s.doN(ctx, n, fn)
	mBatchSeconds.Observe(time.Since(start).Seconds()) //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	mBatches.Inc()
	mTasks.Add(int64(n))
	mInflight.Dec()
	if serial {
		mBusy.Dec()
	}
	return err
}

// doSerial runs a batch in the caller's goroutine — the fast path taken when
// the pool is serial or the batch has one task. It is on the per-draw
// zero-allocation budget (see alloc_test.go), so it must stay free of
// closures, appends and boxing.
//
//optlint:noalloc
func (s *Scheduler) doSerial(ctx context.Context, tasks []func()) error {
	for _, fn := range tasks {
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-s.quit:
			return ErrClosed
		default:
		}
		fn()
	}
	return nil
}

// doNSerial runs an indexed batch in the caller's goroutine — the fast path
// taken when the pool is serial or the batch has one index. Like doSerial it
// is on the per-draw zero-allocation budget.
//
//optlint:noalloc
func (s *Scheduler) doNSerial(ctx context.Context, n int, fn func(i int)) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-s.quit:
			return ErrClosed
		default:
		}
		fn(i)
	}
	return nil
}

// doN is the uninstrumented batch body behind DoN.
func (s *Scheduler) doN(ctx context.Context, n int, fn func(i int)) error {
	if s.workers == 1 || n == 1 {
		return s.doNSerial(ctx, n, fn)
	}

	s.start()
	b := &nbatch{fn: fn, n: int64(n), ctx: ctx, done: make(chan struct{})}
	participants := s.workers
	if n < participants {
		participants = n
	}
	run := b.run
	var err error
dispatch:
	for i := 0; i < participants; i++ {
		b.wg.Add(1)
		select {
		case s.queue <- run:
		case <-b.done:
			// Every index is already claimed; further participants would
			// find nothing to do.
			b.wg.Done()
			break dispatch
		case <-ctx.Done():
			b.wg.Done()
			err = ctx.Err()
			break dispatch
		case <-s.quit:
			b.wg.Done()
			err = ErrClosed
			break dispatch
		}
	}
	b.wg.Wait()
	b.box.mu.Lock()
	val, set := b.box.val, b.box.set
	b.box.mu.Unlock()
	if set {
		panic(val)
	}
	if err == nil && b.next.Load() < b.n {
		// Participants bailed on a canceled context before claiming every
		// index.
		err = ctx.Err()
	}
	return err
}

// StreamSeed derives the RNG seed of stream number stream from a base seed
// using the SplitMix64 finalizer (Steele et al., "Fast Splittable
// Pseudorandom Number Generators"). Distinct (base, stream) pairs map to
// well-separated seeds, so per-point noise streams are independent of each
// other and of the order in which points are sampled.
//
//optlint:noalloc
func StreamSeed(base, stream int64) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
