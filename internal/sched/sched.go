// Package sched provides the concurrent batch-evaluation engine shared by the
// sampling backends: a context-aware worker pool over which a batch of
// objective-sampling requests is fanned out, executed concurrently, and
// joined.
//
// The paper's central performance claim is that the d+3 concurrent vertex
// evaluations hide the sampling cost of the stochastic objective (section
// 3.1); parallel SPSA and parallel knowledge-gradient batch optimization make
// the same argument for their batch sizes. sched is where that concurrency
// actually happens in-process: sim.LocalSpace dispatches each SampleAll batch
// through a Scheduler, and mw.Space drives its per-worker submit/collect
// round-trips through one as well.
//
// Determinism is delegated to the callers via StreamSeed: every sampled point
// owns an independent RNG stream whose seed is derived from (space seed,
// point index), so the noise a point observes is a pure function of its
// identity and its sampling history — never of goroutine interleaving. Serial
// and concurrent execution of the same batch sequence therefore produce
// bitwise-identical results.
package sched

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrClosed is returned by Do when the scheduler has been closed.
var ErrClosed = errors.New("sched: scheduler is closed")

// Pool metrics (obs registry). Handles are resolved once here; the hot
// paths only touch atomics. Batch-level granularity keeps the per-draw
// cost at ~zero: one counter add and one histogram observation per
// batch, never per task.
var (
	mBatches = obs.Default().Counter("sched_batches_total",
		"evaluation batches dispatched through Do, DoN or Batch.Wait")
	mTasks = obs.Default().Counter("sched_tasks_total",
		"individual evaluation tasks submitted across all batches")
	mBatchSeconds = obs.Default().Histogram("sched_batch_seconds", nil,
		"wall-clock latency of one evaluation batch, dispatch to join")
	mBusy = obs.Default().Gauge("sched_busy_workers",
		"goroutines currently executing batch tasks (the caller itself on the serial path)")
	mInflight = obs.Default().Gauge("sched_inflight_batches",
		"batches currently dispatching or draining")
)

// Config configures a Scheduler.
type Config struct {
	// Workers is the maximum number of batch tasks executing concurrently.
	// Zero (or negative) selects runtime.GOMAXPROCS(0). Workers == 1 degrades
	// to serial in-caller execution with no goroutines at all, which is the
	// reference semantics every concurrent run must reproduce bitwise.
	Workers int

	// Policy selects how queued tasks are ordered across tenants: FairShare
	// (the zero value) drains per-tenant queues by weighted stride
	// round-robin; FIFO is the single-global-queue baseline.
	Policy Policy
}

// Scheduler executes batches of evaluation requests on a bounded pool of
// worker goroutines. The zero value is not usable; use New. A Scheduler is
// safe for concurrent use by multiple goroutines, though the sampling
// backends serialize batches themselves (one batch per simplex decision).
//
// Concurrent submissions land in per-tenant run queues (see DoAs, DoNAs and
// NewBatchAs; the untenanted entry points use the "" tenant) and workers
// drain them under the configured Policy. Within one tenant, tasks dispatch
// in submission order; across tenants, FairShare interleaves queues by
// weighted stride round-robin. Fairness never changes results — draws are
// pure functions of (stream seed, draw index) — only who waits.
type Scheduler struct {
	workers int
	policy  Policy

	quit chan struct{}

	mu         sync.Mutex
	cond       *sync.Cond              // signaled when pending rises or the scheduler closes
	tenants    map[string]*tenantQueue // tenant name -> queue; accessed by key only
	all        []*tenantQueue          // creation order; deterministic iteration for Shares
	ready      []*tenantQueue          // non-empty queues, order-insensitive (dequeue scans for min)
	pending    int                     // queued tasks across all tenants
	closed     bool
	vtime      uint64 // pass of the most recent dispatch; floors re-activating tenants
	dispatched uint64 // lifetime tasks handed to workers

	startOnce sync.Once
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// New builds a scheduler with the configured worker bound. Workers are
// started lazily on the first batch, so an unused scheduler costs nothing.
func New(cfg Config) *Scheduler {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{
		workers: w,
		policy:  cfg.Policy,
		quit:    make(chan struct{}),
		tenants: make(map[string]*tenantQueue),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

var (
	sharedOnce sync.Once
	shared     *Scheduler
)

// Shared returns the process-wide scheduler (GOMAXPROCS workers). Backends
// that are not given their own scheduler use it, so short-lived spaces do not
// each spin up a pool. The shared scheduler is never closed.
func Shared() *Scheduler {
	sharedOnce.Do(func() { shared = New(Config{}) })
	return shared
}

// Workers returns the scheduler's concurrency bound.
func (s *Scheduler) Workers() int { return s.workers }

// start launches the worker goroutines once.
func (s *Scheduler) start() {
	s.startOnce.Do(func() {
		for i := 0; i < s.workers; i++ {
			s.wg.Add(1)
			go s.worker()
		}
	})
}

// worker pops tasks off the fair-share queues until the scheduler is closed
// and drained. Draining (rather than abandoning) queued tasks on close keeps
// every batch's WaitGroup accounting exact: a task that was accepted into a
// queue always runs its wrapper, which decides for itself whether to execute
// or withdraw.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for s.pending == 0 && !s.closed {
			s.cond.Wait()
		}
		if s.pending == 0 {
			s.mu.Unlock()
			return
		}
		fn := s.dequeueLocked()
		s.mu.Unlock()
		fn()
	}
}

// Close stops the worker goroutines after draining already-queued tasks. It
// must not be called while a Do is in flight; it is idempotent. Closing a
// scheduler whose workers never started is a no-op.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.quit)
		s.cond.Broadcast()
	})
	s.wg.Wait()
}

// panicBox carries a task panic from a worker goroutine back to the Do
// caller, preserving the synchronous-panic semantics of the serial code path
// (e.g. sampling a closed point must still crash the caller, not a worker).
type panicBox struct {
	mu  sync.Mutex
	val any  // guarded by mu
	set bool // guarded by mu
}

func (p *panicBox) capture(v any) {
	p.mu.Lock()
	if !p.set {
		p.val, p.set = v, true
	}
	p.mu.Unlock()
}

// Do executes every task in the batch and returns when all dispatched tasks
// have finished. With Workers == 1 (or a single task) the batch runs serially
// on the calling goroutine. An already-canceled context dispatches nothing;
// if ctx is canceled mid-batch, queued tasks are withdrawn as workers reach
// them, already-running tasks finish, and ctx.Err() is returned. The caller
// cannot assume which of the remaining tasks ran. A panic inside any task is
// re-raised on the calling goroutine after the batch drains.
func (s *Scheduler) Do(ctx context.Context, tasks []func()) error {
	return s.DoAs(ctx, "", tasks)
}

// DoAs is Do with the batch charged to the named tenant's fair-share queue.
// The empty tenant is a queue of its own, so untenanted work competes like
// any weight-1 tenant.
func (s *Scheduler) DoAs(ctx context.Context, tenant string, tasks []func()) error {
	if len(tasks) == 0 {
		return ctx.Err()
	}
	if !obs.Enabled() {
		return s.do(ctx, tenant, tasks)
	}
	serial := s.workers == 1 || len(tasks) == 1
	if serial {
		mBusy.Inc()
	}
	mInflight.Inc()
	start := time.Now() //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	err := s.do(ctx, tenant, tasks)
	mBatchSeconds.Observe(time.Since(start).Seconds()) //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	mBatches.Inc()
	mTasks.Add(int64(len(tasks)))
	mInflight.Dec()
	if serial {
		mBusy.Dec()
	}
	return err
}

// do is the uninstrumented batch body behind Do/DoAs. Every task is enqueued
// up front on the tenant's queue; the wrapper each worker runs withdraws
// instead of executing once ctx has ended, so an aborted batch still drains
// its WaitGroup exactly.
func (s *Scheduler) do(ctx context.Context, tenant string, tasks []func()) error {
	if s.workers == 1 || len(tasks) == 1 {
		return s.doSerial(ctx, tasks)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	s.start()
	var (
		wg        sync.WaitGroup
		box       panicBox
		withdrawn atomic.Bool
	)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	q := s.queueForLocked(tenant)
	for _, fn := range tasks {
		fn := fn
		wg.Add(1)
		s.enqueueLocked(q, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				withdrawn.Store(true)
				return
			}
			defer func() {
				if r := recover(); r != nil {
					box.capture(r)
				}
			}()
			fn()
		})
	}
	q.mDepth.Set(float64(q.n))
	s.mu.Unlock()
	s.cond.Broadcast()
	wg.Wait()
	box.mu.Lock()
	val, set := box.val, box.set
	box.mu.Unlock()
	if set {
		panic(val)
	}
	if withdrawn.Load() {
		return ctx.Err()
	}
	return nil
}

// nbatch is one DoN batch in flight: participants claim indices from a shared
// atomic cursor, so the per-task dispatch cost is one atomic add instead of a
// closure allocation and a channel handoff — the zero-allocation shape of the
// per-draw hot path.
type nbatch struct {
	fn   func(int)
	n    int64
	ctx  context.Context
	next atomic.Int64
	wg   sync.WaitGroup
	box  panicBox
}

// run claims and executes indices until the batch is exhausted or its context
// ends. It is the body every participant (pool worker) executes. A
// participant dequeued after the cursor is exhausted (or the context ended)
// returns immediately; enqueueing a few no-op participants is cheaper than
// withdrawing them from the middle of a ring.
func (b *nbatch) run() {
	defer b.wg.Done()
	mBusy.Inc()
	defer mBusy.Dec()
	for b.ctx.Err() == nil {
		i := b.next.Add(1) - 1
		if i >= b.n {
			return
		}
		b.runOne(int(i))
	}
}

// runOne executes one index, capturing a panic for re-raise on the caller.
func (b *nbatch) runOne(i int) {
	defer func() {
		if r := recover(); r != nil {
			b.box.capture(r)
		}
	}()
	b.fn(i)
}

// DoN fans fn out over indices 0..n-1 as one batch. It is the common shape of
// a sampling batch: index i samples point i. Semantics match Do — serial
// in-caller execution with Workers == 1 (or n == 1), cancellation checked
// before every index, panics re-raised on the caller — but dispatch is
// index-claiming rather than per-task closures: up to Workers pool
// goroutines each pull indices off one shared cursor, so a batch costs a
// handful of allocations regardless of n instead of O(n) closures. Unlike
// Do, a mid-batch cancellation may skip any subset of the remaining indices
// (participants stop claiming independently); as with Do, the caller cannot
// assume which of the remaining tasks ran.
func (s *Scheduler) DoN(ctx context.Context, n int, fn func(i int)) error {
	return s.DoNAs(ctx, "", n, fn)
}

// DoNAs is DoN with the batch charged to the named tenant's fair-share
// queue. The sampling backends thread the job's tenant through here so fleet
// capacity divides by Quota.Weight instead of submission order.
func (s *Scheduler) DoNAs(ctx context.Context, tenant string, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	if !obs.Enabled() {
		return s.doN(ctx, tenant, n, fn)
	}
	serial := s.workers == 1 || n == 1
	if serial {
		mBusy.Inc()
	}
	mInflight.Inc()
	start := time.Now() //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	err := s.doN(ctx, tenant, n, fn)
	mBatchSeconds.Observe(time.Since(start).Seconds()) //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	mBatches.Inc()
	mTasks.Add(int64(n))
	mInflight.Dec()
	if serial {
		mBusy.Dec()
	}
	return err
}

// doSerial runs a batch in the caller's goroutine — the fast path taken when
// the pool is serial or the batch has one task. It is on the per-draw
// zero-allocation budget (see alloc_test.go), so it must stay free of
// closures, appends and boxing.
//
//optlint:noalloc
func (s *Scheduler) doSerial(ctx context.Context, tasks []func()) error {
	for _, fn := range tasks {
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-s.quit:
			return ErrClosed
		default:
		}
		fn()
	}
	return nil
}

// doNSerial runs an indexed batch in the caller's goroutine — the fast path
// taken when the pool is serial or the batch has one index. Like doSerial it
// is on the per-draw zero-allocation budget.
//
//optlint:noalloc
func (s *Scheduler) doNSerial(ctx context.Context, n int, fn func(i int)) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case <-s.quit:
			return ErrClosed
		default:
		}
		fn(i)
	}
	return nil
}

// doN is the uninstrumented batch body behind DoN/DoNAs. Up to Workers
// participant bodies are enqueued on the tenant's queue; each one claims
// indices off the shared cursor, so the queue cost is O(workers) per batch
// regardless of n.
func (s *Scheduler) doN(ctx context.Context, tenant string, n int, fn func(i int)) error {
	if s.workers == 1 || n == 1 {
		return s.doNSerial(ctx, n, fn)
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	s.start()
	b := &nbatch{fn: fn, n: int64(n), ctx: ctx}
	participants := s.workers
	if n < participants {
		participants = n
	}
	run := b.run
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrClosed
	}
	q := s.queueForLocked(tenant)
	for i := 0; i < participants; i++ {
		b.wg.Add(1)
		s.enqueueLocked(q, run)
	}
	q.mDepth.Set(float64(q.n))
	s.mu.Unlock()
	s.cond.Broadcast()
	b.wg.Wait()
	b.box.mu.Lock()
	val, set := b.box.val, b.box.set
	b.box.mu.Unlock()
	if set {
		panic(val)
	}
	if b.next.Load() < b.n {
		// Participants bailed on a canceled context before claiming every
		// index.
		return ctx.Err()
	}
	return nil
}

// StreamSeed derives the RNG seed of stream number stream from a base seed
// using the SplitMix64 finalizer (Steele et al., "Fast Splittable
// Pseudorandom Number Generators"). Distinct (base, stream) pairs map to
// well-separated seeds, so per-point noise streams are independent of each
// other and of the order in which points are sampled.
//
//optlint:noalloc
func StreamSeed(base, stream int64) int64 {
	z := uint64(base) + 0x9E3779B97F4A7C15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
