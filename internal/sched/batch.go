package sched

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Entry dispatch states.
const (
	entryPending int32 = iota
	entryDispatched
	entryCanceled
)

// Entry is one schedulable unit inside a Batch: a task plus a dispatch
// priority and a cancellation handle. Entries exist so a caller that
// speculatively enqueues work (the speculative simplex step enqueues every
// candidate move before knowing which will be accepted) can (a) order the
// dispatch so the evaluations most likely to be needed run first when the
// pool is narrower than the batch, and (b) withdraw entries that have not
// started yet instead of paying for them.
type Entry struct {
	fn    func()
	prio  int
	seq   int
	state atomic.Int32
}

// Cancel withdraws the entry if it has not been dispatched yet, returning
// whether the withdrawal won. A canceled entry's task never runs; an entry
// that was already dispatched (or finished) is unaffected and Cancel reports
// false. Cancel is safe to call concurrently with Wait, with one caveat: a
// false return means the entry was dispatched at that moment, but if the
// batch is then aborted (context cancellation, scheduler close) while the
// entry's handoff to a worker is still pending, Wait withdraws it after all
// — Canceled() is the authoritative post-Wait answer to "did it run".
func (e *Entry) Cancel() bool {
	return e.state.CompareAndSwap(entryPending, entryCanceled)
}

// Canceled reports whether the entry was withdrawn before dispatch.
func (e *Entry) Canceled() bool { return e.state.Load() == entryCanceled }

// Batch collects prioritized, cancellable entries and executes them as one
// joined unit on the scheduler. It is single-use: Submit entries, then Wait
// exactly once. The zero value is not usable; use Scheduler.NewBatch.
type Batch struct {
	s       *Scheduler
	tenant  string
	entries []*Entry
	waited  bool
}

// NewBatch starts an empty batch on the scheduler, charged to the ""
// tenant's fair-share queue.
func (s *Scheduler) NewBatch() *Batch { return &Batch{s: s} }

// NewBatchAs starts an empty batch charged to the named tenant's fair-share
// queue.
func (s *Scheduler) NewBatchAs(tenant string) *Batch {
	return &Batch{s: s, tenant: tenant}
}

// Submit adds a task with the given dispatch priority (lower runs earlier)
// and returns its cancellation handle. Entries with equal priority dispatch
// in submission order. Submit must not be called after Wait.
func (b *Batch) Submit(priority int, fn func()) *Entry {
	if b.waited {
		panic("sched: Batch.Submit after Wait")
	}
	e := &Entry{fn: fn, prio: priority, seq: len(b.entries)}
	b.entries = append(b.entries, e)
	return e
}

// Wait dispatches every live entry in priority order and blocks until all
// dispatched tasks have finished. Entries canceled before dispatch are
// skipped. Cancellation semantics match Scheduler.Do: if ctx ends mid-batch,
// the remaining pending entries are withdrawn (their Canceled() reports
// true), already-running tasks finish, and ctx.Err() is returned. A panic in
// any task is re-raised on the calling goroutine after the batch drains.
func (b *Batch) Wait(ctx context.Context) error {
	if b.waited {
		panic("sched: Batch.Wait called twice")
	}
	b.waited = true
	if len(b.entries) == 0 {
		return ctx.Err()
	}
	if !obs.Enabled() {
		return b.wait(ctx)
	}
	mInflight.Inc()
	start := time.Now() //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	err := b.wait(ctx)
	mBatchSeconds.Observe(time.Since(start).Seconds()) //optlint:nondeterministic-ok batch-latency metric, never reaches a sample
	mBatches.Inc()
	mTasks.Add(int64(len(b.entries)))
	mInflight.Dec()
	return err
}

// wait is the uninstrumented dispatch-and-join body behind Wait.
func (b *Batch) wait(ctx context.Context) error {
	order := make([]*Entry, len(b.entries))
	copy(order, b.entries)
	sort.SliceStable(order, func(i, j int) bool { return order[i].prio < order[j].prio })

	s := b.s
	if s.workers == 1 || len(order) == 1 {
		for _, e := range order {
			if err := ctx.Err(); err != nil {
				cancelRemaining(order)
				return err
			}
			select {
			case <-s.quit:
				cancelRemaining(order)
				return ErrClosed
			default:
			}
			if !e.state.CompareAndSwap(entryPending, entryDispatched) {
				continue // canceled
			}
			e.fn()
		}
		return nil
	}

	if err := ctx.Err(); err != nil {
		cancelRemaining(order)
		return err
	}
	s.start()
	var (
		wg        sync.WaitGroup
		box       panicBox
		withdrawn atomic.Bool
	)
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancelRemaining(order)
		return ErrClosed
	}
	q := s.queueForLocked(b.tenant)
	for _, e := range order {
		if e.state.Load() == entryCanceled {
			continue // already withdrawn; skip the queue round-trip
		}
		e := e
		wg.Add(1)
		s.enqueueLocked(q, func() {
			defer wg.Done()
			if ctx.Err() != nil {
				// The batch was aborted while this entry sat in the queue:
				// it never reached dispatch, so it is withdrawn —
				// Canceled() must report true for it like any other unrun
				// entry. CAS so a concurrent Cancel is not overridden.
				if e.state.CompareAndSwap(entryPending, entryCanceled) {
					withdrawn.Store(true)
				}
				return
			}
			if !e.state.CompareAndSwap(entryPending, entryDispatched) {
				return // canceled while queued
			}
			defer func() {
				if r := recover(); r != nil {
					box.capture(r)
				}
			}()
			e.fn()
		})
	}
	q.mDepth.Set(float64(q.n))
	s.mu.Unlock()
	s.cond.Broadcast()
	wg.Wait()
	box.mu.Lock()
	val, set := box.val, box.set
	box.mu.Unlock()
	if set {
		panic(val)
	}
	if withdrawn.Load() {
		return ctx.Err()
	}
	return nil
}

// cancelRemaining withdraws every entry still pending, so an aborted batch
// leaves a consistent record of what ran and what did not.
func cancelRemaining(order []*Entry) {
	for _, e := range order {
		e.state.CompareAndSwap(entryPending, entryCanceled)
	}
}
