package md

import "math"

// Box is a cubic periodic simulation cell of edge length L (angstrom).
type Box struct {
	L float64
}

// Volume returns L^3.
func (b Box) Volume() float64 { return b.L * b.L * b.L }

// MinImage returns the minimum-image convention displacement corresponding
// to d, with every component folded into [-L/2, L/2).
func (b Box) MinImage(d Vec3) Vec3 {
	return Vec3{
		d.X - b.L*math.Round(d.X/b.L),
		d.Y - b.L*math.Round(d.Y/b.L),
		d.Z - b.L*math.Round(d.Z/b.L),
	}
}

// Wrap folds a position into the primary cell [0, L).
func (b Box) Wrap(p Vec3) Vec3 {
	return Vec3{
		p.X - b.L*math.Floor(p.X/b.L),
		p.Y - b.L*math.Floor(p.Y/b.L),
		p.Z - b.L*math.Floor(p.Z/b.L),
	}
}
