package md

import (
	"fmt"
	"math"
)

// constraint fixes the distance between two material sites of one molecule.
type constraint struct {
	i, j int
	d    float64
}

// constraints builds the three rigid-body constraints per molecule:
// O-H1, O-H2 and H1-H2.
func (s *System) constraints() []constraint {
	out := make([]constraint, 0, 3*s.N)
	roh := s.Model.ROH
	rhh := s.Model.HHDist()
	for m := 0; m < s.N; m++ {
		b := m * SitesPerMol
		out = append(out,
			constraint{b + SiteO, b + SiteH1, roh},
			constraint{b + SiteO, b + SiteH2, roh},
			constraint{b + SiteH1, b + SiteH2, rhh},
		)
	}
	return out
}

const (
	shakeTol      = 1e-10
	shakeMaxIters = 500
)

// shake iteratively corrects the post-drift positions (and the velocities
// consistently) so that every constraint is satisfied to shakeTol. prev
// holds the pre-drift positions; dt is the timestep. This is the SHAKE
// position pass of the RATTLE scheme.
func (s *System) shake(prev []Vec3, dt float64) error {
	cons := s.constraints()
	for iter := 0; iter < shakeMaxIters; iter++ {
		converged := true
		for _, c := range cons {
			r := s.Pos[c.i].Sub(s.Pos[c.j])
			diff := r.Norm2() - c.d*c.d
			if math.Abs(diff) <= shakeTol*c.d*c.d {
				continue
			}
			converged = false
			r0 := prev[c.i].Sub(prev[c.j])
			invMi := 1 / s.Mass[c.i]
			invMj := 1 / s.Mass[c.j]
			denom := 2 * r.Dot(r0) * (invMi + invMj)
			if denom == 0 {
				return fmt.Errorf("md: SHAKE degenerate constraint %d-%d", c.i, c.j)
			}
			g := diff / denom
			corr := r0.Scale(g)
			s.Pos[c.i] = s.Pos[c.i].Sub(corr.Scale(invMi))
			s.Pos[c.j] = s.Pos[c.j].Add(corr.Scale(invMj))
			s.Vel[c.i] = s.Vel[c.i].Sub(corr.Scale(invMi / dt))
			s.Vel[c.j] = s.Vel[c.j].Add(corr.Scale(invMj / dt))
		}
		if converged {
			return nil
		}
	}
	return fmt.Errorf("md: SHAKE did not converge in %d iterations", shakeMaxIters)
}

// rattleVelocities removes the velocity components along each constraint
// (the RATTLE velocity pass after the second half-kick).
func (s *System) rattleVelocities() error {
	cons := s.constraints()
	for iter := 0; iter < shakeMaxIters; iter++ {
		converged := true
		for _, c := range cons {
			r := s.Pos[c.i].Sub(s.Pos[c.j])
			dv := s.Vel[c.i].Sub(s.Vel[c.j])
			rv := r.Dot(dv)
			if math.Abs(rv) <= shakeTol*c.d*c.d {
				continue
			}
			converged = false
			invMi := 1 / s.Mass[c.i]
			invMj := 1 / s.Mass[c.j]
			k := rv / ((invMi + invMj) * c.d * c.d)
			s.Vel[c.i] = s.Vel[c.i].Sub(r.Scale(k * invMi))
			s.Vel[c.j] = s.Vel[c.j].Add(r.Scale(k * invMj))
		}
		if converged {
			return nil
		}
	}
	return fmt.Errorf("md: RATTLE did not converge in %d iterations", shakeMaxIters)
}

// MaxConstraintViolation returns the largest relative deviation of any
// constraint distance, a diagnostic used by the invariant tests.
func (s *System) MaxConstraintViolation() float64 {
	worst := 0.0
	for _, c := range s.constraints() {
		r := s.Pos[c.i].Sub(s.Pos[c.j]).Norm()
		if dev := math.Abs(r-c.d) / c.d; dev > worst {
			worst = dev
		}
	}
	return worst
}
