package md

import "math"

// Step advances the system by one velocity-Verlet timestep of dt
// femtoseconds with SHAKE/RATTLE constraints. Forces must be current on
// entry (call ComputeForces once before the first Step); they are current on
// return.
func (s *System) Step(dt float64) error {
	// Half kick + drift.
	prev := make([]Vec3, len(s.Pos))
	copy(prev, s.Pos)
	for i := range s.Pos {
		acc := s.Force[i].Scale(KcalPerMolToInternal / s.Mass[i])
		s.Vel[i] = s.Vel[i].Add(acc.Scale(dt / 2))
		s.Pos[i] = s.Pos[i].Add(s.Vel[i].Scale(dt))
	}
	if err := s.shake(prev, dt); err != nil {
		return err
	}

	// New forces, second half kick, velocity constraints.
	s.ComputeForces()
	for i := range s.Vel {
		acc := s.Force[i].Scale(KcalPerMolToInternal / s.Mass[i])
		s.Vel[i] = s.Vel[i].Add(acc.Scale(dt / 2))
	}
	return s.rattleVelocities()
}

// BerendsenRescale applies one Berendsen-thermostat velocity rescaling
// toward target temperature T0 with coupling time tau (both in the system's
// units; tau in fs).
func (s *System) BerendsenRescale(T0, tau, dt float64) {
	T := s.Temperature()
	if T <= 0 {
		return
	}
	lambda := math.Sqrt(1 + dt/tau*(T0/T-1))
	// Clamp extreme rescalings during the first steps of a bad start.
	if lambda > 1.2 {
		lambda = 1.2
	}
	if lambda < 0.8 {
		lambda = 0.8
	}
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Scale(lambda)
	}
}

// TotalEnergy returns kinetic + potential energy in kcal/mol (forces must be
// current so Potential is valid).
func (s *System) TotalEnergy() float64 { return s.KineticEnergy() + s.Potential }
