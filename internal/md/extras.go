package md

import (
	"bufio"
	"fmt"
	"io"
)

// EnergyStats accumulates total-energy fluctuation statistics over an NVT
// trajectory, yielding the constant-volume heat capacity via the canonical
// fluctuation formula Cv = Var(E) / (kB T^2) — one of the "thermodynamically
// averaged properties" whose slow convergence motivates the paper's noise
// model (the per-sample estimate carries exactly the decaying sampling error
// of eq 1.2).
type EnergyStats struct {
	n    int
	mean float64
	m2   float64
	tSum float64
}

// Record folds one frame's total energy and temperature in.
func (e *EnergyStats) Record(s *System) {
	en := s.TotalEnergy()
	e.n++
	d := en - e.mean
	e.mean += d / float64(e.n)
	e.m2 += d * (en - e.mean)
	e.tSum += s.Temperature()
}

// Frames returns the number of recorded frames.
func (e *EnergyStats) Frames() int { return e.n }

// MeanEnergy returns the average total energy (kcal/mol).
func (e *EnergyStats) MeanEnergy() float64 {
	if e.n == 0 {
		return 0
	}
	return e.mean
}

// HeatCapacity returns Cv in kcal/(mol*K) from the energy fluctuations, or
// zero with fewer than two frames.
func (e *EnergyStats) HeatCapacity() float64 {
	if e.n < 2 {
		return 0
	}
	variance := e.m2 / float64(e.n-1)
	tAvg := e.tSum / float64(e.n)
	if tAvg <= 0 {
		return 0
	}
	return variance / (Boltzmann * tAvg * tAvg)
}

// WriteXYZ appends one frame in XYZ format (O/H element symbols, positions
// wrapped into the primary cell) — the interchange format the Chapter-4
// run.sh phases of a real deployment would consume.
func (s *System) WriteXYZ(w io.Writer, comment string) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n%s box=%.4f\n", s.N*SitesPerMol, comment, s.Box.L)
	names := [SitesPerMol]string{"O", "H", "H"}
	for m := 0; m < s.N; m++ {
		for site := 0; site < SitesPerMol; site++ {
			p := s.Box.Wrap(s.Pos[m*SitesPerMol+site])
			fmt.Fprintf(bw, "%-2s %12.6f %12.6f %12.6f\n", names[site], p.X, p.Y, p.Z)
		}
	}
	return bw.Flush()
}

// ReadXYZ parses one XYZ frame written by WriteXYZ back into positions
// (molecule count must match the system). Velocities are untouched.
func (s *System) ReadXYZ(r io.Reader) error {
	br := bufio.NewReader(r)
	var count int
	if _, err := fmt.Fscanf(br, "%d\n", &count); err != nil {
		return fmt.Errorf("md: XYZ header: %w", err)
	}
	if count != s.N*SitesPerMol {
		return fmt.Errorf("md: XYZ has %d sites, system has %d", count, s.N*SitesPerMol)
	}
	if _, err := br.ReadString('\n'); err != nil {
		return fmt.Errorf("md: XYZ comment: %w", err)
	}
	for i := 0; i < count; i++ {
		var name string
		var x, y, z float64
		if _, err := fmt.Fscanf(br, "%s %f %f %f\n", &name, &x, &y, &z); err != nil {
			return fmt.Errorf("md: XYZ site %d: %w", i, err)
		}
		s.Pos[i] = Vec3{x, y, z}
	}
	s.UpdateMSites()
	return nil
}

// Densities returns the instantaneous mass density in g/cm^3 implied by the
// box and molecule count (constant in NVT/NVE, useful as a config check).
func (s *System) Density() float64 {
	// rho = N*M / (V * NA) with V in A^3: g/cm^3 = N*M / (V * 0.60221408).
	return float64(s.N) * WaterMolarMass / (s.Box.Volume() * 0.60221408)
}
